package igq

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// Engine-level concurrency tests (run with -race): one cache-enabled Engine
// serving many goroutines must produce exactly the answers of a sequential
// run, with aggregate counters that account for every query.

// mixedQueries builds a stream with both repeated and novel queries.
func mixedQueries(db []*Graph, n int, seed int64) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	base := make([]*Graph, 6)
	for i := range base {
		base[i] = ExtractQuery(db[i%len(db)], 0, 4+2*(i%3))
	}
	out := make([]*Graph, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			out = append(out, ExtractQuery(db[rng.Intn(len(db))], rng.Intn(4), 3+rng.Intn(6)))
		} else {
			out = append(out, base[rng.Intn(len(base))].Clone())
		}
	}
	return out
}

func TestEngineConcurrentQueriesMatchSequential(t *testing.T) {
	db := smallDB(t)
	queries := mixedQueries(db, 96, 61)

	// Sequential reference run on an identically configured engine.
	seqEng, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 24, Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int32, len(queries))
	for i, q := range queries {
		res, err := seqEng.Query(context.Background(), q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.IDs
	}

	const workers = 8
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 24, Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]Result, len(queries))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := eng.Query(context.Background(), queries[i])
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				results[i] = res
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	// Answers are snapshot-independent (paper Theorems 1 and 2): the
	// concurrent run must agree with the sequential reference exactly.
	for i := range queries {
		if !reflect.DeepEqual(results[i].IDs, want[i]) {
			t.Fatalf("query %d: concurrent %v != sequential %v", i, results[i].IDs, want[i])
		}
	}

	// Counter consistency: the aggregate snapshot must account for every
	// query — nothing lost to races.
	st := eng.Stats()
	if st.Queries != int64(len(queries)) {
		t.Errorf("Stats().Queries = %d, want %d", st.Queries, len(queries))
	}
	var short, dIso, cIso, sub, super int64
	for _, r := range results {
		if r.Stats.AnsweredByCache {
			short++
		}
		dIso += int64(r.Stats.DatasetIsoTests)
		cIso += int64(r.Stats.CacheIsoTests)
		sub += int64(r.Stats.SubHits)
		super += int64(r.Stats.SuperHits)
	}
	if st.AnsweredByCache != short {
		t.Errorf("Stats().AnsweredByCache = %d, want %d", st.AnsweredByCache, short)
	}
	if st.DatasetIsoTests != dIso {
		t.Errorf("Stats().DatasetIsoTests = %d, want %d", st.DatasetIsoTests, dIso)
	}
	if st.CacheIsoTests != cIso {
		t.Errorf("Stats().CacheIsoTests = %d, want %d", st.CacheIsoTests, cIso)
	}
	if st.SubHits != sub || st.SuperHits != super {
		t.Errorf("Stats() hits = %d/%d, want %d/%d", st.SubHits, st.SuperHits, sub, super)
	}
	if st.CachedQueries == 0 && st.WindowPending == 0 {
		t.Error("nothing admitted under concurrency")
	}
}

func TestQueryBatchParallelWithCache(t *testing.T) {
	db := smallDB(t)
	queries := mixedQueries(db, 48, 62)
	ref, _ := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	eng, _ := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 20, Window: 4})

	res := eng.QueryBatchCtx(context.Background(), queries, 8)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result order broken at %d", i)
		}
		wantRes, err := ref.Query(context.Background(), queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Result.IDs, wantRes.IDs) {
			t.Fatalf("query %d: batch %v != reference %v", i, r.Result.IDs, wantRes.IDs)
		}
	}
	if st := eng.Stats(); st.Queries != int64(len(queries)) {
		t.Errorf("Stats().Queries = %d, want %d", st.Queries, len(queries))
	}
}

// TestEngineSaveCacheConcurrentSnapshot verifies the consistency contract of
// SaveCache under load: a snapshot taken while 6 goroutines are querying
// must load cleanly into a fresh engine and answer correctly.
func TestEngineSaveCacheConcurrentSnapshot(t *testing.T) {
	db := smallDB(t)
	queries := mixedQueries(db, 60, 63)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 12, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 6 {
				if _, err := eng.Query(context.Background(), queries[i]); err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	var snaps []*bytes.Buffer
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			var buf bytes.Buffer
			if err := eng.SaveCache(&buf); err != nil {
				t.Errorf("save %d: %v", i, err)
				return
			}
			snaps = append(snaps, &buf)
		}
	}()
	wg.Wait()

	probe := queries[1]
	wantRes, err := ref.Query(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	for i, buf := range snaps {
		fresh, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 12, Window: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.LoadCache(buf); err != nil {
			t.Fatalf("snapshot %d does not load: %v", i, err)
		}
		if fresh.CacheLen() > 12 {
			t.Errorf("snapshot %d over capacity: %d entries", i, fresh.CacheLen())
		}
		res, err := fresh.Query(context.Background(), probe.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.IDs, wantRes.IDs) {
			t.Errorf("snapshot %d: restored engine answers %v, want %v", i, res.IDs, wantRes.IDs)
		}
	}
}

func TestEngineQueryCancellation(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 10, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := ExtractQuery(db[0], 0, 4)
	if _, err := eng.Query(ctx, q); err == nil {
		t.Fatal("cancelled context not honoured (cached path)")
	}
	if _, err := eng.Query(ctx, q, WithoutCache()); err == nil {
		t.Fatal("cancelled context not honoured (plain path)")
	}
	// The engine still serves fresh contexts afterwards.
	if _, err := eng.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}

func TestQueryOptions(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 10, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractQuery(db[0], 0, 4)

	// WithoutAdmission: served, credited, but never admitted.
	res, err := eng.Query(context.Background(), q, WithoutAdmission())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Fatal("extracted query matched nothing")
	}
	if st := eng.Stats(); st.CachedQueries != 0 || st.WindowPending != 0 {
		t.Errorf("WithoutAdmission admitted: cached=%d pending=%d", st.CachedQueries, st.WindowPending)
	}

	// WithoutCache: bypasses iGQ entirely (W=1 would otherwise admit).
	res2, err := eng.Query(context.Background(), q, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.IDs, res.IDs) {
		t.Errorf("WithoutCache answer %v != %v", res2.IDs, res.IDs)
	}
	if st := eng.Stats(); st.CachedQueries != 0 || st.WindowPending != 0 {
		t.Errorf("WithoutCache admitted: cached=%d pending=%d", st.CachedQueries, st.WindowPending)
	}

	// A normal query with W=1 flushes immediately and is cached.
	if _, err := eng.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if eng.CacheLen() != 1 {
		t.Errorf("CacheLen = %d after admitting query", eng.CacheLen())
	}
	st := eng.Stats()
	if st.Queries != 3 || st.Flushes != 1 {
		t.Errorf("Stats = %+v, want 3 queries / 1 flush", st)
	}
}

func TestEngineNilQuery(t *testing.T) {
	db := smallDB(t)
	eng, _ := NewEngine(db, EngineOptions{Method: GGSX})
	if _, err := eng.Query(context.Background(), nil); err == nil {
		t.Error("nil query accepted")
	}
}
