// Package igq is the public API of the iGQ reproduction — "Indexing Query
// Graphs to Speedup Graph Query Processing" (Wang, Ntarmos, Triantafillou,
// EDBT 2016).
//
// iGQ accelerates subgraph and supergraph query processing over a database
// of labeled graphs by caching previously executed query graphs together
// with their answers, and exploiting subgraph/supergraph relationships
// between new and cached queries to skip (or entirely avoid) subgraph
// isomorphism tests. It wraps any filter-then-verify method; this module
// ships three faithful reimplementations of the paper's baselines
// (GraphGrepSX, Grapes, CT-Index) plus the paper's own trie-based
// containment index for supergraph queries.
//
// Quick start:
//
//	db, _ := igq.LoadGraphs("dataset.db") // or igq.GenerateDataset(spec)
//	eng, _ := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes})
//	res, _ := eng.QuerySubgraph(pattern)  // which graphs contain pattern?
//	fmt.Println(len(res.Matches), res.Stats.DatasetIsoTests)
//
// The package re-exports the graph type and generators so downstream users
// never import internal packages.
package igq

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/contain"
	"repro/internal/index/ctindex"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/iso"
	"repro/internal/workload"
)

// Graph is a labeled undirected graph (vertices carry integer labels).
type Graph = graph.Graph

// Label is a vertex label.
type Label = graph.Label

// NewGraph returns an empty graph with capacity for n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadGraphs parses a stream of graphs in the text codec (see package
// documentation for the format).
func ReadGraphs(r io.Reader) ([]*Graph, error) { return graph.ReadAll(r) }

// WriteGraphs serialises graphs to w in the text codec.
func WriteGraphs(w io.Writer, gs []*Graph) error { return graph.WriteAll(w, gs) }

// LoadGraphs reads all graphs from a file.
func LoadGraphs(path string) ([]*Graph, error) { return graph.LoadFile(path) }

// SaveGraphs writes all graphs to a file.
func SaveGraphs(path string, gs []*Graph) error { return graph.SaveFile(path, gs) }

// IsSubgraph reports whether pattern ⊆ target (labeled subgraph
// isomorphism, VF2).
func IsSubgraph(pattern, target *Graph) bool { return iso.Subgraph(pattern, target) }

// Isomorphic reports whether two labeled graphs are isomorphic.
func Isomorphic(a, b *Graph) bool { return iso.Isomorphic(a, b) }

// MethodKind selects the underlying filter-then-verify method.
type MethodKind int

const (
	// Grapes: path index with location-restricted verification (paper's
	// strongest baseline; the default).
	Grapes MethodKind = iota
	// GGSX: GraphGrepSX path-trie index.
	GGSX
	// CTIndex: tree/cycle fingerprint index.
	CTIndex
	// Containment: the paper's trie containment index — required for
	// supergraph query engines.
	Containment
)

// String names the method as in the paper.
func (m MethodKind) String() string {
	switch m {
	case Grapes:
		return "Grapes"
	case GGSX:
		return "GGSX"
	case CTIndex:
		return "CT-Index"
	case Containment:
		return "Contain"
	default:
		return "unknown"
	}
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Method picks the dataset index (default Grapes).
	Method MethodKind
	// Threads applies to Grapes index construction (paper: 1 or 6).
	Threads int
	// MaxPathLen is the path feature length for path-based indexes and the
	// iGQ query indexes (default 4).
	MaxPathLen int
	// Supergraph switches the engine to supergraph query semantics
	// ("which dataset graphs are contained in the query"); requires
	// Method == Containment (set automatically when Method is zero).
	Supergraph bool
	// CacheSize / Window are iGQ's C and W (defaults 500 / 100).
	CacheSize int
	Window    int
	// DisableCache turns iGQ off entirely (plain filter-then-verify).
	DisableCache bool
}

// Engine answers graph queries over a fixed dataset, accelerated by iGQ.
type Engine struct {
	db     []*Graph
	m      index.Method
	ig     *core.IGQ
	superQ bool
}

// Result is the outcome of one query.
type Result struct {
	// Matches holds the answer: for subgraph queries, the dataset graphs
	// containing the query; for supergraph queries, those contained in it.
	Matches []*Graph
	// IDs are the dataset positions of Matches.
	IDs []int32
	// Stats carries the iGQ processing counters (zero-valued when the
	// cache is disabled).
	Stats QueryStats
}

// QueryStats summarises one query's processing effort.
type QueryStats struct {
	BaseCandidates  int  // method M's candidate-set size
	FinalCandidates int  // candidates left after iGQ pruning
	DatasetIsoTests int  // isomorphism tests against dataset graphs
	CacheIsoTests   int  // tests against cached query graphs
	SubHits         int  // cached supergraph-of-query hits
	SuperHits       int  // cached subgraph-of-query hits
	AnsweredByCache bool // short-circuited via §4.3 optimal cases
}

// NewEngine indexes db and returns a ready engine.
func NewEngine(db []*Graph, opt EngineOptions) (*Engine, error) {
	if len(db) == 0 {
		return nil, errors.New("igq: empty dataset")
	}
	if opt.MaxPathLen <= 0 {
		opt.MaxPathLen = 4
	}
	if opt.Supergraph {
		opt.Method = Containment
	}
	var m index.Method
	switch opt.Method {
	case Grapes:
		m = grapes.New(grapes.Options{MaxPathLen: opt.MaxPathLen, Threads: opt.Threads})
	case GGSX:
		m = ggsx.New(ggsx.Options{MaxPathLen: opt.MaxPathLen})
	case CTIndex:
		m = ctindex.New(ctindex.DefaultOptions())
	case Containment:
		m = contain.New(contain.Options{MaxPathLen: opt.MaxPathLen})
		opt.Supergraph = true
	default:
		return nil, fmt.Errorf("igq: unknown method %v", opt.Method)
	}
	m.Build(db)
	e := &Engine{db: db, m: m, superQ: opt.Supergraph}
	if !opt.DisableCache {
		mode := core.SubgraphQueries
		if opt.Supergraph {
			mode = core.SupergraphQueries
		}
		e.ig = core.New(m, db, core.Options{
			CacheSize:  opt.CacheSize,
			Window:     opt.Window,
			MaxPathLen: opt.MaxPathLen,
			Mode:       mode,
		})
	}
	return e, nil
}

// QuerySubgraph returns the dataset graphs that contain q. It must only be
// called on engines built with subgraph semantics (Supergraph == false).
func (e *Engine) QuerySubgraph(q *Graph) (Result, error) {
	if e.superQ {
		return Result{}, errors.New("igq: engine built for supergraph queries")
	}
	return e.query(q), nil
}

// QuerySupergraph returns the dataset graphs contained in q. It must only
// be called on engines built with Supergraph == true.
func (e *Engine) QuerySupergraph(q *Graph) (Result, error) {
	if !e.superQ {
		return Result{}, errors.New("igq: engine built for subgraph queries")
	}
	return e.query(q), nil
}

func (e *Engine) query(q *Graph) Result {
	var ids []int32
	var st QueryStats
	if e.ig != nil {
		o := e.ig.Query(q)
		ids = o.Answer
		st = QueryStats{
			BaseCandidates:  o.BaseCandidates,
			FinalCandidates: o.FinalCandidates,
			DatasetIsoTests: o.DatasetIsoTests,
			CacheIsoTests:   o.CacheIsoTests,
			SubHits:         o.SubHits,
			SuperHits:       o.SuperHits,
			AnsweredByCache: o.Short != core.NoShortCircuit,
		}
	} else {
		ids = index.Answer(e.m, q)
		st.BaseCandidates = len(e.m.Filter(q))
		st.FinalCandidates = st.BaseCandidates
		st.DatasetIsoTests = st.BaseCandidates
	}
	res := Result{IDs: ids, Stats: st}
	for _, id := range ids {
		res.Matches = append(res.Matches, e.db[id])
	}
	return res
}

// SaveCache serialises the engine's accumulated query cache (cached query
// graphs, answers, replacement metadata) so a later process can resume with
// warm knowledge. Returns an error if the cache is disabled.
func (e *Engine) SaveCache(w io.Writer) error {
	if e.ig == nil {
		return errors.New("igq: cache disabled")
	}
	return e.ig.Save(w)
}

// LoadCache replaces the engine's cache with a snapshot previously written
// by SaveCache. The snapshot must have been taken against the same dataset;
// entries beyond the engine's cache size are dropped lowest-utility first.
func (e *Engine) LoadCache(r io.Reader) error {
	if e.ig == nil {
		return errors.New("igq: cache disabled")
	}
	mode := core.SubgraphQueries
	if e.superQ {
		mode = core.SupergraphQueries
	}
	ig, err := core.Load(r, e.m, e.db, core.Options{
		CacheSize: e.ig.CacheSize(),
		Window:    e.ig.WindowSize(),
		Mode:      mode,
	})
	if err != nil {
		return err
	}
	e.ig = ig
	return nil
}

// BatchResult pairs a query index with its result.
type BatchResult struct {
	Index  int
	Result Result
	Err    error
}

// QueryBatch answers many queries, returning results in input order.
// Queries run sequentially through the cache (iGQ's query stream is
// stateful: each query's knowledge serves the next), but with the cache
// disabled the batch fans out across workers goroutines (0 → GOMAXPROCS-
// style default of 4).
func (e *Engine) QueryBatch(queries []*Graph, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	runOne := func(i int) {
		var r Result
		var err error
		if e.superQ {
			r, err = e.QuerySupergraph(queries[i])
		} else {
			r, err = e.QuerySubgraph(queries[i])
		}
		out[i] = BatchResult{Index: i, Result: r, Err: err}
	}
	if e.ig != nil || workers == 1 || len(queries) < 2 {
		for i := range queries {
			runOne(i)
		}
		return out
	}
	if workers <= 0 {
		workers = 4
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				runOne(i)
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// MethodName returns the wrapped method's display name.
func (e *Engine) MethodName() string { return e.m.Name() }

// CacheLen returns the number of cached queries (0 when disabled).
func (e *Engine) CacheLen() int {
	if e.ig == nil {
		return 0
	}
	return e.ig.CacheLen()
}

// IndexSizeBytes returns the dataset index footprint plus the iGQ overhead.
func (e *Engine) IndexSizeBytes() (method, cache int) {
	method = e.m.SizeBytes()
	if e.ig != nil {
		cache = e.ig.SizeBytes()
	}
	return method, cache
}

// DatasetSpec describes a synthetic dataset family (re-export of the
// generator used to emulate the paper's datasets).
type DatasetSpec = dataset.Spec

// Dataset families matching the paper's Table 1 (full scale); use
// Scaled(countFrac, sizeFrac) for tractable derivatives.
func AIDSSpec() DatasetSpec      { return dataset.AIDS() }
func PDBSSpec() DatasetSpec      { return dataset.PDBS() }
func PPISpec() DatasetSpec       { return dataset.PPI() }
func SyntheticSpec() DatasetSpec { return dataset.Synthetic() }

// GenerateDataset produces a synthetic dataset from a spec.
func GenerateDataset(spec DatasetSpec) []*Graph { return dataset.Generate(spec) }

// WorkloadSpec describes a query workload (re-export; see the paper §7.1).
type WorkloadSpec = workload.Spec

// Workload distributions.
const (
	Uniform = workload.Uniform
	Zipf    = workload.Zipf
)

// GenerateWorkload extracts a query stream from db per the paper's
// protocol, returning the query graphs.
func GenerateWorkload(db []*Graph, spec WorkloadSpec) []*Graph {
	qs := workload.Generate(db, spec)
	out := make([]*Graph, len(qs))
	for i, q := range qs {
		out[i] = q.G
	}
	return out
}

// ExtractQuery performs one BFS query extraction from g (paper §7.1).
func ExtractQuery(g *Graph, startVertex, targetEdges int) *Graph {
	return workload.Extract(g, startVertex, targetEdges)
}
