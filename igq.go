// Package igq is the public API of the iGQ reproduction — "Indexing Query
// Graphs to Speedup Graph Query Processing" (Wang, Ntarmos, Triantafillou,
// EDBT 2016).
//
// iGQ accelerates subgraph and supergraph query processing over a database
// of labeled graphs by caching previously executed query graphs together
// with their answers, and exploiting subgraph/supergraph relationships
// between new and cached queries to skip (or entirely avoid) subgraph
// isomorphism tests. It wraps any filter-then-verify method; this module
// ships three faithful reimplementations of the paper's baselines
// (GraphGrepSX, Grapes, CT-Index) plus the paper's own trie-based
// containment index for supergraph queries.
//
// Quick start:
//
//	db, _ := igq.LoadGraphs("dataset.db") // or igq.GenerateDataset(spec)
//	eng, _ := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes})
//	res, _ := eng.Query(ctx, pattern)     // which graphs contain pattern?
//	fmt.Println(len(res.Matches), res.Stats.DatasetIsoTests)
//
// The package re-exports the graph type and generators so downstream users
// never import internal packages.
//
// # Concurrency model
//
// An Engine is safe for concurrent use: any number of goroutines may call
// Query, QueryBatch, Stats, CacheLen, IndexSizeBytes and SaveCache on one
// Engine at the same time. Concurrent serving is the default, not a mode.
//
//   - The answer path is lookup-only. Each query runs against an immutable
//     cache snapshot (swapped in atomically by window flushes) and the
//     dataset index's concurrent-reader-safe Filter/Verify (see
//     internal/index.Method). Readers never block readers.
//   - Per-query cache bookkeeping (hit credit, window admission) is
//     buffered during the query and applied under a short mutex at the end
//     of the call. The only full serialization point is a window flush —
//     once every EngineOptions.Window admissions — which rebuilds the
//     cache-side indexes and installs them with a pointer swap.
//   - SaveCache takes that same mutex for the duration of the encode, so a
//     snapshot taken mid-stream is consistent: it excludes in-flight
//     admissions and reflects the latest completed flush. LoadCache
//     installs the restored cache atomically; queries in flight keep the
//     cache generation they started with.
//   - Under concurrency the cache-hit *rate* may differ from a sequential
//     run of the same stream (two in-flight copies of a novel query cannot
//     serve each other), but answers never do: every answer equals what the
//     wrapped method alone would produce (paper Theorems 1 and 2).
//
// # Persistence
//
// Everything an engine earns — the dataset index built by enumeration and
// the query cache accumulated by serving — can survive restarts. The two
// snapshots have different lifetimes and guards:
//
//   - The *index* snapshot (SaveIndex/LoadIndex, or the index half of
//     Save/LoadEngine) captures the method's dataset index: per-shard trie
//     segments plus the feature dictionary. It is invalidated only by a
//     change to the dataset — any edit, addition, removal or reorder flips
//     the embedded checksum and the load fails rather than answer with
//     wrong positions. GGSX and Grapes support it; a loaded index answers
//     byte-identically to a freshly built one, turning cold start from
//     O(dataset re-enumeration) into O(read).
//   - The *cache* snapshot (SaveCache/LoadCache, or the cache half of
//     Save/LoadEngine) captures the iGQ query cache: cached query graphs,
//     answer sets and replacement metadata. It is guarded by the same
//     dataset checksum, and additionally becomes stale (not wrong) as the
//     workload drifts — it is knowledge about queries, not about the
//     dataset, and its indexes are rebuilt on load.
//
// Engine.Save writes both in one envelope; igq.LoadEngine restores it
// without ever enumerating the dataset. Save flushes any pending window
// admissions into the cache first, so queries served since the last flush
// are knowledge the snapshot keeps, not work the restart repeats. The
// cmd/igqquery and cmd/igqbench tools expose this as
// -save-index/-load-index, and the "coldstart" experiment measures
// load-vs-rebuild wall-clock.
//
// # Posting containers
//
// Inside both snapshot families every feature's posting list is stored in
// a cardinality-adaptive container: sparse features as sorted arrays,
// dense features as 64-bit bitmap words, clustered id ranges as run
// intervals. The encoding is a pure function of the member set — chosen at
// build time, re-chosen when a mutation moves a feature across a density
// threshold — and the intersection pipeline exploits it: bitmap∧bitmap
// steps collapse to word-wise ANDs, sparse partials probe dense containers
// by membership without materialising them, and array pairs keep the
// merge-vs-gallop choice, driven by a probe-cost constant calibrated per
// dataset at build time. Index snapshots (format v3) persist the
// containers directly, so dense features cost ~1 bit per graph on disk;
// v1/v2 snapshots still load by promoting their flat arrays on decode and
// gain the compact encodings on the first re-save. The "containers"
// experiment (cmd/igqbench) reproduces and gates the win — ≥2× smaller
// dense snapshots, ≥3× faster dense intersections vs the flat-array
// baseline.
//
// # Dynamic datasets
//
// The dataset is not frozen at construction: AddGraphs appends graphs to a
// serving engine and RemoveGraphs deletes them (swap-removal: the last
// graph fills the vacated position, so surviving graphs may move —
// Dataset() is the authority on current positions). Both are O(delta), not
// O(dataset): the index inserts or scrubs only the affected graphs'
// features, and every cached answer is patched (extended with matching new
// graphs, or rewritten through the removal's position mapping) so cached
// knowledge stays exact — answers over the mutated dataset still equal
// what the wrapped method alone would produce.
//
// Mutations are safe alongside concurrent queries. Each mutation builds
// the next dataset/index/cache generation copy-on-write and installs it
// with pointer swaps — the same snapshot discipline window flushes use —
// so an in-flight query runs start to finish against one consistent
// generation, and a query racing a mutation simply answers for the state
// just before or just after it (its answer is never admitted to the cache
// across the boundary).
//
// Persistence is O(delta) too: AppendIndexDelta appends the mutations
// since the last SaveIndex (or previous delta append) to the snapshot file
// as a CRC-guarded journal, instead of rewriting the whole index; once
// accumulated journals outgrow the base, the file is compacted back into a
// fresh full snapshot automatically. LoadIndex/LoadEngine replay journals
// transparently, and the dataset checksum guard follows the mutations: a
// journaled snapshot loads only against the exact post-mutation dataset
// (ErrDatasetMismatch otherwise). cmd/igqquery exposes live mutation as
// -append, and the "incremental" experiment gates append + delta-save
// beating rebuild + full save by ≥5× at bench scale.
//
// # Durability and crash safety
//
// The persistence layer assumes the process can die at any byte of any
// write, and is built so no crash ever costs more than the operation that
// was in flight:
//
//   - Snapshot files are written atomically. SaveEngineFile and
//     SaveIndexFile stage the bytes in a temp file in the destination's
//     directory, fsync, rename over the target and fsync the directory —
//     a crash at any point leaves either the old snapshot or the new one,
//     never a torn file (internal/persistio.AtomicWriteFile).
//   - Delta appends commit on their trailing terminator byte and are
//     fsynced before AppendIndexDelta returns. A crash mid-append leaves
//     the previous snapshot plus a torn trailing journal; loads self-heal
//     it by dropping the uncommitted tail — the loaded state is exactly
//     pre-append or post-append, never in between — and report the salvage
//     in LoadReport.RecoveredTail. Corruption anywhere *before* the tail
//     is damage, not a crash signature, and still fails the load.
//     LoadEngineFile additionally rewrites a recovered file as a clean
//     snapshot (LoadReport.Repaired), so the next start loads cleanly.
//   - Journal compaction is workload-adaptive and crash-safe: journals
//     fold into a fresh base when their replay-weighted size outgrows the
//     base, with removal-heavy journals compacting earlier (removals
//     replay several times heavier than appends), and the rewrite goes
//     through the same atomic temp+rename path when the file supports it.
//   - Serving is panic-isolated: a panic in a method's filter/verify hot
//     path is contained to the query that hit it (returned as a
//     *PanicError, counted in EngineStats.Panics); concurrent queries,
//     mutations and saves are unaffected.
//
// These guarantees are enforced by byte-granularity fault injection in CI:
// every persistence operation is killed at every byte boundary and the
// reload differentially compared against pre- and post-op oracles.
//
// # Serving indexes bigger than RAM
//
// An eager load decodes every posting segment before the first query can
// run — time-to-first-query is O(index) and peak memory is the whole
// index. LoadEngineFile(..., WithLazyLoad(budget)) changes the shape of
// both: the snapshot file is mapped (mmap where the platform has it, pread
// otherwise), only the cheap metadata is decoded up front — header,
// feature dictionary, the per-shard segment directory, and a full scan of
// any delta-journal tail (torn tails recover exactly as in an eager load)
// — and each posting shard is decoded on the first query that touches it,
// CRC-verified at that moment. Time-to-first-query becomes O(touched
// shards); budget bounds the decoded bytes kept resident, with
// least-recently-touched shards evicted and re-decoded (re-verified) on
// the next touch, so the engine serves snapshots larger than memory.
//
// Laziness is observationally invisible: answers, statistics and re-saved
// bytes are identical to an eager load's — only latency and residency
// move. The differences that do show: the snapshot file must stay intact
// behind the engine (Engine.Close releases it; MaterializeIndex faults
// everything in first so serving can continue without the file), mutations
// force full materialisation before applying, and corruption confined to
// one shard surfaces on first touch — as a contained *PanicError wrapping
// trie.ErrCorrupt on queries routed to that shard — instead of failing the
// load, leaving every other shard serving. Engine.Stats and
// Engine.Residency expose the moving parts (resident shards and bytes,
// fault and eviction counts); the "lazyload" experiment gates the
// time-to-first-query win and the budget ceiling.
//
// # Serving
//
// The streaming primitive is Engine.QueryStream: feed query graphs on a
// channel, receive BatchResults on another, with a bounded worker pool and
// bounded buffering in between — close the input and drain the output, and
// backpressure propagates to the producer through the channel. QueryBatch
// and QueryBatchCtx are thin wrappers that feed a slice through the same
// pipeline, so batch and stream answers are identical by construction.
//
// internal/server (binaries cmd/igqserve and cmd/igqload) puts that
// pipeline on the network as an HTTP/JSON API: unary queries with bounded
// admission (a full queue answers 429 immediately — the server never
// queues unboundedly), NDJSON streaming where each in-flight query holds a
// physical execution slot (a producer that outruns the server blocks in
// TCP, not in memory), per-request deadlines mapped onto context
// cancellation (an expired query aborts mid-verification and leaves no
// trace in the cache), live dataset mutation with O(delta) journal
// persistence and timer-driven compaction, Prometheus-style /metrics over
// EngineStats, and graceful drain: SIGTERM finishes in-flight queries,
// then writes the engine snapshot atomically, so the next start resumes
// with everything the process learned. The serving path inherits the
// engine's panic isolation — a query that panics its method answers 500
// while the server keeps serving. The "serving" experiment and CI job gate
// the whole lifecycle, including answer identity against cache-free
// oracles and snapshot restoration after drain.
//
// EngineOptions.WrapMethod is the instrumentation seam the serving tests
// lean on: it intercepts the built index method so tests can inject
// latency or faults without touching internal packages.
//
// # Partitioned serving
//
// internal/partition shards one dataset across N in-process engine pairs
// behind an Engine-shaped surface: each graph is routed to a partition by
// a stable hash of its ID, queries scatter to every partition with bounded
// fan-out and gather into one merged result, and mutations touch only the
// owning partition. Because sub- and super-answers are plain sets of
// matching dataset graphs, the merge is a union keyed by global graph ID —
// partition.Group answers are required (and gated, by the "partition"
// experiment and the partitioned-server tests) to be identical to a single
// engine over the undivided dataset at every partition count; only the
// positions-vs-IDs addressing and the per-partition cache/credit locality
// are observable. Persistence reuses the engine machinery per partition
// (one snapshot + delta lineage each, base.p0, base.p1, ...), and
// igqserve -partitions N serves a group over the wire with per-partition
// /metrics gauges. Rebalance resplits the live group to a new partition
// count between queries.
//
// QuerySubgraph and QuerySupergraph are deprecated synonyms for Query; new
// code should pass a context and use Query.
package igq

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/contain"
	"repro/internal/index/ctindex"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/iso"
	"repro/internal/persistio"
	"repro/internal/trie"
	"repro/internal/workload"
)

// Graph is a labeled undirected graph (vertices carry integer labels).
type Graph = graph.Graph

// Label is a vertex label.
type Label = graph.Label

// NewGraph returns an empty graph with capacity for n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadGraphs parses a stream of graphs in the text codec (see package
// documentation for the format).
func ReadGraphs(r io.Reader) ([]*Graph, error) { return graph.ReadAll(r) }

// WriteGraphs serialises graphs to w in the text codec.
func WriteGraphs(w io.Writer, gs []*Graph) error { return graph.WriteAll(w, gs) }

// LoadGraphs reads all graphs from a file.
func LoadGraphs(path string) ([]*Graph, error) { return graph.LoadFile(path) }

// SaveGraphs writes all graphs to a file.
func SaveGraphs(path string, gs []*Graph) error { return graph.SaveFile(path, gs) }

// IsSubgraph reports whether pattern ⊆ target (labeled subgraph
// isomorphism, VF2).
func IsSubgraph(pattern, target *Graph) bool { return iso.Subgraph(pattern, target) }

// Isomorphic reports whether two labeled graphs are isomorphic.
func Isomorphic(a, b *Graph) bool { return iso.Isomorphic(a, b) }

// MethodKind selects the underlying filter-then-verify method.
type MethodKind int

const (
	// Grapes: path index with location-restricted verification (paper's
	// strongest baseline; the default).
	Grapes MethodKind = iota
	// GGSX: GraphGrepSX path-trie index.
	GGSX
	// CTIndex: tree/cycle fingerprint index.
	CTIndex
	// Containment: the paper's trie containment index — required for
	// supergraph query engines.
	Containment
)

// String names the method as in the paper.
func (m MethodKind) String() string {
	switch m {
	case Grapes:
		return "Grapes"
	case GGSX:
		return "GGSX"
	case CTIndex:
		return "CT-Index"
	case Containment:
		return "Contain"
	default:
		return "unknown"
	}
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Method picks the dataset index (default Grapes).
	Method MethodKind
	// Threads applies to Grapes index construction (paper: 1 or 6).
	Threads int
	// MaxPathLen is the path feature length for path-based indexes and the
	// iGQ query indexes (default 4).
	MaxPathLen int
	// Supergraph switches the engine to supergraph query semantics
	// ("which dataset graphs are contained in the query"); requires
	// Method == Containment (set automatically when Method is zero).
	Supergraph bool
	// CacheSize / Window are iGQ's C and W (defaults 500 / 100).
	CacheSize int
	Window    int
	// DisableCache turns iGQ off entirely (plain filter-then-verify).
	DisableCache bool
	// Shards is the postings shard count of the sharded postings stores —
	// the path methods' dataset tries and iGQ's cache-side Isub/Isuper
	// (rounded up to a power of two, capped at 64; 0 picks one shard per
	// CPU). Sharding never changes answers; it only sets how much build
	// and probe parallelism the stores can exploit.
	Shards int
	// BuildWorkers is the index-build parallelism: the path methods fan
	// feature enumeration over this many goroutines and iGQ uses it for
	// cache-side index rebuilds. 0 keeps each component's default (GGSX
	// sequential, Grapes its Threads, cache rebuilds one per CPU). Any
	// worker count builds a bit-identical index.
	BuildWorkers int
	// WrapMethod, when non-nil, wraps the freshly built dataset index
	// before the engine starts using it — an instrumentation seam
	// (latency probes, fault injection in serving tests). The argument and
	// the return value are the engine's internal method interface; the
	// wrapper must embed or delegate to the original so the optional
	// capabilities it relies on (mutation, persistence) stay visible, and
	// a return value that is not a method index fails NewEngine. Only
	// NewEngine consults it; engines restored by LoadEngine are unwrapped.
	WrapMethod func(m any) any
}

// Engine answers graph queries over a dataset, accelerated by iGQ. Safe
// for concurrent use — including live dataset mutation via AddGraphs and
// RemoveGraphs; see the package comment for the concurrency model.
type Engine struct {
	// view is the serving generation: the dataset and the method index
	// answering over it, swapped together so every query sees a consistent
	// pair. Dataset mutations install new generations; everything that
	// reads the dataset or the method loads one view first.
	view   atomic.Pointer[engineView]
	superQ bool
	opt    EngineOptions // resolved construction options (persistence reuse)

	// mutMu serialises generation changes — AddGraphs, RemoveGraphs,
	// LoadIndex and the persistence lineage calls — against each other.
	// Queries never take it.
	mutMu sync.Mutex

	// lazySrc is the snapshot mapping backing a lazily loaded index (nil
	// otherwise); guarded by mutMu, released by Close/MaterializeIndex.
	lazySrc io.Closer

	// ig is the cache generation currently serving queries; LoadCache swaps
	// it atomically. A nil pointer means the cache is disabled.
	ig atomic.Pointer[core.IGQ]

	// Engine-lifetime aggregate counters (Stats).
	nQueries    atomic.Int64
	nCacheShort atomic.Int64
	nDatasetIso atomic.Int64
	nCacheIso   atomic.Int64
	nSubHits    atomic.Int64
	nSuperHits  atomic.Int64
	nPanics     atomic.Int64
}

// Result is the outcome of one query.
type Result struct {
	// Matches holds the answer: for subgraph queries, the dataset graphs
	// containing the query; for supergraph queries, those contained in it.
	Matches []*Graph
	// IDs are the dataset positions of Matches.
	IDs []int32
	// Stats carries the iGQ processing counters (zero-valued when the
	// cache is disabled).
	Stats QueryStats
}

// QueryStats summarises one query's processing effort.
type QueryStats struct {
	BaseCandidates  int  // method M's candidate-set size
	FinalCandidates int  // candidates left after iGQ pruning
	DatasetIsoTests int  // isomorphism tests against dataset graphs
	CacheIsoTests   int  // tests against cached query graphs
	SubHits         int  // cached supergraph-of-query hits
	SuperHits       int  // cached subgraph-of-query hits
	AnsweredByCache bool // short-circuited via §4.3 optimal cases
}

// EngineStats is an aggregate snapshot of an engine's lifetime activity,
// maintained with atomic counters so it can be sampled at any time while
// queries are in flight (an Engine.Stats monitoring endpoint costs nothing
// on the query path).
type EngineStats struct {
	Queries         int64 // queries served (all entry points)
	AnsweredByCache int64 // queries short-circuited by the §4.3 optimal cases
	DatasetIsoTests int64 // isomorphism tests against dataset graphs
	CacheIsoTests   int64 // isomorphism tests against cached query graphs
	SubHits         int64 // cached supergraph-of-query hits across all queries
	SuperHits       int64 // cached subgraph-of-query hits across all queries
	Panics          int64 // panics contained by the serving isolation (see PanicError)
	CachedQueries   int   // current committed cache population
	WindowPending   int   // admissions awaiting the next flush
	Flushes         int   // window flushes (cache-index rebuilds) so far

	// Residency of a lazily loaded dataset index (see WithLazyLoad); all
	// zero for eagerly loaded or freshly built engines.
	LazyLoaded      bool  // serving from a lazy snapshot, not yet materialised
	TotalShards     int   // posting shards in the dataset index
	ResidentShards  int   // shards currently decoded in memory
	ResidentBytes   int64 // decoded posting bytes currently resident
	LazyBudgetBytes int64 // configured residency budget (0 = unbounded)
	ShardFaults     int64 // segment fault-ins since load (refaults included)
	ShardEvictions  int64 // shards evicted under the budget
}

// newMethod constructs the (unbuilt) dataset index selected by opt, which
// must already be normalized.
func newMethod(opt EngineOptions) (index.Method, error) {
	switch opt.Method {
	case Grapes:
		return grapes.New(grapes.Options{
			MaxPathLen:   opt.MaxPathLen,
			Threads:      opt.Threads,
			Shards:       opt.Shards,
			BuildWorkers: opt.BuildWorkers,
		}), nil
	case GGSX:
		return ggsx.New(ggsx.Options{
			MaxPathLen:   opt.MaxPathLen,
			Shards:       opt.Shards,
			BuildWorkers: opt.BuildWorkers,
		}), nil
	case CTIndex:
		return ctindex.New(ctindex.DefaultOptions()), nil
	case Containment:
		return contain.New(contain.Options{MaxPathLen: opt.MaxPathLen}), nil
	default:
		return nil, fmt.Errorf("igq: unknown method %v", opt.Method)
	}
}

// normalized fills option defaults and resolves the supergraph/method
// coupling.
func (opt EngineOptions) normalized() EngineOptions {
	if opt.MaxPathLen <= 0 {
		opt.MaxPathLen = 4
	}
	if opt.Supergraph {
		opt.Method = Containment
	}
	if opt.Method == Containment {
		opt.Supergraph = true
	}
	return opt
}

// coreOptions maps engine options onto the iGQ core configuration.
func (opt EngineOptions) coreOptions() core.Options {
	mode := core.SubgraphQueries
	if opt.Supergraph {
		mode = core.SupergraphQueries
	}
	return core.Options{
		CacheSize:    opt.CacheSize,
		Window:       opt.Window,
		MaxPathLen:   opt.MaxPathLen,
		Mode:         mode,
		Shards:       opt.Shards,
		BuildWorkers: opt.BuildWorkers,
	}
}

// coreOptions wires the engine's panic containment into the core
// configuration: a panicking background shadow-index build is counted in
// Stats().Panics instead of crashing the process.
func (e *Engine) coreOptions() core.Options {
	co := e.opt.coreOptions()
	co.PanicHandler = func(any, []byte) { e.nPanics.Add(1) }
	return co
}

// NewEngine indexes db and returns a ready engine.
func NewEngine(db []*Graph, opt EngineOptions) (*Engine, error) {
	if len(db) == 0 {
		return nil, errors.New("igq: empty dataset")
	}
	opt = opt.normalized()
	m, err := newMethod(opt)
	if err != nil {
		return nil, err
	}
	m.Build(db)
	if opt.WrapMethod != nil {
		wrapped, ok := opt.WrapMethod(m).(index.Method)
		if !ok {
			return nil, errors.New("igq: WrapMethod returned a non-method value")
		}
		m = wrapped
	}
	e := &Engine{superQ: opt.Supergraph, opt: opt}
	e.view.Store(&engineView{db: db, m: m})
	if !opt.DisableCache {
		e.ig.Store(core.New(m, db, e.coreOptions()))
	}
	return e, nil
}

// engineView pairs one dataset generation with the method index built over
// it. Immutable once stored.
type engineView struct {
	db []*Graph
	m  index.Method
}

// queryConfig is the resolved per-call option set.
type queryConfig struct {
	noCache bool
	noAdmit bool
}

// QueryOption customises one Query call.
type QueryOption func(*queryConfig)

// WithoutCache bypasses iGQ for this call: plain filter-then-verify, no
// cache probe, no admission. Useful for measuring the cache's benefit or
// for queries known to be one-offs of no future value.
func WithoutCache() QueryOption { return func(c *queryConfig) { c.noCache = true } }

// WithoutAdmission probes the cache (the query still benefits from cached
// knowledge, and hits are still credited) but does not admit the query, so
// the call can never trigger a window flush. Useful for strictly
// latency-bounded serving paths.
func WithoutAdmission() QueryOption { return func(c *queryConfig) { c.noAdmit = true } }

// PanicError is the outcome of a query whose processing panicked — a
// malformed query graph or a misbehaving method implementation. The panic
// is contained to the one query: the engine keeps serving, concurrent
// queries and mutations are unaffected, and Stats().Panics counts the
// containment. The panic value and the goroutine stack at the panic site
// are preserved for diagnosis.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // debug.Stack() captured at recovery
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("igq: query panicked: %v", p.Value)
}

// Query answers q under the engine's configured semantics: for subgraph
// engines, the dataset graphs containing q; for supergraph engines
// (EngineOptions.Supergraph), the dataset graphs contained in q.
//
// Safe for concurrent use from any number of goroutines. ctx is checked
// before work starts and inside the candidate-verification loop — the
// dominant cost of a hard query — and a cancelled query returns ctx's
// error, leaving no trace in the cache. A panic anywhere in the query
// path — a poisoned query graph, a buggy method — is contained to this
// call and surfaced as a *PanicError instead of crashing the process.
func (e *Engine) Query(ctx context.Context, q *Graph, opts ...QueryOption) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.nPanics.Add(1)
			res = Result{}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if q == nil {
		return Result{}, errors.New("igq: nil query")
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	ig := e.ig.Load()
	if ig == nil || cfg.noCache {
		return e.queryPlain(ctx, q)
	}
	var o *core.Outcome
	if cfg.noAdmit {
		o, err = ig.QueryNoAdmit(ctx, q)
	} else {
		o, err = ig.QueryCtx(ctx, q)
	}
	if err != nil {
		return Result{}, err
	}
	st := QueryStats{
		BaseCandidates:  o.BaseCandidates,
		FinalCandidates: o.FinalCandidates,
		DatasetIsoTests: o.DatasetIsoTests,
		CacheIsoTests:   o.CacheIsoTests,
		SubHits:         o.SubHits,
		SuperHits:       o.SuperHits,
		AnsweredByCache: o.Short != core.NoShortCircuit,
	}
	e.recordStats(st)
	return e.resultFor(o.Dataset, o.Answer, st), nil
}

// queryPlain is the cache-free filter-then-verify path with cooperative
// cancellation.
func (e *Engine) queryPlain(ctx context.Context, q *Graph) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	v := e.view.Load() // one generation for the whole call
	cands := v.m.Filter(q)
	var ids []int32
	for _, id := range cands {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if v.m.Verify(q, id) {
			ids = append(ids, id)
		}
	}
	st := QueryStats{
		BaseCandidates:  len(cands),
		FinalCandidates: len(cands),
		DatasetIsoTests: len(cands),
	}
	e.recordStats(st)
	return e.resultFor(v.db, ids, st), nil
}

// resultFor materialises the Result for a sorted answer id set against the
// dataset generation the ids were computed over.
func (e *Engine) resultFor(db []*Graph, ids []int32, st QueryStats) Result {
	res := Result{IDs: ids, Stats: st}
	for _, id := range ids {
		res.Matches = append(res.Matches, db[id])
	}
	return res
}

// recordStats folds one query's counters into the engine aggregates.
func (e *Engine) recordStats(st QueryStats) {
	e.nQueries.Add(1)
	if st.AnsweredByCache {
		e.nCacheShort.Add(1)
	}
	e.nDatasetIso.Add(int64(st.DatasetIsoTests))
	e.nCacheIso.Add(int64(st.CacheIsoTests))
	e.nSubHits.Add(int64(st.SubHits))
	e.nSuperHits.Add(int64(st.SuperHits))
}

// Stats returns an aggregate snapshot of the engine's activity since
// construction. Counters are maintained atomically; sampling them is safe
// and cheap while queries are in flight. The per-counter values are
// mutually consistent to within the queries currently executing.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Queries:         e.nQueries.Load(),
		AnsweredByCache: e.nCacheShort.Load(),
		DatasetIsoTests: e.nDatasetIso.Load(),
		CacheIsoTests:   e.nCacheIso.Load(),
		SubHits:         e.nSubHits.Load(),
		SuperHits:       e.nSuperHits.Load(),
		Panics:          e.nPanics.Load(),
	}
	if ig := e.ig.Load(); ig != nil {
		st.CachedQueries = ig.CacheLen()
		st.WindowPending = ig.WindowLen()
		st.Flushes = ig.Flushes()
	}
	if res := e.Residency(); res.Lazy {
		st.LazyLoaded = !res.Materialized
		st.TotalShards = res.TotalShards
		st.ResidentShards = res.ResidentShards
		st.ResidentBytes = res.ResidentBytes
		st.LazyBudgetBytes = res.BudgetBytes
		st.ShardFaults = res.Faults
		st.ShardEvictions = res.Evictions
	}
	return st
}

// QuerySubgraph returns the dataset graphs that contain q. It must only be
// called on engines built with subgraph semantics (Supergraph == false).
//
// Deprecated: use Query, which also accepts a context. QuerySubgraph is
// equivalent to Query(context.Background(), q) plus the direction check.
func (e *Engine) QuerySubgraph(q *Graph) (Result, error) {
	if e.superQ {
		return Result{}, errors.New("igq: engine built for supergraph queries")
	}
	return e.Query(context.Background(), q)
}

// QuerySupergraph returns the dataset graphs contained in q. It must only
// be called on engines built with Supergraph == true.
//
// Deprecated: use Query, which also accepts a context. QuerySupergraph is
// equivalent to Query(context.Background(), q) plus the direction check.
func (e *Engine) QuerySupergraph(q *Graph) (Result, error) {
	if !e.superQ {
		return Result{}, errors.New("igq: engine built for subgraph queries")
	}
	return e.Query(context.Background(), q)
}

// SaveCache serialises the engine's accumulated query cache (cached query
// graphs, answers, replacement metadata) so a later process can resume with
// warm knowledge. Returns an error if the cache is disabled. Safe to call
// while queries are in flight: the snapshot is consistent, excluding
// admissions that had not yet committed.
func (e *Engine) SaveCache(w io.Writer) error {
	ig := e.ig.Load()
	if ig == nil {
		return errors.New("igq: cache disabled")
	}
	return ig.Save(w)
}

// LoadCache replaces the engine's cache with a snapshot previously written
// by SaveCache. The snapshot must have been taken against the same dataset;
// entries beyond the engine's cache size are dropped lowest-utility first.
// The restored cache is installed atomically: concurrent queries finish on
// the generation they started with and later queries use the new one.
func (e *Engine) LoadCache(r io.Reader) error {
	// mutMu keeps the restored cache bound to the generation actually being
	// served: without it a racing AddGraphs/RemoveGraphs could install a
	// new view while this cache is wired to the old (db, method) pair.
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	cur := e.ig.Load()
	if cur == nil {
		return errors.New("igq: cache disabled")
	}
	v := e.view.Load()
	ig, err := core.Load(r, v.m, v.db, e.coreOptions())
	if err != nil {
		return err
	}
	e.ig.Store(ig)
	return nil
}

// SaveIndex serialises the engine's built dataset index (the method's trie,
// postings and feature dictionary) so a later process can skip the
// O(dataset) re-enumeration entirely — cold start becomes O(read). Returns
// an error if the configured method does not support index persistence
// (GGSX and Grapes do). Like Build, the index is immutable after
// construction, so SaveIndex is safe while queries are in flight.
func (e *Engine) SaveIndex(w io.Writer) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	v := e.view.Load()
	p, ok := v.m.(index.Persistable)
	if !ok {
		return fmt.Errorf("igq: method %s does not support index persistence", v.m.Name())
	}
	return p.SaveIndex(w)
}

// TailRecovery describes a torn trailing delta journal a load salvaged —
// the signature of a crash mid-AppendIndexDelta. Everything up to
// CommittedBytes (an absolute offset in the loaded stream) was intact and
// loaded; the DiscardedBytes beyond it — the torn section, claiming
// DroppedOps mutations that never fully committed — were dropped. The
// loaded state is exactly the snapshot as of the last completed append:
// pre-crash-op or post-crash-op, never in between.
type TailRecovery struct {
	CommittedBytes int64 // absolute end of the intact prefix
	DiscardedBytes int64 // torn bytes dropped after it
	DroppedOps     int   // mutation ops the torn section claimed (best-effort)
}

// LoadReport describes what a load found and did.
type LoadReport struct {
	// RecoveredTail is non-nil when the load self-healed a torn journal
	// tail (nil for a clean snapshot).
	RecoveredTail *TailRecovery
	// CacheDiscarded reports that a combined snapshot's cache section was
	// dropped along with the torn tail (the stream beyond the tear is
	// untrustworthy); the engine starts with a fresh empty cache. Cached
	// knowledge is re-earnable — the index is what recovery protects.
	CacheDiscarded bool
	// Repaired reports that LoadEngineFile rewrote the file as a clean
	// snapshot after a recovery.
	Repaired bool
}

// tailRecoveryFrom translates an index-layer recovery report into the
// public one, shifting its offsets by the bytes this layer consumed before
// handing the stream down.
func tailRecoveryFrom(rec *trie.TailRecovery, base int64) *TailRecovery {
	if rec == nil {
		return nil
	}
	return &TailRecovery{
		CommittedBytes: base + rec.CommittedBytes,
		DiscardedBytes: rec.DiscardedBytes,
		DroppedOps:     rec.DroppedOps,
	}
}

// LoadIndex replaces the engine's dataset index with a snapshot previously
// written by SaveIndex on the same method kind and the same dataset (a
// checksum guard rejects anything else). The cache-side indexes are rebuilt
// against the restored dictionary. Unlike Query, LoadIndex is exclusive: it
// must not run concurrently with queries — it exists to re-synchronise a
// freshly constructed engine; pure cold starts should use LoadEngine, which
// never builds in the first place.
//
// A snapshot whose trailing delta journal is torn (crash mid-append) is
// self-healed: the committed prefix loads and the damage is reported in
// LoadReport.RecoveredTail. Corruption anywhere else fails the load and
// leaves the engine untouched.
func (e *Engine) LoadIndex(r io.Reader) (LoadReport, error) {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	v := e.view.Load()
	p, ok := v.m.(index.Persistable)
	if !ok {
		return LoadReport{}, fmt.Errorf("igq: method %s does not support index persistence", v.m.Name())
	}
	rep, err := p.LoadIndex(r, v.db)
	if err != nil {
		return LoadReport{}, err
	}
	if ig := e.ig.Load(); ig != nil {
		// The method's dictionary was reset by the load; cache postings
		// keyed by the old FeatureIDs must be rebuilt.
		ig.RebuildIndexes()
	}
	return LoadReport{RecoveredTail: tailRecoveryFrom(rep.RecoveredTail, 0)}, nil
}

// AddGraphs appends graphs to the engine's dataset, maintaining everything
// the engine has earned in O(delta): the method index inserts only the new
// graphs' features (copy-on-write, per postings shard — unaffected shards
// are shared with the previous generation), and every cached query's
// answer set is extended with the new graphs that match it, so the paper's
// correctness theorems keep holding over the grown dataset. The new graphs
// occupy dataset positions len(Dataset()).. in order.
//
// Safe while queries are in flight: in-flight queries finish on the
// generation they started with, later queries see the new one; no query
// ever observes a half-applied mutation. Mutations serialise against each
// other. ctx is observed before the mutation begins; once underway it
// always completes (the work is O(new graphs), not O(dataset)).
//
// Only methods implementing incremental maintenance support this (GGSX,
// Grapes and the supergraph Containment method do); otherwise an error
// wrapping the method name is returned and the engine is unchanged. For
// the path methods the pending delta can additionally be persisted in
// O(delta) with AppendIndexDelta.
func (e *Engine) AddGraphs(ctx context.Context, gs []*Graph) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(gs) == 0 {
		return errors.New("igq: no graphs to add")
	}
	for _, g := range gs {
		if g == nil {
			return errors.New("igq: nil graph in AddGraphs batch")
		}
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	v := e.view.Load()
	mm, ok := v.m.(index.Mutable)
	if !ok {
		return fmt.Errorf("igq: method %s: %w", v.m.Name(), index.ErrNotMutable)
	}
	// A lazily loaded index must be fully resident before copy-on-write
	// mutation; forcing it here surfaces deferred corruption as an error
	// instead of a panic mid-apply.
	if err := e.materializeIndexLocked(); err != nil {
		return err
	}
	newM, newDB, err := mm.AppendGraphs(gs)
	if err != nil {
		return fmt.Errorf("igq: appending graphs: %w", err)
	}
	if ig := e.ig.Load(); ig != nil {
		// Background ctx: the cache patch must complete once the method
		// generation exists, or the recorded delta journal would diverge
		// from the served state.
		if err := ig.DatasetAppended(context.Background(), newM, newDB, len(v.db)); err != nil {
			return fmt.Errorf("igq: patching cache: %w", err)
		}
	}
	e.view.Store(&engineView{db: newDB, m: newM})
	return nil
}

// RemoveGraphs removes the dataset graphs at the given positions
// (interpreted against the current Dataset()). To keep the maintenance
// O(delta), removal uses swap-removal semantics: positions are processed
// highest first and each vacated position is filled by the then-last
// graph, so surviving graphs keep their identity but may change position —
// Dataset() reflects the result deterministically. The method index scrubs
// only the removed and moved graphs' postings, and cached answers are
// rewritten through the position mapping (no isomorphism tests).
//
// Concurrency, serialisation, ctx and method-support semantics match
// AddGraphs.
func (e *Engine) RemoveGraphs(ctx context.Context, positions []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	v := e.view.Load()
	mm, ok := v.m.(index.Mutable)
	if !ok {
		return fmt.Errorf("igq: method %s: %w", v.m.Name(), index.ErrNotMutable)
	}
	// Pre-flight the batch before the method mutates anything: a rejected
	// removal must leave no trace — in particular nothing recorded in the
	// method's delta log, or a later AppendIndexDelta would persist an
	// operation that was never applied.
	preDB, _, _, err := index.SwapRemove(v.db, positions)
	if err != nil {
		return fmt.Errorf("igq: removing graphs: %w", err)
	}
	if len(preDB) == 0 {
		return errors.New("igq: removal would empty the dataset")
	}
	// See AddGraphs: mutation requires a fully resident index.
	if err := e.materializeIndexLocked(); err != nil {
		return err
	}
	newM, newDB, mapping, err := mm.RemoveGraphs(positions)
	if err != nil {
		return fmt.Errorf("igq: removing graphs: %w", err)
	}
	if ig := e.ig.Load(); ig != nil {
		if err := ig.DatasetRemoved(context.Background(), newM, newDB, mapping); err != nil {
			return fmt.Errorf("igq: patching cache: %w", err)
		}
	}
	e.view.Store(&engineView{db: newDB, m: newM})
	return nil
}

// AppendIndexDelta persists every dataset mutation applied since f's index
// snapshot was written (by SaveIndex, or a previous AppendIndexDelta on
// the same file) as a CRC-guarded journal appended to f — an O(delta)
// write where SaveIndex would re-serialise the whole index. When the
// accumulated journals outgrow the base snapshot, the file is instead
// compacted back into a fresh full snapshot (f must support truncation for
// that, as *os.File does). The file must be a pure index snapshot
// (SaveIndex), not a combined engine snapshot (Save). LoadIndex and
// LoadEngine replay journals transparently; a journaled snapshot still
// refuses to load against any dataset other than the one it was appended
// for (index.ErrDatasetMismatch).
func (e *Engine) AppendIndexDelta(f io.ReadWriteSeeker) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	v := e.view.Load()
	dp, ok := v.m.(index.DeltaPersistable)
	if !ok {
		return fmt.Errorf("igq: method %s does not support index delta persistence", v.m.Name())
	}
	return dp.AppendDelta(f)
}

// MaintainIndexDelta is AppendIndexDelta plus idle compaction: it persists
// any pending mutations and, even when nothing is pending, folds the
// journals into a fresh compact base once their replay-weighted debt
// crosses the compaction threshold. AppendIndexDelta checks compaction
// *before* appending, so the last append of a mutation burst can leave the
// file just over the threshold; a process that then goes quiet would carry
// that journal debt until its next mutation. Serving deployments call this
// from a maintenance timer (cmd/igqserve's -maintain-every) and on
// graceful shutdown. Returns whether f was modified.
func (e *Engine) MaintainIndexDelta(f io.ReadWriteSeeker) (bool, error) {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	v := e.view.Load()
	dm, ok := v.m.(index.DeltaMaintainable)
	if !ok {
		return false, fmt.Errorf("igq: method %s does not support index delta maintenance", v.m.Name())
	}
	return dm.MaintainDelta(f)
}

// Engine snapshot envelope: magic, version, flags, then the index snapshot
// (self-delimiting — every section reads exactly its own bytes) followed
// (when flagged) by the cache snapshot.
const (
	engineMagic           = "IGQENG"
	engineSnapshotVersion = 1
	engineFlagCache       = 1 << 0
)

// Save writes one combined snapshot of everything the engine has earned:
// the dataset index (as SaveIndex) and, when the cache is enabled, the iGQ
// query cache (as SaveCache). LoadEngine restores both in one call. Safe
// while queries are in flight — the cache section is cut at a consistent
// generation, exactly like SaveCache. Both sections stream to w section by
// section (the trie writer buffers one encoded segment at a time, never
// the whole index).
func (e *Engine) Save(w io.Writer) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	v := e.view.Load()
	p, ok := v.m.(index.Persistable)
	if !ok {
		return fmt.Errorf("igq: method %s does not support index persistence", v.m.Name())
	}
	ig := e.ig.Load()
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, engineMagic...)
	hdr = binary.AppendUvarint(hdr, engineSnapshotVersion)
	var flags uint64
	if ig != nil {
		flags |= engineFlagCache
	}
	hdr = binary.AppendUvarint(hdr, flags)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if err := p.SaveIndex(w); err != nil {
		return err
	}
	if ig != nil {
		return ig.Save(w)
	}
	return nil
}

// LoadEngine constructs an engine over db from a combined snapshot written
// by Engine.Save, without enumerating the dataset: the index is decoded
// from its per-shard segments (across opt.BuildWorkers goroutines) and the
// cache — if the snapshot carries one and opt does not disable it — is
// restored on top. The snapshot must match db (checksum-guarded) and
// opt.Method must match the saved index's method. The loaded engine
// answers byte-identically to one freshly built by NewEngine.
//
// A snapshot whose trailing delta journal is torn (crash mid-append) is
// self-healed to the state of the last committed append; LoadEngineReport
// exposes the recovery details, and LoadEngineFile additionally repairs
// the file on disk.
func LoadEngine(r io.Reader, db []*Graph, opt EngineOptions) (*Engine, error) {
	e, _, err := LoadEngineReport(r, db, opt)
	return e, err
}

// LoadEngineReport is LoadEngine plus a report of what the load found: a
// non-nil LoadReport.RecoveredTail means the snapshot's trailing delta
// journal was torn and the committed prefix was loaded instead (with the
// cache section, which follows the tear in a combined snapshot, discarded
// and rebuilt empty). The offsets in the report are absolute within r, so
// a caller owning the underlying file can repair it — or use
// LoadEngineFile, which does.
func LoadEngineReport(r io.Reader, db []*Graph, opt EngineOptions) (*Engine, LoadReport, error) {
	if len(db) == 0 {
		return nil, LoadReport{}, errors.New("igq: empty dataset")
	}
	opt = opt.normalized()
	// Count header bytes so index-section recovery offsets can be
	// translated into r-absolute ones.
	cr := &index.CountingScanner{R: index.AsByteScanner(r)}
	var magic [len(engineMagic)]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, LoadReport{}, fmt.Errorf("igq: reading snapshot magic: %w", err)
	}
	if string(magic[:]) != engineMagic {
		return nil, LoadReport{}, fmt.Errorf("igq: not an engine snapshot (magic %q)", magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, LoadReport{}, fmt.Errorf("igq: reading snapshot version: %w", err)
	}
	if version < 1 || version > engineSnapshotVersion {
		return nil, LoadReport{}, fmt.Errorf("igq: engine snapshot version %d unsupported (this build reads ≤ %d)",
			version, engineSnapshotVersion)
	}
	flags, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, LoadReport{}, fmt.Errorf("igq: reading snapshot flags: %w", err)
	}
	m, err := newMethod(opt)
	if err != nil {
		return nil, LoadReport{}, err
	}
	p, ok := m.(index.Persistable)
	if !ok {
		return nil, LoadReport{}, fmt.Errorf("igq: method %s does not support index persistence", m.Name())
	}
	headerBytes := cr.N
	// cr is a ByteScanner, so LoadIndex consumes exactly the index section
	// and leaves cr positioned at the cache section.
	idxRep, err := p.LoadIndex(cr, db)
	if err != nil {
		return nil, LoadReport{}, err
	}
	rep := LoadReport{RecoveredTail: tailRecoveryFrom(idxRep.RecoveredTail, headerBytes)}
	if cf, ok := m.(index.CountFilterer); ok {
		// The snapshot's feature length wins (the index was built with it);
		// keep the cache-side enumeration consistent with it.
		opt.MaxPathLen = cf.FeatureMaxPathLen()
	}
	e := &Engine{superQ: opt.Supergraph, opt: opt}
	e.view.Store(&engineView{db: db, m: m})
	if !opt.DisableCache {
		if flags&engineFlagCache != 0 && rep.RecoveredTail == nil {
			ig, err := core.Load(cr, m, db, e.coreOptions())
			if err != nil {
				return nil, LoadReport{}, fmt.Errorf("igq: restoring cache: %w", err)
			}
			e.ig.Store(ig)
		} else {
			// Either the snapshot carries no cache, or tail recovery
			// consumed the rest of the stream (the cache section sits after
			// the tear and cannot be trusted): start with a fresh cache —
			// cached knowledge is cheap to re-earn, the index is not.
			if flags&engineFlagCache != 0 && rep.RecoveredTail != nil {
				rep.CacheDiscarded = true
			}
			e.ig.Store(core.New(m, db, e.coreOptions()))
		}
	}
	return e, rep, nil
}

// SaveEngineFile atomically writes a combined engine snapshot (Engine.Save)
// to path: the bytes land in a temp file in path's directory, are fsynced,
// and replace path with a rename only once complete — a crash at any point
// leaves either the old snapshot or the new one, never a torn file.
func SaveEngineFile(path string, e *Engine) error {
	return persistio.AtomicWriteFile(path, e.Save)
}

// SaveIndexFile atomically writes an index-only snapshot (Engine.SaveIndex)
// to path, with the same all-or-nothing guarantee as SaveEngineFile. The
// written file is the new base for AppendIndexDelta.
func SaveIndexFile(path string, e *Engine) error {
	return persistio.AtomicWriteFile(path, e.SaveIndex)
}

// LoadEngineFile is LoadEngineReport over a snapshot file, with on-disk
// self-healing: when the load recovers a torn journal tail, the file is
// rewritten (atomically) as a clean snapshot of the recovered state, so
// the next start loads cleanly and the file accepts delta appends again.
// LoadReport.Repaired reports the rewrite.
//
// With WithLazyLoad the snapshot is mapped rather than decoded: posting
// segments load on first touch under the given residency budget, and the
// returned engine holds the mapping open (release with Engine.Close). The
// self-healing behaviour is unchanged — repairing a torn tail materialises
// the index first.
func LoadEngineFile(path string, db []*Graph, opt EngineOptions, lopts ...EngineLoadOption) (*Engine, LoadReport, error) {
	var lcfg engineLoadConfig
	for _, o := range lopts {
		o(&lcfg)
	}
	if lcfg.lazy {
		return loadEngineFileLazy(path, db, opt, lcfg.budget)
	}
	return loadEngineFileEager(path, db, opt)
}

// loadEngineFileEager is the decode-everything load path.
func loadEngineFileEager(path string, db []*Graph, opt EngineOptions) (*Engine, LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, LoadReport{}, err
	}
	e, rep, err := LoadEngineReport(f, db, opt)
	f.Close()
	if err != nil {
		return nil, rep, err
	}
	if rep.RecoveredTail != nil {
		if err := SaveEngineFile(path, e); err != nil {
			return nil, rep, fmt.Errorf("igq: repairing snapshot %s: %w", path, err)
		}
		rep.Repaired = true
	}
	return e, rep, nil
}

// BatchResult pairs a query index with its result.
type BatchResult struct {
	Index  int
	Result Result
	Err    error
}

// streamConfig is the resolved option set of one QueryStream call.
type streamConfig struct {
	workers  int
	buffer   int
	queryOpt []QueryOption
}

// StreamOption customises one QueryStream call.
type StreamOption func(*streamConfig)

// StreamWorkers bounds the number of queries QueryStream processes
// concurrently (0 → one per runtime.GOMAXPROCS(0)).
func StreamWorkers(n int) StreamOption { return func(c *streamConfig) { c.workers = n } }

// StreamBuffer sets the capacity of the returned result channel (default
// unbuffered). A buffer lets fast queries complete without waiting for a
// slow consumer.
func StreamBuffer(n int) StreamOption { return func(c *streamConfig) { c.buffer = n } }

// StreamQueryOptions applies per-call Query options (WithoutCache,
// WithoutAdmission) to every query of the stream.
func StreamQueryOptions(opts ...QueryOption) StreamOption {
	return func(c *streamConfig) { c.queryOpt = opts }
}

// QueryStream answers a continuous stream of queries: queries are accepted
// from in as they arrive and outcomes are emitted on the returned channel
// as they finish — the channel-fed core of the serving front-end, and the
// primitive QueryBatch and QueryBatchCtx are built on. BatchResult.Index is
// the arrival order (0 for the first query received); results are emitted
// in completion order, which under concurrency is not arrival order.
//
// Up to StreamWorkers queries are in flight at once, each through the same
// snapshot-isolated Query path any other caller uses — a stream runs
// concurrently with other streams, single queries and dataset mutations.
// The stream ends when in is closed and every accepted query has been
// emitted, or when ctx is cancelled: in-flight queries then return ctx's
// error promptly (the per-query cancellation path), queries not yet read
// from in are never accepted, and the result channel always closes.
//
// The caller must drain the returned channel until it closes; results are
// never dropped, so an abandoned receiver would block the workers (close
// in and drain to release them).
func (e *Engine) QueryStream(ctx context.Context, in <-chan *Graph, opts ...StreamOption) <-chan BatchResult {
	var cfg streamConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	out := make(chan BatchResult, cfg.buffer)
	type job struct {
		i int
		g *Graph
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := e.Query(ctx, j.g, cfg.queryOpt...)
				out <- BatchResult{Index: j.i, Result: r, Err: err}
			}
		}()
	}
	go func() {
		defer close(out)
		// The feeder assigns arrival indexes and stops at cancellation —
		// queries still unread from in are simply never accepted. Workers
		// then drain their remaining jobs (each a prompt ctx-error return)
		// and the output closes deterministically.
		i := 0
	feed:
		for {
			select {
			case <-ctx.Done():
				break feed
			case g, ok := <-in:
				if !ok {
					break feed
				}
				select {
				case jobs <- job{i, g}:
					i++
				case <-ctx.Done():
					break feed
				}
			}
		}
		close(jobs)
		wg.Wait()
	}()
	return out
}

// QueryBatch answers many queries, returning results in input order.
// Equivalent to QueryBatchCtx with a background context.
func (e *Engine) QueryBatch(queries []*Graph, workers int) []BatchResult {
	return e.QueryBatchCtx(context.Background(), queries, workers)
}

// QueryBatchCtx answers the batch through the QueryStream pipeline across
// workers goroutines (0 → one per runtime.GOMAXPROCS(0)), cache enabled or
// not: the engine's snapshot-isolated query path lets every worker overlap
// its filtering, cache probes and verification with the others', with
// window flushes as the only serialization points. Results are in input
// order (the stream's completion-order results are re-indexed).
//
// Cancellation: queries not yet finished when ctx is cancelled report
// ctx's error in their BatchResult; already-completed results are kept.
func (e *Engine) QueryBatchCtx(ctx context.Context, queries []*Graph, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	in := make(chan *Graph)
	go func() {
		defer close(in)
		for _, q := range queries {
			select {
			case in <- q:
			case <-ctx.Done():
				return
			}
		}
	}()
	seen := make([]bool, len(queries))
	for br := range e.QueryStream(ctx, in, StreamWorkers(workers)) {
		out[br.Index] = br
		seen[br.Index] = true
	}
	// Queries the cancelled stream never accepted still owe a result.
	for i := range out {
		if !seen[i] {
			out[i] = BatchResult{Index: i, Err: context.Cause(ctx)}
		}
	}
	return out
}

// MethodName returns the wrapped method's display name.
func (e *Engine) MethodName() string { return e.view.Load().m.Name() }

// Dataset returns the engine's current dataset generation. Callers must
// treat the slice and the graphs as read-only; mutation goes through
// AddGraphs/RemoveGraphs.
func (e *Engine) Dataset() []*Graph { return e.view.Load().db }

// CacheLen returns the number of cached queries (0 when disabled).
func (e *Engine) CacheLen() int {
	if ig := e.ig.Load(); ig != nil {
		return ig.CacheLen()
	}
	return 0
}

// IndexSizeBytes returns the dataset index footprint plus the iGQ overhead.
func (e *Engine) IndexSizeBytes() (method, cache int) {
	method = e.view.Load().m.SizeBytes()
	if ig := e.ig.Load(); ig != nil {
		cache = ig.SizeBytes()
	}
	return method, cache
}

// DatasetSpec describes a synthetic dataset family (re-export of the
// generator used to emulate the paper's datasets).
type DatasetSpec = dataset.Spec

// Dataset families matching the paper's Table 1 (full scale); use
// Scaled(countFrac, sizeFrac) for tractable derivatives.
func AIDSSpec() DatasetSpec      { return dataset.AIDS() }
func PDBSSpec() DatasetSpec      { return dataset.PDBS() }
func PPISpec() DatasetSpec       { return dataset.PPI() }
func SyntheticSpec() DatasetSpec { return dataset.Synthetic() }

// GenerateDataset produces a synthetic dataset from a spec.
func GenerateDataset(spec DatasetSpec) []*Graph { return dataset.Generate(spec) }

// WorkloadSpec describes a query workload (re-export; see the paper §7.1).
type WorkloadSpec = workload.Spec

// Workload distributions.
const (
	Uniform = workload.Uniform
	Zipf    = workload.Zipf
)

// GenerateWorkload extracts a query stream from db per the paper's
// protocol, returning the query graphs.
func GenerateWorkload(db []*Graph, spec WorkloadSpec) []*Graph {
	qs := workload.Generate(db, spec)
	out := make([]*Graph, len(qs))
	for i, q := range qs {
		out[i] = q.G
	}
	return out
}

// ExtractQuery performs one BFS query extraction from g (paper §7.1).
func ExtractQuery(g *Graph, startVertex, targetEdges int) *Graph {
	return workload.Extract(g, startVertex, targetEdges)
}
