package igq

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func smallDB(t *testing.T) []*Graph {
	t.Helper()
	return GenerateDataset(AIDSSpec().Scaled(0.001, 1))
}

func TestEngineSubgraphLifecycle(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: Grapes, CacheSize: 20, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractQuery(db[0], 0, 4)
	res, err := eng.QuerySubgraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("extracted query matched nothing")
	}
	for i, m := range res.Matches {
		if !IsSubgraph(q, m) {
			t.Errorf("match %d does not contain the query", i)
		}
		if m != db[res.IDs[i]] {
			t.Errorf("IDs and Matches disagree at %d", i)
		}
	}
	// a repeated query must hit the cache after the window flushes
	for i := 0; i < 6; i++ {
		eng.QuerySubgraph(ExtractQuery(db[1+i], 0, 8))
	}
	res2, _ := eng.QuerySubgraph(q.Clone())
	if !res2.Stats.AnsweredByCache {
		t.Error("repeat query not answered by cache")
	}
	if !reflect.DeepEqual(res2.IDs, res.IDs) {
		t.Error("cached answer differs")
	}
	if eng.CacheLen() == 0 {
		t.Error("cache empty after flushes")
	}
	if m, c := eng.IndexSizeBytes(); m <= 0 || c <= 0 {
		t.Errorf("index sizes: method=%d cache=%d", m, c)
	}
}

func TestEngineMethodsAgree(t *testing.T) {
	db := smallDB(t)
	q := ExtractQuery(db[2], 0, 8)
	var ref []int32
	for i, kind := range []MethodKind{Grapes, GGSX, CTIndex} {
		eng, err := NewEngine(db, EngineOptions{Method: kind})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.QuerySubgraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.IDs
			continue
		}
		if !reflect.DeepEqual(res.IDs, ref) {
			t.Errorf("%v answers %v, want %v", kind, res.IDs, ref)
		}
	}
}

func TestEngineDisableCache(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractQuery(db[0], 0, 4)
	a, _ := eng.QuerySubgraph(q)
	b, _ := eng.QuerySubgraph(q.Clone())
	if b.Stats.AnsweredByCache {
		t.Error("cache disabled but hit recorded")
	}
	if !reflect.DeepEqual(a.IDs, b.IDs) {
		t.Error("uncached answers differ")
	}
	if eng.CacheLen() != 0 {
		t.Error("cache reported entries while disabled")
	}
}

func TestEngineSupergraph(t *testing.T) {
	// dataset of small graphs; supergraph queries retrieve contained ones
	rng := rand.New(rand.NewSource(5))
	var db []*Graph
	for i := 0; i < 15; i++ {
		g := NewGraph(3)
		g.AddVertex(Label(rng.Intn(3)))
		g.AddVertex(Label(rng.Intn(3)))
		g.AddVertex(Label(rng.Intn(3)))
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.ID = i
		db = append(db, g)
	}
	eng, err := NewEngine(db, EngineOptions{Supergraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.MethodName() != "Contain" {
		t.Errorf("method = %q", eng.MethodName())
	}
	// big query containing some of them
	q := NewGraph(6)
	for i := 0; i < 6; i++ {
		q.AddVertex(Label(i % 3))
	}
	for i := 0; i+1 < 6; i++ {
		q.AddEdge(i, i+1)
	}
	res, err := eng.QuerySupergraph(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if !IsSubgraph(m, q) {
			t.Errorf("match %d not contained in the query", m.ID)
		}
	}
	// wrong-direction call errors
	if _, err := eng.QuerySubgraph(q); err == nil {
		t.Error("subgraph call on supergraph engine should error")
	}
}

func TestEngineWrongDirectionErrors(t *testing.T) {
	db := smallDB(t)
	eng, _ := NewEngine(db, EngineOptions{Method: GGSX})
	if _, err := eng.QuerySupergraph(db[0]); err == nil {
		t.Error("supergraph call on subgraph engine should error")
	}
}

func TestEngineEmptyDataset(t *testing.T) {
	if _, err := NewEngine(nil, EngineOptions{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestEngineUnknownMethod(t *testing.T) {
	db := smallDB(t)
	if _, err := NewEngine(db, EngineOptions{Method: MethodKind(99)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMethodKindString(t *testing.T) {
	names := map[MethodKind]string{
		Grapes: "Grapes", GGSX: "GGSX", CTIndex: "CT-Index",
		Containment: "Contain", MethodKind(42): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestGraphCodecRoundTripViaAPI(t *testing.T) {
	db := smallDB(t)[:5]
	var buf bytes.Buffer
	if err := WriteGraphs(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraphs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("round trip lost graphs: %d", len(back))
	}
	for i := range back {
		if !Isomorphic(db[i], back[i]) {
			t.Errorf("graph %d changed in round trip", i)
		}
	}
}

func TestGenerateWorkloadViaAPI(t *testing.T) {
	db := smallDB(t)
	qs := GenerateWorkload(db, WorkloadSpec{
		NumQueries: 20, GraphDist: Zipf, NodeDist: Uniform, Alpha: 1.4, Seed: 3,
	})
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if q.NumEdges() == 0 {
			t.Errorf("query %d empty", i)
		}
	}
}
