package igq

// Engine-level crash-safety: torn-tail self-healing through the public
// load paths, atomic snapshot files, and panic isolation in the serving
// hot path. The byte-level crash sweeps live in internal/persistio and
// internal/index (TestCrashSoak*); these tests pin the contracts the
// engine layers on top.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/persistio"
)

// answersOf serves qs without the cache, so the result depends only on the
// dataset index state.
func answersOf(t *testing.T, eng *Engine, qs []*Graph) [][]int32 {
	t.Helper()
	out := make([][]int32, len(qs))
	for i, q := range qs {
		res, err := eng.Query(context.Background(), q, WithoutCache())
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = res.IDs
	}
	return out
}

// TestEngineLoadIndexTornAppendRecovery: a crash mid-AppendIndexDelta
// leaves a torn trailing journal; Engine.LoadIndex must self-heal to the
// pre-append state and report the recovery, and the intact file must
// still load to the post-append state.
func TestEngineLoadIndexTornAppendRecovery(t *testing.T) {
	db := smallDB(t)
	extra := GenerateDataset(AIDSSpec().Scaled(0.0005, 2))
	opt := EngineOptions{Method: GGSX, DisableCache: true, Shards: 1, BuildWorkers: 1}
	eng, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	qs := engineQueries(db, 12, 3)
	preAnswers := answersOf(t, eng, qs)

	file := persistio.NewMemFile()
	if err := eng.SaveIndex(file); err != nil {
		t.Fatal(err)
	}
	baseLen := int(file.Len())
	if err := eng.AddGraphs(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	if err := eng.AppendIndexDelta(file); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), file.Bytes()...)
	if len(full) <= baseLen {
		t.Fatalf("append did not grow the file (%d -> %d)", baseLen, len(full))
	}

	// Post-append answers over the extended dataset, for the oracle below.
	postQs := engineQueries(eng.Dataset(), 12, 4)
	postAnswers := answersOf(t, eng, postQs)

	// Tear the journal section at a few depths, leaving the base intact.
	// A deep tear self-heals to the pre-append state; a tear that removes
	// only the trailing terminator leaves a CRC-valid section, which
	// counts as committed — the load then lands on the post-append state
	// (and thus only accepts the extended dataset). Never anything in
	// between, never a failed load.
	preDB, postDB := db, eng.Dataset()
	for _, cut := range []int{1, 2, (len(full) - baseLen) / 2, len(full) - baseLen - 1} {
		torn := full[:len(full)-cut]
		fresh, err := NewEngine(preDB, opt)
		if err != nil {
			t.Fatal(err)
		}
		rep, lerr := fresh.LoadIndex(bytes.NewReader(torn))
		if lerr == nil {
			if rep.RecoveredTail == nil {
				t.Fatalf("cut=%d: recovery not reported", cut)
			}
			if got := answersOf(t, fresh, qs); !reflect.DeepEqual(got, preAnswers) {
				t.Fatalf("cut=%d: recovered index diverges from pre-append state", cut)
			}
			continue
		}
		fresh, err = NewEngine(postDB, opt)
		if err != nil {
			t.Fatal(err)
		}
		rep, err = fresh.LoadIndex(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("cut=%d: torn tail loads against neither dataset: %v / %v", cut, lerr, err)
		}
		if rep.RecoveredTail == nil {
			t.Fatalf("cut=%d: recovery not reported", cut)
		}
		if got := answersOf(t, fresh, postQs); !reflect.DeepEqual(got, postAnswers) {
			t.Fatalf("cut=%d: recovered index diverges from post-append state", cut)
		}
	}

	// The intact file still loads to the post-append state — against the
	// extended dataset only (the journal stamp refuses the old one).
	post, err := NewEngine(eng.Dataset(), opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := post.LoadIndex(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveredTail != nil {
		t.Fatalf("intact journaled snapshot reported recovery: %+v", rep.RecoveredTail)
	}
	pre2, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pre2.LoadIndex(bytes.NewReader(full)); err == nil {
		t.Fatal("journaled snapshot loaded against the pre-append dataset")
	}
}

// TestLoadEngineFileSelfHeal: a combined engine snapshot torn inside the
// index section loses its cache section too; LoadEngineFile must recover
// the index, discard the cache, rewrite the file as a clean snapshot and
// report all three.
func TestLoadEngineFileSelfHeal(t *testing.T) {
	db := smallDB(t)
	opt := EngineOptions{Method: GGSX, CacheSize: 10, Window: 3, Shards: 1, BuildWorkers: 1}
	eng, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	qs := engineQueries(db, 15, 5)
	for _, q := range qs { // fill the cache so the snapshot carries one
		if _, err := eng.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	preAnswers := answersOf(t, eng, qs)

	dir := t.TempDir()
	path := filepath.Join(dir, "engine.snap")
	if err := SaveEngineFile(path, eng); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the index section (single shard + single worker keeps the
	// encoding deterministic) so the tear lands inside it: everything
	// after it — including the whole cache section — is then lost.
	var idx bytes.Buffer
	if err := eng.SaveIndex(&idx); err != nil {
		t.Fatal(err)
	}
	idxStart := bytes.Index(full, idx.Bytes())
	if idxStart < 0 {
		t.Fatal("index section not found in the engine snapshot")
	}
	if err := os.WriteFile(path, full[:idxStart+idx.Len()-1], 0o644); err != nil {
		t.Fatal(err)
	}

	healed, rep, err := LoadEngineFile(path, db, opt)
	if err != nil {
		t.Fatalf("torn engine snapshot failed to self-heal: %v", err)
	}
	if rep.RecoveredTail == nil || !rep.CacheDiscarded || !rep.Repaired {
		t.Fatalf("report = %+v, want recovered+discarded+repaired", rep)
	}
	if healed.CacheLen() != 0 {
		t.Fatalf("discarded cache still holds %d entries", healed.CacheLen())
	}
	if got := answersOf(t, healed, qs); !reflect.DeepEqual(got, preAnswers) {
		t.Fatal("healed engine diverges from the saved index state")
	}

	// The repair rewrote the file: the next load is clean.
	again, rep2, err := LoadEngineFile(path, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RecoveredTail != nil || rep2.CacheDiscarded || rep2.Repaired {
		t.Fatalf("repaired file still reports damage: %+v", rep2)
	}
	if got := answersOf(t, again, qs); !reflect.DeepEqual(got, preAnswers) {
		t.Fatal("repaired snapshot diverges")
	}

	// And the healed engine keeps earning: mutate, re-save, reload.
	if err := healed.AddGraphs(context.Background(), GenerateDataset(AIDSSpec().Scaled(0.0005, 3))); err != nil {
		t.Fatal(err)
	}
	if err := SaveEngineFile(path, healed); err != nil {
		t.Fatal(err)
	}
	if _, rep3, err := LoadEngineFile(path, healed.Dataset(), opt); err != nil || rep3.RecoveredTail != nil {
		t.Fatalf("post-heal save does not round-trip: rep=%+v err=%v", rep3, err)
	}
}

// TestSaveEngineFilePreservesOnError: a save that fails (here: a method
// without persistence) must leave an existing snapshot byte-identical —
// the atomic temp+rename path never opens the destination itself.
func TestSaveEngineFilePreservesOnError(t *testing.T) {
	db := smallDB(t)
	good, err := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "engine.snap")
	if err := SaveEngineFile(path, good); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bad, err := NewEngine(db, EngineOptions{Method: CTIndex, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveEngineFile(path, bad); err == nil {
		t.Fatal("saving a non-persistable method succeeded")
	}
	if err := SaveIndexFile(path, bad); err == nil {
		t.Fatal("index save of a non-persistable method succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save damaged the existing snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("failed saves left temp files behind: %v", entries)
	}
}

// poisonIndex wraps a live GGSX index and panics when verifying one
// specific query pointer — a stand-in for a latent bug in a method's
// verification path. Embedding keeps every optional capability (Mutable,
// Persistable, CountFilterer, DictProvider) promoted; the mutation
// methods re-wrap so the poison survives copy-on-write generation swaps.
type poisonIndex struct {
	*ggsx.Index
	victim *Graph
	hits   *atomic.Int64
}

func (p *poisonIndex) Verify(q *Graph, id int32) bool {
	if q == p.victim {
		p.hits.Add(1)
		panic("poisonIndex: verification bug")
	}
	return p.Index.Verify(q, id)
}

func (p *poisonIndex) AppendGraphs(gs []*Graph) (index.Mutable, []*Graph, error) {
	m, db, err := p.Index.AppendGraphs(gs)
	if err != nil {
		return nil, nil, err
	}
	return &poisonIndex{Index: m.(*ggsx.Index), victim: p.victim, hits: p.hits}, db, nil
}

func (p *poisonIndex) RemoveGraphs(positions []int) (index.Mutable, []*Graph, []int32, error) {
	m, db, mapping, err := p.Index.RemoveGraphs(positions)
	if err != nil {
		return nil, nil, nil, err
	}
	return &poisonIndex{Index: m.(*ggsx.Index), victim: p.victim, hits: p.hits}, db, mapping, nil
}

// TestQueryPanicIsolation: a panic in the verification hot path of one
// query must not take down the batch, the concurrent mutators, or the
// engine — the poisoned query returns *PanicError, everything else keeps
// working, and Stats().Panics counts the containments. Run with -race in
// CI, where the concurrent mutate/save traffic makes the isolation real.
func TestQueryPanicIsolation(t *testing.T) {
	db := smallDB(t)
	opt := EngineOptions{Method: GGSX, CacheSize: 20, Window: 5}
	eng, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}

	// A victim with real candidates, so Verify actually runs.
	victim := ExtractQuery(db[0], 0, 6)
	var hits atomic.Int64
	v := eng.view.Load()
	pm := &poisonIndex{Index: v.m.(*ggsx.Index), victim: victim, hits: &hits}
	eng.view.Store(&engineView{db: v.db, m: pm})
	eng.ig.Store(core.New(pm, v.db, eng.coreOptions()))
	if got := pm.Filter(victim); len(got) == 0 {
		t.Fatal("victim query has no candidates; the poison would never fire")
	}

	qs := engineQueries(db, 40, 9)
	victimAt := map[int]bool{}
	for _, i := range []int{3, 17, 31} {
		qs[i] = victim
		victimAt[i] = true
	}

	// Concurrent earners: dataset mutations and snapshot saves racing the
	// batch, exactly the traffic a panic must not poison.
	extras := [][]*Graph{
		GenerateDataset(AIDSSpec().Scaled(0.0003, 11)),
		GenerateDataset(AIDSSpec().Scaled(0.0003, 12)),
		GenerateDataset(AIDSSpec().Scaled(0.0003, 13)),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, extra := range extras {
			if err := eng.AddGraphs(context.Background(), extra); err != nil {
				t.Errorf("concurrent AddGraphs: %v", err)
				return
			}
			var buf bytes.Buffer
			if err := eng.Save(&buf); err != nil {
				t.Errorf("concurrent Save: %v", err)
				return
			}
		}
	}()
	results := eng.QueryBatchCtx(context.Background(), qs, 4)
	<-done

	var panics int
	for i, r := range results {
		if victimAt[i] {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("victim %d: err = %v, want *PanicError", i, r.Err)
			}
			if len(pe.Stack) == 0 || pe.Value == nil {
				t.Fatalf("victim %d: PanicError missing stack or value: %+v", i, pe)
			}
			panics++
			continue
		}
		if r.Err != nil {
			t.Fatalf("innocent query %d failed: %v", i, r.Err)
		}
	}
	if hits.Load() == 0 {
		t.Fatal("poison never fired — the test proved nothing")
	}
	if got := eng.Stats().Panics; got != int64(panics) {
		t.Fatalf("Stats().Panics = %d, want %d", got, panics)
	}

	// The engine is still fully serviceable: fresh queries answer and the
	// next snapshot round-trips into a clean engine.
	if _, err := eng.Query(context.Background(), ExtractQuery(db[1], 0, 4)); err != nil {
		t.Fatalf("post-panic query: %v", err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatalf("post-panic save: %v", err)
	}
	clean, err := LoadEngine(bytes.NewReader(buf.Bytes()), eng.Dataset(), opt)
	if err != nil {
		t.Fatalf("post-panic snapshot does not load: %v", err)
	}
	// The restored engine runs an unpoisoned method: the victim query now
	// answers instead of panicking.
	if _, err := clean.Query(context.Background(), victim); err != nil {
		t.Fatalf("victim query on the restored engine: %v", err)
	}
}
