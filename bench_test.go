package igq_test

// One benchmark per table and figure of the paper's evaluation, wrapping
// the experiment regenerators at a reduced scale (benchScale) so the whole
// suite completes in minutes. Run a single figure with e.g.
//
//	go test -bench BenchmarkFig7IsoSpeedupAIDS -benchmem
//
// and the full paper sweep with
//
//	go test -bench 'BenchmarkFig|BenchmarkTable' -benchmem
//
// For publication-shaped output (larger scale, readable tables) use
// cmd/igqbench instead; these benches exist to regenerate every experiment
// under `go test -bench` as required by the reproduction contract.

import (
	"context"
	"io"
	"testing"

	igq "repro"
	"repro/internal/experiments"
)

const benchScale = 0.2

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := experiments.Config{Scale: benchScale, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1: dataset characteristics.
func BenchmarkTable1Datasets(b *testing.B) { runExperiment(b, "table1") }

// Fig 1: filtering vs verification time share (3 methods × AIDS, PDBS).
func BenchmarkFig1TimeBreakdown(b *testing.B) { runExperiment(b, "fig1") }

// Fig 2: candidates / answers / false positives, AIDS.
func BenchmarkFig2FilteringAIDS(b *testing.B) { runExperiment(b, "fig2") }

// Fig 3: candidates / answers / false positives, PDBS.
func BenchmarkFig3FilteringPDBS(b *testing.B) { runExperiment(b, "fig3") }

// Fig 7: iso-test speedup, AIDS, 4 workloads × 4 methods.
func BenchmarkFig7IsoSpeedupAIDS(b *testing.B) { runExperiment(b, "fig7") }

// Fig 8: iso-test speedup, PDBS.
func BenchmarkFig8IsoSpeedupPDBS(b *testing.B) { runExperiment(b, "fig8") }

// Fig 9: iso-test speedup vs Zipf α, PDBS/Grapes(6).
func BenchmarkFig9ZipfIsoTests(b *testing.B) { runExperiment(b, "fig9") }

// Fig 10: iso-test speedup per query group vs cache size, PPI/Grapes(6).
func BenchmarkFig10PPIGroups(b *testing.B) { runExperiment(b, "fig10") }

// Fig 11: iso-test speedup per query group, Synthetic/Grapes(6)/α=2.4.
func BenchmarkFig11SyntheticGroups(b *testing.B) { runExperiment(b, "fig11") }

// Fig 12: query-time speedup, AIDS.
func BenchmarkFig12TimeSpeedupAIDS(b *testing.B) { runExperiment(b, "fig12") }

// Fig 13: query-time speedup, PDBS.
func BenchmarkFig13TimeSpeedupPDBS(b *testing.B) { runExperiment(b, "fig13") }

// Fig 14: query-time speedup vs cache size, PDBS/Grapes(6).
func BenchmarkFig14CacheSize(b *testing.B) { runExperiment(b, "fig14") }

// Fig 15: query-time speedup vs Zipf α, PDBS/Grapes(6).
func BenchmarkFig15ZipfTime(b *testing.B) { runExperiment(b, "fig15") }

// Fig 16: query-time speedup per query group, PPI/Grapes(6).
func BenchmarkFig16PPIGroupsTime(b *testing.B) { runExperiment(b, "fig16") }

// Fig 17: query-time speedup per query group, Synthetic/Grapes(6).
func BenchmarkFig17SyntheticGroupsTime(b *testing.B) { runExperiment(b, "fig17") }

// Fig 18: absolute index sizes, AIDS.
func BenchmarkFig18IndexSizes(b *testing.B) { runExperiment(b, "fig18") }

// Ablations and extensions (DESIGN.md additions beyond the paper's figures).
func BenchmarkAblationPaths(b *testing.B)     { runExperiment(b, "ablation-paths") }
func BenchmarkAblationEviction(b *testing.B)  { runExperiment(b, "ablation-eviction") }
func BenchmarkAblationEngines(b *testing.B)   { runExperiment(b, "ablation-engines") }
func BenchmarkAblationPartition(b *testing.B) { runExperiment(b, "ablation-partition") }
func BenchmarkSupergraphSpeedup(b *testing.B) { runExperiment(b, "supergraph-speedup") }
func BenchmarkServing(b *testing.B)           { runExperiment(b, "serving") }

// End-to-end micro benchmark of the public API on a hierarchical stream:
// the per-query cost a downstream user actually pays.
func BenchmarkEngineQueryStream(b *testing.B) {
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.005, 1))
	eng, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, CacheSize: 50, Window: 10})
	if err != nil {
		b.Fatal(err)
	}
	queries := igq.GenerateWorkload(db, igq.WorkloadSpec{
		NumQueries: 64, GraphDist: igq.Zipf, NodeDist: igq.Zipf, Alpha: 1.4, Seed: 21,
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(ctx, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// Aggregate throughput of one cache-enabled Engine under concurrent load:
// the concurrent-serving counterpart of BenchmarkEngineQueryStream. Run
// with -cpu 1,2,4,8 to observe scaling (the snapshot-isolated query path
// serializes only at window flushes).
func BenchmarkEngineQueryParallel(b *testing.B) {
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.005, 1))
	eng, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, CacheSize: 50, Window: 10})
	if err != nil {
		b.Fatal(err)
	}
	queries := igq.GenerateWorkload(db, igq.WorkloadSpec{
		NumQueries: 64, GraphDist: igq.Zipf, NodeDist: igq.Zipf, Alpha: 1.4, Seed: 21,
	})
	ctx := context.Background()
	// Warm the cache once so every parallel worker exercises the steady
	// state: snapshot probes, short-circuit hits and occasional flushes.
	for _, q := range queries {
		if _, err := eng.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := eng.Query(ctx, queries[i%len(queries)]); err != nil {
				b.Error(err) // Fatal is not allowed on RunParallel goroutines
				return
			}
			i++
		}
	})
}
