// Social: exploratory social-network analysis, the paper's second
// motivating scenario.
//
// SNA tools (Pajek et al.) derive query graphs by filtering nodes/edges of
// other graphs: a USA friendship pattern is a subgraph of a North-America
// pattern, which is a subgraph of the global pattern. This example models a
// database of community interaction graphs (dense, PPI-like) and an
// interactive analyst session that repeatedly drills down (subgraph
// direction) and broadens (supergraph direction) around popular regions —
// a zipf-zipf stream — and contrasts iGQ's per-query effort against the
// plain method. A second act serves the same session to four analysts at
// once: one Engine, four goroutines, identical answers.
//
// Run with: go run ./examples/social
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	igq "repro"
)

func main() {
	// Community graphs: dense interaction networks (emulating PPI's shape
	// at example scale).
	spec := igq.PPISpec().Scaled(0.6, 0.02).WithDegree(0.55)
	db := igq.GenerateDataset(spec)
	fmt.Printf("community database: %d dense graphs (avg degree ≈ %.1f)\n",
		len(db), avgDegree(db))

	eng, err := igq.NewEngine(db, igq.EngineOptions{
		Method: igq.Grapes, Threads: 6, CacheSize: 40, Window: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := igq.NewEngine(db, igq.EngineOptions{
		Method: igq.Grapes, Threads: 6, DisableCache: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// An analyst session: zipf-zipf drill-downs over popular communities.
	queries := igq.GenerateWorkload(db, igq.WorkloadSpec{
		NumQueries: 120,
		GraphDist:  igq.Zipf,
		NodeDist:   igq.Zipf,
		Alpha:      1.8,
		Seed:       13,
	})

	ctx := context.Background()
	var igqTests, baseTests, hits int
	for i, q := range queries {
		r1, err := eng.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := baseline.Query(ctx, q.Clone())
		if err != nil {
			log.Fatal(err)
		}
		if len(r1.IDs) != len(r2.IDs) {
			log.Fatalf("query %d: answers diverge — correctness bug", i)
		}
		igqTests += r1.Stats.DatasetIsoTests
		baseTests += r2.Stats.DatasetIsoTests
		if r1.Stats.AnsweredByCache {
			hits++
		}
		if (i+1)%40 == 0 {
			fmt.Printf("after %3d queries: %4d tests with iGQ vs %4d without (%.2fx), %d cache short-circuits\n",
				i+1, igqTests, baseTests,
				float64(baseTests)/float64(max(1, igqTests)), hits)
		}
	}
	fmt.Printf("\nfinal: %.2fx fewer isomorphism tests over the session; %d/%d queries answered entirely from cache\n",
		float64(baseTests)/float64(max(1, igqTests)), hits, len(queries))

	// Act two: four analysts share the warmed engine concurrently. The
	// Engine is goroutine-safe — each analyst's answers are identical to a
	// solo session's (the cache only changes how much work a query costs,
	// never what it returns).
	const analysts = 4
	var wg sync.WaitGroup
	var diverged atomic.Bool
	for a := 0; a < analysts; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := a; i < len(queries); i += analysts {
				r, err := eng.Query(ctx, queries[i].Clone())
				if err != nil {
					log.Fatal(err)
				}
				ref, err := baseline.Query(ctx, queries[i].Clone())
				if err != nil {
					log.Fatal(err)
				}
				if len(r.IDs) != len(ref.IDs) {
					diverged.Store(true)
				}
			}
		}(a)
	}
	wg.Wait()
	if diverged.Load() {
		log.Fatal("concurrent answers diverged — correctness bug")
	}
	st := eng.Stats()
	fmt.Printf("\n%d analysts served concurrently by one engine: answers identical.\n", analysts)
	fmt.Printf("engine totals: %d queries, %d cache short-circuits, %d cached patterns, %d flushes\n",
		st.Queries, st.AnsweredByCache, st.CachedQueries, st.Flushes)
}

func avgDegree(db []*igq.Graph) float64 {
	var deg, n float64
	for _, g := range db {
		deg += 2 * float64(g.NumEdges())
		n += float64(g.NumVertices())
	}
	return deg / n
}
