// Supergraph: iGQ accelerating *supergraph* query processing (paper §4.4).
//
// The dataset holds small fragments (think: a library of functional groups)
// and each query is a whole molecule; the answer is every fragment the
// molecule contains. iGQ's two query indexes swap roles in this mode, and
// the inverse "empty-answer" optimal case fires: once a cached query is
// known to contain no fragment, any subgraph of it can skip processing
// entirely.
//
// Run with: go run ./examples/supergraph
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	igq "repro"
)

func main() {
	// fragment library: small connected patterns over a tiny label set
	rng := rand.New(rand.NewSource(3))
	var db []*igq.Graph
	for i := 0; i < 60; i++ {
		db = append(db, randomFragment(rng, 3+rng.Intn(3), i))
	}
	fmt.Printf("fragment library: %d graphs of 3-5 vertices\n", len(db))

	eng, err := igq.NewEngine(db, igq.EngineOptions{
		Supergraph: true, CacheSize: 30, Window: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// queries: "molecules" of growing size; nested ones exercise both
	// inverse knowledge paths
	ctx := context.Background()
	var totalTests, cacheAnswers int
	base := randomFragment(rng, 12, -1)
	for round := 0; round < 12; round++ {
		var q *igq.Graph
		switch round % 3 {
		case 0:
			q = base.Clone() // repeated molecule → identical hit
		case 1:
			q = igq.ExtractQuery(base, 0, 6) // fragment of it → Isub-side hit
		default:
			q = randomFragment(rng, 10+rng.Intn(4), -1)
		}
		res, err := eng.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		totalTests += res.Stats.DatasetIsoTests
		if res.Stats.AnsweredByCache {
			cacheAnswers++
		}
		fmt.Printf("round %2d: |V|=%2d contains %2d fragments; candidates %2d -> %2d, tests %2d, cache-answered=%v\n",
			round, q.NumVertices(), len(res.IDs),
			res.Stats.BaseCandidates, res.Stats.FinalCandidates,
			res.Stats.DatasetIsoTests, res.Stats.AnsweredByCache)

		// verify every reported containment, belt and braces
		for _, m := range res.Matches {
			if !igq.IsSubgraph(m, q) {
				log.Fatalf("round %d: reported fragment %d is not contained!", round, m.ID)
			}
		}
	}
	fmt.Printf("\ntotal dataset isomorphism tests: %d; %d/12 queries answered from cache\n",
		totalTests, cacheAnswers)
}

// randomFragment builds a connected random graph with n vertices over
// labels {0,1,2}.
func randomFragment(rng *rand.Rand, n, id int) *igq.Graph {
	g := igq.NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddVertex(igq.Label(rng.Intn(3)))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
	extra := n / 2
	for e := 0; e < extra; e++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g.ID = id
	return g
}
