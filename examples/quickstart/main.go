// Quickstart: index a small molecule-like dataset, run subgraph queries,
// and watch iGQ turn repeated and nested queries into cache hits.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	igq "repro"
)

func main() {
	// 1. A dataset: 200 AIDS-like molecule graphs (synthetic emulation of
	// the paper's NCI antiviral screen set).
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.005, 1))
	fmt.Printf("dataset: %d labeled graphs\n", len(db))

	// 2. An engine: Grapes path index + iGQ query cache.
	eng, err := igq.NewEngine(db, igq.EngineOptions{
		Method:    igq.Grapes,
		CacheSize: 50,
		Window:    10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A query: extract an 8-edge pattern from one dataset graph
	// (guaranteeing at least one match).
	pattern := igq.ExtractQuery(db[3], 0, 8)
	fmt.Printf("query: %d vertices, %d edges\n", pattern.NumVertices(), pattern.NumEdges())

	ctx := context.Background()
	res, err := eng.Query(ctx, pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first run : %d matches, %d candidates, %d isomorphism tests\n",
		len(res.Matches), res.Stats.BaseCandidates, res.Stats.DatasetIsoTests)

	// 4. Fill the window so the query index absorbs the pattern...
	for i := 0; i < 10; i++ {
		if _, err := eng.Query(ctx, igq.ExtractQuery(db[10+i], 0, 4)); err != nil {
			log.Fatal(err)
		}
	}

	// ...then repeat the query: answered straight from the cache, zero
	// isomorphism tests (the paper's §4.3 "identical query" optimal case).
	res2, err := eng.Query(ctx, pattern.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat run: %d matches, answered by cache: %v, isomorphism tests: %d\n",
		len(res2.Matches), res2.Stats.AnsweredByCache, res2.Stats.DatasetIsoTests)

	// 5. A *subpattern* of the cached query also benefits (formulas (3) and
	// (4)): every graph in the cached answer is skipped, yet appears in the
	// final answer.
	sub := igq.ExtractQuery(db[3], 0, 4)
	res3, err := eng.Query(ctx, sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nested run: %d matches, candidates %d -> %d after iGQ pruning (%d cached-supergraph hits)\n",
		len(res3.Matches), res3.Stats.BaseCandidates, res3.Stats.FinalCandidates, res3.Stats.SubHits)

	method, cache := eng.IndexSizeBytes()
	fmt.Printf("index sizes: method %.1f KB, iGQ overhead %.1f KB\n",
		float64(method)/1024, float64(cache)/1024)
}
