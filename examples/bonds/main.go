// Bonds: the paper's edge-label generalization in action.
//
// §3 of the paper notes that all results "straightforwardly generalize to
// graphs with edge labels"; this example demonstrates exactly that with
// molecule-style bond types (1 = single, 2 = double, 3 = aromatic-ish).
// The same pattern queried with different bond types matches different
// compounds, and iGQ caches bond-labeled queries just like unlabeled ones.
//
// Run with: go run ./examples/bonds
package main

import (
	"context"
	"fmt"
	"log"

	igq "repro"
)

func main() {
	// a compound library with bond-typed edges
	spec := igq.AIDSSpec().Scaled(0.004, 0.6)
	spec.EdgeLabels = 3
	db := igq.GenerateDataset(spec)
	labeled := 0
	for _, g := range db {
		if g.HasEdgeLabels() {
			labeled++
		}
	}
	fmt.Printf("compound library: %d graphs, %d with typed bonds\n", len(db), labeled)

	eng, err := igq.NewEngine(db, igq.EngineOptions{
		Method: igq.Grapes, CacheSize: 40, Window: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// one carbon-chain pattern, three bond-type variants
	mkChain := func(bond igq.Label) *igq.Graph {
		g := igq.NewGraph(3)
		v0 := g.AddVertex(0)
		v1 := g.AddVertex(0)
		v2 := g.AddVertex(0)
		g.AddEdgeLabeled(v0, v1, bond)
		g.AddEdgeLabeled(v1, v2, bond)
		return g
	}
	ctx := context.Background()
	for _, bond := range []igq.Label{1, 2, 3} {
		res, err := eng.Query(ctx, mkChain(bond))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chain with bond type %d: %3d matching compounds (%d iso tests)\n",
			bond, len(res.Matches), res.Stats.DatasetIsoTests)
	}

	// a mixed-bond pattern extracted from a real compound — guaranteed hit,
	// and cached for the repeat
	pattern := igq.ExtractQuery(db[7], 0, 6)
	r1, err := eng.Query(ctx, pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextracted mixed-bond pattern (%d edges): %d matches, %d tests\n",
		pattern.NumEdges(), len(r1.Matches), r1.Stats.DatasetIsoTests)

	for i := 0; i < 8; i++ { // fill the window so the cache absorbs it
		if _, err := eng.Query(ctx, igq.ExtractQuery(db[10+i], 0, 4)); err != nil {
			log.Fatal(err)
		}
	}
	r2, err := eng.Query(ctx, pattern.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat of the same pattern: answered by cache = %v, %d tests\n",
		r2.Stats.AnsweredByCache, r2.Stats.DatasetIsoTests)
	if len(r1.IDs) != len(r2.IDs) {
		log.Fatal("cache changed a bond-labeled answer — correctness bug")
	}
}
