// Molecules: the paper's chemistry motivation made concrete.
//
// Chemical queries are naturally hierarchical — elements ⊆ functional
// groups ⊆ compounds ⊆ compound clusters — so a query stream over a
// molecule database is full of subgraph/supergraph relationships between
// queries. This example builds an AIDS-like database, issues a hierarchical
// query stream (fragments of growing size around shared cores), and
// reports how many isomorphism tests iGQ saves versus the same method
// without the query cache.
//
// Run with: go run ./examples/molecules
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	igq "repro"
)

func main() {
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.01, 1)) // 400 molecules
	fmt.Printf("molecule database: %d graphs\n", len(db))

	cached, err := igq.NewEngine(db, igq.EngineOptions{
		Method: igq.Grapes, CacheSize: 80, Window: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	plain, err := igq.NewEngine(db, igq.EngineOptions{
		Method: igq.Grapes, DisableCache: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Hierarchical query stream: pick a "compound core" (graph + start
	// atom), then query fragments of sizes 4 → 8 → 12 → 16 edges around
	// it, like an analyst zooming out from an element to a compound.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	type agg struct{ tests, matches, cacheHits int }
	var withIGQ, without agg

	const cores = 40
	for c := 0; c < cores; c++ {
		g := db[rng.Intn(len(db))]
		start := rng.Intn(g.NumVertices())
		for _, size := range []int{4, 8, 12, 16} {
			q := igq.ExtractQuery(g, start, size)
			if q.NumEdges() == 0 {
				continue
			}

			r1, err := cached.Query(ctx, q)
			if err != nil {
				log.Fatal(err)
			}
			withIGQ.tests += r1.Stats.DatasetIsoTests
			withIGQ.matches += len(r1.IDs)
			if r1.Stats.AnsweredByCache {
				withIGQ.cacheHits++
			}

			r2, err := plain.Query(ctx, q.Clone())
			if err != nil {
				log.Fatal(err)
			}
			without.tests += r2.Stats.DatasetIsoTests
			without.matches += len(r2.IDs)

			if len(r1.IDs) != len(r2.IDs) {
				log.Fatalf("answer mismatch — correctness bug: %d vs %d", len(r1.IDs), len(r2.IDs))
			}
		}
	}

	fmt.Printf("\n%d hierarchical queries (%d cores x 4 zoom levels)\n", cores*4, cores)
	fmt.Printf("matches (identical under both pipelines): %d\n", withIGQ.matches)
	fmt.Printf("isomorphism tests without iGQ: %d\n", without.tests)
	fmt.Printf("isomorphism tests with    iGQ: %d (%d answered purely from cache)\n",
		withIGQ.tests, withIGQ.cacheHits)
	fmt.Printf("speedup in tests: %.2fx\n", float64(without.tests)/float64(max(1, withIGQ.tests)))
	fmt.Printf("cached queries: %d\n", cached.CacheLen())
}
