package igq

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// TestSupergraphEngineMutation pins the supergraph (Containment) engine's
// O(delta) mutation path to a from-scratch supergraph engine on the final
// dataset: the contain method is now index.Mutable, so AddGraphs and
// RemoveGraphs must maintain Algorithm 1/2 state and the §5.1 supergraph
// cache exactly as a rebuild would — this is what lets the serving layer
// stop rebuilding its mode=super engine after every mutation.
func TestSupergraphEngineMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base := GenerateDataset(AIDSSpec().Scaled(0.002, 1))
	extra := GenerateDataset(PDBSSpec().Scaled(0.02, 0.3))
	if len(extra) < 8 {
		t.Fatalf("need at least 8 extra graphs, got %d", len(extra))
	}
	opt := EngineOptions{Supergraph: true, CacheSize: 30, Window: 4}
	eng, err := NewEngine(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref := append([]*Graph(nil), base...)
	ctx := context.Background()

	// Supergraph probes: larger query graphs whose subgraphs we ask for.
	probe := func(db []*Graph) *Graph {
		g := db[rng.Intn(len(db))]
		q := ExtractQuery(g, rng.Intn(max(1, g.NumVertices())), 6+rng.Intn(6))
		return q
	}
	probes := make([]*Graph, 6)
	for i := range probes {
		probes[i] = probe(ref)
	}
	// Warm the cache so mutation has committed entries to patch.
	for _, q := range probes {
		if _, err := eng.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	next := 0
	for step := 0; step < 8; step++ {
		if step%3 == 2 && len(ref) > 6 {
			ps := []int{rng.Intn(len(ref) - 1)}
			if err := eng.RemoveGraphs(ctx, ps); err != nil {
				t.Fatalf("step %d: RemoveGraphs: %v", step, err)
			}
			last := len(ref) - 1
			ref[ps[0]] = ref[last]
			ref = ref[:last]
		} else {
			gs := []*Graph{extra[next%len(extra)], extra[(next+1)%len(extra)]}
			next += 2
			if err := eng.AddGraphs(ctx, gs); err != nil {
				t.Fatalf("step %d: AddGraphs: %v", step, err)
			}
			ref = append(ref, gs...)
		}

		fresh, err := NewEngine(append([]*Graph(nil), ref...), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(eng.Dataset(), fresh.Dataset()) {
			t.Fatalf("step %d: dataset generations diverge", step)
		}
		gotM, _ := eng.IndexSizeBytes()
		wantM, _ := fresh.IndexSizeBytes()
		if gotM != wantM {
			t.Fatalf("step %d: method SizeBytes %d != rebuilt %d", step, gotM, wantM)
		}
		qs := append(append([]*Graph(nil), probes...), probe(ref))
		for qi, q := range qs {
			got, err := eng.Query(ctx, q, WithoutCache())
			if err != nil {
				t.Fatalf("step %d probe %d: %v", step, qi, err)
			}
			want, err := fresh.Query(ctx, q, WithoutCache())
			if err != nil {
				t.Fatalf("step %d probe %d (fresh): %v", step, qi, err)
			}
			if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatalf("step %d probe %d: no-cache result diverges\ngot  IDs=%v stats=%+v\nwant IDs=%v stats=%+v",
					step, qi, got.IDs, got.Stats, want.IDs, want.Stats)
			}
			cached, err := eng.Query(ctx, q)
			if err != nil {
				t.Fatalf("step %d probe %d (cached): %v", step, qi, err)
			}
			if !reflect.DeepEqual(cached.IDs, want.IDs) {
				t.Fatalf("step %d probe %d: cached answer %v != true answer %v", step, qi, cached.IDs, want.IDs)
			}
		}
	}
	if st := eng.Stats(); st.Panics != 0 {
		t.Fatalf("unexpected panics: %d", st.Panics)
	}
}
