package igq

import (
	"context"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMutationUnderLoadRace hammers one engine with 8 query goroutines
// while the main goroutine appends graphs, removes graphs and takes a
// mid-stream Save — the torn-snapshot hunt of the issue, meant to run
// under -race (the CI race job runs every test with it). Each query must
// come back internally consistent (sorted ids, ids↔matches agreeing, every
// match a real graph of *some* generation), and the engine's aggregate
// counters must be monotonic throughout.
func TestMutationUnderLoadRace(t *testing.T) {
	base := GenerateDataset(AIDSSpec().Scaled(0.002, 1))
	extra := GenerateDataset(PDBSSpec().Scaled(0.02, 0.3))
	if len(extra) < 12 {
		t.Fatalf("need 12 extra graphs, got %d", len(extra))
	}
	eng, err := NewEngine(base, EngineOptions{Method: Grapes, CacheSize: 25, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var (
		stop    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for !stop.Load() {
				src := base[rng.Intn(len(base))] // base graphs are never removed below
				q := ExtractQuery(src, rng.Intn(src.NumVertices()), 2+rng.Intn(4))
				res, err := eng.Query(ctx, q)
				if err != nil {
					t.Errorf("worker %d: query error: %v", w, err)
					return
				}
				queries.Add(1)
				if len(res.IDs) != len(res.Matches) {
					t.Errorf("worker %d: %d ids but %d matches (torn result)", w, len(res.IDs), len(res.Matches))
					return
				}
				for i, id := range res.IDs {
					if i > 0 && res.IDs[i-1] >= id {
						t.Errorf("worker %d: unsorted answer %v", w, res.IDs)
						return
					}
					if res.Matches[i] == nil {
						t.Errorf("worker %d: nil match at %d", w, i)
						return
					}
					if !IsSubgraph(q, res.Matches[i]) {
						t.Errorf("worker %d: match %d does not contain the query (generation mix-up)", w, i)
						return
					}
				}
			}
		}(w)
	}

	// Monotonic counter sampler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last EngineStats
		for !stop.Load() {
			st := eng.Stats()
			if st.Queries < last.Queries || st.DatasetIsoTests < last.DatasetIsoTests ||
				st.CacheIsoTests < last.CacheIsoTests || st.AnsweredByCache < last.AnsweredByCache {
				t.Errorf("stats went backwards: %+v -> %+v", last, st)
				return
			}
			last = st
		}
	}()

	// Mutator: appends, one removal wave, one mid-stream Save.
	for i := 0; i < 4; i++ {
		if err := eng.AddGraphs(ctx, extra[i*3:i*3+3]); err != nil {
			t.Errorf("AddGraphs: %v", err)
		}
		if i == 1 {
			if err := eng.Save(io.Discard); err != nil {
				t.Errorf("Save under load: %v", err)
			}
		}
		if i == 2 {
			// Remove two of the appended graphs (positions past the base —
			// query workers only extract from base graphs, which survive).
			n := len(eng.Dataset())
			if err := eng.RemoveGraphs(ctx, []int{n - 1, n - 2}); err != nil {
				t.Errorf("RemoveGraphs: %v", err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := eng.Stats().Queries; got < queries.Load() {
		t.Errorf("engine counted %d queries, workers issued at least %d", got, queries.Load())
	}
}
