package igq

import (
	"bytes"
	"reflect"
	"testing"
)

func TestEngineSaveLoadCache(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 20, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractQuery(db[0], 0, 6)
	first, _ := eng.QuerySubgraph(q)
	eng.QuerySubgraph(ExtractQuery(db[1], 0, 4)) // flush (W=2)
	if eng.CacheLen() == 0 {
		t.Fatal("nothing cached")
	}

	var buf bytes.Buffer
	if err := eng.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}

	// a brand-new engine restores the warm cache
	eng2, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 20, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadCache(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := eng2.QuerySubgraph(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.AnsweredByCache {
		t.Error("restored engine did not recognise the cached query")
	}
	if !reflect.DeepEqual(res.IDs, first.IDs) {
		t.Errorf("restored answer %v != original %v", res.IDs, first.IDs)
	}
}

func TestEngineSaveCacheDisabled(t *testing.T) {
	db := smallDB(t)
	eng, _ := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	var buf bytes.Buffer
	if err := eng.SaveCache(&buf); err == nil {
		t.Error("SaveCache on disabled cache should error")
	}
	if err := eng.LoadCache(&buf); err == nil {
		t.Error("LoadCache on disabled cache should error")
	}
}

func TestQueryBatchOrderAndCorrectness(t *testing.T) {
	db := smallDB(t)
	cached, _ := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 20, Window: 4})
	plain, _ := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})

	var queries []*Graph
	for i := 0; i < 12; i++ {
		queries = append(queries, ExtractQuery(db[i%len(db)], 0, 4+4*(i%3)))
	}
	seqRes := cached.QueryBatch(queries, 1)
	parRes := plain.QueryBatch(queries, 6)
	for i := range queries {
		if seqRes[i].Err != nil || parRes[i].Err != nil {
			t.Fatalf("query %d errored: %v / %v", i, seqRes[i].Err, parRes[i].Err)
		}
		if seqRes[i].Index != i || parRes[i].Index != i {
			t.Fatalf("result order broken at %d", i)
		}
		if !reflect.DeepEqual(seqRes[i].Result.IDs, parRes[i].Result.IDs) {
			t.Fatalf("query %d: cached %v vs parallel-plain %v",
				i, seqRes[i].Result.IDs, parRes[i].Result.IDs)
		}
	}
}

func TestQueryBatchSupergraphDirection(t *testing.T) {
	var db []*Graph
	for i := 0; i < 8; i++ {
		g := NewGraph(2)
		g.AddVertex(Label(i % 2))
		g.AddVertex(Label((i + 1) % 2))
		g.AddEdge(0, 1)
		db = append(db, g)
	}
	eng, err := NewEngine(db, EngineOptions{Supergraph: true})
	if err != nil {
		t.Fatal(err)
	}
	q := NewGraph(3)
	q.AddVertex(0)
	q.AddVertex(1)
	q.AddVertex(0)
	q.AddEdge(0, 1)
	q.AddEdge(1, 2)
	res := eng.QueryBatch([]*Graph{q, q.Clone()}, 0)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
		if len(r.Result.IDs) == 0 {
			t.Errorf("batch item %d found no contained fragments", i)
		}
	}
}
