package igq

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/index"
)

// engineQueries builds a deterministic workload with repeats (so the cache
// fills) from db.
func engineQueries(db []*Graph, n int, seed int64) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*Graph, 0, n)
	for i := 0; i < n; i++ {
		qs = append(qs, ExtractQuery(db[rng.Intn(len(db))], rng.Intn(3), 3+rng.Intn(6)))
	}
	// sprinkle exact repeats to exercise cache hits after restore
	for i := 4; i < len(qs); i += 4 {
		qs[i] = qs[i-4].Clone()
	}
	return qs
}

// runAll serves a workload sequentially, returning answers and stats.
func runAll(t *testing.T, eng *Engine, qs []*Graph) ([][]int32, []QueryStats) {
	t.Helper()
	ids := make([][]int32, len(qs))
	sts := make([]QueryStats, len(qs))
	for i, q := range qs {
		res, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		ids[i], sts[i] = res.IDs, res.Stats
	}
	return ids, sts
}

// The acceptance criterion: an engine restored by LoadEngine answers a
// whole workload byte-identically (answers, stats, order) to a freshly
// built engine, for both persistable methods and at several (shards,
// workers) combinations.
func TestEngineSnapshotRoundTripIdentity(t *testing.T) {
	db := smallDB(t)
	qs := engineQueries(db, 30, 7)
	for _, method := range []MethodKind{GGSX, Grapes} {
		for _, cfg := range []struct{ shards, workers int }{
			{0, 0}, {1, 1}, {4, 3},
		} {
			t.Run(fmt.Sprintf("%v/shards=%d,workers=%d", method, cfg.shards, cfg.workers), func(t *testing.T) {
				opt := EngineOptions{
					Method: method, CacheSize: 10, Window: 4,
					Shards: cfg.shards, BuildWorkers: cfg.workers,
				}
				built, err := NewEngine(db, opt)
				if err != nil {
					t.Fatal(err)
				}
				// Warm the cache, then snapshot index+cache together.
				runAll(t, built, qs[:10])
				var snap bytes.Buffer
				if err := built.Save(&snap); err != nil {
					t.Fatal(err)
				}

				loaded, err := LoadEngine(bytes.NewReader(snap.Bytes()), db, opt)
				if err != nil {
					t.Fatal(err)
				}
				if loaded.CacheLen() != built.CacheLen() {
					t.Errorf("restored cache holds %d entries, want %d", loaded.CacheLen(), built.CacheLen())
				}
				bIDs, bStats := runAll(t, built, qs[10:])
				lIDs, lStats := runAll(t, loaded, qs[10:])
				if !reflect.DeepEqual(bIDs, lIDs) {
					t.Error("answers diverge between built and loaded engine")
				}
				if !reflect.DeepEqual(bStats, lStats) {
					t.Error("per-query stats diverge between built and loaded engine")
				}
			})
		}
	}
}

// Regression: queries still pending in the credit window at shutdown used
// to be dropped by Save — a server that answered fewer than Window distinct
// queries since its last flush restarted with an empty cache. Save now
// flushes the partial window, so pre-shutdown knowledge survives a
// save/load cycle as cache hits.
func TestEngineSaveCommitsPendingWindow(t *testing.T) {
	db := smallDB(t)
	opt := EngineOptions{Method: GGSX, CacheSize: 16, Window: 8}
	eng, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer distinct queries than the window size: nothing has flushed.
	qs := []*Graph{
		ExtractQuery(db[0], 0, 5),
		ExtractQuery(db[1], 1, 4),
		ExtractQuery(db[2], 0, 6),
	}
	first := make([][]int32, len(qs))
	for i, q := range qs {
		res, err := eng.Query(context.Background(), q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		first[i] = res.IDs
	}
	if eng.CacheLen() != 0 {
		t.Fatalf("premise: %d entries flushed before Save", eng.CacheLen())
	}
	var snap bytes.Buffer
	if err := eng.Save(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(snap.Bytes()), db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CacheLen() != len(qs) {
		t.Fatalf("restored cache holds %d entries, want %d", loaded.CacheLen(), len(qs))
	}
	for i, q := range qs {
		res, err := loaded.Query(context.Background(), q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.AnsweredByCache {
			t.Errorf("query %d not answered from the restored cache", i)
		}
		if !reflect.DeepEqual(res.IDs, first[i]) {
			t.Errorf("query %d answer %v != pre-shutdown %v", i, res.IDs, first[i])
		}
	}
}

// Loading a snapshot against a different dataset must fail with the
// checksum error, for both the index-only and the combined path.
func TestEngineSnapshotRejectsWrongDataset(t *testing.T) {
	db := smallDB(t)
	other := GenerateDataset(PDBSSpec().Scaled(0.02, 0.2))
	eng, err := NewEngine(db, EngineOptions{Method: GGSX})
	if err != nil {
		t.Fatal(err)
	}
	var idxSnap, engSnap bytes.Buffer
	if err := eng.SaveIndex(&idxSnap); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(&engSnap); err != nil {
		t.Fatal(err)
	}

	eng2, err := NewEngine(other, EngineOptions{Method: GGSX})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.LoadIndex(bytes.NewReader(idxSnap.Bytes())); !errors.Is(err, index.ErrDatasetMismatch) {
		t.Errorf("LoadIndex on wrong dataset: got %v, want ErrDatasetMismatch", err)
	}
	if _, err := LoadEngine(bytes.NewReader(engSnap.Bytes()), other, EngineOptions{Method: GGSX}); !errors.Is(err, index.ErrDatasetMismatch) {
		t.Errorf("LoadEngine on wrong dataset: got %v, want ErrDatasetMismatch", err)
	}
}

// LoadIndex into a live engine re-syncs the cache-side indexes against the
// reset dictionary: cached knowledge must still be found afterwards.
func TestEngineLoadIndexRebuildsCacheIndexes(t *testing.T) {
	db := smallDB(t)
	opt := EngineOptions{Method: Grapes, CacheSize: 10, Window: 2}
	eng, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractQuery(db[0], 0, 5)
	first, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	eng.Query(context.Background(), ExtractQuery(db[1], 0, 4)) // flush (W=2)
	if eng.CacheLen() == 0 {
		t.Fatal("nothing cached")
	}
	var snap bytes.Buffer
	if err := eng.SaveIndex(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.LoadIndex(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(context.Background(), q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.AnsweredByCache {
		t.Error("cached query not recognised after LoadIndex")
	}
	if !reflect.DeepEqual(res.IDs, first.IDs) {
		t.Errorf("answer after LoadIndex %v != original %v", res.IDs, first.IDs)
	}
}

// Methods without persistence support fail loudly, not silently.
func TestEngineSaveIndexUnsupportedMethod(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: CTIndex})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err == nil {
		t.Error("SaveIndex on CT-Index did not error")
	}
	if err := eng.Save(&buf); err == nil {
		t.Error("Save on CT-Index did not error")
	}
}

// A cache-disabled engine still round-trips its index through Save/
// LoadEngine, and the restored engine honours the caller's cache options.
func TestEngineSnapshotWithoutCache(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Save(&snap); err != nil {
		t.Fatal(err)
	}
	// Restore with the cache enabled: snapshot has no cache section, so the
	// engine starts with a fresh empty cache.
	loaded, err := LoadEngine(bytes.NewReader(snap.Bytes()), db, EngineOptions{Method: GGSX, CacheSize: 5, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractQuery(db[0], 0, 5)
	want, _ := eng.Query(context.Background(), q)
	got, err := loaded.Query(context.Background(), q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) {
		t.Errorf("restored engine answers %v, want %v", got.IDs, want.IDs)
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	db := smallDB(t)
	if _, err := LoadEngine(bytes.NewReader([]byte("not a snapshot")), db, EngineOptions{Method: GGSX}); err == nil {
		t.Error("garbage snapshot loaded without error")
	}
}
