package features

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Tree enumeration for CT-Index-style fingerprints.
//
// A tree feature is an edge subset of the graph that forms a tree with at
// most MaxVertices vertices. Enumeration grows trees by leaf additions from
// every root (requiring the root to be the tree's minimum vertex, so each
// tree is examined from exactly one root) and deduplicates growth orders
// with an exact edge-set signature. The canonical key is the AHU encoding
// rooted at the tree's center (or centered edge), which is unique per
// labeled tree isomorphism class — the linear-time canonical form that makes
// trees attractive index features (CT-Index's core observation).
//
// On dense graphs the tree count explodes combinatorially; TreeOptions.
// Budget caps the number of distinct trees examined per graph. Overflow
// handling is left to the caller (see ctindex: dataset graphs saturate the
// fingerprint — sound, never lossy in the false-negative direction).

// TreeOptions configures subtree enumeration.
type TreeOptions struct {
	MaxVertices int // maximum vertices per tree (paper default: 6)
	Budget      int // max distinct trees per graph; <=0 means unlimited
}

// TreeSet is the result of enumerating a graph's tree features.
type TreeSet struct {
	Counts map[Key]int
	// Overflowed is true when the Budget was hit; callers must treat the
	// Counts as a truncated under-approximation.
	Overflowed bool
}

// Trees enumerates the distinct tree features of g.
func Trees(g *graph.Graph, opt TreeOptions) *TreeSet {
	if opt.MaxVertices < 1 {
		opt.MaxVertices = 1
	}
	ts := &TreeSet{Counts: make(map[Key]int)}
	n := g.NumVertices()
	seen := make(map[string]struct{}) // edge-set signatures, per root
	total := 0

	for r := 0; r < n; r++ {
		// single-vertex tree
		ts.Counts["t:"+strconv.Itoa(int(g.Label(r)))]++
		total++
		if opt.Budget > 0 && total > opt.Budget {
			ts.Overflowed = true
			return ts
		}
		if opt.MaxVertices == 1 {
			continue
		}
		clearMap(seen)
		inTree := map[int32]bool{int32(r): true}
		var treeV []int32
		var treeE [][2]int32
		treeV = append(treeV, int32(r))

		var grow func() bool // returns false when budget exhausted
		grow = func() bool {
			if len(treeE) > 0 {
				sig := edgeSignature(treeE)
				if _, dup := seen[sig]; dup {
					return true
				}
				seen[sig] = struct{}{}
				ts.Counts[treeKey(g, treeV, treeE)]++
				total++
				if opt.Budget > 0 && total > opt.Budget {
					ts.Overflowed = true
					return false
				}
			}
			if len(treeV) == opt.MaxVertices {
				return true
			}
			for i := 0; i < len(treeV); i++ {
				u := treeV[i]
				for _, v := range g.Neighbors(int(u)) {
					if int(v) <= r || inTree[v] {
						continue
					}
					inTree[v] = true
					treeV = append(treeV, v)
					treeE = append(treeE, orderedEdge(u, v))
					ok := grow()
					treeE = treeE[:len(treeE)-1]
					treeV = treeV[:len(treeV)-1]
					delete(inTree, v)
					if !ok {
						return false
					}
				}
			}
			return true
		}
		if !grow() {
			return ts
		}
	}
	return ts
}

func clearMap(m map[string]struct{}) {
	for k := range m {
		delete(m, k)
	}
}

func orderedEdge(u, v int32) [2]int32 {
	if u < v {
		return [2]int32{u, v}
	}
	return [2]int32{v, u}
}

// edgeSignature packs the sorted edge list into a string for exact
// growth-order deduplication.
func edgeSignature(edges [][2]int32) string {
	es := append([][2]int32(nil), edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	var b strings.Builder
	b.Grow(len(es) * 8)
	for _, e := range es {
		b.WriteByte(byte(e[0]))
		b.WriteByte(byte(e[0] >> 8))
		b.WriteByte(byte(e[0] >> 16))
		b.WriteByte(byte(e[0] >> 24))
		b.WriteByte(byte(e[1]))
		b.WriteByte(byte(e[1] >> 8))
		b.WriteByte(byte(e[1] >> 16))
		b.WriteByte(byte(e[1] >> 24))
	}
	return b.String()
}

// treeKey computes the canonical AHU key for the labeled tree given by the
// vertex list and edge list (vertex ids refer to g, labels taken from g).
// Trees containing labeled edges get a distinct "!"-marked key family whose
// AHU encoding carries the edge labels.
func treeKey(g *graph.Graph, vs []int32, es [][2]int32) Key {
	// local adjacency, with edge labels alongside
	idx := make(map[int32]int, len(vs))
	for i, v := range vs {
		idx[v] = i
	}
	n := len(vs)
	adj := make([][]int, n)
	eadj := make([][]graph.Label, n)
	anyLabel := false
	for _, e := range es {
		a, b := idx[e[0]], idx[e[1]]
		l := g.EdgeLabel(int(e[0]), int(e[1]))
		if l != 0 {
			anyLabel = true
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
		eadj[a] = append(eadj[a], l)
		eadj[b] = append(eadj[b], l)
	}
	labels := make([]graph.Label, n)
	for i, v := range vs {
		labels[i] = g.Label(int(v))
	}
	if anyLabel {
		return "t:!" + ahuCanonicalLabeled(n, adj, eadj, labels)
	}
	return "t:" + ahuCanonical(n, adj, labels)
}

// ahuCanonicalLabeled is ahuCanonical with edge labels woven into the
// encoding (each child subtree is prefixed by the label of the edge
// reaching it; the two-centre form carries the centre edge's label).
func ahuCanonicalLabeled(n int, adj [][]int, eadj [][]graph.Label, labels []graph.Label) string {
	if n == 1 {
		return encodeLabel(labels[0])
	}
	centers := treeCenters(n, adj)
	if len(centers) == 1 {
		return ahuEncodeLabeled(centers[0], -1, adj, eadj, labels)
	}
	a := ahuEncodeLabeled(centers[0], centers[1], adj, eadj, labels)
	b := ahuEncodeLabeled(centers[1], centers[0], adj, eadj, labels)
	if b < a {
		a, b = b, a
	}
	var centerEdge graph.Label
	for i, w := range adj[centers[0]] {
		if w == centers[1] {
			centerEdge = eadj[centers[0]][i]
			break
		}
	}
	return a + "=" + encodeLabel(centerEdge) + "=" + b
}

// ahuEncodeLabeled encodes the subtree rooted at v, excluding the parent
// edge; children sort by (edge label, encoding).
func ahuEncodeLabeled(v, parent int, adj [][]int, eadj [][]graph.Label, labels []graph.Label) string {
	var kids []string
	for i, w := range adj[v] {
		if w != parent {
			kids = append(kids, encodeLabel(eadj[v][i])+"_"+ahuEncodeLabeled(w, v, adj, eadj, labels))
		}
	}
	sort.Strings(kids)
	return encodeLabel(labels[v]) + "(" + strings.Join(kids, ",") + ")"
}

// ahuCanonical returns the canonical encoding of a labeled free tree:
// centre(s) are found by leaf peeling; for one centre the AHU encoding
// rooted there is canonical, for two centres the two half-encodings are
// sorted and joined.
func ahuCanonical(n int, adj [][]int, labels []graph.Label) string {
	if n == 1 {
		return encodeLabel(labels[0])
	}
	centers := treeCenters(n, adj)
	if len(centers) == 1 {
		return ahuEncode(centers[0], -1, adj, labels)
	}
	a := ahuEncode(centers[0], centers[1], adj, labels)
	b := ahuEncode(centers[1], centers[0], adj, labels)
	if b < a {
		a, b = b, a
	}
	return a + "=" + b
}

func treeCenters(n int, adj [][]int) []int {
	deg := make([]int, n)
	var leaves []int
	for v := range adj {
		deg[v] = len(adj[v])
		if deg[v] <= 1 {
			leaves = append(leaves, v)
		}
	}
	remaining := n
	for remaining > 2 {
		var next []int
		remaining -= len(leaves)
		for _, l := range leaves {
			for _, w := range adj[l] {
				deg[w]--
				if deg[w] == 1 {
					next = append(next, w)
				}
			}
			deg[l] = 0
		}
		leaves = next
	}
	sort.Ints(leaves)
	return leaves
}

// ahuEncode encodes the subtree rooted at v, excluding the parent edge.
func ahuEncode(v, parent int, adj [][]int, labels []graph.Label) string {
	var kids []string
	for _, w := range adj[v] {
		if w != parent {
			kids = append(kids, ahuEncode(w, v, adj, labels))
		}
	}
	sort.Strings(kids)
	return encodeLabel(labels[v]) + "(" + strings.Join(kids, ",") + ")"
}

func encodeLabel(l graph.Label) string { return strconv.Itoa(int(l)) }
