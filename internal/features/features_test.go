package features

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(len(labels))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycleGraph(labels ...graph.Label) *graph.Graph {
	g := pathGraph(labels...)
	g.AddEdge(0, len(labels)-1)
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestPathKeyCanonical(t *testing.T) {
	a := pathKey([]graph.Label{1, 2, 3})
	b := pathKey([]graph.Label{3, 2, 1})
	if a != b {
		t.Errorf("path key not reversal-invariant: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "p:") {
		t.Errorf("path key missing namespace: %q", a)
	}
	// multi-digit labels must not be confusable: 1.23 vs 12.3
	x := pathKey([]graph.Label{1, 23})
	y := pathKey([]graph.Label{12, 3})
	if x == y {
		t.Error("separator fails to distinguish multi-digit labels")
	}
}

func TestPathsOnPathGraph(t *testing.T) {
	// path 1-2-3: directed simple paths: 3 of len0, 4 of len1 (2 each dir),
	// 2 of len2.
	g := pathGraph(1, 2, 3)
	ps := Paths(g, PathOptions{MaxLen: 4})
	if got := ps.Counts["p:1"]; got != 1 {
		t.Errorf("count(p:1) = %d, want 1", got)
	}
	if got := ps.Counts["p:2"]; got != 1 {
		t.Errorf("count(p:2) = %d, want 1", got)
	}
	if got := ps.Counts["p:1.2"]; got != 2 { // both directions collapse
		t.Errorf("count(p:1.2) = %d, want 2", got)
	}
	if got := ps.Counts["p:1.2.3"]; got != 2 {
		t.Errorf("count(p:1.2.3) = %d, want 2", got)
	}
	if _, ok := ps.Counts["p:1.3"]; ok {
		t.Error("phantom path 1.3")
	}
}

func TestPathsMaxLenRespected(t *testing.T) {
	g := pathGraph(1, 1, 1, 1, 1, 1) // 5 edges
	ps := Paths(g, PathOptions{MaxLen: 2})
	for k := range ps.Counts {
		if strings.Count(k, ".") > 2 {
			t.Errorf("path longer than MaxLen: %q", k)
		}
	}
	if _, ok := ps.Counts["p:1.1.1"]; !ok {
		t.Error("missing length-2 path")
	}
}

func TestPathsLocations(t *testing.T) {
	g := pathGraph(1, 2, 1)
	ps := Paths(g, PathOptions{MaxLen: 2, Locations: true})
	locs := ps.Locations["p:1.2"]
	// occurrences: 0-1 and 2-1 → vertices {0,1,2}
	if len(locs) != 3 {
		t.Fatalf("locations of p:1.2 = %v", locs)
	}
	for i, v := range []int32{0, 1, 2} {
		if locs[i] != v {
			t.Errorf("locs[%d] = %d, want %d", i, locs[i], v)
		}
	}
	// single-vertex feature location
	if got := ps.Locations["p:2"]; len(got) != 1 || got[0] != 1 {
		t.Errorf("locations of p:2 = %v", got)
	}
}

func TestPathCountsQueryVsDataset(t *testing.T) {
	// The count-based filter relies on: if q ⊆ G then for every feature f,
	// count_q(f) <= count_G(f). Validate on planted subgraphs.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		tgt := randomGraph(rng, 10, 0.3, 3)
		order := tgt.BFSOrder(rng.Intn(10))
		if len(order) > 5 {
			order = order[:5]
		}
		sub, _ := tgt.InducedSubgraph(order)
		pq := Paths(sub, PathOptions{MaxLen: 4})
		pt := Paths(tgt, PathOptions{MaxLen: 4})
		for k, c := range pq.Counts {
			if pt.Counts[k] < c {
				t.Fatalf("trial %d: feature %q query count %d > dataset %d",
					trial, k, c, pt.Counts[k])
			}
		}
	}
}

func TestTreeKeyInvariance(t *testing.T) {
	// the same labeled tree presented with permuted vertex ids must get the
	// same canonical key
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		// random labeled tree on n vertices
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.Label(rng.Intn(3)))
		}
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i))
		}
		perm := rng.Perm(n)
		h := graph.New(n)
		for i := 0; i < n; i++ {
			h.AddVertex(0)
		}
		for i := 0; i < n; i++ {
			h.SetLabel(perm[i], g.Label(i))
		}
		g.Edges(func(u, v int) { h.AddEdge(perm[u], perm[v]) })

		vsG := make([]int32, n)
		vsH := make([]int32, n)
		for i := 0; i < n; i++ {
			vsG[i] = int32(i)
			vsH[i] = int32(i)
		}
		esG := make([][2]int32, 0, n-1)
		g.Edges(func(u, v int) { esG = append(esG, [2]int32{int32(u), int32(v)}) })
		esH := make([][2]int32, 0, n-1)
		h.Edges(func(u, v int) { esH = append(esH, [2]int32{int32(u), int32(v)}) })

		if treeKey(g, vsG, esG) != treeKey(h, vsH, esH) {
			t.Fatalf("trial %d: tree key not invariant under relabeling", trial)
		}
	}
}

func TestTreeKeyDistinguishes(t *testing.T) {
	// path(1,1,1,1) vs star(1;1,1,1): same labels, different shape
	p := pathGraph(1, 1, 1, 1)
	s := graph.New(4)
	for i := 0; i < 4; i++ {
		s.AddVertex(1)
	}
	s.AddEdge(0, 1)
	s.AddEdge(0, 2)
	s.AddEdge(0, 3)
	vs := []int32{0, 1, 2, 3}
	esP := [][2]int32{{0, 1}, {1, 2}, {2, 3}}
	esS := [][2]int32{{0, 1}, {0, 2}, {0, 3}}
	if treeKey(p, vs, esP) == treeKey(s, vs, esS) {
		t.Error("path and star trees share canonical key")
	}
}

func TestTreesOnTriangle(t *testing.T) {
	g := cycleGraph(1, 2, 3)
	ts := Trees(g, TreeOptions{MaxVertices: 3})
	if ts.Overflowed {
		t.Fatal("unexpected overflow")
	}
	// 3 single vertices, 3 edges (all distinct by labels), 3 two-edge paths
	singles, edges, paths2 := 0, 0, 0
	for k, c := range ts.Counts {
		switch strings.Count(k, "(") {
		case 0:
			singles += c
		case 2:
			edges += c
		case 3:
			paths2 += c
		}
	}
	if singles != 3 {
		t.Errorf("single-vertex trees = %d, want 3", singles)
	}
	if edges != 3 {
		t.Errorf("edge trees = %d, want 3", edges)
	}
	if paths2 != 3 {
		t.Errorf("2-edge path trees = %d, want 3", paths2)
	}
}

func TestTreesBudgetSaturates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 12, 0.5, 2)
	ts := Trees(g, TreeOptions{MaxVertices: 5, Budget: 10})
	if !ts.Overflowed {
		t.Error("expected overflow with tiny budget")
	}
	full := Trees(g, TreeOptions{MaxVertices: 5})
	if full.Overflowed {
		t.Error("unlimited enumeration must not overflow")
	}
	if len(ts.Counts) > len(full.Counts) {
		t.Error("budgeted enumeration produced more keys than full")
	}
}

func TestTreeContainmentProperty(t *testing.T) {
	// induced subgraph's tree features (by key) are a subset of the host's
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		tgt := randomGraph(rng, 9, 0.25, 2)
		order := tgt.BFSOrder(rng.Intn(9))
		if len(order) > 5 {
			order = order[:5]
		}
		sub, _ := tgt.InducedSubgraph(order)
		fq := Trees(sub, TreeOptions{MaxVertices: 4})
		ft := Trees(tgt, TreeOptions{MaxVertices: 4})
		for k, c := range fq.Counts {
			if ft.Counts[k] < c {
				t.Fatalf("trial %d: tree %q count %d > host %d", trial, k, c, ft.Counts[k])
			}
		}
	}
}

func TestCyclesOnCycleGraphs(t *testing.T) {
	for n := 3; n <= 8; n++ {
		labels := make([]graph.Label, n)
		for i := range labels {
			labels[i] = graph.Label(i % 2)
		}
		g := cycleGraph(labels...)
		cs := Cycles(g, CycleOptions{MaxLen: 8})
		total := 0
		for _, c := range cs.Counts {
			total += c
		}
		if total != 1 {
			t.Errorf("C%d: found %d cycles, want 1 (%v)", n, total, cs.Counts)
		}
	}
}

func TestCyclesRespectMaxLen(t *testing.T) {
	g := cycleGraph(1, 1, 1, 1, 1, 1) // C6
	cs := Cycles(g, CycleOptions{MaxLen: 5})
	if len(cs.Counts) != 0 {
		t.Errorf("C6 found with MaxLen=5: %v", cs.Counts)
	}
}

func TestCyclesK4(t *testing.T) {
	// K4 has 4 triangles and 3 four-cycles
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(1)
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	cs := Cycles(g, CycleOptions{MaxLen: 8})
	tri := cs.Counts["c:1.1.1"]
	quad := cs.Counts["c:1.1.1.1"]
	if tri != 4 {
		t.Errorf("triangles in K4 = %d, want 4", tri)
	}
	if quad != 3 {
		t.Errorf("4-cycles in K4 = %d, want 3", quad)
	}
}

func TestCycleKeyRotationInvariance(t *testing.T) {
	a := cycleKey([]graph.Label{1, 2, 3, 4})
	b := cycleKey([]graph.Label{3, 4, 1, 2})
	c := cycleKey([]graph.Label{4, 3, 2, 1})
	if a != b || a != c {
		t.Errorf("cycle keys differ: %q %q %q", a, b, c)
	}
}

func TestCyclesBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 14, 0.5, 2)
	cs := Cycles(g, CycleOptions{MaxLen: 6, Budget: 5})
	if !cs.Overflowed {
		t.Error("expected cycle budget overflow")
	}
}

func TestAcyclicGraphHasNoCycles(t *testing.T) {
	g := pathGraph(1, 2, 3, 4, 5)
	cs := Cycles(g, CycleOptions{MaxLen: 8})
	if len(cs.Counts) != 0 {
		t.Errorf("cycles found in a path: %v", cs.Counts)
	}
}

func TestPathSetSizeBytes(t *testing.T) {
	g := pathGraph(1, 2, 3, 4)
	small := Paths(g, PathOptions{MaxLen: 1})
	big := Paths(g, PathOptions{MaxLen: 3, Locations: true})
	if small.SizeBytes() <= 0 || big.SizeBytes() <= small.SizeBytes() {
		t.Errorf("SizeBytes: small=%d big=%d", small.SizeBytes(), big.SizeBytes())
	}
}

func BenchmarkPathsSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 0.05, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paths(g, PathOptions{MaxLen: 4})
	}
}

func BenchmarkTreesSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 0.05, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trees(g, TreeOptions{MaxVertices: 6})
	}
}
