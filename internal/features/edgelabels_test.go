package features

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

// Edge-label feature tests: labeled features must canonicalise
// direction/rotation-invariantly, stay disjoint from unlabeled keys, and
// preserve the count-containment property the filters rely on.

func labeledPath(vls []graph.Label, els []graph.Label) *graph.Graph {
	g := graph.New(len(vls))
	for _, l := range vls {
		g.AddVertex(l)
	}
	for i := 0; i+1 < len(vls); i++ {
		g.AddEdgeLabeled(i, i+1, els[i])
	}
	return g
}

func TestPathKeyLabeledReversalInvariant(t *testing.T) {
	a := pathKeyLabeled([]graph.Label{1, 2, 3}, []graph.Label{7, 8})
	b := pathKeyLabeled([]graph.Label{3, 2, 1}, []graph.Label{8, 7})
	if a != b {
		t.Errorf("labeled path key not reversal-invariant: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "p:!") {
		t.Errorf("labeled key missing marker: %q", a)
	}
}

func TestPathKeyLabeledZeroFallsBack(t *testing.T) {
	a := pathKeyLabeled([]graph.Label{1, 2}, []graph.Label{0})
	if a != pathKey([]graph.Label{1, 2}) {
		t.Errorf("zero-labeled path should use unlabeled key, got %q", a)
	}
}

func TestLabeledKeysDisjointFromUnlabeled(t *testing.T) {
	// labeled 2-vertex path with edge label 5 vs unlabeled 3-vertex path
	// with middle vertex 5 — the interleavings coincide numerically, the
	// marker must keep them apart
	labeled := pathKeyLabeled([]graph.Label{1, 2}, []graph.Label{5})
	unlabeled := pathKey([]graph.Label{1, 5, 2})
	if labeled == unlabeled {
		t.Errorf("labeled and unlabeled keys collide: %q", labeled)
	}
}

func TestPathsEnumerationWithEdgeLabels(t *testing.T) {
	g := labeledPath([]graph.Label{1, 2, 3}, []graph.Label{4, 5})
	ps := Paths(g, PathOptions{MaxLen: 2})
	// the full path: 1 -4- 2 -5- 3, two directions, one canonical key
	want := pathKeyLabeled([]graph.Label{1, 2, 3}, []graph.Label{4, 5})
	if ps.Counts[want] != 2 {
		t.Errorf("count(%q) = %d, want 2\nall: %v", want, ps.Counts[want], ps.Counts)
	}
	// single vertices keep unlabeled keys
	if ps.Counts["p:1"] != 1 {
		t.Errorf("single-vertex key wrong: %v", ps.Counts)
	}
}

func TestLabeledPathContainmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		tgt := graph.New(9)
		for i := 0; i < 9; i++ {
			tgt.AddVertex(graph.Label(rng.Intn(2)))
		}
		for u := 0; u < 9; u++ {
			for v := u + 1; v < 9; v++ {
				if rng.Float64() < 0.3 {
					tgt.AddEdgeLabeled(u, v, graph.Label(rng.Intn(3)))
				}
			}
		}
		order := tgt.BFSOrder(rng.Intn(9))
		if len(order) > 5 {
			order = order[:5]
		}
		sub, _ := tgt.InducedSubgraph(order)
		fq := Paths(sub, PathOptions{MaxLen: 4})
		ft := Paths(tgt, PathOptions{MaxLen: 4})
		for k, c := range fq.Counts {
			if ft.Counts[k] < c {
				t.Fatalf("trial %d: labeled feature %q count %d > host %d",
					trial, k, c, ft.Counts[k])
			}
		}
	}
}

func TestTreeKeyLabeledInvariance(t *testing.T) {
	// a labeled star presented with different vertex orders
	mk := func(perm []int) ([]int32, [][2]int32, *graph.Graph) {
		g := graph.New(4)
		labels := []graph.Label{9, 1, 2, 3}
		elabs := []graph.Label{4, 5, 6}
		for range perm {
			g.AddVertex(0)
		}
		for i, p := range perm {
			g.SetLabel(p, labels[i])
		}
		for i := 1; i < 4; i++ {
			g.AddEdgeLabeled(perm[0], perm[i], elabs[i-1])
		}
		vs := []int32{0, 1, 2, 3}
		var es [][2]int32
		g.Edges(func(u, v int) { es = append(es, [2]int32{int32(u), int32(v)}) })
		return vs, es, g
	}
	vs1, es1, g1 := mk([]int{0, 1, 2, 3})
	vs2, es2, g2 := mk([]int{3, 0, 1, 2})
	k1 := treeKey(g1, vs1, es1)
	k2 := treeKey(g2, vs2, es2)
	if k1 != k2 {
		t.Errorf("labeled tree keys differ:\n%q\n%q", k1, k2)
	}
	if !strings.HasPrefix(k1, "t:!") {
		t.Errorf("labeled tree key missing marker: %q", k1)
	}
}

func TestTreeKeyLabeledSeparatesEdgeLabels(t *testing.T) {
	mk := func(el graph.Label) (string, bool) {
		g := graph.New(2)
		g.AddVertex(1)
		g.AddVertex(2)
		g.AddEdgeLabeled(0, 1, el)
		vs := []int32{0, 1}
		es := [][2]int32{{0, 1}}
		return treeKey(g, vs, es), true
	}
	a, _ := mk(1)
	b, _ := mk(2)
	if a == b {
		t.Error("tree keys identical across different edge labels")
	}
}

func TestCycleKeyLabeledRotationReflectionInvariant(t *testing.T) {
	v := []graph.Label{1, 2, 3, 4}
	e := []graph.Label{5, 6, 7, 8}
	a := cycleKeyLabeled(v, e)
	// rotate by 1: vertices 2,3,4,1; edges 6,7,8,5
	b := cycleKeyLabeled([]graph.Label{2, 3, 4, 1}, []graph.Label{6, 7, 8, 5})
	if a != b {
		t.Errorf("labeled cycle key not rotation-invariant: %q vs %q", a, b)
	}
	// reflect: vertices 1,4,3,2; edges walk backwards: 8,7,6,5
	c := cycleKeyLabeled([]graph.Label{1, 4, 3, 2}, []graph.Label{8, 7, 6, 5})
	if a != c {
		t.Errorf("labeled cycle key not reflection-invariant: %q vs %q", a, c)
	}
	if !strings.HasPrefix(a, "c:!") {
		t.Errorf("labeled cycle key missing marker: %q", a)
	}
}

func TestCyclesEnumerationWithEdgeLabels(t *testing.T) {
	// triangle with distinct bond labels: exactly one cycle feature
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex(1)
	}
	g.AddEdgeLabeled(0, 1, 1)
	g.AddEdgeLabeled(1, 2, 2)
	g.AddEdgeLabeled(0, 2, 3)
	cs := Cycles(g, CycleOptions{MaxLen: 8})
	if len(cs.Counts) != 1 {
		t.Fatalf("labeled triangle cycles = %v", cs.Counts)
	}
	for k, c := range cs.Counts {
		if !strings.HasPrefix(k, "c:!") || c != 1 {
			t.Errorf("cycle key %q count %d", k, c)
		}
	}
	// same triangle with a different bond must get a different key
	h := graph.New(3)
	for i := 0; i < 3; i++ {
		h.AddVertex(1)
	}
	h.AddEdgeLabeled(0, 1, 1)
	h.AddEdgeLabeled(1, 2, 2)
	h.AddEdgeLabeled(0, 2, 9)
	ch := Cycles(h, CycleOptions{MaxLen: 8})
	for k := range cs.Counts {
		if ch.Counts[k] != 0 {
			t.Error("different bond triangle shares a cycle key")
		}
	}
}
