package features

import (
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Simple-cycle enumeration for CT-Index fingerprints (cycles ≤ 8 in the
// paper's default configuration).
//
// Each simple cycle is discovered exactly once: the search roots at the
// cycle's minimum vertex s, extends simple paths through vertices > s only,
// and closes when an edge returns to s; traversal direction is fixed by
// requiring the second path vertex to be smaller than the vertex preceding
// the closing edge. The canonical key is the lexicographically minimal
// rotation over both directions of the label sequence.

// CycleOptions configures cycle enumeration.
type CycleOptions struct {
	MaxLen int // maximum cycle length in edges (paper default: 8)
	Budget int // max distinct cycles per graph; <=0 means unlimited
}

// CycleSet is the result of enumerating a graph's simple cycles.
type CycleSet struct {
	Counts     map[Key]int
	Overflowed bool
}

// Cycles enumerates the simple cycles of g up to MaxLen edges.
func Cycles(g *graph.Graph, opt CycleOptions) *CycleSet {
	cs := &CycleSet{Counts: make(map[Key]int)}
	if opt.MaxLen < 3 {
		return cs
	}
	n := g.NumVertices()
	inPath := make([]bool, n)
	path := make([]int32, 0, opt.MaxLen)
	total := 0

	labeled := g.HasEdgeLabels()
	var dfs func(s, v int) bool
	dfs = func(s, v int) bool {
		for _, w := range g.Neighbors(v) {
			if int(w) == s && len(path) >= 3 {
				// close the cycle; fix direction: path[1] < path[len-1]
				if path[1] < path[len(path)-1] {
					labels := make([]graph.Label, len(path))
					for i, u := range path {
						labels[i] = g.Label(int(u))
					}
					var k Key
					if labeled {
						elabs := make([]graph.Label, len(path))
						for i := range path {
							elabs[i] = g.EdgeLabel(int(path[i]), int(path[(i+1)%len(path)]))
						}
						k = cycleKeyLabeled(labels, elabs)
					} else {
						k = cycleKey(labels)
					}
					cs.Counts[k]++
					total++
					if opt.Budget > 0 && total > opt.Budget {
						cs.Overflowed = true
						return false
					}
				}
				continue
			}
			if int(w) <= s || inPath[w] || len(path) == opt.MaxLen {
				continue
			}
			inPath[w] = true
			path = append(path, w)
			ok := dfs(s, int(w))
			path = path[:len(path)-1]
			inPath[w] = false
			if !ok {
				return false
			}
		}
		return true
	}

	for s := 0; s < n; s++ {
		inPath[s] = true
		path = append(path[:0], int32(s))
		if !dfs(s, s) {
			inPath[s] = false
			return cs
		}
		inPath[s] = false
	}
	return cs
}

// cycleKey returns the canonical key of a cycle's label sequence: the
// minimal string over all rotations of the sequence and its reverse.
func cycleKey(labels []graph.Label) Key {
	best := minRotation(labels)
	rev := make([]graph.Label, len(labels))
	for i, l := range labels {
		rev[len(labels)-1-i] = l
	}
	if r := minRotation(rev); r < best {
		best = r
	}
	return "c:" + best
}

// minRotation returns the lexicographically smallest rotation of the label
// sequence, rendered with '.' separators. Cycle lengths are tiny (≤ 8), so
// the quadratic scan is the clear choice over Booth's algorithm.
func minRotation(labels []graph.Label) string {
	n := len(labels)
	best := ""
	for s := 0; s < n; s++ {
		rot := make([]graph.Label, n)
		for i := 0; i < n; i++ {
			rot[i] = labels[(s+i)%n]
		}
		enc := joinLabels(rot)
		if best == "" || enc < best {
			best = enc
		}
	}
	return best
}

// cycleKeyLabeled canonicalises a cycle whose edges carry labels: the
// interleaved sequence v0 e01 v1 e12 ... e(k-1)0 is minimised over all
// rotations of both traversal directions. Zero-labeled cycles fall back to
// the legacy unlabeled key so mixed graphs filter consistently.
func cycleKeyLabeled(labels, elabs []graph.Label) Key {
	if allZero(elabs) {
		return cycleKey(labels)
	}
	best := minRotationInterleaved(labels, elabs)
	// reversed traversal: vertices v0, v(k-1)..v1; edges reverse(elabs)
	n := len(labels)
	revV := make([]graph.Label, n)
	revE := make([]graph.Label, n)
	revV[0] = labels[0]
	for i := 1; i < n; i++ {
		revV[i] = labels[n-i]
	}
	for i := 0; i < n; i++ {
		revE[i] = elabs[n-1-i]
	}
	if r := minRotationInterleaved(revV, revE); r < best {
		best = r
	}
	return "c:!" + best
}

// minRotationInterleaved minimises v_s.e_s.v_{s+1}... over start positions.
func minRotationInterleaved(vs, es []graph.Label) string {
	n := len(vs)
	best := ""
	for s := 0; s < n; s++ {
		var b strings.Builder
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte('.')
			}
			b.WriteString(strconv.Itoa(int(vs[(s+i)%n])))
			b.WriteByte('.')
			b.WriteString(strconv.Itoa(int(es[(s+i)%n])))
		}
		enc := b.String()
		if best == "" || enc < best {
			best = enc
		}
	}
	return best
}
