package features

import "testing"

func TestDictReset(t *testing.T) {
	d := NewDict()
	a := d.Intern("p:1")
	b := d.Intern("p:2")
	if a != 0 || b != 1 {
		t.Fatalf("dense IDs expected, got %d, %d", a, b)
	}
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", d.Len())
	}
	if _, ok := d.Lookup("p:1"); ok {
		t.Error("key survived Reset")
	}
	// IDs restart densely from 0, in interning order.
	if id := d.Intern("p:9"); id != 0 {
		t.Errorf("first post-Reset ID = %d, want 0", id)
	}
	if id := d.Intern("p:1"); id != 1 {
		t.Errorf("second post-Reset ID = %d, want 1", id)
	}
	if got := d.Keys(); len(got) != 2 || got[0] != "p:9" || got[1] != "p:1" {
		t.Errorf("Keys after Reset = %v", got)
	}
}

func TestDictSizeBytes(t *testing.T) {
	d := NewDict()
	empty := d.SizeBytes()
	if empty <= 0 {
		t.Fatalf("empty dict SizeBytes = %d", empty)
	}
	d.Intern("p:1.2.3")
	one := d.SizeBytes()
	if one <= empty {
		t.Errorf("SizeBytes did not grow on intern: %d -> %d", empty, one)
	}
	if delta := one - empty; delta < len("p:1.2.3") {
		t.Errorf("per-key delta %d smaller than the key itself", delta)
	}
	d.Reset()
	if got := d.SizeBytes(); got != empty {
		t.Errorf("SizeBytes after Reset = %d, want %d", got, empty)
	}
}
