package features

import (
	"bytes"
	"strconv"

	"repro/internal/graph"
)

// Scratch holds the reusable state of an ID-based path enumeration: the
// canonical-key byte buffers, the DFS stacks, and the per-feature count
// table indexed by FeatureID. One Scratch serves one enumeration at a time;
// reusing it across calls makes the whole hot path allocation-free once the
// buffers have warmed up.
type Scratch struct {
	counts  []int32     // occurrence count per FeatureID, reset after each run
	touched []FeatureID // IDs with non-zero count, in first-visit order
	out     []IDCount   // result buffer returned via IDSet.Counts
	fwd     []byte      // forward canonical rendering
	rev     []byte      // reverse canonical rendering
	inPath  []bool      // DFS visited marks
	labels  []graph.Label
	elabs   []graph.Label
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// buildKey renders the canonical key of the current path into one of the
// scratch buffers and returns it (valid until the next buildKey call). The
// bytes are identical to pathKey/pathKeyLabeled's output: the smaller of the
// forward and reverse decimal renderings, "p:"- or "p:!"-prefixed. The
// comparison is over the rendered bytes, matching the string comparison of
// the legacy path (lexicographic over decimals, not numeric).
func (s *Scratch) buildKey(labels, elabs []graph.Label, labeled bool) []byte {
	if labeled && allZero(elabs) {
		labeled = false
	}
	if !labeled {
		s.fwd = append(s.fwd[:0], 'p', ':')
		s.rev = append(s.rev[:0], 'p', ':')
		for i, l := range labels {
			if i > 0 {
				s.fwd = append(s.fwd, '.')
			}
			s.fwd = strconv.AppendInt(s.fwd, int64(l), 10)
		}
		for i := len(labels) - 1; i >= 0; i-- {
			if i < len(labels)-1 {
				s.rev = append(s.rev, '.')
			}
			s.rev = strconv.AppendInt(s.rev, int64(labels[i]), 10)
		}
	} else {
		n := len(labels)
		s.fwd = append(s.fwd[:0], 'p', ':', '!')
		for i, v := range labels {
			if i > 0 {
				s.fwd = append(s.fwd, '.')
				s.fwd = strconv.AppendInt(s.fwd, int64(elabs[i-1]), 10)
				s.fwd = append(s.fwd, '.')
			}
			s.fwd = strconv.AppendInt(s.fwd, int64(v), 10)
		}
		s.rev = append(s.rev[:0], 'p', ':', '!')
		for i := 0; i < n; i++ {
			if i > 0 {
				s.rev = append(s.rev, '.')
				s.rev = strconv.AppendInt(s.rev, int64(elabs[n-1-i]), 10)
				s.rev = append(s.rev, '.')
			}
			s.rev = strconv.AppendInt(s.rev, int64(labels[n-1-i]), 10)
		}
	}
	if bytes.Compare(s.rev, s.fwd) < 0 {
		return s.rev
	}
	return s.fwd
}

// PathsID enumerates the same simple-path features as Paths but yields
// interned (FeatureID, count) pairs instead of a string-keyed map, touching
// the allocator only when dictionary entries or scratch buffers must grow.
//
// With intern=true every feature is added to d (index construction); with
// intern=false the dictionary is read-only and occurrences of keys absent
// from d are tallied in IDSet.Unknown (query-side filtering: one unknown
// feature already proves an empty candidate set for subgraph-style filters,
// and unknown features are irrelevant to containment-style filters).
//
// The returned IDSet.Counts slice is owned by s and is valid only until the
// next enumeration with the same scratch. opt.Locations is not supported
// (the Grapes build path keeps the string-based Paths for that).
//
// Interning runs lookup-only first and only retries under the write lock
// when genuinely new keys appeared, so steady-state rebuilds (whose
// features are all interned already) never block concurrent readers.
func PathsID(g *graph.Graph, opt PathOptions, d *Dict, s *Scratch, intern bool) IDSet {
	if intern {
		if out := pathsID(g, opt, d, s, false); out.Unknown == 0 {
			return out
		}
		return pathsID(g, opt, d, s, true)
	}
	return pathsID(g, opt, d, s, false)
}

func pathsID(g *graph.Graph, opt PathOptions, d *Dict, s *Scratch, intern bool) IDSet {
	if opt.Locations {
		panic("features: PathsID does not support location recording")
	}
	if opt.MaxLen < 0 {
		opt.MaxLen = 0
	}
	n := g.NumVertices()

	if intern {
		d.mu.Lock()
		defer d.mu.Unlock()
	} else {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	if len(s.counts) < len(d.keys) {
		s.counts = append(s.counts, make([]int32, len(d.keys)-len(s.counts))...)
	}
	if cap(s.inPath) < n {
		s.inPath = make([]bool, n)
	}
	inPath := s.inPath[:n]
	for i := range inPath {
		inPath[i] = false
	}
	labels := s.labels[:0]
	elabs := s.elabs[:0]
	labeled := g.HasEdgeLabels()

	unknown := 0
	emit := func() {
		key := s.buildKey(labels, elabs, labeled)
		var id FeatureID
		var ok bool
		if intern {
			id, ok = d.internBytesLocked(key), true
		} else {
			id, ok = d.lookupBytesLocked(key)
		}
		if !ok {
			unknown++
			return
		}
		for int(id) >= len(s.counts) {
			s.counts = append(s.counts, 0)
		}
		if s.counts[id] == 0 {
			s.touched = append(s.touched, id)
		}
		s.counts[id]++
	}

	var dfs func(v int)
	dfs = func(v int) {
		emit()
		if len(labels) == opt.MaxLen+1 {
			return
		}
		for _, w := range g.Neighbors(v) {
			if inPath[w] {
				continue
			}
			inPath[w] = true
			labels = append(labels, g.Label(int(w)))
			if labeled {
				elabs = append(elabs, g.EdgeLabel(v, int(w)))
			}
			dfs(int(w))
			labels = labels[:len(labels)-1]
			if labeled {
				elabs = elabs[:len(elabs)-1]
			}
			inPath[w] = false
		}
	}
	for v := 0; v < n; v++ {
		inPath[v] = true
		labels = append(labels[:0], g.Label(v))
		elabs = elabs[:0]
		dfs(v)
		inPath[v] = false
	}
	s.labels, s.elabs = labels[:0], elabs[:0]

	s.out = s.out[:0]
	for _, id := range s.touched {
		s.out = append(s.out, IDCount{ID: id, Count: s.counts[id]})
		s.counts[id] = 0
	}
	s.touched = s.touched[:0]
	return IDSet{Counts: s.out, Unknown: unknown}
}
