package features

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func benchGraph(n int, p float64, labels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// BenchmarkPathsString is the seed enumeration path: canonical strings into
// a fresh map per call.
func BenchmarkPathsString(b *testing.B) {
	g := benchGraph(24, 0.25, 4, 7)
	opt := PathOptions{MaxLen: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paths(g, opt)
	}
}

// BenchmarkPathsID is the interned enumeration with a warm dictionary and
// reused scratch — the steady-state per-query cost.
func BenchmarkPathsID(b *testing.B) {
	g := benchGraph(24, 0.25, 4, 7)
	opt := PathOptions{MaxLen: 4}
	d := NewDict()
	s := NewScratch()
	PathsID(g, opt, d, s, true) // warm the dictionary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PathsID(g, opt, d, s, false)
	}
}

// BenchmarkPathsIDIntern measures the build-side enumeration (interning
// enabled, dictionary already warm).
func BenchmarkPathsIDIntern(b *testing.B) {
	g := benchGraph(24, 0.25, 4, 7)
	opt := PathOptions{MaxLen: 4}
	d := NewDict()
	s := NewScratch()
	PathsID(g, opt, d, s, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PathsID(g, opt, d, s, true)
	}
}
