package features

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPathsRangePartitionEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomGraph(rng, 30, 0.15, 3)
	opt := PathOptions{MaxLen: 3, Locations: true}
	whole := Paths(g, opt)

	// any 3-way partition of the start-vertex range must merge to the whole
	cuts := [][2]int{{0, 7}, {7, 19}, {19, 30}}
	merged := PathsRange(g, opt, cuts[0][0], cuts[0][1])
	for _, c := range cuts[1:] {
		MergePathSets(merged, PathsRange(g, opt, c[0], c[1]))
	}
	if !reflect.DeepEqual(whole.Counts, merged.Counts) {
		t.Fatal("partitioned counts differ from whole enumeration")
	}
	for k, locs := range whole.Locations {
		if !reflect.DeepEqual(locs, merged.Locations[k]) {
			t.Fatalf("locations differ for %q: %v vs %v", k, locs, merged.Locations[k])
		}
	}
}

func TestPathsRangeClampsBounds(t *testing.T) {
	g := pathGraph(1, 2, 3)
	a := PathsRange(g, PathOptions{MaxLen: 2}, -5, 99)
	b := Paths(g, PathOptions{MaxLen: 2})
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Error("out-of-range bounds not clamped")
	}
	empty := PathsRange(g, PathOptions{MaxLen: 2}, 2, 2)
	if len(empty.Counts) != 0 {
		t.Errorf("empty range produced features: %v", empty.Counts)
	}
}

func TestMergePathSetsAccumulates(t *testing.T) {
	dst := &PathSet{Counts: map[string]int{"p:1": 2}, Locations: map[string][]int32{"p:1": {0, 2}}}
	src := &PathSet{Counts: map[string]int{"p:1": 3, "p:2": 1}, Locations: map[string][]int32{"p:1": {1, 2}}}
	MergePathSets(dst, src)
	if dst.Counts["p:1"] != 5 || dst.Counts["p:2"] != 1 {
		t.Errorf("merged counts = %v", dst.Counts)
	}
	if !reflect.DeepEqual(dst.Locations["p:1"], []int32{0, 1, 2}) {
		t.Errorf("merged locations = %v", dst.Locations["p:1"])
	}
}

func TestMergePathSetsNilLocations(t *testing.T) {
	dst := &PathSet{Counts: map[string]int{"a": 1}}
	src := &PathSet{Counts: map[string]int{"a": 1}}
	MergePathSets(dst, src) // must not panic with nil Locations
	if dst.Counts["a"] != 2 {
		t.Error("counts not merged")
	}
}
