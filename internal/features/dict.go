package features

import "sync"

// FeatureID is a dense interned identifier for a canonical feature key.
// IDs are assigned sequentially from 0 by a Dict, so they can index flat
// per-feature tables (postings arrays, per-query count scratch) without
// hashing the canonical string.
type FeatureID uint32

// IDCount pairs an interned feature with its occurrence count in one graph.
type IDCount struct {
	ID    FeatureID
	Count int32
}

// IDSet is the result of an ID-based feature enumeration over one graph: the
// multiset of canonical features, expressed as interned IDs. Unknown counts
// the path occurrences whose canonical key was absent from the dictionary
// (possible only in lookup-only enumeration) — for count-based subgraph
// filters a single unknown feature proves an empty candidate set, since no
// indexed graph contains it.
type IDSet struct {
	Counts  []IDCount
	Unknown int
}

// Dict interns canonical feature keys into dense FeatureIDs. One Dict is
// typically shared by every index over the same feature family (the dataset
// trie and iGQ's cache-side Isub/Isuper), so a query graph is canonicalised
// and interned exactly once per query and every index probes it by integer
// ID.
//
// Interning (Intern, and ID-mode enumeration with intern=true) takes a write
// lock; lookups take a read lock, so concurrent read-only filtering is safe
// even while a background shadow rebuild interns new keys.
type Dict struct {
	mu   sync.RWMutex
	ids  map[string]FeatureID
	keys []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]FeatureID)}
}

// Len returns the number of interned keys.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.keys)
}

// Intern returns the ID of key, assigning the next dense ID on first sight.
func (d *Dict) Intern(key string) FeatureID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.internLocked(key)
}

func (d *Dict) internLocked(key string) FeatureID {
	if id, ok := d.ids[key]; ok {
		return id
	}
	id := FeatureID(len(d.keys))
	d.ids[key] = id
	d.keys = append(d.keys, key)
	return id
}

// internBytesLocked is the hot-path interning step: the map probe converts
// the byte buffer without allocating; only a genuinely new key materialises
// a string. Caller holds the write lock.
func (d *Dict) internBytesLocked(key []byte) FeatureID {
	if id, ok := d.ids[string(key)]; ok {
		return id
	}
	k := string(key)
	id := FeatureID(len(d.keys))
	d.ids[k] = id
	d.keys = append(d.keys, k)
	return id
}

// Reset drops every interned key, keeping the Dict object itself valid so
// that indexes sharing it (via index.DictProvider) stay wired to the same
// interner. IDs restart densely from 0 as keys are re-interned, so any
// structure keyed by the old IDs must be rebuilt afterwards — Reset is the
// rebuild-time companion of Build/LoadIndex, never a query-time operation.
// Without it a dictionary shared across successive Builds accumulates the
// dead vocabulary of every dataset it ever saw (unbounded growth, and bloat
// in persisted snapshot headers, which serialise the dictionary in full).
func (d *Dict) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	clear(d.ids)
	d.keys = d.keys[:0]
}

// DictEntrySizeBytes is the accounted footprint of one interned key: the
// key bytes (stored once — the map key and the ID-order slice share one
// string backing) plus the slice-entry string header and the map entry.
// Exposed so consumers that *exclude* entries (the trie's retired-feature
// accounting) stay in lockstep with SizeBytes.
func DictEntrySizeBytes(key string) int { return len(key) + 16 + 48 }

// SizeBytes approximates the dictionary's memory footprint: the per-entry
// cost of DictEntrySizeBytes over every key, plus fixed headers. Counted
// by the index that owns the dictionary (paper Fig 18 accounting); tries
// sharing the dictionary must not add it again.
func (d *Dict) SizeBytes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	sz := 48 // struct, map header, slice header
	for _, k := range d.keys {
		sz += DictEntrySizeBytes(k)
	}
	return sz
}

// Lookup returns the ID of key without interning it.
func (d *Dict) Lookup(key string) (FeatureID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[key]
	return id, ok
}

// lookupBytesLocked probes without allocating. Caller holds a read lock.
func (d *Dict) lookupBytesLocked(key []byte) (FeatureID, bool) {
	id, ok := d.ids[string(key)]
	return id, ok
}

// Key returns the canonical string for an interned ID.
func (d *Dict) Key(id FeatureID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.keys[id]
}

// Keys returns a copy of all interned keys in ID order, for persistence:
// re-interning the slice into a fresh Dict reproduces the same IDs.
func (d *Dict) Keys() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.keys...)
}
