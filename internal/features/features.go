// Package features extracts the graph substructures ("features") that the
// filter-then-verify indexes of the paper are built from:
//
//   - labeled simple paths up to a maximum edge length (GraphGrepSX and
//     Grapes index paths of length ≤ 4; the iGQ Isub/Isuper components use
//     the same feature family over query graphs),
//   - labeled subtrees up to a maximum vertex count (CT-Index, trees ≤ 6),
//   - labeled simple cycles up to a maximum length (CT-Index, cycles ≤ 8).
//
// Every feature is reduced to a canonical string key so that two occurrences
// of the same abstract substructure — anywhere, in any vertex order — map to
// the same key. For paths the canonical form is the lexicographic minimum of
// the label sequence and its reverse; for cycles, the minimum over all
// rotations of both directions; for trees, the AHU canonical encoding
// (linear-time for trees, which is exactly why CT-Index restricts itself to
// trees and cycles).
//
// # Feature dictionary
//
// Canonical strings are the persistent, order-defining representation; the
// per-query hot path runs on interned integers instead. A Dict assigns each
// canonical key a dense FeatureID (uint32), and PathsID enumerates a graph's
// path features directly as (FeatureID, count) pairs: the canonical form is
// rendered into a reusable byte buffer (forward and reverse renderings
// compared as bytes — no string pair, no Itoa allocations) and resolved
// against the dictionary with an allocation-free map probe; occurrence
// counts accumulate in a flat per-ID scratch table rather than a string map.
// Indexes that share one Dict (the dataset trie and iGQ's cache-side
// Isub/Isuper) therefore canonicalise a query once and afterwards exchange
// only integer IDs — postings are stored and probed by FeatureID, and the
// canonical strings are needed only for trie walks and persistence.
package features

import (
	"slices"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// A Key is the canonical string form of a feature. Keys from different
// families never collide: they are namespaced by a one-byte prefix
// ("p:" path, "t:" tree, "c:" cycle).
type Key = string

// PathSet holds, for a single graph, every canonical path feature with its
// occurrence count and (optionally) the set of vertices touched by any
// occurrence — the "location information" Grapes stores.
type PathSet struct {
	Counts    map[Key]int
	Locations map[Key][]int32 // sorted vertex ids; nil when not recorded
}

// PathOptions configures path enumeration.
type PathOptions struct {
	MaxLen    int  // maximum number of edges per path (paper default: 4)
	Locations bool // record per-feature vertex locations (Grapes)
}

// pathKey builds the canonical key for a sequence of labels: the smaller of
// the sequence and its reverse, joined with '.' and prefixed "p:".
func pathKey(labels []graph.Label) Key {
	n := len(labels)
	rev := make([]graph.Label, n)
	for i, l := range labels {
		rev[n-1-i] = l
	}
	a := joinLabels(labels)
	b := joinLabels(rev)
	if b < a {
		a = b
	}
	return "p:" + a
}

// pathKeyLabeled canonicalises a path whose edges carry labels: vertex and
// edge labels interleave (v0 e01 v1 e12 ... vk) and the key is the smaller
// of the forward and reversed interleavings. The "!" marker keeps labeled
// keys disjoint from unlabeled ones (an interleaved sequence could
// otherwise collide with a longer unlabeled path's key). Zero-labeled
// occurrences use the legacy unlabeled form, so graphs mixing labeled and
// unlabeled edges filter correctly against each other.
func pathKeyLabeled(labels, elabs []graph.Label) Key {
	if allZero(elabs) {
		return pathKey(labels)
	}
	inter := interleave(labels, elabs)
	n := len(labels)
	revV := make([]graph.Label, n)
	for i, l := range labels {
		revV[n-1-i] = l
	}
	revE := make([]graph.Label, len(elabs))
	for i, l := range elabs {
		revE[len(elabs)-1-i] = l
	}
	a := inter
	if b := interleave(revV, revE); b < a {
		a = b
	}
	return "p:!" + a
}

func allZero(ls []graph.Label) bool {
	for _, l := range ls {
		if l != 0 {
			return false
		}
	}
	return true
}

// interleave renders v0.e0.v1.e1...vk.
func interleave(vs, es []graph.Label) string {
	var b strings.Builder
	for i, v := range vs {
		if i > 0 {
			b.WriteByte('.')
			b.WriteString(strconv.Itoa(int(es[i-1])))
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

func joinLabels(ls []graph.Label) string {
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(l)))
	}
	return b.String()
}

// Paths enumerates every simple path of 0..MaxLen edges in g (a 0-edge path
// is a single vertex). Each *directed* traversal is found once; because a
// path and its reverse share a canonical key, undirected occurrences are
// counted twice except single vertices — consistently for dataset and query
// graphs, so count-based filter comparisons remain valid.
func Paths(g *graph.Graph, opt PathOptions) *PathSet {
	return PathsRange(g, opt, 0, g.NumVertices())
}

// PathsRange enumerates the paths whose *start vertex* lies in [lo, hi).
// Because every directed path is discovered exactly once from its start
// vertex, partitioning the vertex range across workers and merging the
// per-worker sets (MergePathSets) reproduces Paths exactly — this is the
// Grapes parallel index construction strategy, where each thread works on a
// portion of the graph and the per-thread tries are merged.
func PathsRange(g *graph.Graph, opt PathOptions, lo, hi int) *PathSet {
	if opt.MaxLen < 0 {
		opt.MaxLen = 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > g.NumVertices() {
		hi = g.NumVertices()
	}
	ps := &PathSet{Counts: make(map[Key]int)}
	if opt.Locations {
		ps.Locations = make(map[Key][]int32)
	}
	n := g.NumVertices()
	labeled := g.HasEdgeLabels()
	inPath := make([]bool, n)
	pathV := make([]int32, 0, opt.MaxLen+1)
	labels := make([]graph.Label, 0, opt.MaxLen+1)
	elabs := make([]graph.Label, 0, opt.MaxLen)

	var locAdd func(k Key)
	if opt.Locations {
		locAdd = func(k Key) {
			ps.Locations[k] = append(ps.Locations[k], pathV...)
		}
	}

	var dfs func(v int)
	dfs = func(v int) {
		var k Key
		if labeled {
			k = pathKeyLabeled(labels, elabs)
		} else {
			k = pathKey(labels)
		}
		ps.Counts[k]++
		if locAdd != nil {
			locAdd(k)
		}
		if len(labels) == opt.MaxLen+1 {
			return
		}
		for _, w := range g.Neighbors(v) {
			if inPath[w] {
				continue
			}
			inPath[w] = true
			pathV = append(pathV, w)
			labels = append(labels, g.Label(int(w)))
			if labeled {
				elabs = append(elabs, g.EdgeLabel(v, int(w)))
			}
			dfs(int(w))
			labels = labels[:len(labels)-1]
			if labeled {
				elabs = elabs[:len(elabs)-1]
			}
			pathV = pathV[:len(pathV)-1]
			inPath[w] = false
		}
	}
	_ = n
	for v := lo; v < hi; v++ {
		inPath[v] = true
		pathV = append(pathV[:0], int32(v))
		labels = append(labels[:0], g.Label(v))
		dfs(v)
		inPath[v] = false
	}
	if opt.Locations {
		for k, vs := range ps.Locations {
			ps.Locations[k] = dedupSorted(vs)
		}
	}
	return ps
}

// MergePathSets folds src into dst: counts add, locations union. dst must
// have been produced with the same PathOptions as src.
func MergePathSets(dst, src *PathSet) {
	for k, c := range src.Counts {
		dst.Counts[k] += c
	}
	if dst.Locations != nil && src.Locations != nil {
		for k, vs := range src.Locations {
			dst.Locations[k] = dedupSorted(append(dst.Locations[k], vs...))
		}
	}
}

func dedupSorted(vs []int32) []int32 {
	if len(vs) == 0 {
		return vs
	}
	slices.Sort(vs)
	out := vs[:1]
	for _, v := range vs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// SizeBytes approximates the in-memory footprint of the path set, for the
// paper's index-size accounting (Fig 18).
func (ps *PathSet) SizeBytes() int {
	sz := 48
	for k := range ps.Counts {
		sz += len(k) + 16 + 8
	}
	for k, vs := range ps.Locations {
		sz += len(k) + 24 + 4*len(vs)
	}
	return sz
}
