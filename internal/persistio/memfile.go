package persistio

import (
	"fmt"
	"io"
)

// MemFile is an in-memory File with the same observable contract as an
// *os.File opened O_RDWR: sparse writes zero-fill, reads at EOF return
// io.EOF, Truncate extends or shrinks, Sync is a no-op. It also supports
// AtomicRewrite (buffer-and-swap), so crash tests can drive the exact
// code paths real snapshot files take without touching disk.
type MemFile struct {
	b   []byte
	off int64
}

// NewMemFile returns an empty MemFile.
func NewMemFile() *MemFile { return &MemFile{} }

// NewMemFileBytes returns a MemFile holding a copy of b, positioned at 0.
func NewMemFileBytes(b []byte) *MemFile {
	return &MemFile{b: append([]byte(nil), b...)}
}

// Bytes returns the file contents. The slice aliases the file; callers
// must not retain it across writes.
func (m *MemFile) Bytes() []byte { return m.b }

// Len returns the file size.
func (m *MemFile) Len() int64 { return int64(len(m.b)) }

// Clone returns an independent copy of the file, positioned at 0 — the
// crash harness forks one per injected fault point.
func (m *MemFile) Clone() *MemFile { return NewMemFileBytes(m.b) }

func (m *MemFile) Read(p []byte) (int, error) {
	if m.off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[m.off:])
	m.off += int64(n)
	return n, nil
}

func (m *MemFile) Write(p []byte) (int, error) {
	need := m.off + int64(len(p))
	if int64(len(m.b)) < need {
		m.b = append(m.b, make([]byte, need-int64(len(m.b)))...)
	}
	copy(m.b[m.off:], p)
	m.off = need
	return len(p), nil
}

func (m *MemFile) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = m.off + offset
	case io.SeekEnd:
		abs = int64(len(m.b)) + offset
	default:
		return 0, fmt.Errorf("persistio: invalid seek whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("persistio: negative seek offset %d", abs)
	}
	m.off = abs
	return abs, nil
}

func (m *MemFile) Sync() error { return nil }

func (m *MemFile) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("persistio: negative truncate size %d", size)
	}
	if size <= int64(len(m.b)) {
		m.b = m.b[:size]
	} else {
		m.b = append(m.b, make([]byte, size-int64(len(m.b)))...)
	}
	return nil
}

// AtomicRewrite implements AtomicRewriter by buffer-and-swap: the new
// contents accumulate in a scratch buffer and replace the file only if
// write succeeds, mirroring the temp-file-plus-rename of PathFile.
func (m *MemFile) AtomicRewrite(write func(w io.Writer) error) error {
	scratch := &MemFile{}
	if err := write(scratch); err != nil {
		return err
	}
	m.b = scratch.b
	m.off = 0
	return nil
}

var (
	_ File           = (*MemFile)(nil)
	_ AtomicRewriter = (*MemFile)(nil)
	_ File           = (*FaultFile)(nil)
	_ AtomicRewriter = (*FaultFile)(nil)
	_ File           = (*PathFile)(nil)
	_ AtomicRewriter = (*PathFile)(nil)
)
