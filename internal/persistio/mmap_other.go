//go:build !unix

package persistio

import (
	"errors"
	"os"
)

// mapFile always fails on platforms without mmap support; OpenMapped
// falls back to pread.
func mapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errors.New("persistio: mmap unsupported on this platform")
}

func unmapFile(_ []byte) error { return nil }
