//go:build unix

package persistio

import (
	"errors"
	"os"
	"syscall"
)

// mapFile memory-maps size bytes of f read-only. An empty file cannot be
// mapped (mmap of length 0 is an error); callers fall back to pread.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, errors.New("persistio: empty file not mappable")
	}
	if int64(int(size)) != size {
		return nil, errors.New("persistio: file too large to map")
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
