// Package persistio supplies the durability primitives the snapshot and
// journal persisters build on, plus the fault-injection doubles that let
// tests kill a write at any byte boundary and prove recovery.
//
// Two write disciplines cover every persistence path in this module:
//
//   - AtomicWriteFile: full-file saves. The content is written to a
//     temporary file in the target directory, fsynced, renamed over the
//     destination, and the directory is fsynced. A crash at any point
//     leaves either the old file or the new file — never a torn mix, and
//     never a destroyed previous snapshot.
//   - File + AtomicRewriter: appendable snapshot files (delta journals).
//     File is the capability set journal appends need (read, write, seek,
//     sync, truncate); AtomicRewriter is the optional capability of
//     atomically replacing the whole contents, used by journal compaction
//     so a crash mid-compaction cannot brick the snapshot it is folding.
//
// Real files get these via OpenFile/Create (PathFile); tests get the same
// contracts from MemFile, and FaultFile wraps either with programmable
// fault points (short write, write error, sync error, crash-after-N-bytes)
// for the crash-recovery soak harness.
package persistio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the capability set appendable snapshot files need: streaming
// reads and writes, seeking, truncation, and durability barriers.
// *os.File satisfies it; MemFile supplies an in-memory double.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
}

// AtomicRewriter is the optional capability of replacing a file's entire
// contents atomically: after AtomicRewrite returns nil the file holds
// exactly what write produced; after an error (or a crash at any point)
// it still holds its previous contents. Journal compaction prefers this
// over an in-place rewrite, which has a window where a crash destroys the
// snapshot.
type AtomicRewriter interface {
	AtomicRewrite(write func(io.Writer) error) error
}

// Sync issues a durability barrier on w when it supports one (File,
// *os.File) and is a no-op otherwise. Persisters call it after the bytes
// that commit an operation (a journal terminator, a rename) have landed.
func Sync(w any) error {
	if s, ok := w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// AtomicWriteFile writes a file atomically and durably: write streams the
// content into a temporary file created in path's directory, the
// temporary file is fsynced, renamed onto path, and the directory is
// fsynced so the rename itself is durable. On any error the temporary
// file is removed and path is untouched.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	return AtomicWriteFileWrapped(path, nil, write)
}

// AtomicWriteFileWrapped is AtomicWriteFile with an injectable wrap
// applied to the temporary file — the fault-injection seam crash tests
// use (wrap with a FaultFile to kill the save mid-write and verify the
// destination survives untouched). A nil wrap writes straight to the
// file.
func AtomicWriteFileWrapped(path string, wrap func(File) File, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persistio: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	var f File = tmp
	if wrap != nil {
		f = wrap(tmp)
	}
	if err := write(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("persistio: syncing temp file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		tmpName = ""
		os.Remove(tmp.Name())
		return fmt.Errorf("persistio: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		tmpName = ""
		return fmt.Errorf("persistio: renaming temp file: %w", err)
	}
	tmpName = "" // committed; nothing to clean up
	return syncDir(dir)
}

// syncDir fsyncs a directory so a preceding rename in it is durable.
// Errors from platforms that refuse directory fsync are ignored — the
// rename itself is already atomic; only its durability is best-effort
// there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// PathFile is an *os.File that remembers its path, which is what lets it
// implement AtomicRewriter: the replacement content goes to a temp file
// that is renamed over the path, exactly like AtomicWriteFile, and the
// handle is re-opened onto the new inode so subsequent reads and appends
// see the rewritten contents.
type PathFile struct {
	*os.File
	path string
}

// OpenFile opens an existing snapshot file for reading, appending and
// atomic rewriting.
func OpenFile(path string) (*PathFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	return &PathFile{File: f, path: path}, nil
}

// Path returns the path the file was opened with.
func (p *PathFile) Path() string { return p.path }

// AtomicRewrite implements AtomicRewriter: the new contents are written
// and fsynced beside the file and renamed over it, then the handle is
// re-opened onto the new inode (positioned at the start). A crash or
// error at any point leaves the previous contents intact.
func (p *PathFile) AtomicRewrite(write func(w io.Writer) error) error {
	if err := AtomicWriteFileWrapped(p.path, nil, write); err != nil {
		return err
	}
	nf, err := os.OpenFile(p.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("persistio: reopening rewritten file: %w", err)
	}
	old := p.File
	p.File = nf
	old.Close()
	return nil
}

// Fault-injection errors. ErrInjected marks a programmed fault (write or
// sync error); ErrCrashed marks the simulated kill — once it fires, every
// subsequent operation on the FaultFile fails with it, modelling a dead
// process whose file retains only the bytes persisted before the crash.
var (
	ErrInjected = errors.New("persistio: injected fault")
	ErrCrashed  = errors.New("persistio: simulated crash")
)

// FaultFile wraps a File with programmable fault points. The crash model
// is byte-prefix: CrashAfterBytes(n) lets exactly n more content bytes
// reach the underlying file — a write crossing the budget persists only
// its prefix — after which the file behaves like the process died:
// every read, write, seek, sync and truncate fails with ErrCrashed.
// Sweeping n across [0, bytes-of-operation] therefore kills the
// operation at every byte boundary.
type FaultFile struct {
	f File

	budget  int64 // content bytes still allowed; -1 = unlimited
	crashed bool

	writeErr   error // next Write fails with this (no bytes persisted)
	shortWrite bool  // next Write persists only half, then reports ErrInjected
	syncErr    error // next Sync fails with this

	written int64 // content bytes persisted through this wrapper
}

// NewFaultFile wraps f with no faults armed.
func NewFaultFile(f File) *FaultFile { return &FaultFile{f: f, budget: -1} }

// CrashAfterBytes arms the simulated kill after n more written bytes.
func (ff *FaultFile) CrashAfterBytes(n int64) { ff.budget = n }

// FailNextWrite arms a one-shot write error (nil err selects ErrInjected).
func (ff *FaultFile) FailNextWrite(err error) {
	if err == nil {
		err = ErrInjected
	}
	ff.writeErr = err
}

// ShortNextWrite arms a one-shot short write: the next Write persists only
// half its bytes and reports ErrInjected.
func (ff *FaultFile) ShortNextWrite() { ff.shortWrite = true }

// FailNextSync arms a one-shot sync error (nil err selects ErrInjected).
func (ff *FaultFile) FailNextSync(err error) {
	if err == nil {
		err = ErrInjected
	}
	ff.syncErr = err
}

// Crashed reports whether the simulated kill has fired.
func (ff *FaultFile) Crashed() bool { return ff.crashed }

// Written returns the content bytes persisted through this wrapper.
func (ff *FaultFile) Written() int64 { return ff.written }

func (ff *FaultFile) Read(p []byte) (int, error) {
	if ff.crashed {
		return 0, ErrCrashed
	}
	return ff.f.Read(p)
}

func (ff *FaultFile) Write(p []byte) (int, error) {
	if ff.crashed {
		return 0, ErrCrashed
	}
	if ff.writeErr != nil {
		err := ff.writeErr
		ff.writeErr = nil
		return 0, err
	}
	if ff.shortWrite {
		ff.shortWrite = false
		n, err := ff.f.Write(p[:len(p)/2])
		ff.written += int64(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	if ff.budget >= 0 && int64(len(p)) > ff.budget {
		n, _ := ff.f.Write(p[:ff.budget])
		ff.written += int64(n)
		ff.crashed = true
		return n, ErrCrashed
	}
	if ff.budget >= 0 {
		ff.budget -= int64(len(p))
	}
	n, err := ff.f.Write(p)
	ff.written += int64(n)
	return n, err
}

func (ff *FaultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.crashed {
		return 0, ErrCrashed
	}
	return ff.f.Seek(offset, whence)
}

func (ff *FaultFile) Sync() error {
	if ff.crashed {
		return ErrCrashed
	}
	if ff.syncErr != nil {
		err := ff.syncErr
		ff.syncErr = nil
		return err
	}
	return ff.f.Sync()
}

func (ff *FaultFile) Truncate(size int64) error {
	if ff.crashed {
		return ErrCrashed
	}
	return ff.f.Truncate(size)
}

// AtomicRewrite forwards to the underlying file's AtomicRewriter (when it
// has one) with the fault budget applied to the rewrite content: a crash
// or fault during the callback aborts the swap, so — like a real atomic
// rewrite — the previous contents survive intact.
func (ff *FaultFile) AtomicRewrite(write func(w io.Writer) error) error {
	if ff.crashed {
		return ErrCrashed
	}
	ar, ok := ff.f.(AtomicRewriter)
	if !ok {
		return fmt.Errorf("persistio: underlying file does not support atomic rewrite")
	}
	return ar.AtomicRewrite(func(w io.Writer) error {
		return write(faultWriter{ff: ff, w: w})
	})
}

// faultWriter routes rewrite-content writes through the FaultFile's fault
// state while the bytes themselves land in the rewrite destination.
type faultWriter struct {
	ff *FaultFile
	w  io.Writer
}

func (fw faultWriter) Write(p []byte) (int, error) {
	ff := fw.ff
	if ff.crashed {
		return 0, ErrCrashed
	}
	if ff.writeErr != nil {
		err := ff.writeErr
		ff.writeErr = nil
		return 0, err
	}
	if ff.budget >= 0 && int64(len(p)) > ff.budget {
		n, _ := fw.w.Write(p[:ff.budget])
		ff.written += int64(n)
		ff.crashed = true
		return n, ErrCrashed
	}
	if ff.budget >= 0 {
		ff.budget -= int64(len(p))
	}
	n, err := fw.w.Write(p)
	ff.written += int64(n)
	return n, err
}
