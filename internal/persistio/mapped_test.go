package persistio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func checkRandomAccess(t *testing.T, ra RandomAccess, want []byte) {
	t.Helper()
	if got := ra.Size(); got != int64(len(want)) {
		t.Fatalf("Size = %d, want %d", got, len(want))
	}
	// Full read.
	buf := make([]byte, len(want))
	if _, err := ra.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt full: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("ReadAt full = %q, want %q", buf, want)
	}
	// Interior read.
	if len(want) >= 4 {
		mid := make([]byte, 2)
		if n, err := ra.ReadAt(mid, 1); err != nil || n != 2 {
			t.Fatalf("ReadAt interior: n=%d err=%v", n, err)
		}
		if !bytes.Equal(mid, want[1:3]) {
			t.Fatalf("ReadAt interior = %q, want %q", mid, want[1:3])
		}
	}
	// Read spanning EOF returns the short count plus io.EOF.
	tail := make([]byte, 8)
	n, err := ra.ReadAt(tail, int64(len(want))-2)
	if n != 2 || err != io.EOF {
		t.Fatalf("ReadAt past end: n=%d err=%v, want 2, io.EOF", n, err)
	}
	if !bytes.Equal(tail[:2], want[len(want)-2:]) {
		t.Fatalf("tail bytes = %q, want %q", tail[:2], want[len(want)-2:])
	}
	// Read at EOF.
	if _, err := ra.ReadAt(buf[:1], int64(len(want))); err != io.EOF {
		t.Fatalf("ReadAt at end: err=%v, want io.EOF", err)
	}
}

func TestOpenMapped(t *testing.T) {
	want := []byte("the quick brown fox jumps over the lazy dog")
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	ra, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	checkRandomAccess(t, ra, want)
	if err := ra.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := ra.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: err=%v, want ErrClosed", err)
	}
	if err := ra.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenMappedEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ra, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped empty: %v", err)
	}
	defer ra.Close()
	if ra.Size() != 0 {
		t.Fatalf("Size = %d, want 0", ra.Size())
	}
	if _, err := ra.ReadAt(make([]byte, 1), 0); err != io.EOF {
		t.Fatalf("ReadAt on empty: err=%v, want io.EOF", err)
	}
}

func TestOpenMappedMissing(t *testing.T) {
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("OpenMapped on missing file succeeded")
	}
}

// OpenMapped snapshots the length at open time: bytes appended afterwards
// must not be visible, on either the mmap or the pread path.
func TestOpenMappedLengthSnapshot(t *testing.T) {
	want := []byte("prefix-bytes")
	path := filepath.Join(t.TempDir(), "grow.bin")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	ra, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-appended")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if ra.Size() != int64(len(want)) {
		t.Fatalf("Size grew to %d after append, want %d", ra.Size(), len(want))
	}
	buf := make([]byte, 32)
	n, _ := ra.ReadAt(buf, 0)
	if n != len(want) || !bytes.Equal(buf[:n], want) {
		t.Fatalf("ReadAt after append = %q (n=%d), want %q", buf[:n], n, want)
	}
}

func TestPreadFileFallback(t *testing.T) {
	want := []byte("pread fallback path bytes")
	path := filepath.Join(t.TempDir(), "pread.bin")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ra := RandomAccess(&preadFile{f: f, size: int64(len(want))})
	checkRandomAccess(t, ra, want)
	if err := ra.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: err=%v, want ErrClosed", err)
	}
}

func TestMemMapped(t *testing.T) {
	want := []byte("in-memory mapping")
	m := NewMemMapped(want)
	checkRandomAccess(t, m, want)

	// The slice is shared: in-place corruption is visible, which is what
	// the evict-then-refault CRC tests rely on.
	want[0] = 'X'
	buf := make([]byte, 1)
	if _, err := m.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'X' {
		t.Fatalf("mutation not visible through MemMapped: got %q", buf[0])
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(buf, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: err=%v, want ErrClosed", err)
	}
}

func TestFaultMapped(t *testing.T) {
	inner := NewMemMapped([]byte("abcdef"))
	fm := NewFaultMapped(inner)
	boom := errors.New("boom")

	buf := make([]byte, 3)
	if n, err := fm.ReadAt(buf, 0); err != nil || n != 3 {
		t.Fatalf("clean read: n=%d err=%v", n, err)
	}

	fm.FailNextRead(boom)
	if _, err := fm.ReadAt(buf, 0); !errors.Is(err, boom) {
		t.Fatalf("armed one-shot: err=%v, want boom", err)
	}
	if _, err := fm.ReadAt(buf, 0); err != nil {
		t.Fatalf("one-shot did not disarm: %v", err)
	}

	fm.FailReads(boom)
	for i := 0; i < 3; i++ {
		if _, err := fm.ReadAt(buf, 0); !errors.Is(err, boom) {
			t.Fatalf("sticky failure round %d: err=%v", i, err)
		}
	}
	fm.FailReads(nil)
	if _, err := fm.ReadAt(buf, 0); err != nil {
		t.Fatalf("disarmed sticky: %v", err)
	}

	if got := fm.Reads(); got != 7 {
		t.Fatalf("Reads = %d, want 7", got)
	}
	if fm.Size() != inner.Size() {
		t.Fatalf("Size passthrough: %d != %d", fm.Size(), inner.Size())
	}
	if err := fm.Close(); err != nil {
		t.Fatal(err)
	}
}
