package persistio

// Read-only random access. Snapshot loads historically streamed the whole
// file through an io.Reader; the lazy segment loader instead needs to jump
// straight to a shard's segment body without touching the bytes in
// between. RandomAccess is that shape — io.ReaderAt plus a length — and
// OpenMapped is the file-backed constructor: the file is memory-mapped
// where the platform supports it (reads are then plain page faults, and
// an evicted shard costs nothing until re-touched), with a pread
// (*os.File.ReadAt) fallback everywhere else. MemMapped serves tests and
// fuzz targets from a byte slice, and FaultMapped injects read failures
// for the crash/corruption suites.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// RandomAccess is a read-only random-access view of a snapshot: positioned
// reads plus a fixed length. Close releases the backing resources; reads
// after Close fail. ReadAt is safe for concurrent use (the io.ReaderAt
// contract), Close is not safe concurrently with in-flight reads.
type RandomAccess interface {
	io.ReaderAt
	Size() int64
	Close() error
}

// ErrClosed reports a read through a RandomAccess that was already closed.
var ErrClosed = errors.New("persistio: read from closed mapping")

// OpenMapped opens path for random-access reading. The file is
// memory-mapped where available; otherwise reads go through pread. Either
// way the returned view is a point-in-time length snapshot: bytes appended
// to the file after OpenMapped are not visible through it.
func OpenMapped(path string) (RandomAccess, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := fi.Size()
	if data, err := mapFile(f, size); err == nil {
		return &mappedFile{data: data, f: f}, nil
	}
	// Mapping unavailable (platform, empty file, exotic filesystem): fall
	// back to positioned reads against the open descriptor.
	return &preadFile{f: f, size: size}, nil
}

// mappedFile is a RandomAccess over an mmap'd region.
type mappedFile struct {
	data   []byte
	f      *os.File
	closed atomic.Bool
}

func (m *mappedFile) ReadAt(p []byte, off int64) (int, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("persistio: negative offset %d", off)
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *mappedFile) Size() int64 { return int64(len(m.data)) }

func (m *mappedFile) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	err := unmapFile(m.data)
	m.data = nil
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// preadFile is the pread fallback: positioned reads against an open file.
type preadFile struct {
	f      *os.File
	size   int64
	closed atomic.Bool
}

func (p *preadFile) ReadAt(b []byte, off int64) (int, error) {
	if p.closed.Load() {
		return 0, ErrClosed
	}
	if off >= p.size {
		return 0, io.EOF
	}
	// Clamp to the point-in-time length so a concurrently growing file
	// (journal appends) behaves exactly like the mapped variant.
	if max := p.size - off; int64(len(b)) > max {
		n, err := p.f.ReadAt(b[:max], off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return p.f.ReadAt(b, off)
}

func (p *preadFile) Size() int64 { return p.size }

func (p *preadFile) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	return p.f.Close()
}

// MemMapped is an in-memory RandomAccess over a byte slice — the unit-test
// and fuzz-target stand-in for a mapped file. The slice is shared, not
// copied: tests corrupt bytes in place to model on-disk rot between a
// shard's eviction and its re-fault.
type MemMapped struct {
	b      []byte
	closed atomic.Bool
}

// NewMemMapped returns a RandomAccess serving reads from b.
func NewMemMapped(b []byte) *MemMapped { return &MemMapped{b: b} }

func (m *MemMapped) ReadAt(p []byte, off int64) (int, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("persistio: negative offset %d", off)
	}
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *MemMapped) Size() int64 { return int64(len(m.b)) }

func (m *MemMapped) Close() error {
	m.closed.Store(true)
	return nil
}

// FaultMapped wraps a RandomAccess with injectable read failures, the
// random-access sibling of FaultFile: the crash/corruption suites use it
// to prove that an I/O error surfacing at shard fault-in poisons only that
// fault-in, not the rest of the resident index.
type FaultMapped struct {
	inner RandomAccess

	mu        sync.Mutex
	failNext  error // one-shot: next ReadAt fails
	failAll   error // sticky: every ReadAt fails
	readCalls atomic.Int64
}

// NewFaultMapped wraps inner.
func NewFaultMapped(inner RandomAccess) *FaultMapped { return &FaultMapped{inner: inner} }

// FailNextRead arms a one-shot failure: the next ReadAt returns err.
func (f *FaultMapped) FailNextRead(err error) {
	f.mu.Lock()
	f.failNext = err
	f.mu.Unlock()
}

// FailReads arms a sticky failure: every subsequent ReadAt returns err
// (nil disarms).
func (f *FaultMapped) FailReads(err error) {
	f.mu.Lock()
	f.failAll = err
	f.mu.Unlock()
}

// Reads returns the number of ReadAt calls that reached the wrapper
// (including injected failures) — how many segment fetches actually
// happened, for re-fault assertions.
func (f *FaultMapped) Reads() int64 { return f.readCalls.Load() }

func (f *FaultMapped) ReadAt(p []byte, off int64) (int, error) {
	f.readCalls.Add(1)
	f.mu.Lock()
	if err := f.failNext; err != nil {
		f.failNext = nil
		f.mu.Unlock()
		return 0, err
	}
	err := f.failAll
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *FaultMapped) Size() int64 { return f.inner.Size() }

func (f *FaultMapped) Close() error { return f.inner.Close() }
