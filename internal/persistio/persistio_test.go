package persistio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertNoStrays fails if the directory holds anything besides the named
// files — a leaked temp file is a durability bug (crash loops would fill
// the disk).
func assertNoStrays(t *testing.T, dir string, want ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, w := range want {
		allowed[w] = true
	}
	for _, e := range entries {
		if !allowed[e.Name()] {
			t.Errorf("stray file %q left in %s", e.Name(), dir)
		}
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")

	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}

	// Overwrite: the old content is replaced whole.
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second, longer content"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); string(got) != "second, longer content" {
		t.Fatalf("content = %q after overwrite", got)
	}

	// A failing write callback leaves the destination untouched and cleans
	// up the temp file.
	boom := errors.New("boom")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("torn gar"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := readFile(t, path); string(got) != "second, longer content" {
		t.Fatalf("failed write damaged destination: %q", got)
	}
	assertNoStrays(t, dir, "snap")
}

// TestAtomicWriteFileCrashSweep kills the save at every byte boundary of
// the payload: the destination must retain its previous contents for every
// crash point, and succeed exactly when the budget covers the payload.
func TestAtomicWriteFileCrashSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := os.WriteFile(path, []byte("good old snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	payload := []byte("replacement contents v2")

	for cut := int64(0); cut <= int64(len(payload)); cut++ {
		var ff *FaultFile
		err := AtomicWriteFileWrapped(path, func(f File) File {
			ff = NewFaultFile(f)
			ff.CrashAfterBytes(cut)
			return ff
		}, func(w io.Writer) error {
			// Write byte by byte so every boundary is a real fault point.
			for i := range payload {
				if _, err := w.Write(payload[i : i+1]); err != nil {
					return err
				}
			}
			return nil
		})
		if cut < int64(len(payload)) {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("cut=%d: err = %v, want ErrCrashed", cut, err)
			}
			if got := readFile(t, path); string(got) != "good old snapshot" {
				t.Fatalf("cut=%d: crash destroyed the previous snapshot: %q", cut, got)
			}
		} else {
			if err != nil {
				t.Fatalf("cut=%d (full budget): %v", cut, err)
			}
			if got := readFile(t, path); !bytes.Equal(got, payload) {
				t.Fatalf("cut=%d: content %q, want %q", cut, got, payload)
			}
		}
		assertNoStrays(t, dir, "snap")
	}
}

func TestMemFile(t *testing.T) {
	m := NewMemFile()
	if _, err := m.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(m, buf); err != nil || string(buf) != "world" {
		t.Fatalf("read %q, %v", buf, err)
	}
	if _, err := m.Read(buf); err != io.EOF {
		t.Fatalf("read at EOF: %v, want io.EOF", err)
	}
	if err := m.Truncate(5); err != nil || string(m.Bytes()) != "hello" {
		t.Fatalf("truncate: %q, %v", m.Bytes(), err)
	}
	// Sparse write past EOF zero-fills.
	if _, err := m.Seek(7, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if want := "hello\x00\x00x"; string(m.Bytes()) != want {
		t.Fatalf("sparse write: %q, want %q", m.Bytes(), want)
	}
	if _, err := m.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}

	cl := m.Clone()
	cl.Truncate(0)
	if m.Len() == 0 {
		t.Fatal("Clone shares storage with the original")
	}

	// AtomicRewrite success replaces content; failure keeps it.
	if err := m.AtomicRewrite(func(w io.Writer) error {
		_, err := w.Write([]byte("rewritten"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(m.Bytes()) != "rewritten" {
		t.Fatalf("after rewrite: %q", m.Bytes())
	}
	boom := errors.New("boom")
	if err := m.AtomicRewrite(func(w io.Writer) error {
		w.Write([]byte("torn"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if string(m.Bytes()) != "rewritten" {
		t.Fatalf("failed rewrite damaged contents: %q", m.Bytes())
	}
}

func TestFaultFileCrashModel(t *testing.T) {
	m := NewMemFile()
	ff := NewFaultFile(m)
	ff.CrashAfterBytes(3)
	n, err := ff.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("write = (%d, %v), want (3, ErrCrashed)", n, err)
	}
	if string(m.Bytes()) != "abc" {
		t.Fatalf("persisted %q, want the 3-byte prefix", m.Bytes())
	}
	if !ff.Crashed() || ff.Written() != 3 {
		t.Fatalf("Crashed=%v Written=%d", ff.Crashed(), ff.Written())
	}
	// Everything after the crash fails: the process is dead.
	if _, err := ff.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash write: %v", err)
	}
	if _, err := ff.Read(make([]byte, 1)); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash read: %v", err)
	}
	if _, err := ff.Seek(0, io.SeekStart); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash seek: %v", err)
	}
	if err := ff.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash sync: %v", err)
	}
	if err := ff.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash truncate: %v", err)
	}
}

func TestFaultFileOneShotFaults(t *testing.T) {
	m := NewMemFile()
	ff := NewFaultFile(m)

	ff.FailNextWrite(nil)
	if _, err := ff.Write([]byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write: %v", err)
	}
	if _, err := ff.Write([]byte("a")); err != nil {
		t.Fatalf("fault not one-shot: %v", err)
	}

	ff.ShortNextWrite()
	n, err := ff.Write([]byte("bbbb"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write = (%d, %v), want (2, ErrInjected)", n, err)
	}

	ff.FailNextSync(nil)
	if err := ff.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync: %v", err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatalf("sync fault not one-shot: %v", err)
	}
}

// TestFaultFileAtomicRewrite: a crash inside the rewrite callback aborts
// the swap — the previous contents survive, matching the real-file
// temp+rename semantics.
func TestFaultFileAtomicRewrite(t *testing.T) {
	m := NewMemFileBytes([]byte("previous contents"))
	ff := NewFaultFile(m)
	ff.CrashAfterBytes(4)
	err := ff.AtomicRewrite(func(w io.Writer) error {
		_, err := w.Write([]byte("new contents that will not fit"))
		return err
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if string(m.Bytes()) != "previous contents" {
		t.Fatalf("aborted rewrite damaged contents: %q", m.Bytes())
	}

	ff2 := NewFaultFile(NewMemFileBytes([]byte("old")))
	if err := ff2.AtomicRewrite(func(w io.Writer) error {
		_, err := w.Write([]byte("new"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(ff2.f.(*MemFile).Bytes()) != "new" {
		t.Fatal("fault-free rewrite did not apply")
	}
}

func TestPathFileAtomicRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := os.WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Path() != path {
		t.Fatalf("Path() = %q", f.Path())
	}
	if err := f.AtomicRewrite(func(w io.Writer) error {
		_, err := io.Copy(w, strings.NewReader("v2 rewritten"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// The handle follows the new inode: reads see the rewritten bytes.
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "v2 rewritten" {
		t.Fatalf("post-rewrite read through handle: %q, %v", got, err)
	}
	if got := readFile(t, path); string(got) != "v2 rewritten" {
		t.Fatalf("on disk: %q", got)
	}
	assertNoStrays(t, dir, "snap")
}

// TestSync covers the best-effort barrier helper.
func TestSync(t *testing.T) {
	if err := Sync(&bytes.Buffer{}); err != nil {
		t.Fatalf("Sync on a plain writer: %v", err)
	}
	ff := NewFaultFile(NewMemFile())
	ff.FailNextSync(nil)
	if err := Sync(ff); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync did not reach the File: %v", err)
	}
}
