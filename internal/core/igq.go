// Package core implements iGQ — the paper's contribution: a query-graph
// index layered on top of any filter-then-verify graph query processing
// method M, exploiting subgraph/supergraph relationships between new and
// previously executed queries to prune M's candidate set before the
// expensive subgraph isomorphism tests (paper §4), plus the utility-based
// index space management of §5.
//
// The three knowledge paths of Fig 6 are all implemented:
//
//   - the dataset index path: M.Filter produces CS(g);
//   - the subgraph path (Isub): cached queries G ⊇ g contribute their
//     answers — removed from CS(g) (formula 3) and added to the final
//     answer (formula 4);
//   - the supergraph path (Isuper): cached queries G ⊆ g restrict CS(g) to
//     the intersection of their answers (formula 5).
//
// The two optimal cases of §4.3 (identical query, and an empty-answer
// subgraph hit) short-circuit verification entirely, and §4.4's inverse
// wiring supports supergraph query processing with the same two indexes.
package core

import (
	"sync"
	"time"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/iso"
)

// Mode selects which query semantics the wrapped method M implements.
type Mode int

const (
	// SubgraphQueries: M answers "which dataset graphs contain g".
	SubgraphQueries Mode = iota
	// SupergraphQueries: M answers "which dataset graphs are contained in
	// g" (M.Verify(q, id) must test db[id] ⊆ q, e.g. contain.Index).
	SupergraphQueries
)

// ShortCircuit describes the §4.3 optimal cases.
type ShortCircuit int

const (
	// NoShortCircuit: the normal three-path pipeline ran.
	NoShortCircuit ShortCircuit = iota
	// IdenticalHit: the query is isomorphic to a cached query; its stored
	// answer was returned with zero dataset isomorphism tests.
	IdenticalHit
	// EmptyAnswerHit: a cached subquery (resp. superquery) with an empty
	// answer proves the new query's answer is empty.
	EmptyAnswerHit
)

// Options configures an iGQ instance. Zero values select the paper's
// defaults (C=500, W=100, path features of length ≤ 4).
type Options struct {
	// CacheSize is C, the maximum number of cached query graphs.
	CacheSize int
	// Window is W, the batch window size (W ≤ C; paper default 100).
	Window int
	// MaxPathLen is the feature length for Isub/Isuper (default 4).
	MaxPathLen int
	// Labels is the label-domain size L of the cost model; 0 derives it
	// from the dataset at construction.
	Labels int
	// Mode selects subgraph (default) or supergraph query processing.
	Mode Mode
	// Parallel runs the three filtering paths concurrently, as in the
	// paper's system description (Fig 6, step 1).
	Parallel bool
	// DisableSub / DisableSuper switch off one knowledge path (ablation).
	DisableSub   bool
	DisableSuper bool
	// Eviction selects the replacement policy (ablation of §5.1).
	Eviction EvictionPolicy
	// AsyncMaintenance enables the paper's §5.2 shadow-index scheme
	// verbatim: after a window flush the replacement decision is taken
	// immediately, but the new Isub/Isuper are built in the background
	// while incoming queries keep being served by the previous index
	// ("When the shadow indexing is over, Ishadow replaces I with a
	// pointer swap"). Off by default so experiment counters stay
	// deterministic; correctness holds either way, since any consistent
	// cache snapshot yields correct answers.
	AsyncMaintenance bool
}

// EvictionPolicy selects how flush picks victims.
type EvictionPolicy int

const (
	// UtilityEviction is the paper's policy: evict minimum U(g) = C(g)/M(g).
	UtilityEviction EvictionPolicy = iota
	// FIFOEviction evicts the oldest entries — the "traditional cache"
	// strawman the paper's §5.1 argues against; kept for ablation benches.
	FIFOEviction
	// PopularityEviction evicts the lowest hit-rate H(g)/M(g) entries —
	// popularity without the cost terms, isolating their contribution.
	PopularityEviction
)

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 500
	}
	if o.Window <= 0 {
		o.Window = 100
	}
	if o.Window > o.CacheSize {
		o.Window = o.CacheSize
	}
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = 4
	}
	return o
}

// Outcome reports one query's processing, with the counters the paper's
// experiments are built on.
type Outcome struct {
	Answer []int32 // sorted dataset graph ids

	BaseCandidates  int // |CS(g)| from M alone
	FinalCandidates int // candidates verified after iGQ pruning
	Verified        int // final candidates that passed verification
	DatasetIsoTests int // subgraph isomorphism tests against dataset graphs
	CacheIsoTests   int // tests against cached (small) query graphs
	SubHits         int // |Isub(g)| (verified)
	SuperHits       int // |Isuper(g)| (verified)
	Short           ShortCircuit

	FilterDur time.Duration // M.Filter time
	CacheDur  time.Duration // Isub+Isuper lookup & verification time
	VerifyDur time.Duration // dataset verification time
}

// IGQ wraps a built index.Method with the query-graph cache.
// Not safe for concurrent Query calls: queries mutate cache metadata, as in
// the paper's sequential query-stream model.
type IGQ struct {
	m   index.Method
	db  []*graph.Graph
	opt Options

	seq     int64 // queries processed
	nextID  int32
	entries []*entry
	byID    map[int32]*entry
	isub    *subIndex
	isuper  *ContainmentIndex
	window  []*entry
	flushes int

	// Interned-feature machinery: the dictionary is shared with the wrapped
	// method when it exposes one (index.DictProvider), so a query graph is
	// canonicalised exactly once for dataset filtering and cache lookup.
	// The scratch buffers are reused across queries (Query is sequential by
	// contract); shadow builds allocate their own.
	dict        *features.Dict
	methodDict  bool // dict is the method's: its filter understands our IDs
	featScratch *features.Scratch
	subScratch  *index.CountFilterScratch
	superScr    *ciScratch

	// shadow-build state (AsyncMaintenance): while a rebuild is in flight,
	// queries are served by the snapshot the current isub/isuper/byID
	// describe; the swap is applied at the next Query entry after the
	// builder goroutine delivers.
	shadow chan shadowResult
}

// shadowResult is the payload delivered by a background index build.
type shadowResult struct {
	entries []*entry
	byID    map[int32]*entry
	isub    *subIndex
	isuper  *ContainmentIndex
}

// New wraps method m (which must already be Built over db) with an iGQ
// query cache.
func New(m index.Method, db []*graph.Graph, opt Options) *IGQ {
	opt = opt.withDefaults()
	if opt.Labels == 0 {
		seen := map[graph.Label]struct{}{}
		for _, g := range db {
			for _, l := range g.LabelSet() {
				seen[l] = struct{}{}
			}
		}
		opt.Labels = len(seen)
	}
	q := &IGQ{
		m:    m,
		db:   db,
		opt:  opt,
		byID: make(map[int32]*entry),
	}
	if dp, ok := m.(index.DictProvider); ok {
		q.dict = dp.FeatureDict()
		q.methodDict = true
	} else {
		q.dict = features.NewDict()
	}
	q.featScratch = features.NewScratch()
	q.subScratch = &index.CountFilterScratch{}
	q.superScr = &ciScratch{feat: features.NewScratch(), matched: make(map[int32]int32)}
	q.rebuildIndexes()
	return q
}

// Method returns the wrapped method.
func (q *IGQ) Method() index.Method { return q.m }

// CacheLen returns the number of active cached queries (excluding the
// pending window).
func (q *IGQ) CacheLen() int { return len(q.entries) }

// WindowLen returns the number of queries pending in the batch window.
func (q *IGQ) WindowLen() int { return len(q.window) }

// Flushes returns how many window flushes (shadow rebuilds) have occurred.
func (q *IGQ) Flushes() int { return q.flushes }

// Queries returns the number of queries processed.
func (q *IGQ) Queries() int64 { return q.seq }

// CacheSize returns the configured capacity C.
func (q *IGQ) CacheSize() int { return q.opt.CacheSize }

// WindowSize returns the configured batch window W.
func (q *IGQ) WindowSize() int { return q.opt.Window }

// SizeBytes reports the iGQ space overhead: both cache-side indexes, the
// stored query graphs, their answer sets and metadata (paper Fig 18).
func (q *IGQ) SizeBytes() int {
	sz := q.isub.SizeBytes() + q.isuper.SizeBytes()
	for _, e := range q.entries {
		sz += e.g.SizeBytes() + 4*len(e.answer) + 64
	}
	for _, e := range q.window {
		sz += e.g.SizeBytes() + 4*len(e.answer) + 64
	}
	return sz
}

// subgraphTest is the cache-side isomorphism test (small graphs; VF2).
func subgraphTest(p, t *graph.Graph) bool { return iso.Subgraph(p, t) }

// Query processes one query through the full iGQ pipeline of Fig 6 and
// returns its outcome. The final answer is exactly what M alone would have
// produced (paper Theorems 1 and 2), with fewer verification tests.
func (q *IGQ) Query(g *graph.Graph) *Outcome {
	q.applyShadow(false) // §5.2 pointer swap, if a shadow build finished
	q.seq++
	out := &Outcome{}

	// One lookup-only enumeration serves the cache probe and (when the
	// method shares our dictionary) dataset filtering. The dictionary is
	// not grown here: features of g enter it at admission/flush time.
	qf := features.PathsID(g, features.PathOptions{MaxLen: q.opt.MaxPathLen}, q.dict, q.featScratch, false)
	qfp := graph.Fingerprint(g)

	// The count-based fast path is only sound when the method's index was
	// built over the same dictionary at the same feature length.
	countFilter, _ := q.m.(index.CountFilterer)
	if countFilter != nil && (!q.methodDict || countFilter.FeatureMaxPathLen() != q.opt.MaxPathLen) {
		countFilter = nil
	}

	var cs []int32
	var subHits, superHits []*entry
	var identical *entry

	lookup := func() {
		t0 := time.Now()
		subHits, superHits, identical = q.cacheLookup(g, qfp, qf, out)
		out.CacheDur = time.Since(t0)
	}
	filter := func() {
		t0 := time.Now()
		if countFilter != nil {
			cs = normalizeIDs(countFilter.FilterByFeatureCounts(qf))
		} else {
			cs = normalizeIDs(q.m.Filter(g))
		}
		out.FilterDur = time.Since(t0)
	}
	if q.opt.Parallel {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			filter()
		}()
		lookup()
		wg.Wait()
	} else {
		filter()
		lookup()
	}
	out.BaseCandidates = len(cs)

	// unionSide entries contribute answers directly (formulas 3–4);
	// intersectSide entries bound the candidate set (formula 5). §4.4: the
	// roles swap for supergraph query processing.
	unionSide, intersectSide := subHits, superHits
	if q.opt.Mode == SupergraphQueries {
		unionSide, intersectSide = superHits, subHits
	}
	out.SubHits, out.SuperHits = len(subHits), len(superHits)

	// §4.3 optimal case 1: identical query (recognised during lookup).
	if identical != nil {
		out.SubHits, out.SuperHits = 1, 1 // an identical query is both
		out.Short = IdenticalHit
		if len(identical.answer) > 0 {
			out.Answer = append([]int32(nil), identical.answer...)
		}
		identical.creditHit(g.NumVertices(), q.sizesOf(cs), q.opt.Labels)
		return out
	}

	// §4.3 optimal case 2: an empty-answer hit on the intersect side
	// empties the candidate set outright.
	for _, e := range intersectSide {
		if len(e.answer) == 0 {
			out.Short = EmptyAnswerHit
			out.Answer = nil
			e.creditHit(g.NumVertices(), q.sizesOf(cs), q.opt.Labels)
			q.admit(g, qfp, nil)
			return out
		}
	}

	// Formula (3): remove union-side answers from CS.
	pruned := cs
	for _, e := range unionSide {
		removed := index.IntersectSorted(cs, e.answer)
		e.creditHit(g.NumVertices(), q.sizesOf(removed), q.opt.Labels)
		pruned = index.SubtractSorted(pruned, e.answer)
	}
	// Formula (5): intersect with intersect-side answers.
	for _, e := range intersectSide {
		removed := index.SubtractSorted(pruned, e.answer)
		e.creditHit(g.NumVertices(), q.sizesOf(removed), q.opt.Labels)
		pruned = index.IntersectSorted(pruned, e.answer)
	}
	out.FinalCandidates = len(pruned)

	// Verification stage.
	t0 := time.Now()
	var verified []int32
	for _, id := range pruned {
		out.DatasetIsoTests++
		if q.m.Verify(g, id) {
			verified = append(verified, id)
		}
	}
	out.Verified = len(verified)
	out.VerifyDur = time.Since(t0)

	// Formula (4): add union-side answers back.
	answer := verified
	for _, e := range unionSide {
		answer = index.UnionSorted(answer, e.answer)
	}
	if len(answer) == 0 {
		answer = nil // normalise: empty answers are nil, like index.Answer
	}
	out.Answer = answer

	q.admit(g, qfp, answer)
	return out
}

// cacheLookup finds and verifies the Isub and Isuper hits for query g.
//
// Fast path (§4.3's "easily recognized" identical case): candidates with
// matching vertex/edge counts and structural fingerprint are tested first;
// a confirmed identical query makes every other cache probe moot. Same-size
// candidates whose fingerprints differ cannot be sub- or supergraph hits at
// all (equal sizes + containment ⇒ isomorphism ⇒ equal fingerprints), so
// the regular loops skip them without testing.
func (q *IGQ) cacheLookup(g *graph.Graph, qfp uint64, qf features.IDSet, out *Outcome) (subHits, superHits []*entry, identical *entry) {
	var subCands, superCands []int32
	if !q.opt.DisableSub {
		subCands = q.isub.candidates(qf, q.subScratch)
	}
	if !q.opt.DisableSuper {
		superCands = q.isuper.candidatesFromIDs(qf, q.superScr)
	}
	nv, ne := g.NumVertices(), g.NumEdges()
	sameSize := func(e *entry) bool {
		return e.g.NumVertices() == nv && e.g.NumEdges() == ne
	}
	for _, id := range index.UnionSorted(subCands, superCands) {
		e := q.byID[id]
		if sameSize(e) && e.fp == qfp {
			out.CacheIsoTests++
			if subgraphTest(g, e.g) {
				return nil, nil, e
			}
		}
	}
	// union-side entries with empty answers neither prune nor contribute
	// answers, so their verification is skipped; intersect-side empties are
	// maximally useful (the §4.3 empty-answer short-circuit) and are kept.
	subIsUnion := q.opt.Mode == SubgraphQueries
	for _, id := range subCands {
		e := q.byID[id]
		if sameSize(e) || (subIsUnion && len(e.answer) == 0) {
			continue
		}
		out.CacheIsoTests++
		if subgraphTest(g, e.g) {
			subHits = append(subHits, e)
		}
	}
	for _, id := range superCands {
		e := q.byID[id]
		if sameSize(e) || (!subIsUnion && len(e.answer) == 0) {
			continue
		}
		out.CacheIsoTests++
		if subgraphTest(e.g, g) {
			superHits = append(superHits, e)
		}
	}
	return subHits, superHits, nil
}

// sizesOf maps dataset ids to vertex counts (cost-model input).
func (q *IGQ) sizesOf(ids []int32) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = q.db[id].NumVertices()
	}
	return out
}

// admit stores the executed query and its answer in the batch window
// (Itemp), flushing when W queries have accumulated. Exact duplicates of a
// window member are skipped (an identical *cached* query would already have
// short-circuited).
func (q *IGQ) admit(g *graph.Graph, fp uint64, answer []int32) {
	for _, e := range q.window {
		if e.fp == fp && iso.Isomorphic(e.g, g) {
			return
		}
	}
	e := newEntry(q.nextID, g.Clone(), answer, q.seq)
	q.nextID++
	q.window = append(q.window, e)
	if len(q.window) >= q.opt.Window {
		q.flush()
	}
}

// flush applies the replacement policy (§5.1) and rebuilds the cache-side
// indexes (§5.2's shadow index). Synchronous by default; with
// AsyncMaintenance the expensive index build runs in the background and
// queries keep being served by the previous index until the swap.
func (q *IGQ) flush() {
	q.applyShadow(true) // at most one shadow build in flight
	q.flushes++
	newEntries, newByID := q.planFlush()
	q.window = nil
	if q.opt.AsyncMaintenance {
		ch := make(chan shadowResult, 1)
		q.shadow = ch
		maxLen := q.opt.MaxPathLen
		dict := q.dict
		go func() {
			isub, isuper := buildIndexes(dict, newEntries, maxLen)
			ch <- shadowResult{entries: newEntries, byID: newByID, isub: isub, isuper: isuper}
		}()
		return
	}
	q.entries, q.byID = newEntries, newByID
	q.isub, q.isuper = buildIndexes(q.dict, newEntries, q.opt.MaxPathLen)
}

// planFlush computes the post-flush entry set without touching the
// currently served snapshot (fresh slice and map, shared entry pointers so
// metadata credited during an async build carries over).
func (q *IGQ) planFlush() ([]*entry, map[int32]*entry) {
	evict := map[int32]struct{}{}
	if overflow := len(q.entries) + len(q.window) - q.opt.CacheSize; overflow > 0 {
		order := q.victimOrder()
		if overflow > len(order) {
			overflow = len(order)
		}
		for _, e := range order[:overflow] {
			evict[e.id] = struct{}{}
		}
	}
	newEntries := make([]*entry, 0, len(q.entries)+len(q.window))
	newByID := make(map[int32]*entry, len(q.entries)+len(q.window))
	for _, e := range q.entries {
		if _, gone := evict[e.id]; !gone {
			newEntries = append(newEntries, e)
			newByID[e.id] = e
		}
	}
	for _, e := range q.window {
		newEntries = append(newEntries, e)
		newByID[e.id] = e
	}
	return newEntries, newByID
}

// applyShadow installs a completed background build. With wait=true it
// blocks for an in-flight build (used before a second flush or a Save);
// with wait=false it polls (used at Query entry: "Ishadow replaces I with a
// pointer swap").
func (q *IGQ) applyShadow(wait bool) {
	if q.shadow == nil {
		return
	}
	if wait {
		q.installShadow(<-q.shadow)
		return
	}
	select {
	case r := <-q.shadow:
		q.installShadow(r)
	default:
	}
}

func (q *IGQ) installShadow(r shadowResult) {
	q.entries, q.byID = r.entries, r.byID
	q.isub, q.isuper = r.isub, r.isuper
	q.shadow = nil
}

// normalizeIDs enforces the sorted-unique candidate invariant the pruning
// set operations rely on. Well-behaved methods already comply (verified
// O(n)); a sloppy method costs one sort instead of silent corruption.
func normalizeIDs(ids []int32) []int32 {
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			sorted = false
			break
		}
	}
	if sorted {
		return ids
	}
	ids = sortIDs(append([]int32(nil), ids...))
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// victimOrder ranks entries for eviction (worst first) under the configured
// policy.
func (q *IGQ) victimOrder() []*entry {
	switch q.opt.Eviction {
	case FIFOEviction:
		out := append([]*entry(nil), q.entries...)
		sortEntriesBy(out, func(a, b *entry) bool {
			if a.insertedAt != b.insertedAt {
				return a.insertedAt < b.insertedAt
			}
			return a.id < b.id
		})
		return out
	case PopularityEviction:
		seq := q.seq
		rate := func(e *entry) float64 {
			m := seq - e.insertedAt
			if m < 1 {
				m = 1
			}
			return float64(e.hits) / float64(m)
		}
		out := append([]*entry(nil), q.entries...)
		sortEntriesBy(out, func(a, b *entry) bool {
			ra, rb := rate(a), rate(b)
			if ra != rb {
				return ra < rb
			}
			return a.id < b.id
		})
		return out
	default:
		return evictionOrder(q.entries, q.seq)
	}
}

// rebuildIndexes reconstructs Isub and Isuper over the active entries.
func (q *IGQ) rebuildIndexes() {
	q.isub, q.isuper = buildIndexes(q.dict, q.entries, q.opt.MaxPathLen)
}

// buildIndexes constructs fresh Isub/Isuper over an entry set; one
// (interning) feature enumeration per cached graph feeds both indexes.
// Pure apart from dictionary growth — the dictionary serialises interning
// against concurrent lookups, so this can run as the §5.2 background shadow
// build while queries keep probing the previous indexes.
func buildIndexes(dict *features.Dict, entries []*entry, maxPathLen int) (*subIndex, *ContainmentIndex) {
	isub := newSubIndex(dict)
	ci := NewContainmentIndexWithDict(maxPathLen, dict)
	scratch := features.NewScratch()
	opt := features.PathOptions{MaxLen: maxPathLen}
	for _, e := range entries {
		qf := features.PathsID(e.g, opt, dict, scratch, true)
		isub.add(e.id, qf)
		ci.AddFromIDCounts(e.id, qf)
	}
	isub.finish()
	return isub, ci
}
