// Package core implements iGQ — the paper's contribution: a query-graph
// index layered on top of any filter-then-verify graph query processing
// method M, exploiting subgraph/supergraph relationships between new and
// previously executed queries to prune M's candidate set before the
// expensive subgraph isomorphism tests (paper §4), plus the utility-based
// index space management of §5.
//
// The three knowledge paths of Fig 6 are all implemented:
//
//   - the dataset index path: M.Filter produces CS(g);
//   - the subgraph path (Isub): cached queries G ⊇ g contribute their
//     answers — removed from CS(g) (formula 3) and added to the final
//     answer (formula 4);
//   - the supergraph path (Isuper): cached queries G ⊆ g restrict CS(g) to
//     the intersection of their answers (formula 5).
//
// The two optimal cases of §4.3 (identical query, and an empty-answer
// subgraph hit) short-circuit verification entirely, and §4.4's inverse
// wiring supports supergraph query processing with the same two indexes.
//
// # Concurrency model
//
// Query, QueryCtx and QueryNoAdmit are safe for concurrent use from any
// number of goroutines. The hot path is lookup-only: each call loads one
// immutable cache snapshot (entries, Isub, Isuper) via an atomic pointer
// and runs filtering, cache probes and verification against it without
// locks. Per-query credit (§5.1 metadata) and window admission are
// accumulated in a per-call buffer and applied to the shared metadata under
// a short mutex at the end of the call; window flushes — which rebuild the
// cache-side indexes and install a fresh snapshot with a pointer swap — are
// the only full serialization points (and with AsyncMaintenance even the
// rebuild happens off the caller's goroutine, exactly the paper's §5.2
// shadow index). Any consistent snapshot yields correct answers (Theorems
// 1 and 2), so readers never wait for writers. See README.md.
package core

import (
	"context"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/iso"
	"repro/internal/trie"
)

// Mode selects which query semantics the wrapped method M implements.
type Mode int

const (
	// SubgraphQueries: M answers "which dataset graphs contain g".
	SubgraphQueries Mode = iota
	// SupergraphQueries: M answers "which dataset graphs are contained in
	// g" (M.Verify(q, id) must test db[id] ⊆ q, e.g. contain.Index).
	SupergraphQueries
)

// ShortCircuit describes the §4.3 optimal cases.
type ShortCircuit int

const (
	// NoShortCircuit: the normal three-path pipeline ran.
	NoShortCircuit ShortCircuit = iota
	// IdenticalHit: the query is isomorphic to a cached query; its stored
	// answer was returned with zero dataset isomorphism tests.
	IdenticalHit
	// EmptyAnswerHit: a cached subquery (resp. superquery) with an empty
	// answer proves the new query's answer is empty.
	EmptyAnswerHit
)

// Options configures an iGQ instance. Zero values select the paper's
// defaults (C=500, W=100, path features of length ≤ 4).
type Options struct {
	// CacheSize is C, the maximum number of cached query graphs.
	CacheSize int
	// Window is W, the batch window size (W ≤ C; paper default 100).
	Window int
	// MaxPathLen is the feature length for Isub/Isuper (default 4).
	MaxPathLen int
	// Labels is the label-domain size L of the cost model; 0 derives it
	// from the dataset at construction.
	Labels int
	// Mode selects subgraph (default) or supergraph query processing.
	Mode Mode
	// Parallel runs the three filtering paths concurrently, as in the
	// paper's system description (Fig 6, step 1).
	Parallel bool
	// DisableSub / DisableSuper switch off one knowledge path (ablation).
	DisableSub   bool
	DisableSuper bool
	// Eviction selects the replacement policy (ablation of §5.1).
	Eviction EvictionPolicy
	// AsyncMaintenance enables the paper's §5.2 shadow-index scheme
	// verbatim: after a window flush the replacement decision is taken
	// immediately, but the new Isub/Isuper are built in the background
	// while incoming queries keep being served by the previous index
	// ("When the shadow indexing is over, Ishadow replaces I with a
	// pointer swap"). Off by default so experiment counters stay
	// deterministic; correctness holds either way, since any consistent
	// cache snapshot yields correct answers.
	AsyncMaintenance bool
	// Shards is the postings shard count of the cache-side Isub/Isuper
	// tries (rounded up to a power of two; 0 = trie.DefaultShards()).
	Shards int
	// BuildWorkers is the parallelism of cache-side index (re)builds —
	// window flushes and §5.2 shadow builds (0 = GOMAXPROCS). Any worker
	// count yields the same indexes and the same answers.
	BuildWorkers int
	// PanicHandler, when set, is invoked with the recovered value and the
	// goroutine stack if an asynchronous shadow-index build panics. The
	// panic is contained: the previous snapshot keeps serving and the next
	// flush proceeds normally (the flushed window's entries are lost, not
	// corrupted — a cache is knowledge, not truth). A nil handler lets the
	// panic drop the shadow build silently with the same containment.
	PanicHandler func(recovered any, stack []byte)
}

// EvictionPolicy selects how flush picks victims.
type EvictionPolicy int

const (
	// UtilityEviction is the paper's policy: evict minimum U(g) = C(g)/M(g).
	UtilityEviction EvictionPolicy = iota
	// FIFOEviction evicts the oldest entries — the "traditional cache"
	// strawman the paper's §5.1 argues against; kept for ablation benches.
	FIFOEviction
	// PopularityEviction evicts the lowest hit-rate H(g)/M(g) entries —
	// popularity without the cost terms, isolating their contribution.
	PopularityEviction
)

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 500
	}
	if o.Window <= 0 {
		o.Window = 100
	}
	if o.Window > o.CacheSize {
		o.Window = o.CacheSize
	}
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = 4
	}
	if o.BuildWorkers <= 0 {
		o.BuildWorkers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Outcome reports one query's processing, with the counters the paper's
// experiments are built on.
type Outcome struct {
	Answer []int32 // sorted dataset graph ids

	// Dataset is the dataset generation Answer indexes into — under live
	// mutation (DatasetAppended/DatasetRemoved) callers must materialise
	// answers against this exact slice, not whatever generation is current
	// by the time they look.
	Dataset []*graph.Graph

	BaseCandidates  int // |CS(g)| from M alone
	FinalCandidates int // candidates verified after iGQ pruning
	Verified        int // final candidates that passed verification
	DatasetIsoTests int // subgraph isomorphism tests against dataset graphs
	CacheIsoTests   int // tests against cached (small) query graphs
	SubHits         int // |Isub(g)| (verified)
	SuperHits       int // |Isuper(g)| (verified)
	Short           ShortCircuit

	FilterDur time.Duration // M.Filter time
	CacheDur  time.Duration // Isub+Isuper lookup & verification time
	VerifyDur time.Duration // dataset verification time
}

// snapshot is one immutable generation of the cache's read state: the
// dataset and method generation being answered over, the committed
// entries, the id lookup table, and the two cache-side indexes built over
// exactly those entries. A snapshot is never mutated after it is
// installed; flushes build a new one and swap the pointer (the paper's
// "Ishadow replaces I with a pointer swap"), and dataset mutations
// (DatasetAppended/DatasetRemoved) install a generation whose db, m and
// patched entries change *together* — a query loads one snapshot and sees
// a fully consistent (dataset, index, cache) triple. Entry *metadata*
// (hits, logCost) is the one mutable element reachable from a snapshot; it
// is written only under IGQ.mu and read only under IGQ.mu (eviction,
// Save), never on the lock-free answer path.
type snapshot struct {
	db      []*graph.Graph
	m       index.Method
	dbGen   int64 // dataset generation: bumped by each mutation, kept by flushes
	entries []*entry
	byID    map[int32]*entry
	isub    *subIndex
	isuper  *ContainmentIndex
}

// IGQ wraps a built index.Method with the query-graph cache. Safe for
// concurrent Query/QueryCtx/QueryNoAdmit calls; see the package comment for
// the read/write split.
type IGQ struct {
	m   index.Method
	db  []*graph.Graph
	opt Options

	seq  atomic.Int64             // queries processed
	snap atomic.Pointer[snapshot] // lock-free read state

	// mu guards the write side: entry metadata, the admission window,
	// flush planning, shadow bookkeeping and the id allocator.
	mu         sync.Mutex
	nextID     int32
	window     []*entry
	flushes    int
	shadowDone chan struct{} // non-nil while a §5.2 background build is in flight

	// Interned-feature machinery: the dictionary is shared with the wrapped
	// method when it exposes one (index.DictProvider), so a query graph is
	// canonicalised exactly once for dataset filtering and cache lookup.
	dict       *features.Dict
	methodDict bool // dict is the method's: its filter understands our IDs

	// scratches is a bounded free list of per-call buffers (feature
	// enumeration, count-filter state, Algorithm 2 state, pending credits):
	// each in-flight query owns one exclusively, and at steady state the
	// list holds one warm scratch per degree of actual concurrency. A plain
	// free list rather than a sync.Pool because pools are emptied by the GC,
	// and a cold scratch re-grows its maps and buffers for thousands of
	// queries before reaching steady state again.
	scratchMu sync.Mutex
	scratches []*queryScratch
}

// queryScratch is the reusable per-call state of one Query.
type queryScratch struct {
	feat    *features.Scratch
	sub     *index.CountFilterScratch
	super   *ciScratch
	credits []pendingCredit
}

// pendingCredit is one entry's deferred §5.1 metadata update: computed
// lock-free during the query, applied under IGQ.mu at commit.
type pendingCredit struct {
	e       *entry
	removed int64   // candidates this hit pruned
	logCost float64 // log-sum-exp of the alleviated test costs (-Inf if none)
}

// New wraps method m (which must already be Built over db) with an iGQ
// query cache.
func New(m index.Method, db []*graph.Graph, opt Options) *IGQ {
	opt = opt.withDefaults()
	if opt.Labels == 0 {
		seen := map[graph.Label]struct{}{}
		for _, g := range db {
			for _, l := range g.LabelSet() {
				seen[l] = struct{}{}
			}
		}
		opt.Labels = len(seen)
	}
	q := &IGQ{
		m:   m,
		db:  db,
		opt: opt,
	}
	if dp, ok := m.(index.DictProvider); ok {
		q.dict = dp.FeatureDict()
		q.methodDict = true
	} else {
		q.dict = features.NewDict()
	}
	q.installEntries(nil, m, db)
	return q
}

// scratchKeep bounds the free list: enough for heavily parallel serving,
// small enough that an idle IGQ pins only a few warm scratches.
const scratchKeep = 32

// getScratch hands out an exclusive per-call scratch, reusing a warm one
// when available.
func (q *IGQ) getScratch() *queryScratch {
	q.scratchMu.Lock()
	if n := len(q.scratches); n > 0 {
		sc := q.scratches[n-1]
		q.scratches[n-1] = nil
		q.scratches = q.scratches[:n-1]
		q.scratchMu.Unlock()
		return sc
	}
	q.scratchMu.Unlock()
	return &queryScratch{
		feat:  features.NewScratch(),
		sub:   &index.CountFilterScratch{},
		super: &ciScratch{feat: features.NewScratch(), matched: make(map[int32]int32)},
	}
}

// putScratch returns a scratch to the free list (dropped if full). The
// credit buffer is cleared so an idle scratch does not pin cache entries
// (and their cloned graphs and answer sets) past eviction.
func (q *IGQ) putScratch(sc *queryScratch) {
	for i := range sc.credits {
		sc.credits[i].e = nil
	}
	sc.credits = sc.credits[:0]
	q.scratchMu.Lock()
	if len(q.scratches) < scratchKeep {
		q.scratches = append(q.scratches, sc)
	}
	q.scratchMu.Unlock()
}

// Method returns the wrapped method of the current snapshot generation
// (dataset mutations install new method generations).
func (q *IGQ) Method() index.Method { return q.snap.Load().m }

// CacheLen returns the number of active cached queries (excluding the
// pending window).
func (q *IGQ) CacheLen() int { return len(q.snap.Load().entries) }

// WindowLen returns the number of queries pending in the batch window.
func (q *IGQ) WindowLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.window)
}

// Flushes returns how many window flushes (shadow rebuilds) have occurred.
func (q *IGQ) Flushes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.flushes
}

// Queries returns the number of queries processed.
func (q *IGQ) Queries() int64 { return q.seq.Load() }

// CacheSize returns the configured capacity C.
func (q *IGQ) CacheSize() int { return q.opt.CacheSize }

// WindowSize returns the configured batch window W.
func (q *IGQ) WindowSize() int { return q.opt.Window }

// SizeBytes reports the iGQ space overhead: both cache-side indexes, the
// stored query graphs, their answer sets and metadata (paper Fig 18). The
// feature dictionary is counted only when iGQ owns a private one — when the
// wrapped method shares its dictionary (index.DictProvider), the method's
// SizeBytes already accounts for it.
func (q *IGQ) SizeBytes() int {
	snap := q.snap.Load()
	sz := snap.isub.SizeBytes() + snap.isuper.SizeBytes()
	if !q.methodDict {
		sz += q.dict.SizeBytes()
	}
	for _, e := range snap.entries {
		sz += e.g.SizeBytes() + 4*len(e.answer) + 64
	}
	q.mu.Lock()
	for _, e := range q.window {
		sz += e.g.SizeBytes() + 4*len(e.answer) + 64
	}
	q.mu.Unlock()
	return sz
}

// subgraphTest is the cache-side isomorphism test (small graphs; VF2).
func subgraphTest(p, t *graph.Graph) bool { return iso.Subgraph(p, t) }

// Query processes one query through the full iGQ pipeline of Fig 6 and
// returns its outcome. The final answer is exactly what M alone would have
// produced (paper Theorems 1 and 2), with fewer verification tests.
// Equivalent to QueryCtx with a background context (which never errors).
func (q *IGQ) Query(g *graph.Graph) *Outcome {
	out, _ := q.run(context.Background(), g, true)
	return out
}

// QueryCtx is Query with cooperative cancellation: ctx is checked on entry
// and inside the candidate-verification loop (the dominant cost). A
// cancelled query returns ctx's error and leaves no trace in the cache — no
// credit, no admission. Safe for concurrent use.
func (q *IGQ) QueryCtx(ctx context.Context, g *graph.Graph) (*Outcome, error) {
	return q.run(ctx, g, true)
}

// QueryNoAdmit is QueryCtx for read-mostly serving: the query benefits from
// all cached knowledge and still credits the entries that pruned for it,
// but is not admitted to the window — so it can never trigger a flush.
func (q *IGQ) QueryNoAdmit(ctx context.Context, g *graph.Graph) (*Outcome, error) {
	return q.run(ctx, g, false)
}

func (q *IGQ) run(ctx context.Context, g *graph.Graph, admit bool) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap := q.snap.Load()
	q.seq.Add(1)
	out := &Outcome{Dataset: snap.db}
	sc := q.getScratch()
	defer q.putScratch(sc)
	sc.credits = sc.credits[:0]

	// One lookup-only enumeration serves the cache probe and (when the
	// method shares our dictionary) dataset filtering. The dictionary is
	// not grown here: features of g enter it at admission/flush time.
	qf := features.PathsID(g, features.PathOptions{MaxLen: q.opt.MaxPathLen}, q.dict, sc.feat, false)
	qfp := graph.Fingerprint(g)

	// The count-based fast path is only sound when the method's index was
	// built over the same dictionary at the same feature length.
	countFilter, _ := snap.m.(index.CountFilterer)
	if countFilter != nil && (!q.methodDict || countFilter.FeatureMaxPathLen() != q.opt.MaxPathLen) {
		countFilter = nil
	}

	var cs []int32
	var subHits, superHits []*entry
	var identical *entry

	lookup := func() {
		t0 := time.Now()
		subHits, superHits, identical = q.cacheLookup(snap, g, qfp, qf, sc, out)
		out.CacheDur = time.Since(t0)
	}
	filter := func() {
		t0 := time.Now()
		if countFilter != nil {
			cs = normalizeIDs(countFilter.FilterByFeatureCounts(qf))
		} else {
			cs = normalizeIDs(snap.m.Filter(g))
		}
		out.FilterDur = time.Since(t0)
	}
	if q.opt.Parallel {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			filter()
		}()
		lookup()
		wg.Wait()
	} else {
		filter()
		lookup()
	}
	out.BaseCandidates = len(cs)

	// unionSide entries contribute answers directly (formulas 3–4);
	// intersectSide entries bound the candidate set (formula 5). §4.4: the
	// roles swap for supergraph query processing.
	unionSide, intersectSide := subHits, superHits
	if q.opt.Mode == SupergraphQueries {
		unionSide, intersectSide = superHits, subHits
	}
	out.SubHits, out.SuperHits = len(subHits), len(superHits)

	// §4.3 optimal case 1: identical query (recognised during lookup).
	if identical != nil {
		out.SubHits, out.SuperHits = 1, 1 // an identical query is both
		out.Short = IdenticalHit
		if len(identical.answer) > 0 {
			out.Answer = append([]int32(nil), identical.answer...)
		}
		q.pendCredit(sc, snap.db, identical, g.NumVertices(), cs)
		q.commit(sc, snap.dbGen, nil, 0, nil, false)
		return out, nil
	}

	// §4.3 optimal case 2: an empty-answer hit on the intersect side
	// empties the candidate set outright.
	for _, e := range intersectSide {
		if len(e.answer) == 0 {
			out.Short = EmptyAnswerHit
			out.Answer = nil
			q.pendCredit(sc, snap.db, e, g.NumVertices(), cs)
			q.commit(sc, snap.dbGen, g, qfp, nil, admit)
			return out, nil
		}
	}

	// Formula (3): remove union-side answers from CS.
	pruned := cs
	for _, e := range unionSide {
		removed := index.IntersectSorted(cs, e.answer)
		q.pendCredit(sc, snap.db, e, g.NumVertices(), removed)
		pruned = index.SubtractSorted(pruned, e.answer)
	}
	// Formula (5): intersect with intersect-side answers.
	for _, e := range intersectSide {
		removed := index.SubtractSorted(pruned, e.answer)
		q.pendCredit(sc, snap.db, e, g.NumVertices(), removed)
		pruned = index.IntersectSorted(pruned, e.answer)
	}
	out.FinalCandidates = len(pruned)

	// Verification stage: the dominant cost, and therefore where
	// cancellation is checked. A cancelled query commits nothing.
	t0 := time.Now()
	var verified []int32
	for _, id := range pruned {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out.DatasetIsoTests++
		if snap.m.Verify(g, id) {
			verified = append(verified, id)
		}
	}
	out.Verified = len(verified)
	out.VerifyDur = time.Since(t0)

	// Formula (4): add union-side answers back.
	answer := verified
	for _, e := range unionSide {
		answer = index.UnionSorted(answer, e.answer)
	}
	if len(answer) == 0 {
		answer = nil // normalise: empty answers are nil, like index.Answer
	}
	out.Answer = answer

	q.commit(sc, snap.dbGen, g, qfp, answer, admit)
	return out, nil
}

// cacheLookup finds and verifies the Isub and Isuper hits for query g
// against one snapshot.
//
// Fast path (§4.3's "easily recognized" identical case): candidates with
// matching vertex/edge counts and structural fingerprint are tested first;
// a confirmed identical query makes every other cache probe moot. Same-size
// candidates whose fingerprints differ cannot be sub- or supergraph hits at
// all (equal sizes + containment ⇒ isomorphism ⇒ equal fingerprints), so
// the regular loops skip them without testing.
func (q *IGQ) cacheLookup(snap *snapshot, g *graph.Graph, qfp uint64, qf features.IDSet, sc *queryScratch, out *Outcome) (subHits, superHits []*entry, identical *entry) {
	var subCands, superCands []int32
	if !q.opt.DisableSub {
		subCands = snap.isub.candidates(qf, sc.sub)
	}
	if !q.opt.DisableSuper {
		superCands = snap.isuper.candidatesFromIDs(qf, sc.super)
	}
	nv, ne := g.NumVertices(), g.NumEdges()
	sameSize := func(e *entry) bool {
		return e.g.NumVertices() == nv && e.g.NumEdges() == ne
	}
	for _, id := range index.UnionSorted(subCands, superCands) {
		e := snap.byID[id]
		if sameSize(e) && e.fp == qfp {
			out.CacheIsoTests++
			if subgraphTest(g, e.g) {
				return nil, nil, e
			}
		}
	}
	// union-side entries with empty answers neither prune nor contribute
	// answers, so their verification is skipped; intersect-side empties are
	// maximally useful (the §4.3 empty-answer short-circuit) and are kept.
	subIsUnion := q.opt.Mode == SubgraphQueries
	for _, id := range subCands {
		e := snap.byID[id]
		if sameSize(e) || (subIsUnion && len(e.answer) == 0) {
			continue
		}
		out.CacheIsoTests++
		if subgraphTest(g, e.g) {
			subHits = append(subHits, e)
		}
	}
	for _, id := range superCands {
		e := snap.byID[id]
		if sameSize(e) || (!subIsUnion && len(e.answer) == 0) {
			continue
		}
		out.CacheIsoTests++
		if subgraphTest(e.g, g) {
			superHits = append(superHits, e)
		}
	}
	return subHits, superHits, nil
}

// pendCredit buffers one entry's hit credit: the pruned candidates' cost
// contribution is folded into a single log-sum-exp delta here, lock-free,
// so the later application under IGQ.mu is O(1) per credited entry.
func (q *IGQ) pendCredit(sc *queryScratch, db []*graph.Graph, e *entry, queryNodes int, prunedIDs []int32) {
	delta := math.Inf(-1)
	for _, id := range prunedIDs {
		delta = LogSumExp(delta, LogIsoCost(queryNodes, db[id].NumVertices(), q.opt.Labels))
	}
	sc.credits = append(sc.credits, pendingCredit{e: e, removed: int64(len(prunedIDs)), logCost: delta})
}

// commit applies one query's buffered writes. The §5.1 credits fold into
// the per-entry atomic credit cells lock-free — a pure cache hit never
// touches the metadata mutex at all, so the commit path scales with the
// number of cores. Only admission (a structural write: window append,
// possible flush) still takes q.mu.
//
// dbGen is the dataset generation the query ran against. If a dataset
// mutation committed while the query was in flight, its answer references
// the *old* generation's positions and must not be admitted — admitting it
// would plant stale knowledge the mutation's cache patch never saw. The
// credits still apply where their entries survive (metadata heuristics,
// not answers); credits against superseded entry clones are simply lost.
func (q *IGQ) commit(sc *queryScratch, dbGen int64, g *graph.Graph, qfp uint64, answer []int32, admit bool) {
	for _, c := range sc.credits {
		c.e.applyCredit(c.removed, c.logCost)
	}
	if !admit {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.snap.Load().dbGen == dbGen {
		q.admitLocked(g, qfp, answer)
	}
}

// admitLocked stores the executed query and its answer in the batch window
// (Itemp), flushing when W queries have accumulated. Exact duplicates of a
// window member or of a committed entry are skipped (an identical *cached*
// query normally short-circuits before admission, but two concurrent first
// sightings of the same query both miss the pre-admission snapshot; the
// duplicate is caught here, under the lock — best-effort while an async
// shadow build is in flight, since its entries are in neither set yet, and
// answer-correctness never depends on dedup). Caller holds q.mu.
func (q *IGQ) admitLocked(g *graph.Graph, fp uint64, answer []int32) {
	for _, e := range q.window {
		if e.fp == fp && iso.Isomorphic(e.g, g) {
			return
		}
	}
	for _, e := range q.snap.Load().entries {
		if e.fp == fp && iso.Isomorphic(e.g, g) {
			return
		}
	}
	e := newEntry(q.nextID, g.Clone(), answer, q.seq.Load())
	q.nextID++
	q.window = append(q.window, e)
	if len(q.window) >= q.opt.Window {
		q.flushLocked()
	}
}

// flushLocked applies the replacement policy (§5.1) and rebuilds the
// cache-side indexes (§5.2's shadow index), installing the result as a new
// snapshot. Synchronous by default — the flush is the pipeline's one full
// serialization point; with AsyncMaintenance the expensive index build runs
// in the background and queries keep being served by the previous snapshot
// until the builder swaps the pointer. Caller holds q.mu.
func (q *IGQ) flushLocked() {
	q.waitShadowLocked() // at most one shadow build in flight
	if len(q.window) == 0 {
		// Another goroutine flushed while waitShadowLocked had the lock
		// released; nothing left to do.
		return
	}
	q.flushes++
	cur := q.snap.Load()
	newEntries, newByID := q.planFlushLocked()
	q.window = nil
	if q.opt.AsyncMaintenance {
		done := make(chan struct{})
		q.shadowDone = done
		go func() {
			defer close(done)
			// A panicking build must not take the process down — the engine
			// keeps serving on the previous snapshot. The deferred recover
			// also unparks waitShadowLocked waiters (done still closes) and
			// clears the in-flight marker so later flushes are not blocked
			// forever on a build that will never finish.
			defer func() {
				if r := recover(); r != nil {
					stack := debug.Stack()
					q.mu.Lock()
					if q.shadowDone == done {
						q.shadowDone = nil
					}
					q.mu.Unlock()
					if h := q.opt.PanicHandler; h != nil {
						h(r, stack)
					}
				}
			}()
			isub, isuper := buildIndexes(q.dict, newEntries, q.opt)
			q.mu.Lock()
			q.snap.Store(&snapshot{db: cur.db, m: cur.m, dbGen: cur.dbGen, entries: newEntries, byID: newByID, isub: isub, isuper: isuper})
			if q.shadowDone == done {
				q.shadowDone = nil
			}
			q.mu.Unlock()
		}()
		return
	}
	isub, isuper := buildIndexes(q.dict, newEntries, q.opt)
	q.snap.Store(&snapshot{db: cur.db, m: cur.m, dbGen: cur.dbGen, entries: newEntries, byID: newByID, isub: isub, isuper: isuper})
}

// planFlushLocked computes the post-flush entry set without touching the
// currently served snapshot (fresh slice and map, shared entry pointers so
// metadata credited during an async build carries over). Caller holds q.mu.
func (q *IGQ) planFlushLocked() ([]*entry, map[int32]*entry) {
	active := q.snap.Load().entries
	evict := map[int32]struct{}{}
	if overflow := len(active) + len(q.window) - q.opt.CacheSize; overflow > 0 {
		order := q.victimOrder(active)
		if overflow > len(order) {
			overflow = len(order)
		}
		for _, e := range order[:overflow] {
			evict[e.id] = struct{}{}
		}
	}
	newEntries := make([]*entry, 0, len(active)+len(q.window))
	newByID := make(map[int32]*entry, len(active)+len(q.window))
	for _, e := range active {
		if _, gone := evict[e.id]; !gone {
			newEntries = append(newEntries, e)
			newByID[e.id] = e
		}
	}
	for _, e := range q.window {
		newEntries = append(newEntries, e)
		newByID[e.id] = e
	}
	return newEntries, newByID
}

// waitShadowLocked blocks until any in-flight §5.2 background build has
// installed its snapshot (used before a second flush or a Save). Caller
// holds q.mu; the lock is released while waiting so the builder can finish.
func (q *IGQ) waitShadowLocked() {
	for q.shadowDone != nil {
		done := q.shadowDone
		q.mu.Unlock()
		<-done
		q.mu.Lock()
	}
}

// normalizeIDs enforces the sorted-unique candidate invariant the pruning
// set operations rely on. Well-behaved methods already comply (verified
// O(n)); a sloppy method costs one sort instead of silent corruption.
func normalizeIDs(ids []int32) []int32 {
	sorted := true
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			sorted = false
			break
		}
	}
	if sorted {
		return ids
	}
	ids = sortIDs(append([]int32(nil), ids...))
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// victimOrder ranks entries for eviction (worst first) under the configured
// policy. Caller holds q.mu (it reads entry metadata).
func (q *IGQ) victimOrder(entries []*entry) []*entry {
	switch q.opt.Eviction {
	case FIFOEviction:
		out := append([]*entry(nil), entries...)
		sortEntriesBy(out, func(a, b *entry) bool {
			if a.insertedAt != b.insertedAt {
				return a.insertedAt < b.insertedAt
			}
			return a.id < b.id
		})
		return out
	case PopularityEviction:
		seq := q.seq.Load()
		rate := func(e *entry) float64 {
			m := seq - e.insertedAt
			if m < 1 {
				m = 1
			}
			return float64(e.hits.Load()) / float64(m)
		}
		out := append([]*entry(nil), entries...)
		sortEntriesBy(out, func(a, b *entry) bool {
			ra, rb := rate(a), rate(b)
			if ra != rb {
				return ra < rb
			}
			return a.id < b.id
		})
		return out
	default:
		return evictionOrder(entries, q.seq.Load())
	}
}

// RebuildIndexes rebuilds the cache-side Isub/Isuper over the current
// committed entries and installs them as a fresh snapshot. Required after
// the wrapped method's index is replaced via index.Persistable.LoadIndex:
// loading resets the shared feature dictionary, so postings keyed by the
// old FeatureIDs would probe garbage. Takes the metadata mutex (waiting out
// any in-flight shadow build); concurrent queries finish on the snapshot
// they started with, exactly as with a window flush.
func (q *IGQ) RebuildIndexes() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.waitShadowLocked()
	cur := q.snap.Load()
	q.installEntries(cur.entries, cur.m, cur.db)
}

// installEntries builds fresh cache-side indexes over entries and installs
// them as the served snapshot over (m, db) — construction, Load and
// rebuild time.
func (q *IGQ) installEntries(entries []*entry, m index.Method, db []*graph.Graph) {
	byID := make(map[int32]*entry, len(entries))
	for _, e := range entries {
		byID[e.id] = e
	}
	var gen int64
	if cur := q.snap.Load(); cur != nil {
		gen = cur.dbGen
	}
	isub, isuper := buildIndexes(q.dict, entries, q.opt)
	q.snap.Store(&snapshot{db: db, m: m, dbGen: gen, entries: entries, byID: byID, isub: isub, isuper: isuper})
}

// buildIndexes constructs fresh Isub/Isuper over an entry set; one
// (interning) feature enumeration per cached graph feeds both indexes.
// With opt.BuildWorkers > 1 the enumeration fans out: each worker claims
// entries, interns their features and stages the postings into private
// per-shard buffers of both sharded tries; the per-shard merges run after
// the workers join, so the build touches no postings lock and produces the
// same indexes at any worker count. Pure apart from dictionary growth —
// the dictionary serialises interning against concurrent lookups, so this
// can run as the §5.2 background shadow build while queries keep probing
// the previous indexes.
func buildIndexes(dict *features.Dict, entries []*entry, opt Options) (*subIndex, *ContainmentIndex) {
	isub := newSubIndex(dict, opt.Shards)
	ci := NewContainmentIndexSharded(opt.MaxPathLen, dict, opt.Shards)
	popt := features.PathOptions{MaxLen: opt.MaxPathLen}
	workers := min(opt.BuildWorkers, len(entries))
	if workers <= 1 {
		scratch := features.NewScratch()
		for _, e := range entries {
			qf := features.PathsID(e.g, popt, dict, scratch, true)
			isub.add(e.id, qf)
			ci.AddFromIDCounts(e.id, qf)
		}
		isub.finish()
		return isub, ci
	}
	sb := isub.tr.NewBuilder(workers)
	cb := ci.tr.NewBuilder(workers)
	nfs := make([]int, len(entries)) // per-entry distinct-feature counts
	trie.ParallelFor(len(entries), workers, func(w int, claim func() int) {
		sw, cw := sb.Worker(w), cb.Worker(w)
		scratch := features.NewScratch()
		for i := claim(); i >= 0; i = claim() {
			e := entries[i]
			qf := features.PathsID(e.g, popt, dict, scratch, true)
			nfs[i] = len(qf.Counts)
			for _, fc := range qf.Counts {
				p := trie.Posting{Graph: e.id, Count: fc.Count}
				sw.InsertID(fc.ID, p)
				cw.InsertID(fc.ID, p)
			}
		}
	})
	sb.Merge()
	cb.Merge()
	for i, e := range entries {
		isub.ids = append(isub.ids, e.id)
		ci.nf[e.id] = nfs[i]
	}
	isub.finish()
	return isub, ci
}
