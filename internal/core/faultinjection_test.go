package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
)

// sloppyMethod wraps a correct method but violates the tidiness (not the
// soundness) of the Method contract: its candidate sets come back
// unsorted, with duplicates, and padded with extra false positives. iGQ
// must absorb all of that without changing any answer — the executable form
// of "iGQ can accommodate any proposed index" (§2.1).
type sloppyMethod struct {
	inner index.Method
	rng   *rand.Rand
	n     int
}

func (s *sloppyMethod) Name() string { return "sloppy(" + s.inner.Name() + ")" }

func (s *sloppyMethod) Build(db []*graph.Graph) {
	s.inner.Build(db)
	s.n = len(db)
}

func (s *sloppyMethod) Filter(q *graph.Graph) []int32 {
	cs := append([]int32(nil), s.inner.Filter(q)...)
	// extra false positives
	for i := 0; i < 3; i++ {
		cs = append(cs, int32(s.rng.Intn(s.n)))
	}
	// duplicates
	if len(cs) > 0 {
		cs = append(cs, cs[0])
	}
	// shuffle away the ordering
	s.rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
	return cs
}

func (s *sloppyMethod) Verify(q *graph.Graph, id int32) bool { return s.inner.Verify(q, id) }
func (s *sloppyMethod) SizeBytes() int                       { return s.inner.SizeBytes() }

func TestIGQToleratesSloppyMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	db := buildDB(rng, 20)
	clean := ggsx.New(ggsx.DefaultOptions())
	clean.Build(db)
	sloppy := &sloppyMethod{inner: ggsx.New(ggsx.DefaultOptions()), rng: rand.New(rand.NewSource(5))}
	sloppy.Build(db)

	ig := New(sloppy, db, Options{CacheSize: 12, Window: 3})
	for i, q := range workload(rng, db, 60) {
		want := index.Answer(clean, q)
		got := ig.Query(q)
		if !reflect.DeepEqual(got.Answer, want) {
			t.Fatalf("query %d: sloppy-method iGQ answer %v != clean %v", i, got.Answer, want)
		}
	}
}

func TestNormalizeIDs(t *testing.T) {
	cases := []struct{ in, want []int32 }{
		{nil, nil},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}},       // already sorted: untouched
		{[]int32{3, 1, 2}, []int32{1, 2, 3}},       // unsorted
		{[]int32{2, 2, 1}, []int32{1, 2}},          // duplicates
		{[]int32{5, 5, 5, 5}, []int32{5}},          // all equal
		{[]int32{1, 1, 2, 3, 3}, []int32{1, 2, 3}}, // sorted with dups
	}
	for i, c := range cases {
		got := normalizeIDs(append([]int32(nil), c.in...))
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("case %d: normalizeIDs(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

func TestNormalizeIDsDoesNotMutateSortedInput(t *testing.T) {
	in := []int32{1, 4, 9}
	got := normalizeIDs(in)
	if &got[0] != &in[0] {
		t.Error("sorted input should be returned as-is (no copy)")
	}
}
