package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/index/ggsx"
)

// Differential tests for the per-entry atomic credit cells that replaced the
// single credit-commit mutex (§5.1 sharding). The reference implementation
// below is the old path: one mutex serialising every credit application onto
// plain fields. The atomic-cell path must match it exactly when replaying
// the same credit stream in the same order, and must keep exact integer
// counters (plus a sane, order-independent-up-to-rounding cost fold) under
// concurrent application.

// lockedEntry replays credits the way the pre-sharding code did: every
// update under one mutex, plain fields.
type lockedEntry struct {
	mu      sync.Mutex
	hits    int64
	removed int64
	logCost float64
}

func (l *lockedEntry) applyCredit(removed int64, logCostDelta float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hits++
	l.removed += removed
	l.logCost = LogSumExp(l.logCost, logCostDelta)
}

type creditOp struct {
	removed int64
	delta   float64
}

func randomCredits(rng *rand.Rand, n int) []creditOp {
	ops := make([]creditOp, n)
	for i := range ops {
		ops[i] = creditOp{
			removed: int64(rng.Intn(40)),
			// log-domain costs in a realistic range, including -Inf
			// (a hit that pruned nothing still counts as a hit).
			delta: math.Inf(-1),
		}
		if ops[i].removed > 0 {
			ops[i].delta = LogIsoCost(3+rng.Intn(10), 5+rng.Intn(60), 8)
		}
	}
	return ops
}

// Sequential replay: same order, so the atomic path must be bit-identical
// to the mutex path — the fold itself is the same LogSumExp sequence.
func TestCreditCellsMatchLockedReferenceSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ops := randomCredits(rng, 500)

	e := newEntry(1, tinyGraph(), nil, 0)
	ref := &lockedEntry{logCost: math.Inf(-1)}
	for _, op := range ops {
		e.applyCredit(op.removed, op.delta)
		ref.applyCredit(op.removed, op.delta)
	}

	if got := e.hits.Load(); got != ref.hits {
		t.Errorf("hits = %d, reference %d", got, ref.hits)
	}
	if got := e.removed.Load(); got != ref.removed {
		t.Errorf("removed = %d, reference %d", got, ref.removed)
	}
	if got := e.loadLogCost(); got != ref.logCost {
		t.Errorf("logCost = %v, reference %v (same-order fold must be bit-identical)", got, ref.logCost)
	}
}

// Concurrent replay under -race: integer counters must be exact regardless
// of interleaving; the CAS-folded logCost is order-dependent only up to
// float rounding, so it is pinned within a small relative tolerance of the
// sequential fold (LogSumExp is commutative in exact arithmetic).
func TestCreditCellsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const workers, perWorker = 8, 300
	ops := randomCredits(rng, workers*perWorker)

	e := newEntry(1, tinyGraph(), nil, 0)
	ref := &lockedEntry{logCost: math.Inf(-1)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		slice := ops[w*perWorker : (w+1)*perWorker]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, op := range slice {
				e.applyCredit(op.removed, op.delta)
				ref.applyCredit(op.removed, op.delta)
			}
		}()
	}
	wg.Wait()

	var wantRemoved int64
	seq := math.Inf(-1)
	for _, op := range ops {
		wantRemoved += op.removed
		seq = LogSumExp(seq, op.delta)
	}
	if got := e.hits.Load(); got != int64(len(ops)) {
		t.Errorf("hits = %d, want %d (lost atomic increments)", got, len(ops))
	}
	if got := e.removed.Load(); got != wantRemoved {
		t.Errorf("removed = %d, want %d", got, wantRemoved)
	}
	if ref.hits != int64(len(ops)) || ref.removed != wantRemoved {
		t.Fatalf("reference path corrupted: hits=%d removed=%d", ref.hits, ref.removed)
	}
	got := e.loadLogCost()
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("logCost = %v after concurrent fold", got)
	}
	if diff := math.Abs(got - seq); diff > 1e-9*math.Abs(seq) {
		t.Errorf("logCost = %v, sequential fold %v (diff %v beyond rounding)", got, seq, diff)
	}
	if diff := math.Abs(ref.logCost - seq); diff > 1e-9*math.Abs(seq) {
		t.Errorf("reference logCost = %v, sequential fold %v", ref.logCost, seq)
	}
}

// End-to-end: with credits applied lock-free at commit, a full cached
// workload must still produce exactly the method's answers and coherent
// §5.1 counters (hits never exceed queries executed).
func TestCreditCellsEndToEndCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := buildDB(rng, 16)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 8, Window: 3})
	queries := workload(rng, db, 120)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 4 {
				ig.Query(queries[i])
			}
		}(w)
	}
	wg.Wait()
	var totalHits int64
	for _, e := range ig.snap.Load().entries {
		h := e.hits.Load()
		if h < 0 {
			t.Fatalf("entry %d: negative hits %d", e.id, h)
		}
		if e.removed.Load() < 0 {
			t.Fatalf("entry %d: negative removed", e.id)
		}
		if math.IsNaN(e.loadLogCost()) {
			t.Fatalf("entry %d: NaN logCost", e.id)
		}
		totalHits += h
	}
	if totalHits > int64(len(queries)*len(queries)) {
		t.Fatalf("implausible total hits %d for %d queries", totalHits, len(queries))
	}
}
