package core_test

// §4.4 tests: iGQ accelerating *supergraph* query processing. The wrapped
// method is index/contain (dataset graphs contained in the query); the
// roles of Isub and Isuper invert, and so does the empty-answer optimal
// case. Correctness: answers must match the method alone, always.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/contain"
)

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestSupergraphModeCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	// dataset of small graphs (supergraph queries retrieve contained graphs)
	db := make([]*graph.Graph, 25)
	for i := range db {
		db[i] = randomGraph(rng, 2+rng.Intn(4), 0.5, 3)
		db[i].ID = i
	}
	m := contain.New(contain.DefaultOptions())
	m.Build(db)
	igq := core.New(m, db, core.Options{
		CacheSize: 15, Window: 4, Mode: core.SupergraphQueries,
	})

	// queries: larger graphs, with nested families to exercise both paths
	var queries []*graph.Graph
	for i := 0; i < 60; i++ {
		q := randomGraph(rng, 4+rng.Intn(6), 0.4, 3)
		queries = append(queries, q)
		if i%3 == 0 && q.NumVertices() > 3 {
			sub, _ := q.InducedSubgraph(q.BFSOrder(0)[:3])
			queries = append(queries, sub)
		}
	}
	for i, q := range queries {
		want := index.Answer(m, q)
		got := igq.Query(q)
		if !reflect.DeepEqual(got.Answer, want) {
			t.Fatalf("query %d: iGQ answer %v != method %v (short=%v)",
				i, got.Answer, want, got.Short)
		}
	}
}

func TestSupergraphModeEmptyAnswerShortCircuit(t *testing.T) {
	// In supergraph mode the empty-answer case inverts (§4.4): if a cached
	// SUBquery of g — i.e. an Isub hit in paper terms means g ⊆ G... the
	// processing terminates when ∃G ∈ Isub(g) with Answer(G) = ∅: a cached
	// query G ⊇ g with no contained dataset graphs implies g (⊆ G) can
	// contain none either.
	rng := rand.New(rand.NewSource(62))
	db := make([]*graph.Graph, 10)
	for i := range db {
		db[i] = randomGraph(rng, 3, 0.6, 2) // labels {0,1} only
		db[i].ID = i
	}
	m := contain.New(contain.DefaultOptions())
	m.Build(db)
	igq := core.New(m, db, core.Options{
		CacheSize: 10, Window: 1, Mode: core.SupergraphQueries,
	})

	// cached big query on labels {50,51}: contains no dataset graph
	big := graph.New(4)
	big.AddVertex(50)
	big.AddVertex(51)
	big.AddVertex(50)
	big.AddVertex(51)
	big.AddEdge(0, 1)
	big.AddEdge(1, 2)
	big.AddEdge(2, 3)
	o1 := igq.Query(big)
	if len(o1.Answer) != 0 {
		t.Fatalf("big off-vocabulary query should contain nothing, got %v", o1.Answer)
	}

	// now a subgraph of big: must short-circuit via the inverted rule
	small, _ := big.InducedSubgraph([]int{0, 1, 2})
	o2 := igq.Query(small)
	if o2.Short != core.EmptyAnswerHit {
		t.Fatalf("subgraph of empty-answer superquery not short-circuited: %+v", o2)
	}
	if len(o2.Answer) != 0 || o2.DatasetIsoTests != 0 {
		t.Errorf("short-circuit outcome wrong: %+v", o2)
	}
}

func TestSupergraphModeIdenticalHit(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	db := make([]*graph.Graph, 12)
	for i := range db {
		db[i] = randomGraph(rng, 2+rng.Intn(3), 0.5, 3)
		db[i].ID = i
	}
	m := contain.New(contain.DefaultOptions())
	m.Build(db)
	igq := core.New(m, db, core.Options{
		CacheSize: 10, Window: 1, Mode: core.SupergraphQueries,
	})
	q := randomGraph(rng, 6, 0.4, 3)
	first := igq.Query(q)
	second := igq.Query(q.Clone())
	if second.Short != core.IdenticalHit {
		t.Fatalf("repeat supergraph query not short-circuited: %+v", second)
	}
	if !reflect.DeepEqual(first.Answer, second.Answer) {
		t.Error("identical hit answer mismatch")
	}
}

func TestContainMethodAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	db := make([]*graph.Graph, 20)
	for i := range db {
		db[i] = randomGraph(rng, 2+rng.Intn(4), 0.5, 3)
		db[i].ID = i
	}
	m := contain.New(contain.DefaultOptions())
	m.Build(db)
	if m.Name() != "Contain" {
		t.Error("name")
	}
	if m.SizeBytes() <= 0 {
		t.Error("size")
	}
	for trial := 0; trial < 30; trial++ {
		q := randomGraph(rng, 3+rng.Intn(5), 0.45, 3)
		got := index.Answer(m, q)
		var want []int32
		for i, g := range db {
			// supergraph query: which dataset graphs are contained in q
			if len(g.EdgeList()) <= len(q.EdgeList()) && containsRef(g, q) {
				want = append(want, int32(i))
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

// containsRef is a local brute-force d ⊆ q oracle.
func containsRef(d, q *graph.Graph) bool {
	return bruteSub(d, q)
}

func bruteSub(p, t *graph.Graph) bool {
	np, nt := p.NumVertices(), t.NumVertices()
	if np == 0 {
		return true
	}
	if np > nt {
		return false
	}
	mapping := make([]int, np)
	used := make([]bool, nt)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == np {
			return true
		}
		for c := 0; c < nt; c++ {
			if used[c] || p.Label(i) != t.Label(c) {
				continue
			}
			ok := true
			for _, w := range p.Neighbors(i) {
				if int(w) < i && !t.HasEdge(c, mapping[w]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[i] = c
			used[c] = true
			if rec(i + 1) {
				return true
			}
			used[c] = false
		}
		return false
	}
	return rec(0)
}
