package core

// Copy-on-write mutation of the containment index. The trie already knows
// how to mutate in O(delta) (trie.Mutation: append postings, scrub a
// removed graph's keys, re-home a swapped graph); the only containment-
// specific state is the NF table, which the caller maintains alongside the
// staged trie ops and hands to ApplyMutation. The receiver is never
// touched — it keeps answering Algorithm 2 over the pre-mutation dataset
// while the new generation is installed by the caller's snapshot swap —
// which is exactly the discipline index.Mutable methods and iGQ's cache
// maintenance already follow.

import (
	"maps"

	"repro/internal/trie"
)

// NewMutation stages a copy-on-write mutation against the index's trie.
// Stage appended graphs' features and swap-removal steps exactly as for
// the subgraph tries, then ApplyMutation with the matching NF table.
func (ci *ContainmentIndex) NewMutation() *trie.Mutation { return ci.tr.NewMutation() }

// NFTable returns a private copy of the NF table with growth room for
// extra more graphs — the starting point for a mutation's NF bookkeeping:
// appended graphs add their distinct-feature counts, swap-removals re-home
// the last position's count into the vacated slot.
func (ci *ContainmentIndex) NFTable(extra int) map[int32]int {
	nf := make(map[int32]int, len(ci.nf)+extra)
	maps.Copy(nf, ci.nf)
	return nf
}

// ApplyMutation builds the post-mutation index: mut.Apply()'s trie plus nf
// as the new NF table. Unaffected shards, posting containers and byte-trie
// subtrees are shared with the receiver, which remains valid and
// immutable. Cost is O(staged features), independent of the dataset size.
func (ci *ContainmentIndex) ApplyMutation(mut *trie.Mutation, nf map[int32]int) *ContainmentIndex {
	return newContainmentIndex(ci.maxPathLen, mut.Apply(), nf)
}
