package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/index"
	"repro/internal/index/ggsx"
)

// §5.2 asynchronous shadow-index maintenance tests.

func TestAsyncMaintenanceCorrectness(t *testing.T) {
	// answers must equal the method's regardless of when swaps land
	rng := rand.New(rand.NewSource(141))
	db := buildDB(rng, 25)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 15, Window: 4, AsyncMaintenance: true})
	for i, q := range workload(rng, db, 120) {
		want := index.Answer(m, q)
		got := ig.Query(q)
		if !reflect.DeepEqual(got.Answer, want) {
			t.Fatalf("query %d: async iGQ answer %v != method %v", i, got.Answer, want)
		}
	}
	if ig.Flushes() == 0 {
		t.Error("no flushes — async path untested")
	}
}

func TestAsyncMaintenanceEventuallyServesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	db := buildDB(rng, 12)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 10, Window: 2, AsyncMaintenance: true})

	q := connectedQuery(rng, db[1], 4)
	ig.Query(q)
	ig.Query(connectedQuery(rng, db[2], 3)) // fills window → async flush

	// next flush blocks on the previous shadow, so after one more window
	// the first flush's contents are definitely committed
	ig.Query(connectedQuery(rng, db[3], 3))
	ig.Query(connectedQuery(rng, db[4], 3))

	o := ig.Query(q.Clone())
	if o.Short != IdenticalHit {
		t.Errorf("cached query not served after shadow swaps (short=%v)", o.Short)
	}
}

func TestAsyncSaveWaitsForShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	db := buildDB(rng, 10)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 10, Window: 1, AsyncMaintenance: true})
	ig.Query(connectedQuery(rng, db[0], 4)) // flush dispatched asynchronously

	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, m, db, Options{CacheSize: 10, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if restored.CacheLen() != 1 {
		t.Errorf("snapshot missed the in-flight flush: %d entries", restored.CacheLen())
	}
}

func TestAsyncMatchesSyncAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	syncIG := New(m, db, Options{CacheSize: 12, Window: 3})
	asyncIG := New(m, db, Options{CacheSize: 12, Window: 3, AsyncMaintenance: true})
	for i, q := range workload(rng, db, 80) {
		a := syncIG.Query(q.Clone())
		b := asyncIG.Query(q.Clone())
		if !reflect.DeepEqual(a.Answer, b.Answer) {
			t.Fatalf("query %d: sync and async answers diverge", i)
		}
	}
}
