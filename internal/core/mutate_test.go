package core_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/contain"
)

// TestDatasetAppendedSupergraphMode pins the §4.4 direction of the cache
// patch: in supergraph mode a cached entry's answer lists dataset graphs
// *contained in* the cached query, so an append must test newGraph ⊆
// cachedQuery — the inverse of subgraph mode. The wrapped method is
// rebuilt by hand (contain.Index is not incrementally mutable; core's
// patch is method-agnostic).
func TestDatasetAppendedSupergraphMode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := make([]*graph.Graph, 12)
	for i := range db {
		db[i] = randomGraph(rng, 2+rng.Intn(3), 0.6, 2)
	}
	m := contain.New(contain.DefaultOptions())
	m.Build(db)
	ig := core.New(m, db, core.Options{CacheSize: 8, Window: 1, Mode: core.SupergraphQueries})

	// Cache one large query (window 1: admitted and flushed immediately).
	q := randomGraph(rng, 7, 0.5, 2)
	first := ig.Query(q)
	if ig.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1", ig.CacheLen())
	}

	// Append a graph guaranteed to be contained in q (an induced piece of
	// it) plus one with a label outside q's alphabet (never contained).
	sub, _ := q.InducedSubgraph(q.BFSOrder(0)[:2])
	alien := graph.New(2)
	alien.AddVertex(9)
	alien.AddVertex(9)
	alien.AddEdge(0, 1)
	newDB := append(append([]*graph.Graph(nil), db...), sub, alien)
	m2 := contain.New(contain.DefaultOptions())
	m2.Build(newDB)
	if err := ig.DatasetAppended(context.Background(), m2, newDB, len(db)); err != nil {
		t.Fatal(err)
	}

	// The identical query now answers from the cache — and must include the
	// appended contained graph but not the alien one.
	res := ig.Query(q)
	if res.Short != core.IdenticalHit {
		t.Fatalf("expected identical-hit short circuit, got %v", res.Short)
	}
	want := index.Answer(m2, q)
	if !reflect.DeepEqual(res.Answer, want) {
		t.Fatalf("patched cached answer %v != method answer %v (was %v before append)",
			res.Answer, want, first.Answer)
	}
	subID, alienID := int32(len(db)), int32(len(db)+1)
	if !containsID(res.Answer, subID) {
		t.Errorf("answer %v missing appended contained graph %d", res.Answer, subID)
	}
	if containsID(res.Answer, alienID) {
		t.Errorf("answer %v wrongly includes alien graph %d", res.Answer, alienID)
	}
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// TestDatasetAppendedPatchesWindow: entries still pending in the admission
// window (not yet flushed into a snapshot) must be patched too — their
// answers become cache knowledge at the next flush.
func TestDatasetAppendedPatchesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := make([]*graph.Graph, 10)
	for i := range db {
		db[i] = randomGraph(rng, 5+rng.Intn(3), 0.5, 2)
	}
	// Subgraph mode needs a subgraph method; use brute force (any Method).
	bf := index.NewBruteForce()
	bf.Build(db)
	ig := core.New(bf, db, core.Options{CacheSize: 8, Window: 3})

	q := randomGraph(rng, 3, 0.8, 2)
	ig.Query(q) // admitted, window not yet full → pending
	if ig.WindowLen() != 1 {
		t.Fatalf("WindowLen = %d, want 1", ig.WindowLen())
	}

	// Append a supergraph of q: must join the pending entry's answer.
	host := q.Clone()
	host.AddVertex(1)
	host.AddEdge(host.NumVertices()-1, 0)
	newDB := append(append([]*graph.Graph(nil), db...), host)
	bf2 := index.NewBruteForce()
	bf2.Build(newDB)
	if err := ig.DatasetAppended(context.Background(), bf2, newDB, len(db)); err != nil {
		t.Fatal(err)
	}

	// Flush the window (two more admissions), then re-ask q: the identical
	// hit must carry the patched answer including the appended host.
	for i := 0; i < 2; i++ {
		ig.Query(randomGraph(rng, 4, 0.5, 2))
	}
	res := ig.Query(q)
	if res.Short != core.IdenticalHit {
		t.Fatalf("expected identical hit, got %v (cache len %d)", res.Short, ig.CacheLen())
	}
	if !containsID(res.Answer, int32(len(db))) {
		t.Fatalf("window entry answer %v missing appended host %d", res.Answer, len(db))
	}
	if want := index.Answer(bf2, q); !reflect.DeepEqual(res.Answer, want) {
		t.Fatalf("patched answer %v != method answer %v", res.Answer, want)
	}
}
