package core

import (
	"math"
	"slices"

	"repro/internal/graph"
)

// entry is one cached query graph with its answer set and the replacement-
// policy metadata of the paper's §5.1.
type entry struct {
	id     int32        // stable slot id used by the cache-side indexes
	g      *graph.Graph // the query graph (Igraphs store)
	answer []int32      // Answer(G): sorted dataset graph ids
	fp     uint64       // structural fingerprint for fast identical checks

	insertedAt int64   // query sequence number at insertion (defines M(g))
	hits       int64   // H(g): times found as sub/supergraph of a query
	removed    int64   // R(g): candidates pruned because of this entry
	logCost    float64 // ln C(g): log-sum-exp of alleviated test costs
}

// newEntry builds a cache entry; logCost starts at -Inf (C(g) = 0).
func newEntry(id int32, g *graph.Graph, answer []int32, seq int64) *entry {
	return &entry{
		id:         id,
		g:          g,
		answer:     append([]int32(nil), answer...),
		fp:         graph.Fingerprint(g),
		insertedAt: seq,
		logCost:    math.Inf(-1),
	}
}

// withAnswer returns a copy of e carrying a different answer set — the
// copy-on-write step of dataset-mutation patching. Metadata (hits,
// removed, logCost) carries over by value; the graph and fingerprint are
// shared (the cached query itself is untouched by dataset mutation).
func (e *entry) withAnswer(answer []int32) *entry {
	ne := *e
	ne.answer = answer
	return &ne
}

// logUtility returns ln U(g) = ln C(g) − ln M(g) at sequence number seq.
// Entries that never alleviated a test have utility -Inf and are evicted
// first. M(g) is at least 1 to keep the ratio defined for brand-new entries.
func (e *entry) logUtility(seq int64) float64 {
	m := seq - e.insertedAt
	if m < 1 {
		m = 1
	}
	return e.logCost - math.Log(float64(m))
}

// creditHit records a hit that pruned the given candidate dataset graphs
// for a query with queryNodes vertices. targetSizes lists the vertex counts
// of the pruned graphs; labels is the label-domain size for the cost model.
func (e *entry) creditHit(queryNodes int, targetSizes []int, labels int) {
	delta := math.Inf(-1)
	for _, ni := range targetSizes {
		delta = LogSumExp(delta, LogIsoCost(queryNodes, ni, labels))
	}
	e.applyCredit(int64(len(targetSizes)), delta)
}

// applyCredit folds one buffered hit into the entry's §5.1 metadata:
// removed candidates and the pre-combined log-sum-exp cost delta. Callers
// must hold the owning IGQ's metadata mutex (or own the entry exclusively,
// as tests and Load do).
func (e *entry) applyCredit(removed int64, logCostDelta float64) {
	e.hits++
	e.removed += removed
	e.logCost = LogSumExp(e.logCost, logCostDelta)
}

// sortIDs sorts a slice of graph ids ascending, in place, returning it.
func sortIDs(ids []int32) []int32 {
	slices.Sort(ids)
	return ids
}

// evictionOrder returns the entries sorted by ascending utility (worst
// first), with ties broken by older insertion then lower id for
// determinism.
func evictionOrder(entries []*entry, seq int64) []*entry {
	out := append([]*entry(nil), entries...)
	sortEntriesBy(out, func(a, b *entry) bool {
		ua, ub := a.logUtility(seq), b.logUtility(seq)
		if ua != ub {
			return ua < ub
		}
		if a.insertedAt != b.insertedAt {
			return a.insertedAt < b.insertedAt
		}
		return a.id < b.id
	})
	return out
}

// sortEntriesBy sorts entries in place with the given less function.
func sortEntriesBy(es []*entry, less func(a, b *entry) bool) {
	slices.SortFunc(es, func(a, b *entry) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}
