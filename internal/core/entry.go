package core

import (
	"math"
	"slices"
	"sync/atomic"

	"repro/internal/graph"
)

// entry is one cached query graph with its answer set and the replacement-
// policy metadata of the paper's §5.1.
//
// The metadata fields (hits, removed, logCost) are per-entry atomic credit
// cells: queries fold their buffered §5.1 credits into them lock-free at
// commit time, so the commit section scales with the number of cores
// instead of serialising every query on one metadata mutex. Readers
// (eviction planning, Save) sample the cells atomically; they need no lock
// because the §5.1 counters are a replacement heuristic, not answers — any
// torn read across *different* entries still yields a valid utility
// ranking of some interleaving.
type entry struct {
	id     int32        // stable slot id used by the cache-side indexes
	g      *graph.Graph // the query graph (Igraphs store)
	answer []int32      // Answer(G): sorted dataset graph ids
	fp     uint64       // structural fingerprint for fast identical checks

	insertedAt int64         // query sequence number at insertion (defines M(g))
	hits       atomic.Int64  // H(g): times found as sub/supergraph of a query
	removed    atomic.Int64  // R(g): candidates pruned because of this entry
	logCost    atomic.Uint64 // ln C(g) as float64 bits: log-sum-exp of alleviated test costs
}

// newEntry builds a cache entry; logCost starts at -Inf (C(g) = 0).
func newEntry(id int32, g *graph.Graph, answer []int32, seq int64) *entry {
	e := &entry{
		id:         id,
		g:          g,
		answer:     append([]int32(nil), answer...),
		fp:         graph.Fingerprint(g),
		insertedAt: seq,
	}
	e.logCost.Store(math.Float64bits(math.Inf(-1)))
	return e
}

// withAnswer returns a copy of e carrying a different answer set — the
// copy-on-write step of dataset-mutation patching. Metadata (hits,
// removed, logCost) carries over by value; the graph and fingerprint are
// shared (the cached query itself is untouched by dataset mutation).
func (e *entry) withAnswer(answer []int32) *entry {
	ne := &entry{
		id:         e.id,
		g:          e.g,
		answer:     answer,
		fp:         e.fp,
		insertedAt: e.insertedAt,
	}
	ne.hits.Store(e.hits.Load())
	ne.removed.Store(e.removed.Load())
	ne.logCost.Store(e.logCost.Load())
	return ne
}

// loadLogCost returns ln C(g).
func (e *entry) loadLogCost() float64 { return math.Float64frombits(e.logCost.Load()) }

// setMetadata overwrites the credit cells — restore (Load) and test setup;
// the caller must own the entry exclusively.
func (e *entry) setMetadata(hits, removed int64, logCost float64) {
	e.hits.Store(hits)
	e.removed.Store(removed)
	e.logCost.Store(math.Float64bits(logCost))
}

// logUtility returns ln U(g) = ln C(g) − ln M(g) at sequence number seq.
// Entries that never alleviated a test have utility -Inf and are evicted
// first. M(g) is at least 1 to keep the ratio defined for brand-new entries.
func (e *entry) logUtility(seq int64) float64 {
	m := seq - e.insertedAt
	if m < 1 {
		m = 1
	}
	return e.loadLogCost() - math.Log(float64(m))
}

// creditHit records a hit that pruned the given candidate dataset graphs
// for a query with queryNodes vertices. targetSizes lists the vertex counts
// of the pruned graphs; labels is the label-domain size for the cost model.
func (e *entry) creditHit(queryNodes int, targetSizes []int, labels int) {
	delta := math.Inf(-1)
	for _, ni := range targetSizes {
		delta = LogSumExp(delta, LogIsoCost(queryNodes, ni, labels))
	}
	e.applyCredit(int64(len(targetSizes)), delta)
}

// applyCredit folds one buffered hit into the entry's §5.1 credit cells:
// removed candidates and the pre-combined log-sum-exp cost delta. Lock-free
// and safe from any number of goroutines — the integer counters are atomic
// adds and the cost cell a CAS fold (LogSumExp is commutative, so any
// interleaving accumulates the same credit up to float rounding).
func (e *entry) applyCredit(removed int64, logCostDelta float64) {
	e.hits.Add(1)
	e.removed.Add(removed)
	for {
		old := e.logCost.Load()
		merged := math.Float64bits(LogSumExp(math.Float64frombits(old), logCostDelta))
		if old == merged || e.logCost.CompareAndSwap(old, merged) {
			return
		}
	}
}

// sortIDs sorts a slice of graph ids ascending, in place, returning it.
func sortIDs(ids []int32) []int32 {
	slices.Sort(ids)
	return ids
}

// evictionOrder returns the entries sorted by ascending utility (worst
// first), with ties broken by older insertion then lower id for
// determinism.
func evictionOrder(entries []*entry, seq int64) []*entry {
	out := append([]*entry(nil), entries...)
	sortEntriesBy(out, func(a, b *entry) bool {
		ua, ub := a.logUtility(seq), b.logUtility(seq)
		if ua != ub {
			return ua < ub
		}
		if a.insertedAt != b.insertedAt {
			return a.insertedAt < b.insertedAt
		}
		return a.id < b.id
	})
	return out
}

// sortEntriesBy sorts entries in place with the given less function.
func sortEntriesBy(es []*entry, less func(a, b *entry) bool) {
	slices.SortFunc(es, func(a, b *entry) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}
