package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/iso"
)

func tinyGraph() *graph.Graph {
	g := graph.New(2)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddEdge(0, 1)
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func connectedQuery(rng *rand.Rand, g *graph.Graph, k int) *graph.Graph {
	if g.NumVertices() == 0 {
		return graph.New(0)
	}
	order := g.BFSOrder(rng.Intn(g.NumVertices()))
	if len(order) > k {
		order = order[:k]
	}
	sub, _ := g.InducedSubgraph(order)
	return sub
}

func buildDB(rng *rand.Rand, n int) []*graph.Graph {
	db := make([]*graph.Graph, n)
	for i := range db {
		db[i] = randomGraph(rng, 6+rng.Intn(8), 0.3, 4)
		db[i].ID = i
	}
	return db
}

// workload generates queries with deliberate containment relationships:
// nested BFS prefixes of the same regions, plus repeats.
func workload(rng *rand.Rand, db []*graph.Graph, n int) []*graph.Graph {
	var qs []*graph.Graph
	for len(qs) < n {
		g := db[rng.Intn(len(db))]
		if g.NumVertices() == 0 {
			continue
		}
		order := g.BFSOrder(rng.Intn(g.NumVertices()))
		// a nested family: prefixes of the same BFS order
		for _, k := range []int{2, 3, 5} {
			if len(qs) == n {
				break
			}
			kk := k
			if kk > len(order) {
				kk = len(order)
			}
			sub, _ := g.InducedSubgraph(order[:kk])
			qs = append(qs, sub)
		}
		if len(qs) < n && len(qs) > 2 && rng.Float64() < 0.3 {
			qs = append(qs, qs[rng.Intn(len(qs))].Clone()) // exact repeat
		}
	}
	return qs[:n]
}

// TestTheorem1And2: iGQ's answers must equal the wrapped method's answers
// for every query in a workload rich in containment relationships — the
// executable form of the paper's correctness theorems.
func TestTheorem1And2(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := buildDB(rng, 30)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 20, Window: 5})

	for i, q := range workload(rng, db, 120) {
		want := index.Answer(m, q)
		got := igq.Query(q)
		if !reflect.DeepEqual(got.Answer, want) {
			t.Fatalf("query %d: iGQ answer %v != method answer %v\nshort=%v subhits=%d superhits=%d",
				i, got.Answer, want, got.Short, got.SubHits, got.SuperHits)
		}
	}
	if igq.Flushes() == 0 {
		t.Error("no window flushes happened — replacement path untested")
	}
}

func TestIdenticalQueryShortCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db := buildDB(rng, 15)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 10, Window: 2})

	q := connectedQuery(rng, db[3], 4)
	first := igq.Query(q)
	igq.Query(connectedQuery(rng, db[5], 3)) // trigger flush (W=2)

	second := igq.Query(q.Clone())
	if second.Short != IdenticalHit {
		t.Fatalf("repeat query not short-circuited: %+v", second)
	}
	if second.DatasetIsoTests != 0 {
		t.Errorf("identical hit ran %d dataset tests", second.DatasetIsoTests)
	}
	if !reflect.DeepEqual(first.Answer, second.Answer) {
		t.Errorf("identical hit returned different answer: %v vs %v", first.Answer, second.Answer)
	}
}

func TestEmptyAnswerShortCircuit(t *testing.T) {
	// dataset where no graph contains label 99; a cached query with label
	// 99 has an empty answer; any supergraph of it must short-circuit.
	db := buildDB(rand.New(rand.NewSource(73)), 10)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 10, Window: 1}) // immediate flush

	small := graph.New(2)
	small.AddVertex(99)
	small.AddVertex(99)
	small.AddEdge(0, 1)
	o1 := igq.Query(small)
	if len(o1.Answer) != 0 {
		t.Fatalf("label-99 query should have empty answer, got %v", o1.Answer)
	}

	big := graph.New(3)
	big.AddVertex(99)
	big.AddVertex(99)
	big.AddVertex(99)
	big.AddEdge(0, 1)
	big.AddEdge(1, 2)
	o2 := igq.Query(big)
	if o2.Short != EmptyAnswerHit {
		t.Fatalf("supergraph of empty-answer query not short-circuited: %+v", o2)
	}
	if o2.DatasetIsoTests != 0 || len(o2.Answer) != 0 {
		t.Errorf("empty-answer hit: tests=%d answer=%v", o2.DatasetIsoTests, o2.Answer)
	}
}

func TestSubgraphPathPrunesAndRestores(t *testing.T) {
	// Craft: cached query G with known answer; then a subquery g ⊆ G.
	// g's candidates that are in Answer(G) must be skipped but present in
	// the final answer.
	rng := rand.New(rand.NewSource(74))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 10, Window: 1})

	// big cached query: 5-vertex region
	gBig := connectedQuery(rng, db[2], 5)
	oBig := igq.Query(gBig)

	// subquery: BFS prefix of the same region (3 vertices)
	order := db[2].BFSOrder(0)
	_ = order
	sub, _ := gBig.InducedSubgraph(gBig.BFSOrder(0)[:3])
	if !iso.Subgraph(sub, gBig) {
		t.Fatal("test construction broken: sub not ⊆ big")
	}
	oSub := igq.Query(sub)
	if oSub.SubHits == 0 {
		t.Fatalf("no Isub hit for nested query (big answer=%v)", oBig.Answer)
	}
	if oSub.Short == NoShortCircuit && len(oBig.Answer) > 0 &&
		oSub.DatasetIsoTests >= oSub.BaseCandidates {
		t.Errorf("Isub hit did not reduce tests: %d of %d", oSub.DatasetIsoTests, oSub.BaseCandidates)
	}
	want := index.Answer(m, sub)
	if !reflect.DeepEqual(oSub.Answer, want) {
		t.Errorf("answer mismatch: %v want %v", oSub.Answer, want)
	}
}

func TestSupergraphPathRestrictsCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 10, Window: 1})

	gSmall := connectedQuery(rng, db[4], 3)
	igq.Query(gSmall)

	// supergraph of gSmall: extend the BFS region
	order := db[4].BFSOrder(gSmall.BFSOrder(0)[0])
	gBig, _ := db[4].InducedSubgraph(order[:minInt(6, len(order))])
	if !iso.Subgraph(gSmall, gBig) {
		t.Skip("construction did not produce a nested pair")
	}
	o := igq.Query(gBig)
	if o.SuperHits == 0 && o.Short == NoShortCircuit {
		t.Error("no Isuper hit for extended query")
	}
	want := index.Answer(m, gBig)
	if !reflect.DeepEqual(o.Answer, want) {
		t.Errorf("answer mismatch: %v want %v", o.Answer, want)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestReplacementEvictsAtCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	db := buildDB(rng, 10)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 4, Window: 2})

	for i := 0; i < 20; i++ {
		igq.Query(randomGraph(rng, 3+rng.Intn(3), 0.5, 4))
	}
	if igq.CacheLen() > 4 {
		t.Errorf("cache grew past capacity: %d", igq.CacheLen())
	}
	if igq.Flushes() < 5 {
		t.Errorf("flushes = %d, want many", igq.Flushes())
	}
}

func TestUtilityKeepsUsefulEntries(t *testing.T) {
	// One cached query is hit repeatedly (accumulating utility); fillers
	// use disjoint label pairs so they are never hit by anything and stay
	// at utility -Inf. Under capacity pressure the policy must always evict
	// a filler, never the credited entry.
	rng := rand.New(rand.NewSource(77))
	db := buildDB(rng, 15)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 3, Window: 1})

	useful := connectedQuery(rng, db[1], 5)
	igq.Query(useful) // cached immediately (W=1)

	// alternate distinct subqueries of `useful` (crediting it) with
	// never-hit fillers on private labels
	subOrder := useful.BFSOrder(0)
	for i := 0; i < 6; i++ {
		k := minInt(2+i%3, len(subOrder))
		sub, _ := useful.InducedSubgraph(subOrder[:k])
		o := igq.Query(sub)
		if o.SubHits == 0 && o.Short == NoShortCircuit {
			t.Fatalf("iter %d: subquery missed the cached supergraph", i)
		}
		filler := graph.New(2)
		filler.AddVertex(graph.Label(1000 + 2*i))
		filler.AddVertex(graph.Label(1001 + 2*i))
		filler.AddEdge(0, 1)
		igq.Query(filler)
	}
	// the useful entry must still be cached: re-issuing it is an identical hit
	o := igq.Query(useful.Clone())
	if o.Short != IdenticalHit {
		t.Errorf("high-utility entry was evicted (short=%v)", o.Short)
	}
}

func TestAblationFlagsDisablePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	db := buildDB(rng, 15)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)

	noSub := New(m, db, Options{CacheSize: 10, Window: 1, DisableSub: true})
	noSuper := New(m, db, Options{CacheSize: 10, Window: 1, DisableSuper: true})

	big := connectedQuery(rng, db[2], 5)
	sub, _ := big.InducedSubgraph(big.BFSOrder(0)[:3])

	noSub.Query(big)
	o := noSub.Query(sub)
	if o.SubHits != 0 {
		t.Error("DisableSub still produced sub hits")
	}
	if !reflect.DeepEqual(o.Answer, index.Answer(m, sub)) {
		t.Error("DisableSub broke correctness")
	}

	noSuper.Query(sub)
	o2 := noSuper.Query(big)
	if o2.SuperHits != 0 {
		t.Error("DisableSuper still produced super hits")
	}
	if !reflect.DeepEqual(o2.Answer, index.Answer(m, big)) {
		t.Error("DisableSuper broke correctness")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	seqI := New(m, db, Options{CacheSize: 10, Window: 3})
	parI := New(m, db, Options{CacheSize: 10, Window: 3, Parallel: true})

	for i, q := range workload(rng, db, 60) {
		a := seqI.Query(q.Clone())
		b := parI.Query(q.Clone())
		if !reflect.DeepEqual(a.Answer, b.Answer) {
			t.Fatalf("query %d: parallel answer differs", i)
		}
	}
}

func TestWindowDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	db := buildDB(rng, 10)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 10, Window: 5})

	q := connectedQuery(rng, db[0], 4)
	igq.Query(q)
	igq.Query(q.Clone()) // same query again within the window
	if igq.WindowLen() != 1 {
		t.Errorf("window holds %d entries, want 1 (duplicate suppressed)", igq.WindowLen())
	}
}

func TestSizeBytesGrowsWithCache(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	db := buildDB(rng, 10)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 10, Window: 1})
	empty := igq.SizeBytes()
	for i := 0; i < 5; i++ {
		igq.Query(randomGraph(rng, 4, 0.5, 4))
	}
	if igq.SizeBytes() <= empty {
		t.Errorf("SizeBytes did not grow: %d -> %d", empty, igq.SizeBytes())
	}
}

func TestOutcomeCountersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{CacheSize: 15, Window: 3})
	for _, q := range workload(rng, db, 60) {
		o := igq.Query(q)
		if o.Short == NoShortCircuit {
			if o.DatasetIsoTests != o.FinalCandidates {
				t.Fatalf("tests %d != final candidates %d", o.DatasetIsoTests, o.FinalCandidates)
			}
			if o.FinalCandidates > o.BaseCandidates {
				t.Fatalf("pruning grew the candidate set: %d > %d", o.FinalCandidates, o.BaseCandidates)
			}
		} else if o.DatasetIsoTests != 0 {
			t.Fatalf("short-circuit ran %d dataset tests", o.DatasetIsoTests)
		}
	}
}

func TestQueriesCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db := buildDB(rng, 5)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	igq := New(m, db, Options{})
	for i := 0; i < 7; i++ {
		igq.Query(randomGraph(rng, 3, 0.5, 4))
	}
	if igq.Queries() != 7 {
		t.Errorf("Queries() = %d", igq.Queries())
	}
	if igq.Method() != m {
		t.Error("Method() identity lost")
	}
}
