package core

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
)

// Concurrency tests for the snapshot-isolated query path: many goroutines
// against one IGQ must produce exactly the answers of a sequential run
// (Theorems 1–2 make answers independent of cache state), with no lost
// metadata updates and no data races (run with -race).

// concurrentWorkload builds a mixed repeated/novel query stream: a pool of
// base patterns, each issued several times, interleaved with one-off
// queries.
func concurrentWorkload(rng *rand.Rand, db []*graph.Graph, n int) []*graph.Graph {
	base := workload(rng, db, 8)
	out := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			out = append(out, connectedQuery(rng, db[rng.Intn(len(db))], 2+rng.Intn(4)))
		} else {
			out = append(out, base[rng.Intn(len(base))].Clone())
		}
	}
	return out
}

func TestConcurrentQueriesMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	db := buildDB(rng, 25)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	queries := concurrentWorkload(rng, db, 96)

	// Sequential reference run (also the ground truth via the method).
	want := make([][]int32, len(queries))
	seqIG := New(m, db, Options{CacheSize: 15, Window: 4})
	for i, q := range queries {
		want[i] = seqIG.Query(q.Clone()).Answer
	}

	const workers = 8
	ig := New(m, db, Options{CacheSize: 15, Window: 4})
	got := make([][]int32, len(queries))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				o, err := ig.QueryCtx(context.Background(), queries[i])
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				got[i] = o.Answer
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	for i := range queries {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d: concurrent answer %v != sequential %v", i, got[i], want[i])
		}
		if !reflect.DeepEqual(got[i], index.Answer(m, queries[i])) {
			t.Fatalf("query %d: concurrent answer %v != method ground truth", i, got[i])
		}
	}
	// No lost updates on the shared counters: every query was counted.
	if ig.Queries() != int64(len(queries)) {
		t.Errorf("Queries() = %d, want %d", ig.Queries(), len(queries))
	}
	if ig.CacheLen()+ig.WindowLen() == 0 {
		t.Error("nothing admitted under concurrency")
	}
}

func TestConcurrentAsyncMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	queries := concurrentWorkload(rng, db, 80)
	ig := New(m, db, Options{CacheSize: 10, Window: 3, AsyncMaintenance: true})

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 6 {
				o, err := ig.QueryCtx(context.Background(), queries[i])
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(o.Answer, index.Answer(m, queries[i])) {
					t.Errorf("query %d: async-concurrent answer diverges from method", i)
				}
			}
		}(w)
	}
	wg.Wait()
	if ig.Flushes() == 0 {
		t.Error("no flushes — async path untested")
	}
}

func TestConcurrentNoAdmitNeverFlushes(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	db := buildDB(rng, 15)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 10, Window: 2})
	queries := concurrentWorkload(rng, db, 40)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 4 {
				o, err := ig.QueryNoAdmit(context.Background(), queries[i])
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(o.Answer, index.Answer(m, queries[i])) {
					t.Errorf("query %d: no-admit answer diverges from method", i)
				}
			}
		}(w)
	}
	wg.Wait()
	if ig.CacheLen() != 0 || ig.WindowLen() != 0 || ig.Flushes() != 0 {
		t.Errorf("QueryNoAdmit mutated the cache: len=%d window=%d flushes=%d",
			ig.CacheLen(), ig.WindowLen(), ig.Flushes())
	}
	if ig.Queries() != int64(len(queries)) {
		t.Errorf("Queries() = %d, want %d", ig.Queries(), len(queries))
	}
}

// TestSaveUnderConcurrentLoad takes snapshots while queries are in flight:
// every snapshot must be internally consistent — it loads cleanly, respects
// the capacity bound, and the restored cache answers correctly.
func TestSaveUnderConcurrentLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 8, Window: 2})
	queries := concurrentWorkload(rng, db, 60)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 4 {
				if _, err := ig.QueryCtx(context.Background(), queries[i]); err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	// Snapshot repeatedly mid-stream.
	var snaps []*bytes.Buffer
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := ig.Save(&buf); err != nil {
				t.Errorf("save %d: %v", i, err)
				return
			}
			snaps = append(snaps, &buf)
		}
	}()
	wg.Wait()
	close(stop)

	probe := queries[1]
	want := index.Answer(m, probe)
	for i, buf := range snaps {
		restored, err := Load(bytes.NewReader(buf.Bytes()), m, db, Options{CacheSize: 8, Window: 2})
		if err != nil {
			t.Fatalf("snapshot %d does not load: %v", i, err)
		}
		if restored.CacheLen() > 8 {
			t.Errorf("snapshot %d over capacity: %d", i, restored.CacheLen())
		}
		if got := restored.Query(probe.Clone()).Answer; !reflect.DeepEqual(got, want) {
			t.Errorf("snapshot %d: restored cache answers %v, want %v", i, got, want)
		}
	}
}

func TestQueryCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(175))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 10, Window: 5})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := connectedQuery(rng, db[0], 4)
	if _, err := ig.QueryCtx(ctx, q); err == nil {
		t.Fatal("cancelled context not honoured")
	}
	// A cancelled query leaves no trace: not counted as admitted work.
	if ig.WindowLen() != 0 {
		t.Errorf("cancelled query admitted: window=%d", ig.WindowLen())
	}
	// And the engine still works afterwards.
	o, err := ig.QueryCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.Answer, index.Answer(m, q)) {
		t.Error("post-cancellation query wrong")
	}
}
