package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/index/ggsx"
)

// Property-based tests on the iGQ core invariants (testing/quick).

// TestQuickTheoremHolds: for arbitrary seeds, iGQ(M) answers equal M's
// answers over a containment-rich workload — the correctness theorems as a
// randomized property, complementing the fixed-seed table tests.
func TestQuickTheoremHolds(t *testing.T) {
	f := func(seed int64, cacheSize, window uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := buildDB(rng, 12)
		m := ggsx.New(ggsx.DefaultOptions())
		m.Build(db)
		ig := New(m, db, Options{
			CacheSize: 2 + int(cacheSize%12),
			Window:    1 + int(window%6),
		})
		for _, q := range workload(rng, db, 25) {
			if !reflect.DeepEqual(ig.Query(q).Answer, index.Answer(m, q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickUtilityMonotoneInCost: crediting an entry can only raise its
// utility, and utility decays as time passes without hits.
func TestQuickUtilityMonotoneInCost(t *testing.T) {
	f := func(nodes uint8, targets []uint16) bool {
		e := newEntry(1, tinyGraph(), nil, 0)
		seq := int64(100)
		prev := e.logUtility(seq)
		for _, ts := range targets {
			size := 2 + int(ts%500)
			e.creditHit(2+int(nodes%10), []int{size}, 10)
			cur := e.logUtility(seq)
			if cur < prev { // more credited cost must not lower utility
				return false
			}
			prev = cur
		}
		// aging without hits lowers (or keeps) utility
		return e.logUtility(seq+1000) <= e.logUtility(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvictionOrderSorted: evictionOrder output is non-decreasing in
// utility for arbitrary entry populations.
func TestQuickEvictionOrderSorted(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		seq := int64(len(seeds) * 10)
		var es []*entry
		for i, s := range seeds {
			e := newEntry(int32(i), tinyGraph(), nil, int64(i))
			if s%3 != 0 {
				e.creditHit(3, []int{5 + int(s%100)}, 4)
			}
			es = append(es, e)
		}
		order := evictionOrder(es, seq)
		for i := 1; i < len(order); i++ {
			a, b := order[i-1].logUtility(seq), order[i].logUtility(seq)
			// -Inf == -Inf ties are fine; otherwise non-decreasing
			if !(a <= b || (math.IsInf(a, -1) && math.IsInf(b, -1))) {
				return false
			}
		}
		return len(order) == len(es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickLogSumExpProperties: commutative, monotone, and ≥ max.
func TestQuickLogSumExpProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 1) || math.IsInf(b, 1) {
			return true
		}
		// clamp to a sane range to avoid float64 edge noise
		if a > 700 || a < -700 {
			a = math.Mod(a, 700)
		}
		if b > 700 || b < -700 {
			b = math.Mod(b, 700)
		}
		s1 := LogSumExp(a, b)
		s2 := LogSumExp(b, a)
		if s1 != s2 {
			return false
		}
		return s1 >= math.Max(a, b)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalizeIdempotent: normalizeIDs is idempotent and produces
// strictly increasing output.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(ids []int32) bool {
		once := normalizeIDs(append([]int32(nil), ids...))
		twice := normalizeIDs(append([]int32(nil), once...))
		if !reflect.DeepEqual(once, twice) {
			return false
		}
		for i := 1; i < len(once); i++ {
			if once[i-1] >= once[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
