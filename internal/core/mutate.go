package core

// Dynamic datasets. Cached knowledge is dataset knowledge: every entry's
// answer set lists dataset positions, so a dataset mutation must patch the
// cache or the paper's correctness theorems stop holding (a cached
// supergraph hit would union in a stale answer). The two entry points here
// keep the cache exact under mutation, at O(delta) cost per entry:
//
//   - DatasetAppended extends each cached answer with the appended graphs
//     that match the cached query — one small-graph isomorphism test per
//     (entry, new graph), never a re-verification against the old dataset;
//   - DatasetRemoved rewrites each answer through the swap-removal
//     position mapping (drop removed ids, renumber moved ones) — no
//     isomorphism tests at all.
//
// Both run under the metadata mutex with any in-flight §5.2 shadow build
// drained, patch the committed entries copy-on-write (in-flight queries
// keep reading the old generation's entries), patch the pending window in
// place (window entries are only ever read under the mutex), and install
// one new snapshot in which the dataset, the method generation and the
// patched entries change together. The cache-side Isub/Isuper are *reused*:
// they index the cached query graphs' features, which a dataset mutation
// does not touch.
//
// Entry metadata (hits, removed, logCost) carries over by value. A credit
// computed by a query in flight against the pre-mutation generation may be
// applied to a superseded entry object and lost — harmless (the §5.1
// counters are a replacement heuristic, not answers) and only possible
// under concurrent mutation; sequential histories lose nothing.

import (
	"context"

	"repro/internal/graph"
	"repro/internal/index"
)

// DatasetAppended installs the post-append generation (m, db): every
// cached answer — committed and pending — is extended with the new graphs
// (positions oldLen..len(db)-1) that match the cached query under the
// configured mode. ctx is checked between isomorphism tests; a cancelled
// call leaves the cache exactly as it was.
func (q *IGQ) DatasetAppended(ctx context.Context, m index.Method, db []*graph.Graph, oldLen int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.waitShadowLocked()
	cur := q.snap.Load()

	matches := func(e *entry) ([]int32, error) {
		var add []int32
		for i := oldLen; i < len(db); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var hit bool
			if q.opt.Mode == SupergraphQueries {
				hit = subgraphTest(db[i], e.g)
			} else {
				hit = subgraphTest(e.g, db[i])
			}
			if hit {
				add = append(add, int32(i))
			}
		}
		return add, nil
	}

	// Compute every patch before changing anything, so cancellation (or a
	// future error path) cannot leave the cache half-updated.
	newEntries := make([]*entry, len(cur.entries))
	for i, e := range cur.entries {
		add, err := matches(e)
		if err != nil {
			return err
		}
		newEntries[i] = e.withAnswer(index.UnionSorted(e.answer, add))
	}
	winAdds := make([][]int32, len(q.window))
	for i, e := range q.window {
		add, err := matches(e)
		if err != nil {
			return err
		}
		winAdds[i] = add
	}

	for i, e := range q.window {
		e.answer = index.UnionSorted(e.answer, winAdds[i])
	}
	q.installPatched(cur, newEntries, m, db)
	return nil
}

// DatasetRemoved installs the post-removal generation (m, db): every
// cached answer is rewritten through the swap-removal mapping returned by
// the method's RemoveGraphs (mapping[old] = new position, -1 = removed).
func (q *IGQ) DatasetRemoved(ctx context.Context, m index.Method, db []*graph.Graph, mapping []int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.waitShadowLocked()
	cur := q.snap.Load()

	newEntries := make([]*entry, len(cur.entries))
	for i, e := range cur.entries {
		newEntries[i] = e.withAnswer(index.ApplyMapping(append([]int32(nil), e.answer...), mapping))
	}
	for _, e := range q.window {
		e.answer = index.ApplyMapping(e.answer, mapping)
	}
	q.installPatched(cur, newEntries, m, db)
	return nil
}

// installPatched swaps in a snapshot holding the patched entries over the
// new (m, db) generation, reusing the cache-side indexes (the cached query
// graphs, their features and their slot ids are unchanged). Caller holds
// q.mu.
func (q *IGQ) installPatched(cur *snapshot, entries []*entry, m index.Method, db []*graph.Graph) {
	byID := make(map[int32]*entry, len(entries))
	for _, e := range entries {
		byID[e.id] = e
	}
	// Bumping the generation makes commit drop admissions computed by
	// queries still in flight against the previous generation — their
	// answers reference superseded dataset positions.
	q.snap.Store(&snapshot{db: db, m: m, dbGen: cur.dbGen + 1,
		entries: entries, byID: byID, isub: cur.isub, isuper: cur.isuper})
}
