package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/index/ggsx"
)

// TestShadowBuildPanicContained pins the §5.2 async-build containment
// documented in README.md: a panic inside the background shadow-index
// build must not kill the process, must clear the in-flight latch (so
// later flushes don't block forever), must leave the committed snapshot
// serving, and must surface through Options.PanicHandler. The poison is a
// window entry with a nil query graph — a stand-in for a latent bug that
// only detonates during the rebuild's feature enumeration.
func TestShadowBuildPanicContained(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := buildDB(rng, 15)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)

	panics := make(chan any, 1)
	ig := New(m, db, Options{
		CacheSize: 10, Window: 3, AsyncMaintenance: true,
		PanicHandler: func(r any, stack []byte) {
			if len(stack) == 0 {
				t.Error("PanicHandler got an empty stack")
			}
			panics <- r
		},
	})
	qs := workload(rng, db, 6)
	for _, q := range qs {
		ig.Query(q.Clone())
	}
	probe := qs[0].Clone()
	before := ig.Query(probe.Clone()).Answer
	flushesBefore := ig.Flushes()

	// Plant the poisoned entry and force a flush; the sync part (plan +
	// window reset) succeeds, the async build detonates.
	ig.mu.Lock()
	ig.window = append(ig.window, &entry{id: 9999})
	ig.flushLocked()
	ig.mu.Unlock()

	select {
	case r := <-panics:
		if r == nil {
			t.Fatal("PanicHandler invoked with nil value")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PanicHandler never invoked — the panic escaped or the build hung")
	}

	// The latch was cleared before the handler ran, so nothing can block
	// on the dead build.
	ig.mu.Lock()
	latch := ig.shadowDone
	ig.mu.Unlock()
	if latch != nil {
		t.Fatal("shadowDone latch still set after a panicked build")
	}

	// The committed snapshot keeps serving identical answers, and the
	// poisoned entry died with the failed build (it was only ever in the
	// aborted shadow's entry set).
	if after := ig.Query(probe.Clone()).Answer; !reflect.DeepEqual(after, before) {
		t.Fatalf("answers changed across a contained panic: %v -> %v", before, after)
	}

	// Later flushes proceed normally — the cache keeps earning.
	for _, q := range workload(rng, db, 12) {
		ig.Query(q.Clone())
	}
	ig.mu.Lock()
	ig.waitShadowLocked()
	ig.mu.Unlock()
	if ig.Flushes() <= flushesBefore {
		t.Fatalf("no flush completed after the contained panic (%d)", ig.Flushes())
	}
	if ig.CacheLen() == 0 {
		t.Fatal("cache empty after post-panic flushes")
	}
}
