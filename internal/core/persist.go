package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/index"
)

// Cache persistence: the knowledge iGQ accumulates (query graphs, answer
// sets, replacement metadata) is expensive to re-earn, so a production
// deployment wants it to survive restarts. Save/Load serialise the active
// cache entries with encoding/gob; the cache-side indexes are rebuilt on
// load (they are derived state, exactly like the paper's shadow rebuild).
//
// The dataset itself is NOT serialised: answers reference dataset positions,
// so a snapshot is only valid for the same dataset (guarded by a checksum).

// wireSnapshot is the gob envelope.
type wireSnapshot struct {
	Version    int
	DBChecksum uint64
	Seq        int64
	NextID     int32
	Flushes    int
	Entries    []wireEntry
	// DictKeys is the feature dictionary in ID order (version ≥ 2).
	// Re-interning the keys in order reproduces the same FeatureIDs, so a
	// restored standalone cache assigns identical IDs to identical
	// features. When the dictionary is shared with an already-built method
	// index the keys are merged into it instead (IDs may then differ —
	// they are process-local handles; all persisted state is keyed by
	// canonical strings, never by raw IDs).
	DictKeys []string
	// Shards is the postings shard layout of the cache-side indexes
	// (version ≥ 3), so a snapshot restored on another machine rebuilds
	// the same store geometry instead of that machine's default. Zero in
	// v1/v2 snapshots — Load falls back to the default shard count, which
	// is harmless: sharding never affects observable state.
	Shards int
}

// wireEntry serialises one cache entry.
type wireEntry struct {
	ID         int32
	Labels     []graph.Label
	Edges      [][2]int32
	Answer     []int32
	InsertedAt int64
	Hits       int64
	Removed    int64
	LogCost    float64
}

const snapshotVersion = 3

// dbChecksum fingerprints the dataset a snapshot belongs to — the shared
// construction also embedded in dataset-index snapshots (index.DBChecksum),
// so the cache and index halves of a combined engine snapshot guard against
// the same divergence the same way.
func dbChecksum(db []*graph.Graph) uint64 { return index.DBChecksum(db) }

// Save writes the current cache contents to w. Any queries still pending
// in the credit window are flushed (admitted through the §5.1 replacement
// policy) first: knowledge paid for before shutdown must survive the
// restart, not evaporate because fewer than Window queries arrived since
// the last flush. Safe to call while queries are in flight: the metadata
// mutex is held for the whole encode, so the snapshot is consistent — it
// excludes any admission or credit that had not yet committed, waits for
// an in-flight §5.2 shadow build so it reflects the latest flush, and
// blocks further flushes until done.
func (q *IGQ) Save(w io.Writer) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.waitShadowLocked()
	if len(q.window) > 0 {
		// Flush the partial window so pending entries are committed into
		// the snapshot, then wait out the (possibly async) index build so
		// snap.Load() observes the result.
		q.flushLocked()
		q.waitShadowLocked()
	}
	cur := q.snap.Load()
	snap := wireSnapshot{
		Version:    snapshotVersion,
		DBChecksum: dbChecksum(cur.db),
		Seq:        q.seq.Load(),
		NextID:     q.nextID,
		Flushes:    q.flushes,
		Shards:     cur.isub.tr.ShardCount(), // the layout actually in use
	}
	if !q.methodDict {
		// Only a private dictionary is worth persisting: it round-trips to
		// identical IDs. A method-owned dictionary carries the whole
		// dataset vocabulary and is rebuilt by the method itself on load.
		snap.DictKeys = q.dict.Keys()
	}
	for _, e := range cur.entries {
		we := wireEntry{
			ID:         e.id,
			Labels:     e.g.Labels(),
			Answer:     append([]int32(nil), e.answer...),
			InsertedAt: e.insertedAt,
			Hits:       e.hits.Load(),
			Removed:    e.removed.Load(),
			LogCost:    e.loadLogCost(),
		}
		e.g.Edges(func(u, v int) {
			we.Edges = append(we.Edges, [2]int32{int32(u), int32(v)})
		})
		snap.Entries = append(snap.Entries, we)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores a cache snapshot into a fresh IGQ over the same dataset and
// method. opt must carry the desired runtime configuration (CacheSize,
// Window, Mode...); entries beyond CacheSize are dropped lowest-utility
// first.
func Load(r io.Reader, m index.Method, db []*graph.Graph, opt Options) (*IGQ, error) {
	var snap wireSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d unsupported", snap.Version)
	}
	if snap.DBChecksum != dbChecksum(db) {
		return nil, fmt.Errorf("core: snapshot belongs to a different dataset")
	}
	if opt.Shards == 0 && snap.Shards > 0 {
		// Version ≥ 3 snapshots carry the shard layout; restore it unless
		// the caller explicitly re-shards.
		opt.Shards = snap.Shards
	}
	q := New(m, db, opt)
	// Restore the feature dictionary before rebuilding the indexes: with a
	// fresh (unshared) dictionary, interning the saved keys in order
	// reproduces the exact ID assignment of the saving process. Version-1
	// snapshots carry no dictionary; the rebuild below re-derives it.
	for _, k := range snap.DictKeys {
		q.dict.Intern(k)
	}
	q.seq.Store(snap.Seq)
	q.nextID = snap.NextID
	q.flushes = snap.Flushes
	var entries []*entry
	for _, we := range snap.Entries {
		g := graph.New(len(we.Labels))
		for _, l := range we.Labels {
			g.AddVertex(l)
		}
		for _, e := range we.Edges {
			if !g.AddEdge(int(e[0]), int(e[1])) {
				return nil, fmt.Errorf("core: snapshot entry %d has invalid edge (%d,%d)", we.ID, e[0], e[1])
			}
		}
		for _, a := range we.Answer {
			if int(a) >= len(db) || a < 0 {
				return nil, fmt.Errorf("core: snapshot entry %d references graph %d outside the dataset", we.ID, a)
			}
		}
		ent := newEntry(we.ID, g, we.Answer, we.InsertedAt)
		ent.setMetadata(we.Hits, we.Removed, we.LogCost)
		entries = append(entries, ent)
	}
	if over := len(entries) - q.opt.CacheSize; over > 0 {
		order := evictionOrder(entries, q.seq.Load())
		drop := map[int32]struct{}{}
		for _, e := range order[:over] {
			drop[e.id] = struct{}{}
		}
		kept := entries[:0]
		for _, e := range entries {
			if _, gone := drop[e.id]; !gone {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	q.installEntries(entries, m, db)
	return q, nil
}
