package core

import (
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/trie"
)

// subIndex is Isub: a subgraph index over the *cached query graphs*. It is
// the familiar filter-then-verify construction — the paper points out that
// finding supergraphs of a new query among previous queries "represents a
// microcosm of our original problem", so any subgraph indexing method works;
// like the dataset baselines we index labeled paths with occurrence counts.
//
// Given a new query g, candidates are cached graphs containing every path
// feature of g at least as often as g does; the caller verifies g ⊆ G to
// obtain Isub(g) (which makes formula (1) hold by construction). Postings
// are keyed by interned FeatureID; the feature dictionary is shared with
// Isuper (and, when the wrapped method exposes one, with the dataset index),
// so one enumeration of the query serves every probe.
type subIndex struct {
	tr  *trie.Trie
	ids []int32 // all indexed entry ids, sorted
}

// newSubIndex returns an empty Isub whose features are interned through d,
// with the given postings shard count (0 = trie.DefaultShards()).
func newSubIndex(d *features.Dict, shards int) *subIndex {
	return &subIndex{tr: trie.NewSharded(d, shards)}
}

// add indexes one cached graph's pre-enumerated features.
func (si *subIndex) add(id int32, qf features.IDSet) {
	si.ids = append(si.ids, id)
	for _, fc := range qf.Counts {
		si.tr.InsertID(fc.ID, trie.Posting{Graph: id, Count: fc.Count})
	}
}

// finish sorts the id universe after all entries were added.
func (si *subIndex) finish() { sortIDs(si.ids) }

// candidates returns the ids of cached graphs that may be supergraphs of a
// query with the given path-feature occurrences, via the shared
// selectivity-ordered count filter (index.FilterCountGE). The result may
// alias s and is valid until the scratch is reused. Each in-flight query
// owns a private scratch set (IGQ's free list) holding one scratch per
// cache-side index, so concurrent queries never share s and Isub/Isuper
// results coexist within one query. The index itself is immutable after
// finish, so any number of queries may probe it concurrently.
func (si *subIndex) candidates(qf features.IDSet, s *index.CountFilterScratch) []int32 {
	if len(qf.Counts) == 0 && qf.Unknown == 0 {
		// an empty query is a subgraph of every cached graph
		return si.ids
	}
	return index.FilterCountGE(si.tr, qf, s)
}

// SizeBytes approximates the Isub trie footprint.
func (si *subIndex) SizeBytes() int { return si.tr.SizeBytes() + 4*len(si.ids) }

// verifySub confirms q ⊆ G for a candidate entry (removing Isub false
// positives, per the paper's §6.1).
func verifySub(q, cached *graph.Graph) bool {
	return subgraphTest(q, cached)
}
