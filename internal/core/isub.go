package core

import (
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/trie"
)

// subIndex is Isub: a subgraph index over the *cached query graphs*. It is
// the familiar filter-then-verify construction — the paper points out that
// finding supergraphs of a new query among previous queries "represents a
// microcosm of our original problem", so any subgraph indexing method works;
// like the dataset baselines we index labeled paths with occurrence counts.
//
// Given a new query g, candidates are cached graphs containing every path
// feature of g at least as often as g does; the caller verifies g ⊆ G to
// obtain Isub(g) (which makes formula (1) hold by construction).
type subIndex struct {
	tr  *trie.Trie
	ids []int32 // all indexed entry ids, sorted
}

// newSubIndex builds Isub over the given entries' graphs using path
// features of up to maxPathLen edges. Feature sets are supplied by the
// caller (entryFeatures) so that a single enumeration per cached graph
// serves both Isub and Isuper during a shadow rebuild.
func newSubIndex(entries []*entry, entryFeatures map[int32]map[string]int) *subIndex {
	si := &subIndex{tr: trie.New()}
	for _, e := range entries {
		si.ids = append(si.ids, e.id)
		for f, c := range entryFeatures[e.id] {
			si.tr.Insert(f, trie.Posting{Graph: e.id, Count: int32(c)})
		}
	}
	si.ids = sortIDs(si.ids)
	return si
}

// candidates returns the ids of cached graphs that may be supergraphs of a
// query with the given path-feature occurrence counts.
func (si *subIndex) candidates(qCounts map[string]int) []int32 {
	if len(qCounts) == 0 {
		// an empty query is a subgraph of every cached graph
		return append([]int32(nil), si.ids...)
	}
	var cand []int32
	first := true
	for f, need := range qCounts {
		var ids []int32
		for _, p := range si.tr.Get(f) {
			if int(p.Count) >= need {
				ids = append(ids, p.Graph)
			}
		}
		if first {
			cand = ids
			first = false
		} else {
			cand = index.IntersectSorted(cand, ids)
		}
		if len(cand) == 0 {
			return nil
		}
	}
	return cand
}

// SizeBytes approximates the Isub trie footprint.
func (si *subIndex) SizeBytes() int { return si.tr.SizeBytes() + 4*len(si.ids) }

// verifySub confirms q ⊆ G for a candidate entry (removing Isub false
// positives, per the paper's §6.1).
func verifySub(q, cached *graph.Graph) bool {
	return subgraphTest(q, cached)
}
