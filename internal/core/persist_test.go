package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/index/ggsx"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 15, Window: 3})
	for _, q := range workload(rng, db, 40) {
		ig.Query(q)
	}
	if ig.CacheLen() == 0 {
		t.Fatal("nothing cached — test premise broken")
	}

	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, m, db, Options{CacheSize: 15, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if restored.CacheLen() != ig.CacheLen() {
		t.Fatalf("cache length %d != %d after restore", restored.CacheLen(), ig.CacheLen())
	}
	if restored.Queries() != ig.Queries() || restored.Flushes() != ig.Flushes() {
		t.Error("counters not restored")
	}

	// behavioural equivalence: identical hits fire identically
	for _, e := range ig.snap.Load().entries[:3] {
		a := ig.Query(e.g.Clone())
		b := restored.Query(e.g.Clone())
		if a.Short != IdenticalHit || b.Short != IdenticalHit {
			t.Fatalf("cached query not identical-hit after restore: %v vs %v", a.Short, b.Short)
		}
		if !reflect.DeepEqual(a.Answer, b.Answer) {
			t.Fatal("restored cache returns different answers")
		}
	}
}

func TestDictionaryRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	db := buildDB(rng, 15)
	// BruteForce shares no dictionary, so the IGQ owns a private one and a
	// restore must reproduce the exact key → FeatureID assignment.
	m := index.NewBruteForce()
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 10, Window: 2})
	for _, q := range workload(rng, db, 20) {
		ig.Query(q)
	}
	if ig.dict.Len() == 0 {
		t.Fatal("dictionary empty — test premise broken")
	}

	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := index.NewBruteForce()
	m2.Build(db)
	restored, err := Load(&buf, m2, db, Options{CacheSize: 10, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.dict.Keys(), ig.dict.Keys()) {
		t.Fatalf("dictionary did not round-trip: %d keys vs %d",
			restored.dict.Len(), ig.dict.Len())
	}
	for _, k := range ig.dict.Keys() {
		a, _ := ig.dict.Lookup(k)
		b, ok := restored.dict.Lookup(k)
		if !ok || a != b {
			t.Fatalf("key %q: id %d vs %d (ok=%v)", k, a, b, ok)
		}
	}
}

func TestLoadRejectsWrongDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	db := buildDB(rng, 10)
	other := buildDB(rng, 10)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 5, Window: 1})
	ig.Query(connectedQuery(rng, db[0], 3))

	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := ggsx.New(ggsx.DefaultOptions())
	m2.Build(other)
	if _, err := Load(&buf, m2, other, Options{}); err == nil {
		t.Error("snapshot accepted for a different dataset")
	} else if !strings.Contains(err.Error(), "different dataset") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	db := buildDB(rng, 5)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	if _, err := Load(bytes.NewBufferString("not a snapshot"), m, db, Options{}); err == nil {
		t.Error("garbage decoded successfully")
	}
}

func TestLoadShrinksToCacheSize(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	db := buildDB(rng, 15)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 12, Window: 2})
	for _, q := range workload(rng, db, 30) {
		ig.Query(q)
	}
	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	small, err := Load(&buf, m, db, Options{CacheSize: 4, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if small.CacheLen() > 4 {
		t.Errorf("restored cache %d exceeds configured size 4", small.CacheLen())
	}
	// restored engine still answers correctly
	q := connectedQuery(rng, db[3], 4)
	want := small.Query(q).Answer
	got := ig.Query(q.Clone()).Answer
	if !reflect.DeepEqual(want, got) {
		t.Error("answers diverge after shrinking restore")
	}
}

func TestSaveFlushesWindow(t *testing.T) {
	// Regression: Save used to snapshot committed entries only, silently
	// dropping queries still pending in the credit window — knowledge paid
	// for before shutdown evaporated on restart. Save now flushes the
	// partial window first.
	rng := rand.New(rand.NewSource(95))
	db := buildDB(rng, 10)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 10, Window: 5})
	q := connectedQuery(rng, db[0], 3)
	ig.Query(q.Clone()) // stays in window (W=5)
	if ig.WindowLen() != 1 || ig.CacheLen() != 0 {
		t.Fatalf("premise: window=%d cache=%d", ig.WindowLen(), ig.CacheLen())
	}
	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if ig.WindowLen() != 0 || ig.CacheLen() != 1 {
		t.Errorf("after Save: window=%d cache=%d, want flushed 0/1",
			ig.WindowLen(), ig.CacheLen())
	}
	restored, err := Load(&buf, m, db, Options{CacheSize: 10, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if restored.CacheLen() != 1 || restored.WindowLen() != 0 {
		t.Fatalf("restored: cache=%d window=%d, want the flushed entry committed",
			restored.CacheLen(), restored.WindowLen())
	}
	// The pre-shutdown query must be a §4.3 identical hit after restart.
	out := restored.Query(q.Clone())
	if out.Short != IdenticalHit {
		t.Errorf("restored cache missed the pre-shutdown query (short=%v)", out.Short)
	}
}

func TestGraphCorruptionRejected(t *testing.T) {
	// hand-craft a snapshot with an out-of-range answer id
	rng := rand.New(rand.NewSource(96))
	db := buildDB(rng, 5)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 5, Window: 1})
	ig.Query(connectedQuery(rng, db[0], 3))
	// corrupt the in-memory answer then save
	ig.snap.Load().entries[0].answer = []int32{999}
	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, m, db, Options{}); err == nil {
		t.Error("out-of-range answer id accepted")
	}
}
