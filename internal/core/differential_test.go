package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/iso"
	wl "repro/internal/workload"
)

// superRefMethod mirrors index/contain (which cannot be imported from an
// in-package test): a supergraph method over ContainmentIndex, exposing the
// shared-dictionary fast path.
type superRefMethod struct {
	db []*graph.Graph
	ci *ContainmentIndex
}

func newSuperRefMethod() *superRefMethod {
	return &superRefMethod{ci: NewContainmentIndex(4)}
}

func (x *superRefMethod) Name() string { return "ContainRef" }
func (x *superRefMethod) Build(db []*graph.Graph) {
	x.db = db
	for i, g := range db {
		x.ci.Add(int32(i), g)
	}
}
func (x *superRefMethod) Filter(q *graph.Graph) []int32 { return x.ci.CandidateSubgraphs(q) }
func (x *superRefMethod) Verify(q *graph.Graph, id int32) bool {
	return iso.Subgraph(x.db[id], q)
}
func (x *superRefMethod) SizeBytes() int                 { return x.ci.SizeBytes() }
func (x *superRefMethod) FeatureDict() *features.Dict    { return x.ci.Dict() }
func (x *superRefMethod) FeatureMaxPathLen() int         { return x.ci.MaxPathLen() }
func (x *superRefMethod) FilterByFeatureCounts(qf features.IDSet) []int32 {
	return x.ci.CandidatesFromIDSet(qf)
}

// The seed implementation computed candidates from string-keyed feature
// maps. This file keeps that path alive as a reference oracle: before every
// Query, refOutcome recomputes the answer and the pruning counters over the
// IGQ's current cache snapshot using brute-force string-feature comparisons
// and the method's legacy Filter, and the outcome of the interned-ID
// pipeline must match it exactly.

// refFeatures enumerates string-keyed path features (the seed representation).
func refFeatures(g *graph.Graph, maxLen int) map[string]int {
	return features.Paths(g, features.PathOptions{MaxLen: maxLen}).Counts
}

// refOutcome replays the Fig 6 pipeline over q's indexed entries with
// string-based feature filtering. It must not mutate q.
func refOutcome(q *IGQ, g *graph.Graph) (answer []int32, subHits, superHits, finalCands int, short ShortCircuit) {
	maxLen := q.opt.MaxPathLen
	qCounts := refFeatures(g, maxLen)
	qfp := graph.Fingerprint(g)

	entryFeats := make(map[int32]map[string]int, len(q.snap.Load().entries))
	for _, e := range q.snap.Load().entries {
		entryFeats[e.id] = refFeatures(e.g, maxLen)
	}

	// Candidate generation, seed-style: brute-force count comparisons.
	var subCands, superCands []int32
	if !q.opt.DisableSub {
		for _, e := range q.snap.Load().entries {
			ok := true
			for f, need := range qCounts {
				if entryFeats[e.id][f] < need {
					ok = false
					break
				}
			}
			if ok {
				subCands = append(subCands, e.id)
			}
		}
	}
	if !q.opt.DisableSuper {
		for _, e := range q.snap.Load().entries {
			ok := true
			for f, o := range entryFeats[e.id] {
				if qCounts[f] < o {
					ok = false
					break
				}
			}
			if ok {
				superCands = append(superCands, e.id)
			}
		}
	}
	sortIDs(subCands)
	sortIDs(superCands)

	cs := normalizeIDs(q.m.Filter(g))

	nv, ne := g.NumVertices(), g.NumEdges()
	sameSize := func(e *entry) bool { return e.g.NumVertices() == nv && e.g.NumEdges() == ne }

	for _, id := range index.UnionSorted(subCands, superCands) {
		e := q.snap.Load().byID[id]
		if sameSize(e) && e.fp == qfp && subgraphTest(g, e.g) {
			if len(e.answer) > 0 {
				answer = append([]int32(nil), e.answer...)
			}
			return answer, 1, 1, 0, IdenticalHit
		}
	}

	subIsUnion := q.opt.Mode == SubgraphQueries
	var subEntries, superEntries []*entry
	for _, id := range subCands {
		e := q.snap.Load().byID[id]
		if sameSize(e) || (subIsUnion && len(e.answer) == 0) {
			continue
		}
		if subgraphTest(g, e.g) {
			subEntries = append(subEntries, e)
		}
	}
	for _, id := range superCands {
		e := q.snap.Load().byID[id]
		if sameSize(e) || (!subIsUnion && len(e.answer) == 0) {
			continue
		}
		if subgraphTest(e.g, g) {
			superEntries = append(superEntries, e)
		}
	}
	subHits, superHits = len(subEntries), len(superEntries)

	unionSide, intersectSide := subEntries, superEntries
	if q.opt.Mode == SupergraphQueries {
		unionSide, intersectSide = superEntries, subEntries
	}
	for _, e := range intersectSide {
		if len(e.answer) == 0 {
			return nil, subHits, superHits, 0, EmptyAnswerHit
		}
	}

	pruned := cs
	for _, e := range unionSide {
		pruned = index.SubtractSorted(pruned, e.answer)
	}
	for _, e := range intersectSide {
		pruned = index.IntersectSorted(pruned, e.answer)
	}
	finalCands = len(pruned)

	var verified []int32
	for _, id := range pruned {
		if q.m.Verify(g, id) {
			verified = append(verified, id)
		}
	}
	answer = verified
	for _, e := range unionSide {
		answer = index.UnionSorted(answer, e.answer)
	}
	if len(answer) == 0 {
		answer = nil
	}
	return answer, subHits, superHits, finalCands, NoShortCircuit
}

// diffWorkload mixes the §7.1 generator with nested BFS prefixes so the
// stream is rich in identical, subgraph and supergraph relationships.
func diffWorkload(rng *rand.Rand, db []*graph.Graph, n int) []*graph.Graph {
	spec := wl.Spec{NumQueries: n / 2, GraphDist: wl.Zipf, NodeDist: wl.Zipf, Alpha: 1.6, Seed: rng.Int63()}
	var qs []*graph.Graph
	for _, wq := range wl.Generate(db, spec) {
		qs = append(qs, wq.G)
	}
	qs = append(qs, workload2(rng, db, n-len(qs))...)
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

// workload2 emits nested prefix families (same shape as igq_test's helper).
func workload2(rng *rand.Rand, db []*graph.Graph, n int) []*graph.Graph {
	var qs []*graph.Graph
	for len(qs) < n {
		g := db[rng.Intn(len(db))]
		if g.NumVertices() == 0 {
			continue
		}
		order := g.BFSOrder(rng.Intn(g.NumVertices()))
		for _, k := range []int{2, 3, 5} {
			if len(qs) == n {
				break
			}
			if k > len(order) {
				k = len(order)
			}
			sub, _ := g.InducedSubgraph(order[:k])
			qs = append(qs, sub)
		}
	}
	return qs
}

func runDifferential(t *testing.T, m index.Method, mode Mode, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := buildDB(rng, 30)
	m.Build(db)
	q := New(m, db, Options{CacheSize: 20, Window: 5, Mode: mode})
	for i, g := range diffWorkload(rng, db, 120) {
		wantAns, wantSub, wantSuper, wantFinal, wantShort := refOutcome(q, g)
		out := q.Query(g)
		if !reflect.DeepEqual(out.Answer, wantAns) {
			t.Fatalf("query %d: Answer = %v, reference %v", i, out.Answer, wantAns)
		}
		if out.SubHits != wantSub || out.SuperHits != wantSuper {
			t.Fatalf("query %d: hits = (%d,%d), reference (%d,%d)",
				i, out.SubHits, out.SuperHits, wantSub, wantSuper)
		}
		if out.FinalCandidates != wantFinal {
			t.Fatalf("query %d: FinalCandidates = %d, reference %d", i, out.FinalCandidates, wantFinal)
		}
		if out.Short != wantShort {
			t.Fatalf("query %d: Short = %v, reference %v", i, out.Short, wantShort)
		}
	}
}

func TestDifferentialVsStringPipelineGGSX(t *testing.T) {
	runDifferential(t, ggsx.New(ggsx.DefaultOptions()), SubgraphQueries, 1)
}

func TestDifferentialVsStringPipelineGrapes(t *testing.T) {
	runDifferential(t, grapes.New(grapes.DefaultOptions()), SubgraphQueries, 2)
}

func TestDifferentialVsStringPipelineSupergraph(t *testing.T) {
	runDifferential(t, newSuperRefMethod(), SupergraphQueries, 3)
}

func TestDifferentialBruteForceNoDict(t *testing.T) {
	// BruteForce exposes no dictionary, exercising the unshared-dict path
	// where iGQ owns a private interner and falls back to m.Filter.
	runDifferential(t, index.NewBruteForce(), SubgraphQueries, 4)
}
