package core

import (
	"math"
)

// Subgraph-isomorphism cost model (paper §5.1).
//
// The paper extends the VF asymptotic analysis of Cordella et al. [8] to
// subgraph isomorphism: for graphs over L labels, a query g′ with n nodes
// and a dataset graph Gi with Ni ≥ n nodes,
//
//	c(g′, Gi) = Ni · Ni! / (L^(n+1) · (Ni−n)!)
//
// Ni! overflows float64 already at Ni = 171 while PDBS-like graphs have
// thousands of vertices, so all costs are kept in natural-log space:
//
//	ln c = ln Ni + lnΓ(Ni+1) − (n+1)·ln L − lnΓ(Ni−n+1)
//
// Per-entry totals C(g) are accumulated with log-sum-exp, and the utility
// U(g) = C(g)/M(g) is compared as ln U = ln C − ln M (log is monotone, so
// orderings — all the replacement policy needs — are preserved exactly).

// LogIsoCost returns ln c(g′, Gi) for a query with queryNodes vertices, a
// dataset graph with targetNodes vertices, and a label domain of size
// labels. If targetNodes < queryNodes the test trivially fails and the cost
// is -Inf (zero). labels < 2 degrades gracefully to ln L = 0.
func LogIsoCost(queryNodes, targetNodes, labels int) float64 {
	if targetNodes < queryNodes || targetNodes <= 0 {
		return math.Inf(-1)
	}
	n := float64(queryNodes)
	ni := float64(targetNodes)
	logL := 0.0
	if labels > 1 {
		logL = math.Log(float64(labels))
	}
	lgNi, _ := math.Lgamma(ni + 1)
	lgRem, _ := math.Lgamma(ni - n + 1)
	return math.Log(ni) + lgNi - (n+1)*logL - lgRem
}

// LogSumExp returns ln(e^a + e^b), the log-space accumulator used for C(g).
// Either argument may be -Inf (an absent term).
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
