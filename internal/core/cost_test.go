package core

import (
	"math"
	"testing"
)

func TestLogIsoCostSmallValuesMatchDirect(t *testing.T) {
	// for small Ni the closed form is computable directly:
	// c = Ni * Ni! / (L^(n+1) * (Ni-n)!)
	fact := func(n int) float64 {
		f := 1.0
		for i := 2; i <= n; i++ {
			f *= float64(i)
		}
		return f
	}
	cases := []struct{ n, ni, l int }{
		{2, 5, 3}, {3, 8, 2}, {1, 4, 10}, {4, 4, 2}, {5, 20, 6},
	}
	for _, c := range cases {
		direct := float64(c.ni) * fact(c.ni) / (math.Pow(float64(c.l), float64(c.n+1)) * fact(c.ni-c.n))
		got := LogIsoCost(c.n, c.ni, c.l)
		want := math.Log(direct)
		if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-9 {
			t.Errorf("LogIsoCost(%d,%d,%d) = %v, want %v", c.n, c.ni, c.l, got, want)
		}
	}
}

func TestLogIsoCostInfeasible(t *testing.T) {
	if !math.IsInf(LogIsoCost(5, 3, 2), -1) {
		t.Error("target smaller than query should cost -Inf")
	}
	if !math.IsInf(LogIsoCost(1, 0, 2), -1) {
		t.Error("empty target should cost -Inf")
	}
}

func TestLogIsoCostNoOverflowOnHugeGraphs(t *testing.T) {
	// PDBS-scale graphs: thousands of vertices — the raison d'être of the
	// log-space formulation.
	got := LogIsoCost(20, 16431, 10)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("huge-graph cost not finite: %v", got)
	}
	if got <= 0 {
		t.Errorf("huge-graph log-cost suspiciously small: %v", got)
	}
}

func TestLogIsoCostMonotoneInTargetSize(t *testing.T) {
	prev := LogIsoCost(10, 50, 5)
	for ni := 100; ni <= 3200; ni *= 2 {
		cur := LogIsoCost(10, ni, 5)
		if cur <= prev {
			t.Fatalf("cost not increasing with target size at Ni=%d", ni)
		}
		prev = cur
	}
}

func TestLogIsoCostSingleLabelDomain(t *testing.T) {
	// L <= 1 must degrade to ln L = 0, not NaN
	got := LogIsoCost(2, 4, 1)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("L=1 cost = %v", got)
	}
	if g0 := LogIsoCost(2, 4, 0); g0 != got {
		t.Errorf("L=0 should behave like L=1: %v vs %v", g0, got)
	}
}

func TestLogSumExp(t *testing.T) {
	negInf := math.Inf(-1)
	if got := LogSumExp(negInf, negInf); !math.IsInf(got, -1) {
		t.Errorf("LSE(-Inf,-Inf) = %v", got)
	}
	if got := LogSumExp(negInf, 3); got != 3 {
		t.Errorf("LSE(-Inf,3) = %v", got)
	}
	if got := LogSumExp(2, negInf); got != 2 {
		t.Errorf("LSE(2,-Inf) = %v", got)
	}
	// ln(e^1 + e^1) = 1 + ln 2
	want := 1 + math.Log(2)
	if got := LogSumExp(1, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("LSE(1,1) = %v, want %v", got, want)
	}
	// asymmetric, large spread: should be ≈ max
	if got := LogSumExp(1000, 1); math.Abs(got-1000) > 1e-9 {
		t.Errorf("LSE(1000,1) = %v", got)
	}
	// order independence
	if LogSumExp(5, 7) != LogSumExp(7, 5) {
		t.Error("LSE not symmetric")
	}
}

func TestEntryUtilityOrdering(t *testing.T) {
	// an entry with credited hits must out-rank one without
	a := newEntry(1, tinyGraph(), nil, 0)
	b := newEntry(2, tinyGraph(), nil, 0)
	a.creditHit(4, []int{100, 200}, 10)
	seq := int64(50)
	if a.logUtility(seq) <= b.logUtility(seq) {
		t.Error("credited entry should have higher utility")
	}
	// same cost, older entry (larger M) has lower utility
	c := newEntry(3, tinyGraph(), nil, 0)
	d := newEntry(4, tinyGraph(), nil, 40)
	c.creditHit(4, []int{100}, 10)
	d.creditHit(4, []int{100}, 10)
	if c.logUtility(seq) >= d.logUtility(seq) {
		t.Error("older entry with equal cost should have lower utility")
	}
}

func TestEvictionOrderDeterministicTies(t *testing.T) {
	es := []*entry{
		newEntry(5, tinyGraph(), nil, 10),
		newEntry(2, tinyGraph(), nil, 10),
		newEntry(9, tinyGraph(), nil, 3),
	}
	order := evictionOrder(es, 20)
	// all have -Inf utility; oldest first (insertedAt 3), then id order
	if order[0].id != 9 || order[1].id != 2 || order[2].id != 5 {
		t.Errorf("eviction order = %d,%d,%d", order[0].id, order[1].id, order[2].id)
	}
}

func TestEntryCreditAccounting(t *testing.T) {
	e := newEntry(1, tinyGraph(), nil, 0)
	e.creditHit(4, []int{10, 20, 30}, 5)
	e.creditHit(4, nil, 5) // a hit that removed nothing still counts as a hit
	if got := e.hits.Load(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := e.removed.Load(); got != 3 {
		t.Errorf("removed = %d, want 3", got)
	}
	if math.IsInf(e.loadLogCost(), -1) {
		t.Error("logCost still -Inf after credited removals")
	}
}
