package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/index/ggsx"
)

// TestSnapshotShardLayoutRoundTrips: a v3 snapshot records the postings
// shard layout of the cache-side indexes and Load restores it, unless the
// caller explicitly re-shards.
func TestSnapshotShardLayoutRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 15, Window: 3, Shards: 16})
	for _, q := range workload(rng, db, 30) {
		ig.Query(q)
	}
	if got := ig.snap.Load().isub.tr.ShardCount(); got != 16 {
		t.Fatalf("isub shard count = %d, want 16", got)
	}

	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), m, db, Options{CacheSize: 15, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.snap.Load().isub.tr.ShardCount(); got != 16 {
		t.Errorf("restored isub shard count = %d, want the snapshot's 16", got)
	}
	if got := restored.snap.Load().isuper.tr.ShardCount(); got != 16 {
		t.Errorf("restored isuper shard count = %d, want the snapshot's 16", got)
	}

	// An explicit shard count on Load overrides the snapshot layout.
	resharded, err := Load(bytes.NewReader(buf.Bytes()), m, db, Options{CacheSize: 15, Window: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := resharded.snap.Load().isub.tr.ShardCount(); got != 4 {
		t.Errorf("re-sharded isub shard count = %d, want 4", got)
	}
}

// TestLoadAcceptsV2Snapshot: pre-shard snapshots (version 2, no Shards
// field) still load, falling back to the default layout, with answers
// intact.
func TestLoadAcceptsV2Snapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db := buildDB(rng, 20)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 15, Window: 3})
	queries := workload(rng, db, 30)
	for _, q := range queries {
		ig.Query(q)
	}
	if ig.CacheLen() == 0 {
		t.Fatal("nothing cached — test premise broken")
	}

	// Re-encode the current state as a version-2 snapshot: decode the v3
	// wire form and strip the fields v2 lacked.
	var buf bytes.Buffer
	if err := ig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap wireSnapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 2
	snap.Shards = 0
	var v2 bytes.Buffer
	if err := gob.NewEncoder(&v2).Encode(snap); err != nil {
		t.Fatal(err)
	}

	restored, err := Load(&v2, m, db, Options{CacheSize: 15, Window: 3})
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if restored.CacheLen() != ig.CacheLen() {
		t.Fatalf("cache length %d != %d after v2 restore", restored.CacheLen(), ig.CacheLen())
	}
	for _, q := range queries[:5] {
		a, b := ig.Query(q.Clone()), restored.Query(q.Clone())
		if !reflect.DeepEqual(a.Answer, b.Answer) {
			t.Fatal("v2-restored cache returns different answers")
		}
	}
}
