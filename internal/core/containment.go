package core

import (
	"sync"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/trie"
)

// ContainmentIndex is the paper's novel supergraph index (Algorithms 1 and
// 2): a trie over the features of a set of indexed graphs that, given a
// query graph g, returns the candidate indexed graphs that may be
// *subgraphs* of g.
//
// For each indexed graph gi, the index stores every feature f of gi with its
// occurrence count o as a posting {gi, o} (Algorithm 1), plus NF[gi], the
// number of distinct features of gi. A query g with feature occurrences
// O[f, g] produces candidates gi for which every feature of gi appears in g
// with o ≤ O[f, g] — realised, exactly as in Algorithm 2, by counting for
// each gi the features that pass the occurrence test and keeping gi iff the
// count equals NF[gi]. The candidate set has no false negatives (see the
// paper's §6.2 argument); callers verify gi ⊆ g to remove false positives.
//
// Postings are probed by interned FeatureID. Query features unknown to the
// dictionary are harmless here: they can only make the query *larger*, and
// Algorithm 2 only requires every *indexed* feature to appear in the query.
//
// iGQ uses a ContainmentIndex over cached query graphs as Isuper; package
// index/contain wraps one over the dataset graphs to obtain a standalone
// supergraph query processing method (the paper's §4.4 Msuper).
type ContainmentIndex struct {
	maxPathLen int
	tr         *trie.Trie
	nf         map[int32]int // NF[gi]: distinct feature count per graph

	// pool of scratch state for the public standalone entry points; iGQ's
	// hot path passes a per-query scratch from its own free list instead.
	// A built index is immutable — dataset mutation goes through the
	// copy-on-write NewMutation/ApplyMutation pair — so lookups are
	// concurrency-safe.
	pool sync.Pool
}

// ciScratch is the reusable state of one Algorithm 2 pass.
type ciScratch struct {
	feat    *features.Scratch
	matched map[int32]int32
	res     []int32
}

// NewContainmentIndex returns an empty containment index with a private
// feature dictionary, using labeled simple paths of up to maxPathLen edges
// as the feature family.
func NewContainmentIndex(maxPathLen int) *ContainmentIndex {
	return NewContainmentIndexWithDict(maxPathLen, features.NewDict())
}

// NewContainmentIndexWithDict returns an empty containment index whose
// features are interned through d (shared with other indexes over the same
// feature family), with the default postings shard count.
func NewContainmentIndexWithDict(maxPathLen int, d *features.Dict) *ContainmentIndex {
	return NewContainmentIndexSharded(maxPathLen, d, 0)
}

// NewContainmentIndexSharded is NewContainmentIndexWithDict with an
// explicit postings shard count (0 = trie.DefaultShards()).
func NewContainmentIndexSharded(maxPathLen int, d *features.Dict, shards int) *ContainmentIndex {
	if maxPathLen <= 0 {
		maxPathLen = 4
	}
	return newContainmentIndex(maxPathLen, trie.NewSharded(d, shards), make(map[int32]int))
}

// newContainmentIndex assembles an index around an existing trie and NF
// table (the constructors and the copy-on-write mutation path share it).
func newContainmentIndex(maxPathLen int, tr *trie.Trie, nf map[int32]int) *ContainmentIndex {
	ci := &ContainmentIndex{maxPathLen: maxPathLen, tr: tr, nf: nf}
	ci.pool.New = func() any {
		return &ciScratch{feat: features.NewScratch(), matched: make(map[int32]int32)}
	}
	return ci
}

// Add indexes graph g under identifier id (Algorithm 1's loop body).
func (ci *ContainmentIndex) Add(id int32, g *graph.Graph) {
	s := ci.pool.Get().(*ciScratch)
	qf := features.PathsID(g, features.PathOptions{MaxLen: ci.maxPathLen}, ci.tr.Dict(), s.feat, true)
	ci.AddFromIDCounts(id, qf)
	ci.pool.Put(s)
}

// AddFromIDCounts indexes a graph by its pre-enumerated, interned feature
// occurrences, letting callers share one enumeration across several indexes.
func (ci *ContainmentIndex) AddFromIDCounts(id int32, qf features.IDSet) {
	ci.nf[id] = len(qf.Counts)
	for _, fc := range qf.Counts {
		ci.tr.InsertID(fc.ID, trie.Posting{Graph: id, Count: fc.Count})
	}
}

// AddFromFeatures indexes a graph by its string-keyed feature occurrence
// counts (legacy entry point; the hot path is AddFromIDCounts).
func (ci *ContainmentIndex) AddFromFeatures(id int32, counts map[string]int) {
	ci.nf[id] = len(counts)
	for f, o := range counts {
		ci.tr.Insert(f, trie.Posting{Graph: id, Count: int32(o)})
	}
}

// Dict returns the index's feature dictionary.
func (ci *ContainmentIndex) Dict() *features.Dict { return ci.tr.Dict() }

// MaxPathLen returns the feature length the index was built with.
func (ci *ContainmentIndex) MaxPathLen() int { return ci.maxPathLen }

// Len returns the number of indexed graphs.
func (ci *ContainmentIndex) Len() int { return len(ci.nf) }

// CandidateSubgraphs implements Algorithm 2: the ids of indexed graphs that
// may satisfy gi ⊆ g. The result is sorted ascending, freshly allocated,
// and contains no false negatives. Safe for concurrent use.
func (ci *ContainmentIndex) CandidateSubgraphs(g *graph.Graph) []int32 {
	s := ci.pool.Get().(*ciScratch)
	defer ci.pool.Put(s)
	// Lookup-only enumeration: unknown features cannot disqualify an
	// indexed subgraph, they only enlarge the query.
	qf := features.PathsID(g, features.PathOptions{MaxLen: ci.maxPathLen}, ci.tr.Dict(), s.feat, false)
	cs := ci.candidatesFromIDs(qf, s)
	if len(cs) == 0 {
		return nil
	}
	return append([]int32(nil), cs...)
}

// CandidatesFromIDSet is Algorithm 2 given a query already enumerated
// against this index's dictionary (lookup-only enumeration is sufficient:
// unknown features only enlarge the query). The result is freshly
// allocated and sorted. Safe for concurrent use.
func (ci *ContainmentIndex) CandidatesFromIDSet(qf features.IDSet) []int32 {
	s := ci.pool.Get().(*ciScratch)
	defer ci.pool.Put(s)
	cs := ci.candidatesFromIDs(qf, s)
	if len(cs) == 0 {
		return nil
	}
	return append([]int32(nil), cs...)
}

// candidatesFromIDs is Algorithm 2 given pre-enumerated query occurrences
// O[f, g]. The result aliases s and is valid until the scratch is reused.
func (ci *ContainmentIndex) candidatesFromIDs(qf features.IDSet, s *ciScratch) []int32 {
	matched := s.matched
	clear(matched)
	for _, fc := range qf.Counts {
		pl := ci.tr.GetByID(fc.ID)
		if pl.UniformCounts() && fc.Count >= 1 {
			// Every posting has count 1 ≤ fc.Count: no per-posting test.
			pl.Range(func(_ int, g int32) bool {
				matched[g]++
				return true
			})
			continue
		}
		want := fc.Count
		pl.Range(func(i int, g int32) bool {
			if pl.CountAt(i) <= want {
				matched[g]++
			}
			return true
		})
	}
	cs := s.res[:0]
	for id, cnt := range matched {
		if int(cnt) == ci.nf[id] {
			cs = append(cs, id)
		}
	}
	// A graph with no features can only be the empty graph, which is a
	// subgraph of everything; include any such indexed graphs.
	for id, n := range ci.nf {
		if n == 0 {
			cs = append(cs, id)
		}
	}
	s.res = sortIDs(cs)
	return s.res
}

// SizeBytes approximates the index footprint (trie plus NF table).
func (ci *ContainmentIndex) SizeBytes() int {
	return ci.tr.SizeBytes() + 12*len(ci.nf)
}

// LiveDictSizeBytes reports the feature dictionary's footprint counted at
// live features only — dead entries left behind by removals are excluded,
// so a mutated index sizes identically to a from-scratch rebuild.
func (ci *ContainmentIndex) LiveDictSizeBytes() int { return ci.tr.LiveDictSizeBytes() }
