package core

import (
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/trie"
)

// ContainmentIndex is the paper's novel supergraph index (Algorithms 1 and
// 2): a trie over the features of a set of indexed graphs that, given a
// query graph g, returns the candidate indexed graphs that may be
// *subgraphs* of g.
//
// For each indexed graph gi, the index stores every feature f of gi with its
// occurrence count o as a posting {gi, o} (Algorithm 1), plus NF[gi], the
// number of distinct features of gi. A query g with feature occurrences
// O[f, g] produces candidates gi for which every feature of gi appears in g
// with o ≤ O[f, g] — realised, exactly as in Algorithm 2, by counting for
// each gi the features that pass the occurrence test and keeping gi iff the
// count equals NF[gi]. The candidate set has no false negatives (see the
// paper's §6.2 argument); callers verify gi ⊆ g to remove false positives.
//
// iGQ uses a ContainmentIndex over cached query graphs as Isuper; package
// index/contain wraps one over the dataset graphs to obtain a standalone
// supergraph query processing method (the paper's §4.4 Msuper).
type ContainmentIndex struct {
	maxPathLen int
	tr         *trie.Trie
	nf         map[int32]int // NF[gi]: distinct feature count per graph
}

// NewContainmentIndex returns an empty containment index using labeled
// simple paths of up to maxPathLen edges as the feature family.
func NewContainmentIndex(maxPathLen int) *ContainmentIndex {
	if maxPathLen <= 0 {
		maxPathLen = 4
	}
	return &ContainmentIndex{
		maxPathLen: maxPathLen,
		tr:         trie.New(),
		nf:         make(map[int32]int),
	}
}

// Add indexes graph g under identifier id (Algorithm 1's loop body).
func (ci *ContainmentIndex) Add(id int32, g *graph.Graph) {
	fs := features.Paths(g, features.PathOptions{MaxLen: ci.maxPathLen})
	ci.AddFromFeatures(id, fs.Counts)
}

// AddFromFeatures indexes a graph by its precomputed feature occurrence
// counts, letting callers share one enumeration across several indexes.
func (ci *ContainmentIndex) AddFromFeatures(id int32, counts map[string]int) {
	ci.nf[id] = len(counts)
	for f, o := range counts {
		ci.tr.Insert(f, trie.Posting{Graph: id, Count: int32(o)})
	}
}

// Len returns the number of indexed graphs.
func (ci *ContainmentIndex) Len() int { return len(ci.nf) }

// CandidateSubgraphs implements Algorithm 2: the ids of indexed graphs that
// may satisfy gi ⊆ g. The result is sorted ascending and contains no false
// negatives.
func (ci *ContainmentIndex) CandidateSubgraphs(g *graph.Graph) []int32 {
	qf := features.Paths(g, features.PathOptions{MaxLen: ci.maxPathLen})
	return ci.candidatesFromFeatures(qf.Counts)
}

// candidatesFromFeatures is Algorithm 2 given precomputed query occurrence
// counts O[f, g].
func (ci *ContainmentIndex) candidatesFromFeatures(occur map[string]int) []int32 {
	matched := make(map[int32]int)
	for f, oq := range occur {
		for _, p := range ci.tr.Get(f) {
			if int(p.Count) <= oq {
				matched[p.Graph]++
			}
		}
	}
	var cs []int32
	for id, cnt := range matched {
		if cnt == ci.nf[id] {
			cs = append(cs, id)
		}
	}
	// A graph with no features can only be the empty graph, which is a
	// subgraph of everything; include any such indexed graphs.
	for id, n := range ci.nf {
		if n == 0 {
			cs = append(cs, id)
		}
	}
	return sortIDs(cs)
}

// SizeBytes approximates the index footprint (trie plus NF table).
func (ci *ContainmentIndex) SizeBytes() int {
	return ci.tr.SizeBytes() + 12*len(ci.nf)
}
