package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/iso"
)

func TestContainmentNoFalseNegatives(t *testing.T) {
	// Algorithm 2's candidate set must contain every indexed graph that is
	// truly a subgraph of the query (paper §6.2 proof, executable form).
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		ci := NewContainmentIndex(4)
		var indexed []*graph.Graph
		for i := 0; i < 12; i++ {
			g := randomGraph(rng, 2+rng.Intn(5), 0.4, 3)
			indexed = append(indexed, g)
			ci.Add(int32(i), g)
		}
		q := randomGraph(rng, 4+rng.Intn(5), 0.4, 3)
		cs := map[int32]bool{}
		for _, id := range ci.CandidateSubgraphs(q) {
			cs[id] = true
		}
		for i, g := range indexed {
			if iso.Reference(g, q) && !cs[int32(i)] {
				t.Fatalf("trial %d: indexed graph %d ⊆ query but not in CS", trial, i)
			}
		}
	}
}

func TestContainmentOccurrenceCountFilter(t *testing.T) {
	// a graph needing two occurrences of a feature must not be a candidate
	// for a query that has only one
	ci := NewContainmentIndex(4)
	twoEdges := graph.New(4) // two disjoint 1-2 edges
	twoEdges.AddVertex(1)
	twoEdges.AddVertex(2)
	twoEdges.AddVertex(1)
	twoEdges.AddVertex(2)
	twoEdges.AddEdge(0, 1)
	twoEdges.AddEdge(2, 3)
	ci.Add(0, twoEdges)

	oneEdge := graph.New(2)
	oneEdge.AddVertex(1)
	oneEdge.AddVertex(2)
	oneEdge.AddEdge(0, 1)
	if cs := ci.CandidateSubgraphs(oneEdge); len(cs) != 0 {
		t.Errorf("occurrence filter failed: CS=%v", cs)
	}
	// but a query with both edges qualifies
	if cs := ci.CandidateSubgraphs(twoEdges); len(cs) != 1 {
		t.Errorf("self query: CS=%v", cs)
	}
}

func TestContainmentEmptyIndexedGraph(t *testing.T) {
	ci := NewContainmentIndex(4)
	ci.Add(7, graph.New(0))
	q := randomGraph(rand.New(rand.NewSource(1)), 4, 0.5, 2)
	cs := ci.CandidateSubgraphs(q)
	if len(cs) != 1 || cs[0] != 7 {
		t.Errorf("empty graph must be everyone's subgraph candidate: %v", cs)
	}
}

func TestContainmentLenAndSize(t *testing.T) {
	ci := NewContainmentIndex(4)
	if ci.Len() != 0 {
		t.Error("fresh index non-empty")
	}
	ci.Add(0, tinyGraph())
	ci.Add(1, tinyGraph())
	if ci.Len() != 2 {
		t.Errorf("Len = %d", ci.Len())
	}
	if ci.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

func TestContainmentExactSelfHit(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		ci := NewContainmentIndex(4)
		g := randomGraph(rng, 3+rng.Intn(5), 0.4, 3)
		ci.Add(0, g)
		cs := ci.CandidateSubgraphs(g)
		if len(cs) != 1 || cs[0] != 0 {
			t.Fatalf("trial %d: graph not a candidate subgraph of itself: %v", trial, cs)
		}
	}
}
