package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/index"
	"repro/internal/index/ggsx"
)

// Direct unit tests for the eviction-policy variants (§5.1 ablation knobs).

func entryWith(id int32, insertedAt, hits int64, credited bool) *entry {
	e := newEntry(id, tinyGraph(), nil, insertedAt)
	e.hits.Store(hits)
	if credited {
		e.creditHit(3, []int{50}, 5)
		e.hits.Store(hits) // creditHit bumped it; restore the intended count
	}
	return e
}

func TestVictimOrderFIFO(t *testing.T) {
	q := &IGQ{opt: Options{Eviction: FIFOEviction}}
	entries := []*entry{
		entryWith(3, 30, 9, true),
		entryWith(1, 10, 0, false),
		entryWith(2, 20, 5, true),
	}
	order := q.victimOrder(entries)
	got := []int32{order[0].id, order[1].id, order[2].id}
	// FIFO ignores utility entirely: oldest insertion first
	if !reflect.DeepEqual(got, []int32{1, 2, 3}) {
		t.Errorf("FIFO order = %v, want [1 2 3]", got)
	}
}

func TestVictimOrderPopularity(t *testing.T) {
	q := &IGQ{opt: Options{Eviction: PopularityEviction}}
	q.seq.Store(100)
	// same age, different hit counts: lowest hit rate evicted first
	entries := []*entry{
		entryWith(1, 0, 50, true),
		entryWith(2, 0, 1, true),
		entryWith(3, 0, 10, true),
	}
	order := q.victimOrder(entries)
	got := []int32{order[0].id, order[1].id, order[2].id}
	if !reflect.DeepEqual(got, []int32{2, 3, 1}) {
		t.Errorf("popularity order = %v, want [2 3 1]", got)
	}
}

func TestVictimOrderPopularityTieBreak(t *testing.T) {
	q := &IGQ{opt: Options{Eviction: PopularityEviction}}
	q.seq.Store(10)
	entries := []*entry{
		entryWith(5, 0, 0, false),
		entryWith(2, 0, 0, false),
	}
	order := q.victimOrder(entries)
	if order[0].id != 2 || order[1].id != 5 {
		t.Errorf("tie-break order = [%d %d], want [2 5]", order[0].id, order[1].id)
	}
}

func TestAllPoliciesPreserveCorrectness(t *testing.T) {
	// whatever the policy keeps or evicts, answers must equal the method's
	rng := rand.New(rand.NewSource(151))
	db := buildDB(rng, 18)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	for _, pol := range []EvictionPolicy{UtilityEviction, FIFOEviction, PopularityEviction} {
		ig := New(m, db, Options{CacheSize: 6, Window: 2, Eviction: pol})
		for i, q := range workload(rng, db, 50) {
			want := index.Answer(m, q)
			got := ig.Query(q)
			if !reflect.DeepEqual(got.Answer, want) {
				t.Fatalf("policy %d query %d: %v want %v", pol, i, got.Answer, want)
			}
		}
		if ig.CacheLen() > 6 {
			t.Fatalf("policy %d: cache overflow (%d)", pol, ig.CacheLen())
		}
	}
}

func TestSizeBytesIncludesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	db := buildDB(rng, 8)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	ig := New(m, db, Options{CacheSize: 10, Window: 5})
	empty := ig.SizeBytes()
	ig.Query(connectedQuery(rng, db[0], 4)) // stays in window (W=5)
	if ig.WindowLen() != 1 {
		t.Fatal("premise: entry should sit in the window")
	}
	if ig.SizeBytes() <= empty {
		t.Error("SizeBytes ignores pending window entries")
	}
}
