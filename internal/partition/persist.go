package partition

// Per-partition persistence and rebalance. Each partition owns one
// snapshot + journal lineage, reusing the engine machinery unchanged:
// SaveAll writes an atomic combined engine snapshot per partition,
// LoadGroup restores every partition from its own file against the
// hash-routed split of the dataset, and AppendDeltas/MaintainDeltas give
// each partition's index lineage the same O(delta) journal appends and
// workload-adaptive compaction a single-engine deployment gets. The
// lineage layout is flat and predictable — PartPath(base, i) = base.pI —
// so a partition's state is exactly two files it could ship to another
// process (the recorded cross-process rebalance follow-up).

import (
	"errors"
	"fmt"
	"os"

	igq "repro"
	"repro/internal/persistio"
)

// PartPath names partition i's file in a per-partition lineage rooted at
// base: base.p0, base.p1, ...
func PartPath(base string, i int) string { return fmt.Sprintf("%s.p%d", base, i) }

// HaveAllParts reports whether every partition file of an n-way lineage
// rooted at base exists — the "restore instead of build" probe.
func HaveAllParts(base string, n int) bool {
	if base == "" {
		return false
	}
	for i := 0; i < n; i++ {
		if _, err := os.Stat(PartPath(base, i)); err != nil {
			return false
		}
	}
	return true
}

// SaveAll atomically writes each partition's combined engine snapshot
// (index + cache) to PartPath(base, i). Supergraph engines are not
// persisted — like a single-engine deployment, they are rebuilt from the
// restored dataset on load. Exclusive with mutations and Rebalance.
func (g *Group) SaveAll(base string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	parts := *g.parts.Load()
	for i, p := range parts {
		if err := igq.SaveEngineFile(PartPath(base, i), p.sub); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}

// LoadGroup restores a Group from an opt.Partitions-way snapshot lineage
// rooted at base: db is split by the same stable routing New uses and each
// partition is restored from its own file (journal tails replayed, torn
// tails self-healed — the per-partition LoadReports are returned in
// partition order). Supergraph engines, when opt.Super, are rebuilt from
// the restored partition datasets.
func LoadGroup(base string, db []*igq.Graph, opt Options) (*Group, []igq.LoadReport, error) {
	opt = normalized(opt)
	if err := checkIDs(db); err != nil {
		return nil, nil, err
	}
	split, err := route(db, opt.Partitions)
	if err != nil {
		return nil, nil, err
	}
	parts := make([]*part, len(split))
	reports := make([]igq.LoadReport, len(split))
	for i, pdb := range split {
		sub, rep, err := igq.LoadEngineFile(PartPath(base, i), pdb, opt.Engine)
		if err != nil {
			return nil, nil, fmt.Errorf("partition %d: %w", i, err)
		}
		reports[i] = rep
		parts[i] = &part{sub: sub}
	}
	if opt.Super {
		superParts, err := buildParts(split, Options{Partitions: opt.Partitions, Engine: opt.superOptions()})
		if err != nil {
			return nil, nil, err
		}
		for i := range parts {
			parts[i].super = superParts[i].sub
		}
	}
	g := &Group{opt: opt}
	g.parts.Store(&parts)
	return g, reports, nil
}

// AppendDeltas appends each partition's pending mutation journal to its
// index lineage file PartPath(base, i) — an O(delta-per-partition) write.
// Partitions whose lineage file does not exist yet are skipped, mirroring
// the single-engine serving behaviour (the lineage is seeded by
// SaveIndexFile out of band).
func (g *Group) AppendDeltas(base string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	parts := *g.parts.Load()
	var errs []error
	for i, p := range parts {
		err := withLineage(PartPath(base, i), func(f *persistio.PathFile) error {
			return p.sub.AppendIndexDelta(f)
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("partition %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// MaintainDeltas runs one journal-maintenance pass per partition lineage:
// pending deltas are appended and over-threshold journal debt compacted
// even when nothing is pending. Reports whether any lineage was modified.
func (g *Group) MaintainDeltas(base string) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	parts := *g.parts.Load()
	changed := false
	var errs []error
	for i, p := range parts {
		err := withLineage(PartPath(base, i), func(f *persistio.PathFile) error {
			ch, err := p.sub.MaintainIndexDelta(f)
			changed = changed || ch
			return err
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("partition %d: %w", i, err))
		}
	}
	return changed, errors.Join(errs...)
}

// withLineage opens a lineage file and applies fn; a missing file is a
// clean no-op.
func withLineage(path string, fn func(*persistio.PathFile) error) error {
	f, err := persistio.OpenFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	return fn(f)
}

// Rebalance resplits the dataset across n partitions: every graph is
// re-routed by the stable hash under the new partition count and fresh
// partition engines are built (in parallel) over the redistributed
// datasets, then installed atomically — queries in flight finish against
// the old partition set, later queries see the new one. Caches restart
// cold (cached answers are partition-local and the partition contents
// changed). Exclusive with mutations and persistence; rebalance under
// live mutation load without the build pause is the recorded follow-up.
func (g *Group) Rebalance(n int) error {
	if n <= 0 {
		return fmt.Errorf("partition: cannot rebalance to %d partitions", n)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	parts := *g.parts.Load()
	var all []*igq.Graph
	for _, p := range parts {
		all = append(all, p.sub.Dataset()...)
	}
	split, err := route(all, n)
	if err != nil {
		return err
	}
	// g.opt stays as New left it (queries read Super/Fanout from it without
	// the mutex); the live partition count is len(*g.parts.Load()).
	opt := g.opt
	opt.Partitions = n
	newParts, err := buildParts(split, opt)
	if err != nil {
		return err
	}
	g.parts.Store(&newParts)
	return nil
}
