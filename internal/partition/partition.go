// Package partition scales the engine horizontally inside one process:
// a Group wraps N igq.Engine partitions behind the familiar Engine-shaped
// surface. The dataset is split by a stable hash of each graph's
// position-independent ID, queries scatter to every partition with bounded
// parallelism and gather a mode-correct union (both subgraph and
// supergraph answers union across partitions; per-partition caches and
// §5.1 credits stay partition-local), and mutations route to the single
// owning partition — so an add or remove touches one partition's index
// instead of serialising the whole dataset behind one mutation lock.
//
// This is the single-process analogue of the scatter-gather architecture
// of "Efficient Subgraph Matching on Billion Node Graphs": push the
// filtering down to the data partitions, keep the merge trivial. Because
// partitions are whole graphs (the dataset is a *collection* of small
// graphs, not one billion-node graph), no cross-partition joins exist and
// the merged answer is exactly the union of partition answers.
//
// Identity, not position. A partitioned dataset has no useful global
// position space — partition-local swap-removal reorders neighbours
// invisibly — so the Group addresses graphs by their ID everywhere:
// Query results carry global graph IDs (sorted ascending), RemoveGraphs
// takes IDs, and routing is PartitionOf(id, n). Every dataset graph must
// carry a unique ID (dataset.Generate and the wire codec both preserve
// them); New rejects datasets that do not.
//
// Persistence reuses the engine machinery per partition: SaveAll writes
// one engine snapshot per partition (base.p0, base.p1, ...), LoadGroup
// restores each partition from its own lineage, and AppendDeltas /
// MaintainDeltas keep one O(delta) journal lineage per partition.
// Rebalance(n) resplits in process by rebuilding partition engines from
// the redistributed graphs; cross-process rebalance (shipping a
// partition's snapshot + journal tail) is the recorded follow-up.
package partition

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	igq "repro"
)

// Mode selects the query direction a Group call serves.
type Mode int

const (
	// Sub answers subgraph queries: which dataset graphs contain q.
	Sub Mode = iota
	// Super answers supergraph queries: which dataset graphs are
	// contained in q. Requires Options.Super.
	Super
)

func (m Mode) String() string {
	if m == Super {
		return "super"
	}
	return "sub"
}

// Options configures a Group.
type Options struct {
	// Partitions is the number of in-process partitions (default 1).
	Partitions int
	// Engine configures each partition's subgraph engine.
	Engine igq.EngineOptions
	// Super additionally hosts a supergraph (containment) engine per
	// partition over the same partition dataset, served by Mode Super.
	Super bool
	// SuperEngine overrides the supergraph engines' options (Supergraph is
	// forced on). Nil derives them from Engine: same cache geometry, shard
	// count and build parallelism.
	SuperEngine *igq.EngineOptions
	// Fanout bounds how many partitions one query probes concurrently
	// (0 = all at once).
	Fanout int
}

// part is one partition: a subgraph engine and, optionally, a supergraph
// engine over the same partition dataset. Both see every mutation routed
// to the partition, in the same order, so their datasets stay identical.
type part struct {
	sub   *igq.Engine
	super *igq.Engine
}

func (p *part) engine(mode Mode) *igq.Engine {
	if mode == Super {
		return p.super
	}
	return p.sub
}

// Group serves one logical dataset split across N engine partitions.
// Queries are lock-free scatter-gather over an atomic partition-set
// pointer; mutations, persistence and Rebalance serialise on one mutex but
// touch only the partitions they route to. All methods are safe for
// concurrent use.
type Group struct {
	opt   Options
	mu    sync.Mutex // serialises mutations, persistence, Rebalance
	parts atomic.Pointer[[]*part]
}

// PartitionOf is the routing function: the partition owning graph ID id
// among n partitions. Stable across processes and runs (FNV-1a over the
// little-endian ID bytes), so a dataset always resplits the same way.
func PartitionOf(id, n int) int {
	if n <= 1 {
		return 0
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(id)))
	h := fnv.New32a()
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// New builds a Group over db split into opt.Partitions partitions. Every
// graph must carry a unique ID (graph.Graph.ID); the split must leave no
// partition empty — if one is, reduce the partition count (an engine
// cannot serve an empty dataset).
func New(db []*igq.Graph, opt Options) (*Group, error) {
	opt = normalized(opt)
	if err := checkIDs(db); err != nil {
		return nil, err
	}
	split, err := route(db, opt.Partitions)
	if err != nil {
		return nil, err
	}
	parts, err := buildParts(split, opt)
	if err != nil {
		return nil, err
	}
	g := &Group{opt: opt}
	g.parts.Store(&parts)
	return g, nil
}

func normalized(opt Options) Options {
	if opt.Partitions <= 0 {
		opt.Partitions = 1
	}
	return opt
}

// superOptions resolves the supergraph engines' options.
func (o Options) superOptions() igq.EngineOptions {
	if o.SuperEngine != nil {
		so := *o.SuperEngine
		so.Supergraph = true
		return so
	}
	e := o.Engine
	return igq.EngineOptions{
		Supergraph:   true,
		MaxPathLen:   e.MaxPathLen,
		CacheSize:    e.CacheSize,
		Window:       e.Window,
		DisableCache: e.DisableCache,
		Shards:       e.Shards,
		BuildWorkers: e.BuildWorkers,
		Threads:      e.Threads,
	}
}

// checkIDs rejects datasets without unique graph IDs — identity routing
// cannot work over ambiguous IDs.
func checkIDs(db []*igq.Graph) error {
	seen := make(map[int]struct{}, len(db))
	for i, g := range db {
		if g == nil {
			return fmt.Errorf("partition: nil graph at position %d", i)
		}
		if _, dup := seen[g.ID]; dup {
			return fmt.Errorf("partition: duplicate graph ID %d (partitioning routes by unique graph ID)", g.ID)
		}
		seen[g.ID] = struct{}{}
	}
	return nil
}

// route splits db into n per-partition datasets by PartitionOf, preserving
// input order within each partition.
func route(db []*igq.Graph, n int) ([][]*igq.Graph, error) {
	split := make([][]*igq.Graph, n)
	for _, g := range db {
		p := PartitionOf(g.ID, n)
		split[p] = append(split[p], g)
	}
	for p, pdb := range split {
		if len(pdb) == 0 {
			return nil, fmt.Errorf("partition: partition %d/%d would be empty (%d graphs total) — use fewer partitions", p, n, len(db))
		}
	}
	return split, nil
}

// buildParts builds every partition's engines, partitions in parallel.
func buildParts(split [][]*igq.Graph, opt Options) ([]*part, error) {
	parts := make([]*part, len(split))
	errs := make([]error, len(split))
	var wg sync.WaitGroup
	for i, pdb := range split {
		wg.Add(1)
		go func(i int, pdb []*igq.Graph) {
			defer wg.Done()
			sub, err := igq.NewEngine(pdb, opt.Engine)
			if err != nil {
				errs[i] = fmt.Errorf("partition %d: %w", i, err)
				return
			}
			p := &part{sub: sub}
			if opt.Super {
				sup, err := igq.NewEngine(pdb, opt.superOptions())
				if err != nil {
					errs[i] = fmt.Errorf("partition %d (super): %w", i, err)
					return
				}
				p.super = sup
			}
			parts[i] = p
		}(i, pdb)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return parts, nil
}

// Partitions returns the current partition count.
func (g *Group) Partitions() int { return len(*g.parts.Load()) }

// NumGraphs returns the total dataset size across partitions.
func (g *Group) NumGraphs() int {
	n := 0
	for _, p := range *g.parts.Load() {
		n += len(p.sub.Dataset())
	}
	return n
}

// HostsSuper reports whether Mode Super is served.
func (g *Group) HostsSuper() bool { return g.opt.Super }

// Dataset returns the whole dataset in canonical restore order: partition
// 0's graphs in their local order, then partition 1's, and so on. Routing
// this exact slice at the same partition count reproduces every
// partition's local dataset — including the ordering that mutation
// history (swap-removal) produced — which is what LoadGroup needs to
// restore a mutated group from its snapshots. The slice is freshly
// allocated; the graphs are shared.
func (g *Group) Dataset() []*igq.Graph {
	parts := *g.parts.Load()
	var all []*igq.Graph
	for _, p := range parts {
		all = append(all, p.sub.Dataset()...)
	}
	return all
}

// Query answers a subgraph query: Engine-shaped shorthand for
// QueryMode(ctx, Sub, q, opts...).
func (g *Group) Query(ctx context.Context, q *igq.Graph, opts ...igq.QueryOption) (igq.Result, error) {
	return g.QueryMode(ctx, Sub, q, opts...)
}

// QueryMode scatters q to every partition (at most Options.Fanout
// concurrently) and gathers the union of answers. Result.Matches are the
// matched dataset graphs and Result.IDs their *global graph IDs*, sorted
// ascending — not positions; a partitioned dataset has no global position
// space. Result.Stats sums the per-partition counters; AnsweredByCache is
// true only when every partition short-circuited through its own cache
// (caches and credits are partition-local by design).
//
// Each partition query runs through that engine's ordinary snapshot-
// isolated Query path, so a scatter-gather runs concurrently with other
// queries, streams and routed mutations.
func (g *Group) QueryMode(ctx context.Context, mode Mode, q *igq.Graph, opts ...igq.QueryOption) (igq.Result, error) {
	parts := *g.parts.Load()
	if mode == Super && !g.opt.Super {
		return igq.Result{}, errors.New("partition: no supergraph engines configured")
	}
	results := make([]igq.Result, len(parts))
	errs := make([]error, len(parts))
	fanout := g.opt.Fanout
	if fanout <= 0 || fanout > len(parts) {
		fanout = len(parts)
	}
	sem := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, e *igq.Engine) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = e.Query(ctx, q, opts...)
		}(i, p.engine(mode))
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return igq.Result{}, err
	}
	return mergeResults(results), nil
}

// mergeResults unions partition answers into one identity-keyed Result.
func mergeResults(results []igq.Result) igq.Result {
	var merged igq.Result
	total := 0
	for _, r := range results {
		total += len(r.Matches)
	}
	merged.Matches = make([]*igq.Graph, 0, total)
	cacheAll := true
	for _, r := range results {
		merged.Matches = append(merged.Matches, r.Matches...)
		merged.Stats.BaseCandidates += r.Stats.BaseCandidates
		merged.Stats.FinalCandidates += r.Stats.FinalCandidates
		merged.Stats.DatasetIsoTests += r.Stats.DatasetIsoTests
		merged.Stats.CacheIsoTests += r.Stats.CacheIsoTests
		merged.Stats.SubHits += r.Stats.SubHits
		merged.Stats.SuperHits += r.Stats.SuperHits
		cacheAll = cacheAll && r.Stats.AnsweredByCache
	}
	merged.Stats.AnsweredByCache = cacheAll && len(results) > 0
	slices.SortFunc(merged.Matches, func(a, b *igq.Graph) int { return a.ID - b.ID })
	merged.IDs = make([]int32, len(merged.Matches))
	for i, m := range merged.Matches {
		merged.IDs[i] = int32(m.ID)
	}
	if len(merged.IDs) == 0 {
		merged.IDs = nil
		merged.Matches = nil
	}
	return merged
}

// QueryStream answers a continuous stream of queries in mode, mirroring
// Engine.QueryStream's contract: BatchResult.Index is arrival order,
// results are emitted in completion order, up to workers scatter-gathers
// run at once (0 = one per GOMAXPROCS), the stream ends when in closes or
// ctx cancels, and the caller must drain the returned channel.
func (g *Group) QueryStream(ctx context.Context, mode Mode, in <-chan *igq.Graph, workers int, opts ...igq.QueryOption) <-chan igq.BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(chan igq.BatchResult)
	type job struct {
		i int
		g *igq.Graph
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := g.QueryMode(ctx, mode, j.g, opts...)
				out <- igq.BatchResult{Index: j.i, Result: r, Err: err}
			}
		}()
	}
	go func() {
		defer close(out)
		i := 0
	feed:
		for {
			select {
			case <-ctx.Done():
				break feed
			case q, ok := <-in:
				if !ok {
					break feed
				}
				select {
				case jobs <- job{i, q}:
					i++
				case <-ctx.Done():
					break feed
				}
			}
		}
		close(jobs)
		wg.Wait()
	}()
	return out
}
