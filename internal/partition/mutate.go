package partition

// Routed mutations. A graph's ID determines its owning partition, so an
// append touches exactly the partitions its batch hashes to and a removal
// touches exactly the partitions owning the removed IDs — the rest of the
// dataset is never locked, scanned or re-indexed. Within a partition the
// engine's own copy-on-write mutation path applies (O(delta), concurrent
// with that partition's queries); when the partition hosts a supergraph
// engine it receives the identical mutation so both stay views of the same
// partition dataset.
//
// The whole batch is validated before any partition is touched (unknown or
// duplicate IDs, a removal that would empty a partition), so a rejected
// call leaves the group unchanged. ctx is observed before the mutation
// begins; once underway every routed application completes (mirroring the
// engine's own mutation contract) so partitions can never split between
// sub and super state.

import (
	"context"
	"errors"
	"fmt"

	igq "repro"
)

// AddGraphs appends graphs, each routed to the partition owning its ID.
// IDs must be unique within the batch and previously unknown to the group.
func (g *Group) AddGraphs(ctx context.Context, gs []*igq.Graph) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(gs) == 0 {
		return errors.New("partition: no graphs to add")
	}
	if err := checkIDs(gs); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	parts := *g.parts.Load()
	n := len(parts)
	byPart := make([][]*igq.Graph, n)
	for _, ng := range gs {
		p := PartitionOf(ng.ID, n)
		byPart[p] = append(byPart[p], ng)
	}
	// Collision check scans only the owning partitions: the routing
	// invariant (every graph lives in the partition its ID hashes to)
	// means a duplicate ID could live nowhere else.
	for p, batch := range byPart {
		if len(batch) == 0 {
			continue
		}
		fresh := make(map[int]struct{}, len(batch))
		for _, ng := range batch {
			fresh[ng.ID] = struct{}{}
		}
		for _, old := range parts[p].sub.Dataset() {
			if _, dup := fresh[old.ID]; dup {
				return fmt.Errorf("partition: graph ID %d already present", old.ID)
			}
		}
	}
	for p, batch := range byPart {
		if len(batch) == 0 {
			continue
		}
		// Background ctx: the first routed application commits the group
		// mutation; the rest must follow (see package comment).
		if err := parts[p].sub.AddGraphs(context.Background(), batch); err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
		if parts[p].super != nil {
			if err := parts[p].super.AddGraphs(context.Background(), batch); err != nil {
				return fmt.Errorf("partition %d (super): %w", p, err)
			}
		}
	}
	return nil
}

// RemoveGraphs removes the graphs with the given global IDs, each routed
// to its owning partition. Unknown or duplicate IDs reject the whole
// batch, as does a removal that would empty a partition (an engine cannot
// serve an empty dataset — rebalance to fewer partitions instead).
func (g *Group) RemoveGraphs(ctx context.Context, ids []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ids) == 0 {
		return errors.New("partition: no graph IDs to remove")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	parts := *g.parts.Load()
	n := len(parts)
	seen := make(map[int]struct{}, len(ids))
	byPart := make([][]int, n) // positions within the owning partition
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("partition: duplicate graph ID %d in removal batch", id)
		}
		seen[id] = struct{}{}
		p := PartitionOf(id, n)
		pos := -1
		for i, old := range parts[p].sub.Dataset() {
			if old.ID == id {
				pos = i
				break
			}
		}
		if pos < 0 {
			return fmt.Errorf("partition: no graph with ID %d", id)
		}
		byPart[p] = append(byPart[p], pos)
	}
	for p, positions := range byPart {
		if len(positions) >= len(parts[p].sub.Dataset()) && len(positions) > 0 {
			return fmt.Errorf("partition: removal would empty partition %d — rebalance to fewer partitions first", p)
		}
	}
	for p, positions := range byPart {
		if len(positions) == 0 {
			continue
		}
		if err := parts[p].sub.RemoveGraphs(context.Background(), positions); err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
		if parts[p].super != nil {
			if err := parts[p].super.RemoveGraphs(context.Background(), positions); err != nil {
				return fmt.Errorf("partition %d (super): %w", p, err)
			}
		}
	}
	return nil
}
