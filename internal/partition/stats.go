package partition

import igq "repro"

// Stat is one partition's observability snapshot, JSON-ready for the
// serving layer's /stats.
type Stat struct {
	Graphs int              `json:"graphs"`
	Sub    igq.EngineStats  `json:"sub"`
	Super  *igq.EngineStats `json:"super,omitempty"`
}

// PartitionStats samples every partition: dataset size plus the engine
// counters, in partition order. Lock-free (atomic engine reads), so a
// stats scrape never blocks queries or mutations.
func (g *Group) PartitionStats() []Stat {
	parts := *g.parts.Load()
	out := make([]Stat, len(parts))
	for i, p := range parts {
		out[i] = Stat{Graphs: len(p.sub.Dataset()), Sub: p.sub.Stats()}
		if p.super != nil {
			st := p.super.Stats()
			out[i].Super = &st
		}
	}
	return out
}

// Stats aggregates the mode's engine counters across partitions: counter
// fields sum (queries, cache answers, iso tests, hits, panics, cache
// population, residency); LazyLoaded and LazyBudgetBytes are clear —
// partitions are built or restored eagerly. Reports false when the mode is
// not hosted.
func (g *Group) Stats(mode Mode) (igq.EngineStats, bool) {
	if mode == Super && !g.opt.Super {
		return igq.EngineStats{}, false
	}
	var agg igq.EngineStats
	for _, p := range *g.parts.Load() {
		st := p.engine(mode).Stats()
		agg.Queries += st.Queries
		agg.AnsweredByCache += st.AnsweredByCache
		agg.DatasetIsoTests += st.DatasetIsoTests
		agg.CacheIsoTests += st.CacheIsoTests
		agg.SubHits += st.SubHits
		agg.SuperHits += st.SuperHits
		agg.Panics += st.Panics
		agg.CachedQueries += st.CachedQueries
		agg.WindowPending += st.WindowPending
		agg.Flushes += st.Flushes
		agg.TotalShards += st.TotalShards
		agg.ResidentShards += st.ResidentShards
		agg.ResidentBytes += st.ResidentBytes
	}
	return agg, true
}

// SizeBytes sums the partitions' subgraph index footprints: the dataset
// indexes (method) and the iGQ caches, matching Engine.IndexSizeBytes.
func (g *Group) SizeBytes() (method, cache int) {
	for _, p := range *g.parts.Load() {
		m, c := p.sub.IndexSizeBytes()
		method += m
		cache += c
	}
	return method, cache
}
