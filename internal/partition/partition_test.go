package partition

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	igq "repro"
)

// testDB generates a small dataset and re-IDs the graphs onto a sparse,
// shuffled ID space so the tests exercise identity routing rather than
// the dense 0..n-1 IDs dataset generation happens to assign.
func testDB(t *testing.T, seed int64) []*igq.Graph {
	t.Helper()
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.002, 1))
	if len(db) < 20 {
		t.Fatalf("dataset too small for partition tests: %d graphs", len(db))
	}
	rng := rand.New(rand.NewSource(seed))
	for i, g := range db {
		g.ID = i*7 + 3 + rng.Intn(3) // sparse, still unique (stride 7 > jitter 2)
	}
	return db
}

// oracleIDs answers q on a single-engine oracle and returns the matched
// graphs' global IDs sorted ascending — the partition Group's answer
// contract — so group answers compare byte-for-byte at any partition
// count.
func oracleIDs(t *testing.T, eng *igq.Engine, q *igq.Graph) []int32 {
	t.Helper()
	r, err := eng.Query(context.Background(), q, igq.WithoutCache())
	if err != nil {
		t.Fatalf("oracle query: %v", err)
	}
	if len(r.Matches) == 0 {
		return nil
	}
	ids := make([]int32, len(r.Matches))
	for i, m := range r.Matches {
		ids[i] = int32(m.ID)
	}
	slices.Sort(ids)
	return ids
}

// freshGraphs returns graphs from a different generator distribution with
// fresh IDs that collide with nothing in the test.
func freshGraphs(t *testing.T, n int, firstID int) []*igq.Graph {
	t.Helper()
	extra := igq.GenerateDataset(igq.PDBSSpec().Scaled(0.02, 0.5))
	if len(extra) < n {
		t.Fatalf("need %d extra graphs, got %d", n, len(extra))
	}
	extra = extra[:n]
	for i, g := range extra {
		g.ID = firstID + i
	}
	return extra
}

// removableID picks a ref graph whose owning partition holds at least two
// graphs, so the removal cannot trip the would-empty-partition guard.
func removableID(rng *rand.Rand, ref []*igq.Graph, parts int) int {
	counts := make(map[int]int)
	for _, g := range ref {
		counts[PartitionOf(g.ID, parts)]++
	}
	for {
		g := ref[rng.Intn(len(ref))]
		if counts[PartitionOf(g.ID, parts)] >= 2 {
			return g.ID
		}
	}
}

// TestPartitionOfStable pins the routing function: in range, deterministic,
// and identical across repeated calls (snapshots rely on a stable resplit).
func TestPartitionOfStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		for id := -5; id < 200; id += 13 {
			p := PartitionOf(id, n)
			if p < 0 || p >= n {
				t.Fatalf("PartitionOf(%d, %d) = %d out of range", id, n, p)
			}
			if q := PartitionOf(id, n); q != p {
				t.Fatalf("PartitionOf(%d, %d) unstable: %d then %d", id, n, p, q)
			}
		}
	}
	if PartitionOf(42, 1) != 0 || PartitionOf(42, 0) != 0 {
		t.Fatal("n<=1 must route to partition 0")
	}
}

// TestGroupDifferential is the scatter-gather identity suite: across
// partition counts and both query modes, merged group answers must be
// byte-identical to a single-engine oracle over the same (mutating)
// dataset, through a mid-sequence save of every partition and a restore
// from the per-partition snapshots.
func TestGroupDifferential(t *testing.T) {
	base := testDB(t, 11)
	opt := Options{
		Engine: igq.EngineOptions{CacheSize: 24, Window: 3},
		Super:  true,
	}
	for _, parts := range []int{1, 2, 3, 4} {
		parts := parts
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(100 + parts)))
			popt := opt
			popt.Partitions = parts
			db := append([]*igq.Graph(nil), base...)
			g, err := New(db, popt)
			if err != nil {
				t.Fatal(err)
			}
			if g.Partitions() != parts {
				t.Fatalf("Partitions() = %d, want %d", g.Partitions(), parts)
			}
			ref := append([]*igq.Graph(nil), db...)
			ctx := context.Background()
			extra := freshGraphs(t, 12, 1_000_000)
			next := 0

			probes := func() []*igq.Graph {
				ps := make([]*igq.Graph, 0, 4)
				for i := 0; i < 2; i++ { // small patterns: subgraph-query shaped
					src := ref[rng.Intn(len(ref))]
					ps = append(ps, igq.ExtractQuery(src, rng.Intn(max(1, src.NumVertices())), 2+rng.Intn(3)))
				}
				for i := 0; i < 2; i++ { // larger patterns: supergraph-query shaped
					src := ref[rng.Intn(len(ref))]
					ps = append(ps, igq.ExtractQuery(src, rng.Intn(max(1, src.NumVertices())), 5+rng.Intn(3)))
				}
				return ps
			}

			check := func(step int) {
				// Fresh single-engine oracles over the reference dataset.
				oracleSub, err := igq.NewEngine(append([]*igq.Graph(nil), ref...), igq.EngineOptions{CacheSize: 24, Window: 3})
				if err != nil {
					t.Fatal(err)
				}
				oracleSuper, err := igq.NewEngine(append([]*igq.Graph(nil), ref...), igq.EngineOptions{Supergraph: true, CacheSize: 24, Window: 3})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := g.NumGraphs(), len(ref); got != want {
					t.Fatalf("step %d: NumGraphs %d != %d", step, got, want)
				}
				for qi, q := range probes() {
					for _, mode := range []Mode{Sub, Super} {
						oracle := oracleSub
						if mode == Super {
							oracle = oracleSuper
						}
						want := oracleIDs(t, oracle, q)
						got, err := g.QueryMode(ctx, mode, q, igq.WithoutCache())
						if err != nil {
							t.Fatalf("step %d probe %d %s: %v", step, qi, mode, err)
						}
						if !reflect.DeepEqual(got.IDs, want) {
							t.Fatalf("step %d probe %d %s: merged IDs %v != oracle %v", step, qi, mode, got.IDs, want)
						}
						if len(got.IDs) != len(got.Matches) {
							t.Fatalf("step %d probe %d %s: %d IDs but %d Matches", step, qi, mode, len(got.IDs), len(got.Matches))
						}
						for i, m := range got.Matches {
							if int32(m.ID) != got.IDs[i] {
								t.Fatalf("step %d probe %d %s: Matches[%d].ID=%d but IDs[%d]=%d", step, qi, mode, i, m.ID, i, got.IDs[i])
							}
						}
						// The cached path must agree with the truth too.
						cached, err := g.QueryMode(ctx, mode, q)
						if err != nil {
							t.Fatalf("step %d probe %d %s (cached): %v", step, qi, mode, err)
						}
						if !reflect.DeepEqual(cached.IDs, want) {
							t.Fatalf("step %d probe %d %s: cached IDs %v != oracle %v", step, qi, mode, cached.IDs, want)
						}
					}
				}
				if parts == 1 {
					// One partition is exactly one engine: sizes must match the
					// oracle byte-for-byte (caches differ; compare the method).
					gm, _ := g.SizeBytes()
					om, _ := oracleSub.IndexSizeBytes()
					if gm != om {
						t.Fatalf("step %d: 1-partition method SizeBytes %d != oracle %d", step, gm, om)
					}
				}
			}

			check(0)
			for step := 1; step <= 6; step++ {
				if step%3 == 0 {
					id := removableID(rng, ref, parts)
					if err := g.RemoveGraphs(ctx, []int{id}); err != nil {
						t.Fatalf("step %d: RemoveGraphs(%d): %v", step, id, err)
					}
					for i, rg := range ref {
						if rg.ID == id {
							ref[i] = ref[len(ref)-1]
							ref = ref[:len(ref)-1]
							break
						}
					}
				} else {
					gs := extra[next : next+2]
					next += 2
					if err := g.AddGraphs(ctx, gs); err != nil {
						t.Fatalf("step %d: AddGraphs: %v", step, err)
					}
					ref = append(ref, gs...)
				}
				check(step)

				if step == 4 {
					// Save every partition mid-sequence and restore from the
					// per-partition snapshots; mutation history must survive.
					baseP := filepath.Join(t.TempDir(), "group.snap")
					if err := g.SaveAll(baseP); err != nil {
						t.Fatalf("step %d: SaveAll: %v", step, err)
					}
					if !HaveAllParts(baseP, parts) {
						t.Fatalf("step %d: HaveAllParts false after SaveAll", step)
					}
					restoreDB := g.Dataset()
					loaded, reports, err := LoadGroup(baseP, restoreDB, popt)
					if err != nil {
						t.Fatalf("step %d: LoadGroup: %v", step, err)
					}
					if len(reports) != parts {
						t.Fatalf("step %d: %d load reports, want %d", step, len(reports), parts)
					}
					g = loaded
					check(step)
				}
			}

			// Stats() must be exactly the sum of PartitionStats().
			per := g.PartitionStats()
			if len(per) != parts {
				t.Fatalf("PartitionStats: %d entries, want %d", len(per), parts)
			}
			for _, mode := range []Mode{Sub, Super} {
				agg, ok := g.Stats(mode)
				if !ok {
					t.Fatalf("Stats(%s) not hosted", mode)
				}
				var queries, cacheAns int64
				graphs := 0
				for _, st := range per {
					es := st.Sub
					if mode == Super {
						if st.Super == nil {
							t.Fatal("PartitionStats missing super stats")
						}
						es = *st.Super
					}
					queries += es.Queries
					cacheAns += es.AnsweredByCache
					graphs += st.Graphs
				}
				if agg.Queries != queries || agg.AnsweredByCache != cacheAns {
					t.Fatalf("Stats(%s) aggregate {q=%d cache=%d} != partition sum {q=%d cache=%d}",
						mode, agg.Queries, agg.AnsweredByCache, queries, cacheAns)
				}
				if agg.Panics != 0 {
					t.Fatalf("Stats(%s): %d panics", mode, agg.Panics)
				}
				if mode == Sub && graphs != len(ref) {
					t.Fatalf("partition graph counts sum to %d, want %d", graphs, len(ref))
				}
			}
		})
	}
}

// TestGroupRejections pins the validation surface: ambiguous identity,
// empty partitions, unknown removals and unhosted modes are all rejected
// without mutating the group.
func TestGroupRejections(t *testing.T) {
	db := testDB(t, 23)
	ctx := context.Background()

	dup := append([]*igq.Graph(nil), db...)
	clone := dup[0].Clone()
	clone.ID = dup[1].ID
	dup[0] = clone
	if _, err := New(dup, Options{Partitions: 2}); err == nil {
		t.Fatal("New accepted duplicate graph IDs")
	}

	if _, err := New(db[:2], Options{Partitions: 64}); err == nil {
		t.Fatal("New accepted a split with empty partitions")
	}

	g, err := New(db, Options{Partitions: 2, Engine: igq.EngineOptions{CacheSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.QueryMode(ctx, Super, db[0]); err == nil {
		t.Fatal("QueryMode(Super) succeeded without supergraph engines")
	}
	if _, ok := g.Stats(Super); ok {
		t.Fatal("Stats(Super) reported hosted without supergraph engines")
	}
	if err := g.AddGraphs(ctx, []*igq.Graph{db[0]}); err == nil {
		t.Fatal("AddGraphs accepted an already-present ID")
	}
	before := g.NumGraphs()
	if err := g.RemoveGraphs(ctx, []int{999_999_999}); err == nil {
		t.Fatal("RemoveGraphs accepted an unknown ID")
	}
	if err := g.RemoveGraphs(ctx, []int{db[0].ID, db[0].ID}); err == nil {
		t.Fatal("RemoveGraphs accepted a duplicate ID in one batch")
	}
	if g.NumGraphs() != before {
		t.Fatal("rejected mutations changed the dataset")
	}

	// A removal that would empty its partition must be refused up front.
	// Craft a 2-way split where partition 1 owns exactly one graph.
	var loneID int
	found := false
	for id := 0; id < 1000 && !found; id++ {
		if PartitionOf(id, 2) == 1 {
			loneID, found = id, true
		}
	}
	if !found {
		t.Fatal("no ID routing to partition 1")
	}
	small := make([]*igq.Graph, 0, 5)
	nextID := 0
	for _, src := range db {
		if len(small) == 4 {
			break
		}
		for PartitionOf(nextID, 2) != 0 {
			nextID++
		}
		c := src.Clone()
		c.ID = nextID
		nextID++
		small = append(small, c)
	}
	lone := db[len(db)-1].Clone()
	lone.ID = loneID
	small = append(small, lone)
	sg, err := New(small, Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sg.RemoveGraphs(ctx, []int{loneID}); err == nil {
		t.Fatal("RemoveGraphs emptied a partition")
	}
}

// TestGroupConcurrentQueryMutate runs 8 query goroutines (both modes,
// plus a QueryStream consumer) concurrently with routed mutations and a
// Rebalance, then pins the final state to a fresh oracle. Primarily a
// -race target: queries are lock-free over the atomic partition set while
// mutations swap engines underneath them.
func TestGroupConcurrentQueryMutate(t *testing.T) {
	db := testDB(t, 31)
	g, err := New(db, Options{
		Partitions: 2,
		Engine:     igq.EngineOptions{CacheSize: 16, Window: 2},
		Super:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	probes := make([]*igq.Graph, 8)
	for i := range probes {
		src := db[rng.Intn(len(db))]
		probes[i] = igq.ExtractQuery(src, rng.Intn(max(1, src.NumVertices())), 3+rng.Intn(6))
	}

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 25; i++ {
				mode := Sub
				if (w+i)%2 == 1 {
					mode = Super
				}
				if _, err := g.QueryMode(ctx, mode, probes[(w+i)%len(probes)]); err != nil {
					done <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
			done <- nil
		}(w)
	}

	// Stream a batch through the scatter-gather path concurrently.
	streamDone := make(chan error, 1)
	go func() {
		in := make(chan *igq.Graph)
		out := g.QueryStream(ctx, Sub, in, 3)
		go func() {
			for i := 0; i < 20; i++ {
				in <- probes[i%len(probes)]
			}
			close(in)
		}()
		seen := 0
		for br := range out {
			if br.Err != nil {
				streamDone <- br.Err
				return
			}
			seen++
		}
		if seen != 20 {
			streamDone <- fmt.Errorf("stream emitted %d results, want 20", seen)
			return
		}
		streamDone <- nil
	}()

	ref := append([]*igq.Graph(nil), db...)
	extra := freshGraphs(t, 6, 2_000_000)
	next := 0
	mrng := rand.New(rand.NewSource(43))
	for step := 0; step < 6; step++ {
		if step == 3 {
			if err := g.Rebalance(3); err != nil {
				t.Fatalf("Rebalance: %v", err)
			}
			if g.Partitions() != 3 {
				t.Fatalf("Partitions() = %d after Rebalance(3)", g.Partitions())
			}
			continue
		}
		if step%2 == 0 {
			gs := extra[next : next+2]
			next += 2
			if err := g.AddGraphs(ctx, gs); err != nil {
				t.Fatalf("step %d: AddGraphs: %v", step, err)
			}
			ref = append(ref, gs...)
		} else {
			id := removableID(mrng, ref, g.Partitions())
			if err := g.RemoveGraphs(ctx, []int{id}); err != nil {
				t.Fatalf("step %d: RemoveGraphs: %v", step, err)
			}
			for i, rg := range ref {
				if rg.ID == id {
					ref[i] = ref[len(ref)-1]
					ref = ref[:len(ref)-1]
					break
				}
			}
		}
	}

	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-streamDone; err != nil {
		t.Fatal(err)
	}

	oracle, err := igq.NewEngine(append([]*igq.Graph(nil), ref...), igq.EngineOptions{CacheSize: 16, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range probes {
		want := oracleIDs(t, oracle, q)
		got, err := g.Query(ctx, q, igq.WithoutCache())
		if err != nil {
			t.Fatalf("final probe %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.IDs, want) {
			t.Fatalf("final probe %d: IDs %v != oracle %v", i, got.IDs, want)
		}
	}
	if st, ok := g.Stats(Sub); !ok || st.Panics != 0 {
		t.Fatalf("final stats: hosted=%v panics=%d", ok, st.Panics)
	}
}
