package workload

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/iso"
)

func testDB(t *testing.T) []*graph.Graph {
	t.Helper()
	return dataset.Generate(dataset.AIDS().Scaled(0.001, 1)) // 40 molecule-like graphs
}

func TestGenerateCountAndDeterminism(t *testing.T) {
	db := testDB(t)
	spec := Spec{NumQueries: 50, GraphDist: Zipf, NodeDist: Uniform, Alpha: 1.4, Seed: 9}
	a := Generate(db, spec)
	b := Generate(db, spec)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Target != b[i].Target || a[i].G.NumEdges() != b[i].G.NumEdges() {
			t.Fatalf("query %d differs between runs", i)
		}
	}
}

func TestQueriesAreSubgraphsOfSomeDatasetGraph(t *testing.T) {
	// extraction guarantees every query embeds in its source graph, hence
	// every query has a non-empty answer over the dataset
	db := testDB(t)
	qs := Generate(db, Spec{NumQueries: 30, GraphDist: Uniform, NodeDist: Uniform, Seed: 3})
	for i, q := range qs {
		found := false
		for _, g := range db {
			if iso.Subgraph(q.G, g) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d embeds in no dataset graph", i)
		}
	}
}

func TestQuerySizesFromDomain(t *testing.T) {
	db := testDB(t)
	qs := Generate(db, Spec{NumQueries: 100, GraphDist: Uniform, NodeDist: Uniform, Seed: 4})
	valid := map[int]bool{4: true, 8: true, 12: true, 16: true, 20: true}
	hit := map[int]bool{}
	for _, q := range qs {
		if !valid[q.Target] {
			t.Fatalf("target %d not in default domain", q.Target)
		}
		hit[q.Target] = true
		if q.G.NumEdges() > q.Target {
			t.Fatalf("query has %d edges, target %d", q.G.NumEdges(), q.Target)
		}
		if q.G.NumEdges() == 0 {
			t.Fatal("empty query emitted")
		}
	}
	if len(hit) < 4 {
		t.Errorf("only %d size classes seen in 100 queries", len(hit))
	}
}

func TestQueriesConnectedAndValid(t *testing.T) {
	db := testDB(t)
	qs := Generate(db, Spec{NumQueries: 60, GraphDist: Zipf, NodeDist: Zipf, Alpha: 2.0, Seed: 5})
	for i, q := range qs {
		if err := q.G.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if !q.G.IsConnected() {
			t.Fatalf("query %d disconnected (BFS extraction must stay connected)", i)
		}
	}
}

func TestExtractExactSizeWhenAvailable(t *testing.T) {
	// a long path graph supports exact-size extraction
	g := graph.New(30)
	for i := 0; i < 30; i++ {
		g.AddVertex(graph.Label(i % 3))
	}
	for i := 0; i+1 < 30; i++ {
		g.AddEdge(i, i+1)
	}
	q := Extract(g, 0, 8)
	if q.NumEdges() != 8 {
		t.Errorf("extracted %d edges, want 8", q.NumEdges())
	}
	if !iso.Subgraph(q, g) {
		t.Error("extracted query does not embed in source")
	}
}

func TestExtractTruncatesOnSmallComponents(t *testing.T) {
	g := graph.New(3)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	q := Extract(g, 0, 20)
	if q.NumEdges() != 2 {
		t.Errorf("extracted %d edges from a 2-edge graph", q.NumEdges())
	}
}

func TestExtractInvalidArgs(t *testing.T) {
	g := graph.New(2)
	g.AddVertex(1)
	g.AddVertex(1)
	g.AddEdge(0, 1)
	if q := Extract(g, -1, 4); q.NumVertices() != 0 {
		t.Error("negative start accepted")
	}
	if q := Extract(g, 5, 4); q.NumVertices() != 0 {
		t.Error("out-of-range start accepted")
	}
	if q := Extract(g, 0, 0); q.NumVertices() != 0 {
		t.Error("zero target accepted")
	}
}

func TestZipfSkewsGraphChoice(t *testing.T) {
	// under zipf-graph selection, low-index graphs must dominate
	db := testDB(t)
	rng := rand.New(rand.NewSource(11))
	pick := newPicker(rng, Zipf, 2.0, len(db))
	counts := make([]int, len(db))
	for i := 0; i < 5000; i++ {
		counts[pick()]++
	}
	if counts[0] < 2500 {
		t.Errorf("graph 0 picked %d/5000 — expected heavy head under α=2", counts[0])
	}
}

func TestSpecNames(t *testing.T) {
	s := Spec{GraphDist: Uniform, NodeDist: Uniform}
	if s.Name() != "uni-uni" {
		t.Errorf("name = %q", s.Name())
	}
	z := Spec{GraphDist: Zipf, NodeDist: Zipf, Alpha: 2.0}
	if z.Name() != "zipf-zipf(a=2.0)" {
		t.Errorf("name = %q", z.Name())
	}
	d := Spec{GraphDist: Zipf, NodeDist: Uniform} // default alpha
	if d.Name() != "zipf-uni(a=1.4)" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestGroupBySize(t *testing.T) {
	db := testDB(t)
	qs := Generate(db, Spec{NumQueries: 40, GraphDist: Uniform, NodeDist: Uniform, Seed: 12})
	groups := GroupBySize(qs)
	total := 0
	for size, g := range groups {
		total += len(g)
		for _, q := range g {
			if q.Target != size {
				t.Fatalf("query with target %d grouped under %d", q.Target, size)
			}
		}
	}
	if total != 40 {
		t.Errorf("groups hold %d queries, want 40", total)
	}
}

func TestFourWorkloads(t *testing.T) {
	ws := FourWorkloads(10, 1.4, 99)
	if len(ws) != 4 {
		t.Fatalf("got %d workloads", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name()] = true
		if w.NumQueries != 10 {
			t.Errorf("workload %s queries = %d", w.Name(), w.NumQueries)
		}
	}
	if len(names) != 4 {
		t.Errorf("duplicate workload names: %v", names)
	}
}

func TestEmptyInputs(t *testing.T) {
	if qs := Generate(nil, Spec{NumQueries: 5}); qs != nil {
		t.Error("nil db should yield nil")
	}
	db := testDB(t)
	if qs := Generate(db, Spec{NumQueries: 0}); qs != nil {
		t.Error("zero queries should yield nil")
	}
}
