// Package workload synthesises query streams following the paper's §7.1
// protocol: since no public query logs exist, queries are extracted from the
// dataset graphs themselves.
//
// Three distributions govern a workload:
//
//  1. which dataset graph a query is extracted from (uniform or Zipf α),
//  2. which start node within that graph (uniform or Zipf α),
//  3. the query size, drawn uniformly from {4, 8, 12, 16, 20} edges.
//
// Extraction performs a BFS from the start node, including the unvisited
// edges of each traversed node until the target edge count is reached. The
// four named workloads — uni-uni, uni-zipf, zipf-uni, zipf-zipf — are the
// paper's notation <graph-dist>-<node-dist>. Skewed selection is what makes
// future queries share subgraph/supergraph relationships with past ones,
// the phenomenon iGQ exploits.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Dist selects a sampling distribution.
type Dist int

const (
	// Uniform sampling.
	Uniform Dist = iota
	// Zipf sampling with the workload's Alpha.
	Zipf
)

// String returns "uni" or "zipf".
func (d Dist) String() string {
	if d == Zipf {
		return "zipf"
	}
	return "uni"
}

// DefaultSizes is the paper's query size domain (edges).
var DefaultSizes = []int{4, 8, 12, 16, 20}

// Spec describes a workload.
type Spec struct {
	NumQueries int
	GraphDist  Dist
	NodeDist   Dist
	Alpha      float64 // Zipf skew; paper default 1.4 (also 1.1, 2.0, 2.4)
	Sizes      []int   // target edge counts; nil → DefaultSizes
	Seed       int64
}

// Name renders the paper's workload notation, e.g. "zipf-uni(α=1.4)".
func (s Spec) Name() string {
	base := s.GraphDist.String() + "-" + s.NodeDist.String()
	if s.GraphDist == Zipf || s.NodeDist == Zipf {
		return fmt.Sprintf("%s(a=%.1f)", base, s.alpha())
	}
	return base
}

func (s Spec) alpha() float64 {
	if s.Alpha <= 1 {
		return 1.4
	}
	return s.Alpha
}

// Query is one generated query with its target size class (Q4..Q20 in the
// paper's per-group figures).
type Query struct {
	G      *graph.Graph
	Target int // requested edge count; G may be smaller in tiny components
}

// Generate produces the query stream deterministically from the seed.
func Generate(db []*graph.Graph, s Spec) []Query {
	if len(db) == 0 || s.NumQueries <= 0 {
		return nil
	}
	sizes := s.Sizes
	if len(sizes) == 0 {
		sizes = DefaultSizes
	}
	rng := rand.New(rand.NewSource(s.Seed))
	graphPick := newPicker(rng, s.GraphDist, s.alpha(), len(db))

	out := make([]Query, 0, s.NumQueries)
	for len(out) < s.NumQueries {
		g := db[graphPick()]
		if g.NumVertices() == 0 {
			continue
		}
		nodePick := newPicker(rng, s.NodeDist, s.alpha(), g.NumVertices())
		target := sizes[rng.Intn(len(sizes))]
		q := Extract(g, nodePick(), target)
		if q.NumEdges() == 0 {
			continue
		}
		out = append(out, Query{G: q, Target: target})
	}
	return out
}

// newPicker returns an index sampler over [0, n).
func newPicker(rng *rand.Rand, d Dist, alpha float64, n int) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	if d == Zipf {
		z := rand.NewZipf(rng, alpha, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(n) }
}

// Extract performs the paper's BFS extraction: traverse from start,
// including each traversed node's unvisited edges until targetEdges edges
// are collected, then return the graph induced by the collected edges.
func Extract(g *graph.Graph, start, targetEdges int) *graph.Graph {
	if start < 0 || start >= g.NumVertices() || targetEdges <= 0 {
		return graph.New(0)
	}
	type edge struct{ u, v int32 }
	visited := map[int32]bool{int32(start): true}
	queue := []int32{int32(start)}
	var edges []edge
	seenEdge := map[[2]int32]bool{}

	for len(queue) > 0 && len(edges) < targetEdges {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if len(edges) == targetEdges {
				break
			}
			key := [2]int32{u, v}
			if u > v {
				key = [2]int32{v, u}
			}
			if seenEdge[key] {
				continue
			}
			seenEdge[key] = true
			edges = append(edges, edge{u, v})
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}

	// build the query graph over the touched vertices
	idx := make(map[int32]int, len(visited))
	q := graph.New(len(visited))
	for _, e := range edges {
		for _, w := range [2]int32{e.u, e.v} {
			if _, ok := idx[w]; !ok {
				idx[w] = q.AddVertex(g.Label(int(w)))
			}
		}
	}
	for _, e := range edges {
		q.AddEdgeLabeled(idx[e.u], idx[e.v], g.EdgeLabel(int(e.u), int(e.v)))
	}
	return q
}

// GroupBySize partitions queries by target size class, preserving order.
func GroupBySize(qs []Query) map[int][]Query {
	out := map[int][]Query{}
	for _, q := range qs {
		out[q.Target] = append(out[q.Target], q)
	}
	return out
}

// FourWorkloads returns the paper's four standard workloads with shared
// parameters: uni-uni, uni-zipf, zipf-uni, zipf-zipf.
func FourWorkloads(numQueries int, alpha float64, seed int64) []Spec {
	mk := func(g, n Dist, i int64) Spec {
		return Spec{
			NumQueries: numQueries, GraphDist: g, NodeDist: n,
			Alpha: alpha, Seed: seed + i,
		}
	}
	return []Spec{
		mk(Uniform, Uniform, 0),
		mk(Uniform, Zipf, 1),
		mk(Zipf, Uniform, 2),
		mk(Zipf, Zipf, 3),
	}
}
