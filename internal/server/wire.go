// Package server is the network serving front-end: it exposes a live iGQ
// engine — queries, streaming queries, dataset mutation, stats and
// snapshotting — as an HTTP/JSON API with bounded admission, per-request
// deadlines, panic containment and graceful drain. See Server for the
// queueing model and Client for the matching Go client.
package server

import (
	"errors"
	"fmt"
	"time"

	igq "repro"
	"repro/internal/partition"
)

// WireGraph is the JSON form of a labeled graph: vertex i carries
// Labels[i], and each edge is [u, v] or [u, v, edgeLabel]. Dataset graphs
// additionally carry their position-independent ID when one is known.
type WireGraph struct {
	ID     int          `json:"id,omitempty"`
	Labels []igq.Label  `json:"labels"`
	Edges  [][3]int     `json:"edges,omitempty"`
}

// EncodeGraph converts a graph to its wire form.
func EncodeGraph(g *igq.Graph) WireGraph {
	w := WireGraph{ID: g.ID, Labels: g.Labels()}
	g.EdgesLabeled(func(u, v int, l igq.Label) {
		w.Edges = append(w.Edges, [3]int{u, v, int(l)})
	})
	return w
}

// DecodeGraph converts a wire graph back to a validated *igq.Graph.
func DecodeGraph(w WireGraph) (*igq.Graph, error) {
	g := igq.NewGraph(len(w.Labels))
	for _, l := range w.Labels {
		g.AddVertex(l)
	}
	for _, e := range w.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= len(w.Labels) || v < 0 || v >= len(w.Labels) {
			return nil, fmt.Errorf("edge (%d,%d) outside %d vertices", u, v, len(w.Labels))
		}
		if !g.AddEdgeLabeled(u, v, igq.Label(e[2])) {
			return nil, fmt.Errorf("invalid or duplicate edge (%d,%d)", u, v)
		}
	}
	g.ID = w.ID
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Query modes on the wire.
const (
	ModeSub   = "sub"   // which dataset graphs contain the query
	ModeSuper = "super" // which dataset graphs are contained in the query
)

// QueryRequest is the body of POST /query and each line of POST
// /query/stream.
type QueryRequest struct {
	Graph WireGraph `json:"graph"`
	// Mode selects the query direction; empty means "sub". "super"
	// requires the server to host a supergraph engine.
	Mode string `json:"mode,omitempty"`
	// TimeoutMillis caps this request's processing time (0 → the server's
	// default); mapped onto context cancellation, so an expired query
	// aborts mid-verification and leaves no trace in the cache.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses iGQ for this query; NoAdmit probes the cache but
	// never admits (the latency-bounded serving profile).
	NoCache bool `json:"no_cache,omitempty"`
	NoAdmit bool `json:"no_admit,omitempty"`
}

// QueryReply is the body of a successful /query response and each line of
// a /query/stream response.
type QueryReply struct {
	// Index is the arrival index of the query within a stream (0 for
	// single queries); stream replies are emitted in completion order.
	Index int `json:"index"`
	// IDs are the dataset positions answering the query — or, on a
	// partitioned server, the answering graphs' global IDs sorted
	// ascending (a partitioned dataset has no global position space).
	IDs []int32 `json:"ids"`
	// Stats are the per-query iGQ counters.
	Stats igq.QueryStats `json:"stats"`
	// Error is set instead of IDs when this query failed; the stream (and
	// the server) keep going.
	Error string `json:"error,omitempty"`
}

// MutateRequest is the body of POST /graphs/add (Graphs) and POST
// /graphs/remove (Positions). On a partitioned server Positions carry
// global graph IDs instead of dataset positions, and added graphs must
// carry unique IDs (removal routes by ID to the owning partition).
type MutateRequest struct {
	Graphs    []WireGraph `json:"graphs,omitempty"`
	Positions []int       `json:"positions,omitempty"`
}

// MutateReply reports the post-mutation dataset size.
type MutateReply struct {
	DatasetSize int `json:"dataset_size"`
}

// ServerStats is the serving-layer half of GET /stats.
type ServerStats struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Served         int64   `json:"served"`          // requests that reached an engine
	Rejected       int64   `json:"rejected"`        // 429s from a full admission queue
	Errors         int64   `json:"errors"`          // query executions that returned an error
	InFlight       int     `json:"in_flight"`       // queries executing right now
	Workers        int     `json:"workers"`         // execution slots
	QueueDepth     int     `json:"queue_depth"`     // waiting slots beyond Workers
	Maintenance    int64   `json:"maintenance"`     // journal maintenance passes that wrote the lineage file
	SnapshotsSaved int64   `json:"snapshots_saved"` // explicit + shutdown snapshot saves
	SuperRebuilds  int64   `json:"super_rebuilds"`  // O(dataset) supergraph rebuilds (incremental path unavailable)
	Partitions     int     `json:"partitions,omitempty"` // partition count (0 = single-engine)
}

// StatsReply is the body of GET /stats. On a partitioned server Sub and
// Super aggregate across partitions and Partitions breaks them down.
type StatsReply struct {
	Server     ServerStats      `json:"server"`
	Sub        igq.EngineStats  `json:"sub"`
	Super      *igq.EngineStats `json:"super,omitempty"`
	Partitions []partition.Stat `json:"partitions,omitempty"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}

// ErrQueueFull is returned (client-side) when the server rejected a query
// with 429: every execution and waiting slot was taken. The caller should
// back off and retry; the server never queues unboundedly.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrWarming is the sentinel under an *UnavailableError: the process is up
// but its engine is not ready yet (the bind-first warming front door's 503).
// Like ErrQueueFull this is back-pressure, not failure — back off for the
// advertised Retry-After and retry.
var ErrWarming = errors.New("server: warming up")

// UnavailableError is a 503 response: the serving process answered, but
// cannot serve yet. RetryAfter carries the server's Retry-After hint.
type UnavailableError struct {
	RetryAfter time.Duration
	Msg        string
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("server: unavailable (retry after %v): %s", e.RetryAfter, e.Msg)
}

// Unwrap lets errors.Is(err, ErrWarming) classify the 503 without caring
// about the hint.
func (e *UnavailableError) Unwrap() error { return ErrWarming }

// APIError is a non-2xx server response surfaced by the Client.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Msg)
}
