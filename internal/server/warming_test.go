package server

import (
	"context"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	igq "repro"
)

// TestWarmingLifecycle exercises the bind-first startup protocol end to end
// on a real listener, the way cmd/igqserve wires it: the port is bound and
// answering before the engine exists, so an orchestrator probe never sees
// connection-refused — it sees "warming", then "ok".
func TestWarmingLifecycle(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	warm := NewWarming()
	hs := &http.Server{Handler: warm}
	go hs.Serve(l)
	defer hs.Close()
	base := "http://" + l.Addr().String()

	// Phase 1: bound but not ready. Liveness answers immediately; everything
	// else is an explicit 503 with a retry hint, never a refused connection.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz while warming: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "warming\n" {
		t.Fatalf("warming healthz = %d %q, want 200 \"warming\\n\"", resp.StatusCode, body)
	}
	resp, err = http.Post(base+"/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("query while warming: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming query status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("warming 503 carries no Retry-After hint")
	}

	// Phase 2: load the engine lazily from a snapshot — the work the warming
	// window covers — and flip the front door.
	db := testDB(t)
	opt := igq.EngineOptions{Method: igq.GGSX, Shards: 8, DisableCache: true}
	built, err := igq.NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "engine.snap")
	if err := igq.SaveEngineFile(snap, built); err != nil {
		t.Fatal(err)
	}
	eng, _, err := igq.LoadEngineFile(snap, db, opt, igq.WithLazyLoad(0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s, err := New(Config{Engine: eng, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm.Ready(s.Handler())
	s.StartBackground()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("ready healthz = %d %q, want 200 \"ok\\n\"", resp.StatusCode, body)
	}

	// Queries now flow through the same connection path that answered 503,
	// and the lazily loaded engine must answer like a direct oracle.
	oracle, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.GGSX, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(base)
	ctx := context.Background()
	for i, q := range testQueries(db, 10, 11) {
		reply, err := client.QueryGraph(ctx, q, ModeSub)
		if err != nil {
			t.Fatalf("query %d after ready: %v", i, err)
		}
		want, err := oracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reply.IDs, nonNil(want.IDs)) {
			t.Fatalf("query %d: wire %v, direct %v", i, reply.IDs, want.IDs)
		}
	}

	// The residency of the lazy engine is observable on /metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`igq_engine_lazy{mode="sub"} 1`,
		`igq_engine_total_shards{mode="sub"} 8`,
		`igq_engine_resident_shards{mode="sub"}`,
		`igq_engine_shard_faults_total{mode="sub"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
