package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	igq "repro"
)

// Client is the Go client for a Server. Safe for concurrent use; one
// Client multiplexes any number of goroutines over net/http's pooled
// connections.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a server at base (e.g. "http://127.0.0.1:7468").
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// post sends a JSON body and decodes a JSON reply, translating non-2xx
// responses into *APIError (or ErrQueueFull for 429).
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(resp *http.Response) error {
	var er errorReply
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
		msg = er.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("%w: %s", ErrQueueFull, msg)
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		ra := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		return &UnavailableError{RetryAfter: ra, Msg: msg}
	}
	return &APIError{Status: resp.StatusCode, Msg: msg}
}

// Query answers one query over the wire.
func (c *Client) Query(ctx context.Context, req QueryRequest) (QueryReply, error) {
	var reply QueryReply
	err := c.post(ctx, "/query", req, &reply)
	return reply, err
}

// QueryGraph is the common case: one graph, one mode, server defaults.
func (c *Client) QueryGraph(ctx context.Context, g *igq.Graph, mode string) (QueryReply, error) {
	return c.Query(ctx, QueryRequest{Graph: EncodeGraph(g), Mode: mode})
}

// QueryStream runs the NDJSON streaming endpoint: requests are read from
// in (send then close), replies arrive on the returned channel in the
// server's completion order and the channel closes when the stream ends.
// A reply whose Error is set is a per-query failure; an error on the
// returned error channel is a transport- or stream-level failure. The
// error channel closes when the stream ends, so `err := <-errc` yields
// nil on a clean finish. mode applies to every query; timeout bounds the
// whole stream (0 → server default).
func (c *Client) QueryStream(ctx context.Context, mode string, timeout time.Duration, in <-chan QueryRequest) (<-chan QueryReply, <-chan error) {
	replies := make(chan QueryReply)
	errc := make(chan error, 1)
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for req := range in {
			if err := enc.Encode(req); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	url := c.base + "/query/stream"
	sep := "?"
	if mode != "" {
		url += sep + "mode=" + mode
		sep = "&"
	}
	if timeout > 0 {
		url += fmt.Sprintf("%stimeout_ms=%d", sep, timeout.Milliseconds())
	}
	go func() {
		defer close(replies)
		defer close(errc)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
		if err != nil {
			errc <- err
			return
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := c.hc.Do(req)
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			errc <- decodeAPIError(resp)
			return
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var reply QueryReply
			if err := dec.Decode(&reply); err != nil {
				if err != io.EOF {
					errc <- err
				}
				return
			}
			select {
			case replies <- reply:
			case <-ctx.Done():
				errc <- context.Cause(ctx)
				return
			}
		}
	}()
	return replies, errc
}

// AddGraphs appends graphs to the server's dataset.
func (c *Client) AddGraphs(ctx context.Context, gs []*igq.Graph) (MutateReply, error) {
	req := MutateRequest{Graphs: make([]WireGraph, len(gs))}
	for i, g := range gs {
		req.Graphs[i] = EncodeGraph(g)
	}
	var reply MutateReply
	err := c.post(ctx, "/graphs/add", req, &reply)
	return reply, err
}

// RemoveGraphs removes the graphs at the given dataset positions
// (swap-removal semantics; see igq.Engine.RemoveGraphs).
func (c *Client) RemoveGraphs(ctx context.Context, positions []int) (MutateReply, error) {
	var reply MutateReply
	err := c.post(ctx, "/graphs/remove", MutateRequest{Positions: positions}, &reply)
	return reply, err
}

// Stats fetches the engine and serving-layer counters.
func (c *Client) Stats(ctx context.Context) (StatsReply, error) {
	var reply StatsReply
	err := c.get(ctx, "/stats", &reply)
	return reply, err
}

// Save asks the server to write its snapshot now.
func (c *Client) Save(ctx context.Context) error {
	return c.post(ctx, "/save", struct{}{}, nil)
}

// Healthz reports whether the server answers its health check.
func (c *Client) Healthz(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil)
}
