package server

import (
	"io"
	"net/http"
	"sync/atomic"
)

// Warming is the bind-first front door of a serving process. A server that
// loads (or builds) its engine before calling net.Listen leaves a window in
// which clients and orchestrator probes get connection-refused —
// indistinguishable from a dead process. Binding first and serving Warming
// until the engine is ready turns that window into an explicit protocol:
//
//   - GET /healthz answers 200 "warming\n" immediately — liveness: the
//     process is up and making progress (readiness is signalled by the body
//     flipping to "ok").
//   - Every other request answers 503 with a Retry-After hint — the client
//     knows to back off and retry, instead of concluding the host is gone.
//
// Ready installs the real handler atomically; in-flight warming responses
// finish as 503s, every request accepted afterwards is served normally.
// With lazy snapshot loading (igq.WithLazyLoad) the warming window is just
// the metadata read, so readiness arrives in O(touched shards) — this
// handler is what makes that time observable from outside.
type Warming struct {
	h atomic.Pointer[http.Handler]
}

// NewWarming returns a Warming front door with no handler installed.
func NewWarming() *Warming { return &Warming{} }

// Ready installs the real handler; every request from this point on is
// delegated to it.
func (wm *Warming) Ready(h http.Handler) { wm.h.Store(&h) }

func (wm *Warming) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if hp := wm.h.Load(); hp != nil {
		(*hp).ServeHTTP(w, r)
		return
	}
	if r.Method == http.MethodGet && r.URL.Path == "/healthz" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "warming\n")
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "warming: engine not ready")
}
