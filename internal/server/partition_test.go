package server

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"

	igq "repro"
	"repro/internal/index"
	"repro/internal/partition"
)

// sortedMatchIDs answers q on an oracle engine and returns the matched
// graphs' global IDs sorted ascending — the wire answer contract of a
// partitioned server.
func sortedMatchIDs(t *testing.T, oracle *igq.Engine, q *igq.Graph) []int32 {
	t.Helper()
	r, err := oracle.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int32, 0, len(r.Matches))
	for _, m := range r.Matches {
		ids = append(ids, int32(m.ID))
	}
	slices.Sort(ids)
	return ids
}

// TestSuperMutationIncremental: with the (now index.Mutable) Containment
// method, a mutation must update the supergraph engine in place — O(delta),
// no rebuild — and keep its answers identical to a from-scratch engine.
func TestSuperMutationIncremental(t *testing.T) {
	db := testDB(t)
	eng, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, CacheSize: 30, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	super, err := igq.NewEngine(db, igq.EngineOptions{Supergraph: true, CacheSize: 30, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, _, client := newTestServer(t, Config{
		Engine: eng, Super: super,
		SuperOptions: igq.EngineOptions{Supergraph: true},
	})
	ctx := context.Background()

	// Warm the super cache so the mutation has cache state to maintain.
	warm := testQueries(db, 6, 51)
	for _, q := range warm {
		if _, err := client.QueryGraph(ctx, q, ModeSuper); err != nil {
			t.Fatal(err)
		}
	}

	extra := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.0005, 9))
	if _, err := client.AddGraphs(ctx, extra); err != nil {
		t.Fatalf("AddGraphs: %v", err)
	}
	if _, err := client.RemoveGraphs(ctx, []int{1, 4}); err != nil {
		t.Fatalf("RemoveGraphs: %v", err)
	}

	if s.super.Load() != super {
		t.Fatal("incremental super mutation replaced the engine (rebuild path taken)")
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.SuperRebuilds != 0 {
		t.Fatalf("SuperRebuilds = %d, want 0 (Containment is Mutable)", st.Server.SuperRebuilds)
	}

	oracle, err := igq.NewEngine(eng.Dataset(), igq.EngineOptions{Supergraph: true, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range testQueries(eng.Dataset(), 10, 53) {
		got, err := client.QueryGraph(ctx, q, ModeSuper)
		if err != nil {
			t.Fatalf("super query %d: %v", i, err)
		}
		want, err := oracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.IDs, nonNil(want.IDs)) {
			t.Fatalf("super query %d after incremental mutation: wire %v, oracle %v", i, got.IDs, want.IDs)
		}
	}
}

// opaqueMethod forwards only the core index.Method surface, hiding the
// optional extensions — in particular index.Mutable.
type opaqueMethod struct{ index.Method }

// TestSuperMutationRebuildFallback: when the supergraph method is not
// Mutable, a mutation must fall back to the O(dataset) rebuild, count it,
// and keep serving correct answers.
func TestSuperMutationRebuildFallback(t *testing.T) {
	db := testDB(t)
	hide := func(m any) any { return opaqueMethod{m.(index.Method)} }
	eng, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, CacheSize: 30, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	superOpt := igq.EngineOptions{Supergraph: true, WrapMethod: hide}
	super, err := igq.NewEngine(db, superOpt)
	if err != nil {
		t.Fatal(err)
	}
	s, _, client := newTestServer(t, Config{Engine: eng, Super: super, SuperOptions: superOpt})
	ctx := context.Background()

	extra := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.0005, 9))
	if _, err := client.AddGraphs(ctx, extra); err != nil {
		t.Fatalf("AddGraphs: %v", err)
	}
	if s.super.Load() == super {
		t.Fatal("non-Mutable super method was not rebuilt")
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.SuperRebuilds < 1 {
		t.Fatalf("SuperRebuilds = %d, want >= 1", st.Server.SuperRebuilds)
	}

	oracle, err := igq.NewEngine(eng.Dataset(), igq.EngineOptions{Supergraph: true, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range testQueries(eng.Dataset(), 8, 57) {
		got, err := client.QueryGraph(ctx, q, ModeSuper)
		if err != nil {
			t.Fatalf("super query %d: %v", i, err)
		}
		want, err := oracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.IDs, nonNil(want.IDs)) {
			t.Fatalf("super query %d after rebuild: wire %v, oracle %v", i, got.IDs, want.IDs)
		}
	}
}

// TestPartitionedServer drives a partition.Group through the whole HTTP
// surface: scatter-gather queries in both modes against a single-engine
// oracle, streaming, routed mutations (removal by global ID), per-partition
// stats and metrics, and a per-partition snapshot save.
func TestPartitionedServer(t *testing.T) {
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.002, 1))
	parts := 3
	for ; parts > 1; parts-- {
		counts := make([]int, parts)
		for _, g := range db {
			counts[partition.PartitionOf(g.ID, parts)]++
		}
		if !slices.Contains(counts, 0) {
			break
		}
	}
	grp, err := partition.New(db, partition.Options{
		Partitions: parts,
		Engine:     igq.EngineOptions{CacheSize: 16, Window: 4},
		Super:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "group.snap")
	s, hs, client := newTestServer(t, Config{Group: grp, SnapshotPath: snapPath})
	ctx := context.Background()

	oracleFor := func(mode string) *igq.Engine {
		opt := igq.EngineOptions{DisableCache: true}
		if mode == ModeSuper {
			opt.Supergraph = true
		}
		oracle, err := igq.NewEngine(grp.Dataset(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return oracle
	}
	checkAnswers := func(stage string, qs []*igq.Graph) {
		for _, mode := range []string{ModeSub, ModeSuper} {
			oracle := oracleFor(mode)
			for i, q := range qs {
				got, err := client.QueryGraph(ctx, q, mode)
				if err != nil {
					t.Fatalf("%s: %s query %d: %v", stage, mode, i, err)
				}
				want := sortedMatchIDs(t, oracle, q)
				if !reflect.DeepEqual(got.IDs, nonNil(want)) {
					t.Fatalf("%s: %s query %d: wire %v, oracle %v", stage, mode, i, got.IDs, want)
				}
			}
		}
	}
	checkAnswers("initial", testQueries(db, 12, 61))

	// Routed mutations over the wire: adds carry fresh IDs, removals are
	// global IDs (not positions).
	extra := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.0005, 9))
	for i, g := range extra {
		g.ID = 50_000 + i
	}
	reply, err := client.AddGraphs(ctx, extra)
	if err != nil {
		t.Fatalf("AddGraphs: %v", err)
	}
	if reply.DatasetSize != len(db)+len(extra) {
		t.Fatalf("dataset size %d after add, want %d", reply.DatasetSize, len(db)+len(extra))
	}
	rng := rand.New(rand.NewSource(63))
	counts := make([]int, parts)
	for _, g := range grp.Dataset() {
		counts[partition.PartitionOf(g.ID, parts)]++
	}
	var removeID int
	for {
		g := db[rng.Intn(len(db))]
		if counts[partition.PartitionOf(g.ID, parts)] >= 2 {
			removeID = g.ID
			break
		}
	}
	if _, err := client.RemoveGraphs(ctx, []int{removeID}); err != nil {
		t.Fatalf("RemoveGraphs(%d): %v", removeID, err)
	}
	if _, err := client.RemoveGraphs(ctx, []int{removeID}); err == nil {
		t.Fatal("removing an already-removed ID succeeded")
	}
	checkAnswers("mutated", testQueries(grp.Dataset(), 12, 67))

	// Streaming scatter-gather.
	in := make(chan QueryRequest)
	go func() {
		for _, q := range testQueries(grp.Dataset(), 8, 71) {
			in <- QueryRequest{Graph: EncodeGraph(q)}
		}
		close(in)
	}()
	replies, errc := client.QueryStream(ctx, ModeSub, 0, in)
	seen := 0
	for range replies {
		seen++
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream: %v", err)
	}
	if seen != 8 {
		t.Fatalf("stream emitted %d replies, want 8", seen)
	}

	// Stats carry the partition breakdown, and the aggregate matches it.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Partitions != parts || len(st.Partitions) != parts {
		t.Fatalf("stats partitions %d/%d, want %d", st.Server.Partitions, len(st.Partitions), parts)
	}
	var queries int64
	graphs := 0
	for _, ps := range st.Partitions {
		queries += ps.Sub.Queries
		graphs += ps.Graphs
		if ps.Super == nil {
			t.Fatal("partition stats missing super breakdown")
		}
	}
	if queries != st.Sub.Queries {
		t.Fatalf("aggregate queries %d != partition sum %d", st.Sub.Queries, queries)
	}
	if graphs != grp.NumGraphs() {
		t.Fatalf("partition graph counts sum to %d, want %d", graphs, grp.NumGraphs())
	}

	// Metrics expose the per-partition gauges.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"igq_partitions ", `igq_partition_graphs{part="0"}`, `igq_partition_queries_total{part="0",mode="super"}`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// Save writes one snapshot per partition; the lineage restores into a
	// group that serves the same answers.
	if err := client.Save(ctx); err != nil {
		t.Fatalf("save: %v", err)
	}
	if !partition.HaveAllParts(snapPath, parts) {
		t.Fatal("save did not write every partition file")
	}
	restored, _, err := partition.LoadGroup(snapPath, grp.Dataset(), partition.Options{
		Partitions: parts,
		Engine:     igq.EngineOptions{CacheSize: 16, Window: 4},
	})
	if err != nil {
		t.Fatalf("LoadGroup: %v", err)
	}
	if restored.NumGraphs() != grp.NumGraphs() {
		t.Fatalf("restored %d graphs, want %d", restored.NumGraphs(), grp.NumGraphs())
	}
	if s.cfg.Group != grp {
		t.Fatal("server group changed identity")
	}

	// Config validation: Group excludes Engine-mode options.
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted neither Engine nor Group")
	}
	if _, err := New(Config{Group: grp, Super: s.super.Load()}); err == nil && s.super.Load() != nil {
		t.Fatal("New accepted Group+Super")
	}
}
