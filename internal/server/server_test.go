package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	igq "repro"
	"repro/internal/index"
	"repro/internal/index/grapes"
)

func testDB(t *testing.T) []*igq.Graph {
	t.Helper()
	return igq.GenerateDataset(igq.AIDSSpec().Scaled(0.001, 1))
}

func testQueries(db []*igq.Graph, n int, seed int64) []*igq.Graph {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*igq.Graph, 0, n)
	for i := 0; i < n; i++ {
		qs = append(qs, igq.ExtractQuery(db[rng.Intn(len(db))], rng.Intn(3), 3+rng.Intn(6)))
	}
	for i := 4; i < len(qs); i += 4 {
		qs[i] = qs[i-4].Clone()
	}
	return qs
}

// newTestServer wires a Server into an httptest front and returns the
// pieces lifecycle tests poke at.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, NewClient(hs.URL)
}

// TestWireGraphRoundTrip: the JSON codec must preserve structure exactly.
func TestWireGraphRoundTrip(t *testing.T) {
	db := testDB(t)
	for i, g := range db[:10] {
		back, err := DecodeGraph(EncodeGraph(g))
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !igq.Isomorphic(g, back) {
			t.Fatalf("graph %d: round trip not isomorphic", i)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("graph %d: size changed in round trip", i)
		}
	}
	if _, err := DecodeGraph(WireGraph{Labels: []igq.Label{1}, Edges: [][3]int{{0, 5, 0}}}); err == nil {
		t.Fatal("edge outside vertex range decoded")
	}
}

// TestQueryOverWire: single-query answers over HTTP must equal the
// engine's direct answers, in both modes.
func TestQueryOverWire(t *testing.T) {
	db := testDB(t)
	sub, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, CacheSize: 30, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	super, err := igq.NewEngine(db, igq.EngineOptions{Supergraph: true, CacheSize: 30, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Independent oracles so served queries do not warm the oracle cache.
	subOracle, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	superOracle, err := igq.NewEngine(db, igq.EngineOptions{Supergraph: true, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newTestServer(t, Config{Engine: sub, Super: super})

	ctx := context.Background()
	for i, q := range testQueries(db, 25, 3) {
		reply, err := client.QueryGraph(ctx, q, ModeSub)
		if err != nil {
			t.Fatalf("sub query %d: %v", i, err)
		}
		want, err := subOracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reply.IDs, nonNil(want.IDs)) {
			t.Fatalf("sub query %d: wire %v, direct %v", i, reply.IDs, want.IDs)
		}

		sreply, err := client.QueryGraph(ctx, q, ModeSuper)
		if err != nil {
			t.Fatalf("super query %d: %v", i, err)
		}
		swant, err := superOracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sreply.IDs, nonNil(swant.IDs)) {
			t.Fatalf("super query %d: wire %v, direct %v", i, sreply.IDs, swant.IDs)
		}
	}

	if _, err := client.QueryGraph(ctx, testQueries(db, 1, 4)[0], "sideways"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestQueryStreamOverWire: the NDJSON streaming endpoint must answer every
// query of a stream larger than the execution-slot pool, identically to
// the direct engine.
func TestQueryStreamOverWire(t *testing.T) {
	db := testDB(t)
	eng, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, CacheSize: 30, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newTestServer(t, Config{Engine: eng, Workers: 2})

	queries := testQueries(db, 30, 7)
	in := make(chan QueryRequest)
	go func() {
		defer close(in)
		for _, q := range queries {
			in <- QueryRequest{Graph: EncodeGraph(q)}
		}
	}()
	replies, errc := client.QueryStream(context.Background(), "", 0, in)
	got := make([]*QueryReply, len(queries))
	for r := range replies {
		if r.Index < 0 || r.Index >= len(queries) || got[r.Index] != nil {
			t.Fatalf("bad or duplicate stream index %d", r.Index)
		}
		rr := r
		got[rr.Index] = &rr
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream error: %v", err)
	}
	for i, r := range got {
		if r == nil {
			t.Fatalf("query %d never answered", i)
		}
		if r.Error != "" {
			t.Fatalf("query %d: %s", i, r.Error)
		}
		want, err := oracle.Query(context.Background(), queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.IDs, nonNil(want.IDs)) {
			t.Fatalf("query %d: stream %v, direct %v", i, r.IDs, want.IDs)
		}
	}
}

// TestBackpressureQueueFull: with every execution and waiting slot taken,
// the next query must be rejected immediately with 429 — and the waiting
// queries must still complete once slots free up. Nothing blocks forever.
func TestBackpressureQueueFull(t *testing.T) {
	db := testDB(t)
	eng, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.GGSX})
	if err != nil {
		t.Fatal(err)
	}
	s, _, client := newTestServer(t, Config{Engine: eng, Workers: 2, QueueDepth: 2})

	// Occupy every execution slot so admitted queries park in acquireRun.
	// The deferred release also covers t.Fatal paths: without it the parked
	// requests would hold the httptest server open forever.
	for i := 0; i < cap(s.run); i++ {
		s.run <- struct{}{}
	}
	var freeOnce sync.Once
	freeSlots := func() {
		freeOnce.Do(func() {
			for i := 0; i < cap(s.run); i++ {
				<-s.run
			}
		})
	}
	defer freeSlots()

	q := testQueries(db, 1, 11)[0]
	var wg sync.WaitGroup
	parked := cap(s.queue) - 1
	results := make(chan error, cap(s.queue))
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.QueryGraph(context.Background(), q, ModeSub)
			results <- err
		}()
	}
	waitQueue := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for len(s.queue) != n {
			if time.Now().After(deadline) {
				t.Fatalf("admission queue stuck at %d, want %d", len(s.queue), n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitQueue(parked)

	// A query taking the last admission slot parks behind the busy workers;
	// its deadline must cut it loose with 504, not an eternal wait.
	_, err = client.Query(context.Background(), QueryRequest{Graph: EncodeGraph(q), TimeoutMillis: 50})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("parked query with deadline returned %v, want 504", err)
	}

	// Now saturate the queue completely: the next request must bounce with
	// 429 immediately, not block.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := client.QueryGraph(context.Background(), q, ModeSub)
		results <- err
	}()
	waitQueue(cap(s.queue))
	start := time.Now()
	_, err = client.QueryGraph(context.Background(), q, ModeSub)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated server returned %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("rejection took %v — 429 must be immediate", d)
	}
	if s.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}

	// Free the slots: every parked query must complete successfully.
	freeSlots()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("parked query failed after slots freed: %v", err)
		}
	}
}

// slowIndex wraps a built method and stretches every verification — the
// deadline tests' stand-in for an expensive query. Interface embedding
// deliberately drops the optional capabilities; tests that persist use
// slowGrapes below.
type slowIndex struct {
	index.Method
	delay time.Duration
}

func (s *slowIndex) Verify(q *igq.Graph, id int32) bool {
	time.Sleep(s.delay)
	return s.Method.Verify(q, id)
}

// TestDeadlineLeavesNoTrace: a query cancelled by its deadline must
// return 504 and leave the engine's stats and cache exactly as they were
// — no counted query, no admission, no window entry.
func TestDeadlineLeavesNoTrace(t *testing.T) {
	db := testDB(t)
	eng, err := igq.NewEngine(db, igq.EngineOptions{
		Method: igq.GGSX, CacheSize: 30, Window: 10,
		WrapMethod: func(m any) any { return &slowIndex{Method: m.(index.Method), delay: 25 * time.Millisecond} },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newTestServer(t, Config{Engine: eng})

	// Warm up with one full query so the engine has some state to disturb.
	q := testQueries(db, 2, 13)
	if _, err := client.QueryGraph(context.Background(), q[0], ModeSub); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	before := eng.Stats()

	_, err = client.Query(context.Background(), QueryRequest{Graph: EncodeGraph(q[1]), TimeoutMillis: 5})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("deadline query returned %v, want 504", err)
	}

	after := eng.Stats()
	if after.Queries != before.Queries {
		t.Errorf("cancelled query counted: Queries %d -> %d", before.Queries, after.Queries)
	}
	if after.CachedQueries != before.CachedQueries || after.WindowPending != before.WindowPending {
		t.Errorf("cancelled query left a cache trace: cached %d->%d window %d->%d",
			before.CachedQueries, after.CachedQueries, before.WindowPending, after.WindowPending)
	}

	// The server is still healthy: the same query with no deadline works.
	if _, err := client.QueryGraph(context.Background(), q[1], ModeSub); err != nil {
		t.Fatalf("post-deadline query: %v", err)
	}
}

// poisonLabel marks query graphs the poisoned filter blows up on.
const poisonLabel igq.Label = 4242

// poisonFilter panics on any query carrying poisonLabel — a latent method
// bug a network client can trigger with a well-formed request.
type poisonFilter struct {
	index.Method
	fired atomic.Int64
}

func (p *poisonFilter) Filter(q *igq.Graph) []int32 {
	for _, l := range q.Labels() {
		if l == poisonLabel {
			p.fired.Add(1)
			panic("poisoned query graph reached the filter")
		}
	}
	return p.Method.Filter(q)
}

// TestPoisonedQueryOverWire: a query that panics the method must come back
// as an error response (single and streaming), while the server keeps
// serving every other query. Reuses the PR-6 containment machinery
// (*PanicError) end to end over HTTP.
func TestPoisonedQueryOverWire(t *testing.T) {
	db := testDB(t)
	pf := &poisonFilter{}
	eng, err := igq.NewEngine(db, igq.EngineOptions{
		Method: igq.GGSX, CacheSize: 30, Window: 10,
		WrapMethod: func(m any) any { pf.Method = m.(index.Method); return pf },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, client := newTestServer(t, Config{Engine: eng, Workers: 2})

	poison := igq.NewGraph(2)
	poison.AddVertex(poisonLabel)
	poison.AddVertex(poisonLabel)
	poison.AddEdge(0, 1)

	ctx := context.Background()
	_, err = client.QueryGraph(ctx, poison, ModeSub)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("poisoned query returned %v, want 500", err)
	}
	if !strings.Contains(apiErr.Msg, "panicked") {
		t.Fatalf("error does not surface the containment: %q", apiErr.Msg)
	}

	// Streaming: the poisoned line errors, its neighbours answer.
	queries := testQueries(db, 6, 17)
	in := make(chan QueryRequest)
	go func() {
		defer close(in)
		for i, q := range queries {
			g := q
			if i == 2 {
				g = poison
			}
			in <- QueryRequest{Graph: EncodeGraph(g)}
		}
	}()
	replies, errc := client.QueryStream(ctx, "", 0, in)
	errLines, okLines := 0, 0
	for r := range replies {
		if r.Error != "" {
			if r.Index != 2 {
				t.Fatalf("innocent query %d errored: %s", r.Index, r.Error)
			}
			errLines++
		} else {
			okLines++
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if errLines != 1 || okLines != len(queries)-1 {
		t.Fatalf("stream replies: %d errors, %d ok (want 1, %d)", errLines, okLines, len(queries)-1)
	}
	if pf.fired.Load() < 2 {
		t.Fatal("poison never fired — the test proved nothing")
	}
	if eng.Stats().Panics < 2 {
		t.Fatalf("Stats().Panics = %d, want ≥2", eng.Stats().Panics)
	}

	// The server keeps serving after every containment.
	if _, err := client.QueryGraph(ctx, queries[0], ModeSub); err != nil {
		t.Fatalf("post-poison query: %v", err)
	}
}

// gatedGrapes keeps the full capability set (persistence, mutation)
// promoted from the concrete index, and — once armed — parks the next
// verification on a gate so the drain test can hold a query in flight
// deterministically.
type gatedGrapes struct {
	*grapes.Index
	arm     atomic.Bool
	once    sync.Once
	entered chan struct{} // closed when an armed verification begins
	release chan struct{} // armed verifications wait here
}

func (s *gatedGrapes) Verify(q *igq.Graph, id int32) bool {
	if s.arm.Load() {
		s.once.Do(func() { close(s.entered) })
		<-s.release
	}
	return s.Index.Verify(q, id)
}

// TestGracefulShutdownDrainAndSnapshot: Shutdown must let an in-flight
// query finish, then write a snapshot that restores to an engine with
// identical answers.
func TestGracefulShutdownDrainAndSnapshot(t *testing.T) {
	db := testDB(t)
	snap := filepath.Join(t.TempDir(), "engine.snap")
	opt := igq.EngineOptions{Method: igq.Grapes, CacheSize: 30, Window: 10}
	gate := &gatedGrapes{entered: make(chan struct{}), release: make(chan struct{})}
	wrapped := opt
	wrapped.WrapMethod = func(m any) any { gate.Index = m.(*grapes.Index); return gate }
	eng, err := igq.NewEngine(db, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Engine: eng, Workers: 4, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	client := NewClient("http://" + l.Addr().String())

	// Warm the cache so the snapshot carries earned knowledge.
	queries := testQueries(db, 20, 19)
	for _, q := range queries {
		if _, err := client.QueryGraph(context.Background(), q, ModeSub); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}

	// Park one query mid-verification, then shut down underneath it.
	// NoCache forces the full filter+verify path so the gate is reached.
	gate.arm.Store(true)
	slow := make(chan error, 1)
	go func() {
		_, err := client.Query(context.Background(),
			QueryRequest{Graph: EncodeGraph(db[0]), NoCache: true})
		slow <- err
	}()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("gated query never entered verification")
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shErr := make(chan error, 1)
	go func() { shErr <- s.Shutdown(shCtx) }()
	time.Sleep(50 * time.Millisecond) // let Shutdown enter its drain
	gate.arm.Store(false)
	close(gate.release)
	if err := <-slow; err != nil {
		t.Fatalf("in-flight query was not drained: %v", err)
	}
	if err := <-shErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// The snapshot must restore an engine answering identically.
	loaded, rep, err := igq.LoadEngineFile(snap, eng.Dataset(), opt)
	if err != nil {
		t.Fatalf("loading shutdown snapshot: %v", err)
	}
	if rep.RecoveredTail != nil {
		t.Fatal("shutdown snapshot needed tail recovery — save was not atomic")
	}
	for i, q := range queries {
		want, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.IDs, want.IDs) {
			t.Fatalf("query %d: restored %v, live %v", i, got.IDs, want.IDs)
		}
	}
	if loaded.CacheLen() == 0 {
		t.Fatal("restored engine lost the warmed cache")
	}
}

// TestMutationsOverWireWithDeltaLineage: wire mutations must answer
// correctly afterwards, keep the journal lineage loadable, rebuild the
// supergraph engine, and the maintenance hook must be callable.
func TestMutationsOverWireWithDeltaLineage(t *testing.T) {
	db := testDB(t)
	opt := igq.EngineOptions{Method: igq.Grapes, CacheSize: 30, Window: 10}
	eng, err := igq.NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	super, err := igq.NewEngine(db, igq.EngineOptions{Supergraph: true})
	if err != nil {
		t.Fatal(err)
	}
	deltaPath := filepath.Join(t.TempDir(), "index.idx")
	if err := igq.SaveIndexFile(deltaPath, eng); err != nil {
		t.Fatal(err)
	}
	base, err := os.Stat(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	s, _, client := newTestServer(t, Config{
		Engine: eng, Super: super,
		SuperOptions: igq.EngineOptions{Supergraph: true},
		DeltaPath:    deltaPath,
	})

	ctx := context.Background()
	extra := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.0005, 7))
	reply, err := client.AddGraphs(ctx, extra)
	if err != nil {
		t.Fatalf("AddGraphs: %v", err)
	}
	if reply.DatasetSize != len(db)+len(extra) {
		t.Fatalf("dataset size %d after add, want %d", reply.DatasetSize, len(db)+len(extra))
	}
	if fi, _ := os.Stat(deltaPath); fi.Size() <= base.Size() {
		t.Fatal("mutation did not append to the delta lineage")
	}
	reply, err = client.RemoveGraphs(ctx, []int{0, 3})
	if err != nil {
		t.Fatalf("RemoveGraphs: %v", err)
	}
	if reply.DatasetSize != len(db)+len(extra)-2 {
		t.Fatalf("dataset size %d after remove", reply.DatasetSize)
	}

	// Answers over the mutated dataset must match a fresh engine.
	oracle, err := igq.NewEngine(eng.Dataset(), igq.EngineOptions{Method: igq.Grapes, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range testQueries(eng.Dataset(), 10, 23) {
		got, err := client.QueryGraph(ctx, q, ModeSub)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := oracle.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.IDs, nonNil(want.IDs)) {
			t.Fatalf("query %d after mutations: wire %v, direct %v", i, got.IDs, want.IDs)
		}
		// The rebuilt supergraph engine serves the new dataset too.
		if _, err := client.QueryGraph(ctx, q, ModeSuper); err != nil {
			t.Fatalf("super query %d after mutations: %v", i, err)
		}
	}

	// The journaled lineage must load against the mutated dataset.
	check, err := igq.NewEngine(eng.Dataset(), opt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	_, err = check.LoadIndex(f)
	f.Close()
	if err != nil {
		t.Fatalf("journaled lineage does not load: %v", err)
	}

	// Maintenance hook runs clean (compaction or no-op, never an error).
	if _, err := s.maintain(); err != nil {
		t.Fatalf("maintain: %v", err)
	}

	// Stats and metrics reflect the traffic.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sub.Queries == 0 || st.Super == nil || st.Server.Served == 0 {
		t.Fatalf("stats missing traffic: %+v", st)
	}
	resp, err := http.Get(strings.TrimRight(client.base, "/") + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "igq_requests_served_total") ||
		!strings.Contains(string(body), fmt.Sprintf("igq_engine_queries_total{mode=%q}", "sub")) {
		t.Fatalf("metrics output incomplete:\n%s", body)
	}
}
