package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	igq "repro"
	"repro/internal/index"
	"repro/internal/partition"
	"repro/internal/persistio"
)

// Config configures a Server. Exactly one of Engine and Group selects the
// serving back-end: a single engine, or a partitioned scatter-gather group.
type Config struct {
	// Engine is the primary (subgraph-semantics) engine of a single-engine
	// deployment. It is the engine mutations apply to and the one the
	// shutdown snapshot covers.
	Engine *igq.Engine
	// Group serves a partitioned deployment instead of Engine: queries
	// scatter-gather across partitions (answers carry global graph IDs,
	// not positions), mutations route to the owning partition, and
	// SnapshotPath/DeltaPath become per-partition lineage bases
	// (base.p0, base.p1, ...). Super/SuperOptions are single-engine
	// options — a Group hosts its own supergraph engines.
	Group *partition.Group
	// Super optionally serves supergraph queries (mode "super") over the
	// same dataset. After a dataset mutation the server applies the same
	// delta to it through the method's incremental (index.Mutable) path —
	// O(delta), like the primary engine — and falls back to an O(dataset)
	// rebuild from SuperOptions only when the method reports
	// index.ErrNotMutable (counted by ServerStats.SuperRebuilds). The
	// shutdown snapshot covers only Engine.
	Super        *igq.Engine
	SuperOptions igq.EngineOptions

	// Workers bounds how many queries execute concurrently across all
	// requests and streams (0 → one per runtime.GOMAXPROCS(0)).
	Workers int
	// QueueDepth is how many additional /query requests may wait for an
	// execution slot before the server answers 429 (0 → 4×Workers).
	// Admission is all the server ever buffers: there are no unbounded
	// goroutines behind a burst.
	QueueDepth int

	// DefaultTimeout applies to requests that set no timeout_ms;
	// MaxTimeout clamps what a request may ask for. Zero means unlimited.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// SnapshotPath, when set, is where POST /save and graceful shutdown
	// write the combined engine snapshot (atomically, via SaveEngineFile).
	SnapshotPath string
	// DeltaPath, when set, is the index-snapshot lineage file (written by
	// SaveIndexFile) that receives O(delta) journal appends after every
	// mutation and periodic maintenance compaction.
	DeltaPath string
	// MaintainEvery is the journal-maintenance timer period (0 disables
	// the timer; maintenance still runs once during Shutdown).
	MaintainEvery time.Duration

	// Logf receives serving-lifecycle log lines (nil discards them).
	Logf func(format string, args ...any)
}

// Server serves an engine over HTTP. The admission model is two nested
// semaphores: an admission queue of Workers+QueueDepth slots taken
// non-blockingly (a full queue answers 429 immediately — the server never
// buffers unboundedly) and Workers execution slots taken blockingly under
// the request context. Streaming requests bypass the 429 path: they
// acquire execution slots per query and let TCP flow control push back on
// the sender instead.
type Server struct {
	cfg   Config
	super atomic.Pointer[igq.Engine]

	queue chan struct{} // admission slots: Workers+QueueDepth
	run   chan struct{} // execution slots: Workers

	mux     *http.ServeMux
	hs      *http.Server
	mutMu   sync.Mutex // serialises mutation endpoints + super rebuild
	stopped chan struct{}
	bgOnce  sync.Once // StartBackground runs at most once

	started       time.Time
	served        atomic.Int64
	rejected      atomic.Int64
	errCount      atomic.Int64
	maintPasses   atomic.Int64
	saves         atomic.Int64
	superRebuilds atomic.Int64 // O(dataset) fallback rebuilds of the super engine
}

// New validates cfg and builds a ready-to-Serve server.
func New(cfg Config) (*Server, error) {
	if (cfg.Engine == nil) == (cfg.Group == nil) {
		return nil, errors.New("server: exactly one of Config.Engine and Config.Group is required")
	}
	if cfg.Group != nil && cfg.Super != nil {
		return nil, errors.New("server: Config.Super is a single-engine option; a Group hosts its own supergraph engines")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		run:     make(chan struct{}, cfg.Workers),
		mux:     http.NewServeMux(),
		stopped: make(chan struct{}),
		started: time.Now(),
	}
	if cfg.Super != nil {
		s.super.Store(cfg.Super)
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /graphs/add", s.handleAdd)
	s.mux.HandleFunc("POST /graphs/remove", s.handleRemove)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /save", s.handleSave)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.hs = &http.Server{Handler: s.mux}
	return s, nil
}

// Handler exposes the route table (tests drive it through httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It also starts the
// journal-maintenance timer when one is configured. Returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.StartBackground()
	s.cfg.Logf("serving on %s (workers=%d queue=%d)", l.Addr(), s.cfg.Workers, s.cfg.QueueDepth)
	return s.hs.Serve(l)
}

// StartBackground starts the journal-maintenance timer (when configured)
// without serving. Serve calls it; bind-first deployments that expose
// Handler through their own http.Server (behind a Warming front door) call
// it once the engine is live. Idempotent.
func (s *Server) StartBackground() {
	s.bgOnce.Do(func() {
		if s.cfg.MaintainEvery > 0 && s.cfg.DeltaPath != "" {
			go s.maintenanceLoop()
		}
	})
}

// Shutdown drains gracefully: new connections are refused, in-flight
// requests (including streams) run to completion under ctx's grace period,
// and only then does the server persist what it earned — a final journal
// maintenance pass on the delta lineage and an atomic combined snapshot to
// SnapshotPath. Queries therefore never race the shutdown snapshot.
func (s *Server) Shutdown(ctx context.Context) error {
	close(s.stopped)
	if err := s.hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("server: draining: %w", err)
	}
	if s.cfg.DeltaPath != "" {
		if _, err := s.maintain(); err != nil {
			return fmt.Errorf("server: shutdown journal maintenance: %w", err)
		}
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.save(); err != nil {
			return fmt.Errorf("server: shutdown snapshot: %w", err)
		}
		s.cfg.Logf("shutdown snapshot saved to %s", s.cfg.SnapshotPath)
	}
	return nil
}

// save writes the configured snapshot: one combined engine snapshot, or —
// partitioned — one snapshot per partition under the SnapshotPath base.
func (s *Server) save() error {
	var err error
	if s.cfg.Group != nil {
		err = s.cfg.Group.SaveAll(s.cfg.SnapshotPath)
	} else {
		err = igq.SaveEngineFile(s.cfg.SnapshotPath, s.cfg.Engine)
	}
	if err == nil {
		s.saves.Add(1)
	}
	return err
}

// maintenanceLoop drives periodic journal maintenance until Shutdown.
func (s *Server) maintenanceLoop() {
	t := time.NewTicker(s.cfg.MaintainEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-t.C:
			if changed, err := s.maintain(); err != nil {
				s.cfg.Logf("journal maintenance: %v", err)
			} else if changed {
				s.cfg.Logf("journal maintenance compacted %s", s.cfg.DeltaPath)
			}
		}
	}
}

// maintain runs one journal maintenance pass over the delta lineage (one
// file, or one per partition): pending mutations are appended, and
// over-threshold journal debt is compacted even when nothing is pending
// (the idle-compaction hook).
func (s *Server) maintain() (bool, error) {
	if s.cfg.Group != nil {
		changed, err := s.cfg.Group.MaintainDeltas(s.cfg.DeltaPath)
		if err == nil && changed {
			s.maintPasses.Add(1)
		}
		return changed, err
	}
	f, err := persistio.OpenFile(s.cfg.DeltaPath)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // no lineage yet; nothing to maintain
		}
		return false, err
	}
	defer f.Close()
	changed, err := s.cfg.Engine.MaintainIndexDelta(f)
	if err == nil && changed {
		s.maintPasses.Add(1)
	}
	return changed, err
}

// queryTarget is the query surface a wire mode resolved to: one engine, or
// one mode of a partition group. Handlers drive it without caring which.
type queryTarget struct {
	eng  *igq.Engine
	grp  *partition.Group
	mode partition.Mode
}

func (t queryTarget) query(ctx context.Context, q *igq.Graph, opts ...igq.QueryOption) (igq.Result, error) {
	if t.grp != nil {
		return t.grp.QueryMode(ctx, t.mode, q, opts...)
	}
	return t.eng.Query(ctx, q, opts...)
}

func (t queryTarget) stream(ctx context.Context, in <-chan *igq.Graph, workers int) <-chan igq.BatchResult {
	if t.grp != nil {
		return t.grp.QueryStream(ctx, t.mode, in, workers)
	}
	return t.eng.QueryStream(ctx, in, igq.StreamWorkers(workers))
}

// targetFor routes a wire mode to the engine or partition-group mode
// serving it. The super engine is loaded at call time — a concurrent
// mutation may swap in a rebuilt one.
func (s *Server) targetFor(mode string) (queryTarget, error) {
	switch mode {
	case "", ModeSub:
		if s.cfg.Group != nil {
			return queryTarget{grp: s.cfg.Group, mode: partition.Sub}, nil
		}
		return queryTarget{eng: s.cfg.Engine}, nil
	case ModeSuper:
		if s.cfg.Group != nil {
			if !s.cfg.Group.HostsSuper() {
				return queryTarget{}, errors.New("no supergraph engine configured")
			}
			return queryTarget{grp: s.cfg.Group, mode: partition.Super}, nil
		}
		if e := s.super.Load(); e != nil {
			return queryTarget{eng: e}, nil
		}
		return queryTarget{}, errors.New("no supergraph engine configured")
	default:
		return queryTarget{}, fmt.Errorf("unknown mode %q", mode)
	}
}

// requestCtx maps the wire deadline onto context cancellation.
func (s *Server) requestCtx(parent context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMillis > 0 {
		d = time.Duration(timeoutMillis) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// admit takes one admission slot without blocking; false means the server
// is saturated and the caller must answer 429.
func (s *Server) admit() bool {
	select {
	case s.queue <- struct{}{}:
		return true
	default:
		s.rejected.Add(1)
		return false
	}
}

// acquireRun blocks for an execution slot under ctx.
func (s *Server) acquireRun(ctx context.Context) error {
	select {
	case s.run <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.admit() {
		writeError(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	defer func() { <-s.queue }()
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	tgt, err := s.targetFor(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	g, err := DecodeGraph(req.Graph)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding graph: "+err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r.Context(), req.TimeoutMillis)
	defer cancel()
	if err := s.acquireRun(ctx); err != nil {
		writeQueryError(w, err)
		return
	}
	res, err := tgt.query(ctx, g, queryOptions(req)...)
	<-s.run
	s.served.Add(1)
	if err != nil {
		s.errCount.Add(1)
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryReply{IDs: nonNil(res.IDs), Stats: res.Stats})
}

// queryOptions maps wire flags to per-call query options.
func queryOptions(req QueryRequest) []igq.QueryOption {
	var opts []igq.QueryOption
	if req.NoCache {
		opts = append(opts, igq.WithoutCache())
	}
	if req.NoAdmit {
		opts = append(opts, igq.WithoutAdmission())
	}
	return opts
}

// handleQueryStream is the NDJSON streaming endpoint: one QueryRequest per
// request-body line, one QueryReply per response line, emitted in
// completion order (Index is the arrival order). The whole stream runs in
// one mode (the ?mode= query parameter; per-line Mode values must agree).
// Flow control is physical: each query holds one of the server's execution
// slots from acceptance to reply, so a stream can never occupy more than
// Workers slots, and a sender that outruns the server blocks in TCP rather
// than growing a queue. A query that fails (deadline, poisoned graph)
// yields an error line; the stream and the server keep going. A malformed
// line terminates the stream after an error line, since line framing
// itself is no longer trustworthy.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	mode := r.URL.Query().Get("mode")
	tgt, err := s.targetFor(mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var timeoutMillis int64
	if tm := r.URL.Query().Get("timeout_ms"); tm != "" {
		if _, err := fmt.Sscanf(tm, "%d", &timeoutMillis); err != nil {
			writeError(w, http.StatusBadRequest, "bad timeout_ms")
			return
		}
	}
	ctx, cancel := s.requestCtx(r.Context(), timeoutMillis)
	defer cancel()

	// The stream reads request lines while writing reply lines; HTTP/1 is
	// half-duplex by default and invalidates the body on the first response
	// write without this.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeError(w, http.StatusInternalServerError, "streaming unsupported: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	in := make(chan *igq.Graph)
	var fed atomic.Int64
	feedDone := make(chan struct{})
	feedProblem := make(chan QueryReply, 1) // the line that broke the stream, if any
	go func() {
		defer close(feedDone)
		defer close(in)
		dec := json.NewDecoder(r.Body)
		for line := 0; ; line++ {
			var req QueryRequest
			if err := dec.Decode(&req); err != nil {
				if !errors.Is(err, io.EOF) {
					feedProblem <- QueryReply{Index: line, Error: "decoding stream line: " + err.Error()}
				}
				return
			}
			if req.Mode != "" && req.Mode != mode && !(req.Mode == ModeSub && mode == "") {
				feedProblem <- QueryReply{Index: line, Error: fmt.Sprintf("stream is mode %q, line asks %q", orSub(mode), req.Mode)}
				return
			}
			g, err := DecodeGraph(req.Graph)
			if err != nil {
				feedProblem <- QueryReply{Index: line, Error: "decoding graph: " + err.Error()}
				return
			}
			if err := s.acquireRun(ctx); err != nil {
				return // deadline/disconnect; workers drain what was accepted
			}
			select {
			case in <- g:
				fed.Add(1)
			case <-ctx.Done():
				<-s.run // the slot we just took never fed a query
				return
			}
		}
	}()

	emitted := int64(0)
	writable := true
	// QueryStream's contract: the output must be drained until it closes.
	// A client write failure therefore cancels the stream and keeps
	// consuming (discarding) results instead of abandoning the channel.
	for br := range tgt.stream(ctx, in, s.cfg.Workers) {
		<-s.run // this query's slot, held since acceptance
		emitted++
		s.served.Add(1)
		reply := QueryReply{Index: br.Index, IDs: nonNil(br.Result.IDs), Stats: br.Result.Stats}
		if br.Err != nil {
			s.errCount.Add(1)
			reply = QueryReply{Index: br.Index, Error: br.Err.Error()}
		}
		if !writable {
			continue
		}
		if err := enc.Encode(reply); err != nil {
			writable = false
			cancel()
			continue
		}
		_ = rc.Flush()
	}
	// Slots for queries accepted but never emitted (a cancelled stream's
	// unread tail). fed is final once the feeder exits — or once ctx is
	// done, after which acquireRun refuses the feeder (it may still sit in
	// a body read; returning tears the request down and unblocks it).
	select {
	case <-feedDone:
	case <-ctx.Done():
	}
	for released := emitted; released < fed.Load(); released++ {
		<-s.run
	}
	if writable {
		select {
		case prob := <-feedProblem:
			_ = enc.Encode(prob)
		default:
		}
	}
}

func orSub(mode string) string {
	if mode == "" {
		return ModeSub
	}
	return mode
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	gs := make([]*igq.Graph, len(req.Graphs))
	for i, wg := range req.Graphs {
		g, err := DecodeGraph(wg)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding graph %d: %v", i, err))
			return
		}
		gs[i] = g
	}
	s.mutate(w, r, mutOp{add: gs})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	s.mutate(w, r, mutOp{remove: req.Positions})
}

// mutOp is one dataset mutation, structured (rather than a closure) so the
// same delta can replay on the supergraph engine's incremental path.
// Exactly one field is set. remove holds dataset positions in single-engine
// mode and global graph IDs in partitioned mode.
type mutOp struct {
	add    []*igq.Graph
	remove []int
}

// applyEngine replays the op on one engine. The primary and supergraph
// engines hold the same dataset in the same order (both built from the same
// slice, both receiving every op in mutation order), so positions mean the
// same thing to both.
func (op mutOp) applyEngine(ctx context.Context, e *igq.Engine) error {
	if len(op.add) > 0 {
		return e.AddGraphs(ctx, op.add)
	}
	return e.RemoveGraphs(ctx, op.remove)
}

// mutate applies one dataset mutation and the bookkeeping every mutation
// owes: an O(delta) journal append to the lineage and the same delta on the
// supergraph engine (incrementally when the method is index.Mutable,
// rebuilding otherwise). Partitioned mutations route to the owning
// partitions and journal each touched partition's lineage.
func (s *Server) mutate(w http.ResponseWriter, r *http.Request, op mutOp) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	if g := s.cfg.Group; g != nil {
		var err error
		if len(op.add) > 0 {
			err = g.AddGraphs(r.Context(), op.add)
		} else {
			err = g.RemoveGraphs(r.Context(), op.remove)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if s.cfg.DeltaPath != "" {
			if err := g.AppendDeltas(s.cfg.DeltaPath); err != nil {
				s.cfg.Logf("journal append after mutation: %v", err)
			}
		}
		writeJSON(w, http.StatusOK, MutateReply{DatasetSize: g.NumGraphs()})
		return
	}
	if err := op.applyEngine(r.Context(), s.cfg.Engine); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.cfg.DeltaPath != "" {
		if err := s.appendDelta(); err != nil {
			// The mutation is live; only its persistence lagged. Surface
			// loudly but keep serving — the maintenance timer retries.
			s.cfg.Logf("journal append after mutation: %v", err)
		}
	}
	if sup := s.super.Load(); sup != nil {
		if err := s.mutateSuper(sup, op); err != nil {
			writeError(w, http.StatusInternalServerError, "updating supergraph engine: "+err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, MutateReply{DatasetSize: len(s.cfg.Engine.Dataset())})
}

// mutateSuper keeps the supergraph engine a view of the primary's dataset:
// the delta replays through the method's incremental path (O(delta) — the
// Containment method is index.Mutable), falling back to an O(dataset)
// rebuild from SuperOptions when the method cannot mutate in place. The
// primary engine already committed, so the replay runs under a background
// context: the two engines must not split over a client disconnect.
func (s *Server) mutateSuper(sup *igq.Engine, op mutOp) error {
	err := op.applyEngine(context.Background(), sup)
	if err == nil {
		return nil
	}
	if !errors.Is(err, index.ErrNotMutable) {
		// Unexpected — but the engines must reconverge, and a rebuild from
		// the primary's dataset always does.
		s.cfg.Logf("incremental supergraph mutation: %v; rebuilding", err)
	}
	db := s.cfg.Engine.Dataset()
	opt := s.cfg.SuperOptions
	opt.Supergraph = true
	ne, nerr := igq.NewEngine(db, opt)
	if nerr != nil {
		return nerr
	}
	s.super.Store(ne)
	s.superRebuilds.Add(1)
	return nil
}

// appendDelta appends the pending mutation journal to the lineage file.
func (s *Server) appendDelta() error {
	f, err := persistio.OpenFile(s.cfg.DeltaPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.cfg.Engine.AppendIndexDelta(f)
}

func (s *Server) serverStats() ServerStats {
	ss := ServerStats{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Served:         s.served.Load(),
		Rejected:       s.rejected.Load(),
		Errors:         s.errCount.Load(),
		InFlight:       len(s.run),
		Workers:        s.cfg.Workers,
		QueueDepth:     s.cfg.QueueDepth,
		Maintenance:    s.maintPasses.Load(),
		SnapshotsSaved: s.saves.Load(),
		SuperRebuilds:  s.superRebuilds.Load(),
	}
	if s.cfg.Group != nil {
		ss.Partitions = s.cfg.Group.Partitions()
	}
	return ss
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := StatsReply{Server: s.serverStats()}
	if g := s.cfg.Group; g != nil {
		reply.Sub, _ = g.Stats(partition.Sub)
		if sup, ok := g.Stats(partition.Super); ok {
			reply.Super = &sup
		}
		reply.Partitions = g.PartitionStats()
	} else {
		reply.Sub = s.cfg.Engine.Stats()
		if e := s.super.Load(); e != nil {
			st := e.Stats()
			reply.Super = &st
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleMetrics renders the same counters in the flat `name value` text
// form scrapers expect.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	ss := s.serverStats()
	fmt.Fprintf(w, "igq_uptime_seconds %g\n", ss.UptimeSeconds)
	fmt.Fprintf(w, "igq_requests_served_total %d\n", ss.Served)
	fmt.Fprintf(w, "igq_requests_rejected_total %d\n", ss.Rejected)
	fmt.Fprintf(w, "igq_query_errors_total %d\n", ss.Errors)
	fmt.Fprintf(w, "igq_queries_in_flight %d\n", ss.InFlight)
	fmt.Fprintf(w, "igq_maintenance_writes_total %d\n", ss.Maintenance)
	fmt.Fprintf(w, "igq_snapshots_saved_total %d\n", ss.SnapshotsSaved)
	fmt.Fprintf(w, "igq_super_rebuilds_total %d\n", ss.SuperRebuilds)
	if g := s.cfg.Group; g != nil {
		if st, ok := g.Stats(partition.Sub); ok {
			emitEngineMetrics(w, "sub", st)
		}
		if st, ok := g.Stats(partition.Super); ok {
			emitEngineMetrics(w, "super", st)
		}
		fmt.Fprintf(w, "igq_partitions %d\n", g.Partitions())
		for i, ps := range g.PartitionStats() {
			fmt.Fprintf(w, "igq_partition_graphs{part=\"%d\"} %d\n", i, ps.Graphs)
			fmt.Fprintf(w, "igq_partition_queries_total{part=\"%d\",mode=\"sub\"} %d\n", i, ps.Sub.Queries)
			fmt.Fprintf(w, "igq_partition_cache_answers_total{part=\"%d\",mode=\"sub\"} %d\n", i, ps.Sub.AnsweredByCache)
			fmt.Fprintf(w, "igq_partition_resident_bytes{part=\"%d\",mode=\"sub\"} %d\n", i, ps.Sub.ResidentBytes)
			if ps.Super != nil {
				fmt.Fprintf(w, "igq_partition_queries_total{part=\"%d\",mode=\"super\"} %d\n", i, ps.Super.Queries)
				fmt.Fprintf(w, "igq_partition_cache_answers_total{part=\"%d\",mode=\"super\"} %d\n", i, ps.Super.AnsweredByCache)
			}
		}
		return
	}
	emitEngineMetrics(w, "sub", s.cfg.Engine.Stats())
	if e := s.super.Load(); e != nil {
		emitEngineMetrics(w, "super", e.Stats())
	}
}

func emitEngineMetrics(w io.Writer, mode string, st igq.EngineStats) {
	fmt.Fprintf(w, "igq_engine_queries_total{mode=%q} %d\n", mode, st.Queries)
	fmt.Fprintf(w, "igq_engine_cache_answers_total{mode=%q} %d\n", mode, st.AnsweredByCache)
	fmt.Fprintf(w, "igq_engine_dataset_iso_tests_total{mode=%q} %d\n", mode, st.DatasetIsoTests)
	fmt.Fprintf(w, "igq_engine_cache_iso_tests_total{mode=%q} %d\n", mode, st.CacheIsoTests)
	fmt.Fprintf(w, "igq_engine_sub_hits_total{mode=%q} %d\n", mode, st.SubHits)
	fmt.Fprintf(w, "igq_engine_super_hits_total{mode=%q} %d\n", mode, st.SuperHits)
	fmt.Fprintf(w, "igq_engine_panics_total{mode=%q} %d\n", mode, st.Panics)
	fmt.Fprintf(w, "igq_engine_cached_queries{mode=%q} %d\n", mode, st.CachedQueries)
	fmt.Fprintf(w, "igq_engine_window_pending{mode=%q} %d\n", mode, st.WindowPending)
	fmt.Fprintf(w, "igq_engine_flushes_total{mode=%q} %d\n", mode, st.Flushes)
	// Residency gauges of a lazily loaded index (all zero when eager);
	// sampling them is atomic reads — a scrape never forces shards in.
	lazy := 0
	if st.LazyLoaded {
		lazy = 1
	}
	fmt.Fprintf(w, "igq_engine_lazy{mode=%q} %d\n", mode, lazy)
	fmt.Fprintf(w, "igq_engine_total_shards{mode=%q} %d\n", mode, st.TotalShards)
	fmt.Fprintf(w, "igq_engine_resident_shards{mode=%q} %d\n", mode, st.ResidentShards)
	fmt.Fprintf(w, "igq_engine_resident_bytes{mode=%q} %d\n", mode, st.ResidentBytes)
	fmt.Fprintf(w, "igq_engine_lazy_budget_bytes{mode=%q} %d\n", mode, st.LazyBudgetBytes)
	fmt.Fprintf(w, "igq_engine_shard_faults_total{mode=%q} %d\n", mode, st.ShardFaults)
	fmt.Fprintf(w, "igq_engine_shard_evictions_total{mode=%q} %d\n", mode, st.ShardEvictions)
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeError(w, http.StatusBadRequest, "no snapshot path configured")
		return
	}
	// Saves and mutations exclude each other: a partition snapshot taken
	// mid-routed-mutation would mix generations across partition files.
	s.mutMu.Lock()
	err := s.save()
	s.mutMu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"path": s.cfg.SnapshotPath})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// writeQueryError maps a query-path failure to its HTTP status: an expired
// deadline is 504 (the server is healthy; the query ran out of time), a
// contained panic is 500 (the query was poisoned; the server kept
// serving), anything else 500.
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	} else if errors.Is(err, context.Canceled) {
		status = 499 // client closed request (nginx convention)
	}
	writeError(w, status, err.Error())
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorReply{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// nonNil keeps empty answers as [] rather than null on the wire.
func nonNil(ids []int32) []int32 {
	if ids == nil {
		return []int32{}
	}
	return ids
}
