package index

// Container-aware set intersection. The trie's posting containers
// (array / bitmap / run-length) expose three complementary fast paths:
//
//   - bitmap ∧ bitmap collapses to a word-wise AND over the overlapping
//     span — O(span/64) regardless of cardinality, the path that makes
//     intersections *cheaper* on the dense features that were previously
//     the worst case;
//   - sparse ∩ bitmap (or runs) probes each element of the running
//     partial through O(1)/O(log runs) membership — never materialising
//     the dense side at all;
//   - array ∩ array keeps the existing merge/gallop pair, switched by the
//     calibrated cost model (shouldGallopCost).
//
// The running partial stays the global cap: views fold in ascending
// cardinality order, so every step's work is bounded by the smallest set
// seen so far, exactly like the flat IntersectMany fold.

import (
	"math/bits"
	"slices"
	"sync"

	"repro/internal/trie"
)

// View is one intersection operand: either a plain ascending
// duplicate-free id slice (IDs) or a posting container (C). Exactly one
// of the two is set.
type View struct {
	IDs []int32
	C   trie.Container
}

// Len returns the operand's cardinality.
func (v View) Len() int {
	if v.C != nil {
		return v.C.Len()
	}
	return len(v.IDs)
}

// slice returns the operand as a plain id slice when that costs nothing
// (an IDs view or an array container), else nil.
func (v View) slice() []int32 {
	if v.IDs != nil {
		return v.IDs
	}
	if a, ok := v.C.(*trie.ArrayContainer); ok {
		return a.Slice()
	}
	return nil
}

// ViewScratch holds the reusable buffers of one IntersectViews pass.
type ViewScratch struct {
	views []View
	words []uint64
	out   []int32
	buf   [2][]int32
}

var viewScratchPool = sync.Pool{New: func() any { return new(ViewScratch) }}

// GetViewScratch borrows a scratch from the shared pool (used by the
// count filter's parallel shard-group fan-out).
func GetViewScratch() *ViewScratch { return viewScratchPool.Get().(*ViewScratch) }

// PutViewScratch returns a scratch to the pool; any result aliasing it
// must have been copied out first.
func PutViewScratch(s *ViewScratch) { viewScratchPool.Put(s) }

// IntersectViews intersects the operands and returns the ascending result
// ids. probeCost is the calibrated galloping probe cost (≤ 0 selects the
// package default). The result may alias s's buffers or an input slice
// and is valid until the scratch is reused; views is reordered in place
// of s's copy, never the caller's slice.
func IntersectViews(views []View, probeCost int, s *ViewScratch) []int32 {
	if probeCost <= 0 {
		probeCost = DefaultGallopProbeCost
	}
	if len(views) == 0 {
		return nil
	}
	// All-bitmap queries take the pure word-AND path: the span only
	// shrinks, so the whole chain is O(Σ overlap-words) with a single
	// materialisation at the end.
	allBitmap := true
	for _, v := range views {
		if _, ok := v.C.(*trie.BitmapContainer); !ok {
			allBitmap = false
			break
		}
	}
	if allBitmap && len(views) > 1 {
		return intersectBitmapViews(views, s)
	}
	vs := append(s.views[:0], views...)
	s.views = vs
	slices.SortFunc(vs, func(a, b View) int { return a.Len() - b.Len() })
	// Seed the partial from the smallest operand (zero-copy when it is
	// already a slice), then fold the rest in ascending order: slices via
	// merge/gallop, bitmap and run containers via membership probes of the
	// partial — the partial is never larger than the probed side, so the
	// probe direction is always the cheap one.
	cur := vs[0].slice()
	if cur == nil {
		s.out = vs[0].C.AppendTo(s.out[:0])
		cur = s.out
	}
	which := 0
	for _, v := range vs[1:] {
		if len(cur) == 0 {
			return nil
		}
		if ids := v.slice(); ids != nil {
			s.buf[which] = IntersectIntoCost(s.buf[which], cur, ids, probeCost)
		} else {
			dst := s.buf[which][:0]
			c := v.C
			for _, x := range cur {
				if c.Contains(x) {
					dst = append(dst, x)
				}
			}
			s.buf[which] = dst
		}
		cur = s.buf[which]
		which = 1 - which
	}
	return cur
}

// intersectBitmapViews ANDs bitmap operands word-wise over their
// overlapping span and materialises the surviving ids.
func intersectBitmapViews(views []View, s *ViewScratch) []int32 {
	b0 := views[0].C.(*trie.BitmapContainer)
	loW := int(b0.Base()) >> 6
	hiW := loW + len(b0.Words()) - 1
	for _, v := range views[1:] {
		b := v.C.(*trie.BitmapContainer)
		l := int(b.Base()) >> 6
		h := l + len(b.Words()) - 1
		loW = max(loW, l)
		hiW = min(hiW, h)
	}
	if hiW < loW {
		return nil
	}
	nw := hiW - loW + 1
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
	}
	words := s.words[:nw]
	copy(words, b0.Words()[loW-int(b0.Base())>>6:])
	for _, v := range views[1:] {
		b := v.C.(*trie.BitmapContainer)
		bw := b.Words()[loW-int(b.Base())>>6:]
		for i := range words {
			words[i] &= bw[i]
		}
	}
	out := s.out[:0]
	for wi, w := range words {
		base := int32((loW + wi) << 6)
		for w != 0 {
			out = append(out, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	s.out = out
	return out
}
