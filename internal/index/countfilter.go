package index

import (
	"runtime"
	"slices"
	"sync"

	"repro/internal/features"
	"repro/internal/trie"
)

// cfView is one filtered feature list awaiting intersection: either the
// feature's whole posting container (c — the zero-materialisation path
// taken whenever the count threshold admits every posting) or an extent of
// the scratch arena holding the count-filtered subset.
type cfView struct {
	c      trie.Container
	lo, hi int32 // arena extent when c == nil
	n      int   // cardinality
}

// CountFilterScratch holds the reusable buffers of one count-filter pass:
// the feature-enumeration scratch, the shard-grouped feature copy, the
// filtered per-feature views (arena-backed where materialised), and the
// intersection scratch.
type CountFilterScratch struct {
	Feat *features.Scratch

	feats    []features.IDCount // query features regrouped by shard
	shardOff []int32            // per-shard group boundaries (len K+1)
	shardCur []int32            // scatter cursors during grouping
	views    []cfView           // filtered per-feature views
	groups   [][3]int           // per-shard group: [views start, views end, min view len]
	arena    []int32            // count-filtered id lists
	vbuf     []View             // per-group operand assembly
	vs       ViewScratch        // serial intersection scratch
	cur      []int32            // running cross-shard partial result
	parts    [][]int32          // per-group partials (parallel fan-out)
	buf      [2][]int32         // fold buffers for the parallel path
}

var countFilterPool = sync.Pool{
	New: func() any { return &CountFilterScratch{Feat: features.NewScratch()} },
}

// GetCountFilterScratch borrows a scratch from the shared pool.
func GetCountFilterScratch() *CountFilterScratch {
	return countFilterPool.Get().(*CountFilterScratch)
}

// PutCountFilterScratch returns a scratch to the pool. Any FilterCountGE
// result aliasing it must have been copied out first.
func PutCountFilterScratch(s *CountFilterScratch) { countFilterPool.Put(s) }

// parallelGroupMin is the per-group rarest-list cardinality above which a
// multi-group query fans its shard-group intersections over goroutines:
// below it the serial partial-threading (the globally rarest list capping
// all later groups) beats any parallel speedup.
const parallelGroupMin = 1 << 13

// FilterCountGE computes the candidate ids for a count-based feature filter
// over tr: graphs holding every feature of qf with at least the wanted
// multiplicity.
//
// The pass follows the store's shard layout: query features are grouped by
// postings shard and each shard's lists are filtered and intersected as one
// group (all probes against one small per-shard map, so the map stays
// cache-resident across the group). A feature whose threshold admits every
// posting — the overwhelmingly common count-1 case — contributes its
// container directly, with no materialisation: bitmap∧bitmap pairs inside a
// group collapse to word-ANDs and sparse partials probe dense containers in
// O(1) per element (IntersectViews). Shard groups are processed in
// ascending order of their rarest filtered list, with the running
// cross-shard partial threaded into each group's intersection — so the
// globally rarest list still prunes all later work, exactly as the
// unsharded rarest-first fold did. Every slice-vs-slice step picks merge vs
// gallop from the trie's calibrated probe cost. Very large queries — every
// group's rarest list at least parallelGroupMin — fan the per-group
// intersections over bounded goroutines and fold the partials rarest-first.
// The result may alias s and is only valid until the scratch is reused.
//
// Callers must handle the empty-feature case (len(qf.Counts) == 0 &&
// qf.Unknown == 0) themselves: the matching universe (all dataset
// positions, all cached entries, ...) differs per index. Shared by GGSX,
// Grapes and iGQ's Isub.
func FilterCountGE(tr *trie.Trie, qf features.IDSet, s *CountFilterScratch) []int32 {
	if qf.Unknown > 0 {
		// Some query feature was never seen by this index's dictionary, so
		// no indexed graph contains it.
		return nil
	}
	if len(qf.Counts) == 0 {
		return nil
	}
	feats, off := s.groupByShard(tr, qf.Counts)

	// Phase 1: build each feature's filtered view, one shard's group at a
	// time; only count-thresholded features touch the arena.
	arena := s.arena[:0]
	views := s.views[:0]
	groups := s.groups[:0]
	for sh := 0; sh < tr.ShardCount(); sh++ {
		lo, hi := off[sh], off[sh+1]
		if lo == hi {
			continue
		}
		gStart := len(views)
		minLen := int(^uint(0) >> 1)
		for _, fc := range feats[lo:hi] {
			pl := tr.GetByID(fc.ID)
			if pl.Len() == 0 {
				s.arena, s.views, s.groups = arena, views, groups
				return nil
			}
			var v cfView
			switch {
			case fc.Count <= 0 || (fc.Count == 1 && pl.UniformCounts()):
				// Threshold admits every posting: the container itself is
				// the filtered list.
				v = cfView{c: pl.IDs(), n: pl.Len()}
			case pl.UniformCounts():
				// Threshold ≥ 2 against all-count-1 postings: nothing passes.
				s.arena, s.views, s.groups = arena, views, groups
				return nil
			default:
				start := len(arena)
				want := fc.Count
				pl.Range(func(i int, g int32) bool {
					if pl.CountAt(i) >= want {
						arena = append(arena, g)
					}
					return true
				})
				if len(arena) == start {
					s.arena, s.views, s.groups = arena, views, groups
					return nil
				}
				v = cfView{lo: int32(start), hi: int32(len(arena)), n: len(arena) - start}
			}
			if v.n < minLen {
				minLen = v.n
			}
			views = append(views, v)
		}
		groups = append(groups, [3]int{gStart, len(views), minLen})
	}
	s.arena, s.views = arena, views

	// Phase 2: intersect shard by shard, rarest shard first, folding the
	// running partial into each group so it caps the group's work.
	slices.SortFunc(groups, func(a, b [3]int) int { return a[2] - b[2] })
	s.groups = groups
	probeCost := tr.GallopProbeCost()
	if len(groups) >= 2 && groups[0][2] >= parallelGroupMin && runtime.GOMAXPROCS(0) > 1 {
		return s.filterParallel(probeCost)
	}
	var cur []int32
	for gi, g := range groups {
		vbuf := s.vbuf[:0]
		if gi > 0 {
			vbuf = append(vbuf, View{IDs: cur})
		}
		vbuf = s.appendGroupViews(vbuf, g)
		s.vbuf = vbuf
		part := IntersectViews(vbuf, probeCost, &s.vs)
		if len(part) == 0 {
			return nil
		}
		// Copy the partial out of the intersection scratch: the next
		// group's IntersectViews reuses it.
		s.cur = append(s.cur[:0], part...)
		cur = s.cur
	}
	return cur
}

// appendGroupViews assembles one shard group's intersection operands.
func (s *CountFilterScratch) appendGroupViews(dst []View, g [3]int) []View {
	for _, v := range s.views[g[0]:g[1]] {
		if v.c != nil {
			dst = append(dst, View{C: v.c})
		} else {
			dst = append(dst, View{IDs: s.arena[v.lo:v.hi]})
		}
	}
	return dst
}

// filterParallel computes each shard group's intersection on its own
// goroutine (bounded by GOMAXPROCS, 4, and the group count), then folds
// the per-group partials rarest-first. Used only when every group's
// rarest list clears parallelGroupMin — large enough that the lost
// cross-group partial-threading is cheaper than the serial wall-clock.
func (s *CountFilterScratch) filterParallel(probeCost int) []int32 {
	groups := s.groups
	if cap(s.parts) < len(groups) {
		s.parts = make([][]int32, len(groups))
	}
	parts := s.parts[:len(groups)]
	workers := min(runtime.GOMAXPROCS(0), len(groups), 4)
	trie.ParallelFor(len(groups), workers, func(_ int, claim func() int) {
		for gi := claim(); gi >= 0; gi = claim() {
			vs := GetViewScratch()
			views := s.appendGroupViews(make([]View, 0, groups[gi][1]-groups[gi][0]), groups[gi])
			part := IntersectViews(views, probeCost, vs)
			parts[gi] = append(parts[gi][:0], part...) // copy out before pooling
			PutViewScratch(vs)
		}
	})
	slices.SortFunc(parts, func(a, b []int32) int { return len(a) - len(b) })
	cur := parts[0]
	which := 0
	for _, p := range parts[1:] {
		if len(cur) == 0 {
			return nil
		}
		s.buf[which] = IntersectIntoCost(s.buf[which], cur, p, probeCost)
		cur = s.buf[which]
		which = 1 - which
	}
	if len(cur) == 0 {
		return nil
	}
	return cur
}

// groupByShard scatters the query features into shard-contiguous order
// (counting sort over ShardOf). qf.Counts itself is left untouched: it is
// shared with the caller's other index probes, which may run concurrently.
func (s *CountFilterScratch) groupByShard(tr *trie.Trie, counts []features.IDCount) ([]features.IDCount, []int32) {
	k := tr.ShardCount()
	if cap(s.shardOff) < k+1 {
		s.shardOff = make([]int32, k+1)
		s.shardCur = make([]int32, k)
	}
	off := s.shardOff[:k+1]
	cur := s.shardCur[:k]
	for i := range off {
		off[i] = 0
	}
	for _, fc := range counts {
		off[tr.ShardOf(fc.ID)+1]++
	}
	for i := 1; i <= k; i++ {
		off[i] += off[i-1]
	}
	copy(cur, off[:k])
	if cap(s.feats) < len(counts) {
		s.feats = make([]features.IDCount, len(counts))
	}
	feats := s.feats[:len(counts)]
	for _, fc := range counts {
		sh := tr.ShardOf(fc.ID)
		feats[cur[sh]] = fc
		cur[sh]++
	}
	return feats, off
}

// AllIDs returns the identity universe [0, n) — the empty-query candidate
// set for dense dataset indexes.
func AllIDs(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
