package index

import (
	"slices"
	"sync"

	"repro/internal/features"
	"repro/internal/trie"
)

// CountFilterScratch holds the reusable buffers of one count-filter pass:
// the feature-enumeration scratch, the shard-grouped feature copy, the
// filtered per-feature id lists (backed by one flat arena), and the
// intersection buffers.
type CountFilterScratch struct {
	Feat *features.Scratch

	feats    []features.IDCount // query features regrouped by shard
	shardOff []int32            // per-shard group boundaries (len K+1)
	shardCur []int32            // scatter cursors during grouping

	lists  [][]int32 // list headers handed to IntersectMany
	offs   [][2]int  // per-feature filtered-list extents in arena
	groups [][3]int  // per-shard group: [offs start, offs end, min list len]
	arena  []int32   // filtered per-feature id lists
	cur    []int32   // running cross-shard partial result
	buf    [2][]int32
}

var countFilterPool = sync.Pool{
	New: func() any { return &CountFilterScratch{Feat: features.NewScratch()} },
}

// GetCountFilterScratch borrows a scratch from the shared pool.
func GetCountFilterScratch() *CountFilterScratch {
	return countFilterPool.Get().(*CountFilterScratch)
}

// PutCountFilterScratch returns a scratch to the pool. Any FilterCountGE
// result aliasing it must have been copied out first.
func PutCountFilterScratch(s *CountFilterScratch) { countFilterPool.Put(s) }

// FilterCountGE computes the candidate ids for a count-based feature filter
// over tr: graphs holding every feature of qf with at least the wanted
// multiplicity.
//
// The pass follows the store's shard layout: query features are grouped by
// postings shard and each shard's lists are filtered and intersected as one
// group (all probes against one small per-shard map, so the map stays
// cache-resident across the group). Shard groups are processed in ascending
// order of their rarest filtered list, with the running cross-shard partial
// threaded into each group's intersection — so the globally rarest list
// still prunes all later work, exactly as the unsharded rarest-first fold
// did. Every intersection step picks merge vs gallop adaptively from the
// two list lengths. The result may alias s and is only valid until the
// scratch is reused.
//
// Callers must handle the empty-feature case (len(qf.Counts) == 0 &&
// qf.Unknown == 0) themselves: the matching universe (all dataset
// positions, all cached entries, ...) differs per index. Shared by GGSX,
// Grapes and iGQ's Isub.
func FilterCountGE(tr *trie.Trie, qf features.IDSet, s *CountFilterScratch) []int32 {
	if qf.Unknown > 0 {
		// Some query feature was never seen by this index's dictionary, so
		// no indexed graph contains it.
		return nil
	}
	if len(qf.Counts) == 0 {
		return nil
	}
	feats, off := s.groupByShard(tr, qf.Counts)

	// Phase 1: filter each feature's postings into the arena, one shard's
	// group at a time.
	arena := s.arena[:0]
	offs := s.offs[:0]
	groups := s.groups[:0]
	for sh := 0; sh < tr.ShardCount(); sh++ {
		lo, hi := off[sh], off[sh+1]
		if lo == hi {
			continue
		}
		gStart := len(offs)
		minLen := int(^uint(0) >> 1)
		for _, fc := range feats[lo:hi] {
			start := len(arena)
			for _, p := range tr.GetByID(fc.ID) {
				if p.Count >= fc.Count {
					arena = append(arena, p.Graph)
				}
			}
			n := len(arena) - start
			if n == 0 {
				s.arena, s.offs, s.groups = arena, offs, groups
				return nil
			}
			if n < minLen {
				minLen = n
			}
			offs = append(offs, [2]int{start, len(arena)})
		}
		groups = append(groups, [3]int{gStart, len(offs), minLen})
	}
	s.arena, s.offs = arena, offs

	// Phase 2: intersect shard by shard, rarest shard first, folding the
	// running partial into each group so it caps the group's work.
	slices.SortFunc(groups, func(a, b [3]int) int { return a[2] - b[2] })
	s.groups = groups
	var cur []int32
	for gi, g := range groups {
		lists := s.lists[:0]
		if gi > 0 {
			lists = append(lists, cur)
		}
		for _, o := range offs[g[0]:g[1]] {
			lists = append(lists, arena[o[0]:o[1]])
		}
		s.lists = lists
		part := IntersectMany(lists, &s.buf)
		if len(part) == 0 {
			return nil
		}
		// Copy the partial out of the ping-pong buffers: the next group's
		// IntersectMany reuses them.
		s.cur = append(s.cur[:0], part...)
		cur = s.cur
	}
	return cur
}

// groupByShard scatters the query features into shard-contiguous order
// (counting sort over ShardOf). qf.Counts itself is left untouched: it is
// shared with the caller's other index probes, which may run concurrently.
func (s *CountFilterScratch) groupByShard(tr *trie.Trie, counts []features.IDCount) ([]features.IDCount, []int32) {
	k := tr.ShardCount()
	if cap(s.shardOff) < k+1 {
		s.shardOff = make([]int32, k+1)
		s.shardCur = make([]int32, k)
	}
	off := s.shardOff[:k+1]
	cur := s.shardCur[:k]
	for i := range off {
		off[i] = 0
	}
	for _, fc := range counts {
		off[tr.ShardOf(fc.ID)+1]++
	}
	for i := 1; i <= k; i++ {
		off[i] += off[i-1]
	}
	copy(cur, off[:k])
	if cap(s.feats) < len(counts) {
		s.feats = make([]features.IDCount, len(counts))
	}
	feats := s.feats[:len(counts)]
	for _, fc := range counts {
		sh := tr.ShardOf(fc.ID)
		feats[cur[sh]] = fc
		cur[sh]++
	}
	return feats, off
}

// AllIDs returns the identity universe [0, n) — the empty-query candidate
// set for dense dataset indexes.
func AllIDs(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
