package index

import (
	"sync"

	"repro/internal/features"
	"repro/internal/trie"
)

// CountFilterScratch holds the reusable buffers of one count-filter pass:
// the feature-enumeration scratch, the filtered per-feature id lists
// (backed by one flat arena), and the intersection ping-pong buffers.
type CountFilterScratch struct {
	Feat  *features.Scratch
	lists [][]int32
	offs  [][2]int
	arena []int32
	buf   [2][]int32
}

var countFilterPool = sync.Pool{
	New: func() any { return &CountFilterScratch{Feat: features.NewScratch()} },
}

// GetCountFilterScratch borrows a scratch from the shared pool.
func GetCountFilterScratch() *CountFilterScratch {
	return countFilterPool.Get().(*CountFilterScratch)
}

// PutCountFilterScratch returns a scratch to the pool. Any FilterCountGE
// result aliasing it must have been copied out first.
func PutCountFilterScratch(s *CountFilterScratch) { countFilterPool.Put(s) }

// FilterCountGE computes the candidate ids for a count-based feature filter
// over tr: graphs holding every feature of qf with at least the wanted
// multiplicity. Features are intersected in ascending order of
// filtered-list length, galloping on skewed pairs. The result may alias s
// and is only valid until the scratch is reused.
//
// Callers must handle the empty-feature case (len(qf.Counts) == 0 &&
// qf.Unknown == 0) themselves: the matching universe (all dataset
// positions, all cached entries, ...) differs per index. Shared by GGSX,
// Grapes and iGQ's Isub.
func FilterCountGE(tr *trie.Trie, qf features.IDSet, s *CountFilterScratch) []int32 {
	if qf.Unknown > 0 {
		// Some query feature was never seen by this index's dictionary, so
		// no indexed graph contains it.
		return nil
	}
	arena := s.arena[:0]
	offs := s.offs[:0]
	for _, fc := range qf.Counts {
		start := len(arena)
		for _, p := range tr.GetByID(fc.ID) {
			if p.Count >= fc.Count {
				arena = append(arena, p.Graph)
			}
		}
		if len(arena) == start {
			s.arena, s.offs = arena, offs
			return nil
		}
		offs = append(offs, [2]int{start, len(arena)})
	}
	s.arena, s.offs = arena, offs
	lists := s.lists[:0]
	for _, o := range offs {
		lists = append(lists, arena[o[0]:o[1]])
	}
	s.lists = lists
	return IntersectMany(lists, &s.buf)
}

// AllIDs returns the identity universe [0, n) — the empty-query candidate
// set for dense dataset indexes.
func AllIDs(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
