package index_test

// Crash-recovery soak: the differential harness of the durability story.
// Every persistence operation (journal append, threshold compaction) is
// killed at every byte boundary through a fault-injecting file, and the
// reload after each simulated crash must yield exactly the pre-operation
// or the post-operation index — never a failed load, never a half-applied
// delta. The oracles are the live copy-on-write generations themselves:
// the pre-mutation method keeps answering over the old dataset while the
// post-mutation one answers over the new, so both sides of the crash are
// directly probeable.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/persistio"
)

// soakDB builds n small random connected graphs.
func soakDB(rng *rand.Rand, n int) []*graph.Graph {
	db := make([]*graph.Graph, n)
	for i := range db {
		nv := 4 + rng.Intn(5)
		g := graph.New(nv)
		for v := 0; v < nv; v++ {
			g.AddVertex(graph.Label(rng.Intn(4)))
		}
		for v := 1; v < nv; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		for e := 0; e < nv/2; e++ {
			g.AddEdge(rng.Intn(nv), rng.Intn(nv))
		}
		db[i] = g
	}
	return db
}

// soakProbes extracts small probe queries from the dataset pool.
func soakProbes(rng *rand.Rand, pool []*graph.Graph, n int) []*graph.Graph {
	qs := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		src := pool[rng.Intn(len(pool))]
		vs := []int{rng.Intn(src.NumVertices())}
		for _, w := range src.Neighbors(vs[0]) {
			vs = append(vs, int(w))
			if len(vs) == 3 {
				break
			}
		}
		q, _ := src.InducedSubgraph(vs)
		qs = append(qs, q)
	}
	return qs
}

// sameState reports whether the loaded index answers identically to the
// oracle generation over the probes. It deliberately compares observable
// behaviour (Filter candidates and verified answers) rather than
// SizeBytes: copy-on-write generations share postings storage, so a live
// pre-mutation generation's footprint grows when its successor appends —
// answers are generation-isolated, footprint is not.
func sameState(loaded, oracle index.Persistable, probes []*graph.Graph) bool {
	for _, q := range probes {
		if !reflect.DeepEqual(loaded.Filter(q), oracle.Filter(q)) {
			return false
		}
		if !reflect.DeepEqual(index.Answer(loaded, q), index.Answer(oracle, q)) {
			return false
		}
	}
	return true
}

// verifyCrashState loads data into a fresh index and asserts it equals
// exactly the pre-op or the post-op oracle. A snapshot killed mid-append
// loads against exactly one of the two datasets (the dataset stamp follows
// the committed journal prefix), which selects the oracle to compare.
func verifyCrashState(t *testing.T, fresh func() index.Persistable, data []byte,
	pre index.Persistable, preDB []*graph.Graph,
	post index.Persistable, postDB []*graph.Graph,
	probes []*graph.Graph) {
	t.Helper()
	ld := fresh()
	if _, err := ld.LoadIndex(persistio.NewMemFileBytes(data), preDB); err == nil {
		if !sameState(ld, pre, probes) {
			t.Fatalf("crashed snapshot loaded against pre-op dataset but diverges from pre-op state")
		}
		return
	}
	ld = fresh()
	if _, err := ld.LoadIndex(persistio.NewMemFileBytes(data), postDB); err != nil {
		t.Fatalf("crashed snapshot loads against neither pre-op nor post-op dataset: %v", err)
	}
	if !sameState(ld, post, probes) {
		t.Fatalf("crashed snapshot loaded against post-op dataset but diverges from post-op state")
	}
}

// TestCrashSoakAppendDelta drives a randomized mutate/persist/load soak,
// killing every AppendDelta at every byte boundary.
func TestCrashSoakAppendDelta(t *testing.T) {
	methods := []struct {
		name  string
		fresh func() index.Persistable
	}{
		{"ggsx", func() index.Persistable { return ggsx.New(ggsx.Options{MaxPathLen: 3, Shards: 2}) }},
		{"grapes", func() index.Persistable { return grapes.New(grapes.Options{MaxPathLen: 3, Shards: 2}) }},
	}
	for _, m := range methods {
		t.Run(m.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4242))
			db := soakDB(rng, 10)
			cur := m.fresh()
			cur.Build(db)
			probes := soakProbes(rng, db, 8)

			file := persistio.NewMemFile()
			if err := cur.SaveIndex(file); err != nil {
				t.Fatal(err)
			}

			steps := 6
			if testing.Short() {
				steps = 3
			}
			for step := 0; step < steps; step++ {
				pre, preDB := cur, db
				mu := cur.(index.Mutable)
				var (
					postM index.Mutable
					newDB []*graph.Graph
					err   error
				)
				if rng.Intn(3) > 0 || len(db) < 4 {
					postM, newDB, err = mu.AppendGraphs(soakDB(rng, 1+rng.Intn(3)))
				} else {
					postM, newDB, _, err = mu.RemoveGraphs([]int{rng.Intn(len(db))})
				}
				if err != nil {
					t.Fatalf("step %d: mutation: %v", step, err)
				}
				post := postM.(index.Persistable)
				postDB := newDB

				// Kill the append at every byte boundary. A failed attempt
				// leaves the pending delta staged, so the next attempt
				// replays the identical operation on a fresh clone.
				dp := post.(index.DeltaPersistable)
				var final *persistio.MemFile
				for k := int64(0); ; k++ {
					clone := file.Clone()
					ff := persistio.NewFaultFile(clone)
					ff.CrashAfterBytes(k)
					err := dp.AppendDelta(ff)
					if err == nil {
						final = clone
						if k == 0 {
							t.Fatalf("step %d: AppendDelta persisted zero bytes", step)
						}
						break
					}
					verifyCrashState(t, m.fresh, clone.Bytes(), pre, preDB, post, postDB, probes)
					if k > 1<<20 {
						t.Fatal("crash sweep did not terminate")
					}
				}

				// The surviving file after the successful attempt holds
				// exactly the post-op state.
				ld := m.fresh()
				rep, err := ld.LoadIndex(persistio.NewMemFileBytes(final.Bytes()), postDB)
				if err != nil {
					t.Fatalf("step %d: reloading committed snapshot: %v", step, err)
				}
				if rep.RecoveredTail != nil {
					t.Fatalf("step %d: committed snapshot reported a recovered tail: %+v", step, rep.RecoveredTail)
				}
				if !sameState(ld, post, probes) {
					t.Fatalf("step %d: committed snapshot diverges from post-op state", step)
				}

				file, cur, db = final, post, postDB
				probes = append(probes, soakProbes(rng, db, 2)...)
			}
		})
	}
}

// TestCrashSoakCompaction pushes the delta log past the compaction
// threshold and kills the atomic compaction rewrite at every byte
// boundary: the previous journaled snapshot must survive every crash
// point intact, and the successful rewrite must replace the file whole.
func TestCrashSoakCompaction(t *testing.T) {
	fresh := func() index.Persistable { return ggsx.New(ggsx.Options{MaxPathLen: 3, Shards: 2}) }
	rng := rand.New(rand.NewSource(99))
	db := soakDB(rng, 6)
	cur := fresh()
	cur.Build(db)
	probes := soakProbes(rng, db, 6)

	file := persistio.NewMemFile()
	if err := cur.SaveIndex(file); err != nil {
		t.Fatal(err)
	}

	// Grow the persisted journal until the *next* append must compact
	// (the weighted debt check runs against journals already on disk).
	for i := 0; ; i++ {
		mu := cur.(index.Mutable)
		next, newDB, err := mu.AppendGraphs(soakDB(rng, 4))
		if err != nil {
			t.Fatal(err)
		}
		post := next.(index.Persistable)
		prevLen := file.Len()
		ff := persistio.NewFaultFile(file)
		if err := post.(index.DeltaPersistable).AppendDelta(ff); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		cur, db = post, newDB
		probes = append(probes, soakProbes(rng, db, 2)...)
		if int64(file.Len()) == ff.Written() {
			// The whole file was rewritten: this append compacted.
			break
		}
		if file.Len() <= prevLen {
			t.Fatalf("append %d: file did not grow (%d -> %d)", i, prevLen, file.Len())
		}
		if i > 64 {
			t.Fatal("compaction never triggered")
		}
	}

	// One more mutation, then sweep the compaction-or-append at every
	// byte boundary after re-inflating the journal debt.
	for round := 0; round < 2; round++ {
		mu := cur.(index.Mutable)
		pre, preDB := cur, db
		next, newDB, err := mu.AppendGraphs(soakDB(rng, 4))
		if err != nil {
			t.Fatal(err)
		}
		post := next.(index.Persistable)
		dp := post.(index.DeltaPersistable)
		var final *persistio.MemFile
		for k := int64(0); ; k++ {
			clone := file.Clone()
			ff := persistio.NewFaultFile(clone)
			ff.CrashAfterBytes(k)
			err := dp.AppendDelta(ff)
			if err == nil {
				final = clone
				break
			}
			verifyCrashState(t, fresh, clone.Bytes(), pre.(index.Persistable), preDB, post, newDB, probes)
			if k > 1<<20 {
				t.Fatal("crash sweep did not terminate")
			}
		}
		ld := fresh()
		if _, err := ld.LoadIndex(persistio.NewMemFileBytes(final.Bytes()), newDB); err != nil {
			t.Fatalf("round %d: reloading: %v", round, err)
		}
		if !sameState(ld, post, probes) {
			t.Fatalf("round %d: committed snapshot diverges from post-op state", round)
		}
		file, cur, db = final, post, newDB
	}
}

// TestAppendDeltaSyncFailure: a failed durability barrier must surface as
// an error (the caller cannot treat the delta as persisted).
func TestAppendDeltaSyncFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := soakDB(rng, 6)
	x := ggsx.New(ggsx.Options{MaxPathLen: 3})
	x.Build(db)
	file := persistio.NewMemFile()
	if err := x.SaveIndex(file); err != nil {
		t.Fatal(err)
	}
	next, _, err := x.AppendGraphs(soakDB(rng, 2))
	if err != nil {
		t.Fatal(err)
	}
	ff := persistio.NewFaultFile(file)
	ff.FailNextSync(nil)
	if err := next.(index.DeltaPersistable).AppendDelta(ff); err == nil {
		t.Fatal("AppendDelta swallowed a sync failure")
	} else if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
