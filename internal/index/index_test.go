package index

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/iso"
)

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestBruteForceAnswersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := make([]*graph.Graph, 12)
	for i := range db {
		db[i] = randomGraph(rng, 5+rng.Intn(5), 0.35, 3)
		db[i].ID = i
	}
	m := NewBruteForce()
	m.Build(db)
	for trial := 0; trial < 30; trial++ {
		q := randomGraph(rng, 2+rng.Intn(3), 0.5, 3)
		got := Answer(m, q)
		var want []int32
		for i, g := range db {
			if iso.Reference(q, g) {
				want = append(want, int32(i))
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestBruteForceFilterIsEverything(t *testing.T) {
	db := []*graph.Graph{graph.New(0), graph.New(0), graph.New(0)}
	m := NewBruteForce()
	m.Build(db)
	if got := m.Filter(graph.New(0)); len(got) != 3 {
		t.Errorf("Filter = %v", got)
	}
	if m.SizeBytes() != 0 {
		t.Error("BruteForce reports an index size")
	}
	if m.Name() != "BruteForce" {
		t.Error("name")
	}
}

func TestSetOps(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{3, 4, 5, 8}
	if got := IntersectSorted(a, b); !reflect.DeepEqual(got, []int32{3, 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := SubtractSorted(a, b); !reflect.DeepEqual(got, []int32{1, 7}) {
		t.Errorf("Subtract = %v", got)
	}
	if got := UnionSorted(a, b); !reflect.DeepEqual(got, []int32{1, 3, 4, 5, 7, 8}) {
		t.Errorf("Union = %v", got)
	}
	if got := IntersectSorted(nil, b); len(got) != 0 {
		t.Errorf("Intersect(nil,b) = %v", got)
	}
	if got := SubtractSorted(a, nil); !reflect.DeepEqual(got, a) {
		t.Errorf("Subtract(a,nil) = %v", got)
	}
	if got := UnionSorted(nil, nil); len(got) != 0 {
		t.Errorf("Union(nil,nil) = %v", got)
	}
}

func TestSortIDs(t *testing.T) {
	got := SortIDs([]int32{5, 1, 3})
	if !reflect.DeepEqual(got, []int32{1, 3, 5}) {
		t.Errorf("SortIDs = %v", got)
	}
}

func TestSetOpsPreserveSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sortedRand := func() []int32 {
		n := rng.Intn(10)
		m := map[int32]bool{}
		for i := 0; i < n; i++ {
			m[int32(rng.Intn(20))] = true
		}
		var out []int32
		for k := range m {
			out = append(out, k)
		}
		return SortIDs(out)
	}
	isSorted := func(xs []int32) bool {
		for i := 1; i < len(xs); i++ {
			if xs[i-1] >= xs[i] {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 100; trial++ {
		a, b := sortedRand(), sortedRand()
		if !isSorted(IntersectSorted(a, b)) || !isSorted(SubtractSorted(a, b)) || !isSorted(UnionSorted(a, b)) {
			t.Fatalf("trial %d: set op broke sorted invariant", trial)
		}
	}
}
