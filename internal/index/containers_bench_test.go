package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/trie"
)

// Container micro-benchmarks: the same intersection workloads at three
// membership densities, each run over adaptive containers and the flat
// forced-array baseline. Together with the snapshot-size assertion in
// internal/trie these track the adaptive win (dense intersections are the
// word-AND fast path; sparse must stay at parity with the merge/gallop
// pair). The CI bench smoke job runs them at -benchtime 1x as a liveness
// check; the gated numbers come from `igqbench -experiment containers`.

// densityDataset builds nFeats feature lists where each of nGraphs graphs
// is a member with probability p — uniform scatter, the container choice's
// worst case (no run structure to exploit).
func densityDataset(seed int64, nFeats, nGraphs int, p float64) map[string][]trie.Posting {
	rng := rand.New(rand.NewSource(seed))
	ds := make(map[string][]trie.Posting, nFeats)
	for f := 0; f < nFeats; f++ {
		var ps []trie.Posting
		for g := 0; g < nGraphs; g++ {
			if rng.Float64() < p {
				ps = append(ps, trie.Posting{Graph: int32(g), Count: 1})
			}
		}
		ds[fmt.Sprintf("d:%d", f)] = ps
	}
	return ds
}

var benchRegimes = []struct {
	name string
	p    float64
}{
	{"sparse", 0.01},
	{"moderate", 0.20},
	{"dense", 0.90},
}

var benchPolicies = []struct {
	name   string
	policy trie.ContainerPolicy
}{
	{"adaptive", trie.AdaptiveContainers},
	{"array", trie.ArrayOnlyContainers},
}

var benchSink int

// BenchmarkIntersectViewsDensity measures the raw container intersection
// (the countfilter's inner loop) over four equal-density operands: at
// dense the adaptive side is a pure bitmap word-AND chain, at sparse both
// sides degenerate to the same array merge.
func BenchmarkIntersectViewsDensity(b *testing.B) {
	const nFeats, nGraphs = 4, 1 << 14
	for _, reg := range benchRegimes {
		ds := densityDataset(1, nFeats, nGraphs, reg.p)
		for _, pol := range benchPolicies {
			tr := buildCFTrie(pol.policy, 1, ds)
			views := make([]View, 0, nFeats)
			for k := range ds {
				id, ok := tr.Dict().Lookup(k)
				if !ok {
					b.Fatalf("key %q missing", k)
				}
				views = append(views, View{C: tr.GetByID(id).IDs()})
			}
			b.Run(reg.name+"/"+pol.name, func(b *testing.B) {
				s := GetViewScratch()
				defer PutViewScratch(s)
				vbuf := make([]View, len(views))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(vbuf, views) // IntersectViews reorders its copy
					benchSink = len(IntersectViews(vbuf, 0, s))
				}
			})
		}
	}
}

// BenchmarkFilterCountGEDensity measures the full count-filter pass —
// shard grouping, view assembly, intersection — per density and policy.
func BenchmarkFilterCountGEDensity(b *testing.B) {
	const nFeats, nGraphs = 4, 1 << 14
	for _, reg := range benchRegimes {
		ds := densityDataset(2, nFeats, nGraphs, reg.p)
		keys := make([]string, 0, nFeats)
		counts := make([]int32, 0, nFeats)
		for k := range ds {
			keys = append(keys, k)
			counts = append(counts, 1)
		}
		for _, pol := range benchPolicies {
			tr := buildCFTrie(pol.policy, 1, ds)
			qf := idSetFor(tr, keys, counts)
			b.Run(reg.name+"/"+pol.name, func(b *testing.B) {
				s := GetCountFilterScratch()
				defer PutCountFilterScratch(s)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					benchSink = len(FilterCountGE(tr, qf, s))
				}
			})
		}
	}
}
