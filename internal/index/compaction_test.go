package index

import "testing"

// TestCompactionDueWeighting pins the workload-adaptive threshold: the
// same journal byte debt that is tolerable for an append-only lineage
// must trigger compaction when the ops are removals, because removals
// replay several times heavier (postings scrub + swapped-graph re-home).
func TestCompactionDueWeighting(t *testing.T) {
	mk := func(base, journal int64, appends, removes int) *DeltaLog {
		return &DeltaLog{
			baseBytes:      base,
			journalBytes:   journal,
			journalAppends: appends,
			journalRemoves: removes,
		}
	}

	cases := []struct {
		name string
		l    *DeltaLog
		want bool
	}{
		// Append-only: plain byte ratio, threshold at base/2.
		{"append-only under", mk(1000, 499, 10, 0), false},
		{"append-only at", mk(1000, 500, 10, 0), true},
		// The same 200 journal bytes: fine for appends, overdue for
		// removals (weight 1+3 → effective 800 ≥ 500).
		{"mixed bytes appends", mk(1000, 200, 10, 0), false},
		{"same bytes removals", mk(1000, 200, 0, 10), true},
		// All-removal lineage compacts at base/8 (weight 4).
		{"all-removal under", mk(1000, 124, 0, 6), false},
		{"all-removal at", mk(1000, 125, 0, 6), true},
		// Half removals → weight 2.5: threshold at base/5.
		{"half-removal at", mk(1000, 200, 5, 5), true},
		{"half-removal under", mk(1000, 199, 5, 5), false},
		// No base snapshot yet → nothing to compact against.
		{"no base", mk(0, 10_000, 0, 100), false},
		// Empty journal never compacts regardless of mix.
		{"no journal bytes", mk(1000, 0, 0, 50), false},
	}
	for _, c := range cases {
		if got := c.l.compactionDue(); got != c.want {
			t.Errorf("%s: compactionDue() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestCompactionRemovalHeavyEarlier sweeps a growing journal under two op
// mixes and pins that the removal-heavy lineage crosses the threshold at
// strictly fewer journal bytes.
func TestCompactionRemovalHeavyEarlier(t *testing.T) {
	first := func(removes bool) int64 {
		l := &DeltaLog{baseBytes: 10_000}
		for step := int64(1); ; step++ {
			l.journalBytes += 100
			if removes {
				l.journalRemoves += 2
			} else {
				l.journalAppends += 2
			}
			if l.compactionDue() {
				return l.journalBytes
			}
			if step > 1000 {
				t.Fatal("threshold never crossed")
			}
		}
	}
	appendAt, removeAt := first(false), first(true)
	if removeAt >= appendAt {
		t.Fatalf("removal-heavy lineage compacted at %d bytes, append-only at %d — want strictly earlier",
			removeAt, appendAt)
	}
	t.Logf("append-only compacts at %d journal bytes, removal-heavy at %d", appendAt, removeAt)
}
