package index

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/persistio"
	"repro/internal/trie"
)

// Dynamic datasets. A Mutable method maintains its index under dataset
// mutation in O(delta): appending graphs inserts only the new graphs'
// features, and removing graphs scrubs only the removed (and swapped)
// graphs' postings — no re-enumeration of the unchanged dataset. Mutation
// is copy-on-write: the receiver keeps answering over the pre-mutation
// dataset (so queries in flight against it stay consistent) and a new
// method value over the new dataset is returned; installing it is the
// caller's snapshot swap. DeltaPersistable extends the persistence story
// the same way: AppendDelta appends the mutations since the last save as a
// CRC-guarded journal section, so the re-save is O(delta) too.

// ErrNotMutable reports a method without incremental maintenance support.
var ErrNotMutable = errors.New("index: method does not support dataset mutation")

// Mutable is a Method whose dataset can be mutated in place of a rebuild.
//
// Both mutation calls are copy-on-write: they return a new Mutable serving
// the post-mutation dataset (sharing all unaffected index state with the
// receiver) together with the new dataset slice; the receiver is left
// untouched and keeps answering over the old dataset. Like Build, a
// mutation call is externally exclusive — one mutation at a time, and the
// caller must not mutate through a stale generation — but it may run
// concurrently with the receiver's read path.
type Mutable interface {
	Method
	// Dataset returns the dataset this method generation answers over.
	// Callers must treat it as read-only.
	Dataset() []*graph.Graph
	// AppendGraphs returns a generation over append(Dataset(), gs...): the
	// new graphs occupy positions len(Dataset()).. in order.
	AppendGraphs(gs []*graph.Graph) (Mutable, []*graph.Graph, error)
	// RemoveGraphs returns a generation with the graphs at the given
	// positions removed under the canonical swap-removal of SwapRemove,
	// plus the old→new position mapping (-1 = removed) callers need to
	// patch position-keyed state.
	RemoveGraphs(positions []int) (Mutable, []*graph.Graph, []int32, error)
}

// DeltaPersistable is a Persistable whose snapshot files accept O(delta)
// journal appends.
type DeltaPersistable interface {
	Persistable
	// AppendDelta persists every mutation applied since f's snapshot was
	// written (by SaveIndex or a previous AppendDelta on the same file) as
	// one journal section appended to f, fsyncing afterwards when f
	// supports it. When accumulated journals outgrow the workload-adaptive
	// compaction threshold (removal-heavy journals compact earlier — see
	// removalReplayWeight), the file is instead rewritten as a fresh
	// compact base folding all journals in: atomically via
	// persistio.AtomicRewriter when f supports it, else in place via
	// truncation. The caller must hand the same file lineage to every
	// call: the pending delta is tracked relative to the last full save.
	// Exclusive with other persistence and mutation calls.
	AppendDelta(f io.ReadWriteSeeker) error
}

// DeltaMaintainable extends DeltaPersistable with a timer/idleness hook:
// MaintainDelta behaves like AppendDelta but also runs the compaction
// check when no mutations are pending, so journal debt left behind by the
// last append of a burst is folded down during quiet periods instead of
// waiting for the next mutation. Reports whether the file was modified.
type DeltaMaintainable interface {
	DeltaPersistable
	MaintainDelta(f io.ReadWriteSeeker) (bool, error)
}

// RemoveStep is one swap-removal step: the graph at Removed is deleted and
// the graph then at SwappedFrom (the last position) takes its place.
// SwappedFrom == Removed means the removed graph was itself last.
type RemoveStep struct {
	Removed      int32
	SwappedFrom  int32
	RemovedGraph *graph.Graph // the graph deleted by this step
	SwappedGraph *graph.Graph // the graph re-homed to Removed (nil when none)
}

// SwapRemove applies the canonical batch removal semantics shared by every
// Mutable method and by reference implementations in tests: positions
// (indices into db, deduplicated, all in range) are processed highest
// first; each step replaces the removed position with the then-last graph
// and shrinks the dataset by one. Returns the new dataset (freshly
// allocated), the steps in application order, and mapping[old] = new
// position (-1 for removed graphs). db itself is not modified.
func SwapRemove(db []*graph.Graph, positions []int) ([]*graph.Graph, []RemoveStep, []int32, error) {
	if len(positions) == 0 {
		return nil, nil, nil, errors.New("index: no positions to remove")
	}
	sorted := append([]int(nil), positions...)
	slices.Sort(sorted)
	for i, p := range sorted {
		if p < 0 || p >= len(db) {
			return nil, nil, nil, fmt.Errorf("index: remove position %d outside dataset of %d graphs", p, len(db))
		}
		if i > 0 && sorted[i-1] == p {
			return nil, nil, nil, fmt.Errorf("index: duplicate remove position %d", p)
		}
	}
	out := append([]*graph.Graph(nil), db...)
	mapping := make([]int32, len(db))
	origAt := make([]int32, len(db)) // origAt[pos] = original index of the graph now at pos
	for i := range origAt {
		origAt[i] = int32(i)
	}
	steps := make([]RemoveStep, 0, len(sorted))
	for i := len(sorted) - 1; i >= 0; i-- { // highest first
		p := sorted[i]
		last := len(out) - 1
		mapping[origAt[p]] = -1
		st := RemoveStep{Removed: int32(p), SwappedFrom: int32(last), RemovedGraph: out[p]}
		if p != last {
			st.SwappedGraph = out[last]
			out[p] = out[last]
			origAt[p] = origAt[last]
		}
		out = out[:last]
		steps = append(steps, st)
	}
	for pos := range out {
		mapping[origAt[pos]] = int32(pos)
	}
	return out, steps, mapping, nil
}

// ApplyMapping rewrites a sorted slice of dataset positions through a
// SwapRemove mapping: removed positions are dropped, surviving ones
// renumbered, and the result re-sorted. Shared by cache-side answer
// patching and reference implementations.
func ApplyMapping(ids []int32, mapping []int32) []int32 {
	out := ids[:0]
	for _, id := range ids {
		if m := mapping[id]; m >= 0 {
			out = append(out, m)
		}
	}
	slices.Sort(out)
	return out
}

// DeltaLog tracks, per index lineage, the mutations not yet persisted and
// the base/journal byte split of the snapshot file they belong to. One
// DeltaLog is shared by every copy-on-write generation of a method, so the
// pending delta survives mutation swaps.
type DeltaLog struct {
	mu           sync.Mutex
	pending      trie.Journal
	baseBytes    int64
	journalBytes int64

	// Persisted-journal op mix since the last full save — the signal the
	// workload-adaptive compaction threshold weighs (removals replay
	// heavier than appends).
	journalAppends int
	journalRemoves int
}

// NewDeltaLog returns an empty log.
func NewDeltaLog() *DeltaLog { return &DeltaLog{} }

// Record stages one applied mutation for the next AppendDelta.
func (l *DeltaLog) Record(m *trie.Mutation) {
	l.mu.Lock()
	m.RecordTo(&l.pending)
	l.mu.Unlock()
}

// NoteFullSave resets the log after a full snapshot of n bytes: the
// pending delta is folded into the new base, and journal accounting
// restarts from zero.
func (l *DeltaLog) NoteFullSave(n int64) {
	l.mu.Lock()
	l.pending.Reset()
	l.baseBytes = n
	l.journalBytes = 0
	l.journalAppends = 0
	l.journalRemoves = 0
	l.mu.Unlock()
}

// Workload-adaptive compaction threshold. Journals are folded into a
// fresh base when their *replay-weighted* size outgrows
// compactionFraction of the base snapshot. The weight follows the
// observed op mix of the journal lineage (persisted sections plus the
// pending batch): an append replays as pure insertion, but a removal
// scrubs postings, prunes byte-trie paths and re-homes the swapped
// graph's features — several times the work per journal byte — so
// removal-heavy journals hit the threshold earlier, bounding reload
// latency where the fixed byte-ratio threshold would let replay cost
// grow unchecked.
const (
	compactionFraction = 0.5
	// removalReplayWeight scales a pure-removal journal's effective size:
	// weight ramps linearly from 1 (all appends) to 1+removalReplayWeight
	// (all removals), so an all-removal journal compacts at 1/(1+w) of
	// the byte threshold — 1/8 of the base instead of 1/2 at w=3.
	removalReplayWeight = 3.0
)

// compactionDue reports whether the weighted journal debt crosses the
// threshold. Caller holds l.mu.
func (l *DeltaLog) compactionDue() bool {
	if l.baseBytes <= 0 {
		return false
	}
	appends, removes := l.pending.OpMix()
	appends += l.journalAppends
	removes += l.journalRemoves
	weight := 1.0
	if total := appends + removes; total > 0 {
		weight += removalReplayWeight * float64(removes) / float64(total)
	}
	return float64(l.journalBytes)*weight >= compactionFraction*float64(l.baseBytes)
}

// truncater is the optional file capability in-place compaction needs.
type truncater interface{ Truncate(int64) error }

// AppendIndexDelta is the shared AppendDelta implementation for
// trie-backed methods: it validates that f holds a journal-appendable
// snapshot written by methodTag, then appends the log's pending journal
// stamped with the post-mutation dataset fingerprint — or, past the
// compaction threshold, rewrites f as a fresh base via saveFull (which
// must not touch the log). No-op when nothing is pending.
func AppendIndexDelta(f io.ReadWriteSeeker, l *DeltaLog, methodTag string, stamp trie.JournalStamp, saveFull func(io.Writer) (int64, error)) error {
	_, err := maintainIndexDelta(f, l, methodTag, stamp, saveFull, false)
	return err
}

// MaintainIndexDelta is the timer/idleness maintenance hook: like
// AppendIndexDelta it persists any pending mutations, but it *also* runs
// the compaction check when nothing is pending. AppendIndexDelta alone has
// a debt gap — its compaction check runs before the append, so the very
// last append of a burst can push the journal past the threshold and the
// debt then sits until the next mutation. A quiet process never mutates
// again, so a server timer (or a graceful-shutdown save) calls this to fold
// the journals down during idleness. Returns whether f was modified.
func MaintainIndexDelta(f io.ReadWriteSeeker, l *DeltaLog, methodTag string, stamp trie.JournalStamp, saveFull func(io.Writer) (int64, error)) (bool, error) {
	return maintainIndexDelta(f, l, methodTag, stamp, saveFull, true)
}

func maintainIndexDelta(f io.ReadWriteSeeker, l *DeltaLog, methodTag string, stamp trie.JournalStamp, saveFull func(io.Writer) (int64, error), maintain bool) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pending.Empty() && !(maintain && l.compactionDue()) {
		return false, nil
	}
	// Validate the header before touching the file on *either* branch: the
	// compaction rewrite below destroys f's previous contents, so handing
	// in the wrong file must fail here, not truncate it.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false, fmt.Errorf("index: seeking snapshot start: %w", err)
	}
	br := bufio.NewReader(f)
	env, err := ReadIndexEnvelope(br)
	if err != nil {
		return false, err
	}
	if env.Method != methodTag {
		return false, fmt.Errorf("index: snapshot holds a %s index, not %s", env.Method, methodTag)
	}
	if err := trie.CheckJournalable(br); err != nil {
		return false, err
	}
	if l.compactionDue() {
		if ar, ok := f.(persistio.AtomicRewriter); ok {
			// Crash-safe compaction: the fresh base is written to the side
			// and swapped in whole, so a crash mid-rewrite leaves the old
			// journaled snapshot — still loadable — untouched.
			var n int64
			err := ar.AtomicRewrite(func(w io.Writer) error {
				var err error
				n, err = saveFull(w)
				return err
			})
			if err != nil {
				return false, fmt.Errorf("index: compacting snapshot: %w", err)
			}
			l.noteCompacted(n)
			return true, nil
		}
		if t, ok := f.(truncater); ok {
			// In-place fallback for plain seekable files: not crash-safe
			// (a crash mid-rewrite corrupts the base), but the only option
			// without atomic-rewrite capability.
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return false, fmt.Errorf("index: seeking snapshot start: %w", err)
			}
			n, err := saveFull(f)
			if err != nil {
				return false, fmt.Errorf("index: compacting snapshot: %w", err)
			}
			if err := t.Truncate(n); err != nil {
				return false, fmt.Errorf("index: truncating compacted snapshot: %w", err)
			}
			if err := persistio.Sync(f); err != nil {
				return false, fmt.Errorf("index: syncing compacted snapshot: %w", err)
			}
			l.noteCompacted(n)
			return true, nil
		}
		// No rewrite capability: fall through to a plain append.
	}
	if l.pending.Empty() {
		// Maintenance call with compaction due but no rewrite capability
		// and nothing to append: leave the debt for a capable caller.
		return false, nil
	}
	n, err := trie.AppendJournalSection(f, &l.pending, stamp)
	if err != nil {
		return false, err
	}
	// The terminator byte is the commit point; fsync makes it durable
	// before we discard the pending delta.
	if err := persistio.Sync(f); err != nil {
		return false, fmt.Errorf("index: syncing appended delta: %w", err)
	}
	appends, removes := l.pending.OpMix()
	l.journalAppends += appends
	l.journalRemoves += removes
	l.journalBytes += n
	l.pending.Reset()
	return true, nil
}

// noteCompacted resets accounting after a successful compaction of n base
// bytes. Caller holds l.mu.
func (l *DeltaLog) noteCompacted(n int64) {
	l.pending.Reset()
	l.baseBytes = n
	l.journalBytes = 0
	l.journalAppends = 0
	l.journalRemoves = 0
}
