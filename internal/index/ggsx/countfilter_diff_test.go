package ggsx

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/features"
	"repro/internal/index"
)

// Differential test pinning the legacy string-keyed count filter
// (FilterByCounts) against the ID-keyed hot path (FilterFresh) on
// randomized datasets: both must produce the same candidates for the same
// query multiset, across shard layouts.
func TestFilterByCountsMatchesFilterFresh(t *testing.T) {
	const maxLen = 3
	for seed := int64(0); seed < 6; seed++ {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				db := randomDB(20+rng.Intn(20), seed+100)
				x := New(Options{MaxPathLen: maxLen, Shards: shards})
				x.Build(db)

				for qi, q := range randomQueries(db, 20, seed+200) {
					// Legacy path: string-keyed occurrence map.
					want := features.Paths(q, features.PathOptions{MaxLen: maxLen})
					legacy := FilterByCounts(x.tr, want.Counts, len(db))

					// Hot path: interned IDSet through the pooled scratch.
					s := index.GetCountFilterScratch()
					qf := features.PathsID(q, features.PathOptions{MaxLen: maxLen}, x.dict, s.Feat, false)
					fresh := FilterFresh(x.tr, qf, len(db), s)
					index.PutCountFilterScratch(s)

					if len(legacy) != len(fresh) {
						t.Fatalf("query %d: legacy %v != fresh %v", qi, legacy, fresh)
					}
					for i := range legacy {
						if legacy[i] != fresh[i] {
							t.Fatalf("query %d: legacy %v != fresh %v", qi, legacy, fresh)
						}
					}
				}
			})
		}
	}
}
