package ggsx

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/trie"
)

var _ index.Persistable = (*Index)(nil)

// methodTag identifies GGSX snapshots in the envelope header.
const methodTag = "GGSX"

// SaveIndex implements index.Persistable: an envelope header (method,
// feature length, dataset checksum) followed by the path trie in the
// segment format of internal/trie. The index must be built.
func (x *Index) SaveIndex(w io.Writer) error {
	if x.db == nil {
		return errors.New("ggsx: SaveIndex before Build")
	}
	err := index.WriteIndexEnvelope(w, index.IndexEnvelope{
		Method:     methodTag,
		MaxPathLen: x.opt.MaxPathLen,
		DBChecksum: index.DBChecksum(x.db),
		NumGraphs:  len(x.db),
	})
	if err != nil {
		return fmt.Errorf("ggsx: %w", err)
	}
	if _, err := x.tr.WriteTo(w); err != nil {
		return fmt.Errorf("ggsx: writing trie: %w", err)
	}
	return nil
}

// LoadIndex implements index.Persistable: restores a SaveIndex snapshot,
// replacing the index state (including the dictionary contents — holders of
// FeatureDict stay wired, but structures keyed by the old IDs must be
// rebuilt). The snapshot is validated against db via the embedded checksum;
// loading against a different dataset fails with index.ErrDatasetMismatch.
// Segment decodes fan out over Options.BuildWorkers goroutines. The loaded
// index answers identically to a fresh Build over db.
func (x *Index) LoadIndex(r io.Reader, db []*graph.Graph) error {
	br := index.AsByteScanner(r)
	env, err := index.ReadIndexEnvelope(br)
	if err != nil {
		return fmt.Errorf("ggsx: %w", err)
	}
	if err := index.ValidateEnvelope(env, methodTag, db); err != nil {
		return fmt.Errorf("ggsx: %w", err)
	}
	// The decode interns through the shared dictionary, so keep the current
	// vocabulary for rollback: a failed decode must leave the index exactly
	// as it was — re-interning the saved keys in ID order restores the
	// identical ID assignment the old trie is keyed by.
	oldKeys := x.dict.Keys()
	x.dict.Reset()
	tr := trie.NewSharded(x.dict, x.opt.Shards)
	if _, err := tr.ReadFromWorkers(br, x.opt.BuildWorkers); err != nil {
		x.dict.Reset()
		for _, k := range oldKeys {
			x.dict.Intern(k)
		}
		return fmt.Errorf("ggsx: reading trie: %w", err)
	}
	if x.opt.Shards > 0 {
		// The snapshot restores its saved layout; an explicit option
		// overrides it (layout never affects answers).
		tr.Reshard(x.opt.Shards)
	}
	x.opt.MaxPathLen = env.MaxPathLen // queries must enumerate at the indexed length
	x.db = db
	x.tr = tr
	return nil
}
