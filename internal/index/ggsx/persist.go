package ggsx

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/trie"
)

var _ index.Persistable = (*Index)(nil)

// methodTag identifies GGSX snapshots in the envelope header.
const methodTag = "GGSX"

// SaveIndex implements index.Persistable: an envelope header (method,
// feature length, dataset checksum) followed by the path trie in the
// segment format of internal/trie. The index must be built. A full save
// resets the delta-log lineage: it captures every mutation applied so far,
// so the written file is the new base for future AppendDelta calls.
func (x *Index) SaveIndex(w io.Writer) error {
	n, err := x.writeIndex(w)
	if err != nil {
		return err
	}
	x.log.NoteFullSave(n)
	return nil
}

// writeIndex writes the full snapshot without touching the delta log
// (AppendDelta's compaction path calls it under the log's lock).
func (x *Index) writeIndex(w io.Writer) (int64, error) {
	if x.db == nil {
		return 0, errors.New("ggsx: SaveIndex before Build")
	}
	cw := &index.CountingWriter{W: w}
	err := index.WriteIndexEnvelope(cw, index.IndexEnvelope{
		Method:     methodTag,
		MaxPathLen: x.opt.MaxPathLen,
		DBChecksum: index.DBChecksum(x.db),
		NumGraphs:  len(x.db),
	})
	if err != nil {
		return cw.N, fmt.Errorf("ggsx: %w", err)
	}
	if _, err := x.tr.WriteTo(cw); err != nil {
		return cw.N, fmt.Errorf("ggsx: writing trie: %w", err)
	}
	return cw.N, nil
}

// LoadIndex implements index.Persistable: restores a SaveIndex snapshot —
// replaying any delta journals appended to it — replacing the index state
// (including the dictionary contents — holders of FeatureDict stay wired,
// but structures keyed by the old IDs must be rebuilt). The snapshot is
// validated against db via the embedded checksum — for a journaled
// snapshot, the newest journal's stamp, so a base written for one dataset
// plus journals leading to db loads cleanly while anything else fails with
// index.ErrDatasetMismatch. Segment decodes fan out over
// Options.BuildWorkers goroutines. The loaded index answers identically to
// a fresh Build over db, and any load failure (corruption, wrong dataset)
// leaves the live index and the shared dictionary byte-identical to their
// pre-call state.
//
// By default a torn trailing journal section (the crash-mid-append
// signature) is salvaged: the committed prefix loads and the damage is
// reported in LoadReport.RecoveredTail with reader-absolute offsets.
// index.StrictLoad fails on any damage instead.
func (x *Index) LoadIndex(r io.Reader, db []*graph.Graph, opts ...index.LoadOption) (index.LoadReport, error) {
	cfg := index.ResolveLoadOptions(opts)
	cr := &index.CountingScanner{R: index.AsByteScanner(r)}
	env, err := index.ReadIndexEnvelope(cr)
	if err != nil {
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("ggsx: %w", err)
	}
	if err := index.ValidateEnvelopeMethod(env, methodTag); err != nil {
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("ggsx: %w", err)
	}
	envBytes := cr.N
	// The decode interns through the shared dictionary, so keep the current
	// vocabulary for rollback: a failed decode must leave the index exactly
	// as it was — re-interning the saved keys in ID order restores the
	// identical ID assignment the old trie is keyed by.
	oldKeys := x.dict.Keys()
	rollback := func() {
		x.dict.Reset()
		for _, k := range oldKeys {
			x.dict.Intern(k)
		}
	}
	x.dict.Reset()
	tr := trie.NewSharded(x.dict, x.opt.Shards)
	n, rec, err := tr.ReadFromOptions(cr, trie.LoadOptions{Workers: x.opt.BuildWorkers, Strict: cfg.Strict})
	if err != nil {
		rollback()
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("ggsx: reading trie: %w", err)
	}
	if rec != nil {
		// Translate trie-relative recovery offsets into reader-absolute
		// ones so callers owning the file can repair it in place.
		rec.CommittedBytes += envBytes
	}
	// Dataset guard: journals carry the post-mutation fingerprint; a
	// journal-free snapshot answers for the envelope's base dataset.
	sum, ng := env.DBChecksum, env.NumGraphs
	if st := tr.JournalStamp(); st != nil {
		sum, ng = st.DBChecksum, st.NumGraphs
	}
	if err := index.ValidateDataset(sum, ng, db); err != nil {
		rollback()
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("ggsx: %w", err)
	}
	if x.opt.Shards > 0 {
		// The snapshot restores its saved layout; an explicit option
		// overrides it (layout never affects answers).
		tr.Reshard(x.opt.Shards)
	}
	x.opt.MaxPathLen = env.MaxPathLen // queries must enumerate at the indexed length
	x.db = db
	x.tr = tr
	// The loaded file is the new delta-log base — after a tail recovery,
	// only up to the committed prefix (the torn bytes must be repaired
	// away before the file accepts further appends).
	base := envBytes + n
	if rec != nil {
		base = rec.CommittedBytes
	}
	x.log.NoteFullSave(base)
	return index.LoadReport{Bytes: cr.N, RecoveredTail: rec}, nil
}
