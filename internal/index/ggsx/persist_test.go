package ggsx

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// randomDB builds n random labeled graphs, deterministically from seed.
func randomDB(n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	db := make([]*graph.Graph, n)
	for i := range db {
		nv := 4 + rng.Intn(6)
		g := graph.New(nv)
		for v := 0; v < nv; v++ {
			g.AddVertex(graph.Label(rng.Intn(5)))
		}
		for v := 1; v < nv; v++ {
			g.AddEdge(v, rng.Intn(v)) // spanning tree keeps it connected
		}
		for e := 0; e < nv/2; e++ {
			g.AddEdge(rng.Intn(nv), rng.Intn(nv))
		}
		db[i] = g
	}
	return db
}

// randomQueries extracts query-like subgraphs plus a few misses.
func randomQueries(db []*graph.Graph, n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		src := db[rng.Intn(len(db))]
		vs := []int{rng.Intn(src.NumVertices())}
		for _, w := range src.Neighbors(vs[0]) {
			vs = append(vs, int(w))
			if len(vs) == 3 {
				break
			}
		}
		q, _ := src.InducedSubgraph(vs)
		if rng.Intn(4) == 0 {
			q = q.Clone()
			q.AddVertex(graph.Label(90 + rng.Intn(3))) // out-of-vocabulary miss
			q.AddEdge(0, q.NumVertices()-1)
		}
		qs = append(qs, q)
	}
	return qs
}

// TestSaveLoadRoundTripIdentity pins the acceptance criterion: a loaded
// index answers byte-identically to a freshly built one, at several
// (shards, workers) combinations on both the save and load side.
func TestSaveLoadRoundTripIdentity(t *testing.T) {
	db := randomDB(40, 1)
	qs := randomQueries(db, 25, 2)
	for _, saveCfg := range []Options{
		{MaxPathLen: 3, Shards: 1, BuildWorkers: 1},
		{MaxPathLen: 3, Shards: 4, BuildWorkers: 4},
		{MaxPathLen: 3, Shards: 16, BuildWorkers: 2},
	} {
		for _, loadCfg := range []Options{
			{MaxPathLen: 3}, // adopt saved layout
			{MaxPathLen: 3, Shards: 2, BuildWorkers: 4}, // explicit re-shard
		} {
			name := fmt.Sprintf("save[s=%d,w=%d]/load[s=%d,w=%d]",
				saveCfg.Shards, saveCfg.BuildWorkers, loadCfg.Shards, loadCfg.BuildWorkers)
			t.Run(name, func(t *testing.T) {
				built := New(saveCfg)
				built.Build(db)
				var buf bytes.Buffer
				if err := built.SaveIndex(&buf); err != nil {
					t.Fatal(err)
				}
				loaded := New(loadCfg)
				if _, err := loaded.LoadIndex(bytes.NewReader(buf.Bytes()), db); err != nil {
					t.Fatal(err)
				}
				// Shard headers scale with the layout; net of those, the
				// footprint must round-trip exactly.
				bs := built.SizeBytes() - 48*built.tr.ShardCount()
				ls := loaded.SizeBytes() - 48*loaded.tr.ShardCount()
				if bs != ls {
					t.Errorf("SizeBytes (net of shard headers) %d != %d after load", ls, bs)
				}
				for i, q := range qs {
					bf, lf := built.Filter(q), loaded.Filter(q)
					if !reflect.DeepEqual(bf, lf) {
						t.Fatalf("query %d: filter %v != %v", i, lf, bf)
					}
					if !reflect.DeepEqual(index.Answer(built, q), index.Answer(loaded, q)) {
						t.Fatalf("query %d: answers diverge", i)
					}
				}
			})
		}
	}
}

func TestLoadIndexRejectsWrongDataset(t *testing.T) {
	db := randomDB(20, 3)
	other := randomDB(20, 99)
	x := New(Options{MaxPathLen: 3})
	x.Build(db)
	var buf bytes.Buffer
	if err := x.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	y := New(Options{MaxPathLen: 3})
	_, err := y.LoadIndex(bytes.NewReader(buf.Bytes()), other)
	if !errors.Is(err, index.ErrDatasetMismatch) {
		t.Errorf("load against different dataset: got %v, want ErrDatasetMismatch", err)
	}
	// Same graphs, different order: positions shift, so this is a
	// different dataset too.
	reordered := append([]*graph.Graph(nil), db[1:]...)
	reordered = append(reordered, db[0])
	_, err = y.LoadIndex(bytes.NewReader(buf.Bytes()), reordered)
	if !errors.Is(err, index.ErrDatasetMismatch) {
		t.Errorf("load against reordered dataset: got %v, want ErrDatasetMismatch", err)
	}
}

func TestLoadIndexRejectsWrongMethod(t *testing.T) {
	db := randomDB(10, 5)
	x := New(Options{MaxPathLen: 3})
	x.Build(db)
	var buf bytes.Buffer
	if err := x.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	data := bytes.Replace(buf.Bytes(), []byte("GGSX"), []byte("XSGG"), 1)
	if _, err := x.LoadIndex(bytes.NewReader(data), db); err == nil {
		t.Error("foreign-method snapshot loaded without error")
	}
}

// A failed load (envelope valid, trie section corrupt) must leave the
// index exactly as it was: same vocabulary, same IDs, same answers — not a
// half-reset dictionary probing stale postings.
func TestLoadIndexFailureLeavesIndexIntact(t *testing.T) {
	db := randomDB(20, 8)
	qs := randomQueries(db, 15, 9)
	x := New(Options{MaxPathLen: 3})
	x.Build(db)
	want := make([][]int32, len(qs))
	for i, q := range qs {
		want[i] = append([]int32(nil), x.Filter(q)...)
	}
	var buf bytes.Buffer
	if err := x.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-10] // valid envelope, torn trie
	if _, err := x.LoadIndex(bytes.NewReader(truncated), db); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	if got := x.FeatureDict().Len(); got == 0 {
		t.Fatal("failed load wiped the dictionary")
	}
	for i, q := range qs {
		if !reflect.DeepEqual(x.Filter(q), want[i]) {
			t.Fatalf("query %d answers changed after failed load", i)
		}
	}
}

func TestSaveIndexBeforeBuild(t *testing.T) {
	x := New(Options{})
	if err := x.SaveIndex(&bytes.Buffer{}); err == nil {
		t.Error("SaveIndex before Build did not error")
	}
}
