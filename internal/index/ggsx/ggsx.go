// Package ggsx reimplements GraphGrepSX (Bonnici et al., PRIB 2010), one of
// the three state-of-the-art baselines the paper incorporates iGQ into.
//
// GGSX exhaustively enumerates all labeled simple paths of up to MaxLen
// edges (4 in the paper's experiments) in every dataset graph and stores
// them in a suffix-tree-like trie with per-graph occurrence counts. A query
// graph is decomposed the same way; a dataset graph survives filtering only
// if it contains every query path feature at least as many times as the
// query does. Verification is a VF2 subgraph isomorphism test.
//
// Filtering runs on interned feature IDs: the query is canonicalised once
// against the index's dictionary (read-only, allocation-free), the
// per-feature candidate lists are intersected rarest-first, and each
// intersection step gallops when the list lengths are skewed.
package ggsx

import (
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/iso"
	"repro/internal/trie"
)

// Options configures a GGSX index.
type Options struct {
	// MaxPathLen is the maximum path length in edges (paper default 4;
	// Fig 18 also evaluates 5).
	MaxPathLen int
	// VerifyAlg selects the verification engine (default VF2, the
	// original GGSX choice; RI and Ullmann enable engine ablations).
	VerifyAlg iso.Algorithm
	// Shards is the postings shard count of the path trie (rounded up to a
	// power of two; 0 = trie.DefaultShards()).
	Shards int
	// BuildWorkers is the number of goroutines Build fans graph feature
	// enumeration out over (0 or 1 = sequential, the original
	// single-threaded GGSX). Any worker count produces an identical index.
	BuildWorkers int
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options { return Options{MaxPathLen: 4, VerifyAlg: iso.VF2} }

// Index is the GGSX method. Create with New, then Build. Dataset mutation
// (AppendGraphs/RemoveGraphs) is copy-on-write: it returns a new Index
// generation and leaves the receiver serving the old dataset; generations
// share the dictionary and the delta log.
type Index struct {
	opt  Options
	db   []*graph.Graph
	dict *features.Dict
	tr   *trie.Trie
	log  *index.DeltaLog // unsaved mutations; shared across generations
}

var (
	_ index.Method        = (*Index)(nil)
	_ index.DictProvider  = (*Index)(nil)
	_ index.CountFilterer = (*Index)(nil)
)

// New returns an unbuilt GGSX index.
func New(opt Options) *Index {
	if opt.MaxPathLen <= 0 {
		opt.MaxPathLen = 4
	}
	if opt.BuildWorkers <= 0 {
		opt.BuildWorkers = 1
	}
	d := features.NewDict()
	return &Index{opt: opt, dict: d, tr: trie.NewSharded(d, opt.Shards), log: index.NewDeltaLog()}
}

// Name implements index.Method.
func (x *Index) Name() string { return "GGSX" }

// FeatureDict implements index.DictProvider.
func (x *Index) FeatureDict() *features.Dict { return x.dict }

// FeatureMaxPathLen implements index.CountFilterer.
func (x *Index) FeatureMaxPathLen() int { return x.opt.MaxPathLen }

// Build implements index.Method: enumerate paths of every dataset graph
// into the shared trie (interning every feature into the dictionary). With
// BuildWorkers > 1 the enumeration fans out over workers, each staging into
// private per-shard buffers that merge deterministically (trie.Builder) —
// the resulting index is identical to the sequential build at any worker
// count. The trie and the dictionary contents are reset on entry — the
// *Dict object handed out by FeatureDict stays valid (holders remain wired
// to this index), but a re-Build does not retain the previous dataset's
// dead vocabulary; structures keyed by the old IDs must be rebuilt, which
// iGQ does at its next cache-index build.
func (x *Index) Build(db []*graph.Graph) {
	x.db = db
	x.dict.Reset()
	x.tr = trie.NewSharded(x.dict, x.opt.Shards)
	x.log.NoteFullSave(0) // a rebuild invalidates any snapshot lineage
	BuildPaths(x.tr, db, features.PathOptions{MaxLen: x.opt.MaxPathLen}, x.opt.BuildWorkers)
	x.tr.SetGallopProbeCost(index.CalibrateGallopProbeCost(x.tr))
}

// BuildPaths runs the shared parallel path-index build pipeline: workers
// claim dataset graphs, enumerate their path features and stage the
// postings; the per-shard merges run in parallel after the enumeration
// joins. Shared with Grapes, whose build differs only in PathOptions
// (location recording). workers ≤ 1 enumerates inline, avoiding staging
// memory for the sequential case.
func BuildPaths(tr *trie.Trie, db []*graph.Graph, opt features.PathOptions, workers int) {
	if workers > len(db) {
		workers = len(db)
	}
	if workers <= 1 {
		for i, g := range db {
			ps := features.Paths(g, opt)
			insertPathSet(tr.Insert, int32(i), ps)
		}
		return
	}
	b := tr.NewBuilder(workers)
	trie.ParallelFor(len(db), workers, func(w int, claim func() int) {
		bw := b.Worker(w)
		for i := claim(); i >= 0; i = claim() {
			ps := features.Paths(db[i], opt)
			insertPathSet(bw.Insert, int32(i), ps)
		}
	})
	b.Merge()
}

// insertPathSet emits one graph's enumerated features through insert —
// either Trie.Insert (sequential) or BuildWorker.Insert (staged).
func insertPathSet(insert func(string, trie.Posting), graphID int32, ps *features.PathSet) {
	for k, c := range ps.Counts {
		insert(k, trie.Posting{Graph: graphID, Count: int32(c), Locs: ps.Locations[k]})
	}
}

// Filter implements index.Method. A graph is a candidate iff for every
// query feature f: count_G(f) >= count_q(f).
func (x *Index) Filter(q *graph.Graph) []int32 {
	s := index.GetCountFilterScratch()
	defer index.PutCountFilterScratch(s)
	qf := features.PathsID(q, features.PathOptions{MaxLen: x.opt.MaxPathLen}, x.dict, s.Feat, false)
	return FilterFresh(x.tr, qf, len(x.db), s)
}

// FilterByFeatureCounts implements index.CountFilterer: filtering from a
// query already enumerated against this index's dictionary.
func (x *Index) FilterByFeatureCounts(qf features.IDSet) []int32 {
	s := index.GetCountFilterScratch()
	defer index.PutCountFilterScratch(s)
	return FilterFresh(x.tr, qf, len(x.db), s)
}

// FilterFresh runs the shared count filter and copies the result out of the
// scratch (an empty query matches every dataset position). Shared with
// Grapes, whose filter is identical.
func FilterFresh(tr *trie.Trie, qf features.IDSet, nGraphs int, s *index.CountFilterScratch) []int32 {
	if len(qf.Counts) == 0 && qf.Unknown == 0 {
		return index.AllIDs(nGraphs)
	}
	return copyIDs(index.FilterCountGE(tr, qf, s))
}

// Verify implements index.Method with a first-match test on the configured
// engine.
func (x *Index) Verify(q *graph.Graph, id int32) bool {
	return iso.SubgraphAlg(q, x.db[id], x.opt.VerifyAlg)
}

// SizeBytes implements index.Method: the path trie plus the feature
// dictionary it owns (the dictionary is real index footprint — Fig 18
// under-reports without it; it is counted here, at its owner, not in
// trie.SizeBytes, because cache-side tries share the same dictionary).
// Counted at the live vocabulary: features retired by removals are
// bookkeeping residue, not index content, so an incrementally maintained
// index accounts exactly like a fresh build over the surviving dataset.
func (x *Index) SizeBytes() int { return x.tr.SizeBytes() + x.tr.LiveDictSizeBytes() }

func copyIDs(ids []int32) []int32 {
	if len(ids) == 0 {
		return nil
	}
	return append([]int32(nil), ids...)
}

// FilterByCounts is the legacy string-keyed count filter, kept for callers
// holding a map of canonical keys (tests, tooling). The hot path is
// FilterFresh over index.FilterCountGE.
func FilterByCounts(tr *trie.Trie, want map[string]int, nGraphs int) []int32 {
	if len(want) == 0 {
		out := make([]int32, nGraphs)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	var cand []int32
	first := true
	for k, c := range want {
		posts := tr.Get(k)
		var ids []int32
		for _, p := range posts {
			if int(p.Count) >= c {
				ids = append(ids, p.Graph)
			}
		}
		// posts (and hence ids) are sorted by construction
		if first {
			cand = ids
			first = false
		} else {
			cand = index.IntersectSorted(cand, ids)
		}
		if len(cand) == 0 {
			return nil
		}
	}
	return cand
}
