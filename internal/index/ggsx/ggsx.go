// Package ggsx reimplements GraphGrepSX (Bonnici et al., PRIB 2010), one of
// the three state-of-the-art baselines the paper incorporates iGQ into.
//
// GGSX exhaustively enumerates all labeled simple paths of up to MaxLen
// edges (4 in the paper's experiments) in every dataset graph and stores
// them in a suffix-tree-like trie with per-graph occurrence counts. A query
// graph is decomposed the same way; a dataset graph survives filtering only
// if it contains every query path feature at least as many times as the
// query does. Verification is a VF2 subgraph isomorphism test.
package ggsx

import (
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/iso"
	"repro/internal/trie"
)

// Options configures a GGSX index.
type Options struct {
	// MaxPathLen is the maximum path length in edges (paper default 4;
	// Fig 18 also evaluates 5).
	MaxPathLen int
	// VerifyAlg selects the verification engine (default VF2, the
	// original GGSX choice; RI and Ullmann enable engine ablations).
	VerifyAlg iso.Algorithm
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options { return Options{MaxPathLen: 4, VerifyAlg: iso.VF2} }

// Index is the GGSX method. Create with New, then Build.
type Index struct {
	opt Options
	db  []*graph.Graph
	tr  *trie.Trie
}

var _ index.Method = (*Index)(nil)

// New returns an unbuilt GGSX index.
func New(opt Options) *Index {
	if opt.MaxPathLen <= 0 {
		opt.MaxPathLen = 4
	}
	return &Index{opt: opt, tr: trie.New()}
}

// Name implements index.Method.
func (x *Index) Name() string { return "GGSX" }

// Build implements index.Method: enumerate paths of every dataset graph
// into the shared trie.
func (x *Index) Build(db []*graph.Graph) {
	x.db = db
	for i, g := range db {
		ps := features.Paths(g, features.PathOptions{MaxLen: x.opt.MaxPathLen})
		for k, c := range ps.Counts {
			x.tr.Insert(k, trie.Posting{Graph: int32(i), Count: int32(c)})
		}
	}
}

// Filter implements index.Method. A graph is a candidate iff for every
// query feature f: count_G(f) >= count_q(f).
func (x *Index) Filter(q *graph.Graph) []int32 {
	ps := features.Paths(q, features.PathOptions{MaxLen: x.opt.MaxPathLen})
	return FilterByCounts(x.tr, ps.Counts, len(x.db))
}

// Verify implements index.Method with a first-match test on the configured
// engine.
func (x *Index) Verify(q *graph.Graph, id int32) bool {
	return iso.SubgraphAlg(q, x.db[id], x.opt.VerifyAlg)
}

// SizeBytes implements index.Method.
func (x *Index) SizeBytes() int { return x.tr.SizeBytes() }

// FilterByCounts computes the candidate ids for a count-based feature
// filter over tr: graphs holding every feature in want with at least the
// wanted multiplicity. nGraphs bounds the id space. Shared by GGSX and
// Grapes (and by iGQ's Isub, which indexes query graphs the same way).
func FilterByCounts(tr *trie.Trie, want map[string]int, nGraphs int) []int32 {
	if len(want) == 0 {
		// No features (empty query): every graph qualifies.
		out := make([]int32, nGraphs)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	var cand []int32
	first := true
	for k, c := range want {
		posts := tr.Get(k)
		var ids []int32
		for _, p := range posts {
			if int(p.Count) >= c {
				ids = append(ids, p.Graph)
			}
		}
		// posts (and hence ids) are sorted by construction
		if first {
			cand = ids
			first = false
		} else {
			cand = index.IntersectSorted(cand, ids)
		}
		if len(cand) == 0 {
			return nil
		}
	}
	return cand
}
