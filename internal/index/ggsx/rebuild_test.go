package ggsx

import (
	"testing"

	"repro/internal/graph"
)

// pathDB builds n small path graphs whose vertex labels are drawn from
// [base, base+3), so two calls with disjoint bases produce disjoint feature
// vocabularies.
func pathDB(n int, base graph.Label) []*graph.Graph {
	db := make([]*graph.Graph, n)
	for i := range db {
		g := graph.New(4)
		for v := 0; v < 4; v++ {
			g.AddVertex(base + graph.Label((i+v)%3))
		}
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		db[i] = g
	}
	return db
}

// Regression for the dictionary vocabulary leak: re-Building on a disjoint
// dataset must not retain the previous dataset's dead features, and must
// keep handing out the same *Dict object (the sharing contract with iGQ).
func TestRebuildDoesNotLeakVocabulary(t *testing.T) {
	dbA := pathDB(5, 1)
	dbB := pathDB(5, 100)

	x := New(Options{MaxPathLen: 3})
	dict := x.FeatureDict()
	x.Build(dbA)
	lenA := dict.Len()
	if lenA == 0 {
		t.Fatal("no features interned for dataset A")
	}

	// Reference: the vocabulary of B alone.
	fresh := New(Options{MaxPathLen: 3})
	fresh.Build(dbB)
	wantLen := fresh.FeatureDict().Len()

	x.Build(dbB)
	if x.FeatureDict() != dict {
		t.Fatal("Build replaced the shared dictionary object")
	}
	if got := dict.Len(); got != wantLen {
		t.Errorf("dict after re-Build holds %d keys, want %d (B's vocabulary alone; leak of A's %d keys?)",
			got, wantLen, lenA)
	}
	// The rebuilt index still answers correctly over B.
	q := graph.New(2)
	q.AddVertex(100)
	q.AddVertex(101)
	q.AddEdge(0, 1)
	if got, want := x.Filter(q), fresh.Filter(q); len(got) != len(want) {
		t.Errorf("rebuilt index filter %v, fresh index filter %v", got, want)
	}
}

// The index footprint must include the feature dictionary, not just the
// postings trie (Fig 18 accounting).
func TestSizeBytesIncludesDictionary(t *testing.T) {
	x := New(Options{MaxPathLen: 3})
	x.Build(pathDB(5, 1))
	postings := x.tr.SizeBytes()
	if got := x.SizeBytes(); got <= postings {
		t.Errorf("SizeBytes = %d, want more than the postings alone (%d)", got, postings)
	}
}
