package ggsx

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/trie"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(len(labels))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestDefaultOptions(t *testing.T) {
	if DefaultOptions().MaxPathLen != 4 {
		t.Errorf("default MaxPathLen = %d", DefaultOptions().MaxPathLen)
	}
	// zero options normalised by New
	x := New(Options{})
	if x.opt.MaxPathLen != 4 {
		t.Errorf("New normalised MaxPathLen = %d", x.opt.MaxPathLen)
	}
}

func TestFilterCountSemantics(t *testing.T) {
	// db[0] has one 1-2 edge, db[1] has two disjoint 1-2 edges; a query
	// needing two occurrences must keep only db[1]
	one := pathGraph(1, 2)
	two := graph.New(4)
	two.AddVertex(1)
	two.AddVertex(2)
	two.AddVertex(1)
	two.AddVertex(2)
	two.AddEdge(0, 1)
	two.AddEdge(2, 3)

	x := New(DefaultOptions())
	x.Build([]*graph.Graph{one, two})

	q := two.Clone()
	cs := x.Filter(q)
	if !reflect.DeepEqual(cs, []int32{1}) {
		t.Errorf("CS = %v, want [1]", cs)
	}
	// single-edge query matches both
	if cs := x.Filter(pathGraph(1, 2)); !reflect.DeepEqual(cs, []int32{0, 1}) {
		t.Errorf("CS = %v, want [0 1]", cs)
	}
}

func TestFilterUnknownFeature(t *testing.T) {
	x := New(DefaultOptions())
	x.Build([]*graph.Graph{pathGraph(1, 2, 3)})
	if cs := x.Filter(pathGraph(9, 9)); len(cs) != 0 {
		t.Errorf("unknown-label query produced candidates: %v", cs)
	}
}

func TestVerifyDelegatesToVF2(t *testing.T) {
	x := New(DefaultOptions())
	host := pathGraph(1, 2, 3, 4)
	x.Build([]*graph.Graph{host})
	if !x.Verify(pathGraph(2, 3), 0) {
		t.Error("contained pattern rejected")
	}
	if x.Verify(pathGraph(4, 1), 0) {
		t.Error("non-contained pattern accepted")
	}
}

func TestFilterByCountsEmptyWant(t *testing.T) {
	tr := trie.New()
	got := FilterByCounts(tr, nil, 3)
	if !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("empty-want filter = %v", got)
	}
}

func TestFilterByCountsIntersection(t *testing.T) {
	tr := trie.New()
	tr.Insert("a", trie.Posting{Graph: 0, Count: 2})
	tr.Insert("a", trie.Posting{Graph: 1, Count: 1})
	tr.Insert("b", trie.Posting{Graph: 0, Count: 1})
	tr.Insert("b", trie.Posting{Graph: 2, Count: 1})
	// needs a×2 and b×1 → only graph 0
	got := FilterByCounts(tr, map[string]int{"a": 2, "b": 1}, 3)
	if !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("filter = %v", got)
	}
	// needs a×3 → nobody
	if got := FilterByCounts(tr, map[string]int{"a": 3}, 3); len(got) != 0 {
		t.Errorf("over-count filter = %v", got)
	}
}

func TestLongerPathsFilterTighter(t *testing.T) {
	// maxLen 5 indexes longer features than maxLen 2, so its candidate
	// sets are never larger
	rng := rand.New(rand.NewSource(9))
	var db []*graph.Graph
	for i := 0; i < 15; i++ {
		g := graph.New(10)
		for v := 0; v < 10; v++ {
			g.AddVertex(graph.Label(rng.Intn(3)))
		}
		for v := 1; v < 10; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		db = append(db, g)
	}
	short := New(Options{MaxPathLen: 2})
	long := New(Options{MaxPathLen: 5})
	short.Build(db)
	long.Build(db)
	for trial := 0; trial < 20; trial++ {
		src := db[rng.Intn(len(db))]
		order := src.BFSOrder(rng.Intn(src.NumVertices()))
		if len(order) > 6 {
			order = order[:6]
		}
		q, _ := src.InducedSubgraph(order)
		if len(long.Filter(q)) > len(short.Filter(q)) {
			t.Fatalf("trial %d: longer features produced a larger candidate set", trial)
		}
	}
	if long.SizeBytes() <= short.SizeBytes() {
		t.Error("longer feature index should be bigger")
	}
}
