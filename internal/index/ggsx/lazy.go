package ggsx

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/trie"
)

var (
	_ index.LazyLoadable      = (*Index)(nil)
	_ index.ResidencyReporter = (*Index)(nil)
)

// LoadIndexLazy implements index.LazyLoadable: like LoadIndex, but posting
// segments stay undecoded until a query first touches their shard, and
// budget bounds the resident decoded bytes (0 = unbounded). src must stay
// open and immutable until the index is materialised or discarded. The
// explicit shard-count option is not applied — the lazy index adopts the
// snapshot's saved layout (see index.LazyLoadable).
func (x *Index) LoadIndexLazy(src trie.RandomAccessFile, db []*graph.Graph, budget int64, opts ...index.LoadOption) (index.LoadReport, error) {
	cfg := index.ResolveLoadOptions(opts)
	cr := &index.CountingScanner{R: index.AsByteScanner(io.NewSectionReader(src, 0, src.Size()))}
	env, err := index.ReadIndexEnvelope(cr)
	if err != nil {
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("ggsx: %w", err)
	}
	if err := index.ValidateEnvelopeMethod(env, methodTag); err != nil {
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("ggsx: %w", err)
	}
	envBytes := cr.N
	// Same rollback discipline as LoadIndex: a failed open leaves the index
	// and the shared dictionary byte-identical to their pre-call state.
	oldKeys := x.dict.Keys()
	rollback := func() {
		x.dict.Reset()
		for _, k := range oldKeys {
			x.dict.Intern(k)
		}
	}
	x.dict.Reset()
	tr := trie.NewSharded(x.dict, 0)
	n, rec, err := tr.OpenLazy(
		io.NewSectionReader(src, envBytes, src.Size()-envBytes),
		trie.LazyOptions{Workers: x.opt.BuildWorkers, Strict: cfg.Strict, BudgetBytes: budget})
	if err != nil {
		rollback()
		return index.LoadReport{Bytes: envBytes}, fmt.Errorf("ggsx: opening trie: %w", err)
	}
	if rec != nil {
		rec.CommittedBytes += envBytes // translate to src-absolute offsets
	}
	// Dataset guard: a journaled snapshot answers for the newest journal
	// stamp's dataset, not the envelope's base (see LoadIndex). The journal
	// tail is scanned eagerly even on the lazy path, so the stamp is known.
	sum, ng := env.DBChecksum, env.NumGraphs
	if st := tr.JournalStamp(); st != nil {
		sum, ng = st.DBChecksum, st.NumGraphs
	}
	if err := index.ValidateDataset(sum, ng, db); err != nil {
		rollback()
		return index.LoadReport{Bytes: envBytes + n}, fmt.Errorf("ggsx: %w", err)
	}
	x.opt.MaxPathLen = env.MaxPathLen
	x.db = db
	x.tr = tr
	base := envBytes + n
	if rec != nil {
		base = rec.CommittedBytes
	}
	x.log.NoteFullSave(base)
	return index.LoadReport{Bytes: envBytes + n, RecoveredTail: rec}, nil
}

// Materialize implements index.LazyLoadable: faults in every remaining
// shard, releasing the dependency on the lazy source. No-op when the index
// was loaded eagerly or built fresh.
func (x *Index) Materialize() error {
	if x.tr == nil {
		return errors.New("ggsx: Materialize before Build or LoadIndex")
	}
	return x.tr.Materialize()
}

// Residency implements index.ResidencyReporter.
func (x *Index) Residency() trie.Residency {
	if x.tr == nil {
		return trie.Residency{}
	}
	return x.tr.Residency()
}
