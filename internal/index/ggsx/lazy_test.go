package ggsx

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/index"
)

// TestLoadIndexLazyDifferential: a lazily opened GGSX index must answer
// every query identically to the eager load of the same snapshot, touch
// only the shards the queries route to, and materialise into the identical
// fully-resident index.
func TestLoadIndexLazyDifferential(t *testing.T) {
	db := randomDB(40, 1)
	qs := randomQueries(db, 25, 2)
	built := New(Options{MaxPathLen: 3, Shards: 16, BuildWorkers: 2})
	built.Build(db)
	var buf bytes.Buffer
	if err := built.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}

	eager := New(Options{MaxPathLen: 3})
	if _, err := eager.LoadIndex(bytes.NewReader(buf.Bytes()), db); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 8 << 10} {
		lazy := New(Options{MaxPathLen: 3, BuildWorkers: 2})
		rep, err := lazy.LoadIndexLazy(bytes.NewReader(buf.Bytes()), db, budget)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bytes != int64(buf.Len()) {
			t.Errorf("LoadIndexLazy reported %d bytes, snapshot is %d", rep.Bytes, buf.Len())
		}
		res := lazy.Residency()
		if !res.Lazy || res.ResidentShards != 0 {
			t.Fatalf("post-open residency %+v: want lazy with zero resident shards (O(touched) TTFQ)", res)
		}
		for i, q := range qs {
			if !reflect.DeepEqual(eager.Filter(q), lazy.Filter(q)) {
				t.Fatalf("budget %d, query %d: lazy filter diverges", budget, i)
			}
			if !reflect.DeepEqual(index.Answer(eager, q), index.Answer(lazy, q)) {
				t.Fatalf("budget %d, query %d: lazy answers diverge", budget, i)
			}
		}
		res = lazy.Residency()
		if res.Faults == 0 {
			t.Error("queries answered without any shard fault-in")
		}
		if budget > 0 && res.ResidentBytes > budget && res.ResidentShards > 1 {
			t.Errorf("resident %d bytes over budget %d: %+v", res.ResidentBytes, budget, res)
		}
		if err := lazy.Materialize(); err != nil {
			t.Fatal(err)
		}
		if res := lazy.Residency(); res.Lazy && !res.Materialized {
			t.Errorf("residency after Materialize: %+v", res)
		}
		if eager.SizeBytes() != lazy.SizeBytes() {
			t.Errorf("SizeBytes %d != eager %d after materialise", lazy.SizeBytes(), eager.SizeBytes())
		}
		var esave, lsave bytes.Buffer
		if err := eager.SaveIndex(&esave); err != nil {
			t.Fatal(err)
		}
		if err := lazy.SaveIndex(&lsave); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(esave.Bytes(), lsave.Bytes()) {
			t.Error("materialised lazy index re-saves different bytes")
		}
	}
}

// TestLoadIndexLazyFailureLeavesIndexIntact: the rollback contract carries
// over to the lazy path — a dataset mismatch must leave a live index (and
// its dictionary IDs) untouched.
func TestLoadIndexLazyFailureLeavesIndexIntact(t *testing.T) {
	db := randomDB(20, 8)
	qs := randomQueries(db, 10, 9)
	x := New(Options{MaxPathLen: 3, Shards: 4})
	x.Build(db)
	want := make([][]int32, len(qs))
	for i, q := range qs {
		want[i] = x.Filter(q)
	}
	var buf bytes.Buffer
	if err := x.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	other := randomDB(20, 99)
	if _, err := x.LoadIndexLazy(bytes.NewReader(buf.Bytes()), other, 0); !errors.Is(err, index.ErrDatasetMismatch) {
		t.Fatalf("LoadIndexLazy against the wrong dataset = %v, want ErrDatasetMismatch", err)
	}
	for i, q := range qs {
		if !reflect.DeepEqual(x.Filter(q), want[i]) {
			t.Fatalf("query %d answers changed after failed lazy load", i)
		}
	}
}
