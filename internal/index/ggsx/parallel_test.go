package ggsx

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/trie"
)

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func dumpTrie(tr *trie.Trie) string {
	out := fmt.Sprintf("nodes=%d len=%d\n", tr.NodeCount(), tr.Len())
	tr.Walk(func(k string, ps []trie.Posting) {
		out += fmt.Sprintf("%q ->", k)
		for _, p := range ps {
			out += fmt.Sprintf(" {g=%d c=%d locs=%v}", p.Graph, p.Count, p.Locs)
		}
		out += "\n"
	})
	return out
}

// TestParallelBuildDifferential pins the parallel build pipeline to the
// sequential one: for any shard count and worker count the built trie is
// bit-identical (keys, Walk order, postings, node count) and Filter returns
// identical candidates.
func TestParallelBuildDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := make([]*graph.Graph, 24)
	for i := range db {
		db[i] = randomGraph(rng, 8+rng.Intn(10), 0.25, 4)
	}
	queries := make([]*graph.Graph, 12)
	for i := range queries {
		queries[i] = randomGraph(rng, 3+rng.Intn(3), 0.5, 4)
	}

	ref := New(Options{MaxPathLen: 4, Shards: 1, BuildWorkers: 1})
	ref.Build(db)
	wantTrie := dumpTrie(ref.tr)

	for _, tc := range []struct{ shards, workers int }{
		{1, 4}, {4, 1}, {5, 3}, {8, 8}, {64, 2},
	} {
		x := New(Options{MaxPathLen: 4, Shards: tc.shards, BuildWorkers: tc.workers})
		x.Build(db)
		if got := dumpTrie(x.tr); got != wantTrie {
			t.Errorf("shards=%d workers=%d: trie diverges from sequential build", tc.shards, tc.workers)
		}
		for qi, q := range queries {
			want := ref.Filter(q)
			got := x.Filter(q)
			if len(want) != len(got) {
				t.Fatalf("shards=%d workers=%d query %d: Filter %v != %v", tc.shards, tc.workers, qi, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("shards=%d workers=%d query %d: Filter %v != %v", tc.shards, tc.workers, qi, got, want)
				}
			}
		}
	}
}

// TestBuildIdempotentSharded: a second Build over the same index (dictionary
// already populated) must reproduce the same sharded store.
func TestBuildIdempotentSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := make([]*graph.Graph, 10)
	for i := range db {
		db[i] = randomGraph(rng, 10, 0.3, 3)
	}
	x := New(Options{MaxPathLen: 4, Shards: 8, BuildWorkers: 4})
	x.Build(db)
	first := dumpTrie(x.tr)
	x.Build(db)
	if got := dumpTrie(x.tr); got != first {
		t.Error("rebuild over a warm dictionary diverged")
	}
}
