package ggsx

// Incremental dataset maintenance for the path methods. Appending graphs
// enumerates only the new graphs and stages their features into a
// copy-on-write trie mutation; removing graphs enumerates only the removed
// (and swapped) graphs to scrub exactly their postings. Both return a new
// Index generation sharing the dictionary, the delta log and all
// unaffected trie state with the receiver — the receiver keeps answering
// over the old dataset until the caller swaps generations, which is what
// makes mutation safe alongside concurrent queries. The staged ops are
// recorded into the shared DeltaLog so a later AppendDelta persists them
// in O(delta). Grapes reuses these helpers with location recording on,
// exactly as it reuses BuildPaths.

import (
	"errors"
	"io"
	"slices"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/trie"
)

var (
	_ index.Mutable          = (*Index)(nil)
	_ index.DeltaPersistable = (*Index)(nil)
)

// Dataset implements index.Mutable.
func (x *Index) Dataset() []*graph.Graph { return x.db }

// AppendGraphs implements index.Mutable: a copy-on-write generation over
// append(db, gs...). O(delta): only the new graphs are enumerated.
func (x *Index) AppendGraphs(gs []*graph.Graph) (index.Mutable, []*graph.Graph, error) {
	if x.db == nil {
		return nil, nil, errors.New("ggsx: AppendGraphs before Build")
	}
	newDB, tr, err := x.appendGraphs(gs, features.PathOptions{MaxLen: x.opt.MaxPathLen})
	if err != nil {
		return nil, nil, err
	}
	nx := &Index{opt: x.opt, db: newDB, dict: x.dict, tr: tr, log: x.log}
	return nx, newDB, nil
}

// RemoveGraphs implements index.Mutable under the canonical swap-removal
// semantics of index.SwapRemove. O(delta): only the removed and swapped
// graphs are enumerated.
func (x *Index) RemoveGraphs(positions []int) (index.Mutable, []*graph.Graph, []int32, error) {
	if x.db == nil {
		return nil, nil, nil, errors.New("ggsx: RemoveGraphs before Build")
	}
	newDB, tr, mapping, err := x.removeGraphs(positions, features.PathOptions{MaxLen: x.opt.MaxPathLen})
	if err != nil {
		return nil, nil, nil, err
	}
	nx := &Index{opt: x.opt, db: newDB, dict: x.dict, tr: tr, log: x.log}
	return nx, newDB, mapping, nil
}

// appendGraphs stages and applies one append batch (shared with Grapes).
func (x *Index) appendGraphs(gs []*graph.Graph, popt features.PathOptions) ([]*graph.Graph, *trie.Trie, error) {
	if len(gs) == 0 {
		return nil, nil, errors.New("ggsx: no graphs to append")
	}
	for _, g := range gs {
		if g == nil {
			return nil, nil, errors.New("ggsx: nil graph in append batch")
		}
	}
	newDB := make([]*graph.Graph, 0, len(x.db)+len(gs))
	newDB = append(newDB, x.db...)
	newDB = append(newDB, gs...)
	mut := x.tr.NewMutation()
	StageAppend(mut, int32(len(x.db)), gs, popt)
	x.log.Record(mut)
	return newDB, mut.Apply(), nil
}

// removeGraphs stages and applies one removal batch (shared with Grapes).
func (x *Index) removeGraphs(positions []int, popt features.PathOptions) ([]*graph.Graph, *trie.Trie, []int32, error) {
	newDB, steps, mapping, err := index.SwapRemove(x.db, positions)
	if err != nil {
		return nil, nil, nil, err
	}
	mut := x.tr.NewMutation()
	StageRemovals(mut, steps, popt)
	x.log.Record(mut)
	return newDB, mut.Apply(), mapping, nil
}

// StageAppend enumerates gs — the graphs appended at dataset positions
// startID, startID+1, ... — and stages their features into mut. Feature
// records are key-sorted so staging is deterministic run to run.
func StageAppend(mut *trie.Mutation, startID int32, gs []*graph.Graph, opt features.PathOptions) {
	for i, g := range gs {
		mut.AppendGraph(startID+int32(i), GraphFeatures(features.Paths(g, opt)))
	}
}

// StageRemovals stages the swap-removal steps of index.SwapRemove: each
// step scrubs the removed graph's feature keys and re-homes the swapped
// graph's postings.
func StageRemovals(mut *trie.Mutation, steps []index.RemoveStep, opt features.PathOptions) {
	for _, st := range steps {
		scrub := featureKeys(features.Paths(st.RemovedGraph, opt))
		var swapped []trie.GraphFeature
		if st.SwappedGraph != nil {
			swapped = GraphFeatures(features.Paths(st.SwappedGraph, opt))
		}
		mut.RemoveGraph(st.Removed, st.SwappedFrom, scrub, swapped)
	}
}

// GraphFeatures flattens a PathSet into key-sorted feature records, ready
// for Mutation.AppendGraph/RemoveGraph staging. Exported alongside
// StageAppend/StageRemovals: the contain method stages the same records
// but interleaves its own NF bookkeeping per graph.
func GraphFeatures(ps *features.PathSet) []trie.GraphFeature {
	out := make([]trie.GraphFeature, 0, len(ps.Counts))
	for k, c := range ps.Counts {
		out = append(out, trie.GraphFeature{Key: k, Count: int32(c), Locs: ps.Locations[k]})
	}
	slices.SortFunc(out, func(a, b trie.GraphFeature) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		default:
			return 0
		}
	})
	return out
}

// featureKeys lists a PathSet's canonical keys, sorted.
func featureKeys(ps *features.PathSet) []string {
	out := make([]string, 0, len(ps.Counts))
	for k := range ps.Counts {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// AppendDelta implements index.DeltaPersistable via the shared
// index.AppendIndexDelta flow.
func (x *Index) AppendDelta(f io.ReadWriteSeeker) error {
	if x.db == nil {
		return errors.New("ggsx: AppendDelta before Build")
	}
	stamp := trie.JournalStamp{DBChecksum: index.DBChecksum(x.db), NumGraphs: len(x.db)}
	return index.AppendIndexDelta(f, x.log, methodTag, stamp, x.writeIndex)
}

// MaintainDelta implements index.DeltaMaintainable: AppendDelta plus the
// idle-compaction check, for timer-driven journal maintenance.
func (x *Index) MaintainDelta(f io.ReadWriteSeeker) (bool, error) {
	if x.db == nil {
		return false, errors.New("ggsx: MaintainDelta before Build")
	}
	stamp := trie.JournalStamp{DBChecksum: index.DBChecksum(x.db), NumGraphs: len(x.db)}
	return index.MaintainIndexDelta(f, x.log, methodTag, stamp, x.writeIndex)
}
