package ggsx

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// TestMutationDifferential pins the copy-on-write mutation path to a
// from-scratch Build over the final dataset: after every append/remove
// batch the mutated index must match the rebuilt one in trie state, filter
// results, answers and SizeBytes — and the O(delta) journaled snapshot
// must load back to the same state.
func TestMutationDifferential(t *testing.T) {
	for _, tc := range []struct{ shards, workers int }{{1, 1}, {4, 2}} {
		t.Run(fmt.Sprintf("shards=%d workers=%d", tc.shards, tc.workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			db := make([]*graph.Graph, 16)
			for i := range db {
				db[i] = randomGraph(rng, 6+rng.Intn(6), 0.3, 4)
			}
			queries := make([]*graph.Graph, 8)
			for i := range queries {
				queries[i] = randomGraph(rng, 3+rng.Intn(2), 0.5, 4)
			}

			var cur index.Mutable = New(Options{MaxPathLen: 3, Shards: tc.shards, BuildWorkers: tc.workers})
			cur.Build(db)

			snapPath := filepath.Join(t.TempDir(), "base.idx")
			f, err := os.Create(snapPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := cur.(index.Persistable).SaveIndex(f); err != nil {
				t.Fatal(err)
			}
			f.Close()

			cdb := db
			for step := 0; step < 10; step++ {
				if rng.Intn(2) == 0 || len(cdb) < 4 {
					gs := []*graph.Graph{
						randomGraph(rng, 5+rng.Intn(5), 0.3, 4),
						randomGraph(rng, 5+rng.Intn(5), 0.3, 4),
					}
					next, ndb, err := cur.AppendGraphs(gs)
					if err != nil {
						t.Fatal(err)
					}
					wantDB := append(append([]*graph.Graph(nil), cdb...), gs...)
					if !reflect.DeepEqual(ndb, wantDB) {
						t.Fatalf("step %d: AppendGraphs dataset mismatch", step)
					}
					cur, cdb = next, ndb
				} else {
					ps := []int{rng.Intn(len(cdb))}
					if rng.Intn(2) == 0 && len(cdb) > 2 {
						q := rng.Intn(len(cdb))
						if q != ps[0] {
							ps = append(ps, q)
						}
					}
					wantDB, _, wantMap, err := index.SwapRemove(cdb, ps)
					if err != nil {
						t.Fatal(err)
					}
					next, ndb, mapping, err := cur.RemoveGraphs(ps)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ndb, wantDB) || !reflect.DeepEqual(mapping, wantMap) {
						t.Fatalf("step %d: RemoveGraphs dataset/mapping mismatch", step)
					}
					cur, cdb = next, ndb
				}

				ref := New(Options{MaxPathLen: 3, Shards: tc.shards, BuildWorkers: tc.workers})
				ref.Build(cdb)
				cx := cur.(*Index)
				if got, want := dumpTrie(cx.tr), dumpTrie(ref.tr); got != want {
					t.Fatalf("step %d: mutated trie diverges from rebuild\ngot:\n%s\nwant:\n%s", step, got, want)
				}
				if got, want := cur.SizeBytes(), ref.SizeBytes(); got != want {
					t.Fatalf("step %d: SizeBytes %d != rebuilt %d", step, got, want)
				}
				for qi, q := range queries {
					if !reflect.DeepEqual(cur.Filter(q), ref.Filter(q)) {
						t.Fatalf("step %d query %d: Filter diverges", step, qi)
					}
					if !reflect.DeepEqual(index.Answer(cur, q), index.Answer(ref, q)) {
						t.Fatalf("step %d query %d: Answer diverges", step, qi)
					}
				}

				// O(delta) persistence: append the journal, reload, compare.
				f, err := os.OpenFile(snapPath, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := cur.(index.DeltaPersistable).AppendDelta(f); err != nil {
					t.Fatalf("step %d: AppendDelta: %v", step, err)
				}
				f.Close()
				loaded := New(Options{MaxPathLen: 3, Shards: tc.shards, BuildWorkers: tc.workers})
				lf, err := os.Open(snapPath)
				if err != nil {
					t.Fatal(err)
				}
				_, err = loaded.LoadIndex(lf, cdb)
				lf.Close()
				if err != nil {
					t.Fatalf("step %d: loading journaled snapshot: %v", step, err)
				}
				if got, want := dumpTrie(loaded.tr), dumpTrie(ref.tr); got != want {
					t.Fatalf("step %d: journaled snapshot diverges from rebuild", step)
				}
				if got, want := loaded.SizeBytes(), ref.SizeBytes(); got != want {
					t.Fatalf("step %d: loaded SizeBytes %d != rebuilt %d", step, got, want)
				}

				// A journaled snapshot must refuse any other dataset.
				wrong := New(Options{MaxPathLen: 3})
				wf, _ := os.Open(snapPath)
				_, err = wrong.LoadIndex(wf, db)
				wf.Close()
				if len(cdb) != len(db) || step > 0 {
					if err == nil {
						t.Fatalf("step %d: journaled snapshot loaded against the base dataset", step)
					}
				}
			}
		})
	}
}

// TestAppendDeltaCompaction drives enough mutation batches through a small
// base snapshot that the journal outgrows the compaction threshold, and
// checks the file was folded back into a journal-free base that still
// loads to the live state.
func TestAppendDeltaCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := []*graph.Graph{randomGraph(rng, 5, 0.4, 3), randomGraph(rng, 5, 0.4, 3)}
	var cur index.Mutable = New(Options{MaxPathLen: 3, Shards: 2})
	cur.Build(db)

	path := filepath.Join(t.TempDir(), "c.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.(index.Persistable).SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	base, _ := os.Stat(path)

	var cdb []*graph.Graph = db
	grew := false
	for i := 0; i < 40; i++ {
		next, ndb, err := cur.AppendGraphs([]*graph.Graph{randomGraph(rng, 6, 0.35, 3)})
		if err != nil {
			t.Fatal(err)
		}
		cur, cdb = next, ndb
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := cur.(index.DeltaPersistable).AppendDelta(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		fi, _ := os.Stat(path)
		if fi.Size() > base.Size() {
			grew = true
		}
	}
	if !grew {
		t.Fatal("journal never grew the snapshot — delta path not exercised")
	}
	// After 40 small batches against a tiny base the compaction threshold
	// must have triggered at least once; the final file must load cleanly.
	loaded := New(Options{MaxPathLen: 3, Shards: 2})
	lf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loaded.LoadIndex(lf, cdb)
	lf.Close()
	if err != nil {
		t.Fatal(err)
	}
	ref := New(Options{MaxPathLen: 3, Shards: 2})
	ref.Build(cdb)
	if got, want := dumpTrie(loaded.tr), dumpTrie(ref.tr); got != want {
		t.Fatal("compacted snapshot diverges from rebuild")
	}
}

// TestMaintainDeltaIdleCompaction pins the timer-hook contract: AppendDelta
// checks compaction *before* appending, so one big batch against a tiny
// base leaves the file over the threshold with nothing pending — debt that
// previously sat until the next mutation. MaintainDelta must fold it down
// with an empty pending set, and be a no-op once the debt is gone.
func TestMaintainDeltaIdleCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := []*graph.Graph{randomGraph(rng, 4, 0.4, 3), randomGraph(rng, 4, 0.4, 3)}
	var cur index.Mutable = New(Options{MaxPathLen: 3, Shards: 2})
	cur.Build(db)

	path := filepath.Join(t.TempDir(), "m.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.(index.Persistable).SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// One large mutation burst, persisted as a single journal append: the
	// pre-append compaction check sees zero journal bytes, so the append
	// goes through and leaves the file well past the threshold.
	gs := make([]*graph.Graph, 12)
	for i := range gs {
		gs[i] = randomGraph(rng, 6, 0.35, 3)
	}
	cur, cdb, err := cur.AppendGraphs(gs)
	if err != nil {
		t.Fatal(err)
	}
	f, err = os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.(index.DeltaPersistable).AppendDelta(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Idle maintenance with nothing pending must compact...
	f, err = os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := cur.(index.DeltaMaintainable).MaintainDelta(f)
	if err != nil {
		t.Fatalf("MaintainDelta: %v", err)
	}
	if !changed {
		t.Fatal("MaintainDelta left over-threshold journal debt in place")
	}
	// ...and a second call must find nothing to do.
	changed, err = cur.(index.DeltaMaintainable).MaintainDelta(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("MaintainDelta modified an already-compacted snapshot")
	}

	loaded := New(Options{MaxPathLen: 3, Shards: 2})
	lf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loaded.LoadIndex(lf, cdb)
	lf.Close()
	if err != nil {
		t.Fatalf("loading maintained snapshot: %v", err)
	}
	ref := New(Options{MaxPathLen: 3, Shards: 2})
	ref.Build(cdb)
	if got, want := dumpTrie(loaded.tr), dumpTrie(ref.tr); got != want {
		t.Fatal("maintained snapshot diverges from rebuild")
	}
}
