package index

import (
	"reflect"
	"testing"

	"repro/internal/features"
	"repro/internal/trie"
)

// buildCountTrie assembles a small trie with known postings:
//
//	"p:1" → graphs 0,1,2 (count 2 each)
//	"p:2" → graphs 1,2   (count 1)
//	"p:3" → graph  2     (count 3)
//	"p:4" → interned but NO postings (empty filtered list)
func buildCountTrie(shards int) *trie.Trie {
	tr := trie.NewSharded(features.NewDict(), shards)
	for g := int32(0); g < 3; g++ {
		tr.Insert("p:1", trie.Posting{Graph: g, Count: 2})
	}
	tr.Insert("p:2", trie.Posting{Graph: 1, Count: 1})
	tr.Insert("p:2", trie.Posting{Graph: 2, Count: 1})
	tr.Insert("p:3", trie.Posting{Graph: 2, Count: 3})
	tr.Dict().Intern("p:4")
	tr.Dict().Intern("p:5") // vocabulary for disjoint-list queries
	tr.Insert("p:5", trie.Posting{Graph: 0, Count: 1})
	return tr
}

func idSet(tr *trie.Trie, want map[string]int32) features.IDSet {
	var qf features.IDSet
	for k, c := range want {
		id, ok := tr.Dict().Lookup(k)
		if !ok {
			qf.Unknown++
			continue
		}
		qf.Counts = append(qf.Counts, features.IDCount{ID: id, Count: c})
	}
	return qf
}

// Exercises FilterCountGE's early-return paths back-to-back on ONE scratch:
// a pass that bails out mid-arena (empty filtered postings list), a pass
// that bails in the intersection phase (disjoint lists), then full passes —
// each must be unaffected by the state the aborted passes left behind.
func TestFilterCountGEScratchReuseAfterEarlyReturns(t *testing.T) {
	for _, shards := range []int{1, 4} {
		tr := buildCountTrie(shards)
		s := GetCountFilterScratch()

		full := func(name string, want map[string]int32, expect []int32) {
			t.Helper()
			got := FilterCountGE(tr, idSet(tr, want), s)
			if !reflect.DeepEqual(append([]int32(nil), got...), expect) &&
				!(len(got) == 0 && len(expect) == 0) {
				t.Errorf("shards=%d %s: got %v, want %v", shards, name, got, expect)
			}
		}

		// 1. Baseline pass to warm (and dirty) every buffer.
		full("warmup", map[string]int32{"p:1": 1, "p:2": 1}, []int32{1, 2})

		// 2. Early return: "p:4" has an empty postings list → nil after the
		// arena was already partially filled by "p:1".
		full("empty postings", map[string]int32{"p:1": 1, "p:4": 1}, nil)

		// 3. Straight back into a full pass on the same scratch.
		full("after empty postings", map[string]int32{"p:1": 2, "p:3": 3}, []int32{2})

		// 4. Early return in the intersection phase: "p:3"→{2} and
		// "p:5"→{0} are disjoint.
		full("empty intersection", map[string]int32{"p:3": 1, "p:5": 1}, nil)

		// 5. Count threshold filters a list down to empty (postings exist,
		// none qualify).
		full("threshold empties list", map[string]int32{"p:2": 9}, nil)

		// 6. And the same scratch still computes a correct multi-feature
		// answer afterwards.
		full("final", map[string]int32{"p:1": 1, "p:2": 1, "p:3": 1}, []int32{2})

		// 7. Unknown features short-circuit to nil without touching state.
		if got := FilterCountGE(tr, features.IDSet{Unknown: 1}, s); got != nil {
			t.Errorf("shards=%d: unknown feature returned %v, want nil", shards, got)
		}
		full("after unknown", map[string]int32{"p:1": 1}, []int32{0, 1, 2})

		PutCountFilterScratch(s)
	}
}
