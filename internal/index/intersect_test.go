package index

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sortedUnique(rng *rand.Rand, n, max int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < n {
		seen[int32(rng.Intn(max))] = true
	}
	out := make([]int32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	return SortIDs(out)
}

func TestGallopingMatchesLinear(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		rng := rand.New(rand.NewSource(int64(seedA)*65536 + int64(seedB)))
		a := sortedUnique(rng, 1+rng.Intn(20), 4000)
		b := sortedUnique(rng, 1+rng.Intn(800), 4000)
		want := IntersectSorted(a, b)
		if got := IntersectSortedGalloping(a, b); !equalIDs(got, want) {
			t.Logf("gallop a=%v b=%v got=%v want=%v", a, b, got, want)
			return false
		}
		if got := IntersectInto(nil, a, b); !equalIDs(got, want) {
			return false
		}
		if got := IntersectInto(nil, b, a); !equalIDs(got, want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectManySelectivityOrder(t *testing.T) {
	lists := [][]int32{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{2, 4, 6, 8},
		{4, 8},
	}
	var buf [2][]int32
	got := IntersectMany(lists, &buf)
	if !equalIDs(got, []int32{4, 8}) {
		t.Errorf("IntersectMany = %v", got)
	}
	// disjoint lists → nil
	if got := IntersectMany([][]int32{{1, 3}, {2, 4}}, &buf); got != nil {
		t.Errorf("disjoint IntersectMany = %v", got)
	}
	// single list passes through
	if got := IntersectMany([][]int32{{5, 9}}, &buf); !equalIDs(got, []int32{5, 9}) {
		t.Errorf("single-list IntersectMany = %v", got)
	}
	if IntersectMany(nil, &buf) != nil {
		t.Error("empty IntersectMany not nil")
	}
}

func TestIntersectManyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(5)
		lists := make([][]int32, k)
		for i := range lists {
			lists[i] = sortedUnique(rng, 1+rng.Intn(60), 120)
		}
		want := lists[0]
		for _, l := range lists[1:] {
			want = IntersectSorted(want, l)
		}
		var buf [2][]int32
		got := IntersectMany(lists, &buf)
		if len(want) == 0 {
			if got != nil {
				t.Fatalf("trial %d: got %v, want nil", trial, got)
			}
			continue
		}
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestShouldGallopModel(t *testing.T) {
	// The calibrated model must keep the merge below the measured crossover
	// (skew ≤ 4) and gallop above it (skew ≥ 8), at any list scale.
	for _, la := range []int{4, 16, 64, 256, 4096} {
		if shouldGallop(la, 2*la) || shouldGallop(la, 4*la) {
			t.Errorf("la=%d: galloping chosen below the crossover", la)
		}
		if !shouldGallop(la, 8*la) || !shouldGallop(la, 512*la) {
			t.Errorf("la=%d: merge chosen above the crossover", la)
		}
	}
	if shouldGallop(0, 100) {
		t.Error("empty short side must never gallop")
	}
}

// Benchmarks: a skewed pair (the shape selectivity ordering produces), a
// balanced pair (where the linear merge should win), and a moderate-skew
// pair near the adaptive switchover.

func benchLists(nA, nB int) (a, b []int32) {
	rng := rand.New(rand.NewSource(3))
	return sortedUnique(rng, nA, 10*nB), sortedUnique(rng, nB, 10*nB)
}

// BenchmarkIntersectModerateSkew sits just above the adaptive switchover
// (skew 8): IntersectInto must track the galloping side here, where the old
// fixed ratio was calibrated and the adaptive model must not regress.
func BenchmarkIntersectModerateSkew(b *testing.B) {
	x, y := benchLists(256, 2048)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = IntersectInto(buf, x, y)
	}
}

func BenchmarkIntersectSortedSkewed(b *testing.B) {
	x, y := benchLists(16, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectSorted(x, y)
	}
}

func BenchmarkIntersectGallopingSkewed(b *testing.B) {
	x, y := benchLists(16, 8192)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = IntersectInto(buf, x, y)
	}
}

func BenchmarkIntersectSortedBalanced(b *testing.B) {
	x, y := benchLists(4096, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectSorted(x, y)
	}
}

func BenchmarkIntersectIntoBalanced(b *testing.B) {
	x, y := benchLists(4096, 4096)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = IntersectInto(buf, x, y)
	}
}
