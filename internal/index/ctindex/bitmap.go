package ctindex

import (
	"hash/fnv"
	"math/bits"
)

// Bitmap is a fixed-width bit fingerprint (the paper's CT-Index uses
// 4096-bit bitmaps per graph; Fig 18 also evaluates 8192).
type Bitmap []uint64

// NewBitmap returns an all-zero bitmap of the given width in bits (rounded
// up to a multiple of 64).
func NewBitmap(bitWidth int) Bitmap {
	if bitWidth < 64 {
		bitWidth = 64
	}
	return make(Bitmap, (bitWidth+63)/64)
}

// Bits returns the bitmap width in bits.
func (b Bitmap) Bits() int { return len(b) * 64 }

// Set sets bit i (mod width).
func (b Bitmap) Set(i uint64) {
	i %= uint64(b.Bits())
	b[i/64] |= 1 << (i % 64)
}

// SubsetOf reports whether every set bit of b is also set in other — the
// CT-Index filtering test: supergraphs must contain all features of a
// subgraph, so bitmap(q) ⊆ bitmap(G) is necessary for q ⊆ G.
func (b Bitmap) SubsetOf(other Bitmap) bool {
	for i := range b {
		if b[i]&^other[i] != 0 {
			return false
		}
	}
	return true
}

// Saturate sets every bit. A saturated fingerprint passes every filter —
// the sound fallback when feature enumeration exceeds its budget on a
// dataset graph (over-approximation can only add false positives).
func (b Bitmap) Saturate() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// OnesCount returns the number of set bits.
func (b Bitmap) OnesCount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// AddFeature hashes a canonical feature key into k bit positions
// (double hashing over two FNV variants, the standard Bloom construction).
func (b Bitmap) AddFeature(key string, k int) {
	h1 := fnv64a(key)
	h2 := fnv64(key) | 1 // odd stride
	for i := 0; i < k; i++ {
		b.Set(h1 + uint64(i)*h2)
	}
}

func fnv64a(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func fnv64(s string) uint64 {
	h := fnv.New64()
	h.Write([]byte(s))
	return h.Sum64()
}
