package ctindex

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(4096)
	if b.Bits() != 4096 {
		t.Errorf("Bits = %d", b.Bits())
	}
	if b.OnesCount() != 0 {
		t.Error("fresh bitmap has set bits")
	}
	b.Set(5)
	b.Set(4095)
	b.Set(4096 + 5) // wraps to 5
	if b.OnesCount() != 2 {
		t.Errorf("OnesCount = %d, want 2", b.OnesCount())
	}
}

func TestBitmapMinimumWidth(t *testing.T) {
	b := NewBitmap(1)
	if b.Bits() != 64 {
		t.Errorf("minimum width = %d", b.Bits())
	}
}

func TestBitmapSubset(t *testing.T) {
	a := NewBitmap(128)
	b := NewBitmap(128)
	a.Set(3)
	b.Set(3)
	b.Set(70)
	if !a.SubsetOf(b) {
		t.Error("subset rejected")
	}
	if b.SubsetOf(a) {
		t.Error("superset accepted as subset")
	}
	empty := NewBitmap(128)
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Error("empty bitmap must be subset of everything")
	}
}

func TestBitmapSaturate(t *testing.T) {
	a := NewBitmap(256)
	a.Saturate()
	if a.OnesCount() != 256 {
		t.Errorf("saturated count = %d", a.OnesCount())
	}
	q := NewBitmap(256)
	q.Set(123)
	if !q.SubsetOf(a) {
		t.Error("saturated bitmap must pass every filter")
	}
}

func TestAddFeatureDeterministic(t *testing.T) {
	a := NewBitmap(4096)
	b := NewBitmap(4096)
	a.AddFeature("t:1(2,3)", 2)
	b.AddFeature("t:1(2,3)", 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("AddFeature not deterministic")
		}
	}
	if a.OnesCount() == 0 || a.OnesCount() > 2 {
		t.Errorf("k=2 set %d bits", a.OnesCount())
	}
}

func TestFingerprintQueryContainedInDataset(t *testing.T) {
	// bitmap(sub) ⊆ bitmap(host) must hold for real subgraphs — the
	// correctness core of CT-Index filtering
	rng := rand.New(rand.NewSource(12))
	x := New(DefaultOptions())
	for trial := 0; trial < 30; trial++ {
		host := graph.New(10)
		for i := 0; i < 10; i++ {
			host.AddVertex(graph.Label(rng.Intn(3)))
		}
		for i := 1; i < 10; i++ {
			host.AddEdge(i, rng.Intn(i))
		}
		host.AddEdge(0, 9) // one cycle
		order := host.BFSOrder(rng.Intn(10))[:5]
		sub, _ := host.InducedSubgraph(order)
		fpHost := x.fingerprint(host, true)
		fpSub := x.fingerprint(sub, false)
		if !fpSub.SubsetOf(fpHost) {
			t.Fatalf("trial %d: subgraph fingerprint not subset of host's", trial)
		}
	}
}

func TestOptionsNormalised(t *testing.T) {
	x := New(Options{})
	if x.opt.TreeSize != 6 || x.opt.CycleSize != 8 || x.opt.Bits != 4096 || x.opt.HashCount != 2 {
		t.Errorf("normalised options: %+v", x.opt)
	}
}

func TestSizeBytesTracksBitmapWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := make([]*graph.Graph, 5)
	for i := range db {
		g := graph.New(6)
		for v := 0; v < 6; v++ {
			g.AddVertex(graph.Label(rng.Intn(2)))
		}
		for v := 1; v < 6; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		db[i] = g
	}
	small := New(Options{Bits: 4096})
	big := New(Options{Bits: 8192})
	small.Build(db)
	big.Build(db)
	if big.SizeBytes() <= small.SizeBytes() {
		t.Errorf("8192-bit index (%d B) not larger than 4096-bit (%d B)",
			big.SizeBytes(), small.SizeBytes())
	}
}

func TestNameFilterVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db := make([]*graph.Graph, 6)
	for i := range db {
		g := graph.New(5)
		for v := 0; v < 5; v++ {
			g.AddVertex(graph.Label(rng.Intn(3)))
		}
		for v := 1; v < 5; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		db[i] = g
	}
	x := New(DefaultOptions())
	if x.Name() != "CT-Index" {
		t.Errorf("Name = %q", x.Name())
	}
	x.Build(db)
	// self-query: each graph must pass its own filter and verify
	for i, g := range db {
		found := false
		for _, id := range x.Filter(g) {
			if id == int32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("graph %d filtered out on self-query", i)
		}
		if !x.Verify(g, int32(i)) {
			t.Fatalf("graph %d failed self-verification", i)
		}
	}
	// impossible query: filter must reject everything or verify must fail
	q := graph.New(2)
	q.AddVertex(77)
	q.AddVertex(78)
	q.AddEdge(0, 1)
	for _, id := range x.Filter(q) {
		if x.Verify(q, id) {
			t.Error("phantom verification of off-vocabulary query")
		}
	}
}

func TestQuerySideBudgetTruncationSound(t *testing.T) {
	// query overflow truncates (dataset side saturates — separate test);
	// answers must remain correct either way
	rng := rand.New(rand.NewSource(16))
	db := make([]*graph.Graph, 5)
	for i := range db {
		g := graph.New(8)
		for v := 0; v < 8; v++ {
			g.AddVertex(graph.Label(rng.Intn(2)))
		}
		for u := 0; u < 8; u++ {
			for v := u + 1; v < 8; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		db[i] = g
	}
	tiny := New(Options{TreeSize: 6, CycleSize: 8, Bits: 4096, HashCount: 2, TreeBudget: 3, CycleBudget: 3})
	tiny.Build(db) // every dataset graph saturates
	// dense query overflows its budget → truncated fingerprint → still sound
	q, _ := db[0].InducedSubgraph([]int{0, 1, 2, 3, 4})
	cs := tiny.Filter(q)
	found := false
	for _, id := range cs {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Error("saturated dataset graph missing from candidates")
	}
}
