// Package ctindex reimplements CT-Index (Klein, Kriege, Mutzel, ICDE 2011),
// the fingerprint-based baseline of the paper.
//
// CT-Index derives string canonical forms for two feature families whose
// canonization is linear-time — trees (up to 6 vertices) and simple cycles
// (up to 8 edges) — and hashes them into a fixed-width bitmap (4096 bits)
// per graph. Filtering is a bitwise subset test: q can only be contained in
// G if bitmap(q) ⊆ bitmap(G). Verification uses VF2.
//
// Deviation note (also in DESIGN.md): tree/cycle enumeration explodes on
// dense graphs, so enumeration accepts per-graph budgets. A dataset graph
// that overflows its budget gets a *saturated* fingerprint (always passes
// filtering — sound); a query graph that overflows simply stops adding
// features (fewer query bits — also sound). Both directions only ever relax
// the filter, preserving the no-false-negative guarantee.
package ctindex

import (
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/iso"
)

// Options configures a CT-Index.
type Options struct {
	TreeSize    int // max tree vertices (paper default 6; Fig 18 also 7)
	CycleSize   int // max cycle edges (paper default 8; Fig 18 also 9)
	Bits        int // bitmap width (paper default 4096; Fig 18 also 8192)
	HashCount   int // bits set per feature (Bloom k; 2 by default)
	TreeBudget  int // per-graph tree enumeration cap; <=0 unlimited
	CycleBudget int // per-graph cycle enumeration cap; <=0 unlimited
}

// DefaultOptions mirrors the paper's configuration, with generous budgets
// sized for the sparse datasets CT-Index is evaluated on (AIDS, PDBS).
func DefaultOptions() Options {
	return Options{
		TreeSize:    6,
		CycleSize:   8,
		Bits:        4096,
		HashCount:   2,
		TreeBudget:  2_000_000,
		CycleBudget: 500_000,
	}
}

// Index is the CT-Index method. Create with New, then Build.
type Index struct {
	opt Options
	db  []*graph.Graph
	fps []Bitmap
}

var _ index.Method = (*Index)(nil)

// New returns an unbuilt CT-Index.
func New(opt Options) *Index {
	if opt.TreeSize <= 0 {
		opt.TreeSize = 6
	}
	if opt.CycleSize <= 0 {
		opt.CycleSize = 8
	}
	if opt.Bits <= 0 {
		opt.Bits = 4096
	}
	if opt.HashCount <= 0 {
		opt.HashCount = 2
	}
	return &Index{opt: opt}
}

// Name implements index.Method.
func (x *Index) Name() string { return "CT-Index" }

// Build implements index.Method: fingerprint every dataset graph.
func (x *Index) Build(db []*graph.Graph) {
	x.db = db
	x.fps = make([]Bitmap, len(db))
	for i, g := range db {
		x.fps[i] = x.fingerprint(g, true)
	}
}

// fingerprint computes the tree+cycle bitmap of g. When dataset is true and
// enumeration overflows its budget, the bitmap saturates (sound for dataset
// graphs); query-side overflow truncates instead.
func (x *Index) fingerprint(g *graph.Graph, dataset bool) Bitmap {
	bm := NewBitmap(x.opt.Bits)
	ts := features.Trees(g, features.TreeOptions{
		MaxVertices: x.opt.TreeSize,
		Budget:      x.opt.TreeBudget,
	})
	if ts.Overflowed && dataset {
		bm.Saturate()
		return bm
	}
	for k := range ts.Counts {
		bm.AddFeature(k, x.opt.HashCount)
	}
	cs := features.Cycles(g, features.CycleOptions{
		MaxLen: x.opt.CycleSize,
		Budget: x.opt.CycleBudget,
	})
	if cs.Overflowed && dataset {
		bm.Saturate()
		return bm
	}
	for k := range cs.Counts {
		bm.AddFeature(k, x.opt.HashCount)
	}
	return bm
}

// Filter implements index.Method via the bitwise subset test.
func (x *Index) Filter(q *graph.Graph) []int32 {
	qf := x.fingerprint(q, false)
	var out []int32
	for i, fp := range x.fps {
		if qf.SubsetOf(fp) {
			out = append(out, int32(i))
		}
	}
	return out
}

// Verify implements index.Method with a first-match VF2 test (the paper's
// CT-Index verification stage is a modified VF2).
func (x *Index) Verify(q *graph.Graph, id int32) bool {
	return iso.Subgraph(q, x.db[id])
}

// SizeBytes implements index.Method: the fingerprints dominate.
func (x *Index) SizeBytes() int {
	sz := 0
	for _, fp := range x.fps {
		sz += 24 + 8*len(fp)
	}
	return sz
}
