package grapes

// Incremental dataset maintenance: Grapes mutates through the shared path
// staging of package ggsx (exactly as Build shares ggsx.BuildPaths), with
// location recording on so re-homed and appended postings carry the vertex
// sets location-restricted verification depends on. Mutation is
// copy-on-write: the returned generation gets a fresh query-feature memo
// (the old one may hold features of graphs that moved), while the receiver
// keeps serving the old dataset untouched.

import (
	"errors"
	"io"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/trie"
)

var (
	_ index.Mutable          = (*Index)(nil)
	_ index.DeltaPersistable = (*Index)(nil)
)

// Dataset implements index.Mutable.
func (x *Index) Dataset() []*graph.Graph { return x.db }

// pathOptions is the Grapes feature enumeration: locations on.
func (x *Index) pathOptions() features.PathOptions {
	return features.PathOptions{MaxLen: x.opt.MaxPathLen, Locations: true}
}

// clone returns a new generation over (db, tr) sharing the dictionary and
// delta log, with a fresh query-feature memo.
func (x *Index) clone(db []*graph.Graph, tr *trie.Trie) *Index {
	return &Index{opt: x.opt, db: db, dict: x.dict, tr: tr, log: x.log, memoS: features.NewScratch()}
}

// AppendGraphs implements index.Mutable (see ggsx.Index.AppendGraphs).
func (x *Index) AppendGraphs(gs []*graph.Graph) (index.Mutable, []*graph.Graph, error) {
	if x.db == nil {
		return nil, nil, errors.New("grapes: AppendGraphs before Build")
	}
	if len(gs) == 0 {
		return nil, nil, errors.New("grapes: no graphs to append")
	}
	for _, g := range gs {
		if g == nil {
			return nil, nil, errors.New("grapes: nil graph in append batch")
		}
	}
	newDB := make([]*graph.Graph, 0, len(x.db)+len(gs))
	newDB = append(newDB, x.db...)
	newDB = append(newDB, gs...)
	mut := x.tr.NewMutation()
	ggsx.StageAppend(mut, int32(len(x.db)), gs, x.pathOptions())
	x.log.Record(mut)
	nx := x.clone(newDB, mut.Apply())
	return nx, newDB, nil
}

// RemoveGraphs implements index.Mutable (see ggsx.Index.RemoveGraphs).
func (x *Index) RemoveGraphs(positions []int) (index.Mutable, []*graph.Graph, []int32, error) {
	if x.db == nil {
		return nil, nil, nil, errors.New("grapes: RemoveGraphs before Build")
	}
	newDB, steps, mapping, err := index.SwapRemove(x.db, positions)
	if err != nil {
		return nil, nil, nil, err
	}
	mut := x.tr.NewMutation()
	ggsx.StageRemovals(mut, steps, x.pathOptions())
	x.log.Record(mut)
	nx := x.clone(newDB, mut.Apply())
	return nx, newDB, mapping, nil
}

// AppendDelta implements index.DeltaPersistable via the shared
// index.AppendIndexDelta flow.
func (x *Index) AppendDelta(f io.ReadWriteSeeker) error {
	if x.db == nil {
		return errors.New("grapes: AppendDelta before Build")
	}
	stamp := trie.JournalStamp{DBChecksum: index.DBChecksum(x.db), NumGraphs: len(x.db)}
	return index.AppendIndexDelta(f, x.log, methodTag, stamp, x.writeIndex)
}

// MaintainDelta implements index.DeltaMaintainable: AppendDelta plus the
// idle-compaction check, for timer-driven journal maintenance.
func (x *Index) MaintainDelta(f io.ReadWriteSeeker) (bool, error) {
	if x.db == nil {
		return false, errors.New("grapes: MaintainDelta before Build")
	}
	stamp := trie.JournalStamp{DBChecksum: index.DBChecksum(x.db), NumGraphs: len(x.db)}
	return index.MaintainIndexDelta(f, x.log, methodTag, stamp, x.writeIndex)
}
