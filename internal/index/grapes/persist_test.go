package grapes

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

func randomDB(n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	db := make([]*graph.Graph, n)
	for i := range db {
		nv := 4 + rng.Intn(6)
		g := graph.New(nv)
		for v := 0; v < nv; v++ {
			g.AddVertex(graph.Label(rng.Intn(5)))
		}
		for v := 1; v < nv; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		for e := 0; e < nv/2; e++ {
			g.AddEdge(rng.Intn(nv), rng.Intn(nv))
		}
		db[i] = g
	}
	return db
}

func randomQueries(db []*graph.Graph, n int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		src := db[rng.Intn(len(db))]
		vs := []int{rng.Intn(src.NumVertices())}
		for _, w := range src.Neighbors(vs[0]) {
			vs = append(vs, int(w))
			if len(vs) == 3 {
				break
			}
		}
		q, _ := src.InducedSubgraph(vs)
		qs = append(qs, q)
	}
	return qs
}

// A loaded Grapes index — location lists included — answers byte-
// identically to a freshly built one, across (shards, workers) combos.
func TestSaveLoadRoundTripIdentity(t *testing.T) {
	db := randomDB(35, 21)
	qs := randomQueries(db, 25, 22)
	for _, saveCfg := range []Options{
		{MaxPathLen: 3, Threads: 1, Shards: 1},
		{MaxPathLen: 3, Threads: 2, Shards: 8, BuildWorkers: 4},
	} {
		for _, loadCfg := range []Options{
			{MaxPathLen: 3, Threads: 1},
			{MaxPathLen: 3, Threads: 2, Shards: 2, BuildWorkers: 3},
		} {
			name := fmt.Sprintf("save[s=%d,w=%d]/load[s=%d,w=%d]",
				saveCfg.Shards, saveCfg.BuildWorkers, loadCfg.Shards, loadCfg.BuildWorkers)
			t.Run(name, func(t *testing.T) {
				built := New(saveCfg)
				built.Build(db)
				var buf bytes.Buffer
				if err := built.SaveIndex(&buf); err != nil {
					t.Fatal(err)
				}
				loaded := New(loadCfg)
				if _, err := loaded.LoadIndex(bytes.NewReader(buf.Bytes()), db); err != nil {
					t.Fatal(err)
				}
				// Shard headers scale with the layout; net of those, the
				// footprint must round-trip exactly.
				bs := built.SizeBytes() - 48*built.tr.ShardCount()
				ls := loaded.SizeBytes() - 48*loaded.tr.ShardCount()
				if bs != ls {
					t.Errorf("SizeBytes (net of shard headers) %d != %d after load", ls, bs)
				}
				for i, q := range qs {
					if !reflect.DeepEqual(built.Filter(q), loaded.Filter(q)) {
						t.Fatalf("query %d: filters diverge", i)
					}
					// Verify exercises the persisted location lists.
					if !reflect.DeepEqual(index.Answer(built, q), index.Answer(loaded, q)) {
						t.Fatalf("query %d: answers diverge", i)
					}
				}
			})
		}
	}
}

func TestLoadIndexRejectsWrongDataset(t *testing.T) {
	db := randomDB(15, 31)
	x := New(Options{MaxPathLen: 3})
	x.Build(db)
	var buf bytes.Buffer
	if err := x.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	y := New(Options{MaxPathLen: 3})
	_, err := y.LoadIndex(bytes.NewReader(buf.Bytes()), randomDB(15, 32))
	if !errors.Is(err, index.ErrDatasetMismatch) {
		t.Errorf("got %v, want ErrDatasetMismatch", err)
	}
}

// A GGSX snapshot must not load into a Grapes index (no location lists —
// Verify would silently lose its restriction power).
func TestLoadIndexRejectsForeignSnapshot(t *testing.T) {
	db := randomDB(10, 41)
	x := New(Options{MaxPathLen: 3})
	x.Build(db)
	var buf bytes.Buffer
	if err := x.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	data := bytes.Replace(buf.Bytes(), []byte("Grapes"), []byte("GGSX\x00\x00"), 1)
	if _, err := x.LoadIndex(bytes.NewReader(data), db); err == nil {
		t.Error("foreign snapshot loaded without error")
	}
}
