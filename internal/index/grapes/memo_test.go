package grapes

import (
	"testing"

	"repro/internal/graph"
)

// triangleDB returns one dataset graph: a labeled triangle 1-2-3.
func triangleDB() []*graph.Graph {
	g := graph.New(3)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return []*graph.Graph{g}
}

// Regression for the pointer-keyed query-feature memo: a caller that
// mutates a query graph in place between Verify calls must not be served
// the previous query's features. With the stale memo, the located vertex
// set for the mutated query misses the newly referenced labels, the induced
// subgraph loses the embedding, and Verify wrongly reports false.
func TestVerifyAfterInPlaceMutation(t *testing.T) {
	x := New(Options{MaxPathLen: 4})
	x.Build(triangleDB())

	q := graph.New(2)
	q.AddVertex(1)
	if !x.Verify(q, 0) {
		t.Fatal("single label-1 vertex should embed in the triangle")
	}

	// Mutate q in place: it is now the edge 1-2, still a subgraph of the
	// triangle. The stale memo holds only the features of the label-1
	// vertex, locating just one triangle vertex — too small to host the
	// edge.
	q.AddVertex(2)
	q.AddEdge(0, 1)
	if !x.Verify(q, 0) {
		t.Error("edge 1-2 should embed in the triangle after in-place mutation")
	}

	// And a mutation that makes the query unsatisfiable must not ride a
	// stale positive either.
	q2 := graph.New(2)
	q2.AddVertex(1)
	q2.AddVertex(2)
	q2.AddEdge(0, 1)
	if !x.Verify(q2, 0) {
		t.Fatal("edge 1-2 should embed")
	}
	q2.SetLabel(1, 9) // now edge 1-9: label 9 is nowhere in the dataset
	if x.Verify(q2, 0) {
		t.Error("edge 1-9 must not embed in the triangle after relabeling")
	}
}

// Same vocabulary-leak regression as ggsx: re-Build on a disjoint dataset
// keeps the dictionary object but not the dead vocabulary.
func TestRebuildDoesNotLeakVocabulary(t *testing.T) {
	mk := func(base graph.Label) []*graph.Graph {
		g := graph.New(3)
		g.AddVertex(base)
		g.AddVertex(base + 1)
		g.AddVertex(base + 2)
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		return []*graph.Graph{g}
	}
	x := New(Options{MaxPathLen: 3})
	dict := x.FeatureDict()
	x.Build(mk(1))
	fresh := New(Options{MaxPathLen: 3})
	fresh.Build(mk(50))
	x.Build(mk(50))
	if x.FeatureDict() != dict {
		t.Fatal("Build replaced the shared dictionary object")
	}
	if got, want := dict.Len(), fresh.FeatureDict().Len(); got != want {
		t.Errorf("dict after re-Build holds %d keys, want %d", got, want)
	}
}
