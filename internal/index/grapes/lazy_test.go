package grapes

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/index"
)

// TestLoadIndexLazyDifferential: the Grapes lazy path — location lists and
// the query-feature memo included — answers identically to an eager load,
// under eviction pressure, and materialises into the identical index.
func TestLoadIndexLazyDifferential(t *testing.T) {
	db := randomDB(40, 11)
	qs := randomQueries(db, 20, 12)
	built := New(Options{MaxPathLen: 3, Shards: 8, Threads: 2, BuildWorkers: 2})
	built.Build(db)
	var buf bytes.Buffer
	if err := built.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	eager := New(Options{MaxPathLen: 3, Threads: 2})
	if _, err := eager.LoadIndex(bytes.NewReader(buf.Bytes()), db); err != nil {
		t.Fatal(err)
	}
	lazy := New(Options{MaxPathLen: 3, Threads: 2, BuildWorkers: 2})
	if _, err := lazy.LoadIndexLazy(bytes.NewReader(buf.Bytes()), db, 8<<10); err != nil {
		t.Fatal(err)
	}
	if res := lazy.Residency(); !res.Lazy || res.ResidentShards != 0 {
		t.Fatalf("post-open residency %+v: want lazy, nothing resident", res)
	}
	// Two passes: the second hits the query-feature memo over already- and
	// not-yet-resident shards alike.
	for pass := 0; pass < 2; pass++ {
		for i, q := range qs {
			if !reflect.DeepEqual(eager.Filter(q), lazy.Filter(q)) {
				t.Fatalf("pass %d, query %d: lazy filter diverges", pass, i)
			}
			if !reflect.DeepEqual(index.Answer(eager, q), index.Answer(lazy, q)) {
				t.Fatalf("pass %d, query %d: lazy answers diverge", pass, i)
			}
		}
	}
	if res := lazy.Residency(); res.Faults == 0 {
		t.Error("queries answered without any shard fault-in")
	}
	if err := lazy.Materialize(); err != nil {
		t.Fatal(err)
	}
	var esave, lsave bytes.Buffer
	if err := eager.SaveIndex(&esave); err != nil {
		t.Fatal(err)
	}
	if err := lazy.SaveIndex(&lsave); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(esave.Bytes(), lsave.Bytes()) {
		t.Error("materialised lazy index re-saves different bytes")
	}
}
