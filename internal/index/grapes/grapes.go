// Package grapes reimplements Grapes (Giugno et al., PLoS One 2013), the
// multi-core path index the paper uses as its strongest baseline
// (Grapes(1) and Grapes(6) denote 1 and 6 build/query threads).
//
// Like GGSX, Grapes exhaustively enumerates labeled simple paths up to
// MaxLen edges — but it additionally records *location information*: the
// set of vertices touched by each feature's occurrences in each graph.
// Index construction is parallel: each worker enumerates the paths starting
// from its share of the vertices and the per-worker results are merged
// (exactly the paper's description of per-thread tries merged into the
// graph's path index).
//
// Location information pays off at verification: the query can only embed
// among vertices where its features occur, so Grapes induces the subgraph
// of the candidate on the located vertices, splits it into connected
// components, and runs VF2 only on components large enough to host the
// query — typically small, which is what makes Grapes fast on large graphs.
//
// Filtering and location lookup run on interned feature IDs (see package
// ggsx); the string-based enumeration is only used at build time, where the
// location records are produced.
package grapes

import (
	"sync"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/iso"
	"repro/internal/trie"
)

// Options configures a Grapes index.
type Options struct {
	// MaxPathLen is the maximum path length in edges (paper default 4).
	MaxPathLen int
	// Threads is the build/verification parallelism (paper: 1 and 6).
	Threads int
	// Shards is the postings shard count of the path trie (rounded up to a
	// power of two; 0 = trie.DefaultShards()).
	Shards int
	// BuildWorkers overrides the number of goroutines Build fans graph
	// enumeration out over (0 = Threads, matching the paper's Grapes(T)
	// parallel construction). Any worker count produces an identical index.
	BuildWorkers int
}

// DefaultOptions mirrors the paper's Grapes(1) configuration.
func DefaultOptions() Options { return Options{MaxPathLen: 4, Threads: 1} }

// Index is the Grapes method. Create with New, then Build.
type Index struct {
	opt  Options
	db   []*graph.Graph
	dict *features.Dict
	tr   *trie.Trie
	log  *index.DeltaLog // unsaved mutations; shared across generations

	// memo of the last query's features: Verify runs once per candidate of
	// the same query, so re-enumerating per candidate would be wasteful. A
	// hit requires both the same *Graph and an unchanged structural
	// fingerprint — pointer identity alone would serve stale features to a
	// caller that mutates a query graph in place between queries (or after
	// the allocator reuses a freed graph's address).
	mu     sync.Mutex
	lastQ  *graph.Graph
	lastFP uint64
	lastF  []features.IDCount
	memoS  *features.Scratch
}

var (
	_ index.Method        = (*Index)(nil)
	_ index.DictProvider  = (*Index)(nil)
	_ index.CountFilterer = (*Index)(nil)
)

// New returns an unbuilt Grapes index.
func New(opt Options) *Index {
	if opt.MaxPathLen <= 0 {
		opt.MaxPathLen = 4
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	if opt.BuildWorkers <= 0 {
		opt.BuildWorkers = opt.Threads
	}
	d := features.NewDict()
	return &Index{opt: opt, dict: d, tr: trie.NewSharded(d, opt.Shards),
		log: index.NewDeltaLog(), memoS: features.NewScratch()}
}

// Name implements index.Method, including the thread count as in the paper.
func (x *Index) Name() string {
	if x.opt.Threads == 1 {
		return "Grapes"
	}
	return "Grapes(" + itoa(x.opt.Threads) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// FeatureDict implements index.DictProvider.
func (x *Index) FeatureDict() *features.Dict { return x.dict }

// FeatureMaxPathLen implements index.CountFilterer.
func (x *Index) FeatureMaxPathLen() int { return x.opt.MaxPathLen }

// Build implements index.Method with the paper's parallel construction:
// BuildWorkers goroutines (default Threads) each enumerate whole graphs and
// stage postings into private per-shard buffers that merge
// deterministically, so the index is identical at any worker count (the
// shared pipeline is ggsx.BuildPaths). When the dataset is too small to
// feed the graph-level workers — a handful of huge graphs, or an explicit
// single build worker — the legacy per-vertex-range strategy applies
// Threads-way parallelism *within* each graph instead, the original Grapes
// description. Both strategies produce the same index. The trie, the
// query-feature memo and the dictionary contents are reset on entry — the
// *Dict object handed out by FeatureDict stays valid, but a re-Build does
// not retain the previous dataset's dead vocabulary.
func (x *Index) Build(db []*graph.Graph) {
	x.db = db
	x.dict.Reset()
	x.tr = trie.NewSharded(x.dict, x.opt.Shards)
	x.log.NoteFullSave(0) // a rebuild invalidates any snapshot lineage
	x.resetMemo()
	opt := features.PathOptions{MaxLen: x.opt.MaxPathLen, Locations: true}
	if x.opt.Threads > 1 && (x.opt.BuildWorkers <= 1 || len(db) < 2*x.opt.BuildWorkers) {
		for i, g := range db {
			ps := x.enumerate(g, opt)
			for k, c := range ps.Counts {
				x.tr.Insert(k, trie.Posting{
					Graph: int32(i),
					Count: int32(c),
					Locs:  ps.Locations[k],
				})
			}
		}
		x.tr.SetGallopProbeCost(index.CalibrateGallopProbeCost(x.tr))
		return
	}
	ggsx.BuildPaths(x.tr, db, opt, x.opt.BuildWorkers)
	x.tr.SetGallopProbeCost(index.CalibrateGallopProbeCost(x.tr))
}

// enumerate splits the start-vertex range across Threads workers and merges
// the per-worker path sets.
func (x *Index) enumerate(g *graph.Graph, opt features.PathOptions) *features.PathSet {
	n := g.NumVertices()
	w := x.opt.Threads
	if w == 1 || n < 2*w {
		return features.Paths(g, opt)
	}
	parts := make([]*features.PathSet, w)
	var wg sync.WaitGroup
	for t := 0; t < w; t++ {
		lo := t * n / w
		hi := (t + 1) * n / w
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			parts[t] = features.PathsRange(g, opt, lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
	out := parts[0]
	for _, p := range parts[1:] {
		features.MergePathSets(out, p)
	}
	return out
}

// Filter implements index.Method: identical count-based filtering to GGSX
// (the two share the path feature family and the shared count filter).
func (x *Index) Filter(q *graph.Graph) []int32 {
	s := index.GetCountFilterScratch()
	defer index.PutCountFilterScratch(s)
	qf := features.PathsID(q, features.PathOptions{MaxLen: x.opt.MaxPathLen}, x.dict, s.Feat, false)
	return ggsx.FilterFresh(x.tr, qf, len(x.db), s)
}

// FilterByFeatureCounts implements index.CountFilterer.
func (x *Index) FilterByFeatureCounts(qf features.IDSet) []int32 {
	s := index.GetCountFilterScratch()
	defer index.PutCountFilterScratch(s)
	return ggsx.FilterFresh(x.tr, qf, len(x.db), s)
}

// Verify implements index.Method using location-restricted components.
//
// The located vertex set is the union of the candidate's occurrences of the
// query's features; since every vertex of an embedding occurs in some query
// feature occurrence (at minimum its single-vertex label path), the image of
// any embedding lies inside the located set, and — for a connected query —
// inside one connected component of the induced subgraph.
func (x *Index) Verify(q *graph.Graph, id int32) bool {
	g := x.db[id]
	if q.NumVertices() == 0 {
		return true // the empty pattern embeds everywhere
	}
	if !q.IsConnected() {
		// Component restriction is unsound for disconnected queries;
		// fall back to a whole-graph test (RI, Grapes' matcher).
		return iso.SubgraphAlg(q, g, iso.RI)
	}
	qf := x.queryFeatures(q)
	var located []int32
	for _, fc := range qf {
		pl := x.tr.GetByID(fc.ID)
		if i, ok := pl.Rank(id); ok {
			located = unionInto(located, pl.LocsAt(i))
		}
	}
	vs := make([]int, len(located))
	for i, v := range located {
		vs[i] = int(v)
	}
	sub, _ := g.InducedSubgraph(vs)
	return iso.SubgraphConnectedComponents(q, sub, sub.ConnectedComponents())
}

// queryFeatures returns (and memoises) the interned path features of q.
// Unknown features carry no location information, so lookup-only
// enumeration is sufficient here. The returned slice is freshly allocated
// per distinct query and never mutated afterwards, so concurrent Verify
// calls may keep using a snapshot after the memo moves on.
//
// The memo key is (pointer, structural fingerprint): the fingerprint
// detects in-place mutation of the same graph object (and address reuse),
// while the pointer check turns a would-be fingerprint collision between
// two distinct graphs into a harmless recomputation instead of a wrong
// verification. The hash is paid on every Verify call, but it is O(|q|)
// on the small query graph and is dwarfed by the induced-subgraph + VF2
// test that follows (engine query stream benches at parity with the
// pointer-only memo).
func (x *Index) queryFeatures(q *graph.Graph) []features.IDCount {
	fp := graph.Fingerprint(q)
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.lastQ != q || x.lastFP != fp {
		qf := features.PathsID(q, features.PathOptions{MaxLen: x.opt.MaxPathLen}, x.dict, x.memoS, false)
		x.lastQ, x.lastFP = q, fp
		x.lastF = append([]features.IDCount(nil), qf.Counts...)
	}
	return x.lastF
}

// resetMemo invalidates the query-feature memo (Build and LoadIndex).
func (x *Index) resetMemo() {
	x.mu.Lock()
	x.lastQ, x.lastFP, x.lastF = nil, 0, nil
	x.mu.Unlock()
}

// SizeBytes implements index.Method: the path trie (postings + location
// lists) plus the feature dictionary the index owns, counted at the live
// vocabulary (see ggsx.SizeBytes on why the dictionary is counted at its
// owner and why retired features are excluded).
func (x *Index) SizeBytes() int { return x.tr.SizeBytes() + x.tr.LiveDictSizeBytes() }

func unionInto(dst, src []int32) []int32 {
	if len(dst) == 0 {
		return append(dst, src...)
	}
	out := make([]int32, 0, len(dst)+len(src))
	i, j := 0, 0
	for i < len(dst) && j < len(src) {
		switch {
		case dst[i] < src[j]:
			out = append(out, dst[i])
			i++
		case dst[i] > src[j]:
			out = append(out, src[j])
			j++
		default:
			out = append(out, dst[i])
			i++
			j++
		}
	}
	out = append(out, dst[i:]...)
	out = append(out, src[j:]...)
	return out
}
