package grapes

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/trie"
)

var _ index.Persistable = (*Index)(nil)

// methodTag identifies Grapes snapshots in the envelope header. Thread
// count is runtime configuration, not index content, so it is not part of
// the tag: a Grapes(6) process can load a Grapes(1) snapshot.
const methodTag = "Grapes"

// SaveIndex implements index.Persistable: an envelope header followed by
// the path trie — including the per-posting location lists that make
// Grapes' verification fast — in the segment format of internal/trie. A
// full save resets the delta-log lineage (see ggsx.Index.SaveIndex).
func (x *Index) SaveIndex(w io.Writer) error {
	n, err := x.writeIndex(w)
	if err != nil {
		return err
	}
	x.log.NoteFullSave(n)
	return nil
}

// writeIndex writes the full snapshot without touching the delta log.
func (x *Index) writeIndex(w io.Writer) (int64, error) {
	if x.db == nil {
		return 0, errors.New("grapes: SaveIndex before Build")
	}
	cw := &index.CountingWriter{W: w}
	err := index.WriteIndexEnvelope(cw, index.IndexEnvelope{
		Method:     methodTag,
		MaxPathLen: x.opt.MaxPathLen,
		DBChecksum: index.DBChecksum(x.db),
		NumGraphs:  len(x.db),
	})
	if err != nil {
		return cw.N, fmt.Errorf("grapes: %w", err)
	}
	if _, err := x.tr.WriteTo(cw); err != nil {
		return cw.N, fmt.Errorf("grapes: writing trie: %w", err)
	}
	return cw.N, nil
}

// LoadIndex implements index.Persistable: restores a SaveIndex snapshot,
// replacing the index state (dictionary contents included) and
// invalidating the query-feature memo. Validated against db via the
// embedded checksum (index.ErrDatasetMismatch on divergence); segment
// decodes fan out over the build-worker count. The loaded index answers
// identically to a fresh Build over db.
//
// Torn trailing journal sections are salvaged by default and reported in
// LoadReport.RecoveredTail; index.StrictLoad fails on any damage instead
// (see ggsx.Index.LoadIndex).
func (x *Index) LoadIndex(r io.Reader, db []*graph.Graph, opts ...index.LoadOption) (index.LoadReport, error) {
	cfg := index.ResolveLoadOptions(opts)
	cr := &index.CountingScanner{R: index.AsByteScanner(r)}
	env, err := index.ReadIndexEnvelope(cr)
	if err != nil {
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("grapes: %w", err)
	}
	if err := index.ValidateEnvelopeMethod(env, methodTag); err != nil {
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("grapes: %w", err)
	}
	envBytes := cr.N
	// Keep the current vocabulary for rollback: a failed decode must leave
	// the index exactly as it was (re-interning the saved keys in ID order
	// restores the identical ID assignment the old trie is keyed by).
	oldKeys := x.dict.Keys()
	rollback := func() {
		x.dict.Reset()
		for _, k := range oldKeys {
			x.dict.Intern(k)
		}
	}
	x.dict.Reset()
	tr := trie.NewSharded(x.dict, x.opt.Shards)
	n, rec, err := tr.ReadFromOptions(cr, trie.LoadOptions{Workers: x.opt.BuildWorkers, Strict: cfg.Strict})
	if err != nil {
		rollback()
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("grapes: reading trie: %w", err)
	}
	if rec != nil {
		rec.CommittedBytes += envBytes // translate to reader-absolute offsets
	}
	// Dataset guard: a journaled snapshot answers for the newest journal
	// stamp's dataset, not the envelope's base (see ggsx.Index.LoadIndex).
	sum, ng := env.DBChecksum, env.NumGraphs
	if st := tr.JournalStamp(); st != nil {
		sum, ng = st.DBChecksum, st.NumGraphs
	}
	if err := index.ValidateDataset(sum, ng, db); err != nil {
		rollback()
		return index.LoadReport{Bytes: cr.N}, fmt.Errorf("grapes: %w", err)
	}
	if x.opt.Shards > 0 {
		tr.Reshard(x.opt.Shards)
	}
	x.opt.MaxPathLen = env.MaxPathLen
	x.db = db
	x.tr = tr
	base := envBytes + n
	if rec != nil {
		base = rec.CommittedBytes // torn bytes are not part of the new base
	}
	x.log.NoteFullSave(base)
	x.resetMemo()
	return index.LoadReport{Bytes: cr.N, RecoveredTail: rec}, nil
}
