package grapes

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/features"
	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestEnumerateParallelEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 40, 0.15, 4)
	opt := features.PathOptions{MaxLen: 4, Locations: true}
	seq := New(Options{MaxPathLen: 4, Threads: 1}).enumerate(g, opt)
	par := New(Options{MaxPathLen: 4, Threads: 6}).enumerate(g, opt)
	if len(seq.Counts) != len(par.Counts) {
		t.Fatalf("key counts differ: %d vs %d", len(seq.Counts), len(par.Counts))
	}
	for k, c := range seq.Counts {
		if par.Counts[k] != c {
			t.Fatalf("count mismatch for %q: %d vs %d", k, c, par.Counts[k])
		}
		a, b := seq.Locations[k], par.Locations[k]
		if len(a) != len(b) {
			t.Fatalf("location mismatch for %q", k)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("location order mismatch for %q", k)
			}
		}
	}
}

func TestSmallGraphSkipsParallelism(t *testing.T) {
	// graphs smaller than 2×threads take the sequential path; behaviour
	// must be identical
	g := graph.New(3)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	x := New(Options{MaxPathLen: 4, Threads: 8})
	x.Build([]*graph.Graph{g})
	if cs := x.Filter(g); len(cs) != 1 {
		t.Errorf("self-query CS = %v", cs)
	}
	if !x.Verify(g, 0) {
		t.Error("self verification failed")
	}
}

func TestVerifyUsesLocationsCorrectly(t *testing.T) {
	// two far-apart regions with the same labels: pattern lives only in
	// one region; location-restricted verification must still find it
	g := graph.New(8)
	// region A: triangle of label 1 (vertices 0-2)
	for i := 0; i < 3; i++ {
		g.AddVertex(1)
	}
	// bridge of label 9
	g.AddVertex(9)
	g.AddVertex(9)
	// region B: path of label 1 (vertices 5-7)
	for i := 0; i < 3; i++ {
		g.AddVertex(1)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)

	tri := graph.New(3)
	tri.AddVertex(1)
	tri.AddVertex(1)
	tri.AddVertex(1)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)

	x := New(DefaultOptions())
	x.Build([]*graph.Graph{g})
	if !x.Verify(tri, 0) {
		t.Error("triangle in region A missed by location-restricted verify")
	}
	// a square of label 1 exists nowhere
	sq := graph.New(4)
	for i := 0; i < 4; i++ {
		sq.AddVertex(1)
	}
	sq.AddEdge(0, 1)
	sq.AddEdge(1, 2)
	sq.AddEdge(2, 3)
	sq.AddEdge(0, 3)
	if x.Verify(sq, 0) {
		t.Error("phantom square verified")
	}
}

func TestThreadsNormalised(t *testing.T) {
	x := New(Options{Threads: 0})
	if x.opt.Threads != 1 {
		t.Errorf("threads = %d", x.opt.Threads)
	}
	if itoa(0) != "0" || itoa(42) != "42" || itoa(6) != "6" {
		t.Error("itoa broken")
	}
}

func TestQueryFeatureMemoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := []*graph.Graph{randomGraph(rng, 12, 0.3, 3), randomGraph(rng, 12, 0.3, 3)}
	x := New(DefaultOptions())
	x.Build(db)
	q := randomGraph(rng, 4, 0.6, 3)
	f1 := append([]features.IDCount(nil), x.queryFeatures(q)...)
	f2 := x.queryFeatures(q)
	if !slices.Equal(f1, f2) {
		t.Error("same query returned different features")
	}
	if x.lastQ != q {
		t.Error("memo does not hold the last query")
	}
	q2 := randomGraph(rng, 4, 0.6, 3)
	x.queryFeatures(q2)
	if x.lastQ != q2 {
		t.Error("different query served stale memo")
	}
}

func TestNameAndSizeInPackage(t *testing.T) {
	x := New(Options{MaxPathLen: 4, Threads: 1})
	if x.Name() != "Grapes" {
		t.Errorf("Name = %q", x.Name())
	}
	x6 := New(Options{MaxPathLen: 4, Threads: 6})
	if x6.Name() != "Grapes(6)" {
		t.Errorf("Name = %q", x6.Name())
	}
	rng := rand.New(rand.NewSource(6))
	db := []*graph.Graph{randomGraph(rng, 10, 0.3, 3)}
	x.Build(db)
	if x.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive after Build")
	}
}

func TestUnionIntoEdgeCases(t *testing.T) {
	if got := unionInto(nil, []int32{1, 2}); len(got) != 2 {
		t.Errorf("unionInto(nil, ...) = %v", got)
	}
	got := unionInto([]int32{1, 3}, []int32{2, 3, 4})
	want := []int32{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("unionInto = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unionInto = %v, want %v", got, want)
		}
	}
}
