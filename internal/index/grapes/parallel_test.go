package grapes

import (
	"fmt"
	"testing"

	"math/rand"

	"repro/internal/graph"
	"repro/internal/trie"
)

func dumpTrie(tr *trie.Trie) string {
	out := fmt.Sprintf("nodes=%d len=%d\n", tr.NodeCount(), tr.Len())
	tr.Walk(func(k string, ps []trie.Posting) {
		out += fmt.Sprintf("%q ->", k)
		for _, p := range ps {
			out += fmt.Sprintf(" {g=%d c=%d locs=%v}", p.Graph, p.Count, p.Locs)
		}
		out += "\n"
	})
	return out
}

// TestParallelBuildDifferential pins the graph-level parallel build
// (including location lists, which GGSX does not carry) to the sequential
// one, across shard counts and worker counts, down to identical Verify
// decisions — the location-restricted verification consumes the Locs lists
// directly.
func TestParallelBuildDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := make([]*graph.Graph, 18)
	for i := range db {
		db[i] = randomGraph(rng, 8+rng.Intn(10), 0.25, 4)
	}
	queries := make([]*graph.Graph, 10)
	for i := range queries {
		queries[i] = randomGraph(rng, 3+rng.Intn(3), 0.6, 4)
	}

	ref := New(Options{MaxPathLen: 4, Threads: 1, Shards: 1, BuildWorkers: 1})
	ref.Build(db)
	wantTrie := dumpTrie(ref.tr)

	for _, tc := range []struct{ shards, workers int }{
		{1, 8}, {8, 1}, {8, 8}, {3, 5},
	} {
		x := New(Options{MaxPathLen: 4, Threads: 1, Shards: tc.shards, BuildWorkers: tc.workers})
		x.Build(db)
		if got := dumpTrie(x.tr); got != wantTrie {
			t.Errorf("shards=%d workers=%d: trie (with locations) diverges from sequential build", tc.shards, tc.workers)
		}
		for qi, q := range queries {
			want, got := ref.Filter(q), x.Filter(q)
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("shards=%d workers=%d query %d: Filter %v != %v", tc.shards, tc.workers, qi, got, want)
			}
			for _, id := range want {
				if ref.Verify(q, id) != x.Verify(q, id) {
					t.Fatalf("shards=%d workers=%d query %d: Verify(%d) diverges", tc.shards, tc.workers, qi, id)
				}
			}
		}
	}
}

// TestLegacyThreadsPathMatchesWorkers: the per-vertex-range strategy
// (BuildWorkers=1, Threads>1 — also chosen automatically when the dataset
// is smaller than 2×BuildWorkers) and the graph-level fan-out must produce
// the same index.
func TestLegacyThreadsPathMatchesWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := make([]*graph.Graph, 12) // ≥ 2×BuildWorkers, so fan-out engages
	for i := range db {
		db[i] = randomGraph(rng, 30, 0.15, 3)
	}
	legacy := New(Options{MaxPathLen: 4, Threads: 6, BuildWorkers: 1, Shards: 4})
	legacy.Build(db)
	fanout := New(Options{MaxPathLen: 4, Threads: 6, Shards: 4}) // BuildWorkers = Threads
	fanout.Build(db)
	if a, b := dumpTrie(legacy.tr), dumpTrie(fanout.tr); a != b {
		t.Error("legacy per-vertex-range build diverges from graph-level fan-out")
	}
	// A dataset smaller than 2×BuildWorkers routes through the per-vertex
	// split automatically — and must still match a forced fan-out build.
	small := db[:3]
	auto := New(Options{MaxPathLen: 4, Threads: 6, Shards: 4})
	auto.Build(small)
	forced := New(Options{MaxPathLen: 4, Threads: 1, BuildWorkers: 6, Shards: 4})
	forced.Build(small)
	if a, b := dumpTrie(auto.tr), dumpTrie(forced.tr); a != b {
		t.Error("small-dataset per-vertex build diverges from forced fan-out")
	}
}
