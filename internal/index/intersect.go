package index

import (
	"math/bits"
	"slices"
	"sort"
)

// Set-intersection strategies for the candidate pruning pipeline. All id
// slices are ascending and duplicate-free.
//
// The linear merge (IntersectSorted) is optimal when the inputs have similar
// lengths; when one side is much shorter — the common case once feature
// lists are processed in ascending-selectivity order — a galloping
// (exponential-probe) search over the longer side does O(|a|·log|b|/|a|)
// work instead of O(|a|+|b|).

// DefaultGallopProbeCost is the assumed cost of one galloping probe step
// relative to one step of the linear merge's branch-predictable scan
// (binary-search probes miss branch prediction and jump across cache
// lines). Calibrated against the skewed-intersect benchmarks below: at
// skew 4 the merge still wins at every list size measured, at skew 8
// galloping already wins, so the model's switchover must land between
// them. CalibrateGallopProbeCost (calibrate.go) re-measures the constant
// per dataset at Build time; index owners thread the result through
// Trie.SetGallopProbeCost.
const DefaultGallopProbeCost = 2

// shouldGallop is shouldGallopCost at the package-default probe cost.
func shouldGallop(la, lb int) bool { return shouldGallopCost(la, lb, DefaultGallopProbeCost) }

// shouldGallopCost picks the strategy from the two list lengths instead of
// a fixed skew ratio: galloping costs about probeCost·log2(|b|/|a|) probe
// steps per element of the short list, the merge scans all |a|+|b|
// elements once, so galloping wins exactly when the first estimate
// undercuts the second (a switchover near 6× skew at the default probe
// cost, growing with the log term near the boundary, instead of the
// previous hard-coded 8×).
func shouldGallopCost(la, lb, probeCost int) bool {
	if la == 0 {
		return false
	}
	r := lb / la
	if r < 4 { // quick reject: well below any measured crossover
		return false
	}
	return probeCost*la*bits.Len(uint(r)) < la+lb
}

// IntersectSortedGalloping returns the intersection of two ascending id
// slices, galloping over the longer one. Exported for benchmarking against
// IntersectSorted; most callers want IntersectInto, which picks a strategy
// from the length skew.
func IntersectSortedGalloping(a, b []int32) []int32 {
	return intersectGalloping(make([]int32, 0, min(len(a), len(b))), a, b)
}

// IntersectInto appends the intersection of a and b to dst[:0] and returns
// it, choosing between the linear merge and the galloping search by length
// skew. dst may alias neither a nor b.
func IntersectInto(dst, a, b []int32) []int32 {
	return IntersectIntoCost(dst, a, b, DefaultGallopProbeCost)
}

// IntersectIntoCost is IntersectInto with an explicit (calibrated)
// galloping probe cost; probeCost ≤ 0 selects the package default.
func IntersectIntoCost(dst, a, b []int32, probeCost int) []int32 {
	dst = dst[:0]
	if probeCost <= 0 {
		probeCost = DefaultGallopProbeCost
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if shouldGallopCost(len(a), len(b), probeCost) {
		return intersectGalloping(dst, a, b)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// intersectGalloping appends a ∩ b to dst for len(a) ≤ len(b): for each
// element of a, probe positions j+1, j+2, j+4, ... in b to bracket it, then
// binary-search the bracket. The probe cursor only moves forward, so the
// whole pass is O(|a|·log(|b|/|a|)) on average.
func intersectGalloping(dst, a, b []int32) []int32 {
	j := 0
	for _, x := range a {
		if j >= len(b) {
			break
		}
		if b[j] < x {
			// gallop: find the first probe at or beyond x
			step := 1
			lo := j
			for j+step < len(b) && b[j+step] < x {
				lo = j + step
				step *= 2
			}
			hi := j + step
			if hi > len(b) {
				hi = len(b)
			}
			// binary search in (lo, hi]
			j = lo + 1 + sort.Search(hi-lo-1, func(k int) bool { return b[lo+1+k] >= x })
			if j >= len(b) {
				break
			}
		}
		if b[j] == x {
			dst = append(dst, x)
			j++
		}
	}
	return dst
}

// IntersectMany intersects several ascending id lists, processing them in
// ascending length order (rarest feature first) so the running candidate set
// shrinks as early as possible; each fold step picks merge vs gallop from
// the skew. lists is reordered in place. buf provides two reusable
// ping-pong buffers; the result aliases one of them (or the single input
// list) and is valid until the buffers are reused.
func IntersectMany(lists [][]int32, buf *[2][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	slices.SortFunc(lists, func(a, b []int32) int { return len(a) - len(b) })
	cur := lists[0]
	which := 0
	for _, l := range lists[1:] {
		if len(cur) == 0 {
			return nil
		}
		buf[which] = IntersectInto(buf[which], cur, l)
		cur = buf[which]
		which = 1 - which
	}
	if len(cur) == 0 {
		return nil
	}
	return cur
}
