package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/trie"
)

// Dataset-index persistence. The paper's premise is that index knowledge is
// expensive to earn and worth keeping; Persistable extends Method with a
// snapshot round-trip so a process restart costs O(read) instead of
// O(re-enumerate the dataset). Implemented by the path methods (ggsx,
// grapes) over the trie segment format (see internal/trie's package and
// format documentation).

// Persistable is a Method whose built dataset index can be serialised and
// restored without rebuilding.
//
// SaveIndex writes a self-contained snapshot of the built index; LoadIndex
// replaces the index's state with a snapshot previously written by the same
// method kind, validating it against db — the dataset the restored index
// will answer over. Implementations must guarantee that a loaded index is
// observationally identical to a freshly Built one: same candidates, same
// statistics, same answers. Like Build, LoadIndex is exclusive: no other
// method of the index may run concurrently, and structures keyed by the
// previous dictionary IDs must be rebuilt afterwards.
//
// Durability contract: by default LoadIndex salvages a snapshot whose
// trailing journal section is torn (the crash-mid-append signature),
// loading the committed prefix and reporting the damage in
// LoadReport.RecoveredTail; StrictLoad restores fail-on-anything.
// Corruption anywhere before the journal tail always fails, and a failed
// load leaves the index and its dictionary byte-identical to their
// pre-call state.
type Persistable interface {
	Method
	SaveIndex(w io.Writer) error
	LoadIndex(r io.Reader, db []*graph.Graph, opts ...LoadOption) (LoadReport, error)
}

// LoadReport describes a completed LoadIndex.
type LoadReport struct {
	// Bytes is the number of bytes consumed from the reader (including a
	// discarded torn tail).
	Bytes int64
	// RecoveredTail is non-nil when the load salvaged a torn journal
	// tail; its offsets are absolute within the reader handed to
	// LoadIndex, so a caller owning the underlying file can repair it
	// with trie.RepairSnapshotTail.
	RecoveredTail *trie.TailRecovery
}

// LoadConfig is the resolved option set of one LoadIndex call.
type LoadConfig struct {
	// Strict fails the load on any structural damage instead of
	// recovering a torn journal tail.
	Strict bool
}

// LoadOption customises one LoadIndex call.
type LoadOption func(*LoadConfig)

// StrictLoad makes the load fail on any structural damage, including a
// torn trailing journal section the default mode would salvage.
func StrictLoad() LoadOption { return func(c *LoadConfig) { c.Strict = true } }

// ResolveLoadOptions folds opts into a LoadConfig (for implementations
// outside this package).
func ResolveLoadOptions(opts []LoadOption) LoadConfig {
	var cfg LoadConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// ErrDatasetMismatch reports a snapshot loaded against a dataset other than
// the one it was saved for. Answers are dataset positions, so such a load
// would silently return wrong graphs; the checksum guard turns it into this
// error instead.
var ErrDatasetMismatch = errors.New("index snapshot belongs to a different dataset")

// DBChecksum fingerprints a dataset: an order-sensitive FNV fold of the
// per-graph structural fingerprints (the same construction iGQ's cache
// snapshots use). Embedded in index snapshots as the dataset guard.
func DBChecksum(db []*graph.Graph) uint64 {
	var h uint64 = 1469598103934665603
	for _, g := range db {
		h = h*1099511628211 ^ graph.Fingerprint(g)
	}
	return h
}

// ByteScanner is the reader shape snapshot loaders need: streaming reads
// plus single-byte reads for varints.
type ByteScanner interface {
	io.Reader
	io.ByteReader
}

// AsByteScanner returns r itself when it already supports byte reads, or
// wraps it in a buffered reader. A loader reading several sections from one
// stream must wrap once and hand the same scanner to every section, or the
// wrapper's read-ahead would swallow the next section's bytes.
func AsByteScanner(r io.Reader) ByteScanner {
	if bs, ok := r.(ByteScanner); ok {
		return bs
	}
	return bufio.NewReader(r)
}

// CountingScanner wraps a ByteScanner, counting consumed bytes — the
// method loaders use it to translate section-relative recovery offsets
// into stream-absolute ones.
type CountingScanner struct {
	R ByteScanner
	N int64
}

func (c *CountingScanner) Read(p []byte) (int, error) {
	m, err := c.R.Read(p)
	c.N += int64(m)
	return m, err
}

func (c *CountingScanner) ReadByte() (byte, error) {
	b, err := c.R.ReadByte()
	if err == nil {
		c.N++
	}
	return b, err
}

// CountingWriter wraps a writer, counting the bytes written — shared by
// the method persisters for delta-log base-size accounting.
type CountingWriter struct {
	W io.Writer
	N int64
}

func (c *CountingWriter) Write(p []byte) (int, error) {
	m, err := c.W.Write(p)
	c.N += int64(m)
	return m, err
}

// IndexEnvelope is the common header of a method-index snapshot: which
// method wrote it, at what feature length, over which dataset.
type IndexEnvelope struct {
	Method     string // Method.Name()-style identifier, e.g. "GGSX"
	MaxPathLen int    // feature path length the index was built with
	DBChecksum uint64 // DBChecksum of the indexed dataset
	NumGraphs  int    // dataset size (cheap pre-checksum sanity)
}

const (
	envelopeMagic   = "IGQIDX"
	envelopeVersion = 1
	maxMethodName   = 64
)

// WriteIndexEnvelope writes the envelope header; the method-specific index
// body (typically a trie snapshot) follows it in the same stream.
func WriteIndexEnvelope(w io.Writer, env IndexEnvelope) error {
	buf := make([]byte, 0, 64)
	buf = append(buf, envelopeMagic...)
	buf = binary.AppendUvarint(buf, envelopeVersion)
	buf = binary.AppendUvarint(buf, uint64(len(env.Method)))
	buf = append(buf, env.Method...)
	buf = binary.AppendUvarint(buf, uint64(env.MaxPathLen))
	buf = binary.LittleEndian.AppendUint64(buf, env.DBChecksum)
	buf = binary.AppendUvarint(buf, uint64(env.NumGraphs))
	_, err := w.Write(buf)
	return err
}

// ReadIndexEnvelope reads an envelope header written by WriteIndexEnvelope,
// leaving r positioned at the index body. r should come from AsByteScanner
// when more sections follow.
func ReadIndexEnvelope(r io.Reader) (IndexEnvelope, error) {
	br := AsByteScanner(r)
	var env IndexEnvelope
	var magic [len(envelopeMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return env, fmt.Errorf("index: reading snapshot magic: %w", err)
	}
	if string(magic[:]) != envelopeMagic {
		return env, fmt.Errorf("index: not an index snapshot (magic %q)", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return env, fmt.Errorf("index: reading snapshot version: %w", err)
	}
	if version < 1 || version > envelopeVersion {
		return env, fmt.Errorf("index: snapshot version %d unsupported (this build reads ≤ %d)", version, envelopeVersion)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > maxMethodName {
		return env, fmt.Errorf("index: bad method name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return env, fmt.Errorf("index: reading method name: %w", err)
	}
	env.Method = string(name)
	mpl, err := binary.ReadUvarint(br)
	if err != nil {
		return env, fmt.Errorf("index: reading feature length: %w", err)
	}
	env.MaxPathLen = int(mpl)
	var sum [8]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return env, fmt.Errorf("index: reading dataset checksum: %w", err)
	}
	env.DBChecksum = binary.LittleEndian.Uint64(sum[:])
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return env, fmt.Errorf("index: reading dataset size: %w", err)
	}
	env.NumGraphs = int(n)
	return env, nil
}

// ValidateEnvelope checks a decoded envelope against the loading method and
// dataset, returning a descriptive error (wrapping ErrDatasetMismatch for
// dataset divergence) or nil.
func ValidateEnvelope(env IndexEnvelope, method string, db []*graph.Graph) error {
	if err := ValidateEnvelopeMethod(env, method); err != nil {
		return err
	}
	return ValidateDataset(env.DBChecksum, env.NumGraphs, db)
}

// ValidateEnvelopeMethod checks only the method identity of an envelope.
// Loaders of journal-appendable snapshots use it for the fail-fast check
// and validate the dataset afterwards via ValidateDataset against the
// newest journal stamp — a journaled snapshot's envelope still carries the
// *base* dataset's fingerprint, while the file as a whole decodes to the
// post-mutation dataset's index.
func ValidateEnvelopeMethod(env IndexEnvelope, method string) error {
	if env.Method != method {
		return fmt.Errorf("index: snapshot holds a %s index, not %s", env.Method, method)
	}
	return nil
}

// ValidateDataset checks a recorded dataset fingerprint (from the envelope
// or from the newest journal stamp) against the dataset a snapshot is
// being loaded over, wrapping ErrDatasetMismatch on divergence.
func ValidateDataset(checksum uint64, numGraphs int, db []*graph.Graph) error {
	if numGraphs != len(db) {
		return fmt.Errorf("%w: snapshot indexed %d graphs, dataset has %d",
			ErrDatasetMismatch, numGraphs, len(db))
	}
	if checksum != DBChecksum(db) {
		return fmt.Errorf("%w: dataset checksum mismatch", ErrDatasetMismatch)
	}
	return nil
}
