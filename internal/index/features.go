package index

import "repro/internal/features"

// Optional Method extensions for the interned-feature fast path. A method
// that exposes its feature dictionary lets iGQ share one interner between
// dataset filtering and cache lookup: the query is canonicalised once, and
// both sides probe postings by integer FeatureID.

// DictProvider is implemented by methods whose filter is built on a
// features.Dict (the path-based indexes). iGQ adopts the provided
// dictionary so query features are interned once for both sides.
type DictProvider interface {
	FeatureDict() *features.Dict
}

// CountFilterer is implemented by methods that can filter directly from a
// pre-enumerated feature IDSet. FeatureMaxPathLen reports the feature
// length the index was built with; callers must only use
// FilterByFeatureCounts when their enumeration used the same length and the
// same dictionary, and fall back to Filter otherwise.
//
// Both methods belong to the read path and inherit Method's concurrency
// contract: safe for any number of concurrent callers after Build.
type CountFilterer interface {
	FeatureMaxPathLen() int
	// FilterByFeatureCounts returns the sorted candidate ids for a query
	// with the given feature occurrences. The result is freshly allocated
	// (never aliasing internal scratch), so callers may retain it.
	FilterByFeatureCounts(qf features.IDSet) []int32
}
