package index

import (
	"repro/internal/graph"
	"repro/internal/trie"
)

// Lazy index loading. A Persistable's LoadIndex decodes the entire snapshot
// before the first query can run; LazyLoadable is the capability for methods
// that can instead open a snapshot from a random-access source, decode only
// the cheap metadata eagerly (envelope, dictionary, segment directory,
// journal tail) and fault individual posting shards in on first touch. It is
// what lets a serving process answer its first query in O(touched shards)
// time — and hold an index bigger than RAM under a residency budget — at the
// price of per-shard decode latency on cold paths.
//
// The lazy contract is observational equivalence: a lazily opened index
// must answer every query, report every statistic and re-save byte-for-byte
// identically to the same snapshot restored through LoadIndex. Corruption
// confined to one shard's segment body surfaces when that shard is first
// touched (as trie.ErrCorrupt, carried by a trie.ShardFaultError panic on
// query paths) and must not poison other shards.
type LazyLoadable interface {
	Persistable

	// LoadIndexLazy restores a SaveIndex snapshot from src without decoding
	// posting segments up front. budget bounds resident decoded bytes
	// (0 = unbounded); least-recently-touched shards are evicted and
	// re-faulted (re-verifying their checksums) on the next touch. src must
	// remain open and immutable for the lifetime of the loaded index — it
	// is read again on every shard fault.
	//
	// Unlike LoadIndex, an explicit shard-count option is not applied: the
	// lazy index adopts the snapshot's saved shard layout, because the
	// segment directory is the unit of deferred decoding. Layout never
	// affects answers; call Materialize and re-save to change it.
	LoadIndexLazy(src trie.RandomAccessFile, db []*graph.Graph, budget int64, opts ...LoadOption) (LoadReport, error)

	// Materialize faults in every remaining shard and converts the index to
	// the fully-resident representation LoadIndex would have produced,
	// releasing the dependency on src. Mutating operations call it
	// implicitly. It is idempotent and a no-op on an eagerly loaded index.
	Materialize() error
}

// ResidencyReporter is implemented by indexes that can describe how much of
// their posting data is currently decoded — the serving layer's residency
// gauges come from here. Eagerly loaded indexes report Lazy == false.
type ResidencyReporter interface {
	Residency() trie.Residency
}
