package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/features"
	"repro/internal/trie"
)

// cfDataset builds one membership table covering every container regime:
// tiny sets, sparse scatter, dense scatter and clustered runs, with a few
// non-unit counts so the threshold-materialising path runs too.
func cfDataset(seed int64, nFeats, nGraphs int) map[string][]trie.Posting {
	rng := rand.New(rand.NewSource(seed))
	ds := make(map[string][]trie.Posting, nFeats)
	for f := 0; f < nFeats; f++ {
		key := fmt.Sprintf("q:%d.%d", f%9, f)
		var ps []trie.Posting
		add := func(g int) {
			p := trie.Posting{Graph: int32(g), Count: 1}
			if rng.Intn(6) == 0 {
				p.Count = int32(2 + rng.Intn(3))
			}
			ps = append(ps, p)
		}
		switch f % 4 {
		case 0:
			for g := 0; g < 1+rng.Intn(4); g++ {
				add(rng.Intn(nGraphs))
			}
		case 1:
			for g := 0; g < nGraphs; g++ {
				if rng.Intn(15) == 0 {
					add(g)
				}
			}
		case 2:
			for g := 0; g < nGraphs; g++ {
				if rng.Intn(8) != 0 {
					add(g)
				}
			}
		default:
			for g := 0; g < nGraphs; {
				for j, n := 0, 1+rng.Intn(50); j < n && g < nGraphs; j++ {
					add(g)
					g++
				}
				g += 1 + rng.Intn(40)
			}
		}
		ds[key] = ps
	}
	return ds
}

func buildCFTrie(policy trie.ContainerPolicy, shards int, ds map[string][]trie.Posting) *trie.Trie {
	tr := trie.NewSharded(features.NewDict(), shards)
	tr.SetContainerPolicy(policy)
	for k, ps := range ds {
		for _, p := range ps {
			tr.Insert(k, p)
		}
	}
	return tr
}

// idSetFor resolves a key/count query against one trie's dictionary.
func idSetFor(tr *trie.Trie, keys []string, counts []int32) features.IDSet {
	var qf features.IDSet
	for i, k := range keys {
		id, ok := tr.Dict().Lookup(k)
		if !ok {
			qf.Unknown++
			continue
		}
		qf.Counts = append(qf.Counts, features.IDCount{ID: id, Count: counts[i]})
	}
	return qf
}

// TestFilterCountGEAdaptiveMatchesArray is the read-path differential:
// FilterCountGE over adaptive containers must return the identical
// candidate list as over the forced-array reference, across shard layouts,
// probe costs, feature mixes and count thresholds — covering the bitmap
// word-AND chain, container probes and the materialised threshold path.
func TestFilterCountGEAdaptiveMatchesArray(t *testing.T) {
	ds := cfDataset(5, 36, 900)
	var allKeys []string
	for k := range ds {
		allKeys = append(allKeys, k)
	}
	for _, shards := range []int{1, 4} {
		adaptive := buildCFTrie(trie.AdaptiveContainers, shards, ds)
		reference := buildCFTrie(trie.ArrayOnlyContainers, shards, ds)
		for _, probeCost := range []int{0, 1, 4} {
			adaptive.SetGallopProbeCost(probeCost)
			reference.SetGallopProbeCost(probeCost)
			rng := rand.New(rand.NewSource(int64(shards*10 + probeCost)))
			for q := 0; q < 200; q++ {
				nk := 1 + rng.Intn(5)
				keys := make([]string, nk)
				counts := make([]int32, nk)
				for i := range keys {
					keys[i] = allKeys[rng.Intn(len(allKeys))]
					counts[i] = int32(rng.Intn(3))
				}
				sa := GetCountFilterScratch()
				ga := FilterCountGE(adaptive, idSetFor(adaptive, keys, counts), sa)
				ga = append([]int32(nil), ga...)
				PutCountFilterScratch(sa)
				sr := GetCountFilterScratch()
				gr := FilterCountGE(reference, idSetFor(reference, keys, counts), sr)
				gr = append([]int32(nil), gr...)
				PutCountFilterScratch(sr)
				if !reflect.DeepEqual(ga, gr) {
					t.Fatalf("shards=%d probeCost=%d query %v/%v: adaptive %v != reference %v",
						shards, probeCost, keys, counts, ga, gr)
				}
			}
		}
	}
}

// TestFilterCountGEParallelPath drives a query large enough to clear the
// parallel fan-out gate (every shard group's rarest list ≥ parallelGroupMin)
// and pins it against the serial array reference.
func TestFilterCountGEParallelPath(t *testing.T) {
	const nGraphs = 3 * parallelGroupMin
	rng := rand.New(rand.NewSource(17))
	ds := make(map[string][]trie.Posting)
	for f := 0; f < 6; f++ {
		var ps []trie.Posting
		for g := 0; g < nGraphs; g++ {
			if rng.Intn(8) != 0 { // dense: bitmap territory, > parallelGroupMin survivors
				ps = append(ps, trie.Posting{Graph: int32(g), Count: 1})
			}
		}
		ds[fmt.Sprintf("big:%d", f)] = ps
	}
	adaptive := buildCFTrie(trie.AdaptiveContainers, 4, ds)
	reference := buildCFTrie(trie.ArrayOnlyContainers, 4, ds)
	keys := make([]string, 0, len(ds))
	counts := make([]int32, 0, len(ds))
	for k := range ds {
		keys = append(keys, k)
		counts = append(counts, 1)
	}
	sa := GetCountFilterScratch()
	ga := append([]int32(nil), FilterCountGE(adaptive, idSetFor(adaptive, keys, counts), sa)...)
	PutCountFilterScratch(sa)
	sr := GetCountFilterScratch()
	gr := append([]int32(nil), FilterCountGE(reference, idSetFor(reference, keys, counts), sr)...)
	PutCountFilterScratch(sr)
	if len(ga) == 0 {
		t.Fatal("premise: dense intersection came back empty")
	}
	if !reflect.DeepEqual(ga, gr) {
		t.Fatalf("parallel adaptive result diverges: %d vs %d candidates", len(ga), len(gr))
	}
}
