package index

// Per-dataset calibration of the intersection cost model. The
// merge-vs-gallop switchover depends on the real cost ratio between one
// branch-predictable merge step and one galloping probe (cache geometry,
// branch predictor, list sizes), which varies across machines and
// datasets. Index owners call CalibrateGallopProbeCost once at Build time
// and thread the result through Trie.SetGallopProbeCost; every
// FilterCountGE over that trie then uses the measured constant instead of
// the package default. Calibration affects only strategy choice — results
// are identical at any probe cost.

import (
	"math/bits"
	"time"

	"repro/internal/trie"
)

// calibrateMinLen is the longest-posting-list cardinality below which
// calibration is skipped (returning 0 = package default): tiny stores
// never leave the merge regime and the measurement would cost more than
// it saves — this also keeps unit-test index builds free of timing work.
const calibrateMinLen = 1 << 12

// CalibrateGallopProbeCost measures merge vs galloping intersection on
// synthetic lists shaped like tr's largest posting list and returns the
// probe-cost constant for Trie.SetGallopProbeCost, clamped to [1, 4].
// Returns 0 (selecting DefaultGallopProbeCost) for stores too small to
// measure meaningfully. Cost is a few hundred microseconds, once per
// build.
func CalibrateGallopProbeCost(tr *trie.Trie) int {
	n := tr.MaxPostingLen()
	if n < calibrateMinLen {
		return 0
	}
	n = min(n, 1<<16)
	const skew = 8
	b := make([]int32, n)
	for i := range b {
		b[i] = int32(i)
	}
	a := make([]int32, n/skew)
	for i := range a {
		a[i] = int32(i * skew)
	}
	dst := make([]int32, 0, len(a))
	reps := max(1, (1<<18)/n)
	merge := func() {
		for r := 0; r < reps; r++ {
			dst = intersectMerge(dst[:0], a, b)
		}
	}
	gallop := func() {
		for r := 0; r < reps; r++ {
			dst = intersectGalloping(dst[:0], a, b)
		}
	}
	// Interleaved minimums: three rounds each, alternating, so a stray
	// scheduler hiccup cannot bias one side.
	tm, tg := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		start := time.Now()
		merge()
		tm = min(tm, time.Since(start))
		start = time.Now()
		gallop()
		tg = min(tg, time.Since(start))
	}
	if tm <= 0 || tg <= 0 {
		return 0
	}
	// Invert the cost model: tMerge ∝ la+lb, tGallop ∝ cost·la·log2(lb/la),
	// so cost = (tg/tm)·(la+lb)/(la·log2(lb/la)). bits.Len matches the
	// rounding shouldGallopCost uses.
	la, lb := len(a), len(b)
	est := float64(tg) / float64(tm) * float64(la+lb) / float64(la*bits.Len(uint(lb/la)))
	cost := int(est + 0.5)
	if cost < 1 {
		cost = 1
	}
	if cost > 4 {
		cost = 4
	}
	return cost
}

// intersectMerge is the forced linear-merge reference used by calibration
// (IntersectIntoCost would route this skew to galloping).
func intersectMerge(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
