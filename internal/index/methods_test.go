package index_test

// Cross-method conformance tests: every filter-then-verify implementation
// must (a) never produce false negatives in its candidate set and (b) agree
// with the brute-force oracle on the final answer set. These are the
// executable form of the correctness assumptions the paper's Theorems 1–2
// place on the underlying method M.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ctindex"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/iso"
)

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// connectedQuery extracts a connected query of ~k vertices from g.
func connectedQuery(rng *rand.Rand, g *graph.Graph, k int) *graph.Graph {
	if g.NumVertices() == 0 {
		return graph.New(0)
	}
	order := g.BFSOrder(rng.Intn(g.NumVertices()))
	if len(order) > k {
		order = order[:k]
	}
	sub, _ := g.InducedSubgraph(order)
	return sub
}

func methodsUnderTest() []index.Method {
	return []index.Method{
		ggsx.New(ggsx.DefaultOptions()),
		grapes.New(grapes.DefaultOptions()),
		grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6}),
		ctindex.New(ctindex.DefaultOptions()),
	}
}

func buildTestDB(rng *rand.Rand, n int) []*graph.Graph {
	db := make([]*graph.Graph, n)
	for i := range db {
		db[i] = randomGraph(rng, 6+rng.Intn(8), 0.3, 4)
		db[i].ID = i
	}
	return db
}

func TestMethodsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := buildTestDB(rng, 25)
	oracle := index.NewBruteForce()
	oracle.Build(db)

	for _, m := range methodsUnderTest() {
		m.Build(db)
		for trial := 0; trial < 40; trial++ {
			var q *graph.Graph
			if trial%2 == 0 {
				q = connectedQuery(rng, db[rng.Intn(len(db))], 2+rng.Intn(4))
			} else {
				q = randomGraph(rng, 2+rng.Intn(4), 0.5, 4)
			}
			want := index.Answer(oracle, q)
			got := index.Answer(m, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: answer %v, oracle %v\nquery:\n%s",
					m.Name(), trial, got, want, graph.DOT(q))
			}
		}
	}
}

func TestMethodsNoFalseNegativesInFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	db := buildTestDB(rng, 20)
	for _, m := range methodsUnderTest() {
		m.Build(db)
		for trial := 0; trial < 30; trial++ {
			q := connectedQuery(rng, db[rng.Intn(len(db))], 2+rng.Intn(4))
			cs := map[int32]bool{}
			for _, id := range m.Filter(q) {
				cs[id] = true
			}
			for i, g := range db {
				if iso.Reference(q, g) && !cs[int32(i)] {
					t.Fatalf("%s trial %d: graph %d contains the query but was filtered out",
						m.Name(), trial, i)
				}
			}
		}
	}
}

func TestMethodsFilterSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := buildTestDB(rng, 15)
	for _, m := range methodsUnderTest() {
		m.Build(db)
		q := connectedQuery(rng, db[0], 3)
		ids := m.Filter(q)
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("%s: Filter result not sorted: %v", m.Name(), ids)
			}
		}
	}
}

func TestMethodsEmptyQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	db := buildTestDB(rng, 5)
	empty := graph.New(0)
	for _, m := range methodsUnderTest() {
		m.Build(db)
		ans := index.Answer(m, empty)
		if len(ans) != len(db) {
			t.Errorf("%s: empty query answered by %d/%d graphs", m.Name(), len(ans), len(db))
		}
	}
}

func TestMethodsSizeBytesPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	db := buildTestDB(rng, 5)
	for _, m := range methodsUnderTest() {
		m.Build(db)
		if m.SizeBytes() <= 0 {
			t.Errorf("%s: SizeBytes = %d", m.Name(), m.SizeBytes())
		}
	}
}

func TestGrapesParallelBuildEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	db := buildTestDB(rng, 10)
	seq := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 1})
	par := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
	seq.Build(db)
	par.Build(db)
	for trial := 0; trial < 25; trial++ {
		q := connectedQuery(rng, db[rng.Intn(len(db))], 2+rng.Intn(4))
		a := seq.Filter(q)
		b := par.Filter(q)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: sequential CS %v != parallel CS %v", trial, a, b)
		}
	}
}

func TestGrapesNames(t *testing.T) {
	if n := grapes.New(grapes.Options{Threads: 1}).Name(); n != "Grapes" {
		t.Errorf("Grapes(1) name = %q", n)
	}
	if n := grapes.New(grapes.Options{Threads: 6}).Name(); n != "Grapes(6)" {
		t.Errorf("Grapes(6) name = %q", n)
	}
}

func TestGrapesDisconnectedQueryFallback(t *testing.T) {
	// a disconnected query must still be answered correctly
	rng := rand.New(rand.NewSource(37))
	db := buildTestDB(rng, 10)
	m := grapes.New(grapes.DefaultOptions())
	m.Build(db)
	q := graph.New(3)
	q.AddVertex(db[0].Label(0))
	q.AddVertex(db[0].Label(0))
	q.AddVertex(db[0].Label(0))
	// no edges: disconnected
	want := map[int32]bool{}
	for i, g := range db {
		if iso.Reference(q, g) {
			want[int32(i)] = true
		}
	}
	got := map[int32]bool{}
	for _, id := range index.Answer(m, q) {
		got[id] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disconnected query: got %v want %v", got, want)
	}
}

func TestCTIndexLargerConfigStillCorrect(t *testing.T) {
	// the Fig 18 "larger" configuration (trees 7, cycles 9, 8192 bits)
	rng := rand.New(rand.NewSource(38))
	db := buildTestDB(rng, 12)
	oracle := index.NewBruteForce()
	oracle.Build(db)
	m := ctindex.New(ctindex.Options{TreeSize: 7, CycleSize: 9, Bits: 8192, HashCount: 2})
	m.Build(db)
	for trial := 0; trial < 20; trial++ {
		q := connectedQuery(rng, db[rng.Intn(len(db))], 3)
		if !reflect.DeepEqual(index.Answer(m, q), index.Answer(oracle, q)) {
			t.Fatalf("trial %d: larger CT-Index config disagrees with oracle", trial)
		}
	}
}

func TestCTIndexBudgetSaturationSound(t *testing.T) {
	// force tiny budgets: dense dataset graphs saturate, answers must stay
	// correct (possibly larger candidate sets, never wrong answers)
	rng := rand.New(rand.NewSource(39))
	db := make([]*graph.Graph, 8)
	for i := range db {
		db[i] = randomGraph(rng, 10, 0.5, 2) // dense: budgets will blow
		db[i].ID = i
	}
	oracle := index.NewBruteForce()
	oracle.Build(db)
	m := ctindex.New(ctindex.Options{TreeSize: 6, CycleSize: 8, Bits: 4096, HashCount: 2, TreeBudget: 5, CycleBudget: 5})
	m.Build(db)
	for trial := 0; trial < 15; trial++ {
		q := connectedQuery(rng, db[rng.Intn(len(db))], 3)
		if !reflect.DeepEqual(index.Answer(m, q), index.Answer(oracle, q)) {
			t.Fatalf("trial %d: budget-saturated CT-Index disagrees with oracle", trial)
		}
	}
}

func TestCTIndexFiltersSomething(t *testing.T) {
	// sanity: on a DB with two disjoint label vocabularies, a query using
	// vocabulary A must filter out all vocabulary-B graphs
	mkLabeled := func(base graph.Label) *graph.Graph {
		g := graph.New(4)
		for i := 0; i < 4; i++ {
			g.AddVertex(base + graph.Label(i))
		}
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		return g
	}
	db := []*graph.Graph{mkLabeled(0), mkLabeled(100)}
	m := ctindex.New(ctindex.DefaultOptions())
	m.Build(db)
	q := graph.New(2)
	q.AddVertex(0)
	q.AddVertex(1)
	q.AddEdge(0, 1)
	cs := m.Filter(q)
	if len(cs) != 1 || cs[0] != 0 {
		t.Errorf("CS = %v, want [0]", cs)
	}
}
