package contain

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/iso"
)

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestFilterNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := make([]*graph.Graph, 20)
	for i := range db {
		db[i] = randomGraph(rng, 2+rng.Intn(4), 0.5, 3)
	}
	x := New(DefaultOptions())
	x.Build(db)
	for trial := 0; trial < 30; trial++ {
		q := randomGraph(rng, 4+rng.Intn(5), 0.4, 3)
		cs := map[int32]bool{}
		for _, id := range x.Filter(q) {
			cs[id] = true
		}
		for i, g := range db {
			if iso.Reference(g, q) && !cs[int32(i)] {
				t.Fatalf("trial %d: contained graph %d missing from CS", trial, i)
			}
		}
	}
}

func TestRebuildIsIdempotent(t *testing.T) {
	// Build must reset the index (keeping the shared dictionary): a second
	// Build used to double posting counts, dropping valid candidates.
	rng := rand.New(rand.NewSource(43))
	db := make([]*graph.Graph, 12)
	for i := range db {
		db[i] = randomGraph(rng, 2+rng.Intn(4), 0.5, 3)
	}
	x := New(DefaultOptions())
	dict := x.FeatureDict()
	x.Build(db)
	q := randomGraph(rng, 7, 0.5, 3)
	want := x.Filter(q)
	x.Build(db)
	got := x.Filter(q)
	if len(got) != len(want) {
		t.Fatalf("Filter after rebuild = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Filter after rebuild = %v, want %v", got, want)
		}
	}
	if x.FeatureDict() != dict {
		t.Error("rebuild replaced the shared dictionary")
	}
}

func TestVerifyDirectionInverted(t *testing.T) {
	small := randomGraph(rand.New(rand.NewSource(1)), 3, 1, 1) // triangle, label 0
	x := New(DefaultOptions())
	x.Build([]*graph.Graph{small})
	big := randomGraph(rand.New(rand.NewSource(2)), 6, 0.8, 1)
	// Verify must test db[0] ⊆ q, not q ⊆ db[0]
	want := iso.Subgraph(small, big)
	if got := x.Verify(big, 0); got != want {
		t.Errorf("Verify = %v, want %v (inverted direction)", got, want)
	}
}

func TestOptionsAndName(t *testing.T) {
	x := New(Options{})
	if x.opt.MaxPathLen != 4 {
		t.Errorf("default MaxPathLen = %d", x.opt.MaxPathLen)
	}
	if x.Name() != "Contain" {
		t.Errorf("name = %q", x.Name())
	}
	if DefaultOptions().MaxPathLen != 4 {
		t.Error("DefaultOptions drifted")
	}
}

func TestSizePositiveAfterBuild(t *testing.T) {
	x := New(DefaultOptions())
	x.Build([]*graph.Graph{randomGraph(rand.New(rand.NewSource(3)), 5, 0.5, 2)})
	if x.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}
