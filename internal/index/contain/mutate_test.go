package contain

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// TestMutationDifferential pins the copy-on-write mutation path to a
// from-scratch Build over the final dataset: after every append/remove
// batch the mutated index must match the rebuilt one in filter results,
// verified answers and SizeBytes — the supergraph analogue of the ggsx
// differential, covering the NF bookkeeping the trie cannot check.
func TestMutationDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := make([]*graph.Graph, 16)
	for i := range db {
		db[i] = randomGraph(rng, 2+rng.Intn(4), 0.5, 3)
	}
	// Supergraph queries are larger than the indexed graphs so containment
	// answers are non-trivial.
	queries := make([]*graph.Graph, 8)
	for i := range queries {
		queries[i] = randomGraph(rng, 5+rng.Intn(4), 0.4, 3)
	}

	var cur index.Mutable = New(Options{MaxPathLen: 3})
	cur.Build(db)
	cdb := db
	for step := 0; step < 12; step++ {
		if rng.Intn(2) == 0 || len(cdb) < 4 {
			gs := []*graph.Graph{
				randomGraph(rng, 2+rng.Intn(4), 0.5, 3),
				randomGraph(rng, 2+rng.Intn(4), 0.5, 3),
			}
			next, ndb, err := cur.AppendGraphs(gs)
			if err != nil {
				t.Fatal(err)
			}
			wantDB := append(append([]*graph.Graph(nil), cdb...), gs...)
			if !reflect.DeepEqual(ndb, wantDB) {
				t.Fatalf("step %d: AppendGraphs dataset mismatch", step)
			}
			cur, cdb = next, ndb
		} else {
			ps := []int{rng.Intn(len(cdb))}
			if rng.Intn(2) == 0 && len(cdb) > 2 {
				q := rng.Intn(len(cdb))
				if q != ps[0] {
					ps = append(ps, q)
				}
			}
			wantDB, _, wantMap, err := index.SwapRemove(cdb, ps)
			if err != nil {
				t.Fatal(err)
			}
			next, ndb, mapping, err := cur.RemoveGraphs(ps)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ndb, wantDB) || !reflect.DeepEqual(mapping, wantMap) {
				t.Fatalf("step %d: RemoveGraphs dataset/mapping mismatch", step)
			}
			cur, cdb = next, ndb
		}

		ref := New(Options{MaxPathLen: 3})
		ref.Build(cdb)
		if got, want := cur.SizeBytes(), ref.SizeBytes(); got != want {
			t.Fatalf("step %d: SizeBytes %d != rebuilt %d", step, got, want)
		}
		for qi, q := range queries {
			if got, want := cur.Filter(q), ref.Filter(q); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d query %d: Filter diverges\ngot:  %v\nwant: %v", step, qi, got, want)
			}
			if !reflect.DeepEqual(index.Answer(cur, q), index.Answer(ref, q)) {
				t.Fatalf("step %d query %d: Answer diverges", step, qi)
			}
		}
	}
}

// TestMutationEmptyGraphNF exercises the NF special case: a graph with no
// features (single labeled vertex, no edges — subgraph of everything with
// that label... in fact of every graph, since it has zero features) must
// survive append and swap-removal with its NF=0 bookkeeping intact.
func TestMutationEmptyGraphNF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := make([]*graph.Graph, 6)
	for i := range db {
		db[i] = randomGraph(rng, 3, 0.6, 2)
	}
	empty := graph.New(1)
	empty.AddVertex(graph.Label(0))

	var cur index.Mutable = New(Options{MaxPathLen: 3})
	cur.Build(db)
	next, cdb, err := cur.AppendGraphs([]*graph.Graph{empty})
	if err != nil {
		t.Fatal(err)
	}
	cur, _ = next, cdb
	q := randomGraph(rng, 5, 0.5, 2)
	found := false
	for _, id := range cur.Filter(q) {
		if id == int32(len(db)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("featureless graph missing from candidates after append")
	}
	// Swap-remove position 0 so the empty graph (last) is re-homed there.
	next2, ndb, _, err := cur.RemoveGraphs([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	ref := New(Options{MaxPathLen: 3})
	ref.Build(ndb)
	if got, want := fmt.Sprint(next2.Filter(q)), fmt.Sprint(ref.Filter(q)); got != want {
		t.Fatalf("after swap-removal of empty graph: Filter %s != rebuilt %s", got, want)
	}
}
