// Package contain provides a standalone *supergraph* query processing
// method (the paper's Msuper of §4.4), built from the same trie-based
// containment structure that iGQ uses as its Isuper component (paper
// Algorithms 1 and 2) — the paper designed that structure precisely so it
// could "perform both subgraph and supergraph query indexing and
// processing".
//
// Semantics are the inverse of the subgraph methods: Filter(q) returns the
// dataset graphs that may be *contained in* q, and Verify(q, id) tests
// db[id] ⊆ q. The index.Method interface is shared; iGQ distinguishes the
// two via core.Options.Mode.
package contain

import (
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/iso"
)

// Options configures the containment method.
type Options struct {
	// MaxPathLen is the feature path length in edges (default 4).
	MaxPathLen int
}

// DefaultOptions mirrors the feature configuration of the path baselines.
func DefaultOptions() Options { return Options{MaxPathLen: 4} }

// Index answers supergraph queries over a fixed dataset.
type Index struct {
	opt Options
	db  []*graph.Graph
	ci  *core.ContainmentIndex
}

var (
	_ index.Method        = (*Index)(nil)
	_ index.DictProvider  = (*Index)(nil)
	_ index.CountFilterer = (*Index)(nil)
)

// New returns an unbuilt containment method.
func New(opt Options) *Index {
	if opt.MaxPathLen <= 0 {
		opt.MaxPathLen = 4
	}
	return &Index{opt: opt, ci: core.NewContainmentIndex(opt.MaxPathLen)}
}

// Name implements index.Method.
func (x *Index) Name() string { return "Contain" }

// FeatureDict implements index.DictProvider, letting a wrapping iGQ share
// the dataset index's interner.
func (x *Index) FeatureDict() *features.Dict { return x.ci.Dict() }

// FeatureMaxPathLen implements index.CountFilterer.
func (x *Index) FeatureMaxPathLen() int { return x.opt.MaxPathLen }

// FilterByFeatureCounts implements index.CountFilterer: Algorithm 2 from a
// query already enumerated against the shared dictionary.
func (x *Index) FilterByFeatureCounts(qf features.IDSet) []int32 {
	return x.ci.CandidatesFromIDSet(qf)
}

// Build implements index.Method (Algorithm 1 over the dataset). The index
// and the dictionary contents are reset on entry — the *Dict object handed
// out by FeatureDict stays valid, but a re-Build does not retain the
// previous dataset's dead vocabulary.
func (x *Index) Build(db []*graph.Graph) {
	x.db = db
	d := x.ci.Dict()
	d.Reset()
	x.ci = core.NewContainmentIndexWithDict(x.opt.MaxPathLen, d)
	for i, g := range db {
		x.ci.Add(int32(i), g)
	}
}

// Filter implements index.Method (Algorithm 2): candidates that may be
// subgraphs of q. No false negatives.
func (x *Index) Filter(q *graph.Graph) []int32 {
	return x.ci.CandidateSubgraphs(q)
}

// Verify implements index.Method with the inverted test db[id] ⊆ q.
func (x *Index) Verify(q *graph.Graph, id int32) bool {
	return iso.Subgraph(x.db[id], q)
}

// SizeBytes implements index.Method: the containment index plus the
// feature dictionary this method owns, counted at live features only —
// removal leaves dead dictionary entries behind (FeatureIDs are dense
// handles and cannot be reclaimed), and they must not make a mutated
// generation look bigger than the rebuild it is equivalent to.
func (x *Index) SizeBytes() int { return x.ci.SizeBytes() + x.ci.LiveDictSizeBytes() }
