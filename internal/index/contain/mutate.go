package contain

// Incremental dataset maintenance for the supergraph method. The
// containment index is the same trie the subgraph methods mutate
// copy-on-write, plus the NF table (distinct-feature count per graph), so
// mutation stages the identical trie ops — append the new graphs'
// features, scrub a removed graph's keys, re-home the swapped graph — and
// maintains NF alongside: appended graphs record their distinct-feature
// counts, and each swap-removal step moves the last position's count into
// the vacated slot. This is what lets a serving deployment's supergraph
// engine mutate in O(delta) instead of rebuilding its index over the whole
// dataset after every mutation.
//
// Contain is deliberately *not* DeltaPersistable: its snapshot story is
// the combined engine snapshot (cache + NF are engine state), so there is
// no per-method delta journal to record into.

import (
	"errors"

	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ggsx"
)

var _ index.Mutable = (*Index)(nil)

// Dataset implements index.Mutable.
func (x *Index) Dataset() []*graph.Graph { return x.db }

// AppendGraphs implements index.Mutable: a copy-on-write generation over
// append(db, gs...). O(delta): only the new graphs are enumerated, once,
// feeding both their staged postings and their NF entries.
func (x *Index) AppendGraphs(gs []*graph.Graph) (index.Mutable, []*graph.Graph, error) {
	if x.db == nil {
		return nil, nil, errors.New("contain: AppendGraphs before Build")
	}
	if len(gs) == 0 {
		return nil, nil, errors.New("contain: no graphs to append")
	}
	for _, g := range gs {
		if g == nil {
			return nil, nil, errors.New("contain: nil graph in append batch")
		}
	}
	popt := features.PathOptions{MaxLen: x.opt.MaxPathLen}
	mut := x.ci.NewMutation()
	nf := x.ci.NFTable(len(gs))
	start := int32(len(x.db))
	for i, g := range gs {
		feats := ggsx.GraphFeatures(features.Paths(g, popt))
		mut.AppendGraph(start+int32(i), feats)
		nf[start+int32(i)] = len(feats)
	}
	newDB := make([]*graph.Graph, 0, len(x.db)+len(gs))
	newDB = append(newDB, x.db...)
	newDB = append(newDB, gs...)
	nx := &Index{opt: x.opt, db: newDB, ci: x.ci.ApplyMutation(mut, nf)}
	return nx, newDB, nil
}

// RemoveGraphs implements index.Mutable under the canonical swap-removal
// semantics of index.SwapRemove. O(delta): only the removed and swapped
// graphs are enumerated; NF follows each swap step without enumeration.
func (x *Index) RemoveGraphs(positions []int) (index.Mutable, []*graph.Graph, []int32, error) {
	if x.db == nil {
		return nil, nil, nil, errors.New("contain: RemoveGraphs before Build")
	}
	newDB, steps, mapping, err := index.SwapRemove(x.db, positions)
	if err != nil {
		return nil, nil, nil, err
	}
	mut := x.ci.NewMutation()
	ggsx.StageRemovals(mut, steps, features.PathOptions{MaxLen: x.opt.MaxPathLen})
	nf := x.ci.NFTable(0)
	for _, st := range steps {
		// NF mirrors the swap: the vacated slot inherits the last
		// position's count and the last slot disappears.
		n := nf[st.SwappedFrom]
		delete(nf, st.SwappedFrom)
		if st.SwappedFrom != st.Removed {
			nf[st.Removed] = n
		}
	}
	nx := &Index{opt: x.opt, db: newDB, ci: x.ci.ApplyMutation(mut, nf)}
	return nx, newDB, mapping, nil
}
