// Package index defines the common contract for the filter-then-verify
// subgraph query processing methods the paper evaluates (the "method M" of
// the iGQ framework), plus a brute-force reference used as a ground-truth
// oracle in tests and experiments.
//
// A Method indexes a fixed dataset of graphs and answers subgraph queries in
// two stages:
//
//	Filter(q)  → candidate set CS(q): ids of graphs that may contain q
//	             (guaranteed superset of the true answer — no false
//	             negatives; false positives allowed),
//	Verify(q, id) → subgraph isomorphism test of q against one candidate.
//
// iGQ (package core) wraps any Method, pruning CS(q) with knowledge from
// previously executed queries before verification.
package index

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/iso"
)

// Method is a subgraph query processing method over a fixed graph dataset.
//
// Concurrency contract: after Build has returned, the read path — Filter,
// Verify, SizeBytes, and the optional DictProvider/CountFilterer
// extensions — MUST be safe for concurrent use by any number of
// goroutines. The engine and iGQ serve queries concurrently by default and
// rely on this: implementations keep per-call state in pooled scratch
// buffers (ggsx, grapes) or allocate it per call (ctindex, contain), and
// any memoisation must be internally synchronised (see grapes' query-
// feature memo).
//
// Build itself may parallelise *internally* — the path methods fan feature
// enumeration out over build workers and merge into a sharded postings
// store (package trie) — but externally it remains strictly exclusive: it
// must be called exactly once, by one goroutine, and no other method of the
// index may run until it returns. Implementations that build in parallel
// must join every build goroutine before returning, so that Build's return
// establishes a happens-before edge to every subsequent Filter/Verify call
// and the read path needs no synchronisation of its own. Parallel builds
// must also be deterministic: the same dataset must yield the same index
// state (postings, walk order, filter results) at any worker count.
type Method interface {
	// Name identifies the method in experiment output (e.g. "Grapes(6)").
	Name() string
	// Build constructs the dataset index. It must be called exactly once,
	// before any queries.
	Build(db []*graph.Graph)
	// Filter returns the candidate set for query q as sorted dataset
	// positions. It must never omit a true answer.
	Filter(q *graph.Graph) []int32
	// Verify performs the subgraph isomorphism test of q against the
	// dataset graph at position id, stopping at the first embedding.
	Verify(q *graph.Graph, id int32) bool
	// SizeBytes reports the approximate index footprint (paper Fig 18).
	SizeBytes() int
}

// Answer runs the full filter-then-verify pipeline and returns the sorted
// answer set of q.
func Answer(m Method, q *graph.Graph) []int32 {
	var ans []int32
	for _, id := range m.Filter(q) {
		if m.Verify(q, id) {
			ans = append(ans, id)
		}
	}
	return ans
}

// BruteForce is the index-free reference method: every graph is a candidate
// and verification is a plain VF2 test. It is the ground-truth oracle for
// the correctness properties of the real methods, and doubles as the
// "no filtering" baseline in ablation benchmarks.
type BruteForce struct {
	db []*graph.Graph
}

// NewBruteForce returns an unbuilt brute-force method.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Name implements Method.
func (b *BruteForce) Name() string { return "BruteForce" }

// Build implements Method.
func (b *BruteForce) Build(db []*graph.Graph) { b.db = db }

// Filter implements Method: all graphs are candidates.
func (b *BruteForce) Filter(q *graph.Graph) []int32 {
	out := make([]int32, len(b.db))
	for i := range b.db {
		out[i] = int32(i)
	}
	return out
}

// Verify implements Method.
func (b *BruteForce) Verify(q *graph.Graph, id int32) bool {
	return iso.Subgraph(q, b.db[id])
}

// SizeBytes implements Method: no index.
func (b *BruteForce) SizeBytes() int { return 0 }

// SortIDs sorts a candidate id slice ascending, in place, and returns it.
// Shared helper for Method implementations.
func SortIDs(ids []int32) []int32 {
	slices.Sort(ids)
	return ids
}

// IntersectSorted returns the intersection of two ascending id slices.
func IntersectSorted(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SubtractSorted returns a \ b for ascending id slices.
func SubtractSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// UnionSorted returns a ∪ b for ascending id slices.
func UnionSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
