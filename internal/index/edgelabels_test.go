package index_test

// End-to-end edge-label ("bond type") conformance: every method and the
// full iGQ stack must answer bond-labeled queries exactly like the
// brute-force oracle — the paper's claimed generalization, verified through
// the whole pipeline.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ctindex"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/workload"
)

func bondDB(t *testing.T) []*graph.Graph {
	t.Helper()
	spec := dataset.Spec{
		Name: "bonds", NumGraphs: 25, Labels: 4,
		NodesMean: 10, NodesStd: 3, NodesMin: 5, NodesMax: 16,
		AvgDegree: 2.2, LabelSkew: 0, Structure: dataset.StructureMolecular,
		EdgeLabels: 3, Seed: 77,
	}
	return dataset.Generate(spec)
}

func TestMethodsAgreeOnBondLabeledDB(t *testing.T) {
	db := bondDB(t)
	for _, g := range db {
		if !g.HasEdgeLabels() {
			t.Fatal("bond DB generated without edge labels")
		}
	}
	oracle := index.NewBruteForce()
	oracle.Build(db)
	ms := []index.Method{
		ggsx.New(ggsx.DefaultOptions()),
		grapes.New(grapes.DefaultOptions()),
		ctindex.New(ctindex.DefaultOptions()),
	}
	rng := rand.New(rand.NewSource(21))
	for _, m := range ms {
		m.Build(db)
		for trial := 0; trial < 25; trial++ {
			src := db[rng.Intn(len(db))]
			q := workload.Extract(src, rng.Intn(src.NumVertices()), 2+rng.Intn(5))
			if q.NumEdges() == 0 {
				continue
			}
			if !q.HasEdgeLabels() {
				t.Fatal("extraction dropped edge labels")
			}
			want := index.Answer(oracle, q)
			got := index.Answer(m, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: %v want %v", m.Name(), trial, got, want)
			}
		}
	}
}

func TestIGQCorrectOnBondLabeledDB(t *testing.T) {
	db := bondDB(t)
	m := grapes.New(grapes.DefaultOptions())
	m.Build(db)
	ig := core.New(m, db, core.Options{CacheSize: 12, Window: 3})
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		src := db[rng.Intn(5)] // few sources → nested/repeated queries
		q := workload.Extract(src, rng.Intn(src.NumVertices()), 2+rng.Intn(6))
		if q.NumEdges() == 0 {
			continue
		}
		want := index.Answer(m, q)
		got := ig.Query(q)
		if !reflect.DeepEqual(got.Answer, want) {
			t.Fatalf("trial %d: iGQ %v want %v (short=%v)", trial, got.Answer, want, got.Short)
		}
	}
	if ig.Flushes() == 0 {
		t.Error("no flushes — cache untested")
	}
}

func TestBondLabelsChangeAnswers(t *testing.T) {
	// sanity: a query whose bond type is altered must (generally) match a
	// different graph set — proving labels are not ignored
	db := bondDB(t)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	rng := rand.New(rand.NewSource(23))
	changed := false
	for trial := 0; trial < 40 && !changed; trial++ {
		src := db[rng.Intn(len(db))]
		q := workload.Extract(src, rng.Intn(src.NumVertices()), 3)
		if q.NumEdges() < 2 {
			continue
		}
		before := index.Answer(m, q)
		// flip one bond to a fresh label
		mod := graph.New(q.NumVertices())
		for v := 0; v < q.NumVertices(); v++ {
			mod.AddVertex(q.Label(v))
		}
		first := true
		q.EdgesLabeled(func(u, v int, l graph.Label) {
			if first {
				l = 9 // label outside the generated domain
				first = false
			}
			mod.AddEdgeLabeled(u, v, l)
		})
		after := index.Answer(m, mod)
		if !reflect.DeepEqual(before, after) {
			changed = true
		}
	}
	if !changed {
		t.Error("flipping bond labels never changed any answer — labels ignored?")
	}
}
