package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 { // classic population-σ example
		t.Errorf("std = %v, want 2", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Sum != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Errorf("int summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// percentile of an unsorted input must match sorted
	if Percentile([]float64{5, 1, 3, 2, 4}, 50) != 3 {
		t.Error("unsorted input mishandled")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 2) != 5 {
		t.Error("10/2")
	}
	if Ratio(0, 0) != 1 {
		t.Error("0/0 should be 1 (no change)")
	}
	if !math.IsInf(Ratio(3, 0), 1) {
		t.Error("3/0 should be +Inf")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("method", "speedup")
	tb.AddRowf("Grapes(6)", 5.25)
	tb.AddRowf("GGSX", 11)
	out := tb.String()
	if !strings.Contains(out, "Grapes(6)") || !strings.Contains(out, "5.25") || !strings.Contains(out, "11") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines", len(lines))
	}
	// columns aligned: header and first row start at same offset
	if strings.Index(lines[0], "speedup") != strings.Index(lines[2], "5.25") {
		t.Error("columns misaligned")
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")                // short row padded
	tb.AddRow("1", "2", "3", "4") // long row truncated
	out := tb.String()
	if strings.Contains(out, "4") {
		t.Error("extra cell not dropped")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:           "3",
		3.14159:     "3.14",
		12345.678:   "12345.7",
		0.5:         "0.50",
		math.Inf(1): "inf",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "-" {
		t.Errorf("NaN = %q", got)
	}
}
