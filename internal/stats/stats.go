// Package stats provides the small numeric and table-formatting helpers the
// experiment harness uses to aggregate per-query measurements and print
// paper-style result tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	Sum  float64
}

// Summarize computes a Summary over xs (population standard deviation, as
// used in the paper's Table 1).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}

// SummarizeInts is Summarize over an int sample.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns a/b, guarding division by zero: the speedup convention used
// throughout the experiments (ratio of baseline over improved). A zero
// denominator with a non-zero numerator reports +Inf; 0/0 reports 1 (no
// change).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// Table accumulates rows and renders an aligned text table: the output
// format of every experiment regenerator.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, one format per cell value.
func (t *Table) AddRowf(cells ...interface{}) {
	ss := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			ss[i] = v
		case float64:
			ss[i] = FormatFloat(v)
		case int:
			ss[i] = fmt.Sprintf("%d", v)
		case int64:
			ss[i] = fmt.Sprintf("%d", v)
		default:
			ss[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(ss...)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with two decimals.
func FormatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
