package iso

import (
	"repro/internal/graph"
)

// riState holds the backtracking search state. The engine follows the VF2
// discipline — incremental core mapping with feasibility rules — specialised
// to labeled monomorphism:
//
//   - syntactic feasibility: the candidate target vertex carries the right
//     label, is unused, has degree ≥ the pattern vertex's degree, and every
//     already-mapped pattern neighbour maps to a target neighbour;
//   - the matching order is connectivity-first (each pattern vertex after
//     the first within a component is adjacent to an earlier one), so
//     candidates are drawn from the adjacency of a mapped neighbour instead
//     of the whole target.
type riState struct {
	p, t    *graph.Graph
	order   []int   // pattern vertices in matching order
	parent  []int   // parent[i]: pattern neighbour of order[i] ordered earlier, else -1
	mapping []int32 // pattern vertex -> target vertex, -1 if unmapped
	used    []bool  // target vertex already in the core
	stats   *Stats
	emit    func([]int32) bool
	done    bool
}

// riExists reports whether p ⊆ t, optionally accumulating stats.
func riExists(p, t *graph.Graph, st *Stats) bool {
	found := false
	s := newRI(p, t, st, func([]int32) bool {
		found = true
		return false
	})
	if s != nil {
		s.match(0)
	}
	return found
}

// enumerate runs the VF2 engine calling fn per embedding; limit <= 0 means
// no limit (fn controls termination).
func enumerate(p, t *graph.Graph, limit int, fn func([]int32) bool) {
	count := 0
	s := newRI(p, t, nil, func(m []int32) bool {
		count++
		if !fn(m) {
			return false
		}
		return limit <= 0 || count < limit
	})
	if s == nil {
		return
	}
	s.match(0)
}

// newRI builds the search state, or returns nil if trivial pruning already
// refutes the existence of an embedding.
func newRI(p, t *graph.Graph, st *Stats, emit func([]int32) bool) *riState {
	np, nt := p.NumVertices(), t.NumVertices()
	if np == 0 {
		// The empty pattern embeds everywhere: emit the empty mapping once.
		emit(nil)
		return nil
	}
	if np > nt || p.NumEdges() > t.NumEdges() {
		return nil
	}
	// Label histogram pruning: target must carry every pattern label at
	// least as many times.
	tc := t.LabelCounts()
	for l, c := range p.LabelCounts() {
		if tc[l] < c {
			return nil
		}
	}
	s := &riState{
		p:       p,
		t:       t,
		mapping: make([]int32, np),
		used:    make([]bool, nt),
		stats:   st,
		emit:    emit,
	}
	for i := range s.mapping {
		s.mapping[i] = -1
	}
	s.order, s.parent = matchingOrder(p, t)
	return s
}

// matchingOrder produces a connectivity-first order over pattern vertices.
// Roots are chosen by (rarest target label, then highest pattern degree);
// subsequent vertices maximise the number of already-ordered neighbours
// (most-constrained-first), tie-broken by degree. parent[i] is an already
// ordered pattern neighbour used to restrict the candidate set.
func matchingOrder(p, t *graph.Graph) (order, parent []int) {
	np := p.NumVertices()
	order = make([]int, 0, np)
	parent = make([]int, 0, np)
	placed := make([]bool, np)
	rank := make([]int, np) // number of ordered neighbours
	tCounts := t.LabelCounts()

	better := func(a, b int) bool { // is a a better next pick than b?
		if rank[a] != rank[b] {
			return rank[a] > rank[b]
		}
		fa, fb := tCounts[p.Label(a)], tCounts[p.Label(b)]
		if fa != fb {
			return fa < fb
		}
		if p.Degree(a) != p.Degree(b) {
			return p.Degree(a) > p.Degree(b)
		}
		return a < b
	}

	for len(order) < np {
		best := -1
		for v := 0; v < np; v++ {
			if placed[v] {
				continue
			}
			if best == -1 || better(v, best) {
				best = v
			}
		}
		// find an ordered neighbour to act as parent
		par := -1
		for _, w := range p.Neighbors(best) {
			if placed[w] {
				par = int(w)
				break
			}
		}
		order = append(order, best)
		parent = append(parent, par)
		placed[best] = true
		for _, w := range p.Neighbors(best) {
			rank[w]++
		}
	}
	return order, parent
}

// match extends the core mapping at depth d; returns false if the search
// should stop entirely (emit asked to halt).
func (s *riState) match(d int) bool {
	if d == len(s.order) {
		return s.emit(s.mapping)
	}
	u := s.order[d]
	if par := s.parent[d]; par >= 0 {
		// Candidates restricted to neighbours of the parent's image.
		for _, c := range s.t.Neighbors(int(s.mapping[par])) {
			if !s.tryPair(d, u, int(c)) {
				return false
			}
			if s.done {
				return false
			}
		}
		return true
	}
	// No ordered neighbour (component root): all target vertices.
	for c := 0; c < s.t.NumVertices(); c++ {
		if !s.tryPair(d, u, c) {
			return false
		}
	}
	return true
}

// tryPair attempts the assignment u→c and recurses on success. It returns
// false to abort the entire search.
func (s *riState) tryPair(d, u, c int) bool {
	if s.used[c] || !s.feasible(u, c) {
		return true
	}
	if s.stats != nil {
		s.stats.Assignments++
	}
	s.mapping[u] = int32(c)
	s.used[c] = true
	ok := s.match(d + 1)
	s.mapping[u] = -1
	s.used[c] = false
	if s.stats != nil {
		s.stats.Backtracks++
	}
	return ok
}

// feasible applies the monomorphism feasibility rules for mapping u→c.
func (s *riState) feasible(u, c int) bool {
	if s.p.Label(u) != s.t.Label(c) {
		return false
	}
	if s.t.Degree(c) < s.p.Degree(u) {
		return false
	}
	// Every mapped pattern neighbour must be adjacent in the target with a
	// matching edge label. (For monomorphism there is no converse
	// requirement.)
	for _, w := range s.p.Neighbors(u) {
		if m := s.mapping[w]; m >= 0 {
			if !s.t.HasEdge(c, int(m)) ||
				s.p.EdgeLabel(u, int(w)) != s.t.EdgeLabel(c, int(m)) {
				return false
			}
		}
	}
	// 1-look-ahead: c must have enough unused neighbours left to host u's
	// unmapped neighbours. Sound for monomorphism because every unmapped
	// pattern neighbour of u must eventually map to a distinct unused
	// target neighbour of c.
	needed := 0
	for _, w := range s.p.Neighbors(u) {
		if s.mapping[w] < 0 {
			needed++
		}
	}
	if needed > 0 {
		avail := 0
		for _, x := range s.t.Neighbors(c) {
			if !s.used[x] {
				avail++
				if avail >= needed {
					break
				}
			}
		}
		if avail < needed {
			return false
		}
	}
	return true
}
