package iso

import (
	"repro/internal/graph"
)

// The VF2 engine (Cordella, Foggia, Sansone, Vento, TPAMI 2004 — the
// paper's [9]), specialised to labeled undirected monomorphism.
//
// VF2 grows a core mapping incrementally. Around the core it maintains the
// *terminal sets*: T1 = unmapped pattern vertices adjacent to the mapped
// core, T2 = the analogous target frontier. Candidate pairs are drawn from
// (T1 × T2) while the frontiers are non-empty (keeping the expansion
// connected), otherwise from the unmapped remainder.
//
// Feasibility of a pair (n, m):
//
//	labels:   l(n) == l(m)
//	core:     every mapped pattern neighbour of n maps to a target
//	          neighbour of m (monomorphism needs no converse check)
//	terminal: |N(n) ∩ T1| ≤ |N(m) ∩ T2| — a frontier pattern neighbour's
//	          image must be adjacent both to m and to the mapped core, so
//	          it lies in T2
//	new:      |N(n) \ (core ∪ T1)| ≤ |N(m) \ (core ∪ T2)| + slack is NOT
//	          sound for monomorphism in its induced form; the sound rule is
//	          |unmapped N(n)| ≤ |unmapped N(m)| (every unmapped pattern
//	          neighbour needs a distinct unmapped target neighbour)
//
// The induced-isomorphism cut rules that compare the "new" sets exactly are
// deliberately omitted: with extra target edges allowed, only the ≤ forms
// above remain sound.
type vf2State struct {
	p, t    *graph.Graph
	rank    []int   // pattern vertex → static priority (lower = match first)
	mapping []int32 // pattern → target, -1 when unmapped
	inverse []int32 // target → pattern, -1 when unmapped
	depth1  []int   // pattern terminal membership: depth the vertex entered T1, 0 = not in
	depth2  []int   // target terminal membership
	t1Size  int
	t2Size  int
	stats   *Stats
	emit    func([]int32) bool
}

// vf2Exists reports whether p ⊆ t, optionally accumulating stats.
func vf2Exists(p, t *graph.Graph, st *Stats) bool {
	np, nt := p.NumVertices(), t.NumVertices()
	if np == 0 {
		return true
	}
	if np > nt || p.NumEdges() > t.NumEdges() {
		return false
	}
	tc := t.LabelCounts()
	for l, c := range p.LabelCounts() {
		if tc[l] < c {
			return false
		}
	}
	found := false
	s := &vf2State{
		p:       p,
		t:       t,
		rank:    staticRank(p, tc),
		mapping: filled(np),
		inverse: filled(nt),
		depth1:  make([]int, np),
		depth2:  make([]int, nt),
		stats:   st,
		emit: func([]int32) bool {
			found = true
			return false
		},
	}
	s.match(1)
	return found
}

// staticRank orders pattern vertices most-constrained-first (rarest target
// label, then highest degree). The classic VF2 breaks frontier ties by
// vertex index; ranking by constraint instead is the standard practical
// refinement (formalised later as VF2++) and prunes homogeneous-label
// instances dramatically.
func staticRank(p *graph.Graph, targetCounts map[graph.Label]int) []int {
	np := p.NumVertices()
	order := make([]int, np)
	for i := range order {
		order[i] = i
	}
	less := func(a, b int) bool {
		fa, fb := targetCounts[p.Label(a)], targetCounts[p.Label(b)]
		if fa != fb {
			return fa < fb
		}
		if p.Degree(a) != p.Degree(b) {
			return p.Degree(a) > p.Degree(b)
		}
		return a < b
	}
	// simple insertion sort: patterns are small
	for i := 1; i < np; i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	rank := make([]int, np)
	for r, v := range order {
		rank[v] = r
	}
	return rank
}

func filled(n int) []int32 {
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = -1
	}
	return xs
}

// match extends the mapping at recursion depth d (1-based, so depth values
// stored in depth1/depth2 are non-zero).
func (s *vf2State) match(d int) bool {
	if d-1 == s.p.NumVertices() {
		return s.emit(s.mapping)
	}
	n := s.nextPatternVertex()
	if n < 0 {
		return true
	}
	// Candidate generation. When n touches the mapped core, every feasible
	// image must be adjacent to the image of each mapped pattern neighbour
	// of n — so it suffices to scan the adjacency of one such image (the
	// smallest-degree one): a strict subset of the textbook T1×T2
	// enumeration with the same outcomes.
	if anchor := s.bestAnchor(n); anchor >= 0 {
		for _, m := range s.t.Neighbors(anchor) {
			if s.inverse[m] >= 0 {
				continue
			}
			if !s.tryPair(n, int(m), d) {
				return false
			}
		}
		return true
	}
	// component root: all unmapped target vertices are candidates
	nt := s.t.NumVertices()
	for m := 0; m < nt; m++ {
		if s.inverse[m] >= 0 {
			continue
		}
		if !s.tryPair(n, m, d) {
			return false
		}
	}
	return true
}

// tryPair tests and, if feasible, commits the pair and recurses. Returns
// false to abort the whole search (emit stop).
func (s *vf2State) tryPair(n, m, d int) bool {
	if !s.feasible(n, m) {
		return true
	}
	if s.stats != nil {
		s.stats.Assignments++
	}
	undo1, undo2 := s.add(n, m, d)
	if !s.match(d + 1) {
		return false
	}
	s.remove(n, m, undo1, undo2)
	if s.stats != nil {
		s.stats.Backtracks++
	}
	return true
}

// bestAnchor returns the image of the mapped pattern neighbour of n whose
// target adjacency is smallest, or -1 when n has no mapped neighbour.
func (s *vf2State) bestAnchor(n int) int {
	best := -1
	bestDeg := 0
	for _, w := range s.p.Neighbors(n) {
		if mw := s.mapping[w]; mw >= 0 {
			if d := s.t.Degree(int(mw)); best < 0 || d < bestDeg {
				best = int(mw)
				bestDeg = d
			}
		}
	}
	return best
}

// nextPatternVertex picks the pattern vertex to extend with: the best-
// ranked terminal vertex if the frontier is non-empty (VF2's connected
// expansion), otherwise the best-ranked unmapped vertex (new component).
func (s *vf2State) nextPatternVertex() int {
	best := -1
	if s.t1Size > 0 {
		for v := range s.depth1 {
			if s.mapping[v] < 0 && s.depth1[v] > 0 &&
				(best < 0 || s.rank[v] < s.rank[best]) {
				best = v
			}
		}
		return best
	}
	for v := range s.mapping {
		if s.mapping[v] < 0 && (best < 0 || s.rank[v] < s.rank[best]) {
			best = v
		}
	}
	return best
}

// feasible applies the monomorphism feasibility rules for the pair (n, m).
func (s *vf2State) feasible(n, m int) bool {
	if s.p.Label(n) != s.t.Label(m) {
		return false
	}
	if s.t.Degree(m) < s.p.Degree(n) {
		return false
	}
	// core rule + counts for the look-ahead rules in one pass
	termN, freshN := 0, 0
	for _, w := range s.p.Neighbors(n) {
		if mw := s.mapping[w]; mw >= 0 {
			if !s.t.HasEdge(m, int(mw)) ||
				s.p.EdgeLabel(n, int(w)) != s.t.EdgeLabel(m, int(mw)) {
				return false
			}
		} else if s.depth1[w] > 0 {
			termN++
		} else {
			freshN++
		}
	}
	termM, freshM := 0, 0
	for _, x := range s.t.Neighbors(m) {
		if s.inverse[x] >= 0 {
			continue
		}
		if s.depth2[x] > 0 {
			termM++
		} else {
			freshM++
		}
	}
	// terminal look-ahead: frontier pattern neighbours must land on the
	// target frontier
	if termN > termM {
		return false
	}
	// total look-ahead: every unmapped pattern neighbour needs a distinct
	// unmapped target neighbour (fresh pattern neighbours may land on the
	// target frontier too, hence the combined comparison)
	if termN+freshN > termM+freshM {
		return false
	}
	return true
}

// add commits the pair (n, m) at depth d, growing the terminal sets; it
// returns the vertices newly added to each frontier for undo.
func (s *vf2State) add(n, m, d int) (news1, news2 []int32) {
	s.mapping[n] = int32(m)
	s.inverse[m] = int32(n)
	if s.depth1[n] > 0 {
		s.t1Size--
	}
	if s.depth2[m] > 0 {
		s.t2Size--
	}
	for _, w := range s.p.Neighbors(n) {
		if s.mapping[w] < 0 && s.depth1[w] == 0 {
			s.depth1[w] = d
			s.t1Size++
			news1 = append(news1, w)
		}
	}
	for _, x := range s.t.Neighbors(m) {
		if s.inverse[x] < 0 && s.depth2[x] == 0 {
			s.depth2[x] = d
			s.t2Size++
			news2 = append(news2, x)
		}
	}
	return news1, news2
}

// remove undoes add.
func (s *vf2State) remove(n, m int, news1, news2 []int32) {
	for _, w := range news1 {
		s.depth1[w] = 0
		s.t1Size--
	}
	for _, x := range news2 {
		s.depth2[x] = 0
		s.t2Size--
	}
	s.mapping[n] = -1
	s.inverse[m] = -1
	if s.depth1[n] > 0 {
		s.t1Size++
	}
	if s.depth2[m] > 0 {
		s.t2Size++
	}
}
