package iso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Edge-label generalization tests (the paper's claim that "all our results
// straightforwardly generalize to graphs with edge labels").

func labeledEdgePair(pl, tl graph.Label) (p, t *graph.Graph) {
	p = graph.New(2)
	p.AddVertex(1)
	p.AddVertex(1)
	p.AddEdgeLabeled(0, 1, pl)
	t = graph.New(2)
	t.AddVertex(1)
	t.AddVertex(1)
	t.AddEdgeLabeled(0, 1, tl)
	return p, t
}

func TestEdgeLabelMustMatch(t *testing.T) {
	for _, alg := range []Algorithm{VF2, RI, Ullmann} {
		p, tg := labeledEdgePair(1, 1)
		if !SubgraphAlg(p, tg, alg) {
			t.Errorf("%v: matching edge labels rejected", alg)
		}
		p2, tg2 := labeledEdgePair(1, 2)
		if SubgraphAlg(p2, tg2, alg) {
			t.Errorf("%v: mismatched edge labels accepted", alg)
		}
		// unlabeled pattern edge (0) cannot match labeled target edge
		p3, tg3 := labeledEdgePair(0, 2)
		if SubgraphAlg(p3, tg3, alg) {
			t.Errorf("%v: unlabeled pattern edge matched labeled target edge", alg)
		}
	}
}

func TestEdgeLabeledPathSelection(t *testing.T) {
	// target: triangle with bond labels 1,2,3; pattern: a 2-path requiring
	// labels 1 then 2 — exactly one embedding up to direction
	tg := graph.New(3)
	for i := 0; i < 3; i++ {
		tg.AddVertex(1)
	}
	tg.AddEdgeLabeled(0, 1, 1)
	tg.AddEdgeLabeled(1, 2, 2)
	tg.AddEdgeLabeled(0, 2, 3)

	p := graph.New(3)
	for i := 0; i < 3; i++ {
		p.AddVertex(1)
	}
	p.AddEdgeLabeled(0, 1, 1)
	p.AddEdgeLabeled(1, 2, 2)

	if got := CountEmbeddings(p, tg, 0); got != 1 {
		t.Errorf("embeddings = %d, want 1 (path 0-1-2 only)", got)
	}
	p.SetLabel(0, 1) // no-op, keep structure
	pBad := p.Clone()
	pBad.AddEdgeLabeled(0, 2, 1) // closes the triangle with the wrong label
	if Subgraph(pBad, tg) {
		t.Error("wrong-label triangle embedded")
	}
}

func randomLabeledGraph(rng *rand.Rand, n int, pEdge float64, vLabels, eLabels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(vLabels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < pEdge {
				g.AddEdgeLabeled(u, v, graph.Label(rng.Intn(eLabels)))
			}
		}
	}
	return g
}

func TestQuickLabeledEnginesAgree(t *testing.T) {
	f := func(seedP, seedT int64) bool {
		rp := rand.New(rand.NewSource(seedP))
		rt := rand.New(rand.NewSource(seedT))
		pat := randomLabeledGraph(rp, 1+rp.Intn(4), 0.5, 2, 2)
		tgt := randomLabeledGraph(rt, 3+rt.Intn(5), 0.45, 2, 2)
		want := bruteForceExists(pat, tgt)
		return SubgraphAlg(pat, tgt, VF2) == want &&
			SubgraphAlg(pat, tgt, RI) == want &&
			SubgraphAlg(pat, tgt, Ullmann) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLabeledPlantedAlwaysFound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		tgt := randomLabeledGraph(rng, 8+rng.Intn(6), 0.35, 3, 3)
		order := tgt.BFSOrder(rng.Intn(tgt.NumVertices()))
		if len(order) > 4 {
			order = order[:4]
		}
		pat, _ := tgt.InducedSubgraph(order)
		for _, alg := range []Algorithm{VF2, RI, Ullmann} {
			if !SubgraphAlg(pat, tgt, alg) {
				t.Fatalf("trial %d: %v missed planted labeled subgraph", trial, alg)
			}
		}
	}
}

func TestLabeledIsomorphic(t *testing.T) {
	a := graph.New(2)
	a.AddVertex(1)
	a.AddVertex(1)
	a.AddEdgeLabeled(0, 1, 5)
	b := a.Clone()
	if !Isomorphic(a, b) {
		t.Error("identical labeled graphs not isomorphic")
	}
	c := graph.New(2)
	c.AddVertex(1)
	c.AddVertex(1)
	c.AddEdgeLabeled(0, 1, 6)
	if Isomorphic(a, c) {
		t.Error("different edge labels declared isomorphic")
	}
}
