package iso

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(len(labels))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycleGraph(labels ...graph.Label) *graph.Graph {
	g := pathGraph(labels...)
	if len(labels) > 2 {
		g.AddEdge(0, len(labels)-1)
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// randomConnectedSubgraph extracts a connected pattern with k vertices from
// t by BFS from a random start, then randomly drops some non-bridging edges
// so the pattern is a (not necessarily induced) subgraph.
func randomConnectedSubgraph(rng *rand.Rand, t *graph.Graph, k int) *graph.Graph {
	if t.NumVertices() == 0 {
		return graph.New(0)
	}
	start := rng.Intn(t.NumVertices())
	order := t.BFSOrder(start)
	if len(order) > k {
		order = order[:k]
	}
	sub, _ := t.InducedSubgraph(order)
	// drop ~30% of edges while keeping the pattern connected
	edges := sub.EdgeList()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	out := graph.New(sub.NumVertices())
	for v := 0; v < sub.NumVertices(); v++ {
		out.AddVertex(sub.Label(v))
	}
	for _, e := range edges {
		out.AddEdge(e[0], e[1])
	}
	for _, e := range edges {
		if rng.Float64() < 0.3 {
			trial := graph.New(out.NumVertices())
			for v := 0; v < out.NumVertices(); v++ {
				trial.AddVertex(out.Label(v))
			}
			for _, f := range out.EdgeList() {
				if f != e {
					trial.AddEdge(f[0], f[1])
				}
			}
			if trial.IsConnected() {
				out = trial
			}
		}
	}
	return out
}

func TestSubgraphBasics(t *testing.T) {
	tri := cycleGraph(1, 1, 1)
	edge := pathGraph(1, 1)
	single := pathGraph(1)
	wrongLabel := pathGraph(2)

	if !Subgraph(edge, tri) {
		t.Error("edge should embed in triangle")
	}
	if !Subgraph(single, tri) {
		t.Error("single vertex should embed")
	}
	if Subgraph(wrongLabel, tri) {
		t.Error("wrong label embedded")
	}
	if !Subgraph(tri, tri) {
		t.Error("graph should embed in itself")
	}
	if Subgraph(tri, edge) {
		t.Error("triangle embedded in edge")
	}
}

func TestSubgraphNonInduced(t *testing.T) {
	// path a-b-c must embed into triangle a,b,c even though the triangle
	// has the extra (a,c) edge — monomorphism, not induced isomorphism.
	p := pathGraph(1, 2, 3)
	tgt := graph.New(3)
	tgt.AddVertex(1)
	tgt.AddVertex(2)
	tgt.AddVertex(3)
	tgt.AddEdge(0, 1)
	tgt.AddEdge(1, 2)
	tgt.AddEdge(0, 2)
	for _, alg := range []Algorithm{VF2, RI, Ullmann} {
		if !SubgraphAlg(p, tgt, alg) {
			t.Errorf("%v rejected non-induced embedding", alg)
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	empty := graph.New(0)
	tgt := pathGraph(1, 2)
	for _, alg := range []Algorithm{VF2, RI, Ullmann} {
		if !SubgraphAlg(empty, tgt, alg) {
			t.Errorf("%v: empty pattern should embed everywhere", alg)
		}
	}
	if !Subgraph(empty, graph.New(0)) {
		t.Error("empty into empty")
	}
	if Subgraph(tgt, empty) {
		t.Error("nonempty pattern embedded into empty target")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// two isolated labeled vertices; target has only one vertex per label
	p := graph.New(2)
	p.AddVertex(1)
	p.AddVertex(1)
	tgt1 := pathGraph(1) // single vertex: cannot host two
	if Subgraph(p, tgt1) {
		t.Error("injectivity violated")
	}
	tgt2 := graph.New(2)
	tgt2.AddVertex(1)
	tgt2.AddVertex(1)
	if !Subgraph(p, tgt2) {
		t.Error("two isolated vertices should embed into two")
	}
	// disconnected pattern with edges
	p2 := graph.New(4)
	p2.AddVertex(1)
	p2.AddVertex(2)
	p2.AddVertex(3)
	p2.AddVertex(4)
	p2.AddEdge(0, 1)
	p2.AddEdge(2, 3)
	tgt3 := pathGraph(1, 2, 3, 4)
	if !Subgraph(p2, tgt3) {
		t.Error("disconnected pattern should embed into path")
	}
}

func TestFindEmbeddingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		tgt := randomGraph(rng, 8+rng.Intn(6), 0.35, 3)
		p := randomConnectedSubgraph(rng, tgt, 2+rng.Intn(4))
		m := FindEmbedding(p, tgt)
		if m == nil {
			t.Fatalf("trial %d: planted pattern not found", trial)
		}
		// verify the embedding
		seen := map[int]bool{}
		for u, v := range m {
			if seen[v] {
				t.Fatalf("trial %d: embedding not injective", trial)
			}
			seen[v] = true
			if p.Label(u) != tgt.Label(v) {
				t.Fatalf("trial %d: label mismatch", trial)
			}
		}
		bad := false
		p.Edges(func(a, b int) {
			if !tgt.HasEdge(m[a], m[b]) {
				bad = true
			}
		})
		if bad {
			t.Fatalf("trial %d: embedding drops an edge", trial)
		}
	}
}

func TestCountEmbeddings(t *testing.T) {
	// edge with two same labels into triangle of same labels:
	// 3 edges × 2 directions = 6 embeddings
	edge := pathGraph(1, 1)
	tri := cycleGraph(1, 1, 1)
	if got := CountEmbeddings(edge, tri, 0); got != 6 {
		t.Errorf("edge->triangle embeddings = %d, want 6", got)
	}
	if got := CountEmbeddings(edge, tri, 4); got != 4 {
		t.Errorf("limited count = %d, want 4", got)
	}
	// distinct labels kill symmetry: path(1,2) into triangle(1,2,3): 1
	if got := CountEmbeddings(pathGraph(1, 2), cycleGraph(1, 2, 3), 0); got != 1 {
		t.Errorf("labeled edge embeddings = %d, want 1", got)
	}
}

func TestEnumerateEmbeddingsStops(t *testing.T) {
	edge := pathGraph(1, 1)
	tri := cycleGraph(1, 1, 1)
	calls := 0
	EnumerateEmbeddings(edge, tri, func(m []int32) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("enumeration did not stop at 2, got %d", calls)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		tgt := randomGraph(rng, 3+rng.Intn(6), 0.4, 2+rng.Intn(2))
		pat := randomGraph(rng, 1+rng.Intn(4), 0.5, 2+rng.Intn(2))
		want := bruteForceExists(pat, tgt)
		for _, alg := range []Algorithm{VF2, RI, Ullmann} {
			if got := SubgraphAlg(pat, tgt, alg); got != want {
				t.Fatalf("trial %d: %v=%v brute=%v\npat=%s\ntgt=%s",
					trial, alg, got, want, graph.DOT(pat), graph.DOT(tgt))
			}
		}
	}
}

func TestPlantedAlwaysFound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tgt := randomGraph(rng, 6+rng.Intn(10), 0.3, 4)
		pat := randomConnectedSubgraph(rng, tgt, 2+rng.Intn(5))
		for _, alg := range []Algorithm{VF2, RI, Ullmann} {
			if !SubgraphAlg(pat, tgt, alg) {
				t.Fatalf("trial %d: %v missed planted subgraph", trial, alg)
			}
		}
	}
}

func TestIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		g := randomGraph(rng, n, 0.4, 3)
		// permuted copy
		perm := rng.Perm(n)
		h := graph.New(n)
		for i := 0; i < n; i++ {
			h.AddVertex(0)
		}
		for i := 0; i < n; i++ {
			h.SetLabel(perm[i], g.Label(i))
		}
		g.Edges(func(u, v int) { h.AddEdge(perm[u], perm[v]) })
		if !Isomorphic(g, h) {
			t.Fatalf("trial %d: isomorphic pair rejected", trial)
		}
	}
	// non-isomorphic: path vs star (same degree histogram? no; use C4 vs P4+edge)
	c4 := cycleGraph(1, 1, 1, 1)
	p4 := pathGraph(1, 1, 1, 1)
	if Isomorphic(c4, p4) {
		t.Error("C4 and P4 declared isomorphic")
	}
	// same counts different structure: C6 vs two triangles
	c6 := cycleGraph(1, 1, 1, 1, 1, 1)
	twoTri := graph.New(6)
	for i := 0; i < 6; i++ {
		twoTri.AddVertex(1)
	}
	twoTri.AddEdge(0, 1)
	twoTri.AddEdge(1, 2)
	twoTri.AddEdge(0, 2)
	twoTri.AddEdge(3, 4)
	twoTri.AddEdge(4, 5)
	twoTri.AddEdge(3, 5)
	if Isomorphic(c6, twoTri) {
		t.Error("C6 and 2×C3 declared isomorphic")
	}
}

func TestStatsPopulated(t *testing.T) {
	pat := pathGraph(1, 1, 1)
	tgt := cycleGraph(1, 1, 1, 1)
	for _, alg := range []Algorithm{VF2, RI, Ullmann} {
		ok, st := SubgraphStats(pat, tgt, alg)
		if !ok || st.Assignments == 0 {
			t.Errorf("%v stats: ok=%v assignments=%d", alg, ok, st.Assignments)
		}
	}
}

func TestSubgraphConnectedComponents(t *testing.T) {
	// target: triangle(1,1,1) ∪ path(2,2); pattern: edge(2,2) lives only in
	// the second component.
	tgt := graph.New(5)
	tgt.AddVertex(1)
	tgt.AddVertex(1)
	tgt.AddVertex(1)
	tgt.AddVertex(2)
	tgt.AddVertex(2)
	tgt.AddEdge(0, 1)
	tgt.AddEdge(1, 2)
	tgt.AddEdge(0, 2)
	tgt.AddEdge(3, 4)
	pat := pathGraph(2, 2)
	comps := tgt.ConnectedComponents()
	if !SubgraphConnectedComponents(pat, tgt, comps) {
		t.Error("component-restricted search missed embedding")
	}
	pat2 := pathGraph(1, 2)
	if SubgraphConnectedComponents(pat2, tgt, comps) {
		t.Error("cross-component pattern falsely embedded")
	}
}

func TestAlgorithmString(t *testing.T) {
	if VF2.String() != "VF2" || RI.String() != "RI" || Ullmann.String() != "Ullmann" {
		t.Error("Algorithm.String broken")
	}
	if Algorithm(99).String() != "unknown" {
		t.Error("unknown algorithm name")
	}
}

func TestLabelHistogramPruning(t *testing.T) {
	// pattern needs two label-7 vertices, target has one: must refuse fast
	p := graph.New(2)
	p.AddVertex(7)
	p.AddVertex(7)
	p.AddEdge(0, 1)
	tgt := graph.New(3)
	tgt.AddVertex(7)
	tgt.AddVertex(1)
	tgt.AddVertex(1)
	tgt.AddEdge(0, 1)
	tgt.AddEdge(1, 2)
	for _, alg := range []Algorithm{VF2, RI, Ullmann} {
		if SubgraphAlg(p, tgt, alg) {
			t.Errorf("%v embedded label-count-infeasible pattern", alg)
		}
	}
}

func BenchmarkVF2SmallSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tgt := randomGraph(rng, 40, 0.08, 6)
	pat := randomConnectedSubgraph(rng, tgt, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Subgraph(pat, tgt)
	}
}

func BenchmarkUllmannSmallSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tgt := randomGraph(rng, 40, 0.08, 6)
	pat := randomConnectedSubgraph(rng, tgt, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SubgraphAlg(pat, tgt, Ullmann)
	}
}
