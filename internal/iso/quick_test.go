package iso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// graphSpec is a quick-generatable description of a random graph pair.
type graphSpec struct {
	SeedT, SeedP int64
	NT, NP       uint8
	Dense        bool
}

func (gs graphSpec) build() (pat, tgt *graph.Graph) {
	pt := 0.35
	if gs.Dense {
		pt = 0.6
	}
	tgt = specGraph(gs.SeedT, 3+int(gs.NT%6), pt, 2)
	pat = specGraph(gs.SeedP, 1+int(gs.NP%4), 0.5, 2)
	return pat, tgt
}

func specGraph(seed int64, n int, p float64, labels int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// TestQuickEnginesAgree: all three engines and the brute-force oracle agree
// on arbitrary inputs (property-based form of the engine conformance test).
func TestQuickEnginesAgree(t *testing.T) {
	f := func(gs graphSpec) bool {
		pat, tgt := gs.build()
		want := bruteForceExists(pat, tgt)
		return SubgraphAlg(pat, tgt, VF2) == want &&
			SubgraphAlg(pat, tgt, RI) == want &&
			SubgraphAlg(pat, tgt, Ullmann) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickReflexiveAndMonotone: every graph embeds into itself, and adding
// a fresh vertex to the target preserves any embedding.
func TestQuickReflexiveAndMonotone(t *testing.T) {
	f := func(gs graphSpec) bool {
		pat, _ := gs.build()
		if !Subgraph(pat, pat) {
			return false
		}
		bigger := pat.Clone()
		bigger.AddVertex(99)
		return Subgraph(pat, bigger)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransitivity: planted chains a ⊆ b ⊆ c imply a ⊆ c.
func TestQuickTransitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := specGraph(seed, 8, 0.4, 3)
		orderB := c.BFSOrder(rng.Intn(8))
		if len(orderB) > 6 {
			orderB = orderB[:6]
		}
		b, _ := c.InducedSubgraph(orderB)
		orderA := b.BFSOrder(0)
		if len(orderA) > 3 {
			orderA = orderA[:3]
		}
		a, _ := b.InducedSubgraph(orderA)
		// a ⊆ b and b ⊆ c hold by construction; a ⊆ c must follow
		return Subgraph(a, b) && Subgraph(b, c) && Subgraph(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRISmallSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tgt := randomGraph(rng, 40, 0.08, 6)
	pat := randomConnectedSubgraph(rng, tgt, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SubgraphAlg(pat, tgt, RI)
	}
}
