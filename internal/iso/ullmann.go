package iso

import (
	"repro/internal/graph"
)

// Ullmann's algorithm (J. ACM 1976), the classic matrix formulation the
// paper cites as the root of most subgraph isomorphism algorithms [39].
//
// A boolean candidate matrix M (|V(P)| × |V(T)|) starts with M[i][j] = 1
// when pattern vertex i may map to target vertex j (label equal, degree
// compatible). The search assigns rows in order, and after each tentative
// assignment applies Ullmann's refinement: M[i][j] survives only if every
// pattern neighbour x of i retains some candidate among j's target
// neighbours. Refinement iterates to a fixpoint; an empty row refutes the
// branch. Rows are bitsets for cache-friendly AND/test operations.

type ullmannState struct {
	p, t    *graph.Graph
	words   int        // words per row
	tAdj    [][]uint64 // target adjacency bitsets
	labeled bool       // either graph carries edge labels
	tAdjLab map[adjKey][]uint64
	used    []uint64 // target column usage bitset
	stats   *Stats
}

// adjKey addresses the per-(target vertex, edge label) adjacency bitsets
// used when refining labeled-edge instances.
type adjKey struct {
	v int32
	l graph.Label
}

// adjSet returns the bitset of target neighbours of j reachable via edges
// labeled l (the plain adjacency when the instance is unlabeled).
func (s *ullmannState) adjSet(j int, l graph.Label) []uint64 {
	if !s.labeled {
		return s.tAdj[j]
	}
	return s.tAdjLab[adjKey{int32(j), l}]
}

func ullmannExists(p, t *graph.Graph, st *Stats) bool {
	np, nt := p.NumVertices(), t.NumVertices()
	if np == 0 {
		return true
	}
	if np > nt || p.NumEdges() > t.NumEdges() {
		return false
	}
	tc := t.LabelCounts()
	for l, c := range p.LabelCounts() {
		if tc[l] < c {
			return false
		}
	}
	words := (nt + 63) / 64
	s := &ullmannState{
		p:     p,
		t:     t,
		words: words,
		tAdj:  make([][]uint64, nt),
		used:  make([]uint64, words),
		stats: st,
	}
	s.labeled = p.HasEdgeLabels() || t.HasEdgeLabels()
	if s.labeled {
		s.tAdjLab = make(map[adjKey][]uint64)
	}
	for j := 0; j < nt; j++ {
		row := make([]uint64, words)
		for _, w := range t.Neighbors(j) {
			row[w/64] |= 1 << (uint(w) % 64)
			if s.labeled {
				k := adjKey{int32(j), t.EdgeLabel(j, int(w))}
				lr := s.tAdjLab[k]
				if lr == nil {
					lr = make([]uint64, words)
					s.tAdjLab[k] = lr
				}
				lr[w/64] |= 1 << (uint(w) % 64)
			}
		}
		s.tAdj[j] = row
	}
	rows := make([][]uint64, np)
	for i := 0; i < np; i++ {
		row := make([]uint64, words)
		for j := 0; j < nt; j++ {
			if p.Label(i) == t.Label(j) && t.Degree(j) >= p.Degree(i) {
				row[j/64] |= 1 << (uint(j) % 64)
			}
		}
		if bitsEmpty(row) {
			return false
		}
		rows[i] = row
	}
	if !s.refine(rows) {
		return false
	}
	return s.search(0, rows)
}

// refine applies Ullmann's neighbourhood-consistency rule until fixpoint.
// rows must hold one row per pattern vertex (absolute indexing). Returns
// false if some row becomes empty.
func (s *ullmannState) refine(rows [][]uint64) bool {
	np := s.p.NumVertices()
	nt := s.t.NumVertices()
	changed := true
	for changed {
		changed = false
		for i := 0; i < np; i++ {
			row := rows[i]
			for j := 0; j < nt; j++ {
				if row[j/64]&(1<<(uint(j)%64)) == 0 {
					continue
				}
				// every pattern neighbour x of i must have a candidate
				// among the target neighbours of j (via a matching-label
				// edge when the instance is labeled)
				ok := true
				for _, x := range s.p.Neighbors(i) {
					if !bitsIntersect(rows[x], s.adjSet(j, s.p.EdgeLabel(i, int(x)))) {
						ok = false
						break
					}
				}
				if !ok {
					row[j/64] &^= 1 << (uint(j) % 64)
					changed = true
				}
			}
			if bitsEmpty(row) {
				return false
			}
		}
	}
	return true
}

// search assigns pattern row i to some unused candidate column, copying and
// re-refining the candidate matrix per branch (the textbook formulation;
// quadratic copies are acceptable for a baseline engine).
func (s *ullmannState) search(i int, rows [][]uint64) bool {
	if i == s.p.NumVertices() {
		return true
	}
	row := rows[i]
	for w := 0; w < s.words; w++ {
		avail := row[w] &^ s.used[w]
		for avail != 0 {
			bit := avail & (-avail)
			avail &^= bit
			if s.stats != nil {
				s.stats.Assignments++
			}
			next := make([][]uint64, len(rows))
			for k := range rows {
				next[k] = append([]uint64(nil), rows[k]...)
			}
			// fix row i to the single column, remove it from other rows
			for x := range next[i] {
				next[i][x] = 0
			}
			next[i][w] = bit
			okBranch := true
			for k := range next {
				if k == i {
					continue
				}
				next[k][w] &^= bit
				if bitsEmpty(next[k]) {
					okBranch = false
					break
				}
			}
			if okBranch && s.refine(next) {
				s.used[w] |= bit
				if s.search(i+1, next) {
					return true
				}
				s.used[w] &^= bit
			}
			if s.stats != nil {
				s.stats.Backtracks++
			}
		}
	}
	return false
}

func bitsEmpty(b []uint64) bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func bitsIntersect(a, b []uint64) bool {
	if b == nil {
		return false // absent labeled-adjacency set: no such edges at all
	}
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}
