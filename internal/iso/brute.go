package iso

import (
	"repro/internal/graph"
)

// bruteForceExists decides pattern ⊆ target by unpruned enumeration of
// injective label-respecting vertex assignments. Exponential; it exists as
// the independent ground-truth oracle for the property tests of the two
// real engines and for the brute-force query answering used by the index
// tests. Exported within the module via Reference().
func bruteForceExists(p, t *graph.Graph) bool {
	np, nt := p.NumVertices(), t.NumVertices()
	if np == 0 {
		return true
	}
	if np > nt {
		return false
	}
	mapping := make([]int, np)
	used := make([]bool, nt)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == np {
			return true
		}
		for c := 0; c < nt; c++ {
			if used[c] || p.Label(i) != t.Label(c) {
				continue
			}
			ok := true
			for _, w := range p.Neighbors(i) {
				if int(w) < i && (!t.HasEdge(c, mapping[w]) ||
					p.EdgeLabel(i, int(w)) != t.EdgeLabel(c, mapping[w])) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[i] = c
			used[c] = true
			if rec(i + 1) {
				return true
			}
			used[c] = false
		}
		return false
	}
	return rec(0)
}

// Reference reports pattern ⊆ target using the brute-force oracle. Only
// suitable for small graphs; used by tests across the module.
func Reference(pattern, target *graph.Graph) bool {
	return bruteForceExists(pattern, target)
}
