// Package iso implements exact subgraph isomorphism (monomorphism) testing
// for labeled undirected graphs — the verification-stage workhorse of every
// filter-then-verify graph query method in the paper.
//
// Semantics follow Definition 2 of the paper: pattern P is subgraph-
// isomorphic to target T (P ⊆ T) iff there is an injection φ: V(P) → V(T)
// with l(u) = l(φ(u)) for every vertex and (φ(u), φ(v)) ∈ E(T) for every
// (u, v) ∈ E(P). The embedding is NOT required to be induced: T may have
// extra edges among the image vertices. This is the semantics used by
// GraphGrepSX, Grapes and CT-Index, whose verification stages the paper
// builds on.
//
// Three engines are provided, mirroring the verification landscape of the
// paper's baselines:
//
//   - VF2 (Cordella et al. [9]): incremental core expansion with
//     terminal-set ("frontier") look-ahead pruning, relaxed soundly for
//     monomorphism. Used by GGSX and (modified) by CT-Index; the default.
//   - RI (Bonnici et al.): static GreatestConstraintFirst variable ordering
//     with parent-directed candidate generation and lightweight live
//     checks — the matcher inside Grapes.
//   - Ullmann [39]: the classic matrix-refinement algorithm, kept as the
//     historical baseline and for ablation benchmarks.
//
// All searches stop at the first embedding unless asked to enumerate, which
// matches the paper's alteration of Grapes ("stop query processing when the
// first match was found").
package iso

import (
	"repro/internal/graph"
)

// Algorithm selects the subgraph isomorphism engine.
type Algorithm int

const (
	// VF2 is the default terminal-set engine (the paper's most-used choice).
	VF2 Algorithm = iota
	// RI is the static-ordering engine used by Grapes.
	RI
	// Ullmann is the classic matrix-refinement algorithm.
	Ullmann
)

// String returns the engine name.
func (a Algorithm) String() string {
	switch a {
	case VF2:
		return "VF2"
	case RI:
		return "RI"
	case Ullmann:
		return "Ullmann"
	default:
		return "unknown"
	}
}

// Stats accumulates search-effort counters for a single test. The recursion
// count is the number of (pattern-vertex, target-vertex) assignments tried;
// it is the hardware-independent proxy for verification effort used in
// ablation experiments.
type Stats struct {
	Assignments int64 // candidate pair assignments attempted
	Backtracks  int64 // assignments undone
}

// Subgraph reports whether pattern ⊆ target using the VF2 engine.
func Subgraph(pattern, target *graph.Graph) bool {
	return SubgraphAlg(pattern, target, VF2)
}

// SubgraphAlg reports whether pattern ⊆ target using the chosen engine.
func SubgraphAlg(pattern, target *graph.Graph, alg Algorithm) bool {
	switch alg {
	case Ullmann:
		return ullmannExists(pattern, target, nil)
	case RI:
		return riExists(pattern, target, nil)
	default:
		return vf2Exists(pattern, target, nil)
	}
}

// SubgraphStats is Subgraph with effort counters.
func SubgraphStats(pattern, target *graph.Graph, alg Algorithm) (bool, Stats) {
	var st Stats
	var ok bool
	switch alg {
	case Ullmann:
		ok = ullmannExists(pattern, target, &st)
	case RI:
		ok = riExists(pattern, target, &st)
	default:
		ok = vf2Exists(pattern, target, &st)
	}
	return ok, st
}

// FindEmbedding returns one embedding of pattern into target as a slice
// mapping pattern vertex → target vertex, or nil if none exists.
func FindEmbedding(pattern, target *graph.Graph) []int {
	var out []int
	enumerate(pattern, target, 1, func(m []int32) bool {
		out = make([]int, len(m))
		for i, v := range m {
			out[i] = int(v)
		}
		return false
	})
	return out
}

// CountEmbeddings counts distinct embeddings (vertex mappings) of pattern
// into target, up to limit (limit <= 0 means unlimited). Automorphic images
// count separately, as each is a distinct injection.
func CountEmbeddings(pattern, target *graph.Graph, limit int) int {
	n := 0
	enumerate(pattern, target, limit, func([]int32) bool {
		n++
		return limit <= 0 || n < limit
	})
	return n
}

// EnumerateEmbeddings calls fn for each embedding until fn returns false or
// the search space is exhausted. The mapping slice is reused between calls;
// callers must copy it if they retain it.
func EnumerateEmbeddings(pattern, target *graph.Graph, fn func(mapping []int32) bool) {
	enumerate(pattern, target, 0, fn)
}

// Isomorphic reports whether a and b are isomorphic labeled graphs.
//
// With equal vertex counts an injection is a bijection, and with equal edge
// counts an edge-preserving bijection is edge-bijective, so monomorphism in
// one direction plus equal counts decides isomorphism. This is exactly the
// paper's §4.3 identical-query detection rule (g ⊆ G with equal node and
// edge counts).
func Isomorphic(a, b *graph.Graph) bool {
	if !graph.SameSignature(a, b) {
		return false
	}
	return vf2Exists(a, b, nil)
}

// SubgraphConnectedComponents reports whether pattern ⊆ target, restricting
// the search to the given target components. Testing each connected
// component of a (possibly disconnected) pattern independently is NOT sound
// in general (components could collide on target vertices), so this helper
// exists for the common case where the caller knows the pattern is
// connected — the Grapes verification strategy, hence the RI engine. comps
// lists target vertex sets; the pattern is matched against each induced
// component until one embeds it.
func SubgraphConnectedComponents(pattern, target *graph.Graph, comps [][]int) bool {
	for _, comp := range comps {
		if len(comp) < pattern.NumVertices() {
			continue
		}
		sub, _ := target.InducedSubgraph(comp)
		if riExists(pattern, sub, nil) {
			return true
		}
	}
	return false
}
