package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index/grapes"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Ablation experiments for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they isolate (a) the contribution of each iGQ
// knowledge path and (b) the utility replacement policy of §5.1 against
// traditional alternatives.

func init() {
	register(Experiment{
		ID:    "ablation-paths",
		Title: "Ablation: Isub-only vs Isuper-only vs both (PDBS/Grapes(6))",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			spec := scaledPDBS(cfg)
			db := dataset.Generate(spec)
			m := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
			m.Build(db)
			cacheC, cacheW := sparseCache(cfg)
			qs := workload.Generate(db, workload.Spec{
				NumQueries: sparseWorkloadLen(cfg),
				GraphDist:  workload.Zipf, NodeDist: workload.Zipf,
				Alpha: 1.4, Seed: cfg.Seed + 8000,
			})
			variants := []struct {
				name string
				opt  core.Options
			}{
				{"both paths", core.Options{CacheSize: cacheC, Window: cacheW}},
				{"Isub only", core.Options{CacheSize: cacheC, Window: cacheW, DisableSuper: true}},
				{"Isuper only", core.Options{CacheSize: cacheC, Window: cacheW, DisableSub: true}},
			}
			tb := stats.NewTable("variant", "isotest.speedup", "time.speedup")
			for _, v := range variants {
				pr := runPair(m, db, qs, cacheW, v.opt)
				tb.AddRowf(v.name, pr.isoTestSpeedup(), pr.timeSpeedup())
			}
			fmt.Fprint(w, tb)
			fmt.Fprintln(w, "\nExpectation: each path contributes; together they dominate —")
			fmt.Fprintln(w, "the paper's case for indexing both directions.")
			return nil
		},
	})
}

func init() {
	register(Experiment{
		ID:    "ablation-eviction",
		Title: "Ablation: utility vs FIFO vs popularity eviction (PDBS/Grapes(6))",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			spec := scaledPDBS(cfg)
			db := dataset.Generate(spec)
			m := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
			m.Build(db)
			// small cache + long workload: eviction quality matters most
			cacheC, cacheW := sparseCache(cfg)
			cacheC /= 2
			if cacheC < cacheW {
				cacheC = cacheW
			}
			qs := workload.Generate(db, workload.Spec{
				NumQueries: cfg.scaled(600, 200),
				GraphDist:  workload.Zipf, NodeDist: workload.Zipf,
				Alpha: 1.4, Seed: cfg.Seed + 9000,
			})
			tb := stats.NewTable("policy", "isotest.speedup", "time.speedup")
			for _, v := range []struct {
				name string
				pol  core.EvictionPolicy
			}{
				{"utility (paper §5.1)", core.UtilityEviction},
				{"FIFO", core.FIFOEviction},
				{"popularity H/M", core.PopularityEviction},
			} {
				pr := runPair(m, db, qs, cacheW, core.Options{
					CacheSize: cacheC, Window: cacheW, Eviction: v.pol,
				})
				tb.AddRowf(v.name, pr.isoTestSpeedup(), pr.timeSpeedup())
			}
			fmt.Fprint(w, tb)
			fmt.Fprintln(w, "\nExpectation: utility eviction retains the entries that prune the")
			fmt.Fprintln(w, "most expensive tests, beating recency- and popularity-only policies.")
			return nil
		},
	})
}
