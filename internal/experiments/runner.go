package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/stats"
	"repro/internal/workload"
)

// queryMetrics captures one query's execution under either pipeline.
type queryMetrics struct {
	SizeClass  int // workload target size (Q4..Q20)
	Candidates int // candidate-set size presented for verification
	Answers    int
	FalsePos   int
	IsoTests   int   // dataset subgraph isomorphism tests performed
	FilterNs   int64 // filtering (index probe) time
	VerifyNs   int64 // verification time
	TotalNs    int64 // end-to-end query time
}

// runBaseline executes the plain filter-then-verify pipeline of m over the
// queries, collecting per-query metrics.
func runBaseline(m index.Method, qs []workload.Query) []queryMetrics {
	out := make([]queryMetrics, 0, len(qs))
	for _, q := range qs {
		var qm queryMetrics
		qm.SizeClass = q.Target
		t0 := time.Now()
		cs := m.Filter(q.G)
		tFilter := time.Now()
		for _, id := range cs {
			if m.Verify(q.G, id) {
				qm.Answers++
			}
		}
		tEnd := time.Now()
		qm.Candidates = len(cs)
		qm.IsoTests = len(cs)
		qm.FalsePos = len(cs) - qm.Answers
		qm.FilterNs = tFilter.Sub(t0).Nanoseconds()
		qm.VerifyNs = tEnd.Sub(tFilter).Nanoseconds()
		qm.TotalNs = tEnd.Sub(t0).Nanoseconds()
		out = append(out, qm)
	}
	return out
}

// runIGQ executes the iGQ pipeline over the queries, collecting metrics.
func runIGQ(ig *core.IGQ, qs []workload.Query) []queryMetrics {
	out := make([]queryMetrics, 0, len(qs))
	for _, q := range qs {
		t0 := time.Now()
		o := ig.Query(q.G)
		total := time.Since(t0)
		out = append(out, queryMetrics{
			SizeClass:  q.Target,
			Candidates: o.FinalCandidates,
			Answers:    len(o.Answer),
			FalsePos:   o.FinalCandidates - o.Verified,
			IsoTests:   o.DatasetIsoTests,
			FilterNs:   o.FilterDur.Nanoseconds(),
			VerifyNs:   o.VerifyDur.Nanoseconds(),
			TotalNs:    total.Nanoseconds(),
		})
	}
	return out
}

// pairResult holds the measured (post-warm-up) portions of a baseline run
// and an iGQ run over the same workload.
type pairResult struct {
	Base []queryMetrics
	IGQ  []queryMetrics
}

// runPair runs the workload through M alone and through iGQ(M), measuring
// only the queries after the warm-up prefix (the paper uses the first W
// queries to warm the query index).
func runPair(m index.Method, db []*graph.Graph, qs []workload.Query, warmup int, copt core.Options) pairResult {
	if warmup > len(qs) {
		warmup = len(qs)
	}
	ig := core.New(m, db, copt)
	for _, q := range qs[:warmup] {
		ig.Query(q.G)
	}
	igqMetrics := runIGQ(ig, qs[warmup:])
	baseMetrics := runBaseline(m, qs[warmup:])
	return pairResult{Base: baseMetrics, IGQ: igqMetrics}
}

// speedup metrics over a pairResult, following the paper's definition:
// ratio of the average performance of M over the average performance of
// iGQ M.

func avgOf(ms []queryMetrics, f func(queryMetrics) float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	var s float64
	for _, m := range ms {
		s += f(m)
	}
	return s / float64(len(ms))
}

// isoTestSpeedup is the Figs 7–11 metric.
func (p pairResult) isoTestSpeedup() float64 {
	return stats.Ratio(
		avgOf(p.Base, func(m queryMetrics) float64 { return float64(m.IsoTests) }),
		avgOf(p.IGQ, func(m queryMetrics) float64 { return float64(m.IsoTests) }),
	)
}

// timeSpeedup is the Figs 12–17 metric.
func (p pairResult) timeSpeedup() float64 {
	return stats.Ratio(
		avgOf(p.Base, func(m queryMetrics) float64 { return float64(m.TotalNs) }),
		avgOf(p.IGQ, func(m queryMetrics) float64 { return float64(m.TotalNs) }),
	)
}

// bySize partitions a pairResult by query size class.
func (p pairResult) bySize() map[int]pairResult {
	out := map[int]pairResult{}
	for _, m := range p.Base {
		r := out[m.SizeClass]
		r.Base = append(r.Base, m)
		out[m.SizeClass] = r
	}
	for _, m := range p.IGQ {
		r := out[m.SizeClass]
		r.IGQ = append(r.IGQ, m)
		out[m.SizeClass] = r
	}
	return out
}
