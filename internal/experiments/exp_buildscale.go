package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/stats"
)

// Extension experiment (beyond the paper's figures): parallel index builds
// over the sharded postings store. For each build-worker count the two path
// methods rebuild the same dataset index; the table reports wall-clock and
// speedup versus the sequential build, and checks that every width produces
// a byte-for-byte identical index (the deterministic per-shard merge
// guarantee — same SizeBytes is a strong proxy, since it folds node counts,
// postings and location lists).
func init() {
	register(Experiment{
		ID:    "buildscale",
		Title: "Index build wall-clock vs build workers (sharded store, extension)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			// PDBS character (few, larger graphs) gives each worker
			// meaningful per-graph work; scale the count up a little so
			// there is enough to distribute.
			spec := scaledPDBS(cfg)
			spec.NumGraphs *= 2
			db := dataset.Generate(spec)

			maxW := cfg.BuildWorkers
			if maxW <= 0 {
				maxW = runtime.GOMAXPROCS(0)
			}
			var widths []int
			for k := 1; k <= maxW; k *= 2 {
				widths = append(widths, k)
			}
			if last := widths[len(widths)-1]; last != maxW {
				widths = append(widths, maxW)
			}

			build := func(kind string, workers int) (index.Method, time.Duration) {
				var m index.Method
				switch kind {
				case "GGSX":
					m = ggsx.New(ggsx.Options{MaxPathLen: 4, Shards: cfg.Shards, BuildWorkers: workers})
				default:
					m = grapes.New(grapes.Options{MaxPathLen: 4, Shards: cfg.Shards, BuildWorkers: workers})
				}
				t0 := time.Now()
				m.Build(db)
				return m, time.Since(t0)
			}

			tb := stats.NewTable("workers", "GGSX build", "speedup", "Grapes build", "speedup", "index")
			var ggsxBase, grapesBase time.Duration
			var ggsxSize, grapesSize int
			for _, k := range widths {
				mg, dg := build("GGSX", k)
				mp, dp := build("Grapes", k)
				if k == 1 {
					ggsxBase, grapesBase = dg, dp
					ggsxSize, grapesSize = mg.SizeBytes(), mp.SizeBytes()
				}
				identical := "identical"
				if mg.SizeBytes() != ggsxSize || mp.SizeBytes() != grapesSize {
					identical = "DIVERGED"
				}
				tb.AddRowf(k, dg, float64(ggsxBase)/float64(dg), dp, float64(grapesBase)/float64(dp), identical)
				if cfg.Verbose {
					fmt.Fprintf(w, "  %d workers: ggsx=%v grapes=%v\n", k, dg, dp)
				}
			}
			fmt.Fprintf(w, "Parallel index construction, %s ×2 (%d graphs), shards=%d:\n%s",
				spec.Name, len(db), cfg.Shards, tb)
			fmt.Fprintf(w, "\nExpected shape: build wall-clock decreases as workers grow (toward the core count,\nGOMAXPROCS=%d here); the index column must stay 'identical' at every width —\nthe parallel build is bit-identical to the sequential one by construction.\n", runtime.GOMAXPROCS(0))
			return nil
		},
	})
}
