package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	igq "repro"
	"repro/internal/server"
	"repro/internal/stats"
)

// Extension experiment (serving): the network front-end end to end. An
// engine pair (subgraph + supergraph) is served over a real loopback HTTP
// listener and driven by a concurrent mixed workload through both the
// unary and the NDJSON streaming endpoints; the table reports throughput
// and tail latency per phase. The run is a gate, not just a report — it
// fails (non-nil error, so CI can stop on it) if any request errors, any
// wire answer diverges from a direct cache-free engine, or the graceful
// shutdown's snapshot restores to an engine whose answers differ.
func init() {
	register(Experiment{
		ID:    "serving",
		Title: "Network serving: concurrent mixed workload over HTTP, drain + snapshot gate (extension)",
		Run:   runServing,
	})
}

func runServing(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.002*cfg.Scale, 1))
	queries := igq.GenerateWorkload(db, igq.WorkloadSpec{
		NumQueries: cfg.scaled(120, 40),
		GraphDist:  igq.Zipf, NodeDist: igq.Zipf,
		Alpha: 1.4, Seed: cfg.Seed + 11000,
	})
	requests := cfg.scaled(2000, 400)
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}

	opt := igq.EngineOptions{Method: igq.Grapes, CacheSize: 60, Window: 15}
	eng, err := igq.NewEngine(db, opt)
	if err != nil {
		return err
	}
	superOpt := igq.EngineOptions{Supergraph: true, CacheSize: 60, Window: 15}
	superEng, err := igq.NewEngine(db, superOpt)
	if err != nil {
		return err
	}

	// Cache-free oracles; the served engines must agree with them on every
	// request regardless of cache timing.
	subOracle, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, DisableCache: true})
	if err != nil {
		return err
	}
	superOracle, err := igq.NewEngine(db, igq.EngineOptions{Supergraph: true, DisableCache: true})
	if err != nil {
		return err
	}
	ctx := context.Background()
	wantSub := make([][]int32, len(queries))
	wantSuper := make([][]int32, len(queries))
	for i, q := range queries {
		rs, err := subOracle.Query(ctx, q)
		if err != nil {
			return err
		}
		wantSub[i] = rs.IDs
		rp, err := superOracle.Query(ctx, q)
		if err != nil {
			return err
		}
		wantSuper[i] = rp.IDs
	}

	snapDir, err := os.MkdirTemp("", "igq-serving-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(snapDir)
	snapPath := filepath.Join(snapDir, "engine.snap")

	s, err := server.New(server.Config{
		Engine: eng, Super: superEng, SuperOptions: superOpt,
		Workers: workers, SnapshotPath: snapPath,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	client := server.NewClient("http://" + l.Addr().String())

	tb := stats.NewTable("phase", "requests", "errors", "queries/s", "p50", "p99")

	// Phase 1: unary mixed sub/super, `workers` concurrent clients.
	var failures atomic.Int64
	latencies := make([]time.Duration, requests)
	var next atomic.Int64
	t0 := time.Now()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(requests) {
					return
				}
				qi := int(i) % len(queries)
				mode, want := server.ModeSub, wantSub[qi]
				if i%2 == 1 {
					mode, want = server.ModeSuper, wantSuper[qi]
				}
				t := time.Now()
				reply, err := client.QueryGraph(ctx, queries[qi], mode)
				if err != nil || !sameIDs(reply.IDs, want) {
					if cfg.Verbose {
						fmt.Fprintf(w, "request %d (%s): err=%v got=%v want=%v\n", i, mode, err, reply.IDs, want)
					}
					failures.Add(1)
					continue
				}
				latencies[i] = time.Since(t)
			}
		}()
	}
	wg.Wait()
	unaryDur := time.Since(t0)
	p50, p99 := latencyQuantiles(latencies)
	tb.AddRow("unary mixed", fmt.Sprint(requests), fmt.Sprint(failures.Load()),
		fmt.Sprintf("%.0f", float64(requests)/unaryDur.Seconds()), fmtDur(p50), fmtDur(p99))
	if n := failures.Load(); n > 0 {
		fmt.Fprint(w, tb.String())
		return fmt.Errorf("serving: %d unary requests failed or diverged", n)
	}

	// Phase 2: one NDJSON stream carrying every query, answers checked.
	streamReqs := len(queries)
	in := make(chan server.QueryRequest)
	go func() {
		defer close(in)
		for _, q := range queries {
			in <- server.QueryRequest{Graph: server.EncodeGraph(q)}
		}
	}()
	t1 := time.Now()
	replies, errc := client.QueryStream(ctx, server.ModeSub, 0, in)
	streamFail := 0
	answered := 0
	for r := range replies {
		answered++
		if r.Error != "" || r.Index >= len(queries) || !sameIDs(r.IDs, wantSub[r.Index]) {
			streamFail++
		}
	}
	if err := <-errc; err != nil {
		return fmt.Errorf("serving: stream: %w", err)
	}
	streamDur := time.Since(t1)
	tb.AddRow("stream sub", fmt.Sprint(answered), fmt.Sprint(streamFail),
		fmt.Sprintf("%.0f", float64(answered)/streamDur.Seconds()), "-", "-")
	if streamFail > 0 || answered != streamReqs {
		fmt.Fprint(w, tb.String())
		return fmt.Errorf("serving: stream answered %d/%d with %d failures", answered, streamReqs, streamFail)
	}

	// Phase 3: graceful shutdown, then the snapshot must restore an engine
	// answering exactly like the live one did.
	shCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		return fmt.Errorf("serving: shutdown: %w", err)
	}
	if err, ok := <-serveErr; ok && err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serving: serve: %w", err)
	}
	loaded, _, err := igq.LoadEngineFile(snapPath, db, opt)
	if err != nil {
		return fmt.Errorf("serving: restoring shutdown snapshot: %w", err)
	}
	for i, q := range queries {
		res, err := loaded.Query(ctx, q)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.IDs, wantSub[i]) {
			return fmt.Errorf("serving: restored engine diverges on query %d", i)
		}
	}
	tb.AddRow("restored snapshot", fmt.Sprint(len(queries)), "0", "-", "-", "-")
	fmt.Fprint(w, tb.String())
	fmt.Fprintf(w, "gate: %d wire requests + %d streamed + snapshot restore, all answers identical to direct engines\n",
		requests, streamReqs)
	return nil
}

func sameIDs(got, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func latencyQuantiles(all []time.Duration) (p50, p99 time.Duration) {
	ok := make([]time.Duration, 0, len(all))
	for _, d := range all {
		if d > 0 {
			ok = append(ok, d)
		}
	}
	if len(ok) == 0 {
		return 0, 0
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	return ok[int(0.50*float64(len(ok)-1))], ok[int(0.99*float64(len(ok)-1))]
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}
