package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/persistio"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extension experiment (incremental maintenance): appending graphs to a
// served dataset. The static pipeline pays O(dataset) twice — a full
// re-enumeration and a full re-save; the incremental pipeline pays
// O(delta) twice — AppendGraphs inserts only the new graphs' features and
// AppendDelta journals only them to disk. This experiment measures both
// pipelines on the same append and *gates* the expected shape: the
// incremental path must win by at least minIncrementalSpeedup, and the
// journaled snapshot must load back observationally identical to the
// from-scratch rebuild (answers, filter results, SizeBytes) — the run
// errors out on any divergence, so CI can gate on it exactly like the
// coldstart experiment.
func init() {
	register(Experiment{
		ID:    "incremental",
		Title: "Incremental maintenance: append + delta-save vs rebuild + full save (extension)",
		Run:   runIncremental,
	})
}

// minIncrementalSpeedup is the CI gate: (rebuild + full save) must cost at
// least this many times (append + delta save). At bench scale the real
// ratio is an order of magnitude beyond this; the margin absorbs CI noise.
const minIncrementalSpeedup = 5.0

func runIncremental(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	spec := scaledAIDS(cfg)
	spec.NumGraphs *= 2
	all := dataset.Generate(spec)
	// Delta: the trailing 1% of the dataset (at least 4 graphs) arrives
	// after the base snapshot was taken.
	delta := len(all) / 100
	if delta < 4 {
		delta = 4
	}
	base, extra := all[:len(all)-delta], all[len(all)-delta:]
	qs := workload.Generate(all, workload.Spec{
		NumQueries: cfg.scaled(60, 20),
		Sizes:      []int{4, 8},
		Seed:       cfg.Seed * 31,
	})

	snapDir, err := os.MkdirTemp("", "igq-incremental")
	if err != nil {
		return err
	}
	defer os.RemoveAll(snapDir)

	type method struct {
		name  string
		fresh func() index.Persistable
	}
	methods := []method{
		{"GGSX", func() index.Persistable {
			return ggsx.New(ggsx.Options{MaxPathLen: 4, Shards: cfg.Shards, BuildWorkers: cfg.BuildWorkers})
		}},
		{"Grapes", func() index.Persistable {
			return grapes.New(grapes.Options{MaxPathLen: 4, Shards: cfg.Shards, BuildWorkers: cfg.BuildWorkers})
		}},
	}

	tb := stats.NewTable("method", "rebuild+save", "append+delta", "speedup", "snapshot", "journal", "identity")
	for _, m := range methods {
		// Static pipeline: full rebuild over the final dataset + full save.
		rebuilt := m.fresh()
		t0 := time.Now()
		rebuilt.Build(all)
		fullPath := filepath.Join(snapDir, m.name+".full.idx")
		if err := persistio.AtomicWriteFile(fullPath, rebuilt.SaveIndex); err != nil {
			return fmt.Errorf("%s: full save: %w", m.name, err)
		}
		staticDur := time.Since(t0)
		fullInfo, err := os.Stat(fullPath)
		if err != nil {
			return err
		}

		// Incremental pipeline: the base index and its snapshot already
		// exist (that cost was paid long ago); the delta arrives now.
		served := m.fresh()
		served.Build(base)
		deltaPath := filepath.Join(snapDir, m.name+".delta.idx")
		if err := persistio.AtomicWriteFile(deltaPath, served.SaveIndex); err != nil {
			return fmt.Errorf("%s: base save: %w", m.name, err)
		}
		baseInfo, err := os.Stat(deltaPath)
		if err != nil {
			return err
		}

		mu, ok := served.(index.Mutable)
		if !ok {
			return fmt.Errorf("%s: method is not incrementally mutable", m.name)
		}
		t0 = time.Now()
		mutated, newDB, err := mu.AppendGraphs(extra)
		if err != nil {
			return fmt.Errorf("%s: AppendGraphs: %w", m.name, err)
		}
		// persistio.OpenFile hands AppendDelta a file with fsync and
		// atomic-rewrite capability, so the append is durable and a
		// threshold-triggered compaction is crash-safe.
		df, err := persistio.OpenFile(deltaPath)
		if err != nil {
			return err
		}
		err = mutated.(index.DeltaPersistable).AppendDelta(df)
		if cerr := df.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: AppendDelta: %w", m.name, err)
		}
		incDur := time.Since(t0)
		deltaInfo, err := os.Stat(deltaPath)
		if err != nil {
			return err
		}
		if len(newDB) != len(all) {
			return fmt.Errorf("%s: mutated dataset has %d graphs, want %d", m.name, len(newDB), len(all))
		}

		// Differential identity, three ways: live-mutated index, journaled
		// snapshot reload, and the from-scratch rebuild must agree on every
		// query (candidates and answers) and on SizeBytes.
		loaded := m.fresh()
		lf, err := os.Open(deltaPath)
		if err != nil {
			return err
		}
		rep, err := loaded.LoadIndex(lf, newDB)
		lf.Close()
		if err != nil {
			return fmt.Errorf("%s: loading journaled snapshot: %w", m.name, err)
		}
		if rep.RecoveredTail != nil {
			return fmt.Errorf("%s: clean journaled snapshot reported a recovered tail: %+v", m.name, rep.RecoveredTail)
		}
		for i, q := range qs {
			want := rebuilt.Filter(q.G)
			if !reflect.DeepEqual(mutated.Filter(q.G), want) ||
				!reflect.DeepEqual(loaded.Filter(q.G), want) {
				return fmt.Errorf("%s: filter diverges on query %d", m.name, i)
			}
			wantAns := index.Answer(rebuilt, q.G)
			if !reflect.DeepEqual(index.Answer(mutated, q.G), wantAns) ||
				!reflect.DeepEqual(index.Answer(loaded, q.G), wantAns) {
				return fmt.Errorf("%s: answers diverge on query %d", m.name, i)
			}
		}
		if mutated.SizeBytes() != rebuilt.SizeBytes() || loaded.SizeBytes() != rebuilt.SizeBytes() {
			return fmt.Errorf("%s: footprint diverges: mutated %d, loaded %d, rebuilt %d",
				m.name, mutated.SizeBytes(), loaded.SizeBytes(), rebuilt.SizeBytes())
		}

		speedup := float64(staticDur) / float64(incDur)
		tb.AddRowf(m.name, staticDur, incDur, speedup,
			fmt.Sprintf("%d B", fullInfo.Size()),
			fmt.Sprintf("+%d B", deltaInfo.Size()-baseInfo.Size()),
			"identical")
		if speedup < minIncrementalSpeedup {
			return fmt.Errorf("%s: incremental pipeline only %.1f× faster than rebuild (gate: ≥ %.0f×)",
				m.name, speedup, minIncrementalSpeedup)
		}
		if cfg.Verbose {
			fmt.Fprintf(w, "  %s: rebuild+save=%v append+delta=%v (%d new graphs)\n",
				m.name, staticDur, incDur, len(extra))
		}
	}

	fmt.Fprintf(w, "Incremental append of %d graphs onto %s ×2 (%d base graphs, %d differential queries), shards=%d, buildworkers=%d:\n%s",
		len(extra), spec.Name, len(base), len(qs), cfg.Shards, cfg.BuildWorkers, tb)
	fmt.Fprintf(w, "\nExpected shape: the incremental pipeline (AppendGraphs + AppendDelta journal) beats the\nstatic one (full rebuild + full SaveIndex) by ≥ %.0f× — this run errors below that, and on any\ndivergence between the mutated index, the journaled snapshot and a from-scratch rebuild.\n", minIncrementalSpeedup)
	return nil
}
