package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figs 7, 8 (speedup in number of subgraph isomorphism tests) and
// Figs 12, 13 (speedup in query processing time): four workloads × four
// method configurations over AIDS and PDBS, iGQ vs the method alone.
//
// One run computes both metrics; the figure pairs share runners and differ
// only in which column they report.

type speedupCell struct {
	workload string
	method   string
	isoTests float64
	time     float64
}

// runSpeedupGrid executes the 4×4 grid for one dataset spec.
func runSpeedupGrid(cfg Config, spec dataset.Spec) []speedupCell {
	db := dataset.Generate(spec)
	n := sparseWorkloadLen(cfg)
	cacheC, cacheW := sparseCache(cfg)
	var cells []speedupCell
	ms := methodSet()
	buildAll(ms, db)
	for _, m := range ms {
		for _, wspec := range workload.FourWorkloads(n, 1.4, cfg.Seed+3000) {
			qs := workload.Generate(db, wspec)
			pr := runPair(m, db, qs, cacheW, core.Options{
				CacheSize: cacheC, Window: cacheW,
			})
			cells = append(cells, speedupCell{
				workload: wspec.Name(),
				method:   m.Name(),
				isoTests: pr.isoTestSpeedup(),
				time:     pr.timeSpeedup(),
			})
		}
	}
	return cells
}

func speedupTable(cells []speedupCell, metric func(speedupCell) float64) *stats.Table {
	// rows: workloads; columns: methods
	var workloads, methods []string
	seenW, seenM := map[string]bool{}, map[string]bool{}
	for _, c := range cells {
		if !seenW[c.workload] {
			seenW[c.workload] = true
			workloads = append(workloads, c.workload)
		}
		if !seenM[c.method] {
			seenM[c.method] = true
			methods = append(methods, c.method)
		}
	}
	tb := stats.NewTable(append([]string{"workload"}, methods...)...)
	for _, wl := range workloads {
		row := []interface{}{wl}
		for _, m := range methods {
			for _, c := range cells {
				if c.workload == wl && c.method == m {
					row = append(row, metric(c))
				}
			}
		}
		tb.AddRowf(row...)
	}
	return tb
}

func speedupExperiment(id, title, which, metric string) {
	register(Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			var spec dataset.Spec
			if which == "AIDS" {
				spec = scaledAIDS(cfg)
			} else {
				spec = scaledPDBS(cfg)
			}
			cells := runSpeedupGrid(cfg, spec)
			var tb *stats.Table
			if metric == "iso" {
				tb = speedupTable(cells, func(c speedupCell) float64 { return c.isoTests })
				fmt.Fprintf(w, "Speedup in #subgraph-isomorphism tests, %s (iGQ M / M):\n%s", spec.Name, tb)
				fmt.Fprintln(w, "\nPaper shape: speedups well above 1x on every method and workload")
				fmt.Fprintln(w, "(5x-11x at the paper's scale), larger with skewed workloads.")
			} else {
				tb = speedupTable(cells, func(c speedupCell) float64 { return c.time })
				fmt.Fprintf(w, "Speedup in query processing time, %s:\n%s", spec.Name, tb)
				fmt.Fprintln(w, "\nPaper shape: smaller than the iso-test speedups (unpruned large")
				fmt.Fprintln(w, "graphs dominate residual verification). Scale note: with dataset")
				fmt.Fprintln(w, "graphs ~7-60x smaller than the originals, verification is cheap")
				fmt.Fprintln(w, "enough that cache overhead pushes filter-dominated cells below 1x;")
				fmt.Fprintln(w, "the crossover reappears along the cache-size (fig14) and skew")
				fmt.Fprintln(w, "(fig15) axes, and at larger -scale values.")
			}
			return nil
		},
	})
}

func init() {
	speedupExperiment("fig7", "Speedup in #Iso Tests, AIDS (4 workloads x 4 methods)", "AIDS", "iso")
	speedupExperiment("fig8", "Speedup in #Iso Tests, PDBS (4 workloads x 4 methods)", "PDBS", "iso")
	speedupExperiment("fig12", "Speedup in Query Processing Time, AIDS", "AIDS", "time")
	speedupExperiment("fig13", "Speedup in Query Processing Time, PDBS", "PDBS", "time")
}
