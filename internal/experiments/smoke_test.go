package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke coverage for every registered experiment: each must run cleanly at
// a tiny scale and emit a non-trivial table. The cheap set always runs; the
// heavy set (CT-Index builds on PDBS-like graphs, full PDBS grids, dense
// Synthetic groups) is skipped under -short.

func smokeCfg() Config { return Config{Scale: 0.1, Seed: 3} }

func runSmoke(t *testing.T, id string, wants ...string) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(smokeCfg(), &buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) < 40 {
		t.Fatalf("%s: suspiciously short output:\n%s", id, out)
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("%s: output missing %q", id, w)
		}
	}
}

func TestSmokeFig7(t *testing.T)  { runSmoke(t, "fig7", "zipf-zipf", "GGSX", "CT-Index") }
func TestSmokeFig12(t *testing.T) { runSmoke(t, "fig12", "zipf-zipf", "Grapes(6)") }
func TestSmokeFig14(t *testing.T) { runSmoke(t, "fig14", "cache.C", "time.speedup") }
func TestSmokeFig15(t *testing.T) { runSmoke(t, "fig15", "zipf.alpha", "speedup") }
func TestSmokeFig16(t *testing.T) { runSmoke(t, "fig16", "Q4", "whole") }
func TestSmokeAblationEngines(t *testing.T) {
	runSmoke(t, "ablation-engines", "VF2", "RI", "Ullmann")
}
func TestSmokeAblationEviction(t *testing.T) {
	runSmoke(t, "ablation-eviction", "utility", "FIFO", "popularity")
}
func TestSmokeAblationPartition(t *testing.T) {
	runSmoke(t, "ablation-partition", "unified", "partition")
}
func TestSmokeSupergraphSpeedup(t *testing.T) {
	runSmoke(t, "supergraph-speedup", "uni-uni", "isotest.speedup")
}
func TestSmokeServing(t *testing.T) {
	runSmoke(t, "serving", "unary mixed", "stream sub", "restored snapshot", "identical")
}
func TestSmokeContainers(t *testing.T) {
	// A failing perf gate surfaces as a run error, so this smoke also
	// exercises the ≥2× shrink / ≥3× speedup gates at the scaled-down size.
	runSmoke(t, "containers", "dense", "sparse", "shrink", "speedup")
}
func TestSmokeBuildscale(t *testing.T) {
	// runSmoke's substring asserts would be vacuous here: the experiment's
	// footer always contains "identical". Assert the divergence marker is
	// absent instead.
	e, ok := ByID("buildscale")
	if !ok {
		t.Fatal("buildscale not registered")
	}
	var buf bytes.Buffer
	if err := e.Run(smokeCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "workers") {
		t.Fatalf("missing table header:\n%s", out)
	}
	if strings.Contains(out, "DIVERGED") {
		t.Fatalf("parallel build diverged from sequential:\n%s", out)
	}
}

func TestSmokeHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment smoke skipped in -short mode")
	}
	runSmoke(t, "fig1", "filter%", "verify%")
	runSmoke(t, "fig3", "CT-Index", "avg.falsepos")
	runSmoke(t, "fig8", "zipf-zipf")
	runSmoke(t, "fig11", "whole")
	runSmoke(t, "fig13", "Grapes(6)")
	runSmoke(t, "fig17", "Q4")
}
