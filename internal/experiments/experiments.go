// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment is addressable by the paper's figure or
// table number (e.g. "fig7", "table1"), prints an aligned text table with
// the same rows/series the paper plots, and is exercised both by the
// cmd/igqbench CLI and by the repository-level benchmarks.
//
// Scale: the paper's testbeds (512 GB Xeon servers, 40k-graph datasets,
// 3000-query workloads) are replaced by statistically matched scaled-down
// datasets (see package dataset and DESIGN.md). Config.Scale multiplies
// dataset and workload sizes; the default of 1.0 is the CI-friendly bench
// scale. Absolute numbers therefore differ from the paper; the comparisons
// the paper draws (who wins, by what factor, how trends move with skew,
// cache size and query size) are what these runners reproduce.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Scale multiplies dataset graph counts and workload lengths.
	// 1.0 = bench scale (default); larger approaches the paper's scale.
	Scale float64
	// Seed drives all data and workload generation.
	Seed int64
	// Verbose adds per-run progress lines to the output.
	Verbose bool
	// Workers caps the goroutine count of the concurrency experiments
	// (0 = one per runtime.GOMAXPROCS(0)).
	Workers int
	// Shards sets the postings shard count for the sharded-store
	// experiments (0 = trie.DefaultShards()).
	Shards int
	// BuildWorkers caps the index-build goroutine count of the buildscale
	// experiment (0 = one per runtime.GOMAXPROCS(0)).
	BuildWorkers int
	// SaveIndexPath, when set, makes the coldstart experiment keep its
	// index snapshots at this path prefix instead of a temp directory.
	SaveIndexPath string
	// LoadIndexPath, when set, makes the coldstart experiment load
	// pre-built snapshots from this path prefix (written by an earlier run
	// with SaveIndexPath) instead of building first.
	LoadIndexPath string
	// Density, when > 0, makes the containers experiment measure a single
	// membership density instead of its sparse/moderate/dense grid (the
	// exploratory -density knob; the perf gates only apply to the grid).
	Density float64
	// BenchJSONPath, when set, makes the containers experiment write its
	// measured rows and gate verdicts to this file as JSON (the CI
	// BENCH_containers.json artifact).
	BenchJSONPath string
}

// DefaultConfig returns the bench-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42} }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// scaled multiplies n by the scale factor with a floor.
func (c Config) scaled(n int, floor int) int {
	v := int(float64(n) * c.Scale)
	if v < floor {
		v = floor
	}
	return v
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the paper reference: "table1", "fig1", ..., "fig18", or an
	// extension id like "ablation".
	ID string
	// Title is the paper's caption (abridged).
	Title string
	// Run executes the experiment and writes its table(s) to w.
	Run func(cfg Config, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, sorted by ID (tableN first,
// figN numerically).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey maps "table1" before "fig1".."fig18", extensions last.
func orderKey(id string) string {
	var n int
	switch {
	case len(id) > 5 && id[:5] == "table":
		fmt.Sscanf(id[5:], "%d", &n)
		return fmt.Sprintf("0-%02d", n)
	case len(id) > 3 && id[:3] == "fig":
		fmt.Sscanf(id[3:], "%d", &n)
		return fmt.Sprintf("1-%02d", n)
	default:
		return "2-" + id
	}
}

// ByID looks an experiment up by its ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order, separating outputs.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
