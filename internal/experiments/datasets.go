package experiments

import (
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/index/ctindex"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
)

// Bench-scale dataset derivations. Fractions are chosen so every
// experiment completes in seconds at Scale=1 while preserving each
// dataset's character from Table 1:
//
//	AIDS      many, very small, sparse    (full-size graphs, fewer of them)
//	PDBS      few, large, sparse          (graph sizes shrunk 10×)
//	PPI       very few, large, dense      (sizes shrunk, density halved)
//	Synthetic medium count, dense         (sizes shrunk, density halved)
//
// Density halving on the two dense sets is the documented Grapes memory
// wall workaround (DESIGN.md): exhaustive ≤4-edge path enumeration grows
// with degree^4.
func scaledAIDS(cfg Config) dataset.Spec {
	s := dataset.AIDS().Scaled(0.025*cfg.Scale, 1.0)
	s.Seed = cfg.Seed*10 + 1
	return s
}

func scaledPDBS(cfg Config) dataset.Spec {
	s := dataset.PDBS().Scaled(0.15*cfg.Scale, 0.1)
	s.Seed = cfg.Seed*10 + 2
	return s
}

func scaledPPI(cfg Config) dataset.Spec {
	s := dataset.PPI().Scaled(0.5*cfg.Scale, 0.025).WithDegree(0.5)
	s.Seed = cfg.Seed*10 + 3
	return s
}

func scaledSynthetic(cfg Config) dataset.Spec {
	s := dataset.Synthetic().Scaled(0.02*cfg.Scale, 0.06).WithDegree(0.5)
	s.Seed = cfg.Seed*10 + 4
	return s
}

// workload lengths and cache parameters at bench scale, derived from the
// paper's 3000-query/C=500/W=100 (sparse sets) and 500-query/W=20 (dense
// sets) configurations.
func sparseWorkloadLen(cfg Config) int { return cfg.scaled(400, 120) }
func sparseCache(cfg Config) (c, w int) {
	return cfg.scaled(120, 40), cfg.scaled(30, 10)
}

func denseWorkloadLen(cfg Config) int { return cfg.scaled(150, 60) }
func denseCache(cfg Config) (c, w int) {
	return cfg.scaled(40, 20), cfg.scaled(10, 5)
}

// methodSet builds the paper's four method configurations (Fig 7/8/12/13).
func methodSet() []index.Method {
	return []index.Method{
		ggsx.New(ggsx.DefaultOptions()),
		grapes.New(grapes.Options{MaxPathLen: 4, Threads: 1}),
		grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6}),
		ctindex.New(ctindex.DefaultOptions()),
	}
}

// newGrapes6 is the Grapes(6) configuration used across the
// single-method figures.
func newGrapes6() index.Method {
	return grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
}

// threeMethods are the Fig 1–3 insight methods (GGSX, Grapes, CT-Index).
func threeMethods() []index.Method {
	return []index.Method{
		ggsx.New(ggsx.DefaultOptions()),
		grapes.New(grapes.Options{MaxPathLen: 4, Threads: 1}),
		ctindex.New(ctindex.DefaultOptions()),
	}
}

// buildAll builds each method over db (once per experiment).
func buildAll(ms []index.Method, db []*graph.Graph) {
	for _, m := range ms {
		m.Build(db)
	}
}
