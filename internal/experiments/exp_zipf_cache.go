package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index/grapes"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figs 9 and 15: effect of Zipf skew α ∈ {1.1, 1.4, 2.0} on the speedups of
// PDBS/Grapes(6), zipf-zipf workloads. Fig 9 reports iso-test speedup,
// Fig 15 time speedup; one grid serves both.
func runZipfGrid(cfg Config) (map[float64]pairResult, dataset.Spec) {
	spec := scaledPDBS(cfg)
	db := dataset.Generate(spec)
	m := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
	m.Build(db)
	n := sparseWorkloadLen(cfg)
	cacheC, cacheW := sparseCache(cfg)
	out := map[float64]pairResult{}
	for _, alpha := range []float64{1.1, 1.4, 2.0} {
		qs := workload.Generate(db, workload.Spec{
			NumQueries: n,
			GraphDist:  workload.Zipf, NodeDist: workload.Zipf,
			Alpha: alpha, Seed: cfg.Seed + 4000,
		})
		out[alpha] = runPair(m, db, qs, cacheW, core.Options{
			CacheSize: cacheC, Window: cacheW,
		})
	}
	return out, spec
}

func zipfExperiment(id, title, metric string) {
	register(Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			grid, spec := runZipfGrid(cfg)
			tb := stats.NewTable("zipf.alpha", "speedup")
			for _, alpha := range []float64{1.1, 1.4, 2.0} {
				pr := grid[alpha]
				v := pr.isoTestSpeedup()
				if metric == "time" {
					v = pr.timeSpeedup()
				}
				tb.AddRowf(alpha, v)
			}
			fmt.Fprintf(w, "%s, %s/Grapes(6), zipf-zipf:\n%s", title, spec.Name, tb)
			fmt.Fprintln(w, "\nPaper shape: more skew -> more repeated/nested queries -> larger speedup.")
			return nil
		},
	})
}

func init() {
	zipfExperiment("fig9", "Iso-Test Speedup vs Zipf alpha", "iso")
	zipfExperiment("fig15", "Query-Time Speedup vs Zipf alpha", "time")
}

// Fig 14: query-time speedup vs cache size C ∈ {500, 1000, 1500} (scaled),
// PDBS/Grapes(6), longer workload (the paper uses 5000 queries with
// W = C/5).
func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Query-Time Speedup vs Cache Size (PDBS/Grapes(6))",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			spec := scaledPDBS(cfg)
			db := dataset.Generate(spec)
			m := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
			m.Build(db)
			n := cfg.scaled(600, 200)
			qs := workload.Generate(db, workload.Spec{
				NumQueries: n,
				GraphDist:  workload.Zipf, NodeDist: workload.Zipf,
				Alpha: 1.4, Seed: cfg.Seed + 5000,
			})
			base := cfg.scaled(60, 30)
			tb := stats.NewTable("cache.C", "window.W", "time.speedup", "isotest.speedup")
			for _, mult := range []int{1, 2, 3} { // paper's 500/1000/1500 ratio
				c := base * mult
				win := c / 5
				pr := runPair(m, db, qs, win, core.Options{CacheSize: c, Window: win})
				tb.AddRowf(c, win, pr.timeSpeedup(), pr.isoTestSpeedup())
			}
			fmt.Fprintf(w, "%d queries over %s:\n%s", n, spec.Name, tb)
			fmt.Fprintln(w, "\nPaper shape: bigger caches prune more large graphs -> speedup rises with C.")
			return nil
		},
	})
}
