package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/features"
	"repro/internal/index"
	"repro/internal/stats"
	"repro/internal/trie"
)

// Extension experiment (perf): cardinality-adaptive posting containers.
// Reproduces the container redesign's two wins from the CLI and gates them
// the way coldstart/incremental gate persistence: on the dense regime the
// adaptive snapshot must be ≥2× smaller and the intersection ≥3× faster
// than the flat forced-array baseline (interleaved medians on the same
// box), while the sparse regime is reported for parity tracking. With
// -bench-json the measured rows are also written as a JSON artifact so CI
// can archive the perf trajectory.
func init() {
	register(Experiment{
		ID:    "containers",
		Title: "Adaptive posting containers: snapshot shrink + intersection speedup vs flat arrays (perf, extension)",
		Run:   runContainers,
	})
}

const (
	denseSnapshotShrinkMin   = 2.0
	denseIntersectSpeedupMin = 3.0
)

type containersRow struct {
	Regime                string  `json:"regime"`
	Density               float64 `json:"density"`
	MembersPerFeature     int     `json:"members_per_feature"`
	SnapshotAdaptiveBytes int     `json:"snapshot_adaptive_bytes"`
	SnapshotArrayBytes    int     `json:"snapshot_array_bytes"`
	SnapshotShrink        float64 `json:"snapshot_shrink"`
	MemAdaptiveBytes      int     `json:"mem_adaptive_bytes"`
	MemArrayBytes         int     `json:"mem_array_bytes"`
	IntersectAdaptiveNs   float64 `json:"intersect_adaptive_ns"`
	IntersectArrayNs      float64 `json:"intersect_array_ns"`
	IntersectSpeedup      float64 `json:"intersect_speedup"`
}

type containersReport struct {
	Seed      int64           `json:"seed"`
	Scale     float64         `json:"scale"`
	NumGraphs int             `json:"num_graphs"`
	NumFeats  int             `json:"num_feats"`
	Rows      []containersRow `json:"rows"`
	Gates     struct {
		SnapshotShrinkMin   float64 `json:"dense_snapshot_shrink_min"`
		IntersectSpeedupMin float64 `json:"dense_intersect_speedup_min"`
		Gated               bool    `json:"gated"`
		Pass                bool    `json:"pass"`
	} `json:"gates"`
}

func runContainers(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	const nFeats = 4
	nGraphs := cfg.scaled(1<<14, 1<<12)

	type regime struct {
		name string
		p    float64
	}
	regimes := []regime{{"sparse", 0.01}, {"moderate", 0.20}, {"dense", 0.90}}
	gated := true
	if cfg.Density > 0 {
		// The -density knob: one exploratory row, no hard gates (the gate
		// thresholds are calibrated for the dense regime only).
		regimes = []regime{{fmt.Sprintf("p=%.3f", cfg.Density), cfg.Density}}
		gated = false
	}

	rep := containersReport{Seed: cfg.Seed, Scale: cfg.Scale, NumGraphs: nGraphs, NumFeats: nFeats}
	rep.Gates.SnapshotShrinkMin = denseSnapshotShrinkMin
	rep.Gates.IntersectSpeedupMin = denseIntersectSpeedupMin
	rep.Gates.Gated = gated
	rep.Gates.Pass = true

	tb := stats.NewTable("regime", "density", "members", "snap.adaptive", "snap.flat",
		"shrink", "isect.adaptive", "isect.flat", "speedup")
	var gateErr error
	for _, reg := range regimes {
		// One membership table per regime, inserted identically under both
		// policies; a single shard keeps every feature in one group so the
		// measurement isolates the container intersection itself.
		rng := rand.New(rand.NewSource(cfg.Seed*100 + int64(reg.p*1000)))
		members := make([][]int32, nFeats)
		for f := range members {
			for g := 0; g < nGraphs; g++ {
				if rng.Float64() < reg.p {
					members[f] = append(members[f], int32(g))
				}
			}
		}
		build := func(policy trie.ContainerPolicy) *trie.Trie {
			tr := trie.NewSharded(features.NewDict(), 1)
			tr.SetContainerPolicy(policy)
			for f, ids := range members {
				key := fmt.Sprintf("c:%d", f)
				for _, g := range ids {
					tr.Insert(key, trie.Posting{Graph: g, Count: 1})
				}
			}
			return tr
		}
		adaptive := build(trie.AdaptiveContainers)
		flat := build(trie.ArrayOnlyContainers)

		var ab, fb bytes.Buffer
		if _, err := adaptive.WriteTo(&ab); err != nil {
			return err
		}
		if _, err := flat.WriteTo(&fb); err != nil {
			return err
		}

		qf := func(tr *trie.Trie) features.IDSet {
			var q features.IDSet
			for f := 0; f < nFeats; f++ {
				id, ok := tr.Dict().Lookup(fmt.Sprintf("c:%d", f))
				if !ok {
					q.Unknown++
					continue
				}
				q.Counts = append(q.Counts, features.IDCount{ID: id, Count: 1})
			}
			return q
		}
		qa, qm := qf(adaptive), qf(flat)
		runA := func() int {
			s := index.GetCountFilterScratch()
			n := len(index.FilterCountGE(adaptive, qa, s))
			index.PutCountFilterScratch(s)
			return n
		}
		runF := func() int {
			s := index.GetCountFilterScratch()
			n := len(index.FilterCountGE(flat, qm, s))
			index.PutCountFilterScratch(s)
			return n
		}
		if runA() != runF() {
			return fmt.Errorf("%s: adaptive and flat candidate counts diverge", reg.name)
		}
		nsA, nsF := interleavedMedians(runA, runF)

		avgMembers := 0
		for _, ids := range members {
			avgMembers += len(ids)
		}
		avgMembers /= nFeats
		row := containersRow{
			Regime: reg.name, Density: reg.p, MembersPerFeature: avgMembers,
			SnapshotAdaptiveBytes: ab.Len(), SnapshotArrayBytes: fb.Len(),
			SnapshotShrink:   float64(fb.Len()) / float64(ab.Len()),
			MemAdaptiveBytes: int(adaptive.SizeBytes()), MemArrayBytes: int(flat.SizeBytes()),
			IntersectAdaptiveNs: nsA, IntersectArrayNs: nsF,
			IntersectSpeedup: nsF / nsA,
		}
		rep.Rows = append(rep.Rows, row)
		tb.AddRowf(row.Regime, fmt.Sprintf("%.3f", row.Density), row.MembersPerFeature,
			fmt.Sprintf("%d B", row.SnapshotAdaptiveBytes), fmt.Sprintf("%d B", row.SnapshotArrayBytes),
			fmt.Sprintf("%.2fx", row.SnapshotShrink),
			time.Duration(nsA), time.Duration(nsF), fmt.Sprintf("%.2fx", row.IntersectSpeedup))

		if gated && reg.name == "dense" {
			if row.SnapshotShrink < denseSnapshotShrinkMin {
				gateErr = fmt.Errorf("dense snapshot shrink %.2fx below the %.1fx gate",
					row.SnapshotShrink, denseSnapshotShrinkMin)
			} else if row.IntersectSpeedup < denseIntersectSpeedupMin {
				gateErr = fmt.Errorf("dense intersection speedup %.2fx below the %.1fx gate",
					row.IntersectSpeedup, denseIntersectSpeedupMin)
			}
		}
	}
	if gateErr != nil {
		rep.Gates.Pass = false
	}

	fmt.Fprintf(w, "Adaptive containers vs flat arrays over %d graphs × %d features (1 shard, interleaved medians):\n%s",
		nGraphs, nFeats, tb)
	if gated {
		fmt.Fprintf(w, "\nGates (dense regime): snapshot shrink ≥ %.1fx, intersection speedup ≥ %.1fx.\n",
			denseSnapshotShrinkMin, denseIntersectSpeedupMin)
	}
	fmt.Fprintf(w, "Expected shape: dense scatter persists as bitmap words and intersects by word-AND,\nso both snapshot bytes and intersection time drop by an order of magnitude; sparse\nlists stay flat arrays on both sides and must sit at parity.\n")

	if cfg.BenchJSONPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.BenchJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", cfg.BenchJSONPath)
	}
	return gateErr
}

// interleavedMedians times a and b in alternating bursts on the same box
// and returns each side's median per-op nanoseconds — alternation spreads
// thermal and scheduler drift evenly across both sides.
func interleavedMedians(a, b func() int) (float64, float64) {
	reps := func(f func() int) int {
		t0 := time.Now()
		f()
		per := time.Since(t0)
		if per <= 0 {
			per = time.Nanosecond
		}
		r := int(2 * time.Millisecond / per)
		return max(1, min(r, 4096))
	}
	ra, rb := reps(a), reps(b)
	const trials = 9
	burst := func(f func() int, reps int) float64 {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(reps)
	}
	var ta, tb []float64
	for t := 0; t < trials; t++ {
		ta = append(ta, burst(a, ra))
		tb = append(tb, burst(b, rb))
	}
	sort.Float64s(ta)
	sort.Float64s(tb)
	return ta[trials/2], tb[trials/2]
}
