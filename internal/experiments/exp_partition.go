package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	igq "repro"
	"repro/internal/partition"
	"repro/internal/stats"
)

// Extension experiment (serving): partitioned scatter-gather. Two claims
// about the partition layer are gated:
//
//   - Merged-answer identity: a partition.Group over N hash-routed
//     partitions must answer every query of a mixed workload with exactly
//     the global-ID set a single engine over the undivided dataset
//     produces — for every N, both query modes, with and without the iGQ
//     cache. Partitioning is a layout decision, never a semantics one.
//   - O(delta) supergraph mutation: the Containment index mutates in
//     place, so maintaining a supergraph engine across a mutation stream
//     must beat the old rebuild-per-mutation path by ≥ 5× while landing
//     on answer-identical state. This is the serving-path cost the
//     mutable containment index exists to remove.
func init() {
	register(Experiment{
		ID:    "partition",
		Title: "Partitioned scatter-gather: merged-answer identity + O(delta) supergraph mutation (extension)",
		Run:   runPartition,
	})
}

const partMutSpeedupMin = 5.0 // incremental super maintenance vs rebuild-per-mutation

type partitionReport struct {
	Seed           int64   `json:"seed"`
	Scale          float64 `json:"scale"`
	NumGraphs      int     `json:"num_graphs"`
	Queries        int     `json:"queries"`
	PartitionGrid  []int   `json:"partition_grid"`
	IdentityChecks int     `json:"identity_checks"`
	MutDataset     int     `json:"mut_dataset_graphs"`
	Mutations      int     `json:"mutations"`
	IncrementalNs  float64 `json:"incremental_ns"`
	RebuildNs      float64 `json:"rebuild_ns"`
	MutSpeedup     float64 `json:"mut_speedup"`
	Gates          struct {
		MutSpeedupMin float64 `json:"mut_speedup_min"`
		Pass          bool    `json:"pass"`
	} `json:"gates"`
}

// globalIDs maps a result to the answering graphs' global IDs, sorted —
// the identity a partitioned group and a single engine share (positions
// don't survive partitioning, IDs do).
func globalIDs(r igq.Result) []int32 {
	if len(r.Matches) == 0 {
		return nil
	}
	ids := make([]int32, len(r.Matches))
	for i, m := range r.Matches {
		ids[i] = int32(m.ID)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func runPartition(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	db := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.004*cfg.Scale, 1))
	queries := igq.GenerateWorkload(db, igq.WorkloadSpec{
		NumQueries: cfg.scaled(48, 24),
		GraphDist:  igq.Zipf, NodeDist: igq.Zipf,
		Alpha: 1.4, Seed: cfg.Seed + 17000,
	})
	opt := igq.EngineOptions{Method: igq.Grapes, CacheSize: 60, Window: 15}

	// Cache-free single-engine oracles over the undivided dataset.
	subOracle, err := igq.NewEngine(db, igq.EngineOptions{Method: igq.Grapes, DisableCache: true})
	if err != nil {
		return err
	}
	superOracle, err := igq.NewEngine(db, igq.EngineOptions{Supergraph: true, DisableCache: true})
	if err != nil {
		return err
	}
	type modeLeg struct {
		mode   partition.Mode
		oracle *igq.Engine
	}
	legs := []modeLeg{{partition.Sub, subOracle}, {partition.Super, superOracle}}
	want := make([][][]int32, len(legs))
	for li, leg := range legs {
		want[li] = make([][]int32, len(queries))
		for qi, q := range queries {
			r, err := leg.oracle.Query(ctx, q)
			if err != nil {
				return err
			}
			want[li][qi] = globalIDs(r)
		}
	}

	grid := []int{1, 2, 4, 8}
	checks := 0
	tb := stats.NewTable("partitions", "graphs/part (min-max)", "identity", "avg.query.ms")
	for _, n := range grid {
		// Hash routing with a small dataset can leave a partition empty, which
		// the group rejects by design; report instead of silently skipping.
		counts := make([]int, n)
		for _, g := range db {
			counts[partition.PartitionOf(g.ID, n)]++
		}
		minC, maxC := counts[0], counts[0]
		for _, c := range counts[1:] {
			minC, maxC = min(minC, c), max(maxC, c)
		}
		if minC == 0 {
			fmt.Fprintf(w, "partitions=%d skipped: hash routing left a partition empty (%d graphs)\n", n, len(db))
			continue
		}
		grp, err := partition.New(db, partition.Options{Partitions: n, Engine: opt, Super: true})
		if err != nil {
			return err
		}
		var elapsed time.Duration
		for li, leg := range legs {
			for qi, q := range queries {
				// Cache-free pass: pure scatter-gather identity.
				r, err := grp.QueryMode(ctx, leg.mode, q, igq.WithoutCache())
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(r.IDs, want[li][qi]) {
					return fmt.Errorf("partitions=%d mode=%v query %d: merged IDs %v, oracle %v",
						n, leg.mode, qi, r.IDs, want[li][qi])
				}
				// Cached pass: per-partition iGQ caches must not bend answers.
				t0 := time.Now()
				r, err = grp.QueryMode(ctx, leg.mode, q)
				elapsed += time.Since(t0)
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(r.IDs, want[li][qi]) {
					return fmt.Errorf("partitions=%d mode=%v query %d (cached): merged IDs %v, oracle %v",
						n, leg.mode, qi, r.IDs, want[li][qi])
				}
				checks += 2
			}
		}
		tb.AddRowf(fmt.Sprintf("%d", n), fmt.Sprintf("%d-%d", minC, maxC), "ok",
			float64(elapsed.Milliseconds())/float64(2*len(queries)))
	}
	fmt.Fprintf(w, "Merged-answer identity vs a single engine (%d graphs, %d queries x 2 modes x cached/uncached):\n%s",
		len(db), len(queries), tb)

	// Mutation-latency leg: one supergraph engine maintained incrementally
	// across an add/remove stream vs rebuilding from scratch after every
	// mutation (what serving had to do before the containment index became
	// mutable). Both legs must land on the same answers.
	// The mutation stream draws from the same size distribution as the
	// dataset: a mutation's unavoidable cost is enumerating the delta
	// graphs' own features, so the incremental-vs-rebuild gap measures the
	// per-mutation O(dataset) overhead, not a few oversized delta graphs.
	mutDB := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.01*cfg.Scale, 1))
	extra := igq.GenerateDataset(igq.AIDSSpec().Scaled(0.002*cfg.Scale, 0.5))
	for i, g := range extra {
		g.ID = 1_000_000 + i
	}
	superOpt := igq.EngineOptions{Supergraph: true, CacheSize: 60, Window: 15}
	inc, err := igq.NewEngine(mutDB, superOpt)
	if err != nil {
		return err
	}
	mirror := append([]*igq.Graph(nil), mutDB...)
	var rebuilt *igq.Engine
	steps := min(len(extra), cfg.scaled(8, 6))
	var incNs, rebNs time.Duration
	for s := 0; s < steps; s++ {
		add := extra[s : s+1]
		rm := -1
		if s%3 == 2 {
			rm = (s * 7) % len(mirror)
		}
		t0 := time.Now()
		if err := inc.AddGraphs(ctx, add); err != nil {
			return fmt.Errorf("incremental super add %d: %w", s, err)
		}
		if rm >= 0 {
			if err := inc.RemoveGraphs(ctx, []int{rm}); err != nil {
				return fmt.Errorf("incremental super remove %d: %w", s, err)
			}
		}
		incNs += time.Since(t0)

		// Rebuild leg: apply the same dataset ops to a mirror, rebuild whole.
		t0 = time.Now()
		mirror = append(mirror, add...)
		if rm >= 0 {
			mirror[rm] = mirror[len(mirror)-1]
			mirror = mirror[:len(mirror)-1]
		}
		if rebuilt, err = igq.NewEngine(mirror, superOpt); err != nil {
			return err
		}
		rebNs += time.Since(t0)
	}
	for qi, q := range queries {
		ri, err := inc.Query(ctx, q, igq.WithoutCache())
		if err != nil {
			return err
		}
		rr, err := rebuilt.Query(ctx, q, igq.WithoutCache())
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(globalIDs(ri), globalIDs(rr)) {
			return fmt.Errorf("post-mutation query %d: incremental super %v, rebuilt %v", qi, globalIDs(ri), globalIDs(rr))
		}
	}
	speedup := float64(rebNs) / float64(incNs)

	rep := partitionReport{
		Seed: cfg.Seed, Scale: cfg.Scale, NumGraphs: len(db), Queries: len(queries),
		PartitionGrid: grid, IdentityChecks: checks,
		MutDataset: len(mutDB), Mutations: steps,
		IncrementalNs: float64(incNs.Nanoseconds()), RebuildNs: float64(rebNs.Nanoseconds()),
		MutSpeedup: speedup,
	}
	rep.Gates.MutSpeedupMin = partMutSpeedupMin
	rep.Gates.Pass = true
	var gateErr error
	if checks == 0 {
		gateErr = fmt.Errorf("identity leg ran zero checks (every partition count skipped)")
	} else if speedup < partMutSpeedupMin {
		gateErr = fmt.Errorf("incremental super maintenance only %.2fx faster than rebuild-per-mutation (%v vs %v over %d mutations), below the %.1fx gate",
			speedup, incNs, rebNs, steps, partMutSpeedupMin)
	}
	if gateErr != nil {
		rep.Gates.Pass = false
	}

	mt := stats.NewTable("leg", "value")
	mt.AddRowf("mutation stream", fmt.Sprintf("%d steps over %d graphs (adds + swap-removals)", steps, len(mutDB)))
	mt.AddRowf("incremental", incNs)
	mt.AddRowf("rebuild-per-mutation", rebNs)
	mt.AddRowf("speedup", fmt.Sprintf("%.1fx (gate ≥ %.1fx)", speedup, partMutSpeedupMin))
	fmt.Fprintf(w, "\nSupergraph maintenance across mutations (mutable Containment vs rebuild):\n%s", mt)
	fmt.Fprintf(w, "\nExpected shape: merged scatter-gather answers are byte-identical to the single\nengine at every partition count (identity), and in-place containment mutation\nkeeps per-mutation cost O(delta) while the rebuild leg pays O(dataset) — the\ngap widens with dataset size.\n")

	if cfg.BenchJSONPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.BenchJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", cfg.BenchJSONPath)
	}
	return gateErr
}
