package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index/contain"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extension experiment: supergraph query processing speedup. The paper
// evaluates this mode but omits the numbers "for space reasons" (§7); this
// runner reproduces the omitted measurement with the §4.4 inverse wiring:
// a dataset of small fragments, supergraph queries extracted as larger
// regions, the containment method (paper Algorithms 1–2 over the dataset)
// as Msuper, and iGQ on top.
func init() {
	register(Experiment{
		ID:    "supergraph-speedup",
		Title: "Extension: Speedups for Supergraph Query Processing (omitted in paper)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			// fragment dataset: many small-to-medium sparse graphs. The
			// dataset must be large for wall-clock gains: every pruned
			// candidate saves one fragment-vs-query test, while each cache
			// hit costs one query-vs-query test of comparable size — so the
			// aggregate savings scale with dataset size (the same balance
			// the paper's 40k-graph subgraph datasets provide).
			spec := dataset.Spec{
				Name: "Fragments", NumGraphs: cfg.scaled(1500, 300), Labels: 8,
				NodesMean: 14, NodesStd: 5, NodesMin: 5, NodesMax: 28,
				AvgDegree: 2.2, LabelSkew: 1.5, Seed: cfg.Seed*10 + 5,
			}
			db := dataset.Generate(spec)
			m := contain.New(contain.DefaultOptions())
			m.Build(db)

			// supergraph queries: larger graphs sampled from a shared pool
			// so nested/repeated relationships arise (zipf-zipf analogue)
			pool := dataset.Generate(dataset.Spec{
				Name: "pool", NumGraphs: 40, Labels: 8,
				NodesMean: 55, NodesStd: 12, NodesMin: 30, NodesMax: 90,
				AvgDegree: 2.4, LabelSkew: 1.5, Seed: cfg.Seed*10 + 6,
			})
			n := sparseWorkloadLen(cfg)
			cacheC, cacheW := sparseCache(cfg)
			tb := stats.NewTable("workload", "isotest.speedup", "time.speedup")
			for _, ws := range workload.FourWorkloads(n, 1.4, cfg.Seed+9500) {
				qs := workload.Generate(pool, workload.Spec{
					NumQueries: ws.NumQueries, GraphDist: ws.GraphDist,
					NodeDist: ws.NodeDist, Alpha: ws.Alpha,
					Sizes: []int{16, 24, 32, 40, 48}, Seed: ws.Seed,
				})
				pr := runPair(m, db, qs, cacheW, core.Options{
					CacheSize: cacheC, Window: cacheW,
					Mode: core.SupergraphQueries,
				})
				tb.AddRowf(ws.Name(), pr.isoTestSpeedup(), pr.timeSpeedup())
			}
			fmt.Fprintf(w, "%d fragment graphs, containment method (Alg 1-2), %d queries/workload:\n%s",
				len(db), n, tb)
			fmt.Fprintln(w, "\nFinding: iso-test savings transfer to supergraph processing exactly as")
			fmt.Fprintln(w, "§4.4 claims (and grow with skew). Wall-clock gains, however, are bounded")
			fmt.Fprintln(w, "here because supergraph *filtering* (Algorithm 2) dominates query time —")
			fmt.Fprintln(w, "the verification-dominance premise of Fig 1 holds for subgraph, not")
			fmt.Fprintln(w, "supergraph, processing; consistent with the paper reporting only the")
			fmt.Fprintln(w, "subgraph-side time speedups.")
			return nil
		},
	})
}
