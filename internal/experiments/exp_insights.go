package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table 1: dataset characteristics, paired with the paper's full-scale
// reference values so the shape preservation is visible at any scale.
func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Characteristics of Datasets",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			specs := []dataset.Spec{
				scaledAIDS(cfg), scaledPDBS(cfg), scaledPPI(cfg), scaledSynthetic(cfg),
			}
			paperRows := map[string][6]float64{
				// labels, graphs, avg degree, nodes avg, edges avg, nodes max
				"AIDS":      {62, 40000, 2.09, 45, 47, 245},
				"PDBS":      {10, 600, 2.13, 2939, 3064, 16431},
				"PPI":       {46, 20, 9.23, 4943, 26667, 10186},
				"Synthetic": {20, 1000, 19.52, 892, 7991, 7135},
			}
			tb := stats.NewTable("dataset", "labels", "graphs", "avg.deg",
				"nodes.avg", "nodes.std", "nodes.max", "edges.avg", "edges.std", "edges.max")
			ref := stats.NewTable("dataset", "labels", "graphs", "avg.deg", "nodes.avg", "edges.avg", "nodes.max")
			for _, s := range specs {
				db := dataset.Generate(s)
				c := dataset.Measure(s.Name, db)
				tb.AddRowf(c.Name, c.Labels, c.Graphs, c.AvgDegree,
					c.Nodes.Mean, c.Nodes.Std, c.Nodes.Max,
					c.Edges.Mean, c.Edges.Std, c.Edges.Max)
				p := paperRows[s.Name]
				ref.AddRowf(s.Name, p[0], p[1], p[2], p[3], p[4], p[5])
			}
			fmt.Fprintf(w, "Generated datasets (scale=%.2f):\n%s\n", cfg.Scale, tb)
			fmt.Fprintf(w, "Paper full-scale reference (Table 1):\n%s", ref)
			return nil
		},
	})
}

// Fig 1: percentage of query processing time spent in filtering vs
// verification, for GGSX / Grapes / CT-Index on AIDS and PDBS.
func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Dominance of Verification Time (filtering% vs verification%)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			tb := stats.NewTable("dataset", "method", "filter%", "verify%")
			for _, spec := range []dataset.Spec{scaledAIDS(cfg), scaledPDBS(cfg)} {
				db := dataset.Generate(spec)
				qs := workload.Generate(db, workload.Spec{
					NumQueries: sparseWorkloadLen(cfg),
					GraphDist:  workload.Uniform, NodeDist: workload.Uniform,
					Seed: cfg.Seed + 1000,
				})
				ms := threeMethods()
				buildAll(ms, db)
				for _, m := range ms {
					res := runBaseline(m, qs)
					var filter, verify float64
					for _, qm := range res {
						filter += float64(qm.FilterNs)
						verify += float64(qm.VerifyNs)
					}
					total := filter + verify
					if total == 0 {
						total = 1
					}
					tb.AddRowf(spec.Name, m.Name(), 100*filter/total, 100*verify/total)
				}
			}
			fmt.Fprint(w, tb)
			fmt.Fprintln(w, "\nPaper shape: verification dominates on every method, and nearly")
			fmt.Fprintln(w, "totally so on the larger PDBS graphs.")
			return nil
		},
	})
}

// Figs 2 and 3: average candidate-set size, answer-set size and false
// positives per method, for AIDS (fig2) and PDBS (fig3).
func filteringExperiment(id, title, which string) {
	register(Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			var spec dataset.Spec
			if which == "AIDS" {
				spec = scaledAIDS(cfg)
			} else {
				spec = scaledPDBS(cfg)
			}
			db := dataset.Generate(spec)
			qs := workload.Generate(db, workload.Spec{
				NumQueries: sparseWorkloadLen(cfg),
				GraphDist:  workload.Uniform, NodeDist: workload.Uniform,
				Seed: cfg.Seed + 2000,
			})
			ms := threeMethods()
			buildAll(ms, db)
			tb := stats.NewTable("method", "avg.candidates", "avg.answers", "avg.falsepos", "fp.ratio%")
			for _, m := range ms {
				res := runBaseline(m, qs)
				cand := avgOf(res, func(q queryMetrics) float64 { return float64(q.Candidates) })
				ans := avgOf(res, func(q queryMetrics) float64 { return float64(q.Answers) })
				fp := avgOf(res, func(q queryMetrics) float64 { return float64(q.FalsePos) })
				ratio := 0.0
				if cand > 0 {
					ratio = 100 * fp / cand
				}
				tb.AddRowf(m.Name(), cand, ans, fp, ratio)
			}
			fmt.Fprintf(w, "%s (%d graphs, %d queries):\n%s", spec.Name, len(db), len(qs), tb)
			return nil
		},
	})
}

func init() {
	filteringExperiment("fig2", "Avg Candidates / Answers / False Positives (AIDS)", "AIDS")
	filteringExperiment("fig3", "Avg Candidates / Answers / False Positives (PDBS)", "PDBS")
}
