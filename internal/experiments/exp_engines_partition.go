package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index/ggsx"
	"repro/internal/iso"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Ablation: verification engines. The paper builds on VF2 and cites Ullmann
// as the root of the field; Grapes internally uses RI. This runner compares
// the three engines' verification effort on identical candidate sets
// (GGSX filtering, AIDS workload) — grounding the repository's choice of
// per-method engines.
func init() {
	register(Experiment{
		ID:    "ablation-engines",
		Title: "Ablation: VF2 vs RI vs Ullmann verification (AIDS/GGSX)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			spec := scaledAIDS(cfg)
			db := dataset.Generate(spec)
			qs := workload.Generate(db, workload.Spec{
				NumQueries: cfg.scaled(200, 80),
				GraphDist:  workload.Uniform, NodeDist: workload.Uniform,
				Seed: cfg.Seed + 11000,
			})
			tb := stats.NewTable("engine", "avg.query.ms", "avg.assignments")
			for _, alg := range []iso.Algorithm{iso.VF2, iso.RI, iso.Ullmann} {
				m := ggsx.New(ggsx.Options{MaxPathLen: 4, VerifyAlg: alg})
				m.Build(db)
				res := runBaseline(m, qs)
				ms := avgOf(res, func(q queryMetrics) float64 { return float64(q.TotalNs) / 1e6 })
				// effort counters measured separately on the same pairs
				var assigns, tests int64
				for _, q := range qs {
					for _, id := range m.Filter(q.G) {
						_, st := iso.SubgraphStats(q.G, db[id], alg)
						assigns += st.Assignments
						tests++
					}
				}
				tb.AddRowf(alg.String(), ms, float64(assigns)/float64(tests))
			}
			fmt.Fprint(w, tb)
			fmt.Fprintln(w, "\nReading: Ullmann's matrix refinement tries fewer assignments but")
			fmt.Fprintln(w, "pays for per-branch matrix copies; the backtracking engines (VF2's")
			fmt.Fprintln(w, "terminal look-ahead, RI's static ordering) land close together and")
			fmt.Fprintln(w, "lead on wall-clock — consistent with the field's convergence on them.")
			return nil
		},
	})
}

// Extension: unified vs size-partitioned cache. Fig 10's discussion notes
// that iGQ keeps ONE cache shared by all query-size groups ("the various
// query groups compete for the same space"). The alternative — a dedicated
// cache slice per group — is the obvious design variant; this runner
// measures both under the same total budget.
func init() {
	register(Experiment{
		ID:    "ablation-partition",
		Title: "Extension: unified vs per-size-partitioned query cache (PPI/Grapes(6))",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			spec := scaledPPI(cfg)
			db := dataset.Generate(spec)
			m := newGrapes6()
			m.Build(db)
			n := denseWorkloadLen(cfg)
			totalC, cacheW := denseCache(cfg)
			totalC *= 2
			qs := workload.Generate(db, workload.Spec{
				NumQueries: n, GraphDist: workload.Zipf, NodeDist: workload.Zipf,
				Alpha: 1.4, Seed: cfg.Seed + 12000,
			})
			warm := cacheW

			// unified: one iGQ with budget totalC
			unified := runPair(m, db, qs, warm, core.Options{CacheSize: totalC, Window: cacheW})

			// partitioned: one iGQ per size class, each with totalC/5
			sizes := workload.DefaultSizes
			part := map[int]*core.IGQ{}
			for _, s := range sizes {
				part[s] = core.New(m, db, core.Options{
					CacheSize: max(totalC/len(sizes), 2),
					Window:    max(cacheW/len(sizes), 1),
				})
			}
			for _, q := range qs[:warm] {
				part[q.Target].Query(q.G)
			}
			partMetrics := make([]queryMetrics, 0, len(qs)-warm)
			for _, q := range qs[warm:] {
				o := part[q.Target].Query(q.G)
				partMetrics = append(partMetrics, queryMetrics{
					SizeClass: q.Target,
					IsoTests:  o.DatasetIsoTests,
					TotalNs:   (o.FilterDur + o.CacheDur + o.VerifyDur).Nanoseconds(),
				})
			}
			partitioned := pairResult{Base: unified.Base, IGQ: partMetrics}

			tb := stats.NewTable("variant", "isotest.speedup")
			tb.AddRowf("unified cache (paper)", unified.isoTestSpeedup())
			tb.AddRowf("per-size partition", partitioned.isoTestSpeedup())
			fmt.Fprintf(w, "total budget C=%d over %d queries:\n%s", totalC, n, tb)

			// per-group detail
			groups := stats.NewTable("group", "unified", "partitioned")
			uniBy, partBy := unified.bySize(), partitioned.bySize()
			var keys []int
			for k := range uniBy {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				groups.AddRowf(fmt.Sprintf("Q%d", k),
					uniBy[k].isoTestSpeedup(), partBy[k].isoTestSpeedup())
			}
			fmt.Fprintf(w, "\nper group:\n%s", groups)
			fmt.Fprintln(w, "\nExpectation: the unified cache wins overall — utility eviction")
			fmt.Fprintln(w, "allocates space to the groups that profit, while fixed partitions")
			fmt.Fprintln(w, "strand budget on groups with little reuse.")
			return nil
		},
	})
}
