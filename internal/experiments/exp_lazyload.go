package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/index/ggsx"
	"repro/internal/persistio"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extension experiment (perf): lazy segment loading. Coldstart showed that
// restoring a snapshot beats rebuilding; this experiment measures the next
// step — not decoding the snapshot at all until a query asks for it. Two
// claims are gated:
//
//   - Time-to-first-query: mapping the file and decoding only the shards
//     the first query touches must answer in ≤ half the eager restore's
//     load-everything-then-answer time (and the margin grows with index
//     size, since the eager leg is O(index) and the lazy leg O(touched)).
//   - Bounded residency: under a byte budget of half the full index, a
//     Zipf-skewed query stream must complete with identical answers while
//     resident posting bytes stay within the budget — the eviction clock
//     actually holds the line, it does not just report it.
func init() {
	register(Experiment{
		ID:    "lazyload",
		Title: "Lazy segment loading: time-to-first-query + bounded residency vs eager restore (perf, extension)",
		Run:   runLazyload,
	})
}

const (
	lazyTTFQRatioMax = 0.5 // lazy TTFQ must be ≤ half the eager TTFQ
)

type lazyloadReport struct {
	Seed            int64   `json:"seed"`
	Scale           float64 `json:"scale"`
	NumGraphs       int     `json:"num_graphs"`
	Shards          int     `json:"shards"`
	SnapshotBytes   int64   `json:"snapshot_bytes"`
	IndexBytes      int64   `json:"index_bytes"`
	TTFQEagerNs     float64 `json:"ttfq_eager_ns"`
	TTFQLazyNs      float64 `json:"ttfq_lazy_ns"`
	TTFQRatio       float64 `json:"ttfq_ratio"`
	BudgetBytes     int64   `json:"budget_bytes"`
	ResidentBytes   int64   `json:"resident_bytes"`
	ResidentShards  int     `json:"resident_shards"`
	TotalShards     int     `json:"total_shards"`
	Faults          int64   `json:"faults"`
	Evictions       int64   `json:"evictions"`
	SkewedQueries   int     `json:"skewed_queries"`
	AnswersIdentity bool    `json:"answers_identical"`
	Gates           struct {
		TTFQRatioMax float64 `json:"ttfq_ratio_max"`
		Pass         bool    `json:"pass"`
	} `json:"gates"`
}

func runLazyload(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	spec := scaledAIDS(cfg)
	spec.NumGraphs *= 4 // the eager leg must have real decode work to lose
	db := dataset.Generate(spec)
	qs := workload.Generate(db, workload.Spec{
		NumQueries: cfg.scaled(60, 20),
		Sizes:      []int{4, 8},
		Seed:       cfg.Seed * 91,
	})
	shards := cfg.Shards
	if shards == 0 {
		shards = 16
	}
	fresh := func() *ggsx.Index {
		return ggsx.New(ggsx.Options{MaxPathLen: 4, Shards: shards, BuildWorkers: cfg.BuildWorkers})
	}

	built := fresh()
	built.Build(db)
	dir, err := os.MkdirTemp("", "igq-lazyload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "ggsx.idx")
	if err := persistio.AtomicWriteFile(snapPath, built.SaveIndex); err != nil {
		return err
	}
	fi, err := os.Stat(snapPath)
	if err != nil {
		return err
	}

	// Oracle candidate sets, computed once up front. The index's own work is
	// the Filter: verification afterwards costs the same whether the index
	// was decoded eagerly or faulted in, so TTFQ times load + first Filter.
	want := make([][][]int32, len(qs))
	for i, q := range qs {
		want[i] = [][]int32{built.Filter(q.G)}
	}

	// Time-to-first-query, interleaved medians: each trial is the full cold
	// path a restarting process pays — open the snapshot, load, filter the
	// first query of the workload.
	firstQ := qs[0].G
	ttfqEager := func() (time.Duration, error) {
		x := fresh()
		f, err := os.Open(snapPath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		t0 := time.Now()
		if _, err := x.LoadIndex(f, db); err != nil {
			return 0, err
		}
		ans := x.Filter(firstQ)
		d := time.Since(t0)
		if !reflect.DeepEqual(ans, want[0][0]) {
			return 0, fmt.Errorf("eager first candidate set diverges")
		}
		return d, nil
	}
	ttfqLazy := func() (time.Duration, error) {
		x := fresh()
		t0 := time.Now()
		src, err := persistio.OpenMapped(snapPath)
		if err != nil {
			return 0, err
		}
		defer src.Close()
		if _, err := x.LoadIndexLazy(src, db, 0); err != nil {
			return 0, err
		}
		ans := x.Filter(firstQ)
		d := time.Since(t0)
		if !reflect.DeepEqual(ans, want[0][0]) {
			return 0, fmt.Errorf("lazy first candidate set diverges")
		}
		return d, nil
	}
	const trials = 5
	var eagerNs, lazyNs []float64
	for t := 0; t < trials; t++ {
		de, err := ttfqEager()
		if err != nil {
			return err
		}
		dl, err := ttfqLazy()
		if err != nil {
			return err
		}
		eagerNs = append(eagerNs, float64(de.Nanoseconds()))
		lazyNs = append(lazyNs, float64(dl.Nanoseconds()))
	}
	sort.Float64s(eagerNs)
	sort.Float64s(lazyNs)
	medEager, medLazy := eagerNs[trials/2], lazyNs[trials/2]

	// Bounded-residency leg: total resident posting bytes measured on an
	// unbudgeted copy with the whole workload faulted in, then a fresh lazy
	// load under half that budget serving a Zipf-skewed stream (hot head,
	// long tail — the access pattern eviction is for).
	probe := fresh()
	src, err := persistio.OpenMapped(snapPath)
	if err != nil {
		return err
	}
	defer src.Close()
	if _, err := probe.LoadIndexLazy(src, db, 0); err != nil {
		return err
	}
	for _, q := range qs {
		probe.Filter(q.G)
	}
	indexBytes := probe.Residency().ResidentBytes
	budget := indexBytes / 2

	bounded := fresh()
	bsrc, err := persistio.OpenMapped(snapPath)
	if err != nil {
		return err
	}
	defer bsrc.Close()
	if _, err := bounded.LoadIndexLazy(bsrc, db, budget); err != nil {
		return err
	}
	zrng := rand.New(rand.NewSource(cfg.Seed * 13))
	zipf := rand.NewZipf(zrng, 1.2, 1.0, uint64(len(qs)-1))
	nSkewed := cfg.scaled(400, 150)
	identical := true
	for i := 0; i < nSkewed; i++ {
		qi := int(zipf.Uint64())
		if got := bounded.Filter(qs[qi].G); !reflect.DeepEqual(got, want[qi][0]) {
			return fmt.Errorf("skewed query %d (workload %d) diverges under budget", i, qi)
		}
	}
	res := bounded.Residency()
	rep := lazyloadReport{
		Seed: cfg.Seed, Scale: cfg.Scale, NumGraphs: len(db), Shards: shards,
		SnapshotBytes: fi.Size(), IndexBytes: indexBytes,
		TTFQEagerNs: medEager, TTFQLazyNs: medLazy, TTFQRatio: medLazy / medEager,
		BudgetBytes: budget, ResidentBytes: res.ResidentBytes,
		ResidentShards: res.ResidentShards, TotalShards: res.TotalShards,
		Faults: res.Faults, Evictions: res.Evictions,
		SkewedQueries: nSkewed, AnswersIdentity: identical,
	}
	rep.Gates.TTFQRatioMax = lazyTTFQRatioMax
	rep.Gates.Pass = true
	var gateErr error
	if rep.TTFQRatio > lazyTTFQRatioMax {
		gateErr = fmt.Errorf("lazy TTFQ %.0fns is %.2fx eager %.0fns, above the %.2fx gate",
			medLazy, rep.TTFQRatio, medEager, lazyTTFQRatioMax)
	} else if res.ResidentBytes > budget && res.ResidentShards > 1 {
		// One oversized shard is allowed to stand alone (the evictor never
		// evicts the last resident shard); two or more must fit the budget.
		gateErr = fmt.Errorf("resident %d bytes over the %d budget after the skewed stream",
			res.ResidentBytes, budget)
	}
	if gateErr != nil {
		rep.Gates.Pass = false
	}

	tb := stats.NewTable("leg", "value")
	tb.AddRowf("snapshot", fmt.Sprintf("%d B (%d graphs, %d shards)", fi.Size(), len(db), shards))
	tb.AddRowf("TTFQ eager", time.Duration(medEager))
	tb.AddRowf("TTFQ lazy", time.Duration(medLazy))
	tb.AddRowf("TTFQ ratio", fmt.Sprintf("%.3fx (gate ≤ %.2fx)", rep.TTFQRatio, lazyTTFQRatioMax))
	tb.AddRowf("posting bytes", fmt.Sprintf("%d B (all shards resident)", indexBytes))
	tb.AddRowf("budget", fmt.Sprintf("%d B", budget))
	tb.AddRowf("resident", fmt.Sprintf("%d B in %d/%d shards after %d skewed queries",
		res.ResidentBytes, res.ResidentShards, res.TotalShards, nSkewed))
	tb.AddRowf("faults/evictions", fmt.Sprintf("%d / %d", res.Faults, res.Evictions))
	fmt.Fprintf(w, "Lazy segment loading vs eager restore (GGSX, interleaved TTFQ medians of %d):\n%s", trials, tb)
	fmt.Fprintf(w, "\nExpected shape: the lazy leg answers its first query after reading only the header,\ndictionary and segment directory plus the touched shards, so TTFQ drops well below\nthe eager restore and the gap widens with index size; under a half-index budget the\nZipf stream faults the hot head in, evicts the cold tail, and never diverges.\n")

	if cfg.BenchJSONPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.BenchJSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", cfg.BenchJSONPath)
	}
	return gateErr
}
