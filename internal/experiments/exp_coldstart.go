package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/persistio"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extension experiment (persistence): index cold start. The paper's premise
// is that index knowledge is expensive to earn and worth keeping; this
// experiment quantifies it for the dataset indexes by comparing a full
// rebuild (path enumeration over every graph) against restoring the same
// index from its on-disk segment snapshot. The restored index must be
// observationally identical — the run fails (non-nil error, so CI can gate
// on it) if any differential query diverges.
func init() {
	register(Experiment{
		ID:    "coldstart",
		Title: "Index cold start: snapshot load vs full rebuild (persistence, extension)",
		Run:   runColdstart,
	})
}

func runColdstart(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	// AIDS character (many small graphs) exercises a large vocabulary —
	// the dictionary-heavy case for the snapshot header.
	spec := scaledAIDS(cfg)
	spec.NumGraphs *= 2
	db := dataset.Generate(spec)
	qs := workload.Generate(db, workload.Spec{
		NumQueries: cfg.scaled(60, 20),
		Sizes:      []int{4, 8},
		Seed:       cfg.Seed * 77,
	})

	snapDir := cfg.SaveIndexPath
	if snapDir == "" {
		var err error
		snapDir, err = os.MkdirTemp("", "igq-coldstart")
		if err != nil {
			return err
		}
		defer os.RemoveAll(snapDir)
	} else if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return err
	}

	type method struct {
		name  string
		fresh func() index.Persistable
	}
	methods := []method{
		{"GGSX", func() index.Persistable {
			return ggsx.New(ggsx.Options{MaxPathLen: 4, Shards: cfg.Shards, BuildWorkers: cfg.BuildWorkers})
		}},
		{"Grapes", func() index.Persistable {
			return grapes.New(grapes.Options{MaxPathLen: 4, Shards: cfg.Shards, BuildWorkers: cfg.BuildWorkers})
		}},
	}

	tb := stats.NewTable("method", "rebuild", "save", "load", "speedup", "snapshot", "identity")
	for _, m := range methods {
		snapPath := filepath.Join(snapDir, m.name+".idx")

		// Rebuild leg: the O(dataset) path every process start pays today.
		built := m.fresh()
		t0 := time.Now()
		built.Build(db)
		buildDur := time.Since(t0)

		// Save leg (skipped when loading a pre-built snapshot).
		var saveDur time.Duration
		loadPath := snapPath
		if cfg.LoadIndexPath != "" {
			loadPath = filepath.Join(cfg.LoadIndexPath, m.name+".idx")
		} else {
			// Atomic write: a crash mid-save must not leave a torn snapshot
			// where a previous good one stood (temp + fsync + rename).
			t0 = time.Now()
			err := persistio.AtomicWriteFile(snapPath, built.SaveIndex)
			saveDur = time.Since(t0)
			if err != nil {
				return fmt.Errorf("%s: saving index: %w", m.name, err)
			}
		}
		fi, err := os.Stat(loadPath)
		if err != nil {
			return err
		}

		// Load leg: the O(read) path this snapshot format buys.
		loaded := m.fresh()
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		t0 = time.Now()
		rep, err := loaded.LoadIndex(f, db)
		loadDur := time.Since(t0)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: loading index: %w", m.name, err)
		}
		if rep.RecoveredTail != nil {
			return fmt.Errorf("%s: clean snapshot reported a recovered tail: %+v", m.name, rep.RecoveredTail)
		}

		// Differential identity check: answers (candidates and verified
		// matches, order included) must be byte-identical.
		identity := "identical"
		for i, q := range qs {
			if !reflect.DeepEqual(built.Filter(q.G), loaded.Filter(q.G)) ||
				!reflect.DeepEqual(index.Answer(built, q.G), index.Answer(loaded, q.G)) {
				return fmt.Errorf("%s: loaded index diverges from rebuilt index on query %d", m.name, i)
			}
		}
		if built.SizeBytes() != loaded.SizeBytes() {
			return fmt.Errorf("%s: loaded index footprint %d != rebuilt %d", m.name, loaded.SizeBytes(), built.SizeBytes())
		}

		tb.AddRowf(m.name, buildDur, saveDur, loadDur,
			float64(buildDur)/float64(loadDur), fmt.Sprintf("%d B", fi.Size()), identity)
		if cfg.Verbose {
			fmt.Fprintf(w, "  %s: build=%v load=%v snapshot=%dB\n", m.name, buildDur, loadDur, fi.Size())
		}
	}

	fmt.Fprintf(w, "Cold start over %s ×2 (%d graphs, %d differential queries), shards=%d, buildworkers=%d:\n%s",
		spec.Name, len(db), len(qs), cfg.Shards, cfg.BuildWorkers, tb)
	fmt.Fprintf(w, "\nExpected shape: loading the segment snapshot beats the full path re-enumeration\n(speedup > 1), growing with dataset scale; the identity column must read 'identical' —\nthe restored index is required to answer byte-identically to the rebuilt one.\n")
	return nil
}
