package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index/ggsx"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extension experiment (beyond the paper's figures): concurrent query
// serving. One cache-enabled iGQ instance is shared by k goroutines; the
// table reports aggregate throughput per worker count and verifies that
// every answer equals the sequential run's (the snapshot-isolated read
// path makes answers independent of cache timing — paper Theorems 1 and 2).
func init() {
	register(Experiment{
		ID:    "concurrency",
		Title: "Concurrent serving: aggregate throughput vs workers (extension)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			spec := scaledAIDS(cfg)
			db := dataset.Generate(spec)
			m := ggsx.New(ggsx.DefaultOptions())
			m.Build(db)
			qs := workload.Generate(db, workload.Spec{
				NumQueries: cfg.scaled(240, 60),
				GraphDist:  workload.Zipf, NodeDist: workload.Zipf,
				Alpha: 1.4, Seed: cfg.Seed + 9000,
			})

			// Sequential reference: answers and single-stream throughput.
			ref := core.New(m, db, core.Options{CacheSize: 60, Window: 15})
			want := make([][]int32, len(qs))
			t0 := time.Now()
			for i, q := range qs {
				want[i] = ref.Query(q.G).Answer
			}
			seqDur := time.Since(t0)

			maxWorkers := cfg.Workers
			if maxWorkers <= 0 {
				maxWorkers = runtime.GOMAXPROCS(0)
			}
			tb := stats.NewTable("workers", "queries/s", "vs 1 worker", "answers")
			ctx := context.Background()
			for k := 1; k <= maxWorkers; k *= 2 {
				ig := core.New(m, db, core.Options{CacheSize: 60, Window: 15})
				got := make([][]int32, len(qs))
				t1 := time.Now()
				var wg sync.WaitGroup
				for wk := 0; wk < k; wk++ {
					wg.Add(1)
					go func(wk int) {
						defer wg.Done()
						for i := wk; i < len(qs); i += k {
							o, err := ig.QueryCtx(ctx, qs[i].G)
							if err != nil {
								return
							}
							got[i] = o.Answer
						}
					}(wk)
				}
				wg.Wait()
				dur := time.Since(t1)
				ok := "identical"
				for i := range qs {
					if !reflect.DeepEqual(got[i], want[i]) {
						ok = fmt.Sprintf("DIVERGED@%d", i)
						break
					}
				}
				qps := float64(len(qs)) / dur.Seconds()
				base := float64(len(qs)) / seqDur.Seconds()
				tb.AddRowf(k, qps, qps/base, ok)
				if cfg.Verbose {
					fmt.Fprintf(w, "  %d workers: %v\n", k, dur)
				}
			}
			fmt.Fprintf(w, "Concurrent serving, %s/GGSX, zipf-zipf, one shared cache:\n%s", spec.Name, tb)
			fmt.Fprintf(w, "\nExpected shape: near-linear scaling up to the core count (this host: GOMAXPROCS=%d);\nanswers must stay identical to the sequential run at every width.\n", runtime.GOMAXPROCS(0))
			return nil
		},
	})
}
