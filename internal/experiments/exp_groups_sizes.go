package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index/ctindex"
	"repro/internal/index/ggsx"
	"repro/internal/index/grapes"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figs 10, 11, 16, 17: speedups per query-size group (Q4..Q20) across cache
// sizes, on the dense datasets with Grapes(6):
//
//	fig10/fig16: PPI, zipf-zipf α=1.4   (iso tests / time)
//	fig11/fig17: Synthetic, zipf-zipf α=2.4
func groupExperiment(id, title, which, metric string) {
	register(Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			var spec dataset.Spec
			alpha := 1.4
			if which == "PPI" {
				spec = scaledPPI(cfg)
			} else {
				spec = scaledSynthetic(cfg)
				alpha = 2.4
			}
			db := dataset.Generate(spec)
			m := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
			m.Build(db)
			n := denseWorkloadLen(cfg)
			baseC, cacheW := denseCache(cfg)
			qs := workload.Generate(db, workload.Spec{
				NumQueries: n,
				GraphDist:  workload.Zipf, NodeDist: workload.Zipf,
				Alpha: alpha, Seed: cfg.Seed + 6000,
			})
			// cache sizes in the paper's 100/200/300 ratio
			tb := stats.NewTable("group", fmt.Sprintf("C=%d", baseC),
				fmt.Sprintf("C=%d", 2*baseC), fmt.Sprintf("C=%d", 3*baseC))
			rows := map[int][]float64{}
			whole := make([]float64, 0, 3)
			for _, mult := range []int{1, 2, 3} {
				c := baseC * mult
				pr := runPair(m, db, qs, cacheW, core.Options{CacheSize: c, Window: cacheW})
				for size, sub := range pr.bySize() {
					v := sub.isoTestSpeedup()
					if metric == "time" {
						v = sub.timeSpeedup()
					}
					rows[size] = append(rows[size], v)
				}
				if metric == "time" {
					whole = append(whole, pr.timeSpeedup())
				} else {
					whole = append(whole, pr.isoTestSpeedup())
				}
			}
			var sizes []int
			for s := range rows {
				sizes = append(sizes, s)
			}
			sort.Ints(sizes)
			for _, s := range sizes {
				row := []interface{}{fmt.Sprintf("Q%d", s)}
				for _, v := range rows[s] {
					row = append(row, v)
				}
				tb.AddRowf(row...)
			}
			row := []interface{}{"whole"}
			for _, v := range whole {
				row = append(row, v)
			}
			tb.AddRowf(row...)
			fmt.Fprintf(w, "%s, %s/Grapes(6)/zipf-zipf(a=%.1f), %d queries:\n%s",
				title, spec.Name, alpha, n, tb)
			fmt.Fprintln(w, "\nPaper shape: groups compete for one cache; per-group speedups vary,")
			fmt.Fprintln(w, "but the whole-workload speedup rises steadily with C.")
			return nil
		},
	})
}

func init() {
	groupExperiment("fig10", "Iso-Test Speedup per Query Group vs Cache Size", "PPI", "iso")
	groupExperiment("fig11", "Iso-Test Speedup per Query Group vs Cache Size", "Synthetic", "iso")
	groupExperiment("fig16", "Query-Time Speedup per Query Group vs Cache Size", "PPI", "time")
	groupExperiment("fig17", "Query-Time Speedup per Query Group vs Cache Size", "Synthetic", "time")
}

// Fig 18: absolute index sizes on AIDS — the three methods in their default
// and enlarged configurations, plus the iGQ query-index overhead.
func init() {
	register(Experiment{
		ID:    "fig18",
		Title: "Absolute Index Sizes, AIDS (MB)",
		Run: func(cfg Config, w io.Writer) error {
			cfg = cfg.withDefaults()
			spec := scaledAIDS(cfg)
			db := dataset.Generate(spec)

			tb := stats.NewTable("index", "config", "size.MB")
			mb := func(b int) float64 { return float64(b) / (1 << 20) }

			g4 := ggsx.New(ggsx.Options{MaxPathLen: 4})
			g4.Build(db)
			tb.AddRowf("GGSX", "paths<=4 (default)", mb(g4.SizeBytes()))
			g5 := ggsx.New(ggsx.Options{MaxPathLen: 5})
			g5.Build(db)
			tb.AddRowf("GGSX", "paths<=5 (larger)", mb(g5.SizeBytes()))

			gr4 := grapes.New(grapes.Options{MaxPathLen: 4, Threads: 6})
			gr4.Build(db)
			tb.AddRowf("Grapes", "paths<=4 (default)", mb(gr4.SizeBytes()))
			gr5 := grapes.New(grapes.Options{MaxPathLen: 5, Threads: 6})
			gr5.Build(db)
			tb.AddRowf("Grapes", "paths<=5 (larger)", mb(gr5.SizeBytes()))

			ct := ctindex.New(ctindex.DefaultOptions())
			ct.Build(db)
			tb.AddRowf("CT-Index", "t6/c8/4096b (default)", mb(ct.SizeBytes()))
			ctBig := ctindex.New(ctindex.Options{TreeSize: 7, CycleSize: 9, Bits: 8192, HashCount: 2})
			ctBig.Build(db)
			tb.AddRowf("CT-Index", "t7/c9/8192b (larger)", mb(ctBig.SizeBytes()))

			// iGQ overhead after a full workload at the scaled C
			cacheC, cacheW := sparseCache(cfg)
			qs := workload.Generate(db, workload.Spec{
				NumQueries: sparseWorkloadLen(cfg),
				GraphDist:  workload.Zipf, NodeDist: workload.Zipf,
				Alpha: 1.4, Seed: cfg.Seed + 7000,
			})
			ig := core.New(gr4, db, core.Options{CacheSize: cacheC, Window: cacheW})
			for _, q := range qs {
				ig.Query(q.G)
			}
			tb.AddRowf("iGQ", fmt.Sprintf("query index, C=%d", cacheC), mb(ig.SizeBytes()))
			ratio := 100 * float64(ig.SizeBytes()) / float64(gr4.SizeBytes())
			fmt.Fprintf(w, "%s", tb)
			fmt.Fprintf(w, "\niGQ overhead vs Grapes base index: %.2f%%\n", ratio)
			fmt.Fprintln(w, "Paper shape: one extra feature size nearly doubles the base indexes;")
			fmt.Fprintln(w, "the iGQ query index is a negligible fraction of any of them.")
			return nil
		},
	})
}
