package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/index/ggsx"
	"repro/internal/workload"
)

// testCfg keeps experiment tests fast.
func testCfg() Config { return Config{Scale: 0.25, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	wantIDs := []string{
		"table1",
		"fig1", "fig2", "fig3",
		"fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"ablation-paths", "ablation-eviction", "ablation-engines",
		"ablation-partition", "supergraph-speedup",
	}
	for _, id := range wantIDs {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(wantIDs) {
		t.Errorf("registry holds %d experiments, want >= %d", len(All()), len(wantIDs))
	}
}

func TestAllOrdering(t *testing.T) {
	all := All()
	// table1 first, figures in numeric order, extensions last
	if all[0].ID != "table1" {
		t.Errorf("first experiment = %q", all[0].ID)
	}
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if idx["fig2"] > idx["fig10"] {
		t.Error("fig2 should sort before fig10 (numeric, not lexicographic)")
	}
	if idx["ablation-paths"] < idx["fig18"] {
		t.Error("extensions should sort after figures")
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown id found")
	}
}

func TestTable1Output(t *testing.T) {
	e, _ := ByID("table1")
	var buf bytes.Buffer
	if err := e.Run(testCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AIDS", "PDBS", "PPI", "Synthetic", "avg.deg", "40000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Output(t *testing.T) {
	e, _ := ByID("fig2")
	var buf bytes.Buffer
	if err := e.Run(testCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GGSX", "Grapes", "CT-Index", "avg.candidates", "avg.falsepos"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9TrendMonotone(t *testing.T) {
	// the α-sensitivity trend is the paper's clearest claim; assert it
	// holds at test scale: speedup(α=2.0) > speedup(α=1.1)
	cfg := testCfg()
	grid, _ := runZipfGrid(cfg)
	lo := grid[1.1].isoTestSpeedup()
	hi := grid[2.0].isoTestSpeedup()
	if !(hi > lo) {
		t.Errorf("speedup not increasing with skew: α=1.1 → %.2f, α=2.0 → %.2f", lo, hi)
	}
	for _, alpha := range []float64{1.1, 1.4, 2.0} {
		if s := grid[alpha].isoTestSpeedup(); s < 1.0 {
			t.Errorf("α=%.1f: iGQ slower than baseline (%.2f)", alpha, s)
		}
	}
}

func TestFig10Output(t *testing.T) {
	e, _ := ByID("fig10")
	var buf bytes.Buffer
	if err := e.Run(testCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Q4", "whole", "PPI"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig18Output(t *testing.T) {
	// fig18 at reduced scale: sizes must be positive and larger configs
	// bigger than defaults
	cfg := Config{Scale: 0.1, Seed: 7}
	e, _ := ByID("fig18")
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GGSX", "Grapes", "CT-Index", "iGQ", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig18 output missing %q", want)
		}
	}
}

func TestAblationPathsOutput(t *testing.T) {
	e, _ := ByID("ablation-paths")
	var buf bytes.Buffer
	if err := e.Run(testCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"both paths", "Isub only", "Isuper only"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestRunnerPairAnswersAgree(t *testing.T) {
	// the runner must measure without changing results: baseline answer
	// count equals iGQ answer count per query position
	cfg := testCfg()
	spec := scaledAIDS(cfg)
	db := dataset.Generate(spec)
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	qs := workload.Generate(db, workload.Spec{
		NumQueries: 60, GraphDist: workload.Zipf, NodeDist: workload.Uniform,
		Alpha: 1.4, Seed: 11,
	})
	pr := runPair(m, db, qs, 10, core.Options{CacheSize: 30, Window: 10})
	if len(pr.Base) != len(pr.IGQ) {
		t.Fatalf("metric lengths differ: %d vs %d", len(pr.Base), len(pr.IGQ))
	}
	for i := range pr.Base {
		if pr.Base[i].Answers != pr.IGQ[i].Answers {
			t.Fatalf("query %d: baseline %d answers, iGQ %d", i, pr.Base[i].Answers, pr.IGQ[i].Answers)
		}
		if pr.IGQ[i].IsoTests > pr.Base[i].IsoTests {
			t.Fatalf("query %d: iGQ ran MORE tests (%d > %d)", i, pr.IGQ[i].IsoTests, pr.Base[i].IsoTests)
		}
	}
	if s := pr.isoTestSpeedup(); s < 1.0 {
		t.Errorf("aggregate iso speedup %.2f < 1", s)
	}
}

func TestRunnerBySize(t *testing.T) {
	pr := pairResult{
		Base: []queryMetrics{{SizeClass: 4, IsoTests: 10}, {SizeClass: 8, IsoTests: 20}},
		IGQ:  []queryMetrics{{SizeClass: 4, IsoTests: 5}, {SizeClass: 8, IsoTests: 10}},
	}
	groups := pr.bySize()
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if s := groups[4].isoTestSpeedup(); s != 2 {
		t.Errorf("Q4 speedup = %v", s)
	}
}

func TestAvgOf(t *testing.T) {
	ms := []queryMetrics{{IsoTests: 2}, {IsoTests: 4}}
	if got := avgOf(ms, func(m queryMetrics) float64 { return float64(m.IsoTests) }); got != 3 {
		t.Errorf("avgOf = %v", got)
	}
	if got := avgOf(nil, func(m queryMetrics) float64 { return 1 }); got != 0 {
		t.Errorf("avgOf(nil) = %v", got)
	}
}

func TestBaselineMetricsConsistent(t *testing.T) {
	cfg := testCfg()
	db := dataset.Generate(scaledAIDS(cfg))
	m := ggsx.New(ggsx.DefaultOptions())
	m.Build(db)
	qs := workload.Generate(db, workload.Spec{
		NumQueries: 30, GraphDist: workload.Uniform, NodeDist: workload.Uniform, Seed: 5,
	})
	for i, qm := range runBaseline(m, qs) {
		if qm.IsoTests != qm.Candidates {
			t.Fatalf("query %d: tests %d != candidates %d", i, qm.IsoTests, qm.Candidates)
		}
		if qm.Answers+qm.FalsePos != qm.Candidates {
			t.Fatalf("query %d: answers %d + FPs %d != candidates %d",
				i, qm.Answers, qm.FalsePos, qm.Candidates)
		}
		if qm.Answers == 0 {
			t.Fatalf("query %d: extraction guarantees >=1 answer", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1.0 || c.Seed == 0 {
		t.Errorf("defaults: %+v", c)
	}
	if got := c.scaled(100, 10); got != 100 {
		t.Errorf("scaled(100) = %d", got)
	}
	small := Config{Scale: 0.01, Seed: 1}
	if got := small.scaled(100, 10); got != 10 {
		t.Errorf("floor not applied: %d", got)
	}
}
