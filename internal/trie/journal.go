package trie

// Delta journals: O(delta) persistence of dataset mutations.
//
// A version-2 trie snapshot ends with a section stream — zero or more
// journal sections followed by one terminator byte (see the format
// specification in persist.go). Each journal section is the op log of one
// persisted mutation batch: the same AppendGraph/RemoveGraph ops a live
// Mutation stages, encoded with canonical key strings (FeatureIDs are
// process-local and the snapshot dictionary is compacted on write, so IDs
// are not stable across files). ReadFrom replays journals through the very
// same Mutation.Apply path the live engine mutates with, which is what
// pins a journaled snapshot to the live in-memory state byte for byte.
//
// AppendJournalSection turns "persist a mutation" into a seek-to-end
// append: it replaces the file's trailing terminator with
// {journal section, terminator}, leaving everything before it untouched —
// an O(delta) write instead of the O(dataset) full rewrite of WriteTo.
//
// Durability & crash safety: journals are CRC-guarded like segments, and
// the terminator byte is what commits an append — a crash mid-append
// leaves a valid snapshot prefix followed by a terminator-less torn
// section. The loader never serves a half-applied delta: it either drops
// the torn tail and reports a TailRecovery (default), or fails outright
// (LoadOptions.Strict) — see the Durability section in persist.go.
// RepairSnapshotTail truncates a recovered file back to its committed
// prefix so the next append finds a well-formed snapshot; callers that
// need the append itself durable fsync after it returns
// (index.AppendIndexDelta does).
//
// Each journal carries a JournalStamp — the dataset fingerprint *after*
// its ops. Snapshot consumers that guard against dataset divergence (the
// index envelope's checksum) validate against the newest stamp, so a
// journaled snapshot still refuses to load against the wrong dataset even
// though its envelope header was written for the base dataset.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// JournalStamp fingerprints the dataset state a journal's ops lead to.
type JournalStamp struct {
	DBChecksum uint64 // index.DBChecksum of the post-mutation dataset
	NumGraphs  int    // post-mutation dataset size
}

// Journal accumulates mutation ops awaiting an O(delta) persist. Methods
// record each applied Mutation into one pending Journal and drain it with
// AppendJournalSection; a full WriteTo makes the pending ops obsolete.
type Journal struct {
	ops []mutOp
}

// Empty reports whether the journal holds no ops.
func (j *Journal) Empty() bool { return len(j.ops) == 0 }

// Ops returns the number of staged dataset operations.
func (j *Journal) Ops() int { return len(j.ops) }

// Reset drops all staged ops.
func (j *Journal) Reset() { j.ops = nil }

// OpMix counts the staged ops by kind. Removals are structurally heavier
// to replay than appends (scrub + re-home of the swapped graph), which is
// what the workload-adaptive compaction threshold in index.AppendIndexDelta
// weighs.
func (j *Journal) OpMix() (appends, removes int) {
	for _, op := range j.ops {
		if op.kind == opRemove {
			removes++
		} else {
			appends++
		}
	}
	return appends, removes
}

// JournalStamp returns the stamp of the last journal section replayed into
// this trie by ReadFrom, or nil when the loaded snapshot carried none (or
// the trie was not loaded at all). Consumers validating dataset identity
// must prefer this over the envelope a base snapshot was written with.
func (t *Trie) JournalStamp() *JournalStamp { return t.stamp }

// encodeBody serialises the journal ops with their stamp. Layout (scalars
// are uvarints unless noted):
//
//	checksum  uint64 LE        — stamp: post-mutation dataset checksum
//	ngraphs   uvarint          — stamp: post-mutation dataset size
//	nkeys     uvarint          — journal-local key table, first-use order
//	nkeys × { klen, key bytes }
//	nops      uvarint
//	nops × {
//	  kind    byte             — 1 append, 2 remove
//	  append: graph, nfeat × { keyIdx, count, nlocs, nlocs × locΔ }
//	  remove: removed, swapped (== removed when none),
//	          nscrub × keyIdx,
//	          nswap  × { keyIdx, count, nlocs, nlocs × locΔ }
//	}
//
// Locations are delta-encoded exactly like segment location lists.
func (j *Journal) encodeBody(stamp JournalStamp) []byte {
	keyIdx := make(map[string]uint64)
	var keys []string
	idx := func(k string) uint64 {
		if i, ok := keyIdx[k]; ok {
			return i
		}
		i := uint64(len(keys))
		keyIdx[k] = i
		keys = append(keys, k)
		return i
	}
	// First pass interns every key so the table precedes the ops.
	for _, op := range j.ops {
		for _, f := range op.feats {
			idx(f.Key)
		}
		for _, k := range op.scrub {
			idx(k)
		}
	}

	buf := binary.LittleEndian.AppendUint64(nil, stamp.DBChecksum)
	buf = binary.AppendUvarint(buf, uint64(stamp.NumGraphs))
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	appendFeat := func(f GraphFeature) {
		buf = binary.AppendUvarint(buf, keyIdx[f.Key])
		buf = binary.AppendUvarint(buf, uint64(f.Count))
		buf = binary.AppendUvarint(buf, uint64(len(f.Locs)))
		prev := int32(0)
		for _, l := range f.Locs {
			buf = binary.AppendUvarint(buf, uint64(l-prev))
			prev = l
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(j.ops)))
	for _, op := range j.ops {
		buf = append(buf, op.kind)
		switch op.kind {
		case opAppend:
			buf = binary.AppendUvarint(buf, uint64(op.graph))
			buf = binary.AppendUvarint(buf, uint64(len(op.feats)))
			for _, f := range op.feats {
				appendFeat(f)
			}
		case opRemove:
			buf = binary.AppendUvarint(buf, uint64(op.graph))
			buf = binary.AppendUvarint(buf, uint64(op.swapped))
			buf = binary.AppendUvarint(buf, uint64(len(op.scrub)))
			for _, k := range op.scrub {
				buf = binary.AppendUvarint(buf, keyIdx[k])
			}
			buf = binary.AppendUvarint(buf, uint64(len(op.feats)))
			for _, f := range op.feats {
				appendFeat(f)
			}
		}
	}
	return buf
}

// decodeJournalBody parses one journal body back into its stamp and ops.
// Every structural field is validated; errors wrap ErrCorrupt.
func decodeJournalBody(body []byte) (JournalStamp, []mutOp, error) {
	var stamp JournalStamp
	if len(body) < 8 {
		return stamp, nil, fmt.Errorf("%w: journal stamp", ErrCorrupt)
	}
	stamp.DBChecksum = binary.LittleEndian.Uint64(body)
	d := segDecoder{b: body, off: 8}
	ng, err := d.uvarint()
	if err != nil || ng > math.MaxInt32 {
		return stamp, nil, fmt.Errorf("%w: journal graph count", ErrCorrupt)
	}
	stamp.NumGraphs = int(ng)

	nKeys, err := d.uvarint()
	if err != nil || nKeys > uint64(len(body)) {
		return stamp, nil, fmt.Errorf("%w: journal key count", ErrCorrupt)
	}
	keys := make([]string, 0, nKeys)
	for i := uint64(0); i < nKeys; i++ {
		klen, err := d.uvarint()
		if err != nil || klen > maxKeyLen || d.off+int(klen) > len(body) {
			return stamp, nil, fmt.Errorf("%w: journal key", ErrCorrupt)
		}
		keys = append(keys, string(body[d.off:d.off+int(klen)]))
		d.off += int(klen)
	}
	key := func() (string, error) {
		i, err := d.uvarint()
		if err != nil || i >= uint64(len(keys)) {
			return "", fmt.Errorf("%w: journal key index", ErrCorrupt)
		}
		return keys[i], nil
	}
	feat := func() (GraphFeature, error) {
		var f GraphFeature
		k, err := key()
		if err != nil {
			return f, err
		}
		f.Key = k
		count, err := d.uvarint()
		if err != nil || count > math.MaxInt32 {
			return f, fmt.Errorf("%w: journal feature count", ErrCorrupt)
		}
		f.Count = int32(count)
		nLocs, err := d.uvarint()
		if err != nil || nLocs > uint64(len(body)) {
			return f, fmt.Errorf("%w: journal location count", ErrCorrupt)
		}
		var prev uint64
		for l := uint64(0); l < nLocs; l++ {
			delta, err := d.uvarint()
			if err != nil {
				return f, err
			}
			v := prev + delta
			if l > 0 && delta == 0 || v > math.MaxInt32 {
				return f, fmt.Errorf("%w: journal location", ErrCorrupt)
			}
			prev = v
			f.Locs = append(f.Locs, int32(v))
		}
		return f, nil
	}

	nOps, err := d.uvarint()
	if err != nil || nOps > uint64(len(body)) {
		return stamp, nil, fmt.Errorf("%w: journal op count", ErrCorrupt)
	}
	ops := make([]mutOp, 0, nOps)
	for i := uint64(0); i < nOps; i++ {
		if d.off >= len(body) {
			return stamp, nil, fmt.Errorf("%w: truncated journal op", ErrCorrupt)
		}
		kind := body[d.off]
		d.off++
		var op mutOp
		op.kind = kind
		switch kind {
		case opAppend:
			g, err := d.uvarint()
			if err != nil || g > math.MaxInt32 {
				return stamp, nil, fmt.Errorf("%w: journal graph id", ErrCorrupt)
			}
			op.graph = int32(g)
			nf, err := d.uvarint()
			if err != nil || nf > uint64(len(body)) {
				return stamp, nil, fmt.Errorf("%w: journal feature list", ErrCorrupt)
			}
			for f := uint64(0); f < nf; f++ {
				gf, err := feat()
				if err != nil {
					return stamp, nil, err
				}
				op.feats = append(op.feats, gf)
			}
		case opRemove:
			g, err := d.uvarint()
			if err != nil || g > math.MaxInt32 {
				return stamp, nil, fmt.Errorf("%w: journal removed id", ErrCorrupt)
			}
			op.graph = int32(g)
			sw, err := d.uvarint()
			if err != nil || sw > math.MaxInt32 {
				return stamp, nil, fmt.Errorf("%w: journal swapped id", ErrCorrupt)
			}
			op.swapped = int32(sw)
			ns, err := d.uvarint()
			if err != nil || ns > uint64(len(body)) {
				return stamp, nil, fmt.Errorf("%w: journal scrub list", ErrCorrupt)
			}
			for s := uint64(0); s < ns; s++ {
				k, err := key()
				if err != nil {
					return stamp, nil, err
				}
				op.scrub = append(op.scrub, k)
			}
			nf, err := d.uvarint()
			if err != nil || nf > uint64(len(body)) {
				return stamp, nil, fmt.Errorf("%w: journal swap list", ErrCorrupt)
			}
			for f := uint64(0); f < nf; f++ {
				gf, err := feat()
				if err != nil {
					return stamp, nil, err
				}
				op.feats = append(op.feats, gf)
			}
		default:
			return stamp, nil, fmt.Errorf("%w: journal op kind %d", ErrCorrupt, kind)
		}
		ops = append(ops, op)
	}
	if d.off != len(body) {
		return stamp, nil, fmt.Errorf("%w: %d trailing journal bytes", ErrCorrupt, len(body)-d.off)
	}
	return stamp, ops, nil
}

// replayJournal applies one decoded journal to the trie through the same
// Mutation.Apply path live mutation uses (the trie is private during load,
// so adopting the applied result in place is safe).
func (t *Trie) replayJournal(stamp JournalStamp, ops []mutOp) {
	m := &Mutation{base: t, ops: ops}
	nt := m.Apply()
	t.shards = nt.shards
	t.root = nt.root
	t.nodes = nt.nodes
	t.dead = nt.dead
	st := stamp
	t.stamp = &st
}

// CheckJournalable reports whether the trie snapshot at r's current
// position supports journal appends (format version ≥ 2). It consumes the
// snapshot magic and version from r.
func CheckJournalable(r io.Reader) error {
	br := asByteScanner(r)
	var magic [len(persistMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(magic[:]) != persistMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: reading version: %v", ErrCorrupt, err)
	}
	if version < 2 {
		return fmt.Errorf("trie: snapshot version %d predates delta journals (rewrite with WriteTo)", version)
	}
	if version > persistVersion {
		return fmt.Errorf("trie: snapshot version %d unsupported (this build writes %d)", version, persistVersion)
	}
	return nil
}

// AppendJournalSection appends j's ops (stamped with the post-mutation
// dataset fingerprint) as one journal section at the end of the snapshot
// in f, which must end with the section terminator of a version ≥ 2 trie
// snapshot — callers validate the header with CheckJournalable first. The
// write is O(journal): seek to the end, replace the terminator with
// {section, terminator}. Returns the number of bytes the file grew by.
func AppendJournalSection(f io.ReadWriteSeeker, j *Journal, stamp JournalStamp) (int64, error) {
	if _, err := f.Seek(-1, io.SeekEnd); err != nil {
		return 0, fmt.Errorf("trie: seeking snapshot end: %w", err)
	}
	var tail [1]byte
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return 0, fmt.Errorf("trie: reading snapshot terminator: %w", err)
	}
	if tail[0] != sectionEnd {
		return 0, fmt.Errorf("%w: snapshot does not end with a section terminator", ErrCorrupt)
	}
	if _, err := f.Seek(-1, io.SeekEnd); err != nil {
		return 0, fmt.Errorf("trie: seeking snapshot end: %w", err)
	}
	body := j.encodeBody(stamp)
	sec := make([]byte, 0, len(body)+16)
	sec = append(sec, sectionJournal)
	sec = binary.AppendUvarint(sec, uint64(len(body)))
	sec = binary.LittleEndian.AppendUint32(sec, crc32.ChecksumIEEE(body))
	sec = append(sec, body...)
	sec = append(sec, sectionEnd)
	if _, err := f.Write(sec); err != nil {
		return 0, fmt.Errorf("trie: appending journal: %w", err)
	}
	return int64(len(sec) - 1), nil
}

// RepairSnapshotTail repairs a snapshot file whose load reported a
// TailRecovery: the file is truncated back to the committed prefix, a
// fresh section terminator is written, and the file is fsynced, so the
// next AppendJournalSection (and any strict load) finds a well-formed
// snapshot holding exactly the recovered state. Truncating first keeps
// the repair itself crash-safe: a kill between the two steps leaves a
// terminator-less committed prefix, which is again recoverable. No-op
// when rec is nil.
func RepairSnapshotTail(f io.WriteSeeker, rec *TailRecovery) error {
	if rec == nil {
		return nil
	}
	t, ok := f.(interface{ Truncate(int64) error })
	if !ok {
		return fmt.Errorf("trie: snapshot tail repair needs truncation support")
	}
	if err := t.Truncate(rec.CommittedBytes); err != nil {
		return fmt.Errorf("trie: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(rec.CommittedBytes, io.SeekStart); err != nil {
		return fmt.Errorf("trie: seeking committed prefix: %w", err)
	}
	if _, err := f.Write([]byte{sectionEnd}); err != nil {
		return fmt.Errorf("trie: rewriting terminator: %w", err)
	}
	if s, ok := f.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("trie: syncing repaired snapshot: %w", err)
		}
	}
	return nil
}

// journalOpCount best-effort counts the ops a discarded journal body
// claimed to carry: it parses the stamp, key table and op-count header
// leniently and returns 0 when the header itself is unreadable.
func journalOpCount(body []byte) int {
	if len(body) < 8 {
		return 0
	}
	d := segDecoder{b: body, off: 8}
	if _, err := d.uvarint(); err != nil { // ngraphs
		return 0
	}
	nKeys, err := d.uvarint()
	if err != nil || nKeys > uint64(len(body)) {
		return 0
	}
	for i := uint64(0); i < nKeys; i++ {
		klen, err := d.uvarint()
		if err != nil || klen > maxKeyLen || d.off+int(klen) > len(body) {
			return 0
		}
		d.off += int(klen)
	}
	nOps, err := d.uvarint()
	if err != nil || nOps > uint64(len(body)) {
		return 0
	}
	return int(nOps)
}
