package trie

// Cardinality-adaptive posting containers.
//
// Every feature's graph-ID set is stored in one of three physical
// encodings, chosen per feature by byte cost (the indexing literature's
// "dense lists → bitmaps; sparse → arrays" rule, plus run-length for
// clustered ID ranges):
//
//   - array:  sorted []int32 — 4 bytes per member. Optimal for sparse
//     features, and the only encoding whose probe cost is independent of
//     the ID span.
//   - bitmap: 64-bit words covering [base, base+64·len) — span/8 bytes.
//     Optimal above ~3% density; intersections of two bitmaps collapse to
//     word-wise AND, and membership probes are O(1).
//   - runs:   maximal consecutive intervals — 8 bytes per run. Optimal for
//     clustered ID ranges (bulk-loaded datasets, appended tails).
//
// The choice is a *pure function* of the member set (kindFor): any build
// path — sequential inserts, parallel staged merges, COW mutation, snapshot
// decode of a legacy format — converges on the same container for the same
// set, which is what keeps differently-built tries byte-identical on disk
// and identical in SizeBytes accounting. In-place edits maintain the
// invariant by re-checking the choice after every operation (reencode);
// batched COW mutation re-checks once per touched feature at seal time.

import (
	"math"
	"math/bits"
	"slices"
)

// ContainerKind identifies the physical encoding of a posting container.
type ContainerKind uint8

const (
	// KindArray is a sorted []int32 of member IDs (sparse lists).
	KindArray ContainerKind = iota
	// KindBitmap is a 64-bit-word bitmap over the ID span (dense lists).
	KindBitmap
	// KindRuns is a list of maximal consecutive ID intervals (clustered
	// lists).
	KindRuns
)

// String names the kind for diagnostics and experiment tables.
func (k ContainerKind) String() string {
	switch k {
	case KindArray:
		return "array"
	case KindBitmap:
		return "bitmap"
	case KindRuns:
		return "runs"
	}
	return "unknown"
}

// ContainerPolicy selects how posting containers are chosen.
type ContainerPolicy uint8

const (
	// AdaptiveContainers picks the cheapest encoding per feature by byte
	// cost (the default).
	AdaptiveContainers ContainerPolicy = iota
	// ArrayOnlyContainers forces every posting list into a sorted array —
	// the pre-container flat representation, kept as the differential-test
	// and benchmarking reference.
	ArrayOnlyContainers
)

// Container is the graph-ID-set half of one feature's postings: an
// immutable-from-outside, duplicate-free ascending set of int32 IDs. All
// implementations are observationally identical — only probe cost, memory
// and on-disk footprint differ. A Container is never empty (drained
// features are deleted from the store outright).
type Container interface {
	// Kind identifies the physical encoding.
	Kind() ContainerKind
	// Len returns the cardinality (≥ 1).
	Len() int
	// Contains reports membership of g.
	Contains(g int32) bool
	// Rank returns the number of members smaller than g, and whether g is
	// itself a member — the index into rank-aligned satellite arrays
	// (counts, locations) when it is.
	Rank(g int32) (int, bool)
	// Range visits the members in ascending order with their ranks,
	// stopping early when fn returns false.
	Range(fn func(i int, g int32) bool)
	// AppendTo appends the members in ascending order.
	AppendTo(dst []int32) []int32
	// Min returns the smallest member.
	Min() int32
	// Max returns the largest member.
	Max() int32
	// SizeBytes approximates the in-memory footprint.
	SizeBytes() int
}

// smallSetMax is the cardinality below which the encoding choice is not
// even evaluated: tiny sets are arrays, full stop. This keeps the hot
// build path branch-cheap for the long tail of rare features.
const smallSetMax = 4

// kindFor picks the canonical encoding for a member set: n IDs spanning
// [lo, hi] in nruns maximal consecutive runs. The choice minimises encoded
// bytes (array 4n, runs 8·nruns, bitmap 8 bytes per 64-ID word of the
// span); ties prefer array, then runs, then bitmap, so the function is a
// deterministic total order — the purity every differential guarantee in
// this package leans on.
func kindFor(policy ContainerPolicy, n int, lo, hi int32, nruns int) ContainerKind {
	if policy == ArrayOnlyContainers || n <= smallSetMax {
		return KindArray
	}
	arrayBytes := 4 * n
	runBytes := 8 * nruns
	words := int(hi>>6) - int(lo>>6) + 1
	bitmapBytes := 8 * words
	best, bytes := KindArray, arrayBytes
	if runBytes < bytes {
		best, bytes = KindRuns, runBytes
	}
	if bitmapBytes < bytes {
		best = KindBitmap
	}
	return best
}

// countRuns returns the number of maximal consecutive runs in a sorted,
// duplicate-free ID slice.
func countRuns(ids []int32) int {
	if len(ids) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			runs++
		}
	}
	return runs
}

// buildContainer encodes a sorted, duplicate-free, non-empty ID slice as
// kind. The array container takes ownership of ids; the other kinds leave
// it untouched.
func buildContainer(kind ContainerKind, ids []int32) Container {
	switch kind {
	case KindBitmap:
		base := (ids[0] >> 6) << 6
		words := make([]uint64, int(ids[len(ids)-1]>>6)-int(ids[0]>>6)+1)
		for _, g := range ids {
			o := g - base
			words[o>>6] |= 1 << uint(o&63)
		}
		return &BitmapContainer{base: base, words: words, card: len(ids)}
	case KindRuns:
		var runs []Run
		for i := 0; i < len(ids); {
			j := i
			for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
				j++
			}
			runs = append(runs, Run{Start: ids[i], End: ids[j]})
			i = j + 1
		}
		return &RunContainer{runs: runs, card: len(ids)}
	default:
		return &ArrayContainer{ids: ids}
	}
}

// ArrayContainer stores the members as a sorted slice — the sparse-list
// (and forced-reference) encoding.
type ArrayContainer struct{ ids []int32 }

// Slice exposes the backing slice (ascending, duplicate-free). Callers
// must not modify it — it is the zero-copy fast path for array∩array
// intersections.
func (a *ArrayContainer) Slice() []int32 { return a.ids }

func (a *ArrayContainer) Kind() ContainerKind { return KindArray }
func (a *ArrayContainer) Len() int            { return len(a.ids) }

func (a *ArrayContainer) Contains(g int32) bool {
	_, ok := slices.BinarySearch(a.ids, g)
	return ok
}

func (a *ArrayContainer) Rank(g int32) (int, bool) { return slices.BinarySearch(a.ids, g) }

func (a *ArrayContainer) Range(fn func(i int, g int32) bool) {
	for i, g := range a.ids {
		if !fn(i, g) {
			return
		}
	}
}

func (a *ArrayContainer) AppendTo(dst []int32) []int32 { return append(dst, a.ids...) }
func (a *ArrayContainer) Min() int32                   { return a.ids[0] }
func (a *ArrayContainer) Max() int32                   { return a.ids[len(a.ids)-1] }
func (a *ArrayContainer) SizeBytes() int               { return 24 + 4*len(a.ids) }

func (a *ArrayContainer) insertAt(i int, g int32) { a.ids = slices.Insert(a.ids, i, g) }
func (a *ArrayContainer) removeAt(i int)          { a.ids = slices.Delete(a.ids, i, i+1) }

// BitmapContainer stores the members as 64-bit words covering the span
// [base, base+64·len(words)) — the dense-list encoding. Invariants: base
// is a multiple of 64 and the first and last words are non-zero, so Min
// and Max are O(1).
type BitmapContainer struct {
	base  int32
	words []uint64
	card  int
}

// Base returns the ID of bit 0 of the first word (a multiple of 64).
func (b *BitmapContainer) Base() int32 { return b.base }

// Words exposes the backing words. Callers must not modify them — this is
// the zero-copy input to the bitmap∧bitmap word-AND intersection path.
func (b *BitmapContainer) Words() []uint64 { return b.words }

func (b *BitmapContainer) Kind() ContainerKind { return KindBitmap }
func (b *BitmapContainer) Len() int            { return b.card }

func (b *BitmapContainer) Contains(g int32) bool {
	o := int64(g) - int64(b.base)
	if o < 0 || o >= int64(len(b.words))<<6 {
		return false
	}
	return b.words[o>>6]&(1<<uint(o&63)) != 0
}

func (b *BitmapContainer) Rank(g int32) (int, bool) {
	o := int64(g) - int64(b.base)
	if o < 0 {
		return 0, false
	}
	if o >= int64(len(b.words))<<6 {
		return b.card, false
	}
	r := 0
	for _, w := range b.words[:o>>6] {
		r += bits.OnesCount64(w)
	}
	w := b.words[o>>6]
	bit := uint(o & 63)
	r += bits.OnesCount64(w & (1<<bit - 1))
	return r, w&(1<<bit) != 0
}

func (b *BitmapContainer) Range(fn func(i int, g int32) bool) {
	i := 0
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(i, b.base+int32(wi<<6+t)) {
				return
			}
			i++
			w &= w - 1
		}
	}
}

func (b *BitmapContainer) AppendTo(dst []int32) []int32 {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			dst = append(dst, b.base+int32(wi<<6+t))
			w &= w - 1
		}
	}
	return dst
}

func (b *BitmapContainer) Min() int32 {
	return b.base + int32(bits.TrailingZeros64(b.words[0]))
}

func (b *BitmapContainer) Max() int32 {
	last := len(b.words) - 1
	return b.base + int32(last<<6+63-bits.LeadingZeros64(b.words[last]))
}

func (b *BitmapContainer) SizeBytes() int { return 32 + 8*len(b.words) }

// set adds g, extending the word span as needed. g must not be a member.
func (b *BitmapContainer) set(g int32) {
	if g < b.base {
		newBase := (g >> 6) << 6
		grow := int(b.base>>6) - int(newBase>>6)
		b.words = append(make([]uint64, grow, grow+len(b.words)), b.words...)
		b.base = newBase
	}
	o := int(g) - int(b.base)
	for o>>6 >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[o>>6] |= 1 << uint(o&63)
	b.card++
}

// clear removes g (which must be a member) and re-trims zero edge words to
// keep the Min/Max invariant.
func (b *BitmapContainer) clear(g int32) {
	o := int(g) - int(b.base)
	b.words[o>>6] &^= 1 << uint(o&63)
	b.card--
	lo := 0
	for lo < len(b.words) && b.words[lo] == 0 {
		lo++
	}
	hi := len(b.words)
	for hi > lo && b.words[hi-1] == 0 {
		hi--
	}
	if lo > 0 || hi < len(b.words) {
		b.base += int32(lo << 6)
		b.words = b.words[lo:hi]
	}
}

// runCount counts the maximal consecutive runs directly from the words.
func (b *BitmapContainer) runCount() int {
	runs := 0
	carry := uint64(0) // bit 63 of the previous word
	for _, w := range b.words {
		// A run starts at every 0→1 transition: bits set in w whose
		// predecessor (previous bit, or the carry across words) is clear.
		runs += bits.OnesCount64(w &^ (w<<1 | carry))
		carry = w >> 63
	}
	return runs
}

// Run is one maximal consecutive interval [Start, End] (inclusive).
type Run struct{ Start, End int32 }

// RunContainer stores the members as maximal consecutive intervals — the
// clustered-list encoding. Invariants: runs are ascending, Start ≤ End,
// and consecutive runs are separated by a gap of at least 2 (they would
// otherwise merge).
type RunContainer struct {
	runs []Run
	card int
}

// Runs exposes the backing intervals. Callers must not modify them.
func (r *RunContainer) Runs() []Run { return r.runs }

func (r *RunContainer) Kind() ContainerKind { return KindRuns }
func (r *RunContainer) Len() int            { return r.card }

// find returns the index of the first run with End ≥ g.
func (r *RunContainer) find(g int32) int {
	lo, hi := 0, len(r.runs)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.runs[mid].End < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (r *RunContainer) Contains(g int32) bool {
	i := r.find(g)
	return i < len(r.runs) && r.runs[i].Start <= g
}

func (r *RunContainer) Rank(g int32) (int, bool) {
	rank := 0
	for _, run := range r.runs {
		if g < run.Start {
			return rank, false
		}
		if g <= run.End {
			return rank + int(g-run.Start), true
		}
		rank += int(run.End-run.Start) + 1
	}
	return rank, false
}

func (r *RunContainer) Range(fn func(i int, g int32) bool) {
	i := 0
	for _, run := range r.runs {
		for g := run.Start; ; g++ {
			if !fn(i, g) {
				return
			}
			i++
			if g == run.End {
				break
			}
		}
	}
}

func (r *RunContainer) AppendTo(dst []int32) []int32 {
	for _, run := range r.runs {
		for g := run.Start; ; g++ {
			dst = append(dst, g)
			if g == run.End {
				break
			}
		}
	}
	return dst
}

func (r *RunContainer) Min() int32     { return r.runs[0].Start }
func (r *RunContainer) Max() int32     { return r.runs[len(r.runs)-1].End }
func (r *RunContainer) SizeBytes() int { return 32 + 8*len(r.runs) }

// insert adds g (which must not be a member), extending, bridging or
// splitting runs as needed.
func (r *RunContainer) insert(g int32) {
	r.card++
	i := r.find(g)
	extendsPrev := g > math.MinInt32 && i > 0 && r.runs[i-1].End == g-1
	// find returned the first run with End ≥ g; since g is not a member,
	// that run (if any) starts beyond g.
	extendsNext := g < math.MaxInt32 && i < len(r.runs) && r.runs[i].Start == g+1
	switch {
	case extendsPrev && extendsNext:
		r.runs[i-1].End = r.runs[i].End
		r.runs = slices.Delete(r.runs, i, i+1)
	case extendsPrev:
		r.runs[i-1].End = g
	case extendsNext:
		r.runs[i].Start = g
	default:
		r.runs = slices.Insert(r.runs, i, Run{Start: g, End: g})
	}
}

// remove deletes g (which must be a member), shrinking or splitting its
// run.
func (r *RunContainer) remove(g int32) {
	r.card--
	i := r.find(g)
	run := r.runs[i]
	switch {
	case run.Start == run.End:
		r.runs = slices.Delete(r.runs, i, i+1)
	case g == run.Start:
		r.runs[i].Start = g + 1
	case g == run.End:
		r.runs[i].End = g - 1
	default:
		r.runs[i].End = g - 1
		r.runs = slices.Insert(r.runs, i+1, Run{Start: g + 1, End: run.End})
	}
}
