package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/features"
)

// diffDataset deterministically generates one graph-membership dataset
// covering every container regime: per feature the generator picks tiny
// (≤ smallSetMax members), sparse scatter (array), dense scatter (bitmap)
// or clustered ranges (runs), with occasional non-unit counts and location
// lists so the side slices are exercised alongside the id containers.
func diffDataset(seed int64, nFeats, nGraphs int) map[string][]Posting {
	rng := rand.New(rand.NewSource(seed))
	ds := make(map[string][]Posting, nFeats)
	for f := 0; f < nFeats; f++ {
		key := fmt.Sprintf("p:%d.%d.%d", f%7, f%5, f)
		var graphs []int32
		switch f % 4 {
		case 0: // tiny
			for g := 0; g < 1+rng.Intn(smallSetMax); g++ {
				graphs = append(graphs, int32(rng.Intn(nGraphs)))
			}
		case 1: // sparse scatter
			for g := 0; g < nGraphs; g++ {
				if rng.Intn(20) == 0 {
					graphs = append(graphs, int32(g))
				}
			}
		case 2: // dense scatter
			for g := 0; g < nGraphs; g++ {
				if rng.Intn(10) != 0 {
					graphs = append(graphs, int32(g))
				}
			}
		default: // clustered runs
			for g := 0; g < nGraphs; {
				runLen := 1 + rng.Intn(40)
				for j := 0; j < runLen && g < nGraphs; j++ {
					graphs = append(graphs, int32(g))
					g++
				}
				g += 1 + rng.Intn(30)
			}
		}
		seen := map[int32]bool{}
		var ps []Posting
		for _, g := range graphs {
			if seen[g] {
				continue
			}
			seen[g] = true
			p := Posting{Graph: g, Count: 1}
			if rng.Intn(5) == 0 {
				p.Count = int32(2 + rng.Intn(4))
			}
			if rng.Intn(6) == 0 {
				for v := int32(0); v < 12; v += int32(1 + rng.Intn(5)) {
					p.Locs = append(p.Locs, v)
				}
			}
			ps = append(ps, p)
		}
		ds[key] = ps
	}
	return ds
}

// buildPolicy inserts ds into a fresh trie under the given policy, in an
// order shuffled by seed (container choice must not depend on it).
func buildPolicy(policy ContainerPolicy, shards int, ds map[string][]Posting, seed int64) *Trie {
	tr := NewSharded(features.NewDict(), shards)
	tr.SetContainerPolicy(policy)
	type ins struct {
		key string
		p   Posting
	}
	var all []ins
	for k, ps := range ds {
		for _, p := range ps {
			all = append(all, ins{k, p})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, in := range all {
		tr.Insert(in.key, in.p)
	}
	return tr
}

// trieFingerprint captures everything observable about a trie's logical
// content: walk order, postings, and the count/node stats.
func trieFingerprint(tr *Trie) []string {
	out := []string{
		fmt.Sprintf("len=%d nodes=%d dead=%d maxlist=%d",
			tr.Len(), tr.NodeCount(), tr.DeadLen(), tr.MaxPostingLen()),
	}
	return append(out, dump(tr)...)
}

// TestAdaptiveMatchesArrayReference is the container-equivalence
// differential: adaptive containers must answer byte-identically to the
// forced-array reference across densities, shard layouts and insertion
// orders, and the adaptive encoding must never report a *larger* in-memory
// posting footprint than the flat arrays on this mixed-density data.
func TestAdaptiveMatchesArrayReference(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				ds := diffDataset(seed, 48, 700)
				adaptive := buildPolicy(AdaptiveContainers, shards, ds, seed)
				reference := buildPolicy(ArrayOnlyContainers, shards, ds, seed)
				if !reflect.DeepEqual(trieFingerprint(adaptive), trieFingerprint(reference)) {
					t.Fatal("adaptive trie diverges from the array reference")
				}
				// Same logical content under a different insertion order must
				// produce the identical canonical representation: every
				// container kind — and hence the SizeBytes accounting — is a
				// pure function of the member set, not of the build path.
				// (Snapshot *bytes* may differ: dictionary IDs, and with them
				// shard assignment, depend on interning order.)
				reordered := buildPolicy(AdaptiveContainers, shards, ds, seed+100)
				if !reflect.DeepEqual(trieFingerprint(adaptive), trieFingerprint(reordered)) {
					t.Error("logical content depends on insertion order")
				}
				if adaptive.SizeBytes() != reordered.SizeBytes() {
					t.Errorf("container choice depends on insertion order: SizeBytes %d vs %d",
						adaptive.SizeBytes(), reordered.SizeBytes())
				}
				if adaptive.SizeBytes() > reference.SizeBytes() {
					t.Errorf("adaptive SizeBytes %d exceeds array reference %d",
						adaptive.SizeBytes(), reference.SizeBytes())
				}
			})
		}
	}
}

// mutateBoth stages the identical mutation batch against both tries and
// applies it, returning the successors.
func mutateBoth(a, b *Trie, seed int64, nGraphs int) (*Trie, *Trie) {
	rng := rand.New(rand.NewSource(seed))
	var appended []GraphFeature
	for f := 0; f < 10; f++ {
		gf := GraphFeature{Key: fmt.Sprintf("p:new.%d", rng.Intn(6)), Count: int32(1 + rng.Intn(3))}
		if rng.Intn(3) == 0 {
			gf.Locs = []int32{int32(rng.Intn(5)), int32(5 + rng.Intn(5))}
		}
		appended = append(appended, gf)
	}
	// Scrub a graph that appears in many features: its feature keys are all
	// keys whose posting list contains it.
	victim := int32(rng.Intn(nGraphs))
	var scrub []string
	a.Walk(func(key string, posts []Posting) {
		for _, p := range posts {
			if p.Graph == victim {
				scrub = append(scrub, key)
				return
			}
		}
	})
	out := make([]*Trie, 2)
	for i, tr := range []*Trie{a, b} {
		m := tr.NewMutation()
		m.AppendGraph(int32(nGraphs), appended)
		m.RemoveGraph(victim, victim, scrub, nil)
		out[i] = m.Apply()
	}
	return out[0], out[1]
}

// TestAdaptiveSaveLoadMutateCycle pins equivalence across the full
// save→load→mutate→save lifecycle: after each step the adaptive trie must
// match the forced-array reference, loads must reproduce SizeBytes exactly,
// and re-saving must be byte-stable.
func TestAdaptiveSaveLoadMutateCycle(t *testing.T) {
	ds := diffDataset(11, 40, 500)
	adaptive := buildPolicy(AdaptiveContainers, 4, ds, 11)
	reference := buildPolicy(ArrayOnlyContainers, 4, ds, 11)

	reload := func(src *Trie, policy ContainerPolicy) *Trie {
		t.Helper()
		var buf bytes.Buffer
		if _, err := src.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got := NewSharded(features.NewDict(), 1)
		got.SetContainerPolicy(policy)
		if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		if got.SizeBytes() != src.SizeBytes() {
			t.Fatalf("SizeBytes after load %d, saved trie reports %d", got.SizeBytes(), src.SizeBytes())
		}
		return got
	}

	adaptive = reload(adaptive, AdaptiveContainers)
	// Cross-policy load: an array-only reader of the v3 adaptive snapshot
	// promotes every container to a flat array (the same mechanism that
	// promotes v1/v2 snapshots), preserving the logical content.
	crossed := reload(reference, ArrayOnlyContainers)
	if !reflect.DeepEqual(dump(adaptive), dump(crossed)) {
		t.Fatal("adaptive reader and array-only reader disagree after load")
	}

	for round := int64(0); round < 3; round++ {
		nGraphs := 500 + int(round)*1 // one graph appended per round
		adaptive, crossed = mutateBoth(adaptive, crossed, 77+round, nGraphs)
		if !reflect.DeepEqual(trieFingerprint(adaptive), trieFingerprint(crossed)) {
			t.Fatalf("round %d: adaptive diverges from array reference after mutation", round)
		}
		adaptive = reload(adaptive, AdaptiveContainers)
		var s1, s2 bytes.Buffer
		if _, err := adaptive.WriteTo(&s1); err != nil {
			t.Fatal(err)
		}
		if _, err := adaptive.WriteTo(&s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("round %d: re-save is not byte-stable", round)
		}
	}
}
