package trie

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/features"
)

// dumpTrie renders a trie's full observable state: Walk order, postings
// (including locations), node count and key count.
func dumpTrie(t *Trie) string {
	out := fmt.Sprintf("nodes=%d len=%d\n", t.NodeCount(), t.Len())
	t.Walk(func(k string, ps []Posting) {
		out += fmt.Sprintf("%q ->", k)
		for _, p := range ps {
			out += fmt.Sprintf(" {g=%d c=%d locs=%v}", p.Graph, p.Count, p.Locs)
		}
		out += "\n"
	})
	return out
}

// randomPostings produces a deterministic stream of (key, posting) pairs in
// "graph order": each graph's features appear once, as a sequential build
// would emit them.
func randomPostings(seed int64, nGraphs, nKeys int) [][]struct {
	key string
	p   Posting
} {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("p:%d.%d.%d", rng.Intn(7), rng.Intn(7), i%17)
	}
	out := make([][]struct {
		key string
		p   Posting
	}, nGraphs)
	for g := range out {
		seen := map[string]bool{}
		for n := 1 + rng.Intn(8); n > 0; n-- {
			k := keys[rng.Intn(len(keys))]
			if seen[k] {
				continue
			}
			seen[k] = true
			var locs []int32
			for v := int32(0); v < 6; v++ {
				if rng.Intn(2) == 0 {
					locs = append(locs, v)
				}
			}
			out[g] = append(out[g], struct {
				key string
				p   Posting
			}{k, Posting{Graph: int32(g), Count: int32(1 + rng.Intn(4)), Locs: locs}})
		}
	}
	return out
}

func TestNormalizeShards(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 64: 64, 65: 64, 1000: 64}
	for in, want := range cases {
		if got := normalizeShards(in); got != want {
			t.Errorf("normalizeShards(%d) = %d, want %d", in, got, want)
		}
	}
	if got := normalizeShards(0); got < 1 || got&(got-1) != 0 {
		t.Errorf("normalizeShards(0) = %d, want a positive power of two", got)
	}
}

// TestShardCountInvisible pins the tentpole invariant: the shard count never
// changes anything observable — postings, Walk order, node count, Len.
func TestShardCountInvisible(t *testing.T) {
	data := randomPostings(21, 30, 40)
	ref := NewSharded(features.NewDict(), 1)
	for _, g := range data {
		for _, kp := range g {
			ref.Insert(kp.key, kp.p)
		}
	}
	want := dumpTrie(ref)
	for _, k := range []int{2, 3, 8, 64} {
		tr := NewSharded(features.NewDict(), k)
		for _, g := range data {
			for _, kp := range g {
				tr.Insert(kp.key, kp.p)
			}
		}
		if got := dumpTrie(tr); got != want {
			t.Errorf("K=%d diverges from unsharded build:\n%s\nvs\n%s", k, got, want)
		}
	}
}

// TestBuilderMatchesSequential is the store-level differential test of the
// parallel build path: for any shard count and worker count, staging the
// same postings from concurrent goroutines and merging must reproduce the
// sequential Insert build bit for bit (same postings, locations, Walk order
// and node count).
func TestBuilderMatchesSequential(t *testing.T) {
	data := randomPostings(7, 48, 60)
	seq := NewSharded(features.NewDict(), 1)
	for _, g := range data {
		for _, kp := range g {
			seq.Insert(kp.key, kp.p)
		}
	}
	want := dumpTrie(seq)
	for _, k := range []int{1, 4, 8} {
		for _, workers := range []int{1, 3, 8} {
			tr := NewSharded(features.NewDict(), k)
			b := tr.NewBuilder(workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					bw := b.Worker(w)
					// graphs dealt round-robin across workers
					for g := w; g < len(data); g += workers {
						for _, kp := range data[g] {
							bw.Insert(kp.key, kp.p)
						}
					}
				}(w)
			}
			wg.Wait()
			b.Merge()
			if got := dumpTrie(tr); got != want {
				t.Errorf("K=%d workers=%d diverges from sequential build:\n%s\nvs\n%s", k, workers, got, want)
			}
		}
	}
}

// TestBuilderEightGoroutines exercises the full staged-parallel build with 8
// concurrent goroutines interning through one shared dictionary — the case
// the CI race job is meant to catch regressions in.
func TestBuilderEightGoroutines(t *testing.T) {
	const workers = 8
	data := randomPostings(99, 64, 80)
	d := features.NewDict()
	tr := NewSharded(d, 8)
	b := tr.NewBuilder(workers)
	var next int32
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		next++
		return int(next) - 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bw := b.Worker(w)
			for {
				g := claim()
				if g >= len(data) {
					return
				}
				for _, kp := range data[g] {
					bw.Insert(kp.key, kp.p)
				}
			}
		}(w)
	}
	wg.Wait()
	b.Merge()

	seq := NewSharded(features.NewDict(), 1)
	for _, g := range data {
		for _, kp := range g {
			seq.Insert(kp.key, kp.p)
		}
	}
	if got, want := dumpTrie(tr), dumpTrie(seq); got != want {
		t.Errorf("8-goroutine build diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestBuilderMergesDuplicates: staging the same (key, graph) twice — even
// from different workers — accumulates counts and unions locations exactly
// like sequential Insert.
func TestBuilderMergesDuplicates(t *testing.T) {
	tr := New()
	b := tr.NewBuilder(2)
	b.Worker(0).Insert("k", Posting{Graph: 7, Count: 1, Locs: []int32{1, 3}})
	b.Worker(1).Insert("k", Posting{Graph: 7, Count: 2, Locs: []int32{2, 3}})
	b.Worker(1).Insert("k", Posting{Graph: 5, Count: 1})
	b.Merge()
	ps := tr.Get("k")
	if len(ps) != 2 || ps[0].Graph != 5 || ps[1].Graph != 7 {
		t.Fatalf("postings = %+v", ps)
	}
	if ps[1].Count != 3 || !reflect.DeepEqual(ps[1].Locs, []int32{1, 2, 3}) {
		t.Errorf("merged posting = %+v", ps[1])
	}
}

// TestBuilderMergeIntoExisting: a Merge over a trie that already holds
// postings behaves like further sequential Inserts.
func TestBuilderMergeIntoExisting(t *testing.T) {
	tr := New()
	tr.Insert("a", Posting{Graph: 1, Count: 2})
	tr.Insert("b", Posting{Graph: 3, Count: 1})
	b := tr.NewBuilder(1)
	b.Worker(0).Insert("a", Posting{Graph: 1, Count: 1}) // merges into existing
	b.Worker(0).Insert("a", Posting{Graph: 0, Count: 4}) // prepends
	b.Worker(0).Insert("c", Posting{Graph: 2, Count: 1}) // new key
	b.Merge()

	want := New()
	want.Insert("a", Posting{Graph: 1, Count: 2})
	want.Insert("b", Posting{Graph: 3, Count: 1})
	want.Insert("a", Posting{Graph: 1, Count: 1})
	want.Insert("a", Posting{Graph: 0, Count: 4})
	want.Insert("c", Posting{Graph: 2, Count: 1})
	if got, w := dumpTrie(tr), dumpTrie(want); got != w {
		t.Errorf("merge-into-existing diverges:\n%s\nvs\n%s", got, w)
	}
}
