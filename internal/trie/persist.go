package trie

// On-disk segment format (version 3)
//
// A persisted trie is one header, one segment per postings shard, and —
// since version 2 — a trailing *section stream* that carries O(delta)
// journal appends. Everything scalar is an unsigned varint
// (encoding/binary) unless noted; everything ordered is delta-encoded
// against the previous value, so the sorted postings lists and ID-ordered
// dictionaries that the in-memory store already maintains shrink to
// near-entropy on disk. Since version 3 each feature's graph-ID set is
// stored in its in-memory container encoding directly (container.go):
// dense features persist as raw bitmap words and clustered features as
// run intervals, so the densest posting lists — the ones that dominated
// version-2 files — shrink by the same factor on disk as in RAM and
// decode without re-encoding.
//
//	header:
//	  magic   "IGQTRIE" (7 bytes)
//	  version uvarint   (currently 3)
//	  shards  uvarint   (power of two in [1, 64] — the saved layout)
//	  nkeys   uvarint   (dictionary size; live vocabulary only — see below)
//	  nkeys × { klen uvarint, key bytes }   — keys in FeatureID order
//	segment, one per shard s in [0, shards):
//	  seglen  uvarint   (byte length of the segment body)
//	  crc     uint32 LE (IEEE CRC-32 of the segment body)
//	  body:
//	    nfeat uvarint
//	    nfeat × {           — features in ascending FeatureID order
//	      idΔ    uvarint    (delta to the previous feature's ID)
//	      posting list      (version ≥ 3 form below; see "Legacy postings"
//	                         for the version ≤ 2 form)
//	    }
//	  }
//	sections (version ≥ 2):
//	  { 'J' seclen uvarint, crc uint32 LE, journal body }*   — see journal.go
//	  'E'               — terminator
//
//	posting list (version ≥ 3):
//	  flags byte        — bits 0–1: container tag (0 array, 1 bitmap,
//	                      2 runs; 3 reserved), bit 2: counts present,
//	                      bit 3: locations present, bits 4–7 reserved (0)
//	  card  uvarint     (cardinality, ≥ 1)
//	  payload by tag:
//	    array:  card × graphΔ uvarint    — strictly ascending graph ids
//	    bitmap: baseword uvarint         (first word index = min graph ÷ 64)
//	            nwords   uvarint         (≥ 1)
//	            nwords × uint64 LE       — raw bitmap words; first and last
//	                                       non-zero, total popcount = card
//	    runs:   nruns uvarint            (≥ 1)
//	            nruns × { gap uvarint, len uvarint }
//	                — run i covers [start, start+len] inclusive, where
//	                  start = prevEnd + 2 + gap (prevEnd = -2 before the
//	                  first run): gaps are stored minus the structural
//	                  minimum of 2, so adjacent or overlapping runs are
//	                  unrepresentable; Σ(len+1) must equal card
//	  counts, iff flag bit 2:
//	    card × count uvarint             — at least one ≠ 1 (an all-1 count
//	                                       array is stored by omission)
//	  locations, iff flag bit 3:
//	    card × { nlocs uvarint, nlocs × locΔ uvarint }
//	                                     — at least one entry non-empty
//
//	Legacy postings (version ≤ 2), for each feature:
//	  nposts uvarint   (≥ 1 in version-2 snapshots; 0 legal in version 1)
//	  nposts × {       — postings in ascending graph-id order
//	    graphΔ uvarint (delta to the previous posting's graph id)
//	    count  uvarint
//	    nlocs  uvarint
//	    nlocs × locΔ uvarint   — sorted, deduplicated vertex ids
//	  }
//
// Container canonicalisation: a well-formed writer always emits the
// canonical encoding (kindFor — a pure function of the member set under
// the writer's container policy), so byte-identical logical state yields
// byte-identical files. The *reader* does not require canonical input:
// any structurally valid container is accepted and promoted to the
// reader's canonical kind on decode — which is also how version-1/2
// snapshots load: their flat posting runs decode and are promoted
// ("arrays first, re-encoded where density warrants") with no separate
// migration step.
//
// Design notes:
//
//   - The dictionary is serialised in full, in ID order, so re-interning
//     the keys into an empty dictionary reproduces the exact FeatureIDs the
//     postings are keyed by — the same round-trip property the iGQ cache
//     snapshot relies on. If the destination dictionary is *not* empty the
//     loader transparently remaps old IDs to the freshly interned ones
//     (IDs are process-local handles; canonical strings are the stable
//     identity).
//   - The written dictionary is *compacted*: features retired by removals
//     (the in-memory dead set) are skipped and segment feature IDs are
//     remapped to the compact numbering, so a snapshot of an incrementally
//     maintained trie is indistinguishable from one of a fresh build over
//     the surviving dataset.
//   - Each segment is length-prefixed, CRC-guarded and self-contained:
//     given the header's dictionary, any segment decodes independently of
//     the others, which is what lets ReadFrom fan the segment decodes out
//     over worker goroutines — and what the lazy loader (OpenLazy,
//     lazy.go) exploits: its eager phase parses only the segment
//     *directory* — each segment's {offset, length, CRC} frame, bodies
//     skipped with a positioned seek — plus the header, dictionary and
//     full section stream, then faults each body in on the first probe of
//     its shard. The lazy contract per segment: the directory is valid
//     only if every body lies inside the file (bounds are verified at
//     open, so base truncation still fails the open, exactly like
//     ReadFrom); the CRC is verified when the body is read, at every
//     fault-in — including refaults after eviction — so silent on-disk
//     rot surfaces as ErrCorrupt on the touched shard and poisons no
//     other shard; and journal ops project per shard (a feature's ops
//     route by its ID) so replaying a shard's overlay at fault-in yields
//     state bit-identical to the streaming loader's whole-file replay.
//   - The section stream is what makes an on-disk snapshot *appendable*:
//     AppendJournalSection (journal.go) replaces the trailing terminator
//     with one more CRC-guarded journal section plus a fresh terminator,
//     so persisting a mutation batch costs O(delta) instead of a full
//     rewrite. ReadFrom replays journals in order through the same
//     Mutation.Apply path live mutation uses. WriteTo itself always emits
//     a compact base (zero journal sections); folding accumulated journals
//     back into base segments is exactly a WriteTo of the loaded state,
//     which is how the method-level compaction threshold is implemented.
//   - Forward compatibility: readers reject versions newer than their own
//     and shard counts outside [1, 64]; version-1 snapshots (no section
//     stream, possibly empty postings lists) still load. Writers must only
//     append new trailing sections behind a version bump, never
//     reinterpret existing fields.
//
// The byte-level trie (Walk order, NodeCount) is not serialised: it is a
// pure function of the key set and is rebuilt during load.
//
// # Durability & crash safety
//
// The format splits into a *base* (header, dictionary, segments) and the
// trailing *section stream* (journals + terminator), and the two have
// different failure contracts:
//
//   - Base corruption always fails the load hard (ErrCorrupt): the base is
//     written only by full saves, which callers make atomic
//     (persistio.AtomicWriteFile / AtomicRewriter), so a damaged base
//     means external corruption, not a torn write — nothing can be
//     salvaged safely.
//   - Section-stream corruption is, by default, *recovered*: journal
//     appends are the one in-place mutation of a snapshot file, so a
//     crash mid-append legitimately leaves a valid prefix followed by a
//     torn final section (or just a missing terminator). ReadFrom loads
//     every fully-committed journal section, drops the torn tail, and
//     reports a TailRecovery describing what was discarded; nothing of
//     the torn section is applied (sections decode fully before any
//     replay). LoadOptions.Strict restores the historical
//     fail-on-anything behavior.
//
// A recovered load leaves the *file* untouched; callers that own the file
// repair it with RepairSnapshotTail (truncate to the committed prefix,
// re-write the terminator, fsync) so the next AppendJournalSection finds
// a well-formed snapshot. Writers fsync after the bytes that commit an
// operation: full saves sync before their rename (persistio), journal
// appends sync after the new terminator lands (index.AppendIndexDelta).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"runtime"
	"slices"

	"repro/internal/features"
)

const (
	persistMagic   = "IGQTRIE"
	persistVersion = 3

	// Container tags and flag bits of a version ≥ 3 posting list.
	segTagArray   = 0
	segTagBitmap  = 1
	segTagRuns    = 2
	segTagMask    = 0x03
	segFlagCounts = 1 << 2
	segFlagLocs   = 1 << 3

	// Section tags of the version ≥ 2 trailing stream.
	sectionJournal = 'J'
	sectionEnd     = 'E'

	// Decode-time sanity bounds: a corrupt length field must fail cleanly,
	// not attempt an absurd allocation. Length-prefixed bulk reads
	// additionally grow their buffers incrementally (readFullCapped), so a
	// lying length costs at most the bytes actually present in the stream.
	maxKeyLen     = 1 << 16
	maxDictLen    = 1 << 24
	maxSegmentLen = 1 << 30
)

// ErrCorrupt reports a snapshot that failed structural validation (bad
// magic, truncated data, CRC mismatch, out-of-range field).
var ErrCorrupt = errors.New("trie: corrupt snapshot")

// WriteTo serialises the trie in the segment format above, implementing
// io.WriterTo. The trie must not be mutated during the call (the usual
// read-path contract).
func (t *Trie) WriteTo(w io.Writer) (int64, error) {
	// A lazily-opened trie (OpenLazy) is faulted fully resident first, so
	// re-saving a partially-resident index emits exactly the bytes an
	// eager load of the same snapshot would.
	if err := t.Materialize(); err != nil {
		return 0, err
	}
	var n int64
	write := func(p []byte) error {
		m, err := w.Write(p)
		n += int64(m)
		return err
	}

	// Compacted dictionary: retired (dead) features are skipped and the
	// surviving IDs renumbered densely, so the snapshot carries exactly the
	// live vocabulary a fresh build over the same postings would intern.
	keys := t.dict.Keys()
	var remap []features.FeatureID // nil = identity (no dead features)
	live := keys
	if len(t.dead) > 0 {
		remap = make([]features.FeatureID, len(keys))
		live = make([]string, 0, len(keys)-len(t.dead))
		for i, k := range keys {
			if _, gone := t.dead[features.FeatureID(i)]; gone {
				continue
			}
			remap[i] = features.FeatureID(len(live))
			live = append(live, k)
		}
	}
	hdr := make([]byte, 0, 16+len(live)*8)
	hdr = append(hdr, persistMagic...)
	hdr = binary.AppendUvarint(hdr, persistVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(t.shards)))
	hdr = binary.AppendUvarint(hdr, uint64(len(live)))
	for _, k := range live {
		hdr = binary.AppendUvarint(hdr, uint64(len(k)))
		hdr = append(hdr, k...)
	}
	if err := write(hdr); err != nil {
		return n, err
	}

	var seg, pre []byte
	writeSeg := func(feats []segFeature) error {
		seg = appendSegment(seg[:0], feats)
		pre = binary.AppendUvarint(pre[:0], uint64(len(seg)))
		pre = binary.LittleEndian.AppendUint32(pre, crc32.ChecksumIEEE(seg))
		if err := write(pre); err != nil {
			return err
		}
		return write(seg)
	}
	if remap == nil {
		var feats []segFeature
		for s := range t.shards {
			sh := &t.shards[s]
			feats = feats[:0]
			for id, pl := range sh.posts {
				feats = append(feats, segFeature{id: id, pl: pl})
			}
			sortSegFeatures(feats)
			if err := writeSeg(feats); err != nil {
				return n, err
			}
		}
	} else {
		// Compaction moved the IDs, so features are redistributed into the
		// segment their *written* ID selects (segment = id mod shards — the
		// invariant the parallel identity-remap decode relies on).
		buckets := make([][]segFeature, len(t.shards))
		mask := t.mask
		for s := range t.shards {
			for id, pl := range t.shards[s].posts {
				wid := remap[id]
				b := uint32(wid) & mask
				buckets[b] = append(buckets[b], segFeature{id: wid, pl: pl})
			}
		}
		for _, feats := range buckets {
			sortSegFeatures(feats)
			if err := writeSeg(feats); err != nil {
				return n, err
			}
		}
	}
	if err := write([]byte{sectionEnd}); err != nil {
		return n, err
	}
	return n, nil
}

// segFeature pairs one feature's written ID with its postings.
type segFeature struct {
	id features.FeatureID
	pl PostingList
}

func sortSegFeatures(feats []segFeature) {
	slices.SortFunc(feats, func(a, b segFeature) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		default:
			return 0
		}
	})
}

// appendSegment encodes one segment's features (pre-sorted by written ID).
func appendSegment(buf []byte, feats []segFeature) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(feats)))
	prev := features.FeatureID(0)
	for _, f := range feats {
		buf = binary.AppendUvarint(buf, uint64(f.id-prev))
		prev = f.id
		buf = appendPostingList(buf, f.pl)
	}
	return buf
}

// appendPostingList encodes one feature's posting list in the version-3
// container form: the in-memory container serialises directly, which is
// what makes equal logical state byte-identical on disk (the container
// kind is a pure function of the member set).
func appendPostingList(buf []byte, pl PostingList) []byte {
	flags := byte(segTagArray)
	switch pl.ids.Kind() {
	case KindBitmap:
		flags = segTagBitmap
	case KindRuns:
		flags = segTagRuns
	}
	if pl.counts != nil {
		flags |= segFlagCounts
	}
	if pl.locs != nil {
		flags |= segFlagLocs
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(pl.ids.Len()))
	switch c := pl.ids.(type) {
	case *ArrayContainer:
		prevG := int32(0)
		for _, g := range c.ids {
			buf = binary.AppendUvarint(buf, uint64(g-prevG))
			prevG = g
		}
	case *BitmapContainer:
		buf = binary.AppendUvarint(buf, uint64(c.base)>>6)
		buf = binary.AppendUvarint(buf, uint64(len(c.words)))
		for _, w := range c.words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	case *RunContainer:
		buf = binary.AppendUvarint(buf, uint64(len(c.runs)))
		prevEnd := int64(-2)
		for _, run := range c.runs {
			buf = binary.AppendUvarint(buf, uint64(int64(run.Start)-prevEnd-2))
			buf = binary.AppendUvarint(buf, uint64(run.End-run.Start))
			prevEnd = int64(run.End)
		}
	}
	if pl.counts != nil {
		for _, c := range pl.counts {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
	}
	if pl.locs != nil {
		for _, locs := range pl.locs {
			buf = binary.AppendUvarint(buf, uint64(len(locs)))
			prevL := int32(0)
			for _, l := range locs {
				buf = binary.AppendUvarint(buf, uint64(l-prevL))
				prevL = l
			}
		}
	}
	return buf
}

// byteScanner is the reader shape the decoder needs: streaming reads for
// bulk sections plus single-byte reads for varints.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// asByteScanner returns r itself when it already supports byte reads, or a
// bufio wrapper otherwise. Callers loading several sections from one stream
// must wrap once and pass the same scanner to each loader, or the wrapper's
// read-ahead would swallow the next section's bytes.
func asByteScanner(r io.Reader) byteScanner {
	if bs, ok := r.(byteScanner); ok {
		return bs
	}
	return bufio.NewReader(r)
}

// countingScanner counts consumed bytes for the io.ReaderFrom return value.
type countingScanner struct {
	r byteScanner
	n int64
}

func (c *countingScanner) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.n += int64(m)
	return m, err
}

func (c *countingScanner) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// LoadOptions configures a snapshot load.
type LoadOptions struct {
	// Workers is the segment-decode parallelism (≤ 0 selects GOMAXPROCS;
	// the decode is deterministic at any worker count).
	Workers int
	// Strict fails the load on *any* structural damage, including a torn
	// trailing journal section that the default mode would recover from.
	Strict bool
}

// TailRecovery reports a salvaged snapshot tail: the load succeeded by
// dropping a torn trailing portion of the journal section stream (the
// aftermath of a crash mid-append). Offsets are relative to the start of
// the trie snapshot within the stream handed to ReadFrom; envelope-level
// loaders translate them to absolute file offsets.
type TailRecovery struct {
	// CommittedBytes is the length of the valid snapshot prefix — the
	// base plus every fully-committed journal section, *excluding* the
	// section terminator. A file truncated to this length plus a
	// terminator byte is a well-formed snapshot holding exactly the
	// loaded state (RepairSnapshotTail performs that repair).
	CommittedBytes int64
	// DiscardedBytes counts the torn tail bytes dropped beyond the
	// committed prefix.
	DiscardedBytes int64
	// DroppedOps is the best-effort count of mutation ops the torn
	// section claimed to carry (0 when its header was unreadable).
	DroppedOps int
}

// ReadFrom replaces the trie's contents with a snapshot previously written
// by WriteTo, implementing io.ReaderFrom; segment decodes run on one worker
// per CPU and a torn journal tail is recovered (see ReadFromOptions for
// the full contract; TailRecovery reports whether one was).
func (t *Trie) ReadFrom(r io.Reader) (int64, error) {
	n, _, err := t.ReadFromOptions(r, LoadOptions{})
	return n, err
}

// ReadFromWorkers is ReadFrom with an explicit decode parallelism.
func (t *Trie) ReadFromWorkers(r io.Reader, workers int) (int64, error) {
	n, _, err := t.ReadFromOptions(r, LoadOptions{Workers: workers})
	return n, err
}

// ReadFromOptions is the full-contract snapshot load.
//
// The trie adopts the *saved* shard layout — use Reshard afterwards to
// override it; sharding never changes observable behaviour. The snapshot's
// dictionary keys are interned through the trie's dictionary in ID order:
// into an empty dictionary this reproduces the saved IDs exactly, and into
// a non-empty one the postings are remapped to the freshly assigned IDs.
// Any previous postings of t are discarded.
//
// Corruption in the base (header, dictionary, segments) fails the load
// with ErrCorrupt. A torn *trailing* journal section — the signature of a
// crash mid-append — is recovered unless opt.Strict: the load succeeds
// with every fully-committed section replayed, the torn tail is consumed
// and discarded, and the returned *TailRecovery (also available from
// Trie.TailRecovery until the next load) describes the damage. The byte
// count covers everything consumed, including a discarded tail.
//
// If r is not an io.ByteReader it is wrapped in a buffered reader, which
// may read past the snapshot's end; pass a bufio.Reader (or bytes.Reader)
// when trailing data matters.
func (t *Trie) ReadFromOptions(r io.Reader, opt LoadOptions) (int64, *TailRecovery, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	cr := &countingScanner{r: asByteScanner(r)}
	rec, err := t.readFrom(cr, opt)
	return cr.n, rec, err
}

// TailRecovery returns the recovery report of the last ReadFrom into this
// trie, or nil when that load was clean (or the trie was never loaded).
func (t *Trie) TailRecovery() *TailRecovery { return t.recovered }

func (t *Trie) readFrom(cr *countingScanner, opt LoadOptions) (*TailRecovery, error) {
	workers := opt.Workers
	var magic [len(persistMagic)]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(magic[:]) != persistMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrCorrupt, err)
	}
	if version < 1 || version > persistVersion {
		return nil, fmt.Errorf("trie: snapshot version %d unsupported (this build reads ≤ %d)", version, persistVersion)
	}
	savedShards, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: reading shard count: %v", ErrCorrupt, err)
	}
	k := int(savedShards)
	if k < 1 || k > maxShards || k&(k-1) != 0 {
		return nil, fmt.Errorf("%w: shard count %d not a power of two in [1, %d]", ErrCorrupt, k, maxShards)
	}

	// Dictionary: intern the saved keys in ID order, building the old→new
	// ID remap. A fresh dictionary yields the identity remap, which keeps
	// the segment→shard correspondence of the saved layout and unlocks the
	// parallel decode below.
	nKeys, err := binary.ReadUvarint(cr)
	if err != nil || nKeys > maxDictLen {
		return nil, fmt.Errorf("%w: dictionary size", ErrCorrupt)
	}
	// remap grows as keys actually arrive, so a lying count cannot force a
	// large upfront allocation.
	remap := make([]features.FeatureID, 0, min(nKeys, 1<<16))
	identity := true
	var kbuf []byte
	for i := uint64(0); i < nKeys; i++ {
		klen, err := binary.ReadUvarint(cr)
		if err != nil || klen > maxKeyLen {
			return nil, fmt.Errorf("%w: dictionary key length", ErrCorrupt)
		}
		if cap(kbuf) < int(klen) {
			kbuf = make([]byte, klen)
		}
		kbuf = kbuf[:klen]
		if _, err := io.ReadFull(cr, kbuf); err != nil {
			return nil, fmt.Errorf("%w: reading dictionary key: %v", ErrCorrupt, err)
		}
		id := t.dict.Intern(string(kbuf))
		remap = append(remap, id)
		if id != features.FeatureID(i) {
			identity = false
		}
	}

	// Read the segment bodies (CRC-checked) before decoding anything, so a
	// truncated stream cannot leave the trie half-replaced.
	segs := make([][]byte, k)
	for s := 0; s < k; s++ {
		body, err := readSection(cr, fmt.Sprintf("segment %d", s))
		if err != nil {
			return nil, err
		}
		segs[s] = body
	}

	// Version ≥ 2 snapshots carry a trailing section stream. Read and
	// decode every journal section before installing anything, so a corrupt
	// journal fails the load with the trie untouched (apart from dictionary
	// interning, as documented). A structural failure anywhere in the
	// stream marks everything from the last fully-committed section onward
	// as a torn tail: fatal under opt.Strict, recovered otherwise (the
	// crash-mid-append signature — see the Durability section above).
	type journalRec struct {
		stamp JournalStamp
		ops   []mutOp
	}
	var journals []journalRec
	var rec *TailRecovery
	if version >= 2 {
		committed := cr.n // end of the valid prefix (terminator excluded)
		fail := func(dropped []byte, cause error) error {
			if opt.Strict {
				return cause
			}
			rec = &TailRecovery{CommittedBytes: committed, DroppedOps: journalOpCount(dropped)}
			return nil
		}
		for rec == nil {
			tag, err := cr.ReadByte()
			if err != nil {
				if err := fail(nil, fmt.Errorf("%w: reading section tag: %v", ErrCorrupt, err)); err != nil {
					return nil, err
				}
				break
			}
			if tag == sectionEnd {
				break
			}
			if tag != sectionJournal {
				if err := fail(nil, fmt.Errorf("%w: unknown section tag %q", ErrCorrupt, tag)); err != nil {
					return nil, err
				}
				break
			}
			body, partial, err := readSectionPartial(cr, "journal")
			if err != nil {
				if err := fail(partial, err); err != nil {
					return nil, err
				}
				break
			}
			stamp, ops, err := decodeJournalBody(body)
			if err != nil {
				if err := fail(body, err); err != nil {
					return nil, err
				}
				break
			}
			journals = append(journals, journalRec{stamp: stamp, ops: ops})
			committed = cr.n
		}
		if rec != nil {
			// Consume the rest of the torn tail so the byte count (and a
			// combined-snapshot loader's stream position) reflects that
			// nothing after the committed prefix is trustworthy.
			_, _ = io.Copy(io.Discard, cr)
			rec.DiscardedBytes = cr.n - committed
		}
	}

	// Adopt the saved layout and decode. With the identity remap every
	// saved segment maps 1:1 onto one destination shard, so the segment
	// decodes are disjoint and run in parallel; with a remap (pre-populated
	// dictionary) IDs may cross shards, so the decode runs sequentially —
	// correctness is identical either way. Version-1 snapshots may carry
	// features with zero postings (drained by the old RemoveGraph); version
	// ≥ 2 writers never emit them, so the decoder rejects them there.
	shards := make([]shard, k)
	for i := range shards {
		shards[i].posts = make(map[features.FeatureID]PostingList)
	}
	mask := uint32(k - 1)
	perSeg := make([][]features.FeatureID, k)
	if identity {
		errs := make([]error, k) // one slot per segment: no cross-worker writes
		ParallelFor(k, workers, func(_ int, claim func() int) {
			for s := claim(); s >= 0; s = claim() {
				perSeg[s], errs[s] = decodeSegment(segs[s], shards[s].posts, remap, mask, uint32(s), version, t.policy)
			}
		})
		for s, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("segment %d: %w", s, err)
			}
		}
	} else {
		staged := make(map[features.FeatureID]PostingList)
		for s := 0; s < k; s++ {
			ids, err := decodeSegment(segs[s], staged, remap, 0, 0, version, t.policy)
			if err != nil {
				return nil, fmt.Errorf("segment %d: %w", s, err)
			}
			perSeg[s] = ids
		}
		for id, pl := range staged {
			shards[uint32(id)&mask].posts[id] = pl
		}
	}

	// Install, then rebuild the byte trie (pure function of the key set —
	// single-writer, order-insensitive).
	t.lazyLive.Store(nil)
	t.lazyOrigin = nil
	t.shards = shards
	t.mask = mask
	t.root = node{}
	t.nodes = 0
	t.dead = nil
	t.stamp = nil
	t.recovered = rec
	for _, ids := range perSeg {
		for _, id := range ids {
			t.insertPath(t.dict.Key(id), id)
		}
	}
	// Replay the journals in append order through the live mutation path
	// (decode above already validated them; Apply itself cannot fail).
	for _, j := range journals {
		t.replayJournal(j.stamp, j.ops)
	}
	return rec, nil
}

// readSection reads one length-prefixed CRC-guarded block (segments and
// journal sections share the frame). The body buffer grows as bytes
// actually arrive, so a corrupt length cannot force an absurd allocation.
func readSection(cr byteScanner, what string) ([]byte, error) {
	secLen, err := binary.ReadUvarint(cr)
	if err != nil || secLen > maxSegmentLen {
		return nil, fmt.Errorf("%w: %s length", ErrCorrupt, what)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: %s checksum: %v", ErrCorrupt, what, err)
	}
	body, err := readFullCapped(cr, secLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %s body: %v", ErrCorrupt, what, err)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("%w: %s CRC mismatch", ErrCorrupt, what)
	}
	return body, nil
}

// readSectionPartial is readSection for the recovery-aware section
// stream: on failure it additionally returns whatever body bytes were
// readable, so the recovery report can count the ops a torn section
// claimed to carry.
func readSectionPartial(cr byteScanner, what string) (body, partial []byte, err error) {
	secLen, err := binary.ReadUvarint(cr)
	if err != nil || secLen > maxSegmentLen {
		return nil, nil, fmt.Errorf("%w: %s length", ErrCorrupt, what)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: %s checksum: %v", ErrCorrupt, what, err)
	}
	body, rerr := readFullCapped(cr, secLen)
	if rerr != nil {
		return nil, body, fmt.Errorf("%w: %s body: %v", ErrCorrupt, what, rerr)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, body, fmt.Errorf("%w: %s CRC mismatch", ErrCorrupt, what)
	}
	return body, nil, nil
}

// readFullCapped reads exactly n bytes, growing the buffer in bounded
// chunks so a lying length field costs at most the bytes actually
// present. On error the bytes read so far are returned alongside it.
func readFullCapped(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		next := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, next)...)
		m, err := io.ReadFull(r, buf[start:])
		if err != nil {
			return buf[:start+m], err
		}
	}
	return buf, nil
}

// decodeSegment decodes one segment body into posts, remapping feature IDs.
// With wantMask != 0 callers assert every decoded (remapped) ID belongs to
// shard wantShard — the identity-remap fast path, where posts is that
// shard's private map. version selects the posting-list wire form (≥ 3:
// containers; ≤ 2: flat runs, with empty features legal only in version
// 1); decoded lists are promoted to the canonical container kind under
// policy. Returns the decoded (remapped) feature IDs.
func decodeSegment(body []byte, posts map[features.FeatureID]PostingList, remap []features.FeatureID, wantMask, wantShard uint32, version uint64, policy ContainerPolicy) ([]features.FeatureID, error) {
	d := segDecoder{b: body}
	nFeat, err := d.uvarint()
	if err != nil || nFeat > uint64(len(body)) {
		return nil, fmt.Errorf("%w: feature count", ErrCorrupt)
	}
	ids := make([]features.FeatureID, 0, nFeat)
	var prevID uint64
	for f := uint64(0); f < nFeat; f++ {
		delta, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		oldID := prevID + delta
		if f > 0 && delta == 0 {
			return nil, fmt.Errorf("%w: duplicate feature ID", ErrCorrupt)
		}
		prevID = oldID
		if oldID >= uint64(len(remap)) {
			return nil, fmt.Errorf("%w: feature ID %d outside dictionary", ErrCorrupt, oldID)
		}
		id := remap[oldID]
		if wantMask != 0 && uint32(id)&wantMask != wantShard {
			return nil, fmt.Errorf("%w: feature ID %d in wrong segment", ErrCorrupt, oldID)
		}
		var pl PostingList
		if version >= 3 {
			pl, err = d.decodePostingList(policy)
		} else {
			pl, err = d.decodeLegacyPostings(version, policy)
		}
		if err != nil {
			return nil, err
		}
		posts[id] = pl
		ids = append(ids, id)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	return ids, nil
}

// decodeLegacyPostings decodes one feature's version ≤ 2 flat posting run
// and seals it into container form under policy — the version-1/2
// promotion path.
func (d *segDecoder) decodeLegacyPostings(version uint64, policy ContainerPolicy) (PostingList, error) {
	var zero PostingList
	body := d.b
	nPosts, err := d.uvarint()
	if err != nil || nPosts > uint64(len(body)) {
		return zero, fmt.Errorf("%w: postings count", ErrCorrupt)
	}
	if nPosts == 0 && version >= 2 {
		return zero, fmt.Errorf("%w: feature with no postings", ErrCorrupt)
	}
	ps := make([]Posting, 0, nPosts)
	var prevG uint64
	for p := uint64(0); p < nPosts; p++ {
		gDelta, err := d.uvarint()
		if err != nil {
			return zero, err
		}
		g := prevG + gDelta
		if p > 0 && gDelta == 0 {
			return zero, fmt.Errorf("%w: duplicate posting graph id", ErrCorrupt)
		}
		prevG = g
		count, err := d.uvarint()
		if err != nil {
			return zero, err
		}
		if g > math.MaxInt32 || count > math.MaxInt32 {
			return zero, fmt.Errorf("%w: posting field overflow", ErrCorrupt)
		}
		locs, err := d.decodeLocs()
		if err != nil {
			return zero, err
		}
		ps = append(ps, Posting{Graph: int32(g), Count: int32(count), Locs: locs})
	}
	return sealPostings(policy, ps), nil
}

// decodePostingList decodes one feature's version ≥ 3 container-form
// posting list, validating every structural invariant (the fuzz targets
// drive this path with corrupt payloads), and promotes a non-canonical but
// valid container to the reader's canonical kind.
func (d *segDecoder) decodePostingList(policy ContainerPolicy) (PostingList, error) {
	var zero PostingList
	flags, err := d.byte()
	if err != nil {
		return zero, err
	}
	if flags&^(segTagMask|segFlagCounts|segFlagLocs) != 0 {
		return zero, fmt.Errorf("%w: unknown posting-list flags %#x", ErrCorrupt, flags)
	}
	card, err := d.uvarint()
	if err != nil {
		return zero, err
	}
	if card == 0 {
		return zero, fmt.Errorf("%w: feature with no postings", ErrCorrupt)
	}
	var c Container
	nruns := 0
	switch flags & segTagMask {
	case segTagArray:
		if card > uint64(d.remaining()) {
			return zero, fmt.Errorf("%w: array cardinality", ErrCorrupt)
		}
		ids := make([]int32, card)
		var prevG uint64
		for i := range ids {
			gDelta, err := d.uvarint()
			if err != nil {
				return zero, err
			}
			g := prevG + gDelta
			if i > 0 && gDelta == 0 {
				return zero, fmt.Errorf("%w: duplicate posting graph id", ErrCorrupt)
			}
			if g > math.MaxInt32 {
				return zero, fmt.Errorf("%w: graph id overflow", ErrCorrupt)
			}
			prevG = g
			ids[i] = int32(g)
		}
		nruns = countRuns(ids)
		c = &ArrayContainer{ids: ids}
	case segTagBitmap:
		baseWord, err := d.uvarint()
		if err != nil {
			return zero, err
		}
		nWords, err := d.uvarint()
		if err != nil {
			return zero, err
		}
		if nWords == 0 || nWords > uint64(d.remaining())/8 {
			return zero, fmt.Errorf("%w: bitmap word count", ErrCorrupt)
		}
		if baseWord+nWords > 1<<25 { // max representable id must fit int32
			return zero, fmt.Errorf("%w: bitmap span overflow", ErrCorrupt)
		}
		words := make([]uint64, nWords)
		pop := 0
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(d.b[d.off:])
			d.off += 8
			pop += bits.OnesCount64(words[i])
		}
		if words[0] == 0 || words[len(words)-1] == 0 {
			return zero, fmt.Errorf("%w: denormalised bitmap (zero edge word)", ErrCorrupt)
		}
		if uint64(pop) != card {
			return zero, fmt.Errorf("%w: bitmap popcount %d ≠ cardinality %d", ErrCorrupt, pop, card)
		}
		b := &BitmapContainer{base: int32(baseWord << 6), words: words, card: int(card)}
		nruns = b.runCount()
		c = b
	case segTagRuns:
		nRuns, err := d.uvarint()
		if err != nil {
			return zero, err
		}
		if nRuns == 0 || nRuns > uint64(d.remaining())/2 || nRuns > card {
			return zero, fmt.Errorf("%w: run count", ErrCorrupt)
		}
		runs := make([]Run, nRuns)
		prevEnd := int64(-2)
		total := uint64(0)
		for i := range runs {
			gap, err := d.uvarint()
			if err != nil {
				return zero, err
			}
			length, err := d.uvarint()
			if err != nil {
				return zero, err
			}
			start := prevEnd + 2 + int64(gap)
			if length > math.MaxInt32 || start+int64(length) > math.MaxInt32 {
				return zero, fmt.Errorf("%w: run overflow", ErrCorrupt)
			}
			runs[i] = Run{Start: int32(start), End: int32(start + int64(length))}
			prevEnd = int64(runs[i].End)
			total += length + 1
		}
		if total != card {
			return zero, fmt.Errorf("%w: run lengths sum %d ≠ cardinality %d", ErrCorrupt, total, card)
		}
		nruns = int(nRuns)
		c = &RunContainer{runs: runs, card: int(card)}
	default:
		return zero, fmt.Errorf("%w: reserved container tag", ErrCorrupt)
	}
	pl := PostingList{ids: c, nruns: int32(nruns)}
	if flags&segFlagCounts != 0 {
		if card > uint64(d.remaining()) {
			return zero, fmt.Errorf("%w: counts length", ErrCorrupt)
		}
		counts := make([]int32, card)
		uniform := true
		for i := range counts {
			v, err := d.uvarint()
			if err != nil {
				return zero, err
			}
			if v > math.MaxInt32 {
				return zero, fmt.Errorf("%w: count overflow", ErrCorrupt)
			}
			if v != 1 {
				uniform = false
			}
			counts[i] = int32(v)
		}
		if uniform {
			return zero, fmt.Errorf("%w: denormalised counts (all 1)", ErrCorrupt)
		}
		pl.counts = counts
	}
	if flags&segFlagLocs != 0 {
		if card > uint64(d.remaining()) {
			return zero, fmt.Errorf("%w: locations length", ErrCorrupt)
		}
		locs := make([][]int32, card)
		any := false
		for i := range locs {
			ls, err := d.decodeLocs()
			if err != nil {
				return zero, err
			}
			if len(ls) > 0 {
				any = true
			}
			locs[i] = ls
		}
		if !any {
			return zero, fmt.Errorf("%w: denormalised locations (all empty)", ErrCorrupt)
		}
		pl.locs = locs
	}
	// Promote a valid-but-non-canonical container to the reader's canonical
	// kind (also the policy override point: an ArrayOnlyContainers reader
	// flattens adaptive snapshots on load).
	if want := kindFor(policy, c.Len(), c.Min(), c.Max(), nruns); want != c.Kind() {
		pl.ids = buildContainer(want, c.AppendTo(make([]int32, 0, c.Len())))
	}
	return pl, nil
}

// decodeLocs decodes one posting's delta-encoded sorted location list.
func (d *segDecoder) decodeLocs() ([]int32, error) {
	nLocs, err := d.uvarint()
	if err != nil || nLocs > uint64(d.remaining()) {
		return nil, fmt.Errorf("%w: location count", ErrCorrupt)
	}
	if nLocs == 0 {
		return nil, nil
	}
	locs := make([]int32, nLocs)
	var prevL uint64
	for l := range locs {
		lDelta, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		v := prevL + lDelta
		if l > 0 && lDelta == 0 {
			return nil, fmt.Errorf("%w: duplicate location", ErrCorrupt)
		}
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: location overflow", ErrCorrupt)
		}
		prevL = v
		locs[l] = int32(v)
	}
	return locs, nil
}

// segDecoder is a varint cursor over one in-memory segment body.
type segDecoder struct {
	b   []byte
	off int
}

func (d *segDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	d.off += n
	return v, nil
}

func (d *segDecoder) byte() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("%w: truncated posting list", ErrCorrupt)
	}
	b := d.b[d.off]
	d.off++
	return b, nil
}

// remaining returns the undecoded byte count — the sanity bound for
// length fields (every encoded element costs at least one byte).
func (d *segDecoder) remaining() int { return len(d.b) - d.off }

// Reshard redistributes the postings into k shards (normalised to a power
// of two in [1, 64]; ≤ 0 selects DefaultShards()). Contents, Walk order,
// NodeCount and all answers are unchanged — only the layout moves; posting
// slices are shared, not copied. Like the build path, Reshard is exclusive:
// no concurrent readers.
func (t *Trie) Reshard(k int) {
	t.ensureMaterialized()
	k = normalizeShards(k)
	if k == len(t.shards) {
		return
	}
	shards := make([]shard, k)
	for i := range shards {
		shards[i].posts = make(map[features.FeatureID]PostingList)
	}
	mask := uint32(k - 1)
	for s := range t.shards {
		for id, pl := range t.shards[s].posts {
			shards[uint32(id)&mask].posts[id] = pl
		}
	}
	t.shards = shards
	t.mask = mask
}
