package trie

// On-disk segment format (version 2)
//
// A persisted trie is one header, one segment per postings shard, and —
// since version 2 — a trailing *section stream* that carries O(delta)
// journal appends. Everything scalar is an unsigned varint
// (encoding/binary) unless noted; everything ordered is delta-encoded
// against the previous value, so the sorted postings lists and ID-ordered
// dictionaries that the in-memory store already maintains shrink to
// near-entropy on disk.
//
//	header:
//	  magic   "IGQTRIE" (7 bytes)
//	  version uvarint   (currently 2)
//	  shards  uvarint   (power of two in [1, 64] — the saved layout)
//	  nkeys   uvarint   (dictionary size; live vocabulary only — see below)
//	  nkeys × { klen uvarint, key bytes }   — keys in FeatureID order
//	segment, one per shard s in [0, shards):
//	  seglen  uvarint   (byte length of the segment body)
//	  crc     uint32 LE (IEEE CRC-32 of the segment body)
//	  body:
//	    nfeat uvarint
//	    nfeat × {           — features in ascending FeatureID order
//	      idΔ    uvarint    (delta to the previous feature's ID)
//	      nposts uvarint    (≥ 1 in version ≥ 2 snapshots)
//	      nposts × {        — postings in ascending graph-id order
//	        graphΔ uvarint  (delta to the previous posting's graph id)
//	        count  uvarint
//	        nlocs  uvarint
//	        nlocs × locΔ uvarint   — sorted, deduplicated vertex ids
//	      }
//	    }
//	  }
//	sections (version ≥ 2):
//	  { 'J' seclen uvarint, crc uint32 LE, journal body }*   — see journal.go
//	  'E'               — terminator
//
// Design notes:
//
//   - The dictionary is serialised in full, in ID order, so re-interning
//     the keys into an empty dictionary reproduces the exact FeatureIDs the
//     postings are keyed by — the same round-trip property the iGQ cache
//     snapshot relies on. If the destination dictionary is *not* empty the
//     loader transparently remaps old IDs to the freshly interned ones
//     (IDs are process-local handles; canonical strings are the stable
//     identity).
//   - The written dictionary is *compacted*: features retired by removals
//     (the in-memory dead set) are skipped and segment feature IDs are
//     remapped to the compact numbering, so a snapshot of an incrementally
//     maintained trie is indistinguishable from one of a fresh build over
//     the surviving dataset.
//   - Each segment is length-prefixed, CRC-guarded and self-contained:
//     given the header's dictionary, any segment decodes independently of
//     the others, which is what lets ReadFrom fan the segment decodes out
//     over worker goroutines (and leaves the format mmap-friendly for a
//     future lazy loader).
//   - The section stream is what makes an on-disk snapshot *appendable*:
//     AppendJournalSection (journal.go) replaces the trailing terminator
//     with one more CRC-guarded journal section plus a fresh terminator,
//     so persisting a mutation batch costs O(delta) instead of a full
//     rewrite. ReadFrom replays journals in order through the same
//     Mutation.Apply path live mutation uses. WriteTo itself always emits
//     a compact base (zero journal sections); folding accumulated journals
//     back into base segments is exactly a WriteTo of the loaded state,
//     which is how the method-level compaction threshold is implemented.
//   - Forward compatibility: readers reject versions newer than their own
//     and shard counts outside [1, 64]; version-1 snapshots (no section
//     stream, possibly empty postings lists) still load. Writers must only
//     append new trailing sections behind a version bump, never
//     reinterpret existing fields.
//
// The byte-level trie (Walk order, NodeCount) is not serialised: it is a
// pure function of the key set and is rebuilt during load.
//
// # Durability & crash safety
//
// The format splits into a *base* (header, dictionary, segments) and the
// trailing *section stream* (journals + terminator), and the two have
// different failure contracts:
//
//   - Base corruption always fails the load hard (ErrCorrupt): the base is
//     written only by full saves, which callers make atomic
//     (persistio.AtomicWriteFile / AtomicRewriter), so a damaged base
//     means external corruption, not a torn write — nothing can be
//     salvaged safely.
//   - Section-stream corruption is, by default, *recovered*: journal
//     appends are the one in-place mutation of a snapshot file, so a
//     crash mid-append legitimately leaves a valid prefix followed by a
//     torn final section (or just a missing terminator). ReadFrom loads
//     every fully-committed journal section, drops the torn tail, and
//     reports a TailRecovery describing what was discarded; nothing of
//     the torn section is applied (sections decode fully before any
//     replay). LoadOptions.Strict restores the historical
//     fail-on-anything behavior.
//
// A recovered load leaves the *file* untouched; callers that own the file
// repair it with RepairSnapshotTail (truncate to the committed prefix,
// re-write the terminator, fsync) so the next AppendJournalSection finds
// a well-formed snapshot. Writers fsync after the bytes that commit an
// operation: full saves sync before their rename (persistio), journal
// appends sync after the new terminator lands (index.AppendIndexDelta).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"slices"

	"repro/internal/features"
)

const (
	persistMagic   = "IGQTRIE"
	persistVersion = 2

	// Section tags of the version ≥ 2 trailing stream.
	sectionJournal = 'J'
	sectionEnd     = 'E'

	// Decode-time sanity bounds: a corrupt length field must fail cleanly,
	// not attempt an absurd allocation. Length-prefixed bulk reads
	// additionally grow their buffers incrementally (readFullCapped), so a
	// lying length costs at most the bytes actually present in the stream.
	maxKeyLen     = 1 << 16
	maxDictLen    = 1 << 24
	maxSegmentLen = 1 << 30
)

// ErrCorrupt reports a snapshot that failed structural validation (bad
// magic, truncated data, CRC mismatch, out-of-range field).
var ErrCorrupt = errors.New("trie: corrupt snapshot")

// WriteTo serialises the trie in the segment format above, implementing
// io.WriterTo. The trie must not be mutated during the call (the usual
// read-path contract).
func (t *Trie) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(p []byte) error {
		m, err := w.Write(p)
		n += int64(m)
		return err
	}

	// Compacted dictionary: retired (dead) features are skipped and the
	// surviving IDs renumbered densely, so the snapshot carries exactly the
	// live vocabulary a fresh build over the same postings would intern.
	keys := t.dict.Keys()
	var remap []features.FeatureID // nil = identity (no dead features)
	live := keys
	if len(t.dead) > 0 {
		remap = make([]features.FeatureID, len(keys))
		live = make([]string, 0, len(keys)-len(t.dead))
		for i, k := range keys {
			if _, gone := t.dead[features.FeatureID(i)]; gone {
				continue
			}
			remap[i] = features.FeatureID(len(live))
			live = append(live, k)
		}
	}
	hdr := make([]byte, 0, 16+len(live)*8)
	hdr = append(hdr, persistMagic...)
	hdr = binary.AppendUvarint(hdr, persistVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(t.shards)))
	hdr = binary.AppendUvarint(hdr, uint64(len(live)))
	for _, k := range live {
		hdr = binary.AppendUvarint(hdr, uint64(len(k)))
		hdr = append(hdr, k...)
	}
	if err := write(hdr); err != nil {
		return n, err
	}

	var seg, pre []byte
	writeSeg := func(feats []segFeature) error {
		seg = appendSegment(seg[:0], feats)
		pre = binary.AppendUvarint(pre[:0], uint64(len(seg)))
		pre = binary.LittleEndian.AppendUint32(pre, crc32.ChecksumIEEE(seg))
		if err := write(pre); err != nil {
			return err
		}
		return write(seg)
	}
	if remap == nil {
		var feats []segFeature
		for s := range t.shards {
			sh := &t.shards[s]
			feats = feats[:0]
			for id, ps := range sh.posts {
				feats = append(feats, segFeature{id: id, ps: ps})
			}
			sortSegFeatures(feats)
			if err := writeSeg(feats); err != nil {
				return n, err
			}
		}
	} else {
		// Compaction moved the IDs, so features are redistributed into the
		// segment their *written* ID selects (segment = id mod shards — the
		// invariant the parallel identity-remap decode relies on).
		buckets := make([][]segFeature, len(t.shards))
		mask := t.mask
		for s := range t.shards {
			for id, ps := range t.shards[s].posts {
				wid := remap[id]
				b := uint32(wid) & mask
				buckets[b] = append(buckets[b], segFeature{id: wid, ps: ps})
			}
		}
		for _, feats := range buckets {
			sortSegFeatures(feats)
			if err := writeSeg(feats); err != nil {
				return n, err
			}
		}
	}
	if err := write([]byte{sectionEnd}); err != nil {
		return n, err
	}
	return n, nil
}

// segFeature pairs one feature's written ID with its postings.
type segFeature struct {
	id features.FeatureID
	ps []Posting
}

func sortSegFeatures(feats []segFeature) {
	slices.SortFunc(feats, func(a, b segFeature) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		default:
			return 0
		}
	})
}

// appendSegment encodes one segment's features (pre-sorted by written ID).
func appendSegment(buf []byte, feats []segFeature) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(feats)))
	prev := features.FeatureID(0)
	for _, f := range feats {
		buf = binary.AppendUvarint(buf, uint64(f.id-prev))
		prev = f.id
		buf = binary.AppendUvarint(buf, uint64(len(f.ps)))
		prevG := int32(0)
		for _, p := range f.ps {
			buf = binary.AppendUvarint(buf, uint64(p.Graph-prevG))
			prevG = p.Graph
			buf = binary.AppendUvarint(buf, uint64(p.Count))
			buf = binary.AppendUvarint(buf, uint64(len(p.Locs)))
			prevL := int32(0)
			for _, l := range p.Locs {
				buf = binary.AppendUvarint(buf, uint64(l-prevL))
				prevL = l
			}
		}
	}
	return buf
}

// byteScanner is the reader shape the decoder needs: streaming reads for
// bulk sections plus single-byte reads for varints.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// asByteScanner returns r itself when it already supports byte reads, or a
// bufio wrapper otherwise. Callers loading several sections from one stream
// must wrap once and pass the same scanner to each loader, or the wrapper's
// read-ahead would swallow the next section's bytes.
func asByteScanner(r io.Reader) byteScanner {
	if bs, ok := r.(byteScanner); ok {
		return bs
	}
	return bufio.NewReader(r)
}

// countingScanner counts consumed bytes for the io.ReaderFrom return value.
type countingScanner struct {
	r byteScanner
	n int64
}

func (c *countingScanner) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.n += int64(m)
	return m, err
}

func (c *countingScanner) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// LoadOptions configures a snapshot load.
type LoadOptions struct {
	// Workers is the segment-decode parallelism (≤ 0 selects GOMAXPROCS;
	// the decode is deterministic at any worker count).
	Workers int
	// Strict fails the load on *any* structural damage, including a torn
	// trailing journal section that the default mode would recover from.
	Strict bool
}

// TailRecovery reports a salvaged snapshot tail: the load succeeded by
// dropping a torn trailing portion of the journal section stream (the
// aftermath of a crash mid-append). Offsets are relative to the start of
// the trie snapshot within the stream handed to ReadFrom; envelope-level
// loaders translate them to absolute file offsets.
type TailRecovery struct {
	// CommittedBytes is the length of the valid snapshot prefix — the
	// base plus every fully-committed journal section, *excluding* the
	// section terminator. A file truncated to this length plus a
	// terminator byte is a well-formed snapshot holding exactly the
	// loaded state (RepairSnapshotTail performs that repair).
	CommittedBytes int64
	// DiscardedBytes counts the torn tail bytes dropped beyond the
	// committed prefix.
	DiscardedBytes int64
	// DroppedOps is the best-effort count of mutation ops the torn
	// section claimed to carry (0 when its header was unreadable).
	DroppedOps int
}

// ReadFrom replaces the trie's contents with a snapshot previously written
// by WriteTo, implementing io.ReaderFrom; segment decodes run on one worker
// per CPU and a torn journal tail is recovered (see ReadFromOptions for
// the full contract; TailRecovery reports whether one was).
func (t *Trie) ReadFrom(r io.Reader) (int64, error) {
	n, _, err := t.ReadFromOptions(r, LoadOptions{})
	return n, err
}

// ReadFromWorkers is ReadFrom with an explicit decode parallelism.
func (t *Trie) ReadFromWorkers(r io.Reader, workers int) (int64, error) {
	n, _, err := t.ReadFromOptions(r, LoadOptions{Workers: workers})
	return n, err
}

// ReadFromOptions is the full-contract snapshot load.
//
// The trie adopts the *saved* shard layout — use Reshard afterwards to
// override it; sharding never changes observable behaviour. The snapshot's
// dictionary keys are interned through the trie's dictionary in ID order:
// into an empty dictionary this reproduces the saved IDs exactly, and into
// a non-empty one the postings are remapped to the freshly assigned IDs.
// Any previous postings of t are discarded.
//
// Corruption in the base (header, dictionary, segments) fails the load
// with ErrCorrupt. A torn *trailing* journal section — the signature of a
// crash mid-append — is recovered unless opt.Strict: the load succeeds
// with every fully-committed section replayed, the torn tail is consumed
// and discarded, and the returned *TailRecovery (also available from
// Trie.TailRecovery until the next load) describes the damage. The byte
// count covers everything consumed, including a discarded tail.
//
// If r is not an io.ByteReader it is wrapped in a buffered reader, which
// may read past the snapshot's end; pass a bufio.Reader (or bytes.Reader)
// when trailing data matters.
func (t *Trie) ReadFromOptions(r io.Reader, opt LoadOptions) (int64, *TailRecovery, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	cr := &countingScanner{r: asByteScanner(r)}
	rec, err := t.readFrom(cr, opt)
	return cr.n, rec, err
}

// TailRecovery returns the recovery report of the last ReadFrom into this
// trie, or nil when that load was clean (or the trie was never loaded).
func (t *Trie) TailRecovery() *TailRecovery { return t.recovered }

func (t *Trie) readFrom(cr *countingScanner, opt LoadOptions) (*TailRecovery, error) {
	workers := opt.Workers
	var magic [len(persistMagic)]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(magic[:]) != persistMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrCorrupt, err)
	}
	if version < 1 || version > persistVersion {
		return nil, fmt.Errorf("trie: snapshot version %d unsupported (this build reads ≤ %d)", version, persistVersion)
	}
	savedShards, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: reading shard count: %v", ErrCorrupt, err)
	}
	k := int(savedShards)
	if k < 1 || k > maxShards || k&(k-1) != 0 {
		return nil, fmt.Errorf("%w: shard count %d not a power of two in [1, %d]", ErrCorrupt, k, maxShards)
	}

	// Dictionary: intern the saved keys in ID order, building the old→new
	// ID remap. A fresh dictionary yields the identity remap, which keeps
	// the segment→shard correspondence of the saved layout and unlocks the
	// parallel decode below.
	nKeys, err := binary.ReadUvarint(cr)
	if err != nil || nKeys > maxDictLen {
		return nil, fmt.Errorf("%w: dictionary size", ErrCorrupt)
	}
	// remap grows as keys actually arrive, so a lying count cannot force a
	// large upfront allocation.
	remap := make([]features.FeatureID, 0, min(nKeys, 1<<16))
	identity := true
	var kbuf []byte
	for i := uint64(0); i < nKeys; i++ {
		klen, err := binary.ReadUvarint(cr)
		if err != nil || klen > maxKeyLen {
			return nil, fmt.Errorf("%w: dictionary key length", ErrCorrupt)
		}
		if cap(kbuf) < int(klen) {
			kbuf = make([]byte, klen)
		}
		kbuf = kbuf[:klen]
		if _, err := io.ReadFull(cr, kbuf); err != nil {
			return nil, fmt.Errorf("%w: reading dictionary key: %v", ErrCorrupt, err)
		}
		id := t.dict.Intern(string(kbuf))
		remap = append(remap, id)
		if id != features.FeatureID(i) {
			identity = false
		}
	}

	// Read the segment bodies (CRC-checked) before decoding anything, so a
	// truncated stream cannot leave the trie half-replaced.
	segs := make([][]byte, k)
	for s := 0; s < k; s++ {
		body, err := readSection(cr, fmt.Sprintf("segment %d", s))
		if err != nil {
			return nil, err
		}
		segs[s] = body
	}

	// Version ≥ 2 snapshots carry a trailing section stream. Read and
	// decode every journal section before installing anything, so a corrupt
	// journal fails the load with the trie untouched (apart from dictionary
	// interning, as documented). A structural failure anywhere in the
	// stream marks everything from the last fully-committed section onward
	// as a torn tail: fatal under opt.Strict, recovered otherwise (the
	// crash-mid-append signature — see the Durability section above).
	type journalRec struct {
		stamp JournalStamp
		ops   []mutOp
	}
	var journals []journalRec
	var rec *TailRecovery
	if version >= 2 {
		committed := cr.n // end of the valid prefix (terminator excluded)
		fail := func(dropped []byte, cause error) error {
			if opt.Strict {
				return cause
			}
			rec = &TailRecovery{CommittedBytes: committed, DroppedOps: journalOpCount(dropped)}
			return nil
		}
		for rec == nil {
			tag, err := cr.ReadByte()
			if err != nil {
				if err := fail(nil, fmt.Errorf("%w: reading section tag: %v", ErrCorrupt, err)); err != nil {
					return nil, err
				}
				break
			}
			if tag == sectionEnd {
				break
			}
			if tag != sectionJournal {
				if err := fail(nil, fmt.Errorf("%w: unknown section tag %q", ErrCorrupt, tag)); err != nil {
					return nil, err
				}
				break
			}
			body, partial, err := readSectionPartial(cr, "journal")
			if err != nil {
				if err := fail(partial, err); err != nil {
					return nil, err
				}
				break
			}
			stamp, ops, err := decodeJournalBody(body)
			if err != nil {
				if err := fail(body, err); err != nil {
					return nil, err
				}
				break
			}
			journals = append(journals, journalRec{stamp: stamp, ops: ops})
			committed = cr.n
		}
		if rec != nil {
			// Consume the rest of the torn tail so the byte count (and a
			// combined-snapshot loader's stream position) reflects that
			// nothing after the committed prefix is trustworthy.
			_, _ = io.Copy(io.Discard, cr)
			rec.DiscardedBytes = cr.n - committed
		}
	}

	// Adopt the saved layout and decode. With the identity remap every
	// saved segment maps 1:1 onto one destination shard, so the segment
	// decodes are disjoint and run in parallel; with a remap (pre-populated
	// dictionary) IDs may cross shards, so the decode runs sequentially —
	// correctness is identical either way. Version-1 snapshots may carry
	// features with zero postings (drained by the old RemoveGraph); version
	// ≥ 2 writers never emit them, so the decoder rejects them there.
	allowEmpty := version < 2
	shards := make([]shard, k)
	for i := range shards {
		shards[i].posts = make(map[features.FeatureID][]Posting)
	}
	mask := uint32(k - 1)
	perSeg := make([][]features.FeatureID, k)
	if identity {
		errs := make([]error, k) // one slot per segment: no cross-worker writes
		ParallelFor(k, workers, func(_ int, claim func() int) {
			for s := claim(); s >= 0; s = claim() {
				perSeg[s], errs[s] = decodeSegment(segs[s], shards[s].posts, remap, mask, uint32(s), allowEmpty)
			}
		})
		for s, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("segment %d: %w", s, err)
			}
		}
	} else {
		staged := make(map[features.FeatureID][]Posting)
		for s := 0; s < k; s++ {
			ids, err := decodeSegment(segs[s], staged, remap, 0, 0, allowEmpty)
			if err != nil {
				return nil, fmt.Errorf("segment %d: %w", s, err)
			}
			perSeg[s] = ids
		}
		for id, ps := range staged {
			shards[uint32(id)&mask].posts[id] = ps
		}
	}

	// Install, then rebuild the byte trie (pure function of the key set —
	// single-writer, order-insensitive).
	t.shards = shards
	t.mask = mask
	t.root = node{}
	t.nodes = 0
	t.dead = nil
	t.stamp = nil
	t.recovered = rec
	for _, ids := range perSeg {
		for _, id := range ids {
			t.insertPath(t.dict.Key(id), id)
		}
	}
	// Replay the journals in append order through the live mutation path
	// (decode above already validated them; Apply itself cannot fail).
	for _, j := range journals {
		t.replayJournal(j.stamp, j.ops)
	}
	return rec, nil
}

// readSection reads one length-prefixed CRC-guarded block (segments and
// journal sections share the frame). The body buffer grows as bytes
// actually arrive, so a corrupt length cannot force an absurd allocation.
func readSection(cr *countingScanner, what string) ([]byte, error) {
	secLen, err := binary.ReadUvarint(cr)
	if err != nil || secLen > maxSegmentLen {
		return nil, fmt.Errorf("%w: %s length", ErrCorrupt, what)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: %s checksum: %v", ErrCorrupt, what, err)
	}
	body, err := readFullCapped(cr, secLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %s body: %v", ErrCorrupt, what, err)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("%w: %s CRC mismatch", ErrCorrupt, what)
	}
	return body, nil
}

// readSectionPartial is readSection for the recovery-aware section
// stream: on failure it additionally returns whatever body bytes were
// readable, so the recovery report can count the ops a torn section
// claimed to carry.
func readSectionPartial(cr *countingScanner, what string) (body, partial []byte, err error) {
	secLen, err := binary.ReadUvarint(cr)
	if err != nil || secLen > maxSegmentLen {
		return nil, nil, fmt.Errorf("%w: %s length", ErrCorrupt, what)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr, crcBuf[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: %s checksum: %v", ErrCorrupt, what, err)
	}
	body, rerr := readFullCapped(cr, secLen)
	if rerr != nil {
		return nil, body, fmt.Errorf("%w: %s body: %v", ErrCorrupt, what, rerr)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, body, fmt.Errorf("%w: %s CRC mismatch", ErrCorrupt, what)
	}
	return body, nil, nil
}

// readFullCapped reads exactly n bytes, growing the buffer in bounded
// chunks so a lying length field costs at most the bytes actually
// present. On error the bytes read so far are returned alongside it.
func readFullCapped(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		next := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, next)...)
		m, err := io.ReadFull(r, buf[start:])
		if err != nil {
			return buf[:start+m], err
		}
	}
	return buf, nil
}

// decodeSegment decodes one segment body into posts, remapping feature IDs.
// With wantMask != 0 callers assert every decoded (remapped) ID belongs to
// shard wantShard — the identity-remap fast path, where posts is that
// shard's private map. allowEmpty admits features with zero postings
// (legal only in version-1 snapshots). Returns the decoded (remapped)
// feature IDs.
func decodeSegment(body []byte, posts map[features.FeatureID][]Posting, remap []features.FeatureID, wantMask, wantShard uint32, allowEmpty bool) ([]features.FeatureID, error) {
	d := segDecoder{b: body}
	nFeat, err := d.uvarint()
	if err != nil || nFeat > uint64(len(body)) {
		return nil, fmt.Errorf("%w: feature count", ErrCorrupt)
	}
	ids := make([]features.FeatureID, 0, nFeat)
	var prevID uint64
	for f := uint64(0); f < nFeat; f++ {
		delta, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		oldID := prevID + delta
		if f > 0 && delta == 0 {
			return nil, fmt.Errorf("%w: duplicate feature ID", ErrCorrupt)
		}
		prevID = oldID
		if oldID >= uint64(len(remap)) {
			return nil, fmt.Errorf("%w: feature ID %d outside dictionary", ErrCorrupt, oldID)
		}
		id := remap[oldID]
		if wantMask != 0 && uint32(id)&wantMask != wantShard {
			return nil, fmt.Errorf("%w: feature ID %d in wrong segment", ErrCorrupt, oldID)
		}
		nPosts, err := d.uvarint()
		if err != nil || nPosts > uint64(len(body)) {
			return nil, fmt.Errorf("%w: postings count", ErrCorrupt)
		}
		if nPosts == 0 && !allowEmpty {
			return nil, fmt.Errorf("%w: feature with no postings", ErrCorrupt)
		}
		ps := make([]Posting, 0, nPosts)
		var prevG uint64
		for p := uint64(0); p < nPosts; p++ {
			gDelta, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			g := prevG + gDelta
			if p > 0 && gDelta == 0 {
				return nil, fmt.Errorf("%w: duplicate posting graph id", ErrCorrupt)
			}
			prevG = g
			count, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			nLocs, err := d.uvarint()
			if err != nil || nLocs > uint64(len(body)) {
				return nil, fmt.Errorf("%w: location count", ErrCorrupt)
			}
			if g > math.MaxInt32 || count > math.MaxInt32 {
				return nil, fmt.Errorf("%w: posting field overflow", ErrCorrupt)
			}
			var locs []int32
			if nLocs > 0 {
				locs = make([]int32, nLocs)
				var prevL uint64
				for l := range locs {
					lDelta, err := d.uvarint()
					if err != nil {
						return nil, err
					}
					v := prevL + lDelta
					if l > 0 && lDelta == 0 {
						return nil, fmt.Errorf("%w: duplicate location", ErrCorrupt)
					}
					if v > math.MaxInt32 {
						return nil, fmt.Errorf("%w: location overflow", ErrCorrupt)
					}
					prevL = v
					locs[l] = int32(v)
				}
			}
			ps = append(ps, Posting{Graph: int32(g), Count: int32(count), Locs: locs})
		}
		posts[id] = ps
		ids = append(ids, id)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	return ids, nil
}

// segDecoder is a varint cursor over one in-memory segment body.
type segDecoder struct {
	b   []byte
	off int
}

func (d *segDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	d.off += n
	return v, nil
}

// Reshard redistributes the postings into k shards (normalised to a power
// of two in [1, 64]; ≤ 0 selects DefaultShards()). Contents, Walk order,
// NodeCount and all answers are unchanged — only the layout moves; posting
// slices are shared, not copied. Like the build path, Reshard is exclusive:
// no concurrent readers.
func (t *Trie) Reshard(k int) {
	k = normalizeShards(k)
	if k == len(t.shards) {
		return
	}
	shards := make([]shard, k)
	for i := range shards {
		shards[i].posts = make(map[features.FeatureID][]Posting)
	}
	mask := uint32(k - 1)
	for s := range t.shards {
		for id, ps := range t.shards[s].posts {
			shards[uint32(id)&mask].posts[id] = ps
		}
	}
	t.shards = shards
	t.mask = mask
}
